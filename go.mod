module mpsocsim

go 1.22
