package mpsocsim_test

// One benchmark per table/figure of the paper's evaluation. Each iteration
// regenerates the corresponding experiment at a reduced workload scale and
// reports the headline numbers as custom metrics, so `go test -bench=.`
// doubles as a regression harness for the reproduced shapes:
//
//	BenchmarkSec411ManyToMany    §4.1.1  protocol differentiation, 6 slaves
//	BenchmarkSec412ManyToOne     §4.1.2  memory-bound equality, 1 slave
//	BenchmarkFig3PlatformInstances  Fig.3  on-chip memory instances
//	BenchmarkFig4MemorySpeedSweep   Fig.4  distributed vs collapsed
//	BenchmarkFig5LMIPlatforms       Fig.5  LMI + DDR instances
//	BenchmarkFig6LMIStatistics      Fig.6  LMI interface fine-grain stats
//
// The experiments run serially (Workers: 1) so ns/op measures simulator
// speed; the Parallel variants measure the same sweep through the worker
// pool for the wall-clock comparison.

import (
	"testing"

	"mpsocsim/internal/experiments"
	"mpsocsim/internal/lmi"
	"mpsocsim/internal/platform"
)

var benchOpts = experiments.Options{Scale: 0.25, Seed: 1, Workers: 1}

func BenchmarkSec411ManyToMany(b *testing.B) {
	var last experiments.Sec411Result
	for i := 0; i < b.N; i++ {
		var err error
		last, err = experiments.Sec411(benchOpts, []float64{0})
		if err != nil {
			b.Fatal(err)
		}
	}
	p := last.Points[0]
	b.ReportMetric(float64(p.AHB)/float64(p.STBus), "ahb/stbus")
	b.ReportMetric(float64(p.AXI)/float64(p.STBus), "axi/stbus")
}

func BenchmarkSec412ManyToOne(b *testing.B) {
	var last experiments.Series
	for i := 0; i < b.N; i++ {
		var err error
		last, err = experiments.Sec412(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
	}
	base := float64(last.Entries[0].Cycles)
	b.ReportMetric(float64(last.Entries[1].Cycles)/base, "ahb/stbus")
	b.ReportMetric(float64(last.Entries[2].Cycles)/base, "axi/stbus")
}

func BenchmarkFig3PlatformInstances(b *testing.B) {
	var last experiments.Series
	for i := 0; i < b.N; i++ {
		var err error
		last, err = experiments.Fig3(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
	}
	by := map[string]float64{}
	for _, e := range last.Entries {
		by[e.Name] = float64(e.Cycles)
	}
	b.ReportMetric(by["full STBus"]/by["collapsed STBus"], "fullST/collapsedST")
	b.ReportMetric(by["full AHB"]/by["full STBus"], "fullAHB/fullST")
	b.ReportMetric(by["full AXI"]/by["full AHB"], "fullAXI/fullAHB")
}

func BenchmarkFig4MemorySpeedSweep(b *testing.B) {
	var last experiments.Fig4Result
	for i := 0; i < b.N; i++ {
		var err error
		last, err = experiments.Fig4(benchOpts, []int{0, 8, 32})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(last.Points[0].Ratio, "ratio@fast")
	b.ReportMetric(last.Points[len(last.Points)-1].Ratio, "ratio@slow")
}

// BenchmarkFig4MemorySpeedSweepParallel is the same sweep through the
// worker pool at -j 4; comparing ns/op against the serial benchmark above
// shows the runner's wall-clock win on multi-core machines.
func BenchmarkFig4MemorySpeedSweepParallel(b *testing.B) {
	opts := benchOpts
	opts.Workers = 4
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig4(opts, []int{0, 8, 32}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5LMIPlatforms(b *testing.B) {
	var last experiments.Series
	for i := 0; i < b.N; i++ {
		var err error
		last, err = experiments.Fig5(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
	}
	by := map[string]float64{}
	for _, e := range last.Entries {
		by[e.Name] = float64(e.Cycles)
	}
	b.ReportMetric(by["collapsed AXI"]/by["collapsed STBus"], "collAXI/collST")
	b.ReportMetric(by["full AHB"]/by["distributed STBus"], "fullAHB/distST")
	b.ReportMetric(by["collapsed STBus"]/by["distributed STBus"], "collST/distST")
}

func BenchmarkFig6LMIStatistics(b *testing.B) {
	var last experiments.Fig6Report
	for i := 0; i < b.N; i++ {
		var err error
		last, err = experiments.Fig6(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(last.PhaseA.FullFrac, "phaseA_full")
	b.ReportMetric(last.PhaseB.EmptyFrac, "phaseB_empty")
	b.ReportMetric(last.AHBNoRequest, "ahb_norequest")
}

// BenchmarkReferencePlatform measures raw simulator speed on the default
// platform (cycles simulated per wall-clock second are derivable from
// cycles/op and ns/op).
func BenchmarkReferencePlatform(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := platform.DefaultSpec()
		s.WorkloadScale = 0.25
		p := platform.MustBuild(s)
		r := p.Run(experiments.Budget)
		if !r.Done {
			b.Fatal("run did not drain")
		}
		b.ReportMetric(float64(r.CentralCycles), "cycles")
	}
}

// BenchmarkLMIAblation contrasts the memory controller with and without its
// optimization engine (lookahead + opcode merging) on the full platform —
// the design-choice ablation DESIGN.md calls out.
func BenchmarkLMIAblation(b *testing.B) {
	run := func(lookahead int, merging bool) int64 {
		s := platform.DefaultSpec()
		s.WorkloadScale = 0.25
		s.LMI = lmi.DefaultConfig()
		s.LMI.LookaheadDepth = lookahead
		s.LMI.OpcodeMerging = merging
		p := platform.MustBuild(s)
		r := p.Run(experiments.Budget)
		if !r.Done {
			b.Fatal("run did not drain")
		}
		return r.CentralCycles
	}
	var opt, fcfs int64
	for i := 0; i < b.N; i++ {
		opt = run(4, true)
		fcfs = run(0, false)
	}
	b.ReportMetric(float64(fcfs)/float64(opt), "fcfs/optimized")
}
