package attr

import (
	"testing"
)

func TestPhaseNames(t *testing.T) {
	names := PhaseNames()
	if len(names) != NumPhases {
		t.Fatalf("PhaseNames returned %d names, want %d", len(names), NumPhases)
	}
	seen := map[string]bool{}
	for i, n := range names {
		if n == "" {
			t.Fatalf("phase %d has no name", i)
		}
		if seen[n] {
			t.Fatalf("duplicate phase name %q", n)
		}
		seen[n] = true
		if got := Phase(i).String(); got != n {
			t.Fatalf("Phase(%d).String() = %q, want %q", i, got, n)
		}
	}
	if got := Phase(200).String(); got != "unknown" {
		t.Fatalf("out-of-range phase name = %q, want unknown", got)
	}
}

func TestRecordEnterMergesAndClamps(t *testing.T) {
	c := NewCollector(4)
	r := c.Start(0, 1000, false, false)
	if r.Current() != PhaseInitQueue {
		t.Fatalf("fresh record in %v, want init_queue", r.Current())
	}

	// Re-entering the current phase merges (no new segment).
	r.Enter(PhaseInitQueue, 2000)
	if phases, _ := r.Segments(); len(phases) != 1 {
		t.Fatalf("re-entering current phase grew the log to %d segments", len(phases))
	}

	r.Enter(PhaseArbWait, 3000)
	// A non-monotonic stamp is clamped to the previous segment's start.
	r.Enter(PhaseBusXfer, 2500)
	phases, starts := r.Segments()
	if len(phases) != 3 {
		t.Fatalf("segment count = %d, want 3", len(phases))
	}
	if starts[2] != 3000 {
		t.Fatalf("non-monotonic stamp not clamped: starts[2] = %d, want 3000", starts[2])
	}

	// EnterFrom only fires from the named phase.
	r.EnterFrom(PhaseArbWait, PhaseTargetQueue, 4000)
	if r.Current() != PhaseBusXfer {
		t.Fatalf("EnterFrom fired from the wrong phase: now in %v", r.Current())
	}
	r.EnterFrom(PhaseBusXfer, PhaseTargetQueue, 4000)
	if r.Current() != PhaseTargetQueue {
		t.Fatalf("EnterFrom did not fire: now in %v", r.Current())
	}
}

func TestRecordOverflowFoldsIntoLastSegment(t *testing.T) {
	c := NewCollector(1)
	r := c.Start(0, 0, false, false)
	// Alternate phases until the log is full, then past it.
	for i := 1; i < MaxSegments+10; i++ {
		ph := PhaseArbWait
		if i%2 == 0 {
			ph = PhaseBusXfer
		}
		r.Enter(ph, int64(i*100))
	}
	phases, _ := r.Segments()
	if len(phases) != MaxSegments {
		t.Fatalf("segment log length = %d, want %d", len(phases), MaxSegments)
	}
	if r.overflows == 0 {
		t.Fatal("overflow transitions not counted")
	}
	c.AddInitiator(0, "ip")
	// Conservation still holds: the overflowed tail folds into the last
	// segment, so phase totals == end-to-end total.
	r2 := c.Start(0, 0, false, false)
	for i := 1; i < MaxSegments+10; i++ {
		ph := PhaseArbWait
		if i%2 == 0 {
			ph = PhaseBusXfer
		}
		r2.Enter(ph, int64(i*100))
	}
	c.Finish(r2, 5000)
	snap := c.Snapshot()
	if snap.OverflowedTxns != 1 {
		t.Fatalf("overflowed txns = %d, want 1", snap.OverflowedTxns)
	}
	is := snap.Initiators[0]
	var sum int64
	for _, ph := range is.Phases {
		sum += ph.TotalPS
	}
	if sum != is.TotalPS {
		t.Fatalf("conservation broken under overflow: phase sum %d != e2e %d", sum, is.TotalPS)
	}
}

func TestCollectorConservation(t *testing.T) {
	c := NewCollector(8)
	c.AddInitiator(3, "dma")
	c.AddInitiator(7, "cpu")

	// Two transactions for dma, one for cpu, with revisited phases.
	r := c.Start(3, 1000, false, false)
	r.Enter(PhaseArbWait, 1400)
	r.Enter(PhaseBusXfer, 2000)
	r.Enter(PhaseTargetQueue, 2600)
	r.Enter(PhaseRespReturn, 5000)
	c.Finish(r, 6000)

	r = c.Start(3, 10000, true, false)
	r.Enter(PhaseArbWait, 10500)
	r.Enter(PhaseInitQueue, 11000) // second fabric layer
	r.Enter(PhaseArbWait, 11200)
	r.Enter(PhaseRespReturn, 12000)
	c.Finish(r, 13000)

	r = c.Start(7, 0, false, false)
	c.Finish(r, 250) // whole life in init_queue

	snap := c.Snapshot()
	if snap.Started != 3 || snap.Finished != 3 {
		t.Fatalf("started/finished = %d/%d, want 3/3", snap.Started, snap.Finished)
	}
	if len(snap.Initiators) != 2 {
		t.Fatalf("initiator rows = %d, want 2", len(snap.Initiators))
	}
	for _, is := range snap.Initiators {
		var sum int64
		for _, ph := range is.Phases {
			sum += ph.TotalPS
		}
		if sum != is.TotalPS {
			t.Errorf("%s: phase totals sum to %d, e2e total %d", is.Initiator, sum, is.TotalPS)
		}
	}
	dma := snap.Initiators[0]
	if dma.Initiator != "dma" || dma.Transactions != 2 {
		t.Fatalf("slot 0 = %s/%d txns, want dma/2", dma.Initiator, dma.Transactions)
	}
	if dma.TotalPS != (6000-1000)+(13000-10000) {
		t.Fatalf("dma e2e total = %d, want 8000", dma.TotalPS)
	}
	// arb_wait visited twice in txn 2: 10500→11000 and 11200→12000, plus
	// 1400→2000 in txn 1.
	for _, ph := range dma.Phases {
		if ph.Phase == "arb_wait" {
			if want := int64((11000 - 10500) + (12000 - 11200) + (2000 - 1400)); ph.TotalPS != want {
				t.Fatalf("dma arb_wait total = %d, want %d", ph.TotalPS, want)
			}
		}
	}
	if dma.Dominant == "" {
		t.Fatal("dominant phase not set")
	}
}

func TestCollectorUnknownOriginCounted(t *testing.T) {
	c := NewCollector(2)
	c.AddInitiator(0, "ip")
	r := c.Start(42, 100, false, true)
	c.Finish(r, 300)
	snap := c.Snapshot()
	if snap.UnknownOrigin != 1 {
		t.Fatalf("unknown origin count = %d, want 1", snap.UnknownOrigin)
	}
	if snap.Initiators[0].Transactions != 0 {
		t.Fatal("unknown-origin transaction leaked into a registered row")
	}
}

func TestCollectorRecycleAndGrow(t *testing.T) {
	c := NewCollector(2)
	c.AddInitiator(0, "ip")
	// Start/Finish cycles within capacity never grow.
	for i := 0; i < 100; i++ {
		r := c.Start(0, int64(i), false, false)
		c.Finish(r, int64(i+10))
	}
	if c.Grown() != 0 {
		t.Fatalf("grew by %d records despite recycling", c.Grown())
	}
	// Holding more records than the capacity grows the free list.
	held := []*Record{}
	for i := 0; i < 5; i++ {
		held = append(held, c.Start(0, 0, false, false))
	}
	if c.Grown() == 0 {
		t.Fatal("over-capacity demand did not grow the free list")
	}
	for _, r := range held {
		c.Finish(r, 100)
	}
}

func TestRetentionRing(t *testing.T) {
	c := NewCollector(4)
	c.AddInitiator(9, "ip")
	c.EnableRetention(3)
	for i := 0; i < 5; i++ {
		r := c.Start(9, int64(i*1000), false, false)
		r.Enter(PhaseArbWait, int64(i*1000+200))
		c.Finish(r, int64(i*1000+500))
	}
	txs := c.Retained()
	if len(txs) != 3 {
		t.Fatalf("retained %d txns, want 3 (ring capacity)", len(txs))
	}
	if c.RetainedDropped() != 2 {
		t.Fatalf("retained dropped = %d, want 2", c.RetainedDropped())
	}
	// Chronological order: the oldest surviving is txn 2.
	for i, tx := range txs {
		if want := int64((i + 2) * 1000); tx.StartPS != want {
			t.Fatalf("retained[%d].StartPS = %d, want %d", i, tx.StartPS, want)
		}
		if tx.Origin != 9 || tx.N != 2 {
			t.Fatalf("retained[%d] = origin %d, %d segments; want 9, 2", i, tx.Origin, tx.N)
		}
		if tx.EndPS-tx.StartPS != 500 {
			t.Fatalf("retained[%d] duration = %d, want 500", i, tx.EndPS-tx.StartPS)
		}
	}
}
