package attr

import (
	"sort"
	"sync"

	"mpsocsim/internal/stats"
)

// DefaultCapacity is the number of Records preallocated by NewCollector when
// the caller passes <= 0: enough for every outstanding transaction of the
// reference platform with generous headroom.
const DefaultCapacity = 1024

// growChunk is the number of Records added per free-list refill when the
// preallocated capacity is exhausted (counted in Grown — steady state should
// never need it).
const growChunk = 256

// slot aggregates one initiator's attribution matrix row: a latency
// histogram per phase plus the end-to-end distribution, all in picoseconds.
type slot struct {
	name   string
	origin int
	phase  [NumPhases]stats.Histogram
	e2e    stats.Histogram
}

// Collector owns the Record free list and the per-initiator × per-phase
// attribution matrices. One collector serves the whole platform; by default
// it is not safe for concurrent use (the serial simulation kernel is
// single-threaded). Sharded execution calls SetShared(true), which guards
// Start and Finish — the only entry points shards race on — with a mutex.
// The per-record stamping path (Record.Enter/EnterFrom) stays lock-free: a
// record travels with its transaction, and each hop's stamps happen-before
// the next hop's via the boundary-FIFO commit barriers. The matrices come
// out bit-identical to a serial run because every fold target is keyed by
// the initiator's registered slot and the bucketed histograms are
// order-independent; only the optional retention ring's *order* (a debug
// export, not part of any report) depends on cross-shard completion
// interleaving.
type Collector struct {
	slots []*slot
	index map[int]int32 // origin → slots index

	shared bool
	mu     sync.Mutex

	free  []*Record
	grown int64

	started        int64
	finished       int64
	unknownOrigin  int64
	overflowedTxns int64

	// retention ring (optional): finished transactions kept verbatim for
	// the Chrome-trace waterfall and per-transaction invariant tests.
	retained []RetainedTx
	retHead  int
	retN     int64
}

// RetainedTx is one finished transaction's verbatim segment log.
type RetainedTx struct {
	Origin  int
	Write   bool
	Posted  bool
	StartPS int64
	EndPS   int64
	N       int
	Phases  [MaxSegments]Phase
	Starts  [MaxSegments]int64
}

// NewCollector preallocates capacity Records (DefaultCapacity when <= 0).
func NewCollector(capacity int) *Collector {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	arena := make([]Record, capacity)
	free := make([]*Record, capacity)
	for i := range arena {
		free[i] = &arena[i]
	}
	return &Collector{
		index: make(map[int]int32),
		free:  free,
	}
}

// AddInitiator registers one initiator row of the attribution matrix. Call
// once per initiator, in platform build order, before the run starts;
// transactions from unregistered origins are finished but only counted.
func (c *Collector) AddInitiator(origin int, name string) {
	c.index[origin] = int32(len(c.slots))
	c.slots = append(c.slots, &slot{name: name, origin: origin})
}

// SetShared toggles mutex protection of Start/Finish for sharded execution.
// Call before the run starts (see the Collector doc for why the matrices
// stay deterministic).
func (c *Collector) SetShared(on bool) { c.shared = on }

// EnableRetention preallocates a ring keeping the last n finished
// transactions' segment logs (oldest overwritten, counted in RetainedDropped).
func (c *Collector) EnableRetention(n int) {
	if n <= 0 {
		n = 4096
	}
	c.retained = make([]RetainedTx, n)
	c.retHead = 0
	c.retN = 0
}

// Start opens a record for a transaction issued at absolute time issuePS by
// the given origin. The record begins in PhaseInitQueue at issuePS — fabrics
// call Start lazily at the first head-of-queue scan, and the elapsed
// initiator-queue time is recovered retroactively from issuePS. Zero
// allocations while the preallocated free list lasts.
func (c *Collector) Start(origin int, issuePS int64, write, posted bool) *Record {
	if c.shared {
		c.mu.Lock()
		defer c.mu.Unlock()
	}
	var r *Record
	if n := len(c.free); n > 0 {
		r = c.free[n-1]
		c.free[n-1] = nil
		c.free = c.free[:n-1]
	} else {
		chunk := make([]Record, growChunk)
		for i := 1; i < growChunk; i++ {
			c.free = append(c.free, &chunk[i])
		}
		r = &chunk[0]
		c.grown += growChunk
	}
	si, ok := c.index[origin]
	if !ok {
		si = -1
	}
	r.slot = si
	r.n = 1
	r.overflows = 0
	r.write = write
	r.posted = posted
	r.startPS = issuePS
	r.phases[0] = PhaseInitQueue
	r.starts[0] = issuePS
	c.started++
	return r
}

// Finish closes the record at absolute time endPS, folds its segment
// durations into the attribution matrix and recycles it. The caller must
// drop its pointer afterwards. Zero allocations.
func (c *Collector) Finish(r *Record, endPS int64) {
	if c.shared {
		c.mu.Lock()
		defer c.mu.Unlock()
	}
	last := r.starts[r.n-1]
	if endPS < last {
		endPS = last
	}
	c.finished++
	if r.overflows > 0 {
		c.overflowedTxns++
	}
	if r.slot >= 0 {
		s := c.slots[r.slot]
		n := int(r.n)
		for i := 0; i < n; i++ {
			end := endPS
			if i+1 < n {
				end = r.starts[i+1]
			}
			if d := end - r.starts[i]; d > 0 {
				s.phase[r.phases[i]].Add(d)
			}
		}
		s.e2e.Add(endPS - r.startPS)
	} else {
		c.unknownOrigin++
	}
	if c.retained != nil {
		t := &c.retained[c.retHead]
		t.Origin = r.originOf(c)
		t.Write = r.write
		t.Posted = r.posted
		t.StartPS = r.startPS
		t.EndPS = endPS
		t.N = int(r.n)
		t.Phases = r.phases
		t.Starts = r.starts
		c.retHead++
		if c.retHead == len(c.retained) {
			c.retHead = 0
		}
		c.retN++
	}
	c.free = append(c.free, r)
}

// originOf maps the record's slot back to a system origin (-1 if unknown).
func (r *Record) originOf(c *Collector) int {
	if r.slot >= 0 {
		return c.slots[r.slot].origin
	}
	return -1
}

// InitiatorName returns the registered name for an origin ("" if unknown).
func (c *Collector) InitiatorName(origin int) string {
	if si, ok := c.index[origin]; ok {
		return c.slots[si].name
	}
	return ""
}

// Started returns the number of records opened.
func (c *Collector) Started() int64 { return c.started }

// Finished returns the number of records closed.
func (c *Collector) Finished() int64 { return c.finished }

// Grown returns how many Records were allocated beyond the initial capacity
// (0 in steady state).
func (c *Collector) Grown() int64 { return c.grown }

// Retained returns the retention ring's contents in completion order
// (allocates; call after the run).
func (c *Collector) Retained() []RetainedTx {
	if c.retained == nil {
		return nil
	}
	kept := c.retN
	if kept > int64(len(c.retained)) {
		kept = int64(len(c.retained))
	}
	out := make([]RetainedTx, 0, kept)
	start := 0
	if c.retN > int64(len(c.retained)) {
		start = c.retHead
	}
	for i := int64(0); i < kept; i++ {
		out = append(out, c.retained[(start+int(i))%len(c.retained)])
	}
	return out
}

// RetainedDropped counts finished transactions overwritten in the ring.
func (c *Collector) RetainedDropped() int64 {
	if c.retained == nil || c.retN <= int64(len(c.retained)) {
		return 0
	}
	return c.retN - int64(len(c.retained))
}

// PhaseStats is one cell row of the attribution matrix: the distribution of
// time one initiator's transactions spent in one phase. N counts only the
// transactions that actually visited the phase (zero durations are not
// samples), but TotalPS still conserves: the per-initiator phase totals sum
// exactly to the end-to-end total.
type PhaseStats struct {
	Phase   string  `json:"phase"`
	N       int64   `json:"n"`
	TotalPS int64   `json:"total_ps"`
	MeanPS  float64 `json:"mean_ps"`
	P50PS   int64   `json:"p50_ps"`
	P99PS   int64   `json:"p99_ps"`
	MaxPS   int64   `json:"max_ps"`
	// Share is this phase's fraction of the initiator's total attributed
	// time.
	Share float64 `json:"share"`
}

// InitiatorStats is one initiator's row: end-to-end distribution plus the
// per-phase breakdown (enum order, phases never visited omitted) and the
// dominant phase by total time.
type InitiatorStats struct {
	Initiator    string       `json:"initiator"`
	Origin       int          `json:"origin"`
	Transactions int64        `json:"transactions"`
	TotalPS      int64        `json:"total_ps"`
	MeanPS       float64      `json:"mean_ps"`
	P50PS        int64        `json:"p50_ps"`
	P99PS        int64        `json:"p99_ps"`
	MaxPS        int64        `json:"max_ps"`
	Dominant     string       `json:"dominant_phase"`
	Phases       []PhaseStats `json:"phases"`
}

// Snapshot is the exported attribution matrix (the report's `attribution`
// section).
type Snapshot struct {
	Started         int64            `json:"started"`
	Finished        int64            `json:"finished"`
	UnknownOrigin   int64            `json:"unknown_origin,omitempty"`
	OverflowedTxns  int64            `json:"overflowed_txns,omitempty"`
	RetainedDropped int64            `json:"retained_dropped,omitempty"`
	Initiators      []InitiatorStats `json:"initiators"`
}

// Snapshot renders the matrices (allocates; call after the run). Initiators
// appear in registration order — the platform's deterministic build order —
// so reports are byte-identical across runs.
func (c *Collector) Snapshot() *Snapshot {
	snap := &Snapshot{
		Started:         c.started,
		Finished:        c.finished,
		UnknownOrigin:   c.unknownOrigin,
		OverflowedTxns:  c.overflowedTxns,
		RetainedDropped: c.RetainedDropped(),
	}
	for _, s := range c.slots {
		is := InitiatorStats{
			Initiator:    s.name,
			Origin:       s.origin,
			Transactions: s.e2e.N(),
			TotalPS:      s.e2e.Sum(),
			MeanPS:       s.e2e.Mean(),
			P50PS:        s.e2e.Quantile(0.5),
			P99PS:        s.e2e.Quantile(0.99),
			MaxPS:        s.e2e.Max(),
		}
		bestTotal := int64(-1)
		for ph := 0; ph < NumPhases; ph++ {
			h := &s.phase[ph]
			if h.N() == 0 {
				continue
			}
			ps := PhaseStats{
				Phase:   Phase(ph).String(),
				N:       h.N(),
				TotalPS: h.Sum(),
				MeanPS:  h.Mean(),
				P50PS:   h.Quantile(0.5),
				P99PS:   h.Quantile(0.99),
				MaxPS:   h.Max(),
			}
			if is.TotalPS > 0 {
				ps.Share = float64(ps.TotalPS) / float64(is.TotalPS)
			}
			if ps.TotalPS > bestTotal {
				bestTotal = ps.TotalPS
				is.Dominant = ps.Phase
			}
			is.Phases = append(is.Phases, ps)
		}
		snap.Initiators = append(snap.Initiators, is)
	}
	return snap
}

// Dominant returns snapshot initiators sorted by total attributed time,
// heaviest first (the -attr-top ordering); ties keep registration order.
func (s *Snapshot) Dominant() []InitiatorStats {
	out := make([]InitiatorStats, len(s.Initiators))
	copy(out, s.Initiators)
	sort.SliceStable(out, func(i, j int) bool { return out[i].TotalPS > out[j].TotalPS })
	return out
}
