package attr

import "mpsocsim/internal/snapshot"

// Checkpoint codecs (DESIGN.md §16). A Record travels with its transaction
// and may be shared between an upstream request and a bridge's downstream
// clone, so records serialize through the snapshot's shared-object table:
// the first encounter emits the body, later encounters a reference, and the
// decode side re-materializes each record once from the collector's free
// list — pointer sharing is preserved exactly.

// Wire markers for EncodeRecordRef.
const (
	recNil   = 0
	recBody  = 1
	recRefs  = 2 // recRefs+idx references a previously decoded record
	maxSlots = 1 << 16
)

// EncodeRecordRef serializes a (possibly nil, possibly shared) record
// pointer.
func EncodeRecordRef(e *snapshot.Encoder, r *Record) {
	if r == nil {
		e.U(recNil)
		return
	}
	idx, first := e.Ref(r)
	if !first {
		e.U(recRefs + idx)
		return
	}
	e.U(recBody)
	e.I(int64(r.slot))
	e.U(uint64(r.n))
	e.U(uint64(r.overflows))
	e.Bool(r.write)
	e.Bool(r.posted)
	e.I(r.startPS)
	for i := int32(0); i < r.n; i++ {
		e.U(uint64(r.phases[i]))
		e.I(r.starts[i])
	}
}

// DecodeRecordRef restores a record pointer serialized by EncodeRecordRef,
// materializing first encounters from the collector's free list.
func DecodeRecordRef(d *snapshot.Decoder, c *Collector) *Record {
	tag := d.U()
	if d.Err() != nil || tag == recNil {
		return nil
	}
	if tag >= recRefs {
		r, _ := d.Ref(tag - recRefs).(*Record)
		if r == nil {
			d.Corrupt("record reference %d is not a record", tag-recRefs)
		}
		return r
	}
	if c == nil {
		d.Corrupt("in-flight attribution record in a snapshot without attribution enabled")
		return nil
	}
	r := c.take()
	d.AddRef(r)
	slot := d.I()
	if slot < -1 || slot >= int64(len(c.slots)) {
		d.Corrupt("record slot %d out of range (collector has %d)", slot, len(c.slots))
		return nil
	}
	r.slot = int32(slot)
	n := d.N(MaxSegments)
	if n < 1 {
		d.Corrupt("record with empty segment log")
		return nil
	}
	r.n = int32(n)
	r.overflows = int32(d.N(1 << 30))
	r.write = d.Bool()
	r.posted = d.Bool()
	r.startPS = d.I()
	for i := 0; i < n; i++ {
		ph := d.N(NumPhases - 1)
		r.phases[i] = Phase(ph)
		r.starts[i] = d.I()
	}
	return r
}

// take pops a free record (growing like Start does when exhausted) without
// any lifecycle bookkeeping; restore-only.
func (c *Collector) take() *Record {
	if n := len(c.free); n > 0 {
		r := c.free[n-1]
		c.free[n-1] = nil
		c.free = c.free[:n-1]
		return r
	}
	chunk := make([]Record, growChunk)
	for i := 1; i < growChunk; i++ {
		c.free = append(c.free, &chunk[i])
	}
	c.grown += growChunk
	return &chunk[0]
}

// EncodeState serializes the collector's accumulated matrices and counters.
// Slot names/origins are build-time structure, re-derived from the spec; the
// slot count guards shape.
func (c *Collector) EncodeState(e *snapshot.Encoder) {
	e.Tag('C')
	e.U(uint64(len(c.slots)))
	for _, s := range c.slots {
		s.e2e.EncodeState(e)
		for ph := range s.phase {
			s.phase[ph].EncodeState(e)
		}
	}
	e.I(c.grown)
	e.I(c.started)
	e.I(c.finished)
	e.I(c.unknownOrigin)
	e.I(c.overflowedTxns)
	if c.retained == nil {
		e.U(0)
		return
	}
	e.U(uint64(len(c.retained)))
	e.I(c.retN)
	kept := c.retN
	if kept > int64(len(c.retained)) {
		kept = int64(len(c.retained))
	}
	start := 0
	if c.retN > int64(len(c.retained)) {
		start = c.retHead
	}
	for i := int64(0); i < kept; i++ {
		t := &c.retained[(start+int(i))%len(c.retained)]
		e.I(int64(t.Origin))
		e.Bool(t.Write)
		e.Bool(t.Posted)
		e.I(t.StartPS)
		e.I(t.EndPS)
		e.U(uint64(t.N))
		for j := 0; j < t.N; j++ {
			e.U(uint64(t.Phases[j]))
			e.I(t.Starts[j])
		}
	}
}

// DecodeState restores a collector serialized by EncodeState. The receiver
// must have the same slot registrations and retention configuration.
func (c *Collector) DecodeState(d *snapshot.Decoder) {
	d.Tag('C')
	ns := d.N(maxSlots)
	if d.Err() != nil {
		return
	}
	if ns != len(c.slots) {
		d.Corrupt("collector slot count %d does not match platform's %d", ns, len(c.slots))
		return
	}
	for _, s := range c.slots {
		s.e2e.DecodeState(d)
		for ph := range s.phase {
			s.phase[ph].DecodeState(d)
		}
	}
	c.grown = d.I()
	c.started = d.I()
	c.finished = d.I()
	c.unknownOrigin = d.I()
	c.overflowedTxns = d.I()
	ringLen := d.N(1 << 24)
	if d.Err() != nil {
		return
	}
	if ringLen == 0 {
		if c.retained != nil {
			d.Corrupt("snapshot has no retention ring but the platform enabled one")
		}
		return
	}
	if c.retained == nil || len(c.retained) != ringLen {
		d.Corrupt("retention ring length %d does not match platform's %d", ringLen, len(c.retained))
		return
	}
	c.retN = d.I()
	kept := c.retN
	if kept > int64(ringLen) {
		kept = int64(ringLen)
	}
	if kept < 0 {
		d.Corrupt("negative retained count %d", c.retN)
		return
	}
	// Re-pack oldest-first from ring origin zero; Retained() ordering is
	// invariant under the re-packing.
	for i := range c.retained {
		c.retained[i] = RetainedTx{}
	}
	for i := int64(0); i < kept; i++ {
		t := &c.retained[i]
		t.Origin = int(d.I())
		t.Write = d.Bool()
		t.Posted = d.Bool()
		t.StartPS = d.I()
		t.EndPS = d.I()
		t.N = d.N(MaxSegments)
		for j := 0; j < t.N; j++ {
			t.Phases[j] = Phase(d.N(NumPhases - 1))
			t.Starts[j] = d.I()
		}
		if d.Err() != nil {
			return
		}
	}
	if c.retN > int64(ringLen) {
		c.retHead = 0
	} else {
		c.retHead = int(c.retN) % ringLen
	}
}
