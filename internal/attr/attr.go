// Package attr implements per-transaction latency attribution: the
// phase-stamped critical-path breakdown of every bus transaction across the
// fabric, bridge and memory subsystems (the paper's Section 6 guidelines —
// bridge cost, LMI queue depth, bank-conflict sensitivity — turned into
// measurable quantities).
//
// Every component that can stall a request stamps phase transitions onto the
// request's Record as simulated time passes: the initiator-side queue wait,
// the arbitration wait at each fabric, the bus data transfer, the bridge
// store-and-forward and async-FIFO clock-domain crossing, the LMI front-end
// queue, the SDRAM device states (row activate/precharge vs. CAS access) and
// the response return path. A Record is an ordered segment log in absolute
// picoseconds — the one time axis shared by every clock domain — so the sum
// of the phase durations equals the end-to-end latency *exactly*, by
// construction (the conservation invariant), and the segment order yields a
// true per-transaction waterfall for the Chrome-trace exporter.
//
// Records are preallocated and recycled through the Collector's free list,
// keeping the simulation at 0 allocs/cycle in steady state with attribution
// enabled. With attribution disabled no Record is ever attached and every
// stamping site reduces to one nil check.
package attr

// Phase identifies one stage of a transaction's life. A transaction may
// revisit a phase (e.g. init_queue and arb_wait once per fabric layer on a
// bridged path); durations accumulate per phase in the attribution matrix
// while the segment log keeps the layer-by-layer order.
type Phase uint8

// The phase taxonomy. Stamping points are documented per phase; "now"
// always means the stamping component's clock edge in absolute picoseconds.
const (
	// PhaseInitQueue: sitting in an initiator-side request FIFO (the
	// initiator port at issue, or a bridge's downstream initiator port)
	// before the fabric has seen the request at the head.
	PhaseInitQueue Phase = iota
	// PhaseArbWait: at the head of an initiator port, requesting the
	// fabric, waiting for the arbiter's grant.
	PhaseArbWait
	// PhaseBusXfer: granted; data beats (or the address tenure) are
	// crossing the fabric, including register-stage pipeline traversal.
	PhaseBusXfer
	// PhaseTargetQueue: delivered into a target's input FIFO (memory
	// controller front FIFO, bridge target port) waiting to be consumed.
	PhaseTargetQueue
	// PhaseBridgeSF: inside a bridge's store-and-forward/conversion stage
	// (protocol+width conversion latency, store-and-forward wait).
	PhaseBridgeSF
	// PhaseBridgeCDC: inside a bridge's async-FIFO clock-domain crossing,
	// waiting for synchronizer flops and the destination-domain pop.
	PhaseBridgeCDC
	// PhaseBridgeIssue: popped into the bridge's downstream issue stage,
	// waiting out the modelled bridge latency before re-issue.
	PhaseBridgeIssue
	// PhaseLMIFront: popped from the LMI bus-interface FIFO into the
	// controller front-end (front latency + command overhead).
	PhaseLMIFront
	// PhaseSDRAMRowPrep: SDRAM row preparation — precharge and activate
	// timing (a row miss or bank conflict shows up here).
	PhaseSDRAMRowPrep
	// PhaseSDRAMCas: CAS access — column command legality wait and data-bus
	// occupancy on a prepared row.
	PhaseSDRAMCas
	// PhaseLMIBack: device access issued; back-end latency and output-FIFO
	// backpressure until the first beat is emitted.
	PhaseLMIBack
	// PhaseMemService: on-chip memory service (wait states) from pop to
	// first response beat.
	PhaseMemService
	// PhaseRespReturn: response path — from the first response beat (or
	// write acknowledge) leaving the target until the initiator consumes
	// the final beat, crossing bridges and fabrics back.
	PhaseRespReturn

	// NumPhases is the number of distinct phases.
	NumPhases = int(PhaseRespReturn) + 1
)

var phaseNames = [NumPhases]string{
	"init_queue",
	"arb_wait",
	"bus_xfer",
	"target_queue",
	"bridge_sf",
	"bridge_cdc",
	"bridge_issue",
	"lmi_front",
	"sdram_row_prep",
	"sdram_cas",
	"lmi_back",
	"mem_service",
	"resp_return",
}

// String returns the phase's snake_case name (the report vocabulary).
func (p Phase) String() string {
	if int(p) < NumPhases {
		return phaseNames[p]
	}
	return "unknown"
}

// PhaseNames returns the full phase vocabulary in enum order.
func PhaseNames() []string {
	out := make([]string, NumPhases)
	copy(out, phaseNames[:])
	return out
}

// MaxSegments bounds the per-transaction segment log. The deepest platform
// path (cluster fabric → conversion bridge → central fabric → LMI bridge →
// LMI node → SDRAM and back) stamps ~23 transitions; further transitions
// past the cap fold their time into the last segment and are counted.
const MaxSegments = 32

// Record is the preallocated per-transaction segment log. starts[i] is the
// absolute picosecond at which the transaction entered phases[i]; the
// segment ends where the next begins (or at Finish time for the last), so
// durations telescope: their sum is exactly endPS - starts[0].
type Record struct {
	slot      int32 // collector initiator slot, -1 when the origin is unknown
	n         int32 // segments in use (>= 1 after Start)
	overflows int32 // transitions dropped past MaxSegments
	write     bool
	posted    bool
	startPS   int64
	phases    [MaxSegments]Phase
	starts    [MaxSegments]int64
}

// Enter stamps a transition into ph at absolute time nowPS. Re-entering the
// current phase is a no-op (segments merge); a timestamp earlier than the
// current segment's start (possible only through modelling bugs — the
// stamping clocks share one kernel time axis) is clamped so the log stays
// monotonic and conservation still holds. Zero allocations.
func (r *Record) Enter(ph Phase, nowPS int64) {
	last := r.n - 1
	if r.phases[last] == ph {
		return
	}
	if nowPS < r.starts[last] {
		nowPS = r.starts[last]
	}
	if int(r.n) == MaxSegments {
		r.overflows++
		return
	}
	r.phases[r.n] = ph
	r.starts[r.n] = nowPS
	r.n++
}

// Current returns the phase the transaction is in now.
func (r *Record) Current() Phase { return r.phases[r.n-1] }

// EnterFrom stamps a transition into to only when the transaction is
// currently in from — the guard used by head-of-queue scans so a request
// already granted is not re-marked as waiting.
func (r *Record) EnterFrom(from, to Phase, nowPS int64) {
	if r.phases[r.n-1] == from {
		r.Enter(to, nowPS)
	}
}

// Segments returns the in-use portion of the segment log (test hook; the
// returned slices alias the record).
func (r *Record) Segments() (phases []Phase, starts []int64) {
	return r.phases[:r.n], r.starts[:r.n]
}
