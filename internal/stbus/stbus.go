// Package stbus models the STMicroelectronics STBus interconnect node: a
// crossbar with separate request and response physical channels, split
// transactions, message-granularity arbitration and per-initiator
// outstanding-transaction limits that depend on the protocol type.
//
// Protocol types (paper §3.1):
//
//   - Type 1: low-cost; one outstanding transaction per initiator
//     (each transaction blocks its initiator), no posted writes.
//   - Type 2: adds source/priority labelling, posted writes, split and
//     pipelined transactions; multiple outstanding, in-order delivery.
//   - Type 3: adds shaped packets and out-of-order transaction support;
//     multiple outstanding, out-of-order delivery allowed.
//
// The node is a sim.Clocked. Per cycle, each target's request channel can
// accept one packet (a read request costs one cycle; a write occupies the
// channel for its data beats) and each initiator's response channel can
// deliver one beat. Grant hand-over is free (asynchronous grant propagation,
// paper §4.1.2): a new transfer can start the cycle after the previous one
// ends with no idle cycle in between.
package stbus

import (
	"fmt"

	"mpsocsim/internal/attr"
	"mpsocsim/internal/bus"
	"mpsocsim/internal/metrics"
)

// Type selects the STBus protocol generation.
type Type int

// STBus protocol types.
const (
	Type1 Type = 1
	Type2 Type = 2
	Type3 Type = 3
)

// String returns "T1", "T2" or "T3".
func (t Type) String() string { return fmt.Sprintf("T%d", int(t)) }

// Config parameterizes an STBus node.
type Config struct {
	// Type is the protocol generation; it constrains the other fields.
	Type Type
	// MaxOutstanding limits in-flight transactions per initiator.
	// Type 1 forces 1. Default for T2/T3 is 8.
	MaxOutstanding int
	// MessageArbitration holds a target's grant on one initiator until it
	// completes a request marked MsgEnd, keeping memory-controller-
	// friendly sequences together (paper §3).
	MessageArbitration bool
	// BytesPerBeat is the node data width (e.g. 8 for 64-bit).
	BytesPerBeat int
}

// DefaultConfig returns a Type-3, 64-bit node with message arbitration, the
// configuration of the reference platform's central nodes.
func DefaultConfig() Config {
	return Config{Type: Type3, MaxOutstanding: 8, MessageArbitration: true, BytesPerBeat: 8}
}

func (c *Config) normalize() {
	if c.Type == 0 {
		c.Type = Type3
	}
	if c.Type == Type1 {
		c.MaxOutstanding = 1
	} else if c.MaxOutstanding <= 0 {
		c.MaxOutstanding = 8
	}
	if c.BytesPerBeat <= 0 {
		c.BytesPerBeat = 8
	}
}

// reqChannel is the per-target request-path state.
type reqChannel struct {
	// in-flight transfer on this target's request channel
	cur       *bus.Request
	beatsLeft int
	// message lock: initiator index holding the grant, -1 if free
	msgLock int
	// round-robin pointer
	rr int
	// stats
	busyCycles int64
}

// respChannel is the per-initiator response-path state.
type respChannel struct {
	rr         int
	busyCycles int64
}

// Node is an STBus crossbar node.
type Node struct {
	name string
	cfg  Config

	initiators []*bus.InitiatorPort
	targets    []*bus.TargetPort
	amap       *bus.AddrMap

	reqCh  []reqChannel
	respCh []respChannel

	outstanding []int
	// order[i] holds outstanding request IDs of initiator i in issue
	// order, for Type-2 in-order response enforcement.
	order [][]uint64
	// outTarget[i] is the target index of initiator i's outstanding
	// window (-1 when none). Type 2 keeps all in-flight transactions of
	// one initiator on a single target so that in-order delivery cannot
	// cross-block between targets (the standard in-order issue rule).
	outTarget []int

	// attrCol/attrNow, when set, make the node stamp latency-attribution
	// phases on every request it arbitrates (see EnableAttribution).
	// attrHead caches, per initiator port, whether the current committed
	// head already carries a stamped record (see scanAttrHeads).
	attrCol  *attr.Collector
	attrNow  func() int64
	attrHead []bool

	cycles    int64
	forwarded int64
	beatsOut  int64
	// grantStalls counts cycles a target's request channel had a granted
	// initiator but could not take the transfer because the target's input
	// FIFO was full — the backpressure signal of the shared request path.
	grantStalls int64
}

// NewNode builds an empty node; attach initiators and targets before
// running. The address map decodes request addresses to target indices.
func NewNode(name string, cfg Config, amap *bus.AddrMap) *Node {
	cfg.normalize()
	return &Node{name: name, cfg: cfg, amap: amap}
}

// Name returns the node name.
func (n *Node) Name() string { return n.name }

// Config returns the normalized configuration.
func (n *Node) Config() Config { return n.cfg }

// AttachInitiator connects an initiator port and returns its index, which
// the node writes into Request.Src for response routing. The port is owned
// (Updated) by the initiator component, not by the node.
func (n *Node) AttachInitiator(p *bus.InitiatorPort) int {
	n.initiators = append(n.initiators, p)
	n.respCh = append(n.respCh, respChannel{})
	n.outstanding = append(n.outstanding, 0)
	n.order = append(n.order, nil)
	n.outTarget = append(n.outTarget, -1)
	return len(n.initiators) - 1
}

// AttachTarget connects a target port and returns its index. The port is
// owned (Updated) by the target component.
func (n *Node) AttachTarget(p *bus.TargetPort) int {
	n.targets = append(n.targets, p)
	n.reqCh = append(n.reqCh, reqChannel{msgLock: -1})
	return len(n.targets) - 1
}

// EnableAttribution makes the node stamp latency-attribution phase
// transitions: records are attached lazily at the head-of-queue scan
// (PhaseArbWait), marked PhaseBusXfer at grant and PhaseTargetQueue when the
// transfer lands in the target's input FIFO. now must return the node
// clock's current edge in absolute picoseconds (sim.Clock.NowPS). Call
// before the run starts; with attribution off the hot path keeps a single
// nil check.
func (n *Node) EnableAttribution(col *attr.Collector, now func() int64) {
	n.attrCol = col
	n.attrNow = now
}

// Eval advances request and response paths one node cycle.
func (n *Node) Eval() {
	n.cycles++
	if n.attrCol != nil {
		n.scanAttrHeads()
	}
	n.evalRequestPaths()
	n.evalResponsePaths()
}

// scanAttrHeads attaches attribution records to requests newly arrived at an
// initiator-port head (entering arb_wait). The node is the sole consumer of
// these FIFOs, so attrHead caches "current head already stamped" per port:
// steady-state cost is one bool load per attached port and one inlined
// CanPop per empty port, with AttachAttr firing exactly once per
// head-arrival. Pop sites clear the flag.
func (n *Node) scanAttrHeads() {
	if len(n.attrHead) != len(n.initiators) {
		n.attrHead = make([]bool, len(n.initiators))
	}
	var now int64
	for i, ip := range n.initiators {
		if n.attrHead[i] || !ip.Req.CanPop() {
			continue
		}
		if now == 0 {
			now = n.attrNow()
		}
		bus.AttachAttr(n.attrCol, ip.Req.Peek(), now)
		n.attrHead[i] = true
	}
}

// Update: the node owns no FIFOs (ports are owned by the attached
// components), so there is nothing to commit.
func (n *Node) Update() {}

func (n *Node) evalRequestPaths() {
	for t := range n.targets {
		ch := &n.reqCh[t]
		if ch.cur != nil {
			ch.busyCycles++
			ch.beatsLeft--
			if ch.beatsLeft == 0 {
				n.completeTransfer(t, ch)
			}
			continue
		}
		// arbitration: pick an initiator whose head request decodes to t
		init := n.arbitrate(t, ch)
		if init < 0 {
			continue
		}
		ip := n.initiators[init]
		req := ip.Req.Peek()
		if !n.targets[t].Req.CanPush() {
			n.grantStalls++
			continue // target input FIFO full: no grant this cycle
		}
		ip.Req.Pop()
		req.Src = init
		if n.attrCol != nil {
			// Attach here as well as at the head scan, so a request
			// granted the same cycle it became head still gets a record;
			// the popped port's next head needs a fresh stamp.
			now := n.attrNow()
			bus.AttachAttr(n.attrCol, req, now)
			req.Attr.Enter(attr.PhaseBusXfer, now)
			n.attrHead[init] = false
		}
		if n.cfg.Type == Type1 {
			req.Posted = false // Type 1 has no posted writes
		}
		ch.cur = req
		n.outTarget[init] = t
		ch.busyCycles++
		// A read occupies the request channel for one packet cycle; a
		// write carries its data beats on the request channel.
		cost := 1
		if req.Op == bus.OpWrite {
			cost = req.Beats
			if cost < 1 {
				cost = 1
			}
		}
		ch.beatsLeft = cost - 1
		n.outstanding[init]++
		n.order[init] = append(n.order[init], req.ID)
		if ch.beatsLeft == 0 {
			n.completeTransfer(t, ch)
		}
		if n.cfg.MessageArbitration {
			if req.MsgEnd {
				ch.msgLock = -1
			} else {
				ch.msgLock = init
			}
		}
	}
}

// completeTransfer pushes the fully transferred request into the target FIFO
// and releases the channel.
func (n *Node) completeTransfer(t int, ch *reqChannel) {
	req := ch.cur
	if rec := req.Attr; rec != nil && n.attrNow != nil {
		rec.Enter(attr.PhaseTargetQueue, n.attrNow())
	}
	n.targets[t].Req.Push(req)
	n.forwarded++
	ch.cur = nil
	if req.Op == bus.OpWrite && req.Posted && n.cfg.Type >= Type2 {
		// Posted write completes at acceptance; no response returns.
		n.retire(req.Src, req.ID)
	}
}

// arbitrate returns the initiator index granted for target t, or -1.
func (n *Node) arbitrate(t int, ch *reqChannel) int {
	ni := len(n.initiators)
	if ni == 0 {
		return -1
	}
	eligible := func(i int) bool {
		ip := n.initiators[i]
		if !ip.Req.CanPop() {
			return false
		}
		req := ip.Req.Peek()
		if n.amap.Decode(req.Addr) != t {
			return false
		}
		if n.outstanding[i] >= n.cfg.MaxOutstanding {
			return false
		}
		if n.cfg.Type == Type2 && n.outstanding[i] > 0 && n.outTarget[i] != t {
			return false // in-order issue rule: one target at a time
		}
		return true
	}
	if ch.msgLock >= 0 {
		// Grant held for an in-progress message: serve the holder while
		// it keeps requests to this target queued back-to-back. Any
		// stall — empty queue, head decoding elsewhere, or the holder's
		// outstanding window exhausted — releases the lock so one
		// master's message cannot starve the channel (the grant-timeout
		// behaviour of real message arbiters).
		i := ch.msgLock
		if eligible(i) {
			return i
		}
		ch.msgLock = -1
	}
	// Priority first (higher Prio wins), round-robin among equals.
	best, bestPrio := -1, 0
	for k := 0; k < ni; k++ {
		i := (ch.rr + k) % ni
		if !eligible(i) {
			continue
		}
		p := n.initiators[i].Req.Peek().Prio
		if best < 0 || p > bestPrio {
			best, bestPrio = i, p
		}
	}
	if best >= 0 {
		ch.rr = (best + 1) % ni
	}
	return best
}

func (n *Node) evalResponsePaths() {
	for i := range n.initiators {
		ch := &n.respCh[i]
		ip := n.initiators[i]
		if !ip.Resp.CanPush() {
			continue
		}
		nt := len(n.targets)
		for k := 0; k < nt; k++ {
			t := (ch.rr + k) % nt
			tp := n.targets[t]
			if !tp.Resp.CanPop() {
				continue
			}
			beat := tp.Resp.Peek()
			if beat.Req.Src != i {
				continue
			}
			// Type 2 delivers responses in issue order per initiator.
			if n.cfg.Type == Type2 && len(n.order[i]) > 0 && n.order[i][0] != beat.Req.ID {
				continue
			}
			tp.Resp.Pop()
			ip.Resp.Push(beat)
			ch.busyCycles++
			n.beatsOut++
			if beat.Last {
				n.retire(i, beat.Req.ID)
			}
			ch.rr = (t + 1) % nt
			break
		}
	}
}

// retire removes a completed request from the outstanding accounting.
func (n *Node) retire(init int, id uint64) {
	if n.outstanding[init] > 0 {
		n.outstanding[init]--
	}
	if n.outstanding[init] == 0 {
		n.outTarget[init] = -1
	}
	ord := n.order[init]
	for j, v := range ord {
		if v == id {
			// Close the gap in place: the three-index append forces a
			// fresh backing array on every retire, which is pure
			// allocator churn on the response hot path.
			copy(ord[j:], ord[j+1:])
			n.order[init] = ord[:len(ord)-1]
			break
		}
	}
}

// Outstanding returns the in-flight count for initiator i (for tests).
func (n *Node) Outstanding(i int) int { return n.outstanding[i] }

// totalOutstanding sums the in-flight transactions across all initiators —
// the node's outstanding-occupancy gauge.
func (n *Node) totalOutstanding() int64 {
	var t int64
	for _, o := range n.outstanding {
		t += int64(o)
	}
	return t
}

// totalReqBusy sums the busy cycles of all request channels.
func (n *Node) totalReqBusy() int64 {
	var t int64
	for i := range n.reqCh {
		t += n.reqCh[i].busyCycles
	}
	return t
}

// RegisterMetrics registers the node's telemetry under "stbus.<name>.*" on
// the given clock domain: grant/beat counters, request-channel stall cycles,
// aggregate channel busy cycles, and the outstanding-occupancy gauge. All
// instruments are func-backed reads of counters the node already maintains,
// so the arbitration hot path is untouched.
func (n *Node) RegisterMetrics(m *metrics.Registry, clock string) {
	p := "stbus." + n.name + "."
	m.CounterFunc(p+"grants", func() int64 { return n.forwarded })
	m.CounterFunc(p+"beats_out", func() int64 { return n.beatsOut })
	m.CounterFunc(p+"grant_stall_cycles", func() int64 { return n.grantStalls })
	m.CounterFunc(p+"req_busy_cycles", n.totalReqBusy)
	m.GaugeFunc(p+"outstanding", clock, n.totalOutstanding)
}

// Stats reports node activity.
func (n *Node) Stats() Stats {
	s := Stats{
		Cycles:      n.cycles,
		Forwarded:   n.forwarded,
		BeatsOut:    n.beatsOut,
		GrantStalls: n.grantStalls,
	}
	for i := range n.reqCh {
		s.ReqChannelBusy = append(s.ReqChannelBusy, n.reqCh[i].busyCycles)
	}
	for i := range n.respCh {
		s.RespChannelBusy = append(s.RespChannelBusy, n.respCh[i].busyCycles)
	}
	return s
}

// Stats summarizes node activity over the run.
type Stats struct {
	Cycles          int64
	Forwarded       int64
	BeatsOut        int64
	GrantStalls     int64
	ReqChannelBusy  []int64 // per target
	RespChannelBusy []int64 // per initiator
}

// ReqUtilization returns the busy fraction of target t's request channel.
func (s Stats) ReqUtilization(t int) float64 {
	if s.Cycles == 0 || t >= len(s.ReqChannelBusy) {
		return 0
	}
	return float64(s.ReqChannelBusy[t]) / float64(s.Cycles)
}

// RespUtilization returns the busy fraction of initiator i's response
// channel.
func (s Stats) RespUtilization(i int) float64 {
	if s.Cycles == 0 || i >= len(s.RespChannelBusy) {
		return 0
	}
	return float64(s.RespChannelBusy[i]) / float64(s.Cycles)
}
