package stbus

import (
	"testing"
	"testing/quick"

	"mpsocsim/internal/bus"
	"mpsocsim/internal/mem"
	"mpsocsim/internal/sim"
)

// scripted is a minimal initiator for fabric tests: it pushes a scripted
// request sequence as fast as the fabric accepts and records responses.
type scripted struct {
	port      *bus.InitiatorPort
	clk       *sim.Clock
	script    []*bus.Request
	i         int
	beats     []bus.Beat
	completed map[uint64]int64 // request ID -> completion cycle
	issued    map[uint64]int64
}

func newScripted(name string, clk *sim.Clock, script []*bus.Request) *scripted {
	return &scripted{
		port:      bus.NewInitiatorPort(name, 4, 8),
		clk:       clk,
		script:    script,
		completed: map[uint64]int64{},
		issued:    map[uint64]int64{},
	}
}

func (s *scripted) Eval() {
	if s.i < len(s.script) && s.port.Req.CanPush() {
		r := s.script[s.i]
		r.IssueCycle = s.clk.Cycles()
		s.issued[r.ID] = s.clk.Cycles()
		s.port.Req.Push(r)
		s.i++
	}
	for s.port.Resp.CanPop() {
		b := s.port.Resp.Pop()
		s.beats = append(s.beats, b)
		if b.Last {
			s.completed[b.Req.ID] = s.clk.Cycles()
		}
	}
}

func (s *scripted) Update() { s.port.Update() }

// bench is a one-node testbench with m memories and the given initiators.
type bench struct {
	k    *sim.Kernel
	clk  *sim.Clock
	node *Node
	mems []*mem.Memory
	inis []*scripted
}

func newBench(t *testing.T, cfg Config, memCfg mem.Config, nMems int, scripts ...[]*bus.Request) *bench {
	t.Helper()
	k := sim.NewKernel()
	clk := k.NewClock("clk", 250)
	var regions []bus.Region
	for i := 0; i < nMems; i++ {
		regions = append(regions, bus.Region{Base: uint64(i) << 24, Size: 1 << 24, Target: i})
	}
	node := NewNode("n0", cfg, bus.MustAddrMap(regions...))
	b := &bench{k: k, clk: clk, node: node}
	for i := 0; i < nMems; i++ {
		m := mem.New("mem", memCfg)
		node.AttachTarget(m.Port())
		b.mems = append(b.mems, m)
	}
	for _, sc := range scripts {
		ini := newScripted("ini", clk, sc)
		node.AttachInitiator(ini.port)
		b.inis = append(b.inis, ini)
	}
	for _, ini := range b.inis {
		clk.Register(ini)
	}
	clk.Register(node)
	for _, m := range b.mems {
		clk.Register(m)
	}
	return b
}

// runToCompletion runs until every non-posted request of every initiator has
// completed; it fails the test on timeout.
func (b *bench) runToCompletion(t *testing.T) {
	t.Helper()
	pendingLeft := func() bool {
		for _, ini := range b.inis {
			want := 0
			for _, r := range ini.script {
				if !(r.Op == bus.OpWrite && r.Posted) {
					want++
				}
			}
			if len(ini.completed) < want {
				return true
			}
		}
		return false
	}
	if !b.k.RunWhile(pendingLeft, 10_000_000_000) { // 10 ms sim time
		t.Fatal("testbench timed out with transactions pending")
	}
}

func rd(id uint64, addr uint64, beats int) *bus.Request {
	return &bus.Request{ID: id, Op: bus.OpRead, Addr: addr, Beats: beats, BytesPerBeat: 8}
}

func wr(id uint64, addr uint64, beats int, posted bool) *bus.Request {
	return &bus.Request{ID: id, Op: bus.OpWrite, Addr: addr, Beats: beats, BytesPerBeat: 8, Posted: posted}
}

func TestSingleReadCompletes(t *testing.T) {
	b := newBench(t, DefaultConfig(), mem.DefaultConfig(), 1, []*bus.Request{rd(1, 0x100, 4)})
	b.runToCompletion(t)
	ini := b.inis[0]
	if len(ini.beats) != 4 {
		t.Fatalf("got %d beats, want 4", len(ini.beats))
	}
	for i, beat := range ini.beats {
		if beat.Idx != i {
			t.Fatalf("beat %d out of order (idx %d)", i, beat.Idx)
		}
	}
	if ini.completed[1] <= ini.issued[1] {
		t.Fatal("completion must be after issue")
	}
}

func TestType1BlocksSecondTransaction(t *testing.T) {
	cfg := Config{Type: Type1, MessageArbitration: false, BytesPerBeat: 8}
	b := newBench(t, cfg, mem.DefaultConfig(), 1,
		[]*bus.Request{rd(1, 0x100, 4), rd(2, 0x200, 4)})
	maxOut := 0
	b.clk.Register(&sim.ClockedFunc{OnEval: func() {
		if o := b.node.Outstanding(0); o > maxOut {
			maxOut = o
		}
	}})
	b.runToCompletion(t)
	if maxOut != 1 {
		t.Fatalf("Type 1 max outstanding = %d, want 1", maxOut)
	}
	ini := b.inis[0]
	if ini.completed[2] <= ini.completed[1] {
		t.Fatal("second transaction must complete after first")
	}
}

func TestType3MultipleOutstanding(t *testing.T) {
	cfg := Config{Type: Type3, MaxOutstanding: 4, BytesPerBeat: 8}
	// slow memory so requests pile up
	b := newBench(t, cfg, mem.Config{WaitStates: 6, ReqDepth: 4, RespDepth: 2}, 1,
		[]*bus.Request{rd(1, 0x100, 2), rd(2, 0x200, 2), rd(3, 0x300, 2), rd(4, 0x400, 2)})
	maxOut := 0
	b.clk.Register(&sim.ClockedFunc{OnEval: func() {
		if o := b.node.Outstanding(0); o > maxOut {
			maxOut = o
		}
	}})
	b.runToCompletion(t)
	if maxOut < 2 {
		t.Fatalf("Type 3 should pipeline transactions, max outstanding = %d", maxOut)
	}
}

func TestType2InOrderSingleTargetWindow(t *testing.T) {
	// Requests alternate between two targets; Type 2 must never hold
	// outstanding transactions at two targets at once, and responses must
	// arrive in issue order.
	cfg := Config{Type: Type2, MaxOutstanding: 4, BytesPerBeat: 8}
	script := []*bus.Request{
		rd(1, 0x0000_0100, 2), rd(2, 0x0100_0000, 2),
		rd(3, 0x0000_0200, 2), rd(4, 0x0100_0100, 2),
	}
	b := newBench(t, cfg, mem.DefaultConfig(), 2, script)
	b.runToCompletion(t)
	ini := b.inis[0]
	var lastDone int64 = -1
	for id := uint64(1); id <= 4; id++ {
		c := ini.completed[id]
		if c < lastDone {
			t.Fatalf("response order violated: req %d done at %d, previous at %d", id, c, lastDone)
		}
		lastDone = c
	}
}

func TestType3OutOfOrderAcrossTargets(t *testing.T) {
	// Target 0 is slow, target 1 fast. A Type 3 initiator issuing to the
	// slow then fast target should get the fast response first.
	k := sim.NewKernel()
	clk := k.NewClock("clk", 250)
	amap := bus.MustAddrMap(
		bus.Region{Base: 0, Size: 1 << 24, Target: 0},
		bus.Region{Base: 1 << 24, Size: 1 << 24, Target: 1},
	)
	node := NewNode("n0", Config{Type: Type3, MaxOutstanding: 4, BytesPerBeat: 8}, amap)
	slow := mem.New("slow", mem.Config{WaitStates: 20, ReqDepth: 2, RespDepth: 2})
	fast := mem.New("fast", mem.Config{WaitStates: 0, ReqDepth: 2, RespDepth: 2})
	node.AttachTarget(slow.Port())
	node.AttachTarget(fast.Port())
	ini := newScripted("ini", clk, []*bus.Request{rd(1, 0, 2), rd(2, 1<<24, 2)})
	node.AttachInitiator(ini.port)
	clk.Register(ini)
	clk.Register(node)
	clk.Register(slow)
	clk.Register(fast)
	k.RunWhile(func() bool { return len(ini.completed) < 2 }, 1e9)
	if len(ini.completed) != 2 {
		t.Fatal("timed out")
	}
	if ini.completed[2] >= ini.completed[1] {
		t.Fatalf("Type 3 should deliver fast-target response first: t1=%d t2=%d",
			ini.completed[1], ini.completed[2])
	}
}

func TestPostedWritesRetireAtAcceptance(t *testing.T) {
	cfg := Config{Type: Type2, MaxOutstanding: 2, BytesPerBeat: 8}
	// Slow memory: posted writes must not block the initiator's window
	// for long since they retire when the node accepts them.
	b := newBench(t, cfg, mem.Config{WaitStates: 4, ReqDepth: 4, RespDepth: 2}, 1,
		[]*bus.Request{
			wr(1, 0x100, 2, true), wr(2, 0x200, 2, true),
			wr(3, 0x300, 2, true), rd(4, 0x400, 1),
		})
	b.runToCompletion(t)
	if len(b.inis[0].completed) != 1 {
		t.Fatalf("only the read should produce a completion, got %d", len(b.inis[0].completed))
	}
	if b.node.Outstanding(0) != 0 {
		t.Fatalf("outstanding = %d after completion, want 0", b.node.Outstanding(0))
	}
}

func TestType1ForcesNonPostedWrites(t *testing.T) {
	cfg := Config{Type: Type1, BytesPerBeat: 8}
	b := newBench(t, cfg, mem.DefaultConfig(), 1,
		[]*bus.Request{wr(1, 0x100, 2, true), rd(2, 0x200, 1)})
	// The posted flag is cleared by the Type 1 node, so the write gets an
	// ack and appears in completed.
	b.k.RunWhile(func() bool { return len(b.inis[0].completed) < 2 }, 1e9)
	if len(b.inis[0].completed) != 2 {
		t.Fatal("Type 1 write should have been converted to non-posted and acked")
	}
}

func TestMessageArbitrationKeepsMessagesTogether(t *testing.T) {
	// Two initiators each send a 3-request message. With message
	// arbitration the target must see each message contiguously.
	mkMsg := func(base uint64, idBase uint64, seq uint64) []*bus.Request {
		var s []*bus.Request
		for i := 0; i < 3; i++ {
			r := rd(idBase+uint64(i), base+uint64(i)*0x40, 2)
			r.MsgSeq = seq
			r.MsgEnd = i == 2
			s = append(s, r)
		}
		return s
	}
	cfg := Config{Type: Type3, MaxOutstanding: 8, MessageArbitration: true, BytesPerBeat: 8}

	k := sim.NewKernel()
	clk := k.NewClock("clk", 250)
	node := NewNode("n0", cfg, bus.Single(0))
	// intercepting target records arrival order
	tp := bus.NewTargetPort("probe", 16, 16)
	node.AttachTarget(tp)
	var arrival []uint64
	probe := &sim.ClockedFunc{
		OnEval: func() {
			for tp.Req.CanPop() {
				r := tp.Req.Pop()
				arrival = append(arrival, r.ID)
				// respond instantly with one beat
				if tp.Resp.CanPush() {
					tp.Resp.Push(bus.Beat{Req: r, Idx: 0, Last: true})
				}
			}
		},
		OnUpdate: tp.Update,
	}
	a := newScripted("a", clk, mkMsg(0x1000, 10, 1))
	bIni := newScripted("b", clk, mkMsg(0x2000, 20, 2))
	node.AttachInitiator(a.port)
	node.AttachInitiator(bIni.port)
	clk.Register(a)
	clk.Register(bIni)
	clk.Register(node)
	clk.Register(probe)
	k.RunWhile(func() bool { return len(arrival) < 6 }, 1e9)
	if len(arrival) != 6 {
		t.Fatalf("got %d arrivals, want 6", len(arrival))
	}
	// each initiator's 3 requests must be contiguous
	firstOwner := arrival[0] / 10
	for i := 1; i < 3; i++ {
		if arrival[i]/10 != firstOwner {
			t.Fatalf("message interleaved: arrival order %v", arrival)
		}
	}
	for i := 4; i < 6; i++ {
		if arrival[i]/10 != arrival[3]/10 {
			t.Fatalf("message interleaved: arrival order %v", arrival)
		}
	}
}

func TestPriorityArbitration(t *testing.T) {
	// Initiator 1 has higher priority; with both queued, its request is
	// served first (after any in-progress transfer).
	cfg := Config{Type: Type3, MaxOutstanding: 8, MessageArbitration: false, BytesPerBeat: 8}
	lo := rd(1, 0x100, 2)
	hi := rd(2, 0x200, 2)
	hi.Prio = 7
	b := newBench(t, cfg, mem.Config{WaitStates: 2, ReqDepth: 4, RespDepth: 2}, 1,
		[]*bus.Request{lo}, []*bus.Request{hi})
	b.runToCompletion(t)
	// Both issued cycle 0; the high-priority one should not finish last by
	// a wide margin. Check service order at the memory: completion order
	// equals service order for a single in-order memory.
	if b.inis[1].completed[2] > b.inis[0].completed[1] {
		t.Fatalf("high-priority request completed after low-priority one (%d vs %d)",
			b.inis[1].completed[2], b.inis[0].completed[1])
	}
}

func TestWriteOccupiesRequestChannel(t *testing.T) {
	// A long write from initiator 0 delays initiator 1's read by at least
	// the write's beat count on the request channel.
	cfg := Config{Type: Type3, MaxOutstanding: 8, MessageArbitration: false, BytesPerBeat: 8}
	b := newBench(t, cfg, mem.Config{WaitStates: 0, ReqDepth: 8, RespDepth: 8}, 1,
		[]*bus.Request{wr(1, 0x100, 16, false)}, []*bus.Request{rd(2, 0x200, 1)})
	b.runToCompletion(t)
	s := b.node.Stats()
	// request channel busy for >= 16 (write beats) + 1 (read) cycles
	if s.ReqChannelBusy[0] < 17 {
		t.Fatalf("request channel busy %d cycles, want >= 17", s.ReqChannelBusy[0])
	}
}

func TestSplitTransactionsOverlapAcrossTargets(t *testing.T) {
	// Two initiators to two different memories: total time must be far
	// less than 2x the single-pair time (parallel request/response flows).
	single := func() int64 {
		b := newBench(t, DefaultConfig(), mem.Config{WaitStates: 1, ReqDepth: 2, RespDepth: 2}, 1,
			[]*bus.Request{rd(1, 0x10, 8), rd(2, 0x20, 8), rd(3, 0x30, 8), rd(4, 0x40, 8)})
		b.runToCompletion(t)
		return b.clk.Cycles()
	}()
	dual := func() int64 {
		s0 := []*bus.Request{rd(1, 0x10, 8), rd(2, 0x20, 8), rd(3, 0x30, 8), rd(4, 0x40, 8)}
		s1 := []*bus.Request{rd(11, 1<<24|0x10, 8), rd(12, 1<<24|0x20, 8), rd(13, 1<<24|0x30, 8), rd(14, 1<<24|0x40, 8)}
		b := newBench(t, DefaultConfig(), mem.Config{WaitStates: 1, ReqDepth: 2, RespDepth: 2}, 2, s0, s1)
		b.runToCompletion(t)
		return b.clk.Cycles()
	}()
	if float64(dual) > 1.5*float64(single) {
		t.Fatalf("dual-target run (%d cycles) should overlap with single (%d cycles)", dual, single)
	}
}

func TestStatsUtilizationBounds(t *testing.T) {
	b := newBench(t, DefaultConfig(), mem.DefaultConfig(), 1,
		[]*bus.Request{rd(1, 0x100, 4), wr(2, 0x200, 4, false)})
	b.runToCompletion(t)
	s := b.node.Stats()
	if u := s.ReqUtilization(0); u <= 0 || u > 1 {
		t.Fatalf("req utilization %v out of (0,1]", u)
	}
	if u := s.RespUtilization(0); u <= 0 || u > 1 {
		t.Fatalf("resp utilization %v out of (0,1]", u)
	}
	if s.ReqUtilization(9) != 0 || s.RespUtilization(9) != 0 {
		t.Fatal("out-of-range channel utilization must be 0")
	}
	if s.Forwarded != 2 {
		t.Fatalf("forwarded = %d, want 2", s.Forwarded)
	}
}

func TestTypeString(t *testing.T) {
	if Type1.String() != "T1" || Type2.String() != "T2" || Type3.String() != "T3" {
		t.Fatal("Type String broken")
	}
}

// Property: any random mix of reads and non-posted writes from up to 4
// initiators to up to 2 memories completes, with one Last beat per request
// and read beat counts matching burst lengths.
func TestPropertyAllTransactionsComplete(t *testing.T) {
	prop := func(seed uint64, nReq8, nIni8, typ8 uint8) bool {
		rng := sim.NewRand(seed)
		nIni := int(nIni8%4) + 1
		nReq := int(nReq8%12) + 1
		typ := Type(int(typ8%3) + 1)
		cfg := Config{Type: typ, MaxOutstanding: 4, MessageArbitration: seed%2 == 0, BytesPerBeat: 8}
		var scripts [][]*bus.Request
		id := uint64(1)
		total := 0
		for i := 0; i < nIni; i++ {
			var s []*bus.Request
			for j := 0; j < nReq; j++ {
				beats := rng.Range(1, 8)
				addr := uint64(rng.Intn(2)) << 24
				addr |= uint64(rng.Intn(1 << 12))
				if rng.Bool(0.5) {
					s = append(s, rd(id, addr, beats))
				} else {
					s = append(s, wr(id, addr, beats, false))
				}
				id++
				total++
			}
			scripts = append(scripts, s)
		}
		b := newBench(t, cfg, mem.Config{WaitStates: 1, ReqDepth: 2, RespDepth: 4}, 2, scripts...)
		done := func() int {
			n := 0
			for _, ini := range b.inis {
				n += len(ini.completed)
			}
			return n
		}
		b.k.RunWhile(func() bool { return done() < total }, 1e10)
		if done() != total {
			return false
		}
		for _, ini := range b.inis {
			readBeats := map[uint64]int{}
			for _, beat := range ini.beats {
				if beat.Req.Op == bus.OpRead {
					readBeats[beat.Req.ID]++
				}
			}
			for _, r := range ini.script {
				if r.Op == bus.OpRead && readBeats[r.ID] != r.Beats {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
