package stbus

import (
	"testing"

	"mpsocsim/internal/bus"
	"mpsocsim/internal/mem"
	"mpsocsim/internal/sim"
)

// BenchmarkNodeCycle measures node evaluation cost with 8 initiators
// streaming reads to one memory.
func BenchmarkNodeCycle(b *testing.B) {
	k := sim.NewKernel()
	clk := k.NewClock("clk", 250)
	node := NewNode("n", DefaultConfig(), bus.Single(0))
	m := mem.New("m", mem.DefaultConfig())
	node.AttachTarget(m.Port())
	var ids bus.IDSource
	for i := 0; i < 8; i++ {
		port := bus.NewInitiatorPort("i", 4, 8)
		node.AttachInitiator(port)
		p := port
		clk.Register(&sim.ClockedFunc{
			OnEval: func() {
				if p.Req.CanPush() {
					p.Req.Push(&bus.Request{
						ID: ids.Next(), Op: bus.OpRead,
						Addr: 0x100, Beats: 4, BytesPerBeat: 8, MsgEnd: true,
					})
				}
				for p.Resp.CanPop() {
					p.Resp.Pop()
				}
			},
			OnUpdate: p.Update,
		})
	}
	clk.Register(node)
	clk.Register(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Step()
	}
}
