package stbus

import (
	"mpsocsim/internal/attr"
	"mpsocsim/internal/bus"
	"mpsocsim/internal/snapshot"
)

// EncodeState serializes the node's mutable state (DESIGN.md §16): per-target
// request-channel occupancy, per-initiator response-path pointers, the
// outstanding-transaction accounting and the activity counters. Ports belong
// to the attached components and are serialized by their owners.
func (n *Node) EncodeState(e *snapshot.Encoder) {
	e.Tag('S')
	e.U(uint64(len(n.reqCh)))
	for t := range n.reqCh {
		ch := &n.reqCh[t]
		bus.EncodeReqRef(e, ch.cur)
		e.I(int64(ch.beatsLeft))
		e.I(int64(ch.msgLock))
		e.I(int64(ch.rr))
		e.I(ch.busyCycles)
	}
	e.U(uint64(len(n.respCh)))
	for i := range n.respCh {
		e.I(int64(n.respCh[i].rr))
		e.I(n.respCh[i].busyCycles)
	}
	for i := range n.outstanding {
		e.I(int64(n.outstanding[i]))
		e.I(int64(n.outTarget[i]))
		e.U(uint64(len(n.order[i])))
		for _, id := range n.order[i] {
			e.U(id)
		}
	}
	// attrHead is sized lazily on the first attributed Eval; entries are
	// meaningful whenever attribution ran at all.
	e.U(uint64(len(n.attrHead)))
	for _, h := range n.attrHead {
		e.Bool(h)
	}
	e.I(n.cycles)
	e.I(n.forwarded)
	e.I(n.beatsOut)
	e.I(n.grantStalls)
}

// DecodeState restores a node serialized by EncodeState. The receiver must
// have the same attached initiator/target counts (rebuilt from the spec).
func (n *Node) DecodeState(d *snapshot.Decoder, col *attr.Collector) {
	d.Tag('S')
	nt := d.N(1 << 16)
	if d.Err() != nil {
		return
	}
	if nt != len(n.reqCh) {
		d.Corrupt("stbus %q target count %d does not match platform's %d", n.name, nt, len(n.reqCh))
		return
	}
	for t := range n.reqCh {
		ch := &n.reqCh[t]
		ch.cur = bus.DecodeReqRef(d, col)
		ch.beatsLeft = int(d.I())
		ch.msgLock = int(d.I())
		ch.rr = int(d.I())
		ch.busyCycles = d.I()
	}
	ni := d.N(1 << 16)
	if d.Err() != nil {
		return
	}
	if ni != len(n.respCh) {
		d.Corrupt("stbus %q initiator count %d does not match platform's %d", n.name, ni, len(n.respCh))
		return
	}
	for i := range n.respCh {
		n.respCh[i].rr = int(d.I())
		n.respCh[i].busyCycles = d.I()
	}
	for i := range n.outstanding {
		n.outstanding[i] = int(d.I())
		n.outTarget[i] = int(d.I())
		cnt := d.N(1 << 16)
		n.order[i] = n.order[i][:0]
		for j := 0; j < cnt; j++ {
			n.order[i] = append(n.order[i], d.U())
		}
		if d.Err() != nil {
			return
		}
	}
	nh := d.N(1 << 16)
	if d.Err() != nil {
		return
	}
	if nh != 0 && nh != len(n.initiators) {
		d.Corrupt("stbus %q attr head cache size %d does not match %d initiators", n.name, nh, len(n.initiators))
		return
	}
	n.attrHead = n.attrHead[:0]
	for i := 0; i < nh; i++ {
		n.attrHead = append(n.attrHead, d.Bool())
	}
	n.cycles = d.I()
	n.forwarded = d.I()
	n.beatsOut = d.I()
	n.grantStalls = d.I()
}
