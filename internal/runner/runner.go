// Package runner fans independent simulation jobs out across a bounded
// worker pool. Every platform run in this repository is hermetic — a
// Spec-derived closure with no shared mutable state — so regenerating a
// figure is an embarrassingly parallel map. The runner exploits that while
// preserving the one property the experiment harness depends on: results
// come back in submission order, so tables, CSVs and golden numbers are
// byte-identical to a serial regeneration regardless of worker count.
//
// A job that panics does not kill the whole regeneration: the panic is
// recovered, wrapped in a *PanicError (with the job name and stack) and
// reported as that job's error, so one crashed simulation leaves every
// other figure intact.
package runner

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"
)

// Job is one named unit of work: typically a closure over a platform.Spec
// that builds, runs and summarizes one simulation instance.
type Job[T any] struct {
	Name string
	Run  func() (T, error)
}

// Result pairs a job with its outcome. Map returns results in submission
// order: Results[i] always corresponds to jobs[i].
type Result[T any] struct {
	Name    string
	Value   T
	Err     error
	Elapsed time.Duration
}

// PanicError is the error reported for a job whose Run panicked.
type PanicError struct {
	Name  string
	Value any
	Stack []byte
}

// Error summarizes the panic; the captured stack is in Stack.
func (e *PanicError) Error() string {
	return fmt.Sprintf("job %q panicked: %v", e.Name, e.Value)
}

// Options tune a Map call. The zero value selects runtime.NumCPU() workers
// and no progress output.
type Options struct {
	// Workers bounds concurrently running jobs. <= 0 selects
	// runtime.NumCPU(); 1 runs the jobs serially in the calling
	// goroutine (the -j 1 escape hatch).
	Workers int
	// Progress, when non-nil, receives a live single-line progress/ETA
	// display (carriage-return overwritten, newline-terminated at the
	// end). Pass os.Stderr from a CLI; leave nil in tests.
	Progress io.Writer
	// Label prefixes the progress line (e.g. "fig4").
	Label string
	// Extra, when non-nil, supplies a live suffix appended to the progress
	// line — the experiments harness plugs the telemetry hub's aggregate
	// cycles/s and slowest-job ETA in here. It is polled from a repaint
	// ticker between job completions, so the suffix stays fresh while
	// long jobs run; it must be safe for concurrent use.
	Extra func() string
}

func (o Options) workers() int {
	if o.Workers <= 0 {
		return runtime.NumCPU()
	}
	return o.Workers
}

// Map runs every job under the options' worker bound and returns the
// results in submission order. It never returns early: every job runs (or
// records its panic) even when earlier jobs failed.
func Map[T any](jobs []Job[T], opts Options) []Result[T] {
	results := make([]Result[T], len(jobs))
	if len(jobs) == 0 {
		return results
	}
	prog := newProgress(opts.Progress, opts.Label, len(jobs), opts.Extra)
	defer prog.finish()
	run := func(i int) {
		start := time.Now()
		results[i].Name = jobs[i].Name
		results[i].Value, results[i].Err = capture(jobs[i])
		results[i].Elapsed = time.Since(start)
		prog.step(jobs[i].Name)
	}

	workers := opts.workers()
	if workers == 1 || len(jobs) == 1 {
		for i := range jobs {
			run(i)
		}
		return results
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	indices := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range indices {
				run(i)
			}
		}()
	}
	for i := range jobs {
		indices <- i
	}
	close(indices)
	wg.Wait()
	return results
}

// capture runs one job, converting a panic into a *PanicError.
func capture[T any](j Job[T]) (value T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Name: j.Name, Value: r, Stack: debug.Stack()}
		}
	}()
	return j.Run()
}

// Values unpacks results into their values. All job errors are joined (and
// prefixed with the job name) so a caller can fan out, then fail once.
func Values[T any](results []Result[T]) ([]T, error) {
	values := make([]T, len(results))
	var errs []error
	for i, r := range results {
		values[i] = r.Value
		if r.Err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", r.Name, r.Err))
		}
	}
	return values, errors.Join(errs...)
}

// First returns the single value of a one-job Map, for callers that use
// the runner only for its panic capture.
func First[T any](results []Result[T]) (T, error) {
	values, err := Values(results)
	if len(values) == 0 {
		var zero T
		return zero, err
	}
	return values[0], err
}

// progress renders the live completion line. All methods are safe for
// concurrent use; a nil writer disables everything at ~zero cost. When an
// Extra supplier is configured, a repaint goroutine refreshes the line twice
// a second so the live suffix (aggregate cycles/s, per-job ETA) moves while
// long jobs run.
type progress struct {
	w     io.Writer
	label string
	total int
	start time.Time
	extra func() string
	stop  chan struct{}

	mu       sync.Mutex
	lastName string
	width    int
	finished bool
	done     atomic.Int64
}

func newProgress(w io.Writer, label string, total int, extra func() string) *progress {
	p := &progress{w: w, label: label, total: total, start: time.Now(), extra: extra, stop: make(chan struct{})}
	if w != nil && extra != nil {
		go func() {
			tick := time.NewTicker(500 * time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-p.stop:
					return
				case <-tick.C:
					p.repaint()
				}
			}
		}()
	}
	return p
}

// render writes one overwrite-in-place line; caller holds mu.
func (p *progress) render() {
	done := int(p.done.Load())
	elapsed := time.Since(p.start)
	var eta time.Duration
	if done > 0 {
		eta = time.Duration(float64(elapsed) / float64(done) * float64(p.total-done))
	}
	line := fmt.Sprintf("%s[%d/%d] %-24s %s elapsed, eta %s",
		p.prefix(), done, p.total, p.lastName, elapsed.Round(time.Millisecond), eta.Round(time.Millisecond))
	if p.extra != nil {
		if s := p.extra(); s != "" {
			line += " " + s
		}
	}
	p.print(line)
}

// print pads the line to the widest one rendered so far, so a shrinking
// suffix never leaves stale characters behind.
func (p *progress) print(line string) {
	if n := len(line); n > p.width {
		p.width = n
	}
	fmt.Fprintf(p.w, "\r%-*s", p.width, line)
}

func (p *progress) step(name string) {
	if p.w == nil {
		return
	}
	p.done.Add(1)
	p.mu.Lock()
	defer p.mu.Unlock()
	p.lastName = name
	p.render()
}

// repaint refreshes the current line without a completion event.
func (p *progress) repaint() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.finished {
		return
	}
	p.render()
}

func (p *progress) finish() {
	if p.w == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.finished {
		return
	}
	p.finished = true
	close(p.stop)
	p.print(fmt.Sprintf("%s[%d/%d] done in %s",
		p.prefix(), p.done.Load(), p.total, time.Since(p.start).Round(time.Millisecond)))
	fmt.Fprintln(p.w)
}

func (p *progress) prefix() string {
	if p.label == "" {
		return ""
	}
	return p.label + " "
}
