// Package runner fans independent simulation jobs out across a bounded
// worker pool. Every platform run in this repository is hermetic — a
// Spec-derived closure with no shared mutable state — so regenerating a
// figure is an embarrassingly parallel map. The runner exploits that while
// preserving the one property the experiment harness depends on: results
// come back in submission order, so tables, CSVs and golden numbers are
// byte-identical to a serial regeneration regardless of worker count.
//
// A job that panics does not kill the whole regeneration: the panic is
// recovered, wrapped in a *PanicError (with the job name and stack) and
// reported as that job's error, so one crashed simulation leaves every
// other figure intact.
package runner

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"
)

// Job is one named unit of work: typically a closure over a platform.Spec
// that builds, runs and summarizes one simulation instance.
type Job[T any] struct {
	Name string
	Run  func() (T, error)
}

// Result pairs a job with its outcome. Map returns results in submission
// order: Results[i] always corresponds to jobs[i].
type Result[T any] struct {
	Name    string
	Value   T
	Err     error
	Elapsed time.Duration
}

// PanicError is the error reported for a job whose Run panicked.
type PanicError struct {
	Name  string
	Value any
	Stack []byte
}

// Error summarizes the panic; the captured stack is in Stack.
func (e *PanicError) Error() string {
	return fmt.Sprintf("job %q panicked: %v", e.Name, e.Value)
}

// Options tune a Map call. The zero value selects runtime.NumCPU() workers
// and no progress output.
type Options struct {
	// Workers bounds concurrently running jobs. <= 0 selects
	// runtime.NumCPU(); 1 runs the jobs serially in the calling
	// goroutine (the -j 1 escape hatch).
	Workers int
	// Progress, when non-nil, receives a live single-line progress/ETA
	// display (carriage-return overwritten, newline-terminated at the
	// end). Pass os.Stderr from a CLI; leave nil in tests.
	Progress io.Writer
	// Label prefixes the progress line (e.g. "fig4").
	Label string
}

func (o Options) workers() int {
	if o.Workers <= 0 {
		return runtime.NumCPU()
	}
	return o.Workers
}

// Map runs every job under the options' worker bound and returns the
// results in submission order. It never returns early: every job runs (or
// records its panic) even when earlier jobs failed.
func Map[T any](jobs []Job[T], opts Options) []Result[T] {
	results := make([]Result[T], len(jobs))
	if len(jobs) == 0 {
		return results
	}
	prog := newProgress(opts.Progress, opts.Label, len(jobs))
	run := func(i int) {
		start := time.Now()
		results[i].Name = jobs[i].Name
		results[i].Value, results[i].Err = capture(jobs[i])
		results[i].Elapsed = time.Since(start)
		prog.step(jobs[i].Name)
	}

	workers := opts.workers()
	if workers == 1 || len(jobs) == 1 {
		for i := range jobs {
			run(i)
		}
		prog.finish()
		return results
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	indices := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range indices {
				run(i)
			}
		}()
	}
	for i := range jobs {
		indices <- i
	}
	close(indices)
	wg.Wait()
	prog.finish()
	return results
}

// capture runs one job, converting a panic into a *PanicError.
func capture[T any](j Job[T]) (value T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Name: j.Name, Value: r, Stack: debug.Stack()}
		}
	}()
	return j.Run()
}

// Values unpacks results into their values. All job errors are joined (and
// prefixed with the job name) so a caller can fan out, then fail once.
func Values[T any](results []Result[T]) ([]T, error) {
	values := make([]T, len(results))
	var errs []error
	for i, r := range results {
		values[i] = r.Value
		if r.Err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", r.Name, r.Err))
		}
	}
	return values, errors.Join(errs...)
}

// First returns the single value of a one-job Map, for callers that use
// the runner only for its panic capture.
func First[T any](results []Result[T]) (T, error) {
	values, err := Values(results)
	if len(values) == 0 {
		var zero T
		return zero, err
	}
	return values[0], err
}

// progress renders the live completion line. All methods are safe for
// concurrent use; a nil writer disables everything at ~zero cost.
type progress struct {
	w     io.Writer
	label string
	total int
	start time.Time

	mu   sync.Mutex
	done atomic.Int64
}

func newProgress(w io.Writer, label string, total int) *progress {
	return &progress{w: w, label: label, total: total, start: time.Now()}
}

func (p *progress) step(name string) {
	if p.w == nil {
		return
	}
	done := int(p.done.Add(1))
	elapsed := time.Since(p.start)
	var eta time.Duration
	if done > 0 {
		eta = time.Duration(float64(elapsed) / float64(done) * float64(p.total-done))
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	fmt.Fprintf(p.w, "\r%s[%d/%d] %-24s %s elapsed, eta %s   ",
		p.prefix(), done, p.total, name, elapsed.Round(time.Millisecond), eta.Round(time.Millisecond))
}

func (p *progress) finish() {
	if p.w == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	fmt.Fprintf(p.w, "\r%s[%d/%d] done in %s%s\n",
		p.prefix(), p.done.Load(), p.total, time.Since(p.start).Round(time.Millisecond),
		"                              ")
}

func (p *progress) prefix() string {
	if p.label == "" {
		return ""
	}
	return p.label + " "
}
