package runner

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func jobN(i int) Job[int] {
	return Job[int]{Name: fmt.Sprintf("job%d", i), Run: func() (int, error) { return i * i, nil }}
}

func TestMapPreservesSubmissionOrder(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 64} {
		var jobs []Job[int]
		for i := 0; i < 40; i++ {
			jobs = append(jobs, jobN(i))
		}
		results := Map(jobs, Options{Workers: workers})
		if len(results) != 40 {
			t.Fatalf("workers=%d: %d results", workers, len(results))
		}
		for i, r := range results {
			if r.Err != nil {
				t.Fatalf("workers=%d: job %d: %v", workers, i, r.Err)
			}
			if r.Value != i*i || r.Name != fmt.Sprintf("job%d", i) {
				t.Fatalf("workers=%d: result %d out of order: %+v", workers, i, r)
			}
		}
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int64
	var mu sync.Mutex
	var jobs []Job[int]
	for i := 0; i < 24; i++ {
		jobs = append(jobs, Job[int]{Name: "j", Run: func() (int, error) {
			n := inFlight.Add(1)
			mu.Lock()
			if n > peak.Load() {
				peak.Store(n)
			}
			mu.Unlock()
			defer inFlight.Add(-1)
			return 0, nil
		}})
	}
	Map(jobs, Options{Workers: workers})
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent jobs, want <= %d", p, workers)
	}
}

func TestMapCapturesPanics(t *testing.T) {
	jobs := []Job[int]{
		jobN(1),
		{Name: "boom", Run: func() (int, error) { panic("simulated crash") }},
		jobN(3),
	}
	results := Map(jobs, Options{Workers: 2})
	if results[0].Err != nil || results[2].Err != nil {
		t.Fatalf("healthy jobs should survive a sibling panic: %v %v", results[0].Err, results[2].Err)
	}
	var pe *PanicError
	if !errors.As(results[1].Err, &pe) {
		t.Fatalf("want *PanicError, got %v", results[1].Err)
	}
	if pe.Name != "boom" || !strings.Contains(pe.Error(), "simulated crash") || len(pe.Stack) == 0 {
		t.Fatalf("panic not fully captured: %+v", pe)
	}
}

func TestValuesJoinsNamedErrors(t *testing.T) {
	results := Map([]Job[int]{
		jobN(2),
		{Name: "bad", Run: func() (int, error) { return 0, errors.New("did not drain") }},
	}, Options{Workers: 1})
	values, err := Values(results)
	if values[0] != 4 {
		t.Fatalf("values = %v", values)
	}
	if err == nil || !strings.Contains(err.Error(), "bad: did not drain") {
		t.Fatalf("err = %v", err)
	}
}

func TestFirst(t *testing.T) {
	v, err := First(Map([]Job[string]{{Name: "only", Run: func() (string, error) { return "ok", nil }}}, Options{}))
	if err != nil || v != "ok" {
		t.Fatalf("v=%q err=%v", v, err)
	}
	if _, err := First(Map[string](nil, Options{})); err != nil {
		t.Fatalf("empty First: %v", err)
	}
}

func TestProgressLine(t *testing.T) {
	var sb strings.Builder
	Map([]Job[int]{jobN(0), jobN(1)}, Options{Workers: 1, Progress: &sb, Label: "fig4"})
	out := sb.String()
	for _, want := range []string{"fig4 [1/2]", "fig4 [2/2]", "eta", "done in"} {
		if !strings.Contains(out, want) {
			t.Fatalf("progress output missing %q:\n%q", want, out)
		}
	}
	if !strings.HasSuffix(out, "\n") {
		t.Fatalf("progress must end with a newline: %q", out)
	}
}

func TestEmptyMap(t *testing.T) {
	if got := Map[int](nil, Options{Progress: &strings.Builder{}}); len(got) != 0 {
		t.Fatalf("got %v", got)
	}
}

func TestProgressExtraSuffix(t *testing.T) {
	var sb strings.Builder
	Map([]Job[int]{jobN(0), jobN(1)}, Options{
		Workers:  1,
		Progress: &sb,
		Label:    "io",
		Extra:    func() string { return "| 2.1M cyc/s, 3 running" },
	})
	out := sb.String()
	if !strings.Contains(out, "| 2.1M cyc/s, 3 running") {
		t.Fatalf("progress output missing the Extra suffix:\n%q", out)
	}
	if !strings.HasSuffix(out, "\n") {
		t.Fatalf("progress must end with a newline: %q", out)
	}
}
