package axi

import (
	"testing"
	"testing/quick"

	"mpsocsim/internal/bus"
	"mpsocsim/internal/mem"
	"mpsocsim/internal/sim"
)

type scripted struct {
	port      *bus.InitiatorPort
	clk       *sim.Clock
	script    []*bus.Request
	i         int
	beats     []bus.Beat
	completed map[uint64]int64
}

func newScripted(clk *sim.Clock, script []*bus.Request) *scripted {
	return &scripted{
		port:      bus.NewInitiatorPort("ini", 4, 8),
		clk:       clk,
		script:    script,
		completed: map[uint64]int64{},
	}
}

func (s *scripted) Eval() {
	if s.i < len(s.script) && s.port.Req.CanPush() {
		s.port.Req.Push(s.script[s.i])
		s.i++
	}
	for s.port.Resp.CanPop() {
		b := s.port.Resp.Pop()
		s.beats = append(s.beats, b)
		if b.Last {
			s.completed[b.Req.ID] = s.clk.Cycles()
		}
	}
}

func (s *scripted) Update() { s.port.Update() }

type tb struct {
	k    *sim.Kernel
	clk  *sim.Clock
	x    *Interconnect
	mems []*mem.Memory
	inis []*scripted
}

func newTB(t *testing.T, cfg Config, memCfg mem.Config, nMems int, scripts ...[]*bus.Request) *tb {
	t.Helper()
	k := sim.NewKernel()
	clk := k.NewClock("clk", 250)
	var regions []bus.Region
	for i := 0; i < nMems; i++ {
		regions = append(regions, bus.Region{Base: uint64(i) << 24, Size: 1 << 24, Target: i})
	}
	x := New("axi0", cfg, bus.MustAddrMap(regions...))
	out := &tb{k: k, clk: clk, x: x}
	for i := 0; i < nMems; i++ {
		m := mem.New("mem", memCfg)
		x.AttachTarget(m.Port())
		out.mems = append(out.mems, m)
	}
	for _, sc := range scripts {
		ini := newScripted(clk, sc)
		x.AttachInitiator(ini.port)
		out.inis = append(out.inis, ini)
		clk.Register(ini)
	}
	clk.Register(x)
	for _, m := range out.mems {
		clk.Register(m)
	}
	return out
}

func (b *tb) countDone() int {
	n := 0
	for _, ini := range b.inis {
		n += len(ini.completed)
	}
	return n
}

func (b *tb) run(t *testing.T, total int) {
	t.Helper()
	if !b.k.RunWhile(func() bool { return b.countDone() < total }, 1e10) {
		t.Fatalf("timeout: %d of %d done", b.countDone(), total)
	}
}

func rd(id, addr uint64, beats int) *bus.Request {
	return &bus.Request{ID: id, Op: bus.OpRead, Addr: addr, Beats: beats, BytesPerBeat: 8}
}

func wr(id, addr uint64, beats int, posted bool) *bus.Request {
	return &bus.Request{ID: id, Op: bus.OpWrite, Addr: addr, Beats: beats, BytesPerBeat: 8, Posted: posted}
}

func TestReadCompletes(t *testing.T) {
	b := newTB(t, DefaultConfig(), mem.DefaultConfig(), 1, []*bus.Request{rd(1, 0x100, 4)})
	b.run(t, 1)
	if len(b.inis[0].beats) != 4 {
		t.Fatalf("beats = %d, want 4", len(b.inis[0].beats))
	}
	for i, beat := range b.inis[0].beats {
		if beat.Idx != i {
			t.Fatalf("beat %d out of order", i)
		}
	}
}

func TestMultipleOutstanding(t *testing.T) {
	b := newTB(t, DefaultConfig(), mem.Config{WaitStates: 6, ReqDepth: 8, RespDepth: 2}, 1,
		[]*bus.Request{rd(1, 0x0, 2), rd(2, 0x40, 2), rd(3, 0x80, 2), rd(4, 0xc0, 2)})
	maxOut := 0
	b.clk.Register(&sim.ClockedFunc{OnEval: func() {
		if o := b.x.Outstanding(0); o > maxOut {
			maxOut = o
		}
	}})
	b.run(t, 4)
	if maxOut < 3 {
		t.Fatalf("AXI should pipeline requests, max outstanding = %d", maxOut)
	}
}

func TestReadsNotBlockedByWriteData(t *testing.T) {
	// Master 0 issues a long posted write; master 1's read should begin
	// at the memory quickly because AR is a separate channel. Compare
	// with the write-first serialized bound.
	longWrite := wr(1, 0x0, 32, true)
	read := rd(2, 0x100, 2)
	b := newTB(t, DefaultConfig(), mem.Config{WaitStates: 0, ReqDepth: 4, RespDepth: 4}, 1,
		[]*bus.Request{longWrite}, []*bus.Request{read})
	b.run(t, 1) // only the read completes (write is posted)
	readDone := b.inis[1].completed[2]
	// If the read had to wait behind 32 write beats it would complete
	// after cycle ~35; the separate AR channel should let the memory
	// accept it as its second queue entry immediately, so well before.
	if readDone > 25 {
		t.Fatalf("read completed at cycle %d; AR channel appears blocked by write data", readDone)
	}
}

func TestOutOfOrderAcrossTargets(t *testing.T) {
	k := sim.NewKernel()
	clk := k.NewClock("clk", 250)
	amap := bus.MustAddrMap(
		bus.Region{Base: 0, Size: 1 << 24, Target: 0},
		bus.Region{Base: 1 << 24, Size: 1 << 24, Target: 1},
	)
	x := New("axi0", DefaultConfig(), amap)
	slow := mem.New("slow", mem.Config{WaitStates: 20, ReqDepth: 2, RespDepth: 2})
	fast := mem.New("fast", mem.Config{WaitStates: 0, ReqDepth: 2, RespDepth: 2})
	x.AttachTarget(slow.Port())
	x.AttachTarget(fast.Port())
	ini := newScripted(clk, []*bus.Request{rd(1, 0, 2), rd(2, 1<<24, 2)})
	x.AttachInitiator(ini.port)
	clk.Register(ini)
	clk.Register(x)
	clk.Register(slow)
	clk.Register(fast)
	k.RunWhile(func() bool { return len(ini.completed) < 2 }, 1e9)
	if ini.completed[2] >= ini.completed[1] {
		t.Fatal("out-of-order AXI should deliver the fast response first")
	}
}

func TestInOrderMode(t *testing.T) {
	k := sim.NewKernel()
	clk := k.NewClock("clk", 250)
	amap := bus.MustAddrMap(
		bus.Region{Base: 0, Size: 1 << 24, Target: 0},
		bus.Region{Base: 1 << 24, Size: 1 << 24, Target: 1},
	)
	x := New("axi0", Config{MaxOutstanding: 8, BytesPerBeat: 8, InOrder: true}, amap)
	slow := mem.New("slow", mem.Config{WaitStates: 20, ReqDepth: 2, RespDepth: 2})
	fast := mem.New("fast", mem.Config{WaitStates: 0, ReqDepth: 2, RespDepth: 2})
	x.AttachTarget(slow.Port())
	x.AttachTarget(fast.Port())
	ini := newScripted(clk, []*bus.Request{rd(1, 0, 2), rd(2, 1<<24, 2)})
	x.AttachInitiator(ini.port)
	clk.Register(ini)
	clk.Register(x)
	clk.Register(slow)
	clk.Register(fast)
	k.RunWhile(func() bool { return len(ini.completed) < 2 }, 1e9)
	if len(ini.completed) != 2 {
		t.Fatal("timeout")
	}
	if ini.completed[2] < ini.completed[1] {
		t.Fatal("in-order mode must deliver responses in issue order")
	}
}

func TestPostedWriteRetiresAtAcceptance(t *testing.T) {
	b := newTB(t, Config{MaxOutstanding: 2, BytesPerBeat: 8}, mem.Config{WaitStates: 4, ReqDepth: 8, RespDepth: 2}, 1,
		[]*bus.Request{wr(1, 0x0, 2, true), wr(2, 0x40, 2, true), wr(3, 0x80, 2, true), rd(4, 0xc0, 1)})
	b.run(t, 1)
	if b.x.Outstanding(0) != 0 {
		t.Fatalf("outstanding = %d, want 0", b.x.Outstanding(0))
	}
}

func TestNonPostedWriteAcked(t *testing.T) {
	b := newTB(t, DefaultConfig(), mem.DefaultConfig(), 1,
		[]*bus.Request{wr(1, 0x0, 4, false)})
	b.run(t, 1)
	if len(b.inis[0].completed) != 1 {
		t.Fatal("non-posted write must be acked on B channel")
	}
}

func TestParallelTargetsOverlap(t *testing.T) {
	s0 := []*bus.Request{rd(1, 0x10, 8), rd(2, 0x20, 8), rd(3, 0x30, 8), rd(4, 0x40, 8)}
	single := newTB(t, DefaultConfig(), mem.Config{WaitStates: 1, ReqDepth: 2, RespDepth: 2}, 1, s0)
	single.run(t, 4)
	t1 := single.clk.Cycles()

	s0b := []*bus.Request{rd(1, 0x10, 8), rd(2, 0x20, 8), rd(3, 0x30, 8), rd(4, 0x40, 8)}
	s1 := []*bus.Request{rd(11, 1<<24|0x10, 8), rd(12, 1<<24|0x20, 8), rd(13, 1<<24|0x30, 8), rd(14, 1<<24|0x40, 8)}
	dual := newTB(t, DefaultConfig(), mem.Config{WaitStates: 1, ReqDepth: 2, RespDepth: 2}, 2, s0b, s1)
	dual.run(t, 8)
	t2 := dual.clk.Cycles()
	if float64(t2) > 1.5*float64(t1) {
		t.Fatalf("AXI crossbar should overlap targets: dual %d vs single %d", t2, t1)
	}
}

func TestStatsChannels(t *testing.T) {
	b := newTB(t, DefaultConfig(), mem.DefaultConfig(), 1,
		[]*bus.Request{rd(1, 0x0, 4), wr(2, 0x40, 4, false)})
	b.run(t, 2)
	s := b.x.Stats()
	if s.Forwarded != 2 {
		t.Fatalf("forwarded = %d, want 2", s.Forwarded)
	}
	if s.ARChannelBusy[0] != 1 {
		t.Fatalf("AR busy = %d, want 1", s.ARChannelBusy[0])
	}
	if s.WChannelBusy[0] != 4 {
		t.Fatalf("W busy = %d, want 4 (write beats)", s.WChannelBusy[0])
	}
	if u := s.RUtilization(0); u <= 0 || u > 1 {
		t.Fatalf("R utilization %v", u)
	}
	if s.RUtilization(5) != 0 {
		t.Fatal("out-of-range utilization must be 0")
	}
}

// Property: random mixes of reads and non-posted writes complete with
// correct beat counts under any outstanding limit.
func TestPropertyCompletion(t *testing.T) {
	prop := func(seed uint64, nReq8, maxOut8 uint8) bool {
		rng := sim.NewRand(seed)
		nReq := int(nReq8%16) + 1
		cfg := Config{MaxOutstanding: int(maxOut8%8) + 1, BytesPerBeat: 8, InOrder: seed%3 == 0}
		var script []*bus.Request
		for j := 0; j < nReq; j++ {
			beats := rng.Range(1, 8)
			addr := uint64(rng.Intn(2))<<24 | uint64(rng.Intn(1<<12))
			if rng.Bool(0.5) {
				script = append(script, rd(uint64(j+1), addr, beats))
			} else {
				script = append(script, wr(uint64(j+1), addr, beats, false))
			}
		}
		b := newTB(t, cfg, mem.Config{WaitStates: 1, ReqDepth: 2, RespDepth: 4}, 2, script)
		b.k.RunWhile(func() bool { return b.countDone() < nReq }, 1e10)
		if b.countDone() != nReq {
			return false
		}
		counts := map[uint64]int{}
		for _, beat := range b.inis[0].beats {
			if beat.Req.Op == bus.OpRead {
				counts[beat.Req.ID]++
			}
		}
		for _, r := range script {
			if r.Op == bus.OpRead && counts[r.ID] != r.Beats {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRegisterStagesAddLatencyNotThroughputLoss(t *testing.T) {
	run := func(stages int) (int64, int64) {
		cfg := DefaultConfig()
		cfg.RegisterStages = stages
		var script []*bus.Request
		for i := uint64(1); i <= 8; i++ {
			script = append(script, rd(i, 0x100*i, 4))
		}
		b := newTB(t, cfg, mem.Config{WaitStates: 1, ReqDepth: 4, RespDepth: 4}, 1, script)
		b.run(t, 8)
		return b.inis[0].completed[1], b.clk.Cycles()
	}
	lat0, tot0 := run(0)
	lat3, tot3 := run(3)
	// register stages add round-trip latency to the first transaction...
	if lat3 < lat0+4 {
		t.Fatalf("3 register stages added only %d cycles of latency", lat3-lat0)
	}
	// ...but are transparent to pipelined throughput: total time grows by
	// far less than 8x the added per-transaction latency.
	if float64(tot3) > 1.3*float64(tot0) {
		t.Fatalf("register stages hurt throughput: %d -> %d cycles", tot0, tot3)
	}
}

func TestRegisterStagesPreserveBeatOrder(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RegisterStages = 2
	b := newTB(t, cfg, mem.DefaultConfig(), 1, []*bus.Request{rd(1, 0x0, 6)})
	b.run(t, 1)
	for i, beat := range b.inis[0].beats {
		if beat.Idx != i {
			t.Fatalf("beat %d out of order with register stages", i)
		}
	}
}
