package axi

import (
	"mpsocsim/internal/attr"
	"mpsocsim/internal/bus"
	"mpsocsim/internal/snapshot"
)

// EncodeState serializes the interconnect's mutable state (DESIGN.md §16):
// per-slave write-channel occupancy and register-stage pipes, per-master
// ordering windows and response pipes, and the activity counters. Ports
// belong to the attached components and are serialized by their owners.
func (x *Interconnect) EncodeState(e *snapshot.Encoder) {
	e.Tag('X')
	e.U(uint64(len(x.ts)))
	for t := range x.ts {
		pt := &x.ts[t]
		bus.EncodeReqRef(e, pt.wCur)
		e.I(int64(pt.wBeatsLeft))
		e.I(int64(pt.arRR))
		e.I(int64(pt.awRR))
		e.I(pt.busyAR)
		e.I(pt.busyW)
		e.U(uint64(len(pt.reqPipe)))
		for j := range pt.reqPipe {
			bus.EncodeReqRef(e, pt.reqPipe[j].req)
			e.I(pt.reqPipe[j].at)
		}
	}
	e.U(uint64(len(x.is)))
	for i := range x.is {
		pi := &x.is[i]
		e.I(int64(pi.rRR))
		e.I(int64(pi.bRR))
		e.I(pi.busyR)
		e.I(pi.busyB)
		e.I(int64(pi.outst))
		e.I(int64(pi.outTarget))
		encodeIDs(e, pi.oldestR)
		encodeIDs(e, pi.oldestW)
		encodeBeatPipe(e, pi.respPipeR)
		encodeBeatPipe(e, pi.respPipeB)
	}
	e.U(uint64(len(x.attrHead)))
	for _, h := range x.attrHead {
		e.Bool(h)
	}
	e.I(x.cycles)
	e.I(x.forwarded)
	e.I(x.beatsOut)
	e.I(x.wStalls)
}

func encodeIDs(e *snapshot.Encoder, ids []uint64) {
	e.U(uint64(len(ids)))
	for _, id := range ids {
		e.U(id)
	}
}

func encodeBeatPipe(e *snapshot.Encoder, pipe []pipedBeat) {
	e.U(uint64(len(pipe)))
	for j := range pipe {
		bus.EncodeBeat(e, pipe[j].beat)
		e.I(pipe[j].at)
	}
}

// DecodeState restores an interconnect serialized by EncodeState.
func (x *Interconnect) DecodeState(d *snapshot.Decoder, col *attr.Collector) {
	d.Tag('X')
	nt := d.N(1 << 16)
	if d.Err() != nil {
		return
	}
	if nt != len(x.ts) {
		d.Corrupt("axi %q slave count %d does not match platform's %d", x.name, nt, len(x.ts))
		return
	}
	for t := range x.ts {
		pt := &x.ts[t]
		pt.wCur = bus.DecodeReqRef(d, col)
		pt.wBeatsLeft = int(d.I())
		pt.arRR = int(d.I())
		pt.awRR = int(d.I())
		pt.busyAR = d.I()
		pt.busyW = d.I()
		np := d.N(1 << 16)
		pt.reqPipe = pt.reqPipe[:0]
		for j := 0; j < np; j++ {
			req := bus.DecodeReqRef(d, col)
			at := d.I()
			pt.reqPipe = append(pt.reqPipe, pipedReq{req: req, at: at})
		}
		if d.Err() != nil {
			return
		}
	}
	ni := d.N(1 << 16)
	if d.Err() != nil {
		return
	}
	if ni != len(x.is) {
		d.Corrupt("axi %q master count %d does not match platform's %d", x.name, ni, len(x.is))
		return
	}
	for i := range x.is {
		pi := &x.is[i]
		pi.rRR = int(d.I())
		pi.bRR = int(d.I())
		pi.busyR = d.I()
		pi.busyB = d.I()
		pi.outst = int(d.I())
		pi.outTarget = int(d.I())
		pi.oldestR = decodeIDs(d, pi.oldestR)
		pi.oldestW = decodeIDs(d, pi.oldestW)
		pi.respPipeR = decodeBeatPipe(d, col, pi.respPipeR)
		pi.respPipeB = decodeBeatPipe(d, col, pi.respPipeB)
		if d.Err() != nil {
			return
		}
	}
	nh := d.N(1 << 16)
	if d.Err() != nil {
		return
	}
	if nh != 0 && nh != len(x.initiators) {
		d.Corrupt("axi %q attr head cache size %d does not match %d masters", x.name, nh, len(x.initiators))
		return
	}
	x.attrHead = x.attrHead[:0]
	for i := 0; i < nh; i++ {
		x.attrHead = append(x.attrHead, d.Bool())
	}
	x.cycles = d.I()
	x.forwarded = d.I()
	x.beatsOut = d.I()
	x.wStalls = d.I()
}

func decodeIDs(d *snapshot.Decoder, ids []uint64) []uint64 {
	n := d.N(1 << 16)
	ids = ids[:0]
	for i := 0; i < n; i++ {
		ids = append(ids, d.U())
	}
	return ids
}

func decodeBeatPipe(d *snapshot.Decoder, col *attr.Collector, pipe []pipedBeat) []pipedBeat {
	n := d.N(1 << 16)
	pipe = pipe[:0]
	for i := 0; i < n; i++ {
		b := bus.DecodeBeat(d, col)
		at := d.I()
		pipe = append(pipe, pipedBeat{beat: b, at: at})
	}
	return pipe
}
