// Package axi models an AMBA AXI interconnect as described in the paper
// (§3.2): point-to-point master/slave interface pairs with five independent
// mono-directional channels (read address, write address, read data, write
// data, write response), multiple outstanding transactions with in-order or
// out-of-order delivery selected by transaction ID, burst transactions with
// a single address, and burst overlapping (a master drives the next address
// as soon as the slave accepts the previous one).
//
// The model keeps the feature-level distinctions the paper reasons about:
//
//   - Reads and writes travel on separate channels, so a read address is
//     never blocked behind a long write-data transfer (unlike the STBus
//     shared request channel) — this is the "high number of physical
//     channels" advantage of §4.1.1.
//   - Arbitration is per-cycle per-channel ("fine granularity of arbiter
//     decisions").
//   - Each initiator can retire one read beat and one write response in the
//     same cycle (independent R and B channels).
package axi

import (
	"mpsocsim/internal/attr"
	"mpsocsim/internal/bus"
	"mpsocsim/internal/metrics"
)

// Config parameterizes an AXI interconnect.
type Config struct {
	// MaxOutstanding bounds in-flight transactions per master interface.
	MaxOutstanding int
	// BytesPerBeat is the data width in bytes.
	BytesPerBeat int
	// InOrder forces in-order response delivery per master (single
	// transaction ID); the default allows out-of-order completion.
	InOrder bool
	// RegisterStages inserts pipeline registers on every channel for
	// timing closure, transparent to the protocol (paper §3.2): each
	// request and each response beat is delayed by this many extra
	// cycles without affecting ordering or throughput.
	RegisterStages int
}

// DefaultConfig returns a 64-bit out-of-order interconnect with an
// 8-transaction window.
func DefaultConfig() Config { return Config{MaxOutstanding: 8, BytesPerBeat: 8} }

// pipedReq is a request in a register-stage pipeline.
type pipedReq struct {
	req *bus.Request
	at  int64
}

// pipedBeat is a response beat in a register-stage pipeline.
type pipedBeat struct {
	beat bus.Beat
	at   int64
}

// perTarget is the request-side state of one slave interface.
type perTarget struct {
	// write channel: in-flight write data transfer (AW accepted, W beats
	// streaming)
	wCur       *bus.Request
	wBeatsLeft int
	arRR       int
	awRR       int
	busyAR     int64
	busyW      int64
	// reqPipe holds requests traversing the register stages toward the
	// slave.
	reqPipe []pipedReq
}

// perInitiator is the response-side state of one master interface.
type perInitiator struct {
	rRR   int
	bRR   int
	busyR int64
	busyB int64
	outst int
	// In-order delivery is per channel: the R and B channels are
	// independent in AXI, so reads are ordered among reads and writes
	// among writes (single-ID semantics per direction).
	oldestR []uint64
	oldestW []uint64
	// outTarget restricts an in-order master's outstanding window to a
	// single slave, preventing cross-target head-of-line deadlock (the
	// standard single-ID issue rule).
	outTarget int
	// respPipeR/respPipeB hold beats traversing the register stages on
	// the R and B channels.
	respPipeR []pipedBeat
	respPipeB []pipedBeat
}

// Interconnect is an AXI fabric.
type Interconnect struct {
	name string
	cfg  Config

	initiators []*bus.InitiatorPort
	targets    []*bus.TargetPort
	amap       *bus.AddrMap

	ts []perTarget
	is []perInitiator

	// attrCol/attrNow, when set, stamp latency-attribution phases on every
	// request crossing the fabric (see EnableAttribution). attrHead
	// caches, per initiator port, whether the current committed head
	// already carries a stamped record (cleared at issue).
	attrCol  *attr.Collector
	attrNow  func() int64
	attrHead []bool

	cycles    int64
	forwarded int64
	beatsOut  int64
	// wStalls counts cycles a completed write transfer could not be handed
	// to its slave because the slave FIFO was full (WREADY backpressure).
	wStalls int64
}

// New builds an empty AXI interconnect.
func New(name string, cfg Config, amap *bus.AddrMap) *Interconnect {
	if cfg.MaxOutstanding <= 0 {
		cfg.MaxOutstanding = 8
	}
	if cfg.BytesPerBeat <= 0 {
		cfg.BytesPerBeat = 8
	}
	return &Interconnect{name: name, cfg: cfg, amap: amap}
}

// Name returns the fabric name.
func (x *Interconnect) Name() string { return x.name }

// AttachInitiator connects a master interface; see bus.Fabric.
func (x *Interconnect) AttachInitiator(p *bus.InitiatorPort) int {
	x.initiators = append(x.initiators, p)
	x.is = append(x.is, perInitiator{outTarget: -1})
	return len(x.initiators) - 1
}

// AttachTarget connects a slave interface; see bus.Fabric.
func (x *Interconnect) AttachTarget(p *bus.TargetPort) int {
	x.targets = append(x.targets, p)
	x.ts = append(x.ts, perTarget{})
	return len(x.targets) - 1
}

// EnableAttribution makes the interconnect stamp latency-attribution
// phases: records attach at the head-of-queue scan (PhaseArbWait), mark
// PhaseBusXfer at the AR/AW handshake (covering W-beat streaming and
// register-stage traversal) and PhaseTargetQueue when the request lands in
// the slave's input FIFO. now must return the fabric clock's current edge in
// absolute picoseconds (sim.Clock.NowPS).
func (x *Interconnect) EnableAttribution(col *attr.Collector, now func() int64) {
	x.attrCol = col
	x.attrNow = now
}

// Eval advances all five channel groups one cycle.
func (x *Interconnect) Eval() {
	x.cycles++
	if x.attrCol != nil {
		// Attach records to requests newly arrived at a port head
		// (entering arb_wait). The fabric is the sole consumer of these
		// FIFOs, so attrHead caches "current head already stamped" per
		// port: one bool load per attached port and one inlined CanPop
		// per empty port per cycle; issue() clears the flag on pop.
		if len(x.attrHead) != len(x.initiators) {
			x.attrHead = make([]bool, len(x.initiators))
		}
		var now int64
		for i, ip := range x.initiators {
			if x.attrHead[i] || !ip.Req.CanPop() {
				continue
			}
			if now == 0 {
				now = x.attrNow()
			}
			bus.AttachAttr(x.attrCol, ip.Req.Peek(), now)
			x.attrHead[i] = true
		}
	}
	if x.cfg.RegisterStages > 0 {
		x.drainPipes()
	}
	for t := range x.targets {
		x.evalWriteChannels(t)
		x.evalReadAddress(t)
	}
	for i := range x.initiators {
		x.evalResponses(i)
	}
}

// drainPipes moves matured register-stage entries into the ports, one per
// pipe per cycle.
func (x *Interconnect) drainPipes() {
	// The pipes shift in place instead of re-slicing the front off, so
	// their backing arrays are reused for the lifetime of the fabric.
	for t := range x.ts {
		pt := &x.ts[t]
		if len(pt.reqPipe) > 0 && pt.reqPipe[0].at <= x.cycles && x.targets[t].Req.CanPush() {
			if rec := pt.reqPipe[0].req.Attr; rec != nil && x.attrNow != nil {
				rec.Enter(attr.PhaseTargetQueue, x.attrNow())
			}
			x.targets[t].Req.Push(pt.reqPipe[0].req)
			n := copy(pt.reqPipe, pt.reqPipe[1:])
			pt.reqPipe[n] = pipedReq{}
			pt.reqPipe = pt.reqPipe[:n]
		}
	}
	for i := range x.is {
		pi := &x.is[i]
		ip := x.initiators[i]
		if len(pi.respPipeR) > 0 && pi.respPipeR[0].at <= x.cycles && ip.Resp.CanPush() {
			ip.Resp.Push(pi.respPipeR[0].beat)
			n := copy(pi.respPipeR, pi.respPipeR[1:])
			pi.respPipeR[n] = pipedBeat{}
			pi.respPipeR = pi.respPipeR[:n]
		}
		if len(pi.respPipeB) > 0 && pi.respPipeB[0].at <= x.cycles && ip.Resp.CanPush() {
			ip.Resp.Push(pi.respPipeB[0].beat)
			n := copy(pi.respPipeB, pi.respPipeB[1:])
			pi.respPipeB[n] = pipedBeat{}
			pi.respPipeB = pi.respPipeB[:n]
		}
	}
}

// canDeliverReq gates a grant on downstream acceptance (port or pipe).
func (x *Interconnect) canDeliverReq(t int) bool {
	if x.cfg.RegisterStages == 0 {
		return x.targets[t].Req.CanPush()
	}
	return len(x.ts[t].reqPipe) < x.cfg.RegisterStages+2
}

// deliverReq hands a request toward the slave through the register stages.
func (x *Interconnect) deliverReq(t int, req *bus.Request) {
	if x.cfg.RegisterStages == 0 {
		if rec := req.Attr; rec != nil && x.attrNow != nil {
			rec.Enter(attr.PhaseTargetQueue, x.attrNow())
		}
		x.targets[t].Req.Push(req)
		return
	}
	x.ts[t].reqPipe = append(x.ts[t].reqPipe, pipedReq{req: req, at: x.cycles + int64(x.cfg.RegisterStages)})
}

// Update: the interconnect owns no FIFOs.
func (x *Interconnect) Update() {}

// headFor returns the index of initiator i's head request if it decodes to
// target t, matches op, and i has window space; otherwise nil.
func (x *Interconnect) headFor(i, t int, op bus.Op) *bus.Request {
	ip := x.initiators[i]
	if !ip.Req.CanPop() {
		return nil
	}
	req := ip.Req.Peek()
	if req.Op != op || x.amap.Decode(req.Addr) != t {
		return nil
	}
	if x.is[i].outst >= x.cfg.MaxOutstanding {
		return nil
	}
	if x.cfg.InOrder && x.is[i].outst > 0 && x.is[i].outTarget != t {
		return nil // single-ID issue rule: one slave at a time
	}
	return req
}

// evalWriteChannels advances target t's AW+W channel pair: one write address
// accepted per cycle when idle, then the data beats stream on W.
func (x *Interconnect) evalWriteChannels(t int) {
	pt := &x.ts[t]
	if pt.wCur != nil {
		if pt.wBeatsLeft > 0 {
			pt.busyW++
			pt.wBeatsLeft--
		}
		if pt.wBeatsLeft <= 0 {
			// Hand the completed write to the slave; if reads filled
			// the slave FIFO since the AW handshake, stall W until a
			// slot frees (WREADY backpressure).
			if !x.canDeliverReq(t) {
				x.wStalls++
				return
			}
			x.deliverReq(t, pt.wCur)
			x.forwarded++
			if pt.wCur.Posted {
				x.retire(pt.wCur.Src, pt.wCur.ID)
			}
			pt.wCur = nil
		}
		return
	}
	if !x.canDeliverReq(t) {
		return
	}
	ni := len(x.initiators)
	for k := 0; k < ni; k++ {
		i := (pt.awRR + k) % ni
		req := x.headFor(i, t, bus.OpWrite)
		if req == nil {
			continue
		}
		x.initiators[i].Req.Pop()
		req.Src = i
		x.issue(i, req)
		pt.wCur = req
		pt.wBeatsLeft = req.Beats
		if pt.wBeatsLeft < 1 {
			pt.wBeatsLeft = 1
		}
		pt.busyW++
		pt.wBeatsLeft--
		if pt.wBeatsLeft <= 0 {
			x.deliverReq(t, req)
			x.forwarded++
			if req.Posted {
				x.retire(i, req.ID)
			}
			pt.wCur = nil
		}
		pt.awRR = (i + 1) % ni
		return
	}
}

// evalReadAddress accepts one read address per cycle on target t's AR
// channel — reads are never stalled behind write data.
func (x *Interconnect) evalReadAddress(t int) {
	pt := &x.ts[t]
	if !x.canDeliverReq(t) {
		return
	}
	ni := len(x.initiators)
	for k := 0; k < ni; k++ {
		i := (pt.arRR + k) % ni
		req := x.headFor(i, t, bus.OpRead)
		if req == nil {
			continue
		}
		x.initiators[i].Req.Pop()
		req.Src = i
		x.issue(i, req)
		x.deliverReq(t, req)
		x.forwarded++
		pt.busyAR++
		pt.arRR = (i + 1) % ni
		return
	}
}

// evalResponses forwards up to one read beat (R channel) and one write
// response (B channel) to initiator i.
func (x *Interconnect) evalResponses(i int) {
	pi := &x.is[i]
	ip := x.initiators[i]
	nt := len(x.targets)
	canDeliver := func(pipe []pipedBeat) bool {
		if x.cfg.RegisterStages == 0 {
			return ip.Resp.CanPush()
		}
		return len(pipe) < x.cfg.RegisterStages+2
	}
	forward := func(op bus.Op, rr *int, busy *int64, pipe *[]pipedBeat) {
		for k := 0; k < nt; k++ {
			t := (*rr + k) % nt
			tp := x.targets[t]
			if !tp.Resp.CanPop() || !canDeliver(*pipe) {
				continue
			}
			beat := tp.Resp.Peek()
			if beat.Req.Src != i || beat.Req.Op != op {
				continue
			}
			if x.cfg.InOrder {
				ord := pi.oldestR
				if op == bus.OpWrite {
					ord = pi.oldestW
				}
				if len(ord) > 0 && ord[0] != beat.Req.ID {
					continue
				}
			}
			tp.Resp.Pop()
			if x.cfg.RegisterStages == 0 {
				ip.Resp.Push(beat)
			} else {
				*pipe = append(*pipe, pipedBeat{beat: beat, at: x.cycles + int64(x.cfg.RegisterStages)})
			}
			*busy++
			x.beatsOut++
			if beat.Last {
				x.retire(i, beat.Req.ID)
			}
			*rr = (t + 1) % nt
			return
		}
	}
	forward(bus.OpRead, &pi.rRR, &pi.busyR, &pi.respPipeR)
	forward(bus.OpWrite, &pi.bRR, &pi.busyB, &pi.respPipeB)
}

func (x *Interconnect) issue(i int, req *bus.Request) {
	if x.attrCol != nil {
		// Attach here as well as at the head scan: the AR and AW channels
		// can both pop from one port in a single cycle, and the second
		// request was never at the head when the scan ran. The popped
		// port's next head needs a fresh stamp.
		now := x.attrNow()
		bus.AttachAttr(x.attrCol, req, now)
		req.Attr.Enter(attr.PhaseBusXfer, now)
		if i < len(x.attrHead) {
			x.attrHead[i] = false
		}
	}
	pi := &x.is[i]
	pi.outst++
	pi.outTarget = x.amap.Decode(req.Addr)
	if req.Op == bus.OpRead {
		pi.oldestR = append(pi.oldestR, req.ID)
	} else {
		pi.oldestW = append(pi.oldestW, req.ID)
	}
}

func (x *Interconnect) retire(i int, id uint64) {
	pi := &x.is[i]
	if pi.outst > 0 {
		pi.outst--
	}
	if pi.outst == 0 {
		pi.outTarget = -1
	}
	remove := func(ord []uint64) []uint64 {
		for j, v := range ord {
			if v == id {
				copy(ord[j:], ord[j+1:])
				return ord[:len(ord)-1]
			}
		}
		return ord
	}
	pi.oldestR = remove(pi.oldestR)
	pi.oldestW = remove(pi.oldestW)
}

// Outstanding returns initiator i's in-flight transaction count.
func (x *Interconnect) Outstanding(i int) int { return x.is[i].outst }

// totalOutstanding sums in-flight transactions across all master interfaces.
func (x *Interconnect) totalOutstanding() int64 {
	var t int64
	for i := range x.is {
		t += int64(x.is[i].outst)
	}
	return t
}

// RegisterMetrics registers the interconnect's telemetry under
// "axi.<name>.*" on the given clock domain: grants (forwarded requests),
// response beats, write-channel backpressure stalls, aggregate per-channel
// busy cycles, and the outstanding-occupancy gauge. Func-backed: the
// channel hot paths are untouched.
func (x *Interconnect) RegisterMetrics(m *metrics.Registry, clock string) {
	p := "axi." + x.name + "."
	m.CounterFunc(p+"grants", func() int64 { return x.forwarded })
	m.CounterFunc(p+"beats_out", func() int64 { return x.beatsOut })
	m.CounterFunc(p+"w_stall_cycles", func() int64 { return x.wStalls })
	m.CounterFunc(p+"ar_busy_cycles", func() int64 {
		var t int64
		for i := range x.ts {
			t += x.ts[i].busyAR
		}
		return t
	})
	m.CounterFunc(p+"w_busy_cycles", func() int64 {
		var t int64
		for i := range x.ts {
			t += x.ts[i].busyW
		}
		return t
	})
	m.CounterFunc(p+"r_busy_cycles", func() int64 {
		var t int64
		for i := range x.is {
			t += x.is[i].busyR
		}
		return t
	})
	m.GaugeFunc(p+"outstanding", clock, x.totalOutstanding)
}

// Stats reports interconnect activity.
func (x *Interconnect) Stats() Stats {
	s := Stats{Cycles: x.cycles, Forwarded: x.forwarded, BeatsOut: x.beatsOut, WStalls: x.wStalls}
	for i := range x.ts {
		s.WChannelBusy = append(s.WChannelBusy, x.ts[i].busyW)
		s.ARChannelBusy = append(s.ARChannelBusy, x.ts[i].busyAR)
	}
	for i := range x.is {
		s.RChannelBusy = append(s.RChannelBusy, x.is[i].busyR)
		s.BChannelBusy = append(s.BChannelBusy, x.is[i].busyB)
	}
	return s
}

// Stats summarizes AXI activity per channel group.
type Stats struct {
	Cycles        int64
	Forwarded     int64
	BeatsOut      int64
	WStalls       int64
	WChannelBusy  []int64 // per target
	ARChannelBusy []int64 // per target
	RChannelBusy  []int64 // per initiator
	BChannelBusy  []int64 // per initiator
}

// RUtilization returns the busy fraction of initiator i's read-data channel.
func (s Stats) RUtilization(i int) float64 {
	if s.Cycles == 0 || i >= len(s.RChannelBusy) {
		return 0
	}
	return float64(s.RChannelBusy[i]) / float64(s.Cycles)
}
