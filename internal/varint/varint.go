// Package varint holds the variable-length integer primitives shared by the
// repository's binary codecs (the tracecap trace format and the snapshot
// checkpoint format). Encoding is encoding/binary's LEB128 flavour: unsigned
// values as Uvarint, signed values zigzag-encoded as Varint, strings as a
// uvarint byte length followed by raw bytes.
//
// The decode helpers return a Status instead of an error so each codec can
// wrap failures in its own sentinel errors (tracecap.ErrTruncated,
// snapshot.ErrCorrupt, ...) with its own positional context.
package varint

import "encoding/binary"

// Status classifies the outcome of a decode.
type Status int

// Decode outcomes.
const (
	// OK means the value decoded cleanly.
	OK Status = iota
	// Truncated means the input ended mid-varint.
	Truncated
	// Overflow means the varint does not fit in 64 bits.
	Overflow
)

// AppendUvarint appends v as an unsigned varint.
func AppendUvarint(buf []byte, v uint64) []byte {
	return binary.AppendUvarint(buf, v)
}

// AppendVarint appends v as a zigzag-encoded signed varint.
func AppendVarint(buf []byte, v int64) []byte {
	return binary.AppendVarint(buf, v)
}

// AppendString appends s as a uvarint length followed by the raw bytes.
func AppendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// Uvarint decodes an unsigned varint at data[off:], returning the value, the
// number of bytes consumed (0 unless the status is OK) and the status.
func Uvarint(data []byte, off int) (uint64, int, Status) {
	v, n := binary.Uvarint(data[off:])
	switch {
	case n == 0:
		return 0, 0, Truncated
	case n < 0:
		return 0, 0, Overflow
	}
	return v, n, OK
}

// Varint decodes a zigzag-encoded signed varint at data[off:], returning the
// value, the number of bytes consumed (0 unless the status is OK) and the
// status.
func Varint(data []byte, off int) (int64, int, Status) {
	v, n := binary.Varint(data[off:])
	switch {
	case n == 0:
		return 0, 0, Truncated
	case n < 0:
		return 0, 0, Overflow
	}
	return v, n, OK
}
