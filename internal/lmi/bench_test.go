package lmi

import (
	"testing"

	"mpsocsim/internal/bus"
	"mpsocsim/internal/sim"
)

// BenchmarkControllerThroughput measures served transactions per simulated
// cycle under a saturating sequential read stream.
func BenchmarkControllerThroughput(b *testing.B) {
	k := sim.NewKernel()
	clk := k.NewClock("clk", 200)
	c := New("lmi", DefaultConfig())
	var id uint64
	var addr uint64
	clk.Register(&sim.ClockedFunc{OnEval: func() {
		if c.Port().Req.CanPush() {
			id++
			addr += 64
			c.Port().Req.Push(&bus.Request{
				ID: id, Src: int(id % 4), Op: bus.OpRead,
				Addr: addr, Beats: 8, BytesPerBeat: 8,
			})
		}
		for c.Port().Resp.CanPop() {
			c.Port().Resp.Pop()
		}
	}})
	clk.Register(c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Step()
	}
	b.StopTimer()
	if cy := c.Stats().Cycles; cy > 0 {
		b.ReportMetric(float64(c.Stats().Served)/float64(cy), "txns/cycle")
	}
}

// BenchmarkLookaheadDepths contrasts the optimizer window sizes on four
// interleaved sequential streams — the DMA-style traffic whose row locality
// the lookahead engine is designed to recover from round-robin arrival.
func BenchmarkLookaheadDepths(b *testing.B) {
	for _, depth := range []int{0, 4, 8} {
		b.Run(map[int]string{0: "fcfs", 4: "la4", 8: "la8"}[depth], func(b *testing.B) {
			cfg := DefaultConfig()
			cfg.InputFifoDepth = 8
			cfg.LookaheadDepth = depth
			k := sim.NewKernel()
			clk := k.NewClock("clk", 200)
			c := New("lmi", cfg)
			var id uint64
			cursors := [4]uint64{0 << 22, 1 << 22, 2 << 22, 3 << 22}
			clk.Register(&sim.ClockedFunc{OnEval: func() {
				if c.Port().Req.CanPush() {
					s := int(id % 4)
					id++
					c.Port().Req.Push(&bus.Request{
						ID: id, Src: s, Op: bus.OpRead,
						Addr: cursors[s], Beats: 4, BytesPerBeat: 8,
					})
					cursors[s] += 32
				}
				for c.Port().Resp.CanPop() {
					c.Port().Resp.Pop()
				}
			}})
			clk.Register(c)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k.Step()
			}
			b.StopTimer()
			if cy := c.Stats().Cycles; cy > 0 {
				b.ReportMetric(float64(c.Stats().Served)/float64(cy), "txns/cycle")
				b.ReportMetric(c.Device().Stats().HitRate(), "rowhit")
			}
		})
	}
}
