package lmi

import (
	"mpsocsim/internal/attr"
	"mpsocsim/internal/bus"
	"mpsocsim/internal/snapshot"
)

// EncodeState serializes the controller's mutable state (DESIGN.md §16): the
// owned target port, the optimization-engine state, the response streams,
// the SDRAM device, the Fig.6 monitor trackers and the lifetime counters.
func (c *Controller) EncodeState(e *snapshot.Encoder) {
	e.Tag('I')
	bus.EncodeTargetPortState(e, c.port)
	e.I(c.now)
	bus.EncodeReqRef(e, c.cur)
	e.U(uint64(c.phase))
	e.I(c.readyAt)
	e.I(int64(c.bypassRuns))
	e.I(c.lastRowKey)
	e.Bool(c.refreshing)
	e.U(uint64(len(c.streams)))
	for i := range c.streams {
		s := &c.streams[i]
		bus.EncodeReqRef(e, s.req)
		e.I(int64(s.beats))
		e.I(int64(s.emitted))
		e.I(s.nextAt)
		e.Bool(s.isAck)
	}
	c.dev.EncodeState(e)
	c.monitor.phases.EncodeState(e)
	c.monitor.empty.EncodeState(e)
	e.I(c.served)
	e.I(c.reads)
	e.I(c.writes)
	e.I(c.mergedRuns)
	e.I(c.lookaheadHit)
	c.latency.EncodeState(e)
	e.I(c.busy)
}

// DecodeState restores a controller serialized by EncodeState.
func (c *Controller) DecodeState(d *snapshot.Decoder, col *attr.Collector) {
	d.Tag('I')
	bus.DecodeTargetPortState(d, c.port, col)
	c.now = d.I()
	c.cur = bus.DecodeReqRef(d, col)
	ph := d.U()
	if ph > uint64(phaseAccess) {
		d.Corrupt("lmi %q serve phase %d out of range", c.name, ph)
		return
	}
	c.phase = servePhase(ph)
	c.readyAt = d.I()
	c.bypassRuns = int(d.I())
	c.lastRowKey = d.I()
	c.refreshing = d.Bool()
	ns := d.N(1 << 16)
	c.streams = c.streams[:0]
	for i := 0; i < ns; i++ {
		var s stream
		s.req = bus.DecodeReqRef(d, col)
		s.beats = int(d.I())
		s.emitted = int(d.I())
		s.nextAt = d.I()
		s.isAck = d.Bool()
		if d.Err() != nil {
			return
		}
		c.streams = append(c.streams, s)
	}
	c.dev.DecodeState(d)
	c.monitor.phases.DecodeState(d)
	c.monitor.empty.DecodeState(d)
	c.served = d.I()
	c.reads = d.I()
	c.writes = d.I()
	c.mergedRuns = d.I()
	c.lookaheadHit = d.I()
	c.latency.DecodeState(d)
	c.busy = d.I()
}
