// Package lmi models the LMI off-chip memory controller the paper reverse-
// engineered from RTL waveforms (§3.1): an STBus-native target interface
// with input and output FIFOs of tunable size, an optimization engine
// performing opcode merging and variable-depth lookahead over the queued
// transactions, and a command scheduler that drives an SDR/DDR SDRAM device
// while meeting its timing specifications.
//
// Operation latencies are calibrated so that a typical read observes the
// paper's ~11 bus cycles from request sampling to first read data
// (pipeline front/back latency + tRCD + tCAS on the DDR device).
//
// The input FIFO of the bus interface is the monitored queue of the paper's
// Fig.6: Monitor() exposes per-window fractions of cycles where the FIFO is
// full, is storing a new request, or sees no incoming request, plus the
// empty fraction.
package lmi

import (
	"mpsocsim/internal/attr"
	"mpsocsim/internal/bus"
	"mpsocsim/internal/metrics"
	"mpsocsim/internal/sdram"
	"mpsocsim/internal/stats"
)

// Config parameterizes the controller.
type Config struct {
	// InputFifoDepth sizes the bus-interface input FIFO (the multi-slot
	// FIFO of §4.2; Fig.6 monitors its state).
	InputFifoDepth int
	// OutputFifoDepth sizes the response FIFO toward the bus.
	OutputFifoDepth int
	// LookaheadDepth is the optimizer window over the input FIFO;
	// 0 or 1 disables lookahead (strict FCFS).
	LookaheadDepth int
	// OpcodeMerging lets consecutive same-row same-opcode accesses skip
	// the per-transaction command overhead, modelling the merged opcode
	// sequences of the real engine.
	OpcodeMerging bool
	// FrontLatency/BackLatency are the back-annotated pipeline latencies
	// (bus cycles) between the bus interface and the command engine, and
	// between SDRAM data and the bus interface.
	FrontLatency int
	BackLatency  int
	// CmdOverhead is the command-engine overhead per non-merged
	// transaction, in cycles.
	CmdOverhead int
	// StarvationLimit bounds how many times lookahead may bypass the
	// FIFO head before the head is forced (anti-starvation aging).
	StarvationLimit int
	// SDRAM configures the attached device.
	SDRAM sdram.Config
	// PhaseWindow is the Fig.6 monitor window size in cycles.
	PhaseWindow int64
}

// DefaultConfig matches the platform's LMI instance: 4-deep input FIFO,
// lookahead of 4 with opcode merging, DDR device, ~11-cycle first-word read
// latency.
func DefaultConfig() Config {
	return Config{
		InputFifoDepth:  4,
		OutputFifoDepth: 8,
		LookaheadDepth:  4,
		OpcodeMerging:   true,
		FrontLatency:    2,
		BackLatency:     3,
		CmdOverhead:     2,
		StarvationLimit: 8,
		SDRAM:           sdram.DefaultConfig(),
		PhaseWindow:     2000,
	}
}

func (c *Config) normalize() {
	if c.InputFifoDepth <= 0 {
		c.InputFifoDepth = 4
	}
	if c.OutputFifoDepth <= 0 {
		c.OutputFifoDepth = 8
	}
	if c.LookaheadDepth < 0 {
		c.LookaheadDepth = 0
	}
	if c.FrontLatency < 0 {
		c.FrontLatency = 0
	}
	if c.BackLatency < 0 {
		c.BackLatency = 0
	}
	if c.CmdOverhead < 0 {
		c.CmdOverhead = 0
	}
	if c.StarvationLimit <= 0 {
		c.StarvationLimit = 8
	}
	if c.PhaseWindow <= 0 {
		c.PhaseWindow = 2000
	}
}

// servePhase tracks the command progress of the transaction being served.
type servePhase int

const (
	phasePrep   servePhase = iota // precharge/activate toward the row
	phaseAccess                   // waiting to issue the column access
)

// stream is a scheduled burst of response beats toward the bus.
type stream struct {
	req     *bus.Request
	beats   int // total beats to emit (1 for a write ack)
	emitted int
	nextAt  int64 // controller cycle of the next beat
	isAck   bool
}

// Controller is the LMI memory controller; it is a sim.Clocked component
// owning its target port.
type Controller struct {
	name string
	cfg  Config
	port *bus.TargetPort
	dev  *sdram.Device

	now int64

	// engine state
	cur        *bus.Request
	phase      servePhase
	readyAt    int64 // command-engine gate (front latency / overhead)
	bypassRuns int   // consecutive non-head selections (anti-starvation)
	lastRowKey int64 // bank/row/op key of the last access, for merging
	refreshing bool

	// response streaming
	streams []stream

	// pool reclaims posted writes, which die here with no response (nil
	// outside platform builds).
	pool *bus.RequestPool

	// attrCol/attrNow, when set, stamp the memory-side attribution phases
	// and close posted-write records (see EnableAttribution).
	attrCol *attr.Collector
	attrNow func() int64

	// statistics
	served       int64
	reads        int64
	writes       int64
	mergedRuns   int64
	lookaheadHit int64
	latency      stats.Histogram // request pop -> first beat, bus cycles
	busy         int64

	monitor *Monitor
}

// New builds a controller with the given configuration.
func New(name string, cfg Config) *Controller {
	cfg.normalize()
	c := &Controller{
		name:       name,
		cfg:        cfg,
		port:       bus.NewTargetPort(name, cfg.InputFifoDepth, cfg.OutputFifoDepth),
		dev:        sdram.New(cfg.SDRAM),
		lastRowKey: -1,
	}
	c.monitor = newMonitor(cfg.PhaseWindow)
	return c
}

// UseRequestPool makes the controller reclaim consumed posted writes into
// the given pool. Call before simulation starts.
func (c *Controller) UseRequestPool(p *bus.RequestPool) { c.pool = p }

// EnableAttribution makes the controller stamp latency-attribution phases:
// PhaseLMIFront when the optimization engine pops a request from the input
// FIFO (front pipeline latency + command overhead), PhaseSDRAMRowPrep while
// precharge/activate commands prepare the row on a miss, PhaseSDRAMCas from
// row-ready to the column access (command legality and data-bus occupancy —
// where bank conflicts show up), PhaseLMIBack from access to the first
// response beat (device data delay + back latency + output-FIFO
// backpressure) and PhaseRespReturn from the first beat on. A posted write's
// record is finished here — the transaction's life ends at consumption. now
// must return the controller clock's current edge in absolute picoseconds
// (sim.Clock.NowPS).
func (c *Controller) EnableAttribution(col *attr.Collector, now func() int64) {
	c.attrCol = col
	c.attrNow = now
}

// Port returns the bus-facing target port.
func (c *Controller) Port() *bus.TargetPort { return c.port }

// Name returns the controller instance name.
func (c *Controller) Name() string { return c.name }

// Device exposes the attached SDRAM device (for statistics).
func (c *Controller) Device() *sdram.Device { return c.dev }

// Monitor exposes the Fig.6 bus-interface monitor.
func (c *Controller) Monitor() *Monitor { return c.monitor }

// Eval advances the controller one bus cycle.
func (c *Controller) Eval() {
	c.now++
	c.emitBeats()
	c.handleRefresh()
	if !c.refreshing {
		if c.cur == nil {
			c.selectNext()
		}
		if c.cur != nil {
			c.advanceCommands()
		}
	}
	if c.cur != nil || len(c.streams) > 0 {
		c.busy++
	}
}

// Update commits the port FIFOs and samples the Fig.6 monitor.
func (c *Controller) Update() {
	c.monitor.sample(c.port.Req)
	c.port.Update()
}

// emitBeats pushes at most one response beat per cycle from the oldest
// stream whose schedule has matured.
func (c *Controller) emitBeats() {
	if len(c.streams) == 0 {
		return
	}
	s := &c.streams[0]
	if c.now < s.nextAt || !c.port.Resp.CanPush() {
		return
	}
	if s.emitted == 0 {
		if rec := s.req.Attr; rec != nil && c.attrNow != nil {
			rec.Enter(attr.PhaseRespReturn, c.attrNow())
		}
	}
	if s.isAck {
		c.port.Resp.Push(bus.Beat{Req: s.req, Idx: 0, Last: true})
	} else {
		last := s.emitted == s.beats-1
		c.port.Resp.Push(bus.Beat{Req: s.req, Idx: s.emitted, Last: last})
	}
	s.emitted++
	s.nextAt = c.now + 1
	if s.emitted >= s.beats {
		// Shift in place so the stream queue's backing array is reused
		// instead of reallocated on every completed transaction.
		n := copy(c.streams, c.streams[1:])
		c.streams[n] = stream{}
		c.streams = c.streams[:n]
	}
}

// handleRefresh drives the auto-refresh protocol when due.
func (c *Controller) handleRefresh() {
	if !c.refreshing {
		if !c.dev.RefreshDue(c.now) || c.cur != nil {
			return
		}
		c.refreshing = true
	}
	// close all banks, then refresh
	if c.dev.CanRefresh(c.now) {
		c.dev.Refresh(c.now)
		c.refreshing = false
		c.lastRowKey = -1
		return
	}
	for b := 0; b < c.cfg.SDRAM.Geometry.Banks; b++ {
		if c.dev.OpenRow(b) != -1 && c.dev.CanPrecharge(b, c.now) {
			c.dev.Precharge(b, c.now)
		}
	}
}

// selectNext applies variable-depth lookahead over the input FIFO: the first
// row-hit entry (not bypassing any older entry from the same source) wins;
// otherwise the head is served. Aging bounds how long the head can be
// bypassed.
func (c *Controller) selectNext() {
	n := c.port.Req.Len()
	if n == 0 {
		return
	}
	window := 1
	if c.cfg.LookaheadDepth > 1 {
		window = c.cfg.LookaheadDepth
	}
	if window > n {
		window = n
	}
	pick := 0
	if window > 1 && c.bypassRuns < c.cfg.StarvationLimit {
		for i := 0; i < window; i++ {
			cand := c.port.Req.PeekAt(i)
			if c.srcBlocked(cand, i) {
				continue
			}
			if c.dev.IsRowHit(cand.Addr) {
				pick = i
				break
			}
		}
	}
	if pick == 0 {
		c.bypassRuns = 0
		if c.dev.IsRowHit(c.port.Req.PeekAt(0).Addr) {
			c.dev.NoteRowHit()
		} else {
			c.dev.NoteRowMiss()
		}
	} else {
		c.bypassRuns++
		c.lookaheadHit++
		c.dev.NoteRowHit()
	}
	c.cur = c.port.Req.RemoveAt(pick)
	if rec := c.cur.Attr; rec != nil && c.attrNow != nil {
		rec.Enter(attr.PhaseLMIFront, c.attrNow())
	}
	c.phase = phasePrep
	// front-end pipeline latency plus per-transaction command overhead
	// (waived when merging with the previous access run).
	gate := c.now + int64(c.cfg.FrontLatency)
	if !c.merges(c.cur) {
		gate += int64(c.cfg.CmdOverhead)
	} else {
		c.mergedRuns++
	}
	c.readyAt = gate
	if c.cur.Op == bus.OpRead {
		c.reads++
	} else {
		c.writes++
	}
}

// srcBlocked reports whether an older queued entry shares cand's source, in
// which case cand must not bypass it (per-source response order).
func (c *Controller) srcBlocked(cand *bus.Request, idx int) bool {
	for j := 0; j < idx; j++ {
		if c.port.Req.PeekAt(j).Src == cand.Src {
			return true
		}
	}
	return false
}

// merges reports whether req continues the previous access run (same bank,
// same row, same opcode) so opcode merging applies.
func (c *Controller) merges(req *bus.Request) bool {
	if !c.cfg.OpcodeMerging {
		return false
	}
	return c.rowKey(req) == c.lastRowKey
}

// rowKey folds bank, row and opcode into one comparable value.
func (c *Controller) rowKey(req *bus.Request) int64 {
	bankRow := int64(c.dev.BankOf(req.Addr))<<40 | c.dev.RowOf(req.Addr)<<1
	if req.Op == bus.OpWrite {
		bankRow |= 1
	}
	return bankRow
}

// advanceCommands walks the current transaction through the SDRAM command
// sequence.
func (c *Controller) advanceCommands() {
	if c.now < c.readyAt {
		return
	}
	req := c.cur
	bankIdx := c.dev.BankOf(req.Addr)
	rec := req.Attr
	if rec != nil && c.attrNow == nil {
		rec = nil
	}
	switch c.phase {
	case phasePrep:
		if c.dev.IsRowHit(req.Addr) {
			c.phase = phaseAccess
			if rec != nil {
				rec.Enter(attr.PhaseSDRAMCas, c.attrNow())
			}
			c.advanceAccess(req)
			return
		}
		if rec != nil {
			rec.Enter(attr.PhaseSDRAMRowPrep, c.attrNow())
		}
		if c.dev.OpenRow(bankIdx) != -1 {
			if c.dev.CanPrecharge(bankIdx, c.now) {
				c.dev.Precharge(bankIdx, c.now)
			}
			return
		}
		if c.dev.CanActivate(bankIdx, c.now) {
			c.dev.Activate(bankIdx, c.dev.RowOf(req.Addr), c.now)
			c.phase = phaseAccess
			if rec != nil {
				rec.Enter(attr.PhaseSDRAMCas, c.attrNow())
			}
		}
	case phaseAccess:
		c.advanceAccess(req)
	}
}

// advanceAccess issues the column access once legal and schedules the
// response stream.
func (c *Controller) advanceAccess(req *bus.Request) {
	if !c.dev.CanAccess(req.Addr, c.now) {
		return
	}
	// convert bus beats to device columns
	colBytes := c.cfg.SDRAM.Geometry.BytesPerCol
	cols := (req.Bytes() + colBytes - 1) / colBytes
	if cols < 1 {
		cols = 1
	}
	firstData, busCycles := c.dev.Access(req.Addr, cols, req.Op == bus.OpWrite, c.now)
	c.lastRowKey = c.rowKey(req)
	c.served++
	if rec := req.Attr; rec != nil && c.attrNow != nil && !(req.Op == bus.OpWrite && req.Posted) {
		rec.Enter(attr.PhaseLMIBack, c.attrNow())
	}
	switch {
	case req.Op == bus.OpRead:
		first := firstData + int64(c.cfg.BackLatency)
		c.latency.Add(first - req.IssueCycle) // end-to-end if same domain
		c.streams = append(c.streams, stream{req: req, beats: req.Beats, nextAt: first})
	case req.Posted:
		// no response: the posted write's life ends here, so the
		// controller owns its reclamation (and its attribution record).
		if rec := req.Attr; rec != nil && c.attrCol != nil {
			c.attrCol.Finish(rec, c.attrNow())
		}
		c.pool.Put(req)
	default:
		ackAt := firstData + busCycles + int64(c.cfg.BackLatency)
		c.streams = append(c.streams, stream{req: req, beats: 1, nextAt: ackAt, isAck: true})
	}
	c.cur = nil
}

// RegisterMetrics registers the controller's telemetry under "lmi.<name>.*"
// on the given clock domain: the generalized Fig.6 observables (input-FIFO
// queue depth gauge plus full/storing/norequest/empty cycle counters from
// the monitor's phase trackers), engine counters, SDRAM command and
// page-hit/miss counters, a bank-busy gauge, and the read-latency
// histogram. Func-backed: the scheduling hot paths are untouched.
func (c *Controller) RegisterMetrics(m *metrics.Registry, clock string) {
	p := "lmi." + c.name + "."
	m.CounterFunc(p+"served", func() int64 { return c.served })
	m.CounterFunc(p+"reads", func() int64 { return c.reads })
	m.CounterFunc(p+"writes", func() int64 { return c.writes })
	m.CounterFunc(p+"merged_runs", func() int64 { return c.mergedRuns })
	m.CounterFunc(p+"lookahead_hits", func() int64 { return c.lookaheadHit })
	m.CounterFunc(p+"busy_cycles", func() int64 { return c.busy })
	m.CounterFunc(p+"cycles", func() int64 { return c.now })
	m.CounterFunc(p+"fifo_full_cycles", func() int64 { return c.monitor.phases.TotalCount(StateFull) })
	m.CounterFunc(p+"fifo_storing_cycles", func() int64 { return c.monitor.phases.TotalCount(StateStoring) })
	m.CounterFunc(p+"fifo_norequest_cycles", func() int64 { return c.monitor.phases.TotalCount(StateNoRequest) })
	m.CounterFunc(p+"fifo_empty_cycles", func() int64 { return c.monitor.empty.TotalCount(stateEmpty) })
	m.CounterFunc(p+"sdram_activates", func() int64 { return c.dev.Stats().Activates })
	m.CounterFunc(p+"sdram_precharges", func() int64 { return c.dev.Stats().Precharges })
	m.CounterFunc(p+"sdram_refreshes", func() int64 { return c.dev.Stats().Refreshes })
	m.CounterFunc(p+"sdram_row_hits", func() int64 { return c.dev.Stats().RowHits })
	m.CounterFunc(p+"sdram_row_misses", func() int64 { return c.dev.Stats().RowMisses })
	m.Histogram(p+"read_latency", &c.latency)
	m.GaugeFunc(p+"queue_depth", clock, func() int64 { return int64(c.port.Req.Len()) })
	m.GaugeFunc(p+"banks_open", clock, func() int64 {
		var n int64
		for b := 0; b < c.cfg.SDRAM.Geometry.Banks; b++ {
			if c.dev.OpenRow(b) != -1 {
				n++
			}
		}
		return n
	})
}

// Stats reports controller activity.
func (c *Controller) Stats() Stats {
	return Stats{
		Served:        c.served,
		Reads:         c.reads,
		Writes:        c.writes,
		MergedRuns:    c.mergedRuns,
		LookaheadHits: c.lookaheadHit,
		BusyCycles:    c.busy,
		Cycles:        c.now,
		SDRAM:         c.dev.Stats(),
	}
}

// Stats summarizes controller activity.
type Stats struct {
	Served        int64
	Reads         int64
	Writes        int64
	MergedRuns    int64
	LookaheadHits int64
	BusyCycles    int64
	Cycles        int64
	SDRAM         sdram.Stats
}

// Utilization returns the fraction of cycles the controller was active.
func (s Stats) Utilization() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.BusyCycles) / float64(s.Cycles)
}
