package lmi

import (
	"mpsocsim/internal/bus"
	"mpsocsim/internal/stats"
)

// Monitor observes the bus-interface input FIFO cycle by cycle and
// reproduces the statistics of the paper's Fig.6. Each cycle is classified
// into exactly one of three states:
//
//	full      — the FIFO cannot store a new transaction,
//	storing   — the interface is storing at least one new request,
//	norequest — the FIFO has room but no request arrived (request signal
//	            low while grant is high).
//
// Empty cycles are tracked independently (an empty FIFO is usually also a
// no-request cycle) because the paper reads the empty fraction as a
// burstiness indicator.
type Monitor struct {
	phases *stats.PhaseTracker
	empty  *stats.PhaseTracker
}

// Monitor state names.
const (
	StateFull      = "full"
	StateStoring   = "storing"
	StateNoRequest = "norequest"

	stateEmpty    = "empty"
	stateNonEmpty = "nonempty"
)

func newMonitor(window int64) *Monitor {
	return &Monitor{
		phases: stats.NewPhaseTracker(window, StateFull, StateStoring, StateNoRequest),
		empty:  stats.NewPhaseTracker(window, stateEmpty, stateNonEmpty),
	}
}

// sample classifies the current cycle; the controller calls it from Update,
// when this cycle's staged pushes are still observable.
func (m *Monitor) sample(q *bus.Queue) {
	switch {
	case q.Len() >= q.Depth():
		m.phases.Observe(StateFull)
	case q.Staged() > 0:
		m.phases.Observe(StateStoring)
	default:
		m.phases.Observe(StateNoRequest)
	}
	if q.Len() == 0 {
		m.empty.Observe(stateEmpty)
	} else {
		m.empty.Observe(stateNonEmpty)
	}
}

// TotalFrac returns the lifetime fraction of cycles in the given state
// (StateFull, StateStoring or StateNoRequest).
func (m *Monitor) TotalFrac(state string) float64 { return m.phases.TotalFrac(state) }

// EmptyFrac returns the lifetime fraction of cycles with an empty FIFO.
func (m *Monitor) EmptyFrac() float64 { return m.empty.TotalFrac(stateEmpty) }

// Cycles returns the number of observed cycles.
func (m *Monitor) Cycles() int64 { return m.phases.Cycles() }

// WindowReport is one observation window's Fig.6 row.
type WindowReport struct {
	StartCycle    int64
	FullFrac      float64
	StoringFrac   float64
	NoRequestFrac float64
	EmptyFrac     float64
}

// Windows returns the per-window Fig.6 fractions.
func (m *Monitor) Windows() []WindowReport {
	pw := m.phases.Windows()
	ew := m.empty.Windows()
	n := len(pw)
	if len(ew) < n {
		n = len(ew)
	}
	out := make([]WindowReport, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, WindowReport{
			StartCycle:    pw[i].StartCycle,
			FullFrac:      pw[i].Frac(m.phases, StateFull),
			StoringFrac:   pw[i].Frac(m.phases, StateStoring),
			NoRequestFrac: pw[i].Frac(m.phases, StateNoRequest),
			EmptyFrac:     ew[i].Frac(m.empty, stateEmpty),
		})
	}
	return out
}

// Phase aggregates the windows whose start cycle lies in [from, to) into a
// single report — how the paper summarizes each working regime.
func (m *Monitor) Phase(from, to int64) WindowReport {
	var agg WindowReport
	var n float64
	for _, w := range m.Windows() {
		if w.StartCycle < from || w.StartCycle >= to {
			continue
		}
		agg.FullFrac += w.FullFrac
		agg.StoringFrac += w.StoringFrac
		agg.NoRequestFrac += w.NoRequestFrac
		agg.EmptyFrac += w.EmptyFrac
		n++
	}
	if n > 0 {
		agg.FullFrac /= n
		agg.StoringFrac /= n
		agg.NoRequestFrac /= n
		agg.EmptyFrac /= n
	}
	agg.StartCycle = from
	return agg
}
