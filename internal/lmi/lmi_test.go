package lmi

import (
	"testing"
	"testing/quick"

	"mpsocsim/internal/bus"
	"mpsocsim/internal/sim"
)

// harness drives the controller directly through its target port.
type harness struct {
	k    *sim.Kernel
	clk  *sim.Clock
	c    *Controller
	sent []*bus.Request
	got  []bus.Beat
	at   []int64
	next int
}

func newHarness(cfg Config, reqs []*bus.Request) *harness {
	k := sim.NewKernel()
	clk := k.NewClock("clk", 200)
	c := New("lmi", cfg)
	h := &harness{k: k, clk: clk, c: c, sent: reqs}
	feeder := &sim.ClockedFunc{OnEval: func() {
		if h.next < len(h.sent) && c.Port().Req.CanPush() {
			r := h.sent[h.next]
			r.IssueCycle = clk.Cycles()
			c.Port().Req.Push(r)
			h.next++
		}
		for c.Port().Resp.CanPop() {
			h.got = append(h.got, c.Port().Resp.Pop())
			h.at = append(h.at, clk.Cycles())
		}
	}}
	clk.Register(feeder)
	clk.Register(c)
	return h
}

func (h *harness) expected() int {
	n := 0
	for _, r := range h.sent {
		if r.Op == bus.OpRead {
			n += r.Beats
		} else if !r.Posted {
			n++
		}
	}
	return n
}

func (h *harness) run(t *testing.T) {
	t.Helper()
	want := h.expected()
	if !h.k.RunWhile(func() bool { return len(h.got) < want }, 1e10) {
		t.Fatalf("timeout: %d of %d beats", len(h.got), want)
	}
}

func rd(id, addr uint64, beats int) *bus.Request {
	return &bus.Request{ID: id, Src: int(id % 3), Op: bus.OpRead, Addr: addr, Beats: beats, BytesPerBeat: 8}
}

func wrN(id, addr uint64, beats int) *bus.Request {
	return &bus.Request{ID: id, Src: int(id % 3), Op: bus.OpWrite, Addr: addr, Beats: beats, BytesPerBeat: 8}
}

func TestReadFirstWordLatency(t *testing.T) {
	h := newHarness(DefaultConfig(), []*bus.Request{rd(1, 0x1000, 4)})
	h.run(t)
	if len(h.got) != 4 {
		t.Fatalf("beats = %d", len(h.got))
	}
	// ~11 cycles from sampling to first read data (paper §4.2): allow a
	// modest band around it for the row-miss command sequence.
	first := h.at[0] - 1 // request issued on cycle 1
	if first < 8 || first > 18 {
		t.Fatalf("first-word latency = %d cycles, want ~11", first)
	}
	for i, b := range h.got {
		if b.Idx != i || (b.Last != (i == 3)) {
			t.Fatalf("beat %d malformed", i)
		}
	}
}

func TestWriteAckAndPosted(t *testing.T) {
	h := newHarness(DefaultConfig(), []*bus.Request{wrN(1, 0x100, 4)})
	h.run(t)
	if len(h.got) != 1 || !h.got[0].Last {
		t.Fatalf("want single ack, got %d beats", len(h.got))
	}
	p := wrN(2, 0x200, 4)
	p.Posted = true
	h2 := newHarness(DefaultConfig(), []*bus.Request{p, rd(3, 0x300, 1)})
	h2.run(t)
	if len(h2.got) != 1 || h2.got[0].Req.ID != 3 {
		t.Fatal("posted write must not produce a response")
	}
}

func TestRowHitFasterThanMiss(t *testing.T) {
	cfg := DefaultConfig()
	rowStride := uint64(1<<uint(cfg.SDRAM.Geometry.ColBits)) * uint64(cfg.SDRAM.Geometry.BytesPerCol) * uint64(cfg.SDRAM.Geometry.Banks)

	// hit pair: two reads in the same row
	hHit := newHarness(cfg, []*bus.Request{rd(1, 0x0, 4), rd(2, 0x40, 4)})
	hHit.run(t)
	hitTime := hHit.at[len(hHit.at)-1]

	// miss pair: second read forces precharge+activate in the same bank
	hMiss := newHarness(cfg, []*bus.Request{rd(1, 0x0, 4), rd(2, rowStride, 4)})
	hMiss.run(t)
	missTime := hMiss.at[len(hMiss.at)-1]

	if hitTime >= missTime {
		t.Fatalf("row hit (%d cycles) should beat row miss (%d cycles)", hitTime, missTime)
	}
}

func TestLookaheadReordersRowHit(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LookaheadDepth = 4
	rowStride := uint64(1<<uint(cfg.SDRAM.Geometry.ColBits)) * uint64(cfg.SDRAM.Geometry.BytesPerCol) * uint64(cfg.SDRAM.Geometry.Banks)
	// warm up row 0, then queue a miss (different row, same bank) and a
	// hit (row 0) from different sources; the hit should be served first.
	warm := rd(1, 0x0, 1)
	warm.Src = 0
	miss := rd(2, rowStride, 1)
	miss.Src = 1
	hit := rd(3, 0x80, 1)
	hit.Src = 2
	h := newHarness(cfg, []*bus.Request{warm, miss, hit})
	h.run(t)
	order := []uint64{}
	for _, b := range h.got {
		order = append(order, b.Req.ID)
	}
	if !(order[0] == 1 && order[1] == 3 && order[2] == 2) {
		t.Fatalf("service order = %v, want [1 3 2] (lookahead row-hit first)", order)
	}
	if h.c.Stats().LookaheadHits == 0 {
		t.Fatal("lookahead hit not counted")
	}
}

func TestFCFSWithoutLookahead(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LookaheadDepth = 0
	rowStride := uint64(1<<uint(cfg.SDRAM.Geometry.ColBits)) * uint64(cfg.SDRAM.Geometry.BytesPerCol) * uint64(cfg.SDRAM.Geometry.Banks)
	warm := rd(1, 0x0, 1)
	miss := rd(2, rowStride, 1)
	miss.Src = 1
	hit := rd(3, 0x80, 1)
	hit.Src = 2
	h := newHarness(cfg, []*bus.Request{warm, miss, hit})
	h.run(t)
	order := []uint64{}
	for _, b := range h.got {
		order = append(order, b.Req.ID)
	}
	if !(order[0] == 1 && order[1] == 2 && order[2] == 3) {
		t.Fatalf("service order = %v, want FCFS [1 2 3]", order)
	}
}

func TestPerSourceOrderPreserved(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LookaheadDepth = 4
	rowStride := uint64(1<<uint(cfg.SDRAM.Geometry.ColBits)) * uint64(cfg.SDRAM.Geometry.BytesPerCol) * uint64(cfg.SDRAM.Geometry.Banks)
	// same source issues miss then hit: lookahead must NOT reorder them
	warm := rd(1, 0x0, 1)
	warm.Src = 0
	miss := rd(2, rowStride, 1)
	miss.Src = 5
	hit := rd(3, 0x80, 1)
	hit.Src = 5
	h := newHarness(cfg, []*bus.Request{warm, miss, hit})
	h.run(t)
	order := []uint64{}
	for _, b := range h.got {
		order = append(order, b.Req.ID)
	}
	if !(order[1] == 2 && order[2] == 3) {
		t.Fatalf("service order = %v: same-source requests were reordered", order)
	}
}

func TestOpcodeMergingCounted(t *testing.T) {
	cfg := DefaultConfig()
	var reqs []*bus.Request
	for i := uint64(0); i < 6; i++ {
		r := rd(i+1, i*0x40, 4) // all in row 0: sequential merge run
		r.Src = int(i)
		reqs = append(reqs, r)
	}
	h := newHarness(cfg, reqs)
	h.run(t)
	if h.c.Stats().MergedRuns == 0 {
		t.Fatal("sequential same-row reads should merge")
	}

	cfg2 := DefaultConfig()
	cfg2.OpcodeMerging = false
	var reqs2 []*bus.Request
	for i := uint64(0); i < 6; i++ {
		r := rd(i+1, i*0x40, 4)
		r.Src = int(i)
		reqs2 = append(reqs2, r)
	}
	h2 := newHarness(cfg2, reqs2)
	h2.run(t)
	if h2.c.Stats().MergedRuns != 0 {
		t.Fatal("merging disabled but counted")
	}
	// merging must not be slower
	if h.at[len(h.at)-1] > h2.at[len(h2.at)-1] {
		t.Fatalf("merging (%d cycles) slower than non-merging (%d cycles)",
			h.at[len(h.at)-1], h2.at[len(h2.at)-1])
	}
}

func TestRefreshIssued(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SDRAM.Timing.TREFI = 200 // frequent refresh for the test
	var reqs []*bus.Request
	for i := uint64(0); i < 40; i++ {
		r := rd(i+1, i*0x40, 4)
		r.Src = int(i % 3)
		reqs = append(reqs, r)
	}
	h := newHarness(cfg, reqs)
	h.run(t)
	if h.c.Stats().SDRAM.Refreshes == 0 {
		t.Fatal("no refresh issued over a long run")
	}
}

func TestMonitorFractionsPartition(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PhaseWindow = 100
	var reqs []*bus.Request
	for i := uint64(0); i < 30; i++ {
		r := rd(i+1, i*0x40, 8)
		r.Src = int(i % 3)
		reqs = append(reqs, r)
	}
	h := newHarness(cfg, reqs)
	h.run(t)
	m := h.c.Monitor()
	sum := m.TotalFrac(StateFull) + m.TotalFrac(StateStoring) + m.TotalFrac(StateNoRequest)
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("state fractions sum to %v, want 1", sum)
	}
	if m.Cycles() == 0 {
		t.Fatal("monitor observed nothing")
	}
	if m.TotalFrac(StateStoring) == 0 {
		t.Fatal("storing cycles expected")
	}
	ws := m.Windows()
	if len(ws) == 0 {
		t.Fatal("no windows recorded")
	}
	for _, w := range ws {
		s := w.FullFrac + w.StoringFrac + w.NoRequestFrac
		if s < 0.999 || s > 1.001 {
			t.Fatalf("window fractions sum to %v", s)
		}
	}
	ph := m.Phase(0, m.Cycles())
	if ph.FullFrac < 0 || ph.FullFrac > 1 {
		t.Fatalf("phase full frac %v", ph.FullFrac)
	}
}

func TestUtilizationBounds(t *testing.T) {
	h := newHarness(DefaultConfig(), []*bus.Request{rd(1, 0x0, 4)})
	h.run(t)
	if u := h.c.Stats().Utilization(); u <= 0 || u > 1 {
		t.Fatalf("utilization = %v", u)
	}
	var s Stats
	if s.Utilization() != 0 {
		t.Fatal("zero stats utilization")
	}
}

// Property: any random request mix completes with exact beat counts, in
// per-source order, for any lookahead depth and merging setting.
func TestPropertyCompletionAndSourceOrder(t *testing.T) {
	prop := func(seed uint64, n8, la8 uint8, merge bool) bool {
		rng := sim.NewRand(seed)
		cfg := DefaultConfig()
		cfg.LookaheadDepth = int(la8 % 6)
		cfg.OpcodeMerging = merge
		n := int(n8%24) + 1
		var reqs []*bus.Request
		for i := 0; i < n; i++ {
			r := &bus.Request{
				ID:           uint64(i + 1),
				Src:          rng.Intn(3),
				Addr:         uint64(rng.Intn(1 << 22)),
				Beats:        rng.Range(1, 8),
				BytesPerBeat: 8,
			}
			if rng.Bool(0.4) {
				r.Op = bus.OpWrite
			}
			reqs = append(reqs, r)
		}
		h := newHarness(cfg, reqs)
		want := h.expected()
		h.k.RunWhile(func() bool { return len(h.got) < want }, 1e10)
		if len(h.got) != want {
			return false
		}
		// per-source first-beat order must match per-source issue order
		perSrcIssued := map[int][]uint64{}
		for _, r := range reqs {
			if r.Op == bus.OpRead || !r.Posted {
				perSrcIssued[r.Src] = append(perSrcIssued[r.Src], r.ID)
			}
		}
		perSrcSeen := map[int][]uint64{}
		seen := map[uint64]bool{}
		for _, b := range h.got {
			if !seen[b.Req.ID] {
				seen[b.Req.ID] = true
				perSrcSeen[b.Req.Src] = append(perSrcSeen[b.Req.Src], b.Req.ID)
			}
		}
		for src, issued := range perSrcIssued {
			got := perSrcSeen[src]
			if len(got) != len(issued) {
				return false
			}
			for i := range issued {
				if issued[i] != got[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
