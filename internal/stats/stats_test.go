package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	for _, v := range []int64{1, 2, 3, 4, 5} {
		h.Add(v)
	}
	if h.N() != 5 {
		t.Fatalf("n = %d", h.N())
	}
	if h.Sum() != 15 {
		t.Fatalf("sum = %d", h.Sum())
	}
	if h.Mean() != 3 {
		t.Fatalf("mean = %v", h.Mean())
	}
	if h.Min() != 1 || h.Max() != 5 {
		t.Fatalf("min/max = %d/%d", h.Min(), h.Max())
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram must report zeros")
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Add(-5)
	if h.Min() != 0 {
		t.Fatalf("negative sample not clamped: min=%d", h.Min())
	}
}

func TestHistogramQuantileMonotonic(t *testing.T) {
	var h Histogram
	for i := int64(0); i < 1000; i++ {
		h.Add(i)
	}
	q50, q90, q99 := h.Quantile(0.5), h.Quantile(0.9), h.Quantile(0.99)
	if q50 > q90 || q90 > q99 {
		t.Fatalf("quantiles not monotonic: %d %d %d", q50, q90, q99)
	}
	// With linear interpolation inside the bucket, the estimates must land
	// near the exact order statistics of the uniform sample (true p50 is
	// 499, p90 is 899, p99 is 989), not at the bucket's power-of-two upper
	// bound (which would report 511 / 1023 / 1023).
	if q50 < 480 || q50 > 520 {
		t.Fatalf("p50 = %d, want within [480, 520] of true median 499", q50)
	}
	if q90 < 870 || q90 > 930 {
		t.Fatalf("p90 = %d, want within [870, 930] of true p90 899", q90)
	}
	if q99 < 960 || q99 > 999 {
		t.Fatalf("p99 = %d, want within [960, 999] of true p99 989", q99)
	}
	if got := h.Quantile(1.0); got != h.Max() {
		t.Fatalf("p100 = %d, want max %d", got, h.Max())
	}
	if h.String() == "" {
		t.Fatal("empty String()")
	}
}

// TestHistogramQuantileClamped pins the interpolation's clamping: a single-
// value histogram must report that value at every quantile instead of the
// bucket's upper bound.
func TestHistogramQuantileClamped(t *testing.T) {
	var h Histogram
	h.Add(1000) // bucket [512, 1023]
	for _, q := range []float64{0.01, 0.5, 0.99, 1.0} {
		if got := h.Quantile(q); got != 1000 {
			t.Fatalf("Quantile(%v) = %d, want 1000", q, got)
		}
	}
}

// Property: quantile upper bound always >= exact value implied by samples
// below it, and Add never loses samples.
func TestHistogramPropertyCount(t *testing.T) {
	prop := func(vals []int16) bool {
		var h Histogram
		for _, v := range vals {
			h.Add(int64(v))
		}
		return h.N() == int64(len(vals))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPhaseTrackerWindows(t *testing.T) {
	p := NewPhaseTracker(10, "full", "storing", "norequest")
	for i := 0; i < 10; i++ {
		p.Observe("full")
	}
	for i := 0; i < 10; i++ {
		if i%2 == 0 {
			p.Observe("storing")
		} else {
			p.Observe("norequest")
		}
	}
	ws := p.Windows()
	if len(ws) != 2 {
		t.Fatalf("windows = %d, want 2", len(ws))
	}
	if got := ws[0].Frac(p, "full"); got != 1.0 {
		t.Fatalf("window 0 full frac = %v", got)
	}
	if got := ws[1].Frac(p, "storing"); got != 0.5 {
		t.Fatalf("window 1 storing frac = %v", got)
	}
	if got := p.TotalFrac("full"); got != 0.5 {
		t.Fatalf("total full frac = %v", got)
	}
	if p.Cycles() != 20 {
		t.Fatalf("cycles = %d", p.Cycles())
	}
	if len(p.States()) != 3 {
		t.Fatal("states lost")
	}
}

func TestPhaseTrackerUnknownStatePanics(t *testing.T) {
	p := NewPhaseTracker(10, "a")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.Observe("b")
}

func TestPhaseTrackerBadWindowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewPhaseTracker(0, "a")
}

func TestTableFormatting(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRow("b", "22", "dropped-extra")
	var sb strings.Builder
	if err := tb.Write(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") {
		t.Fatalf("header missing: %q", lines[0])
	}
	if !strings.Contains(lines[2], "alpha") || !strings.Contains(lines[3], "22") {
		t.Fatalf("rows wrong:\n%s", out)
	}
	if strings.Contains(out, "dropped-extra") {
		t.Fatal("extra cell should be dropped")
	}
}

func TestNormalize(t *testing.T) {
	out := Normalize([]float64{4, 8, 2})
	want := []float64{1, 2, 0.5}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("normalize = %v", out)
		}
	}
	if got := Normalize(nil); len(got) != 0 {
		t.Fatal("nil normalize")
	}
	if got := Normalize([]float64{0, 5}); got[0] != 0 || got[1] != 0 {
		t.Fatal("zero-base normalize must return zeros")
	}
}

func TestArgMin(t *testing.T) {
	if ArgMin([]float64{3, 1, 2}) != 1 {
		t.Fatal("argmin wrong")
	}
	if ArgMin(nil) != -1 {
		t.Fatal("empty argmin")
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	keys := SortedKeys(m)
	if len(keys) != 3 || keys[0] != "a" || keys[2] != "c" {
		t.Fatalf("keys = %v", keys)
	}
}
