// Package stats provides the measurement infrastructure of the virtual
// platform: latency histograms, windowed phase trackers (used to reproduce
// the two-regime LMI interface analysis of the paper's Fig.6), and aligned
// table formatting for the experiment harness.
package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Histogram accumulates integer samples (e.g. transaction latencies in
// cycles) into power-of-two buckets plus exact running moments.
type Histogram struct {
	counts [64]int64
	n      int64
	sum    int64
	min    int64
	max    int64
}

// Add records one sample. Negative samples are clamped to zero.
func (h *Histogram) Add(v int64) {
	if v < 0 {
		v = 0
	}
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.n++
	h.sum += v
	h.counts[bucketOf(v)]++
}

func bucketOf(v int64) int {
	b := 0
	for v > 0 {
		v >>= 1
		b++
	}
	if b >= 64 {
		b = 63
	}
	return b
}

// N returns the sample count.
func (h *Histogram) N() int64 { return h.n }

// Sum returns the total of all samples.
func (h *Histogram) Sum() int64 { return h.sum }

// Mean returns the average sample, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Min returns the smallest sample (0 when empty).
func (h *Histogram) Min() int64 { return h.min }

// Max returns the largest sample.
func (h *Histogram) Max() int64 { return h.max }

// Quantile estimates the q-quantile (0 < q <= 1) by locating the power-of-
// two bucket holding the target rank and interpolating linearly within it,
// so the estimate tracks the sample distribution instead of snapping to the
// bucket's upper bound (which over-reports by up to 2x at p50). The result
// is clamped into [Min, Max] and is monotonically non-decreasing in q.
func (h *Histogram) Quantile(q float64) int64 {
	if h.n == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(h.n)))
	if target < 1 {
		target = 1
	}
	var acc int64
	for b, c := range h.counts {
		acc += c
		if acc < target {
			continue
		}
		if b == 0 {
			return 0
		}
		// Bucket b holds samples in [2^(b-1), 2^b - 1]. rank is the
		// target's 1-based position inside this bucket's c samples;
		// interpolate assuming they spread uniformly across the range.
		lo := int64(1) << uint(b-1)
		hi := int64(1)<<uint(b) - 1
		rank := target - (acc - c)
		v := lo + (hi-lo)*rank/c
		if v < h.min {
			v = h.min
		}
		if v > h.max {
			v = h.max
		}
		return v
	}
	return h.max
}

// String summarizes the histogram.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%.1f min=%d max=%d p50<=%d p90<=%d",
		h.n, h.Mean(), h.min, h.max, h.Quantile(0.5), h.Quantile(0.9))
}

// PhaseTracker classifies every cycle into one named state and accumulates
// per-window counts, so execution phases with different traffic regimes can
// be told apart (paper Fig.6: FIFO full / storing / no-request fractions per
// working regime).
type PhaseTracker struct {
	states     []string
	index      map[string]int
	windowSize int64

	cycle   int64
	current []int64
	windows []Window
	total   []int64
	// arena is preallocated count storage carved up by roll(), so closing
	// a window does not allocate on the observation hot path. Windows keep
	// pointing into exhausted chunks, so growing the arena never moves
	// completed windows.
	arena []int64
}

// arenaWindows is the number of windows' worth of count storage allocated
// per arena chunk.
const arenaWindows = 128

// Window is one completed observation window.
type Window struct {
	StartCycle int64
	Cycles     int64
	Counts     []int64
}

// NewPhaseTracker builds a tracker over the given state names with the given
// window size in cycles.
func NewPhaseTracker(windowSize int64, states ...string) *PhaseTracker {
	if windowSize <= 0 {
		panic("stats: window size must be positive")
	}
	idx := make(map[string]int, len(states))
	for i, s := range states {
		idx[s] = i
	}
	return &PhaseTracker{
		states:     states,
		index:      idx,
		windowSize: windowSize,
		current:    make([]int64, len(states)),
		total:      make([]int64, len(states)),
		windows:    make([]Window, 0, arenaWindows),
		arena:      make([]int64, arenaWindows*len(states)),
	}
}

// Observe records the state of one cycle. Unknown states panic (modelling
// bug).
func (p *PhaseTracker) Observe(state string) {
	i, ok := p.index[state]
	if !ok {
		panic(fmt.Sprintf("stats: unknown state %q", state))
	}
	p.current[i]++
	p.total[i]++
	p.cycle++
	if p.cycle%p.windowSize == 0 {
		p.roll()
	}
}

func (p *PhaseTracker) roll() {
	ns := len(p.current)
	if len(p.arena) < ns {
		p.arena = make([]int64, arenaWindows*ns)
	}
	counts := p.arena[:ns:ns]
	p.arena = p.arena[ns:]
	copy(counts, p.current)
	p.windows = append(p.windows, Window{
		StartCycle: p.cycle - p.windowSize,
		Cycles:     p.windowSize,
		Counts:     counts,
	})
	for i := range p.current {
		p.current[i] = 0
	}
}

// States returns the tracked state names.
func (p *PhaseTracker) States() []string { return p.states }

// Cycles returns the total observed cycles.
func (p *PhaseTracker) Cycles() int64 { return p.cycle }

// Windows returns all completed windows.
func (p *PhaseTracker) Windows() []Window { return p.windows }

// TotalCount returns the lifetime number of cycles spent in state.
func (p *PhaseTracker) TotalCount(state string) int64 {
	i, ok := p.index[state]
	if !ok {
		return 0
	}
	return p.total[i]
}

// TotalFrac returns the lifetime fraction of cycles spent in state.
func (p *PhaseTracker) TotalFrac(state string) float64 {
	i, ok := p.index[state]
	if !ok || p.cycle == 0 {
		return 0
	}
	return float64(p.total[i]) / float64(p.cycle)
}

// Frac returns the fraction of window w spent in state.
func (w Window) Frac(tracker *PhaseTracker, state string) float64 {
	i, ok := tracker.index[state]
	if !ok || w.Cycles == 0 {
		return 0
	}
	return float64(w.Counts[i]) / float64(w.Cycles)
}

// Table accumulates rows and writes them with aligned columns — the output
// format of the experiment harness.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells beyond the header width are dropped.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// Write renders the table.
func (t *Table) Write(w io.Writer) error {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) error {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
		return err
	}
	if err := line(t.header); err != nil {
		return err
	}
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if err := line(sep); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}

// Normalize scales a slice of values by its first element, the convention of
// the paper's "normalized execution time" figures.
func Normalize(values []float64) []float64 {
	out := make([]float64, len(values))
	if len(values) == 0 || values[0] == 0 {
		return out
	}
	for i, v := range values {
		out[i] = v / values[0]
	}
	return out
}

// ArgMin returns the index of the smallest value (-1 when empty).
func ArgMin(values []float64) int {
	if len(values) == 0 {
		return -1
	}
	best := 0
	for i, v := range values {
		if v < values[best] {
			best = i
		}
	}
	return best
}

// SortedKeys returns the sorted keys of a string-keyed map, for
// deterministic iteration in reports.
func SortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
