package stats

import "mpsocsim/internal/snapshot"

// Checkpoint codecs for the measurement primitives (DESIGN.md §16).

// EncodeState serializes the histogram: the non-zero buckets (index/count
// pairs — latency histograms are sparse) plus the exact running moments.
func (h *Histogram) EncodeState(e *snapshot.Encoder) {
	e.Tag('H')
	nz := 0
	for _, c := range h.counts {
		if c != 0 {
			nz++
		}
	}
	e.U(uint64(nz))
	for b, c := range h.counts {
		if c != 0 {
			e.U(uint64(b))
			e.I(c)
		}
	}
	e.I(h.n)
	e.I(h.sum)
	e.I(h.min)
	e.I(h.max)
}

// DecodeState restores a histogram serialized by EncodeState.
func (h *Histogram) DecodeState(d *snapshot.Decoder) {
	d.Tag('H')
	*h = Histogram{}
	nz := d.N(len(h.counts))
	for i := 0; i < nz; i++ {
		b := d.N(len(h.counts) - 1)
		c := d.I()
		if d.Err() != nil {
			return
		}
		h.counts[b] = c
	}
	h.n = d.I()
	h.sum = d.I()
	h.min = d.I()
	h.max = d.I()
}

// maxTrackerWindows bounds decoded window counts (a 50 ms run at the
// smallest window size stays far below this).
const maxTrackerWindows = 1 << 22

// EncodeState serializes the tracker's observation history: the in-progress
// window, the lifetime totals and every completed window's counts. State
// names and window size are construction parameters, re-derived from the
// spec; a fingerprint of both guards against decoding into a differently
// shaped tracker.
func (p *PhaseTracker) EncodeState(e *snapshot.Encoder) {
	e.Tag('P')
	e.U(uint64(len(p.states)))
	e.I(p.windowSize)
	e.I(p.cycle)
	for _, c := range p.current {
		e.I(c)
	}
	for _, c := range p.total {
		e.I(c)
	}
	e.U(uint64(len(p.windows)))
	for i := range p.windows {
		w := &p.windows[i]
		e.I(w.StartCycle)
		e.I(w.Cycles)
		for _, c := range w.Counts {
			e.I(c)
		}
	}
}

// DecodeState restores a tracker serialized by EncodeState. The receiver
// must have been constructed with the same states and window size.
func (p *PhaseTracker) DecodeState(d *snapshot.Decoder) {
	d.Tag('P')
	ns := d.N(1 << 10)
	ws := d.I()
	if d.Err() != nil {
		return
	}
	if ns != len(p.states) || ws != p.windowSize {
		d.Corrupt("phase tracker shape mismatch: snapshot has %d states / window %d, tracker has %d / %d",
			ns, ws, len(p.states), p.windowSize)
		return
	}
	p.cycle = d.I()
	for i := range p.current {
		p.current[i] = d.I()
	}
	for i := range p.total {
		p.total[i] = d.I()
	}
	nw := d.N(maxTrackerWindows)
	if d.Err() != nil {
		return
	}
	// Rebuild the window list through the arena discipline so post-restore
	// observation keeps the allocation-free roll() path.
	p.windows = p.windows[:0]
	p.arena = make([]int64, arenaWindows*ns)
	for i := 0; i < nw; i++ {
		if len(p.arena) < ns {
			p.arena = make([]int64, arenaWindows*ns)
		}
		counts := p.arena[:ns:ns]
		p.arena = p.arena[ns:]
		w := Window{StartCycle: d.I(), Cycles: d.I(), Counts: counts}
		for j := 0; j < ns; j++ {
			counts[j] = d.I()
		}
		if d.Err() != nil {
			return
		}
		p.windows = append(p.windows, w)
	}
}
