package area

import (
	"strings"
	"testing"

	"mpsocsim/internal/bridge"
	"mpsocsim/internal/lmi"
	"mpsocsim/internal/stbus"
)

func TestGenConvComparableToCrossbarNode(t *testing.T) {
	// The paper's data point: a GenConv bridge doing frequency conversion
	// between 64-bit T3 nodes can be as large as a 5x3 crossbar node at
	// 64 bits. The first-order model should put them within a factor ~3.
	conv := Bridge("genconv", bridge.GenConv(1))
	node := Node(stbus.Config{Type: stbus.Type3, BytesPerBeat: 8}, 5, 3)
	ratio := conv.Gates / node.Gates
	if ratio < 0.3 || ratio > 3.0 {
		t.Fatalf("GenConv/node gate ratio %.2f outside the plausibility band (conv=%.0f node=%.0f)",
			ratio, conv.Gates, node.Gates)
	}
}

func TestLightweightCheaperThanGenConv(t *testing.T) {
	lw := Bridge("lw", bridge.Lightweight(1))
	gc := Bridge("gc", bridge.GenConv(1))
	if lw.Gates >= gc.Gates {
		t.Fatalf("lightweight bridge (%.0f) must be cheaper than GenConv (%.0f)", lw.Gates, gc.Gates)
	}
}

func TestNodeScalesWithPorts(t *testing.T) {
	small := Node(stbus.Config{BytesPerBeat: 8}, 2, 1)
	big := Node(stbus.Config{BytesPerBeat: 8}, 8, 4)
	if big.Gates <= small.Gates {
		t.Fatal("bigger crossbar must cost more")
	}
	wide := Node(stbus.Config{BytesPerBeat: 16}, 2, 1)
	if wide.Gates <= small.Gates {
		t.Fatal("wider datapath must cost more")
	}
}

func TestControllerScalesWithFifosAndLookahead(t *testing.T) {
	base := lmi.DefaultConfig()
	small := Controller(base)
	deep := base
	deep.InputFifoDepth = 16
	deep.LookaheadDepth = 16
	if Controller(deep).Gates <= small.Gates {
		t.Fatal("deeper controller must cost more")
	}
	noOpt := base
	noOpt.OpcodeMerging = false
	if Controller(noOpt).Gates >= small.Gates {
		t.Fatal("merging logic must have a cost")
	}
}

func TestReport(t *testing.T) {
	var sb strings.Builder
	err := Report(&sb, []Estimate{
		Node(stbus.Config{BytesPerBeat: 8}, 5, 3),
		Bridge("genconv", bridge.GenConv(1)),
		Controller(lmi.DefaultConfig()),
	})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"STBus T3 node 5x3", "genconv", "LMI controller", "ratio"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}
