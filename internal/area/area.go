// Package area provides first-order silicon-cost estimates for the
// interconnect components, supporting the paper's cost discussion: "a
// typical GenConv bridge performing frequency conversion between T3 nodes
// at 64 bits can be as large as an STBus node with 5x3 crossbar topology at
// 64 bits" (§3.2). The model counts storage bits (FIFO payload + control)
// and crossbar/mux complexity in gate equivalents; it is a comparison tool
// for architecture exploration, not a synthesis estimate.
package area

import (
	"fmt"
	"io"

	"mpsocsim/internal/bridge"
	"mpsocsim/internal/lmi"
	"mpsocsim/internal/stats"
	"mpsocsim/internal/stbus"
)

// Gate-equivalent cost constants (order-of-magnitude, 90 nm-era relative
// weights; only ratios matter for comparisons).
const (
	// GatesPerBit is the cost of one flip-flop bit of FIFO storage.
	GatesPerBit = 8.0
	// GatesPerMuxLane is the per-data-bit cost of one crossbar lane
	// (mux tree + wiring overhead).
	GatesPerMuxLane = 2.5
	// GatesPerArbiter is the fixed cost of one arbitration point.
	GatesPerArbiter = 400.0
	// GatesCDC is the fixed cost of one clock-domain-crossing
	// synchronizer pair.
	GatesCDC = 600.0
	// reqCtrlBits is the control overhead per queued request (address,
	// opcode, length, labels) beyond payload storage.
	reqCtrlBits = 64
)

// Estimate is a component's first-order cost.
type Estimate struct {
	Name        string
	StorageBits int
	Gates       float64
}

// Node estimates an STBus node with the given port counts.
func Node(cfg stbus.Config, initiators, targets int) Estimate {
	cfg = normalizeNode(cfg)
	dataBits := cfg.BytesPerBeat * 8
	// crossbar lanes: request path (initiators x targets) and response
	// path (targets x initiators), each dataBits wide
	lanes := 2 * initiators * targets * dataBits
	// per-port pipeline registers (one request register per initiator,
	// one response register per target)
	storage := (initiators + targets) * (dataBits + reqCtrlBits)
	// per-target request arbiters and per-initiator response arbiters
	arbiters := initiators + targets
	gates := float64(lanes)*GatesPerMuxLane +
		float64(storage)*GatesPerBit +
		float64(arbiters)*GatesPerArbiter
	return Estimate{
		Name:        fmt.Sprintf("STBus %s node %dx%d @%dbit", cfg.Type, initiators, targets, dataBits),
		StorageBits: storage,
		Gates:       gates,
	}
}

func normalizeNode(cfg stbus.Config) stbus.Config {
	if cfg.BytesPerBeat <= 0 {
		cfg.BytesPerBeat = 8
	}
	if cfg.Type == 0 {
		cfg.Type = stbus.Type3
	}
	return cfg
}

// Bridge estimates a bridge instance from its configuration.
func Bridge(name string, cfg bridge.Config) Estimate {
	srcBits := cfg.SrcBytesPerBeat * 8
	dstBits := cfg.DstBytesPerBeat * 8
	if srcBits <= 0 {
		srcBits = 64
	}
	if dstBits <= 0 {
		dstBits = 64
	}
	wide := srcBits
	if dstBits > wide {
		wide = dstBits
	}
	storage := cfg.ReqDepth*(wide+reqCtrlBits) + // request crossing FIFO
		cfg.RespDepth*(wide+8) + // response crossing FIFO
		cfg.PortReqDepth*(srcBits+reqCtrlBits) +
		cfg.PortRespDepth*(srcBits+8)
	if cfg.Split {
		// reorder/tracking state per outstanding transaction
		storage += cfg.MaxOutstanding * reqCtrlBits
	}
	gates := float64(storage) * GatesPerBit
	if cfg.SyncCycles > 0 {
		gates += 2 * GatesCDC // one synchronizer pair per direction
	}
	if srcBits != dstBits {
		gates += float64(wide) * GatesPerMuxLane * 4 // width-conversion datapath
	}
	gates += GatesPerArbiter // target-side acceptance control
	return Estimate{Name: name, StorageBits: storage, Gates: gates}
}

// Controller estimates the LMI memory controller.
func Controller(cfg lmi.Config) Estimate {
	dataBits := 64
	storage := cfg.InputFifoDepth*(dataBits+reqCtrlBits) +
		cfg.OutputFifoDepth*(dataBits+8)
	gates := float64(storage)*GatesPerBit +
		2*GatesPerArbiter + // command scheduler + refresh engine
		float64(cfg.LookaheadDepth)*reqCtrlBits*GatesPerMuxLane // comparator window
	if cfg.OpcodeMerging {
		gates += 1500 // merge detection logic
	}
	return Estimate{Name: "LMI controller", StorageBits: storage, Gates: gates}
}

// Report renders a set of estimates with a ratio column against the first
// entry.
func Report(w io.Writer, estimates []Estimate) error {
	tbl := stats.NewTable("component", "storage bits", "gate est.", "ratio")
	var base float64
	for i, e := range estimates {
		if i == 0 {
			base = e.Gates
		}
		ratio := 0.0
		if base > 0 {
			ratio = e.Gates / base
		}
		tbl.AddRow(e.Name, fmt.Sprint(e.StorageBits),
			fmt.Sprintf("%.0f", e.Gates), fmt.Sprintf("%.2f", ratio))
	}
	return tbl.Write(w)
}
