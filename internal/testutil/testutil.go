// Package testutil provides small scripted components shared by the test
// suites of the fabric, bridge, memory-controller and platform packages: a
// scripted initiator that replays a fixed request sequence, and a probe
// target that records arrivals and answers instantly.
package testutil

import (
	"mpsocsim/internal/bus"
	"mpsocsim/internal/sim"
)

// Scripted is an initiator that pushes a fixed request sequence as fast as
// its port accepts and records every response beat and completion cycle.
type Scripted struct {
	Port      *bus.InitiatorPort
	Clk       *sim.Clock
	Script    []*bus.Request
	Beats     []bus.Beat
	BeatCycle []int64
	Completed map[uint64]int64
	Issued    map[uint64]int64
	next      int
}

// NewScripted builds a scripted initiator with default port depths.
func NewScripted(name string, clk *sim.Clock, script []*bus.Request) *Scripted {
	return &Scripted{
		Port:      bus.NewInitiatorPort(name, 4, 8),
		Clk:       clk,
		Script:    script,
		Completed: map[uint64]int64{},
		Issued:    map[uint64]int64{},
	}
}

// Eval pushes the next scripted request if possible and drains responses.
func (s *Scripted) Eval() {
	if s.next < len(s.Script) && s.Port.Req.CanPush() {
		r := s.Script[s.next]
		r.IssueCycle = s.Clk.Cycles()
		s.Issued[r.ID] = s.Clk.Cycles()
		s.Port.Req.Push(r)
		s.next++
	}
	for s.Port.Resp.CanPop() {
		b := s.Port.Resp.Pop()
		s.Beats = append(s.Beats, b)
		s.BeatCycle = append(s.BeatCycle, s.Clk.Cycles())
		if b.Last {
			s.Completed[b.Req.ID] = s.Clk.Cycles()
		}
	}
}

// Update commits the port FIFOs.
func (s *Scripted) Update() { s.Port.Update() }

// ExpectedCompletions returns the number of completions the script will
// produce (posted writes never complete).
func (s *Scripted) ExpectedCompletions() int {
	n := 0
	for _, r := range s.Script {
		if !(r.Op == bus.OpWrite && r.Posted) {
			n++
		}
	}
	return n
}

// Done reports whether every expected completion has arrived.
func (s *Scripted) Done() bool { return len(s.Completed) >= s.ExpectedCompletions() }

// Probe is a target that records request arrival order and cycle and
// responds with all beats immediately (zero wait states).
type Probe struct {
	Port     *bus.TargetPort
	Clk      *sim.Clock
	Arrivals []*bus.Request
	ArriveAt []int64

	cur     *bus.Request
	beatIdx int
}

// NewProbe builds a probe target with the given input FIFO depth.
func NewProbe(name string, clk *sim.Clock, reqDepth int) *Probe {
	return &Probe{Port: bus.NewTargetPort(name, reqDepth, 8), Clk: clk}
}

// Eval records one arrival per cycle and streams response beats.
func (p *Probe) Eval() {
	if p.cur == nil && p.Port.Req.CanPop() {
		p.cur = p.Port.Req.Pop()
		p.Arrivals = append(p.Arrivals, p.cur)
		p.ArriveAt = append(p.ArriveAt, p.Clk.Cycles())
		p.beatIdx = 0
		if p.cur.Op == bus.OpWrite && p.cur.Posted {
			p.cur = nil
		}
	}
	if p.cur == nil || !p.Port.Resp.CanPush() {
		return
	}
	if p.cur.Op == bus.OpWrite {
		p.Port.Resp.Push(bus.Beat{Req: p.cur, Idx: 0, Last: true})
		p.cur = nil
		return
	}
	last := p.beatIdx == p.cur.Beats-1
	p.Port.Resp.Push(bus.Beat{Req: p.cur, Idx: p.beatIdx, Last: last})
	p.beatIdx++
	if last {
		p.cur = nil
	}
}

// Update commits the port FIFOs.
func (p *Probe) Update() { p.Port.Update() }

// Read builds a read request.
func Read(id, addr uint64, beats, bytesPerBeat int) *bus.Request {
	return &bus.Request{ID: id, Op: bus.OpRead, Addr: addr, Beats: beats, BytesPerBeat: bytesPerBeat}
}

// Write builds a write request.
func Write(id, addr uint64, beats, bytesPerBeat int, posted bool) *bus.Request {
	return &bus.Request{ID: id, Op: bus.OpWrite, Addr: addr, Beats: beats, BytesPerBeat: bytesPerBeat, Posted: posted}
}
