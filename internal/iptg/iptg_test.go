package iptg

import (
	"testing"
	"testing/quick"

	"mpsocsim/internal/bus"
	"mpsocsim/internal/mem"
	"mpsocsim/internal/sim"
	"mpsocsim/internal/stbus"
)

func onePhase(count int64, gap float64, bmin, bmax int, readFrac float64) []Phase {
	return []Phase{{Count: count, GapMean: gap, BurstMin: bmin, BurstMax: bmax, ReadFrac: readFrac}}
}

// rig wires a generator to a memory through an STBus node.
type rig struct {
	k   *sim.Kernel
	clk *sim.Clock
	g   *Generator
	m   *mem.Memory
}

func newRig(t *testing.T, cfg Config) *rig {
	t.Helper()
	k := sim.NewKernel()
	clk := k.NewClock("clk", 250)
	ids := &bus.IDSource{}
	g, err := New(cfg, clk, ids, 7)
	if err != nil {
		t.Fatal(err)
	}
	node := stbus.NewNode("n", stbus.DefaultConfig(), bus.Single(0))
	m := mem.New("mem", mem.Config{WaitStates: 1, ReqDepth: 2, RespDepth: 4})
	node.AttachInitiator(g.Port())
	node.AttachTarget(m.Port())
	clk.Register(g)
	clk.Register(node)
	clk.Register(m)
	return &rig{k: k, clk: clk, g: g, m: m}
}

func (r *rig) run(t *testing.T) {
	t.Helper()
	if !r.k.RunWhile(func() bool { return !r.g.Done() }, 1e10) {
		t.Fatalf("timeout: issued=%d completed=%d", r.g.Issued(), r.g.Completed())
	}
}

func TestSingleAgentWorkloadCompletes(t *testing.T) {
	cfg := Config{
		Name: "ip0",
		Agents: []AgentConfig{{
			Name:   "dma",
			Phases: onePhase(50, 2, 4, 8, 0.7),
		}},
		Seed: 1,
	}
	r := newRig(t, cfg)
	r.run(t)
	s := r.g.Stats()[0]
	if s.Issued != 50 || s.Completed != 50 {
		t.Fatalf("issued/completed = %d/%d, want 50/50", s.Issued, s.Completed)
	}
	if s.Reads+s.Writes != 50 {
		t.Fatalf("reads+writes = %d", s.Reads+s.Writes)
	}
	if s.Reads == 0 || s.Writes == 0 {
		t.Fatalf("mix not respected: r=%d w=%d", s.Reads, s.Writes)
	}
	if s.MeanLatency <= 0 {
		t.Fatal("latency not recorded")
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	mk := func() int64 {
		cfg := Config{
			Name:   "ip0",
			Agents: []AgentConfig{{Name: "a", Phases: onePhase(40, 3, 2, 8, 0.5)}},
			Seed:   42,
		}
		r := newRig(t, cfg)
		r.run(t)
		return r.clk.Cycles()
	}
	if a, b := mk(), mk(); a != b {
		t.Fatalf("same seed gave different execution times: %d vs %d", a, b)
	}
}

func TestSeedChangesSchedule(t *testing.T) {
	mk := func(seed uint64) int64 {
		cfg := Config{
			Name:   "ip0",
			Agents: []AgentConfig{{Name: "a", Phases: onePhase(40, 5, 2, 8, 0.5)}},
			Seed:   seed,
		}
		r := newRig(t, cfg)
		r.run(t)
		return r.clk.Cycles()
	}
	if mk(1) == mk(999) {
		t.Log("different seeds produced identical times (possible but unlikely)")
	}
}

func TestInterAgentSync(t *testing.T) {
	cfg := Config{
		Name: "pipe",
		Agents: []AgentConfig{
			{Name: "producer", Phases: onePhase(20, 1, 2, 2, 0)},
			{Name: "consumer", Phases: onePhase(10, 1, 2, 2, 1), After: "producer", AfterCount: 15},
		},
		Seed: 3,
	}
	k := sim.NewKernel()
	clk := k.NewClock("clk", 250)
	g := MustNew(cfg, clk, &bus.IDSource{}, 0)
	node := stbus.NewNode("n", stbus.DefaultConfig(), bus.Single(0))
	m := mem.New("mem", mem.DefaultConfig())
	node.AttachInitiator(g.Port())
	node.AttachTarget(m.Port())
	clk.Register(g)
	clk.Register(node)
	clk.Register(m)

	var consumerStart int64 = -1
	var producerReached int64 = -1
	clk.Register(&sim.ClockedFunc{OnEval: func() {
		st := g.Stats()
		if producerReached < 0 && st[0].Completed >= 15 {
			producerReached = clk.Cycles()
		}
		if consumerStart < 0 && st[1].Issued > 0 {
			consumerStart = clk.Cycles()
		}
	}})
	if !k.RunWhile(func() bool { return !g.Done() }, 1e10) {
		t.Fatal("timeout")
	}
	if consumerStart < producerReached {
		t.Fatalf("consumer started at %d before producer reached threshold at %d",
			consumerStart, producerReached)
	}
}

func TestPhasesAdvance(t *testing.T) {
	cfg := Config{
		Name: "ip",
		Agents: []AgentConfig{{
			Name: "a",
			Phases: []Phase{
				{Count: 10, GapMean: 0, BurstMin: 2, BurstMax: 2, ReadFrac: 1},
				{Count: 10, GapMean: 20, BurstMin: 2, BurstMax: 2, ReadFrac: 1},
			},
		}},
		Seed: 5,
	}
	r := newRig(t, cfg)
	r.run(t)
	s := r.g.Stats()[0]
	if s.Issued != 20 {
		t.Fatalf("issued = %d, want 20", s.Issued)
	}
	if s.CurrentPhase != 2 {
		t.Fatalf("final phase = %d, want 2", s.CurrentPhase)
	}
}

func TestMessageLabelling(t *testing.T) {
	cfg := Config{
		Name: "ip",
		Agents: []AgentConfig{{
			Name:   "a",
			Phases: onePhase(9, 0, 1, 1, 1),
			MsgLen: 3,
		}},
		Seed: 7,
	}
	k := sim.NewKernel()
	clk := k.NewClock("clk", 250)
	g := MustNew(cfg, clk, &bus.IDSource{}, 1)
	// capture requests directly from the port
	var reqs []*bus.Request
	clk.Register(g)
	clk.Register(&sim.ClockedFunc{OnEval: func() {
		for g.Port().Req.CanPop() {
			r := g.Port().Req.Pop()
			reqs = append(reqs, r)
			// answer immediately so the generator keeps going
			g.Port().Resp.Push(bus.Beat{Req: r, Idx: r.Beats - 1, Last: true})
		}
	}})
	k.RunWhile(func() bool { return !g.Done() }, 1e9)
	if len(reqs) != 9 {
		t.Fatalf("captured %d requests", len(reqs))
	}
	for i, r := range reqs {
		wantEnd := i%3 == 2
		if r.MsgEnd != wantEnd {
			t.Fatalf("req %d MsgEnd=%v, want %v", i, r.MsgEnd, wantEnd)
		}
	}
	if reqs[0].MsgSeq == reqs[3].MsgSeq {
		t.Fatal("distinct messages must have distinct MsgSeq")
	}
	if reqs[0].MsgSeq != reqs[1].MsgSeq {
		t.Fatal("same message must share MsgSeq")
	}
}

func TestAddressPatterns(t *testing.T) {
	capture := func(p AddrPattern, stride uint64) []uint64 {
		cfg := Config{
			Name: "ip",
			Agents: []AgentConfig{{
				Name:       "a",
				Phases:     onePhase(16, 0, 2, 2, 1),
				Pattern:    p,
				Stride:     stride,
				RegionBase: 0x1000,
				RegionSize: 0x1000,
			}},
			Seed: 11,
		}
		k := sim.NewKernel()
		clk := k.NewClock("clk", 250)
		g := MustNew(cfg, clk, &bus.IDSource{}, 1)
		var addrs []uint64
		clk.Register(g)
		clk.Register(&sim.ClockedFunc{OnEval: func() {
			for g.Port().Req.CanPop() {
				r := g.Port().Req.Pop()
				addrs = append(addrs, r.Addr)
				g.Port().Resp.Push(bus.Beat{Req: r, Idx: r.Beats - 1, Last: true})
			}
		}})
		k.RunWhile(func() bool { return !g.Done() }, 1e9)
		return addrs
	}

	seq := capture(Sequential, 0)
	for i := 1; i < 8; i++ {
		if seq[i] != seq[i-1]+16 { // 2 beats x 8 bytes
			t.Fatalf("sequential addresses not contiguous: %#x -> %#x", seq[i-1], seq[i])
		}
	}
	str := capture(Strided, 0x100)
	for i := 1; i < 8; i++ {
		if str[i] != str[i-1]+0x100 {
			t.Fatalf("strided addresses wrong: %#x -> %#x", str[i-1], str[i])
		}
	}
	rnd := capture(Random, 0)
	for _, a := range rnd {
		if a < 0x1000 || a >= 0x2000 {
			t.Fatalf("random address %#x out of region", a)
		}
	}
}

func TestPostedWritesCompleteAtIssue(t *testing.T) {
	cfg := Config{
		Name: "ip",
		Agents: []AgentConfig{{
			Name:         "w",
			Phases:       onePhase(10, 0, 2, 2, 0),
			PostedWrites: true,
		}},
		Seed: 13,
	}
	r := newRig(t, cfg)
	r.run(t)
	s := r.g.Stats()[0]
	if s.Completed != 10 {
		t.Fatalf("completed = %d", s.Completed)
	}
}

func TestConfigValidation(t *testing.T) {
	clk := sim.NewKernel().NewClock("c", 100)
	cases := []Config{
		{Name: "noagents"},
		{Name: "nophase", Agents: []AgentConfig{{Name: "a"}}},
		{Name: "zerocount", Agents: []AgentConfig{{Name: "a", Phases: []Phase{{Count: 0}}}}},
		{Name: "badfrac", Agents: []AgentConfig{{Name: "a", Phases: []Phase{{Count: 1, ReadFrac: 1.5}}}}},
		{Name: "dup", Agents: []AgentConfig{
			{Name: "a", Phases: onePhase(1, 0, 1, 1, 1)},
			{Name: "a", Phases: onePhase(1, 0, 1, 1, 1)},
		}},
		{Name: "badsync", Agents: []AgentConfig{
			{Name: "a", Phases: onePhase(1, 0, 1, 1, 1), After: "ghost"},
		}},
	}
	for _, cfg := range cases {
		if _, err := New(cfg, clk, &bus.IDSource{}, 0); err == nil {
			t.Errorf("config %q should be rejected", cfg.Name)
		}
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNew(Config{Name: "bad"}, sim.NewKernel().NewClock("c", 100), &bus.IDSource{}, 0)
}

func TestPatternString(t *testing.T) {
	if Sequential.String() != "seq" || Strided.String() != "stride" || Random.String() != "rand" {
		t.Fatal("pattern names wrong")
	}
	if AddrPattern(9).String() == "" {
		t.Fatal("unknown pattern string empty")
	}
}

// Property: for any agent configuration the generator issues exactly the
// configured number of transactions and all complete.
func TestPropertyWorkloadConservation(t *testing.T) {
	prop := func(seed uint64, count8, out8, gap8 uint8, posted bool) bool {
		count := int64(count8%30) + 1
		cfg := Config{
			Name: "p",
			Agents: []AgentConfig{{
				Name:         "a",
				Phases:       onePhase(count, float64(gap8%8), 1, 8, 0.5),
				Outstanding:  int(out8%4) + 1,
				PostedWrites: posted,
			}},
			Seed: seed,
		}
		r := newRig(t, cfg)
		if !r.k.RunWhile(func() bool { return !r.g.Done() }, 1e10) {
			return false
		}
		s := r.g.Stats()[0]
		return s.Issued == count && s.Completed == count
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
