package iptg

import (
	"sort"

	"mpsocsim/internal/attr"
	"mpsocsim/internal/bus"
	"mpsocsim/internal/snapshot"
)

// EncodeState serializes the generator's mutable state (DESIGN.md §16): the
// owned initiator port, the PRNG, per-agent progress, and the in-flight
// request index (sorted by request ID so the stream is deterministic).
// Agent configurations are spec-derived; the agent count guards shape.
func (g *Generator) EncodeState(e *snapshot.Encoder) {
	e.Tag('T')
	bus.EncodeInitiatorPortState(e, g.port)
	e.U(g.rng.State())
	e.U(uint64(len(g.agents)))
	for _, a := range g.agents {
		e.I(int64(a.phase))
		e.I(a.inPhase)
		e.I(a.issued)
		e.I(a.completed)
		e.I(int64(a.inFlight))
		e.I(a.gapLeft)
		e.U(a.cursor)
		e.I(int64(a.msgLeft))
		e.U(a.msgSeq)
		a.latency.EncodeState(e)
		e.I(a.bytes)
		e.I(a.readsIssued)
		e.I(a.writesIssued)
	}
	ids := make([]uint64, 0, len(g.byReqID))
	for id := range g.byReqID {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	e.U(uint64(len(ids)))
	for _, id := range ids {
		e.U(id)
		a := g.byReqID[id]
		idx := -1
		for i := range g.agents {
			if g.agents[i] == a {
				idx = i
				break
			}
		}
		e.I(int64(idx))
	}
	e.I(int64(g.rr))
	e.I(g.issuedTotal)
	e.I(g.completedTotal)
}

// DecodeState restores a generator serialized by EncodeState.
func (g *Generator) DecodeState(d *snapshot.Decoder, col *attr.Collector) {
	d.Tag('T')
	bus.DecodeInitiatorPortState(d, g.port, col)
	g.rng.SetState(d.U())
	na := d.N(1 << 10)
	if d.Err() != nil {
		return
	}
	if na != len(g.agents) {
		d.Corrupt("iptg %q agent count %d does not match platform's %d", g.cfg.Name, na, len(g.agents))
		return
	}
	for _, a := range g.agents {
		a.phase = int(d.I())
		a.inPhase = d.I()
		a.issued = d.I()
		a.completed = d.I()
		a.inFlight = int(d.I())
		a.gapLeft = d.I()
		a.cursor = d.U()
		a.msgLeft = int(d.I())
		a.msgSeq = d.U()
		a.latency.DecodeState(d)
		a.bytes = d.I()
		a.readsIssued = d.I()
		a.writesIssued = d.I()
	}
	for id := range g.byReqID {
		delete(g.byReqID, id)
	}
	nid := d.N(1 << 22)
	for i := 0; i < nid; i++ {
		id := d.U()
		idx := d.I()
		if d.Err() != nil {
			return
		}
		if idx < 0 || idx >= int64(len(g.agents)) {
			d.Corrupt("iptg %q in-flight entry maps to agent %d of %d", g.cfg.Name, idx, len(g.agents))
			return
		}
		g.byReqID[id] = g.agents[idx]
	}
	g.rr = int(d.I())
	g.issuedTotal = d.I()
	g.completedTotal = d.I()
}
