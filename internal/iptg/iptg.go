// Package iptg reimplements ST's IP Traffic Generator (paper §3.1): a
// configurable block that reproduces the communication behaviour of a
// real-life IP core. An IPTG hosts a number of agents — internal
// sub-processes with their own burst statistics, buffering and pipelining
// capability — that share the IP's single bus interface. Inter-agent
// synchronization points emulate dependencies (e.g. a decoder that consumes
// what the decryptor produced), and per-agent phase lists reproduce
// application regimes of different traffic intensity, which Fig.6 of the
// paper relies on.
package iptg

import (
	"fmt"

	"mpsocsim/internal/attr"
	"mpsocsim/internal/bus"
	"mpsocsim/internal/metrics"
	"mpsocsim/internal/sim"
	"mpsocsim/internal/stats"
)

// AddrPattern selects the agent's address sequence.
type AddrPattern int

// Address patterns.
const (
	// Sequential walks the region burst by burst and wraps — DMA-style
	// traffic that row-hits aggressively in SDRAM.
	Sequential AddrPattern = iota
	// Strided jumps by Stride bytes per transaction.
	Strided
	// Random scatters uniformly over the region.
	Random
)

// String names the pattern.
func (p AddrPattern) String() string {
	switch p {
	case Sequential:
		return "seq"
	case Strided:
		return "stride"
	case Random:
		return "rand"
	}
	return fmt.Sprintf("pattern(%d)", int(p))
}

// Phase describes one traffic regime of an agent.
type Phase struct {
	// Count is the number of transactions issued in this phase.
	Count int64
	// GapMean is the mean idle gap (cycles) between transactions;
	// gaps are geometrically distributed (bursty).
	GapMean float64
	// BurstMin/BurstMax bound the uniformly drawn burst length in beats.
	BurstMin, BurstMax int
	// ReadFrac is the probability a transaction is a read.
	ReadFrac float64
}

// AgentConfig parameterizes one sub-process of the IP.
type AgentConfig struct {
	Name string
	// Phases in issue order; at least one is required.
	Phases []Phase
	// Outstanding is the agent's transaction pipelining capability.
	Outstanding int
	// RegionBase/RegionSize is the address window the agent touches.
	RegionBase, RegionSize uint64
	Pattern                AddrPattern
	// Stride for the Strided pattern, in bytes (defaults to burst size).
	Stride uint64
	// MsgLen groups this many consecutive transactions into one STBus
	// message (memory-controller-friendly traffic); 0 or 1 disables
	// messaging.
	MsgLen int
	// Prio is the request priority label.
	Prio int
	// PostedWrites marks writes as posted where the fabric supports it.
	PostedWrites bool
	// After names another agent of the same IPTG that must have
	// completed AfterCount transactions before this agent starts
	// (inter-agent synchronization point).
	After      string
	AfterCount int64
}

// Config parameterizes an IPTG instance.
type Config struct {
	Name   string
	Agents []AgentConfig
	// BytesPerBeat is the IP's native data width.
	BytesPerBeat int
	// PortReqDepth/PortRespDepth size the bus interface FIFOs.
	PortReqDepth  int
	PortRespDepth int
	// Seed makes the generator deterministic.
	Seed uint64
}

func (c *Config) normalize() error {
	if len(c.Agents) == 0 {
		return fmt.Errorf("iptg %q: no agents", c.Name)
	}
	if c.BytesPerBeat <= 0 {
		c.BytesPerBeat = 8
	}
	if c.PortReqDepth <= 0 {
		c.PortReqDepth = 4
	}
	if c.PortRespDepth <= 0 {
		c.PortRespDepth = 8
	}
	names := map[string]bool{}
	for i := range c.Agents {
		a := &c.Agents[i]
		if a.Name == "" {
			a.Name = fmt.Sprintf("agent%d", i)
		}
		if names[a.Name] {
			return fmt.Errorf("iptg %q: duplicate agent %q", c.Name, a.Name)
		}
		names[a.Name] = true
		if len(a.Phases) == 0 {
			return fmt.Errorf("iptg %q agent %q: no phases", c.Name, a.Name)
		}
		for j := range a.Phases {
			p := &a.Phases[j]
			if p.Count <= 0 {
				return fmt.Errorf("iptg %q agent %q phase %d: non-positive count", c.Name, a.Name, j)
			}
			if p.BurstMin <= 0 {
				p.BurstMin = 1
			}
			if p.BurstMax < p.BurstMin {
				p.BurstMax = p.BurstMin
			}
			if p.ReadFrac < 0 || p.ReadFrac > 1 {
				return fmt.Errorf("iptg %q agent %q phase %d: read fraction %v out of [0,1]", c.Name, a.Name, j, p.ReadFrac)
			}
		}
		if a.Outstanding <= 0 {
			a.Outstanding = 1
		}
		if a.RegionSize == 0 {
			a.RegionSize = 1 << 20
		}
	}
	for _, a := range c.Agents {
		if a.After != "" && !names[a.After] {
			return fmt.Errorf("iptg %q agent %q: unknown sync target %q", c.Name, a.Name, a.After)
		}
	}
	return nil
}

// agent is the runtime state of one sub-process.
type agent struct {
	cfg AgentConfig

	phase     int
	inPhase   int64 // transactions issued in the current phase
	issued    int64
	completed int64
	inFlight  int
	gapLeft   int64
	cursor    uint64
	msgLeft   int
	msgSeq    uint64

	latency      stats.Histogram
	bytes        int64
	readsIssued  int64
	writesIssued int64
}

func (a *agent) totalCount() int64 {
	var n int64
	for _, p := range a.cfg.Phases {
		n += p.Count
	}
	return n
}

func (a *agent) done() bool { return a.issued >= a.totalCount() && a.inFlight == 0 }

func (a *agent) currentPhase() *Phase {
	if a.phase >= len(a.cfg.Phases) {
		return nil
	}
	return &a.cfg.Phases[a.phase]
}

// Generator is the IPTG component: a sim.Clocked initiator owning its port.
type Generator struct {
	cfg    Config
	port   *bus.InitiatorPort
	clk    *sim.Clock
	rng    *sim.Rand
	ids    *bus.IDSource
	origin int

	agents  []*agent
	byName  map[string]*agent
	byReqID map[uint64]*agent
	rr      int

	// pool recycles this generator's requests (nil outside platform
	// builds): tracked transactions return on their final response beat;
	// posted writes are reclaimed by the component that consumes them.
	pool *bus.RequestPool

	// attrCol, when set, closes each tracked transaction's attribution
	// record at final-beat consumption (see UseAttribution).
	attrCol *attr.Collector

	issuedTotal    int64
	completedTotal int64
}

// New builds a generator. The IDSource must be shared platform-wide so
// request IDs stay unique across bridges; origin identifies this IP in
// end-to-end statistics.
func New(cfg Config, clk *sim.Clock, ids *bus.IDSource, origin int) (*Generator, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	g := &Generator{
		cfg:     cfg,
		port:    bus.NewInitiatorPort(cfg.Name, cfg.PortReqDepth, cfg.PortRespDepth),
		clk:     clk,
		rng:     sim.NewRand(cfg.Seed ^ 0x5eed),
		ids:     ids,
		origin:  origin,
		byName:  map[string]*agent{},
		byReqID: map[uint64]*agent{},
	}
	for _, ac := range cfg.Agents {
		a := &agent{cfg: ac, cursor: ac.RegionBase}
		g.agents = append(g.agents, a)
		g.byName[ac.Name] = a
	}
	return g, nil
}

// MustNew is New that panics on config errors, for static platform tables.
func MustNew(cfg Config, clk *sim.Clock, ids *bus.IDSource, origin int) *Generator {
	g, err := New(cfg, clk, ids, origin)
	if err != nil {
		panic(err)
	}
	return g
}

// UseRequestPool makes the generator mint requests from (and return them
// to) the given pool. Call before simulation starts.
func (g *Generator) UseRequestPool(p *bus.RequestPool) { g.pool = p }

// UseAttribution makes the generator finish each tracked transaction's
// latency-attribution record when it consumes the final response beat
// (posted writes finish at the consuming memory instead). Call before
// simulation starts.
func (g *Generator) UseAttribution(col *attr.Collector) { g.attrCol = col }

// Port returns the initiator port to attach to a fabric.
func (g *Generator) Port() *bus.InitiatorPort { return g.port }

// Name returns the IP name.
func (g *Generator) Name() string { return g.cfg.Name }

// Origin returns the platform-wide initiator identity.
func (g *Generator) Origin() int { return g.origin }

// Done reports whether every agent has issued and completed its workload.
func (g *Generator) Done() bool {
	for _, a := range g.agents {
		if !a.done() {
			return false
		}
	}
	return true
}

// Unfinished returns the transactions not yet completed: those still to be
// issued plus those in flight. It hits zero exactly when Done flips true —
// the sharded run coordinator uses it to decide how long parallel windows
// are provably safe (the run cannot drain inside a window while Unfinished
// exceeds the per-window completion bound).
func (g *Generator) Unfinished() int64 {
	var n int64
	for _, a := range g.agents {
		if left := a.totalCount() - a.issued; left > 0 {
			n += left
		}
		n += int64(a.inFlight)
	}
	return n
}

// MaxConcurrent returns an upper bound on this generator's simultaneously
// in-flight transactions (the sum of the agents' outstanding windows).
func (g *Generator) MaxConcurrent() int64 {
	var n int64
	for _, a := range g.agents {
		n += int64(a.cfg.Outstanding)
	}
	return n
}

// Eval collects responses and issues at most one new transaction per cycle.
func (g *Generator) Eval() {
	g.collect()
	g.tickGaps()
	g.issue()
}

// Update commits the port FIFOs.
func (g *Generator) Update() { g.port.Update() }

func (g *Generator) collect() {
	for g.port.Resp.CanPop() {
		beat := g.port.Resp.Pop()
		if !beat.Last {
			continue
		}
		a := g.byReqID[beat.Req.ID]
		if a == nil {
			continue
		}
		delete(g.byReqID, beat.Req.ID)
		a.inFlight--
		a.completed++
		g.completedTotal++
		a.latency.Add(g.clk.Cycles() - beat.Req.IssueCycle)
		if pr := g.port.Probe; pr != nil {
			pr.RequestCompleted(beat.Req, g.clk.Cycles())
		}
		if rec := beat.Req.Attr; rec != nil && g.attrCol != nil {
			g.attrCol.Finish(rec, g.clk.NowPS())
		}
		// The transaction was tracked, so this request is ours and this
		// beat is its final reference: recycle it.
		g.pool.Put(beat.Req)
	}
}

func (g *Generator) tickGaps() {
	for _, a := range g.agents {
		if a.gapLeft > 0 {
			a.gapLeft--
		}
	}
}

// ready reports whether the agent can issue this cycle.
func (g *Generator) ready(a *agent) bool {
	ph := a.currentPhase()
	if ph == nil {
		return false
	}
	if a.gapLeft > 0 || a.inFlight >= a.cfg.Outstanding {
		return false
	}
	if a.cfg.After != "" {
		dep := g.byName[a.cfg.After]
		if dep.completed < a.cfg.AfterCount {
			return false
		}
	}
	return true
}

func (g *Generator) issue() {
	if !g.port.Req.CanPush() {
		return
	}
	n := len(g.agents)
	for k := 0; k < n; k++ {
		a := g.agents[(g.rr+k)%n]
		if !g.ready(a) {
			continue
		}
		g.rr = (g.rr + k + 1) % n
		g.issueFrom(a)
		return
	}
}

func (g *Generator) issueFrom(a *agent) {
	ph := a.currentPhase()
	beats := g.rng.Range(ph.BurstMin, ph.BurstMax)
	isRead := g.rng.Bool(ph.ReadFrac)
	req := g.pool.Get()
	*req = bus.Request{
		ID:           g.ids.Next(),
		Origin:       g.origin,
		Addr:         g.nextAddr(a, beats),
		Beats:        beats,
		BytesPerBeat: g.cfg.BytesPerBeat,
		Prio:         a.cfg.Prio,
		IssueCycle:   g.clk.Cycles(),
		IssuePS:      g.clk.NowPS(),
		MsgEnd:       true,
	}
	if !isRead {
		req.Op = bus.OpWrite
		req.Posted = a.cfg.PostedWrites
		a.writesIssued++
	} else {
		a.readsIssued++
	}
	if a.cfg.MsgLen > 1 {
		if a.msgLeft == 0 {
			a.msgLeft = a.cfg.MsgLen
			a.msgSeq++
		}
		req.MsgSeq = uint64(g.origin)<<32 | a.msgSeq
		a.msgLeft--
		req.MsgEnd = a.msgLeft == 0
	}
	g.port.Req.Push(req)
	if pr := g.port.Probe; pr != nil {
		pr.RequestIssued(req)
	}
	a.issued++
	a.inPhase++
	g.issuedTotal++
	a.bytes += int64(req.Bytes())
	if req.Op == bus.OpRead || !req.Posted {
		a.inFlight++
		g.byReqID[req.ID] = a
	} else {
		a.completed++ // posted writes complete at issue
		g.completedTotal++
	}
	a.gapLeft = int64(g.rng.Geometric(ph.GapMean))
	if a.inPhase >= ph.Count {
		a.phase++
		a.inPhase = 0
	}
}

func (g *Generator) nextAddr(a *agent, beats int) uint64 {
	size := a.cfg.RegionSize
	burstBytes := uint64(beats * g.cfg.BytesPerBeat)
	var addr uint64
	switch a.cfg.Pattern {
	case Sequential:
		addr = a.cursor
		a.cursor += burstBytes
		if a.cursor >= a.cfg.RegionBase+size {
			a.cursor = a.cfg.RegionBase
		}
	case Strided:
		addr = a.cursor
		stride := a.cfg.Stride
		if stride == 0 {
			stride = burstBytes
		}
		a.cursor += stride
		if a.cursor >= a.cfg.RegionBase+size {
			a.cursor = a.cfg.RegionBase + (a.cursor-a.cfg.RegionBase)%size
		}
	case Random:
		span := size / burstBytes
		if span == 0 {
			span = 1
		}
		addr = a.cfg.RegionBase + (uint64(g.rng.Intn(int(span))))*burstBytes
	}
	return addr
}

// AgentStats reports one agent's activity.
type AgentStats struct {
	Name        string
	Issued      int64
	Completed   int64
	Reads       int64
	Writes      int64
	Bytes       int64
	MeanLatency float64
	MaxLatency  int64
	// P50Latency/P90Latency are bucketed upper bounds on the latency
	// quantiles (see stats.Histogram.Quantile).
	P50Latency   int64
	P90Latency   int64
	CurrentPhase int
}

// Stats returns per-agent statistics, in configuration order.
func (g *Generator) Stats() []AgentStats {
	out := make([]AgentStats, 0, len(g.agents))
	for _, a := range g.agents {
		out = append(out, AgentStats{
			Name:         a.cfg.Name,
			Issued:       a.issued,
			Completed:    a.completed,
			Reads:        a.readsIssued,
			Writes:       a.writesIssued,
			Bytes:        a.bytes,
			MeanLatency:  a.latency.Mean(),
			MaxLatency:   a.latency.Max(),
			P50Latency:   a.latency.Quantile(0.5),
			P90Latency:   a.latency.Quantile(0.9),
			CurrentPhase: a.phase,
		})
	}
	return out
}

// RegisterMetrics registers the generator's telemetry under "ip.<name>.*" on
// the given clock domain: IP-level issue/complete counters and a request-FIFO
// depth gauge, plus per-agent counters and the per-agent completion-latency
// histogram under "ip.<name>.<agent>.*". Func-backed: the issue path is
// untouched.
func (g *Generator) RegisterMetrics(m *metrics.Registry, clock string) {
	p := "ip." + g.cfg.Name + "."
	m.CounterFunc(p+"issued", func() int64 { return g.issuedTotal })
	m.CounterFunc(p+"completed", func() int64 { return g.completedTotal })
	m.GaugeFunc(p+"req_depth", clock, func() int64 { return int64(g.port.Req.Len()) })
	for _, a := range g.agents {
		a := a
		ap := p + a.cfg.Name + "."
		m.CounterFunc(ap+"issued", func() int64 { return a.issued })
		m.CounterFunc(ap+"completed", func() int64 { return a.completed })
		m.CounterFunc(ap+"bytes", func() int64 { return a.bytes })
		m.Histogram(ap+"latency", &a.latency)
	}
}

// Issued returns the total transactions issued by all agents.
func (g *Generator) Issued() int64 { return g.issuedTotal }

// Completed returns the total completed transactions.
func (g *Generator) Completed() int64 { return g.completedTotal }
