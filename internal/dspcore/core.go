package dspcore

import (
	"fmt"

	"mpsocsim/internal/attr"
	"mpsocsim/internal/bus"
	"mpsocsim/internal/metrics"
	"mpsocsim/internal/sim"
)

// Config parameterizes a core instance.
type Config struct {
	Name string
	// ICache / DCache geometries. The ST220-class defaults are 32 KiB
	// direct-mapped I-cache and 32 KiB 4-way D-cache with 32-byte lines.
	ICache CacheConfig
	DCache CacheConfig
	// BytesPerBeat is the core's bus width (4 for the 32-bit ST220).
	BytesPerBeat int
	// PortReqDepth/PortRespDepth size the bus interface.
	PortReqDepth  int
	PortRespDepth int
	// WriteThrough disables dirty-line write-back and sends every store
	// miss as an individual write burst instead.
	WriteThrough bool
	// Prio is the priority label attached to the core's bus requests.
	// Cache refills are latency-critical (the core blocks), so platforms
	// give the CPU a high label where the fabric supports priorities.
	Prio int
}

// DefaultConfig returns the ST220-like configuration.
func DefaultConfig(name string) Config {
	return Config{
		Name:          name,
		ICache:        CacheConfig{SizeBytes: 32 << 10, LineBytes: 32, Ways: 1},
		DCache:        CacheConfig{SizeBytes: 32 << 10, LineBytes: 32, Ways: 4},
		BytesPerBeat:  4,
		PortReqDepth:  2,
		PortRespDepth: 8,
		Prio:          7,
	}
}

// pendingOp is a memory operation waiting inside the current bundle.
type pendingOp struct {
	instr Instr
	addr  uint64
}

// Core is the VLIW ISS; a sim.Clocked initiator owning its bus port.
type Core struct {
	cfg    Config
	port   *bus.InitiatorPort
	clk    *sim.Clock
	ids    *bus.IDSource
	origin int

	prog   Program
	regs   [NumRegs]int64
	pc     int64
	halted bool

	icache *cache
	dcache *cache

	// pool recycles bus requests (nil outside platform builds): refills
	// return on their final beat; posted writes are reclaimed by the
	// component that consumes them.
	pool *bus.RequestPool

	// attrCol, when set, closes each refill's attribution record at
	// final-beat consumption (see UseAttribution).
	attrCol *attr.Collector

	// pipeline state
	fetchDone  bool        // current bundle's fetch completed
	memOps     []pendingOp // memory ops of the current bundle, in order
	refillID   uint64      // outstanding miss transaction, 0 when none
	refillWait bool
	// per-op micro-state: the cache is accessed exactly once per op; the
	// resulting write-back and refill are then issued over as many cycles
	// as bus backpressure requires.
	opAccessed bool
	needWB     bool
	wbAddr     uint64
	needRefill bool

	// statistics
	cycles      int64
	stallCycles int64
	bundles     int64
	instrs      int64
	loads       int64
	stores      int64
	refills     int64
	writebacks  int64
}

// New builds a core running the given program.
func New(cfg Config, prog Program, clk *sim.Clock, ids *bus.IDSource, origin int) (*Core, error) {
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	if cfg.BytesPerBeat <= 0 {
		cfg.BytesPerBeat = 4
	}
	if cfg.PortReqDepth <= 0 {
		cfg.PortReqDepth = 2
	}
	if cfg.PortRespDepth <= 0 {
		cfg.PortRespDepth = 8
	}
	ic, err := newCache("instruction", cfg.ICache)
	if err != nil {
		return nil, err
	}
	dc, err := newCache("data", cfg.DCache)
	if err != nil {
		return nil, err
	}
	return &Core{
		cfg:    cfg,
		port:   bus.NewInitiatorPort(cfg.Name, cfg.PortReqDepth, cfg.PortRespDepth),
		clk:    clk,
		ids:    ids,
		origin: origin,
		prog:   prog,
		icache: ic,
		dcache: dc,
	}, nil
}

// MustNew is New that panics on error.
func MustNew(cfg Config, prog Program, clk *sim.Clock, ids *bus.IDSource, origin int) *Core {
	c, err := New(cfg, prog, clk, ids, origin)
	if err != nil {
		panic(err)
	}
	return c
}

// UseRequestPool makes the core mint requests from (and return them to) the
// given pool. Call before simulation starts.
func (c *Core) UseRequestPool(p *bus.RequestPool) { c.pool = p }

// UseAttribution makes the core finish each refill's latency-attribution
// record when the final beat arrives (posted writes finish at the consuming
// memory instead). Call before simulation starts.
func (c *Core) UseAttribution(col *attr.Collector) { c.attrCol = col }

// Port returns the initiator port to attach to a fabric.
func (c *Core) Port() *bus.InitiatorPort { return c.port }

// Name returns the core instance name.
func (c *Core) Name() string { return c.cfg.Name }

// Halted reports whether the program has executed HALT.
func (c *Core) Halted() bool { return c.halted }

// Reg returns an architectural register (for tests).
func (c *Core) Reg(i int) int64 { return c.regs[i] }

// Eval advances the core one cycle.
func (c *Core) Eval() {
	if c.halted {
		return
	}
	c.cycles++
	c.collectRefill()
	if c.refillWait {
		c.stallCycles++
		return
	}
	if !c.fetchDone {
		c.fetch()
		if !c.fetchDone {
			c.stallCycles++
			return
		}
	}
	if len(c.memOps) > 0 {
		c.issueMemOps()
		if c.refillWait || len(c.memOps) > 0 {
			c.stallCycles++
			return
		}
	}
	c.retireBundle()
}

// Update commits the port FIFOs.
func (c *Core) Update() { c.port.Update() }

// collectRefill consumes response beats; the refill completes on Last.
func (c *Core) collectRefill() {
	for c.port.Resp.CanPop() {
		beat := c.port.Resp.Pop()
		if beat.Last && beat.Req.ID == c.refillID {
			c.refillWait = false
			c.refillID = 0
			// The refill we issued is fully delivered: recycle it. Write
			// acks (un-posted downstream) are left to the GC — the core
			// cannot prove it still owns them.
			if rec := beat.Req.Attr; rec != nil && c.attrCol != nil {
				c.attrCol.Finish(rec, c.clk.NowPS())
			}
			c.pool.Put(beat.Req)
		}
	}
}

// fetch looks the current bundle up in the I-cache; a miss issues a line
// refill and stalls.
func (c *Core) fetch() {
	if int(c.pc) >= len(c.prog.Bundles) {
		c.halted = true
		return
	}
	addr := c.prog.Base + uint64(c.pc)*8
	hit, _, _ := c.icache.access(addr, false)
	if !hit {
		if !c.issueRefill(c.icache.lineAddr(addr), c.iLineBeats()) {
			return // port full: retry next cycle
		}
		c.refills++
		return
	}
	c.fetchDone = true
	c.decode()
}

// decode collects the bundle's memory ops and executes its ALU/branch part.
// Register reads observe pre-bundle values (VLIW semantics).
func (c *Core) decode() {
	b := c.prog.Bundles[c.pc]
	pre := c.regs
	nextPC := c.pc + 1
	for _, in := range b {
		switch in.Kind {
		case OpALU:
			c.regs[in.Dst] = pre[in.Src1] + pre[in.Src2] + in.Imm
			c.instrs++
		case OpLoad:
			addr := uint64(pre[in.Src1] + in.Imm)
			c.memOps = append(c.memOps, pendingOp{instr: in, addr: addr})
			c.instrs++
			c.loads++
		case OpStore:
			addr := uint64(pre[in.Src1] + in.Imm)
			c.memOps = append(c.memOps, pendingOp{instr: in, addr: addr})
			c.instrs++
			c.stores++
		case OpBranch:
			if pre[in.Src1] != 0 {
				nextPC = in.Imm
			}
			c.instrs++
		case OpHalt:
			c.halted = true
			c.instrs++
		case OpNop:
		}
	}
	c.pc = nextPC
}

// issueMemOps processes the bundle's loads/stores in order. Each op
// accesses the D-cache exactly once; a resulting write-back and refill are
// issued across cycles as the bus port allows.
func (c *Core) issueMemOps() {
	op := c.memOps[0]
	if !c.opAccessed {
		write := op.instr.Kind == OpStore
		if c.cfg.WriteThrough && write {
			// write-through variant: every store is a posted write
			// on the bus, no D-cache allocation.
			if c.issueWrite(op.addr, 1, true) {
				c.popMemOp()
			}
			return
		}
		hit, wb, hasWB := c.dcache.access(op.addr, write)
		c.opAccessed = true
		c.needWB, c.wbAddr = hasWB, wb
		c.needRefill = !hit
		if op.instr.Kind == OpLoad {
			c.regs[op.instr.Dst] = pseudoValue(op.addr)
		}
	}
	if c.needWB {
		if !c.issueWrite(c.wbAddr, c.dLineBeats(), true) {
			return
		}
		c.writebacks++
		c.needWB = false
	}
	if c.needRefill {
		if !c.issueRefill(c.dcache.lineAddr(op.addr), c.dLineBeats()) {
			return
		}
		c.refills++
		c.needRefill = false
	}
	c.popMemOp()
	c.opAccessed = false
}

// popMemOp drops the completed head op, shifting in place so the bundle's
// op queue reuses its backing array instead of reallocating every bundle.
func (c *Core) popMemOp() {
	n := copy(c.memOps, c.memOps[1:])
	c.memOps[n] = pendingOp{}
	c.memOps = c.memOps[:n]
}

func (c *Core) dLineBeats() int {
	b := c.cfg.DCache.LineBytes / c.cfg.BytesPerBeat
	if b < 1 {
		b = 1
	}
	return b
}

func (c *Core) iLineBeats() int {
	b := c.cfg.ICache.LineBytes / c.cfg.BytesPerBeat
	if b < 1 {
		b = 1
	}
	return b
}

// pseudoValue derives a deterministic load result from the address so
// pointer-chase kernels walk a reproducible sequence.
func pseudoValue(addr uint64) int64 {
	x := addr * 0x9e3779b97f4a7c15
	return int64((x >> 17) & 0xffff8) // 8-byte aligned, bounded offset
}

// issueRefill sends a read burst for one cache line; returns false when the
// port is full this cycle.
func (c *Core) issueRefill(lineAddr uint64, beats int) bool {
	if !c.port.Req.CanPush() {
		return false
	}
	req := c.pool.Get()
	*req = bus.Request{
		ID:           c.ids.Next(),
		Origin:       c.origin,
		Op:           bus.OpRead,
		Addr:         lineAddr,
		Beats:        beats,
		BytesPerBeat: c.cfg.BytesPerBeat,
		Prio:         c.cfg.Prio,
		IssueCycle:   c.clk.Cycles(),
		IssuePS:      c.clk.NowPS(),
		MsgEnd:       true,
	}
	c.port.Req.Push(req)
	c.refillID = req.ID
	c.refillWait = true
	return true
}

// issueWrite sends a posted write burst (write-back or write-through).
func (c *Core) issueWrite(addr uint64, beats int, posted bool) bool {
	if !c.port.Req.CanPush() {
		return false
	}
	if beats < 1 {
		beats = 1
	}
	req := c.pool.Get()
	*req = bus.Request{
		ID:           c.ids.Next(),
		Origin:       c.origin,
		Op:           bus.OpWrite,
		Addr:         addr,
		Beats:        beats,
		BytesPerBeat: c.cfg.BytesPerBeat,
		Prio:         c.cfg.Prio,
		Posted:       posted,
		IssueCycle:   c.clk.Cycles(),
		IssuePS:      c.clk.NowPS(),
		MsgEnd:       true,
	}
	c.port.Req.Push(req)
	return true
}

// retireBundle finishes the current bundle and moves to the next.
func (c *Core) retireBundle() {
	c.bundles++
	c.fetchDone = false
}

// RegisterMetrics registers the core's telemetry under "dsp.<name>.*" on the
// given clock domain: pipeline counters (cycles, stalls, bundles, instrs),
// memory-op counters, raw I-/D-cache hit/miss/writeback counters (hit rates
// are re-derivable from these), and an outstanding-refill gauge. Func-backed:
// the per-cycle pipeline is untouched.
func (c *Core) RegisterMetrics(m *metrics.Registry, clock string) {
	p := "dsp." + c.cfg.Name + "."
	m.CounterFunc(p+"cycles", func() int64 { return c.cycles })
	m.CounterFunc(p+"stall_cycles", func() int64 { return c.stallCycles })
	m.CounterFunc(p+"bundles", func() int64 { return c.bundles })
	m.CounterFunc(p+"instrs", func() int64 { return c.instrs })
	m.CounterFunc(p+"loads", func() int64 { return c.loads })
	m.CounterFunc(p+"stores", func() int64 { return c.stores })
	m.CounterFunc(p+"refills", func() int64 { return c.refills })
	m.CounterFunc(p+"writebacks", func() int64 { return c.writebacks })
	m.CounterFunc(p+"icache_hits", func() int64 { return c.icache.hits })
	m.CounterFunc(p+"icache_misses", func() int64 { return c.icache.misses })
	m.CounterFunc(p+"dcache_hits", func() int64 { return c.dcache.hits })
	m.CounterFunc(p+"dcache_misses", func() int64 { return c.dcache.misses })
	m.GaugeFunc(p+"refill_outstanding", clock, func() int64 {
		if c.refillWait {
			return 1
		}
		return 0
	})
}

// Stats reports core activity.
func (c *Core) Stats() Stats {
	return Stats{
		Cycles:      c.cycles,
		StallCycles: c.stallCycles,
		Bundles:     c.bundles,
		Instrs:      c.instrs,
		Loads:       c.loads,
		Stores:      c.stores,
		Refills:     c.refills,
		Writebacks:  c.writebacks,
		IHitRate:    c.icache.hitRate(),
		DHitRate:    c.dcache.hitRate(),
	}
}

// Stats summarizes core execution.
type Stats struct {
	Cycles      int64
	StallCycles int64
	Bundles     int64
	Instrs      int64
	Loads       int64
	Stores      int64
	Refills     int64
	Writebacks  int64
	IHitRate    float64
	DHitRate    float64
}

// CPI returns cycles per (non-NOP) instruction.
func (s Stats) CPI() float64 {
	if s.Instrs == 0 {
		return 0
	}
	return float64(s.Cycles) / float64(s.Instrs)
}

// String summarizes the stats.
func (s Stats) String() string {
	return fmt.Sprintf("cycles=%d stalls=%d instrs=%d CPI=%.2f i$=%.2f d$=%.2f refills=%d",
		s.Cycles, s.StallCycles, s.Instrs, s.CPI(), s.IHitRate, s.DHitRate, s.Refills)
}
