package dspcore

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Assemble parses the core's textual assembly into a Program. The format is
// one VLIW bundle per line, slots separated by '|':
//
//	; stream copy kernel
//	.base 0x8000000
//	        alu r1, r0, r0, 100      ; iteration count
//	        alu r2, r0, r0, 0x1000   ; src
//	loop:   ld  r4, r2, 0 | alu r2, r2, r0, 32
//	        st  r2, 8     | alu r1, r1, r0, -1
//	        br  r1, loop
//	        halt
//
// Mnemonics: alu DST, SRC1, SRC2, IMM ; ld DST, ADDRREG, IMM ;
// st ADDRREG, IMM ; br CONDREG, LABEL ; nop ; halt.
// ';' or '#' start comments. '.base ADDR' sets the program base address.
// Labels (identifier + ':') may prefix a bundle or stand alone.
func Assemble(r io.Reader) (Program, error) {
	type pending struct {
		bundle int
		slot   int
		label  string
		line   int
	}
	prog := Program{Base: 0x0800_0000}
	labels := map[string]int64{}
	var fixups []pending

	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexAny(line, ";#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ".base") {
			v, err := parseImm(strings.TrimSpace(strings.TrimPrefix(line, ".base")))
			if err != nil {
				return prog, fmt.Errorf("line %d: .base: %w", lineNo, err)
			}
			prog.Base = uint64(v)
			continue
		}
		// peel leading labels
		for {
			i := strings.IndexByte(line, ':')
			if i < 0 {
				break
			}
			candidate := strings.TrimSpace(line[:i])
			if !isIdent(candidate) {
				break
			}
			if _, dup := labels[candidate]; dup {
				return prog, fmt.Errorf("line %d: duplicate label %q", lineNo, candidate)
			}
			labels[candidate] = int64(len(prog.Bundles))
			line = strings.TrimSpace(line[i+1:])
		}
		if line == "" {
			continue
		}
		slots := strings.Split(line, "|")
		if len(slots) > BundleWidth {
			return prog, fmt.Errorf("line %d: %d slots exceed bundle width %d", lineNo, len(slots), BundleWidth)
		}
		var b Bundle
		for si, slot := range slots {
			instr, labelRef, err := parseInstr(strings.TrimSpace(slot))
			if err != nil {
				return prog, fmt.Errorf("line %d slot %d: %w", lineNo, si+1, err)
			}
			b[si] = instr
			if labelRef != "" {
				fixups = append(fixups, pending{
					bundle: len(prog.Bundles), slot: si, label: labelRef, line: lineNo,
				})
			}
		}
		prog.Bundles = append(prog.Bundles, b)
	}
	if err := sc.Err(); err != nil {
		return prog, err
	}
	for _, f := range fixups {
		target, ok := labels[f.label]
		if !ok {
			return prog, fmt.Errorf("line %d: undefined label %q", f.line, f.label)
		}
		prog.Bundles[f.bundle][f.slot].Imm = target
	}
	if err := prog.Validate(); err != nil {
		return prog, err
	}
	return prog, nil
}

// AssembleString is Assemble over a string.
func AssembleString(s string) (Program, error) {
	return Assemble(strings.NewReader(s))
}

// MustAssemble panics on assembly errors, for static kernels in examples.
func MustAssemble(s string) Program {
	p, err := AssembleString(s)
	if err != nil {
		panic(err)
	}
	return p
}

// parseInstr parses one slot; for branches it returns the label reference
// to resolve later (empty when the operand is numeric).
func parseInstr(s string) (Instr, string, error) {
	if s == "" {
		return Instr{}, "", nil // empty slot = NOP
	}
	mnemonic := s
	rest := ""
	if i := strings.IndexAny(s, " \t"); i >= 0 {
		mnemonic, rest = s[:i], strings.TrimSpace(s[i:])
	}
	args := splitArgs(rest)
	switch strings.ToLower(mnemonic) {
	case "nop":
		if len(args) != 0 {
			return Instr{}, "", fmt.Errorf("nop takes no operands")
		}
		return Instr{Kind: OpNop}, "", nil
	case "halt":
		if len(args) != 0 {
			return Instr{}, "", fmt.Errorf("halt takes no operands")
		}
		return Instr{Kind: OpHalt}, "", nil
	case "alu":
		if len(args) != 4 {
			return Instr{}, "", fmt.Errorf("alu wants DST, SRC1, SRC2, IMM")
		}
		dst, err := parseReg(args[0])
		if err != nil {
			return Instr{}, "", err
		}
		s1, err := parseReg(args[1])
		if err != nil {
			return Instr{}, "", err
		}
		s2, err := parseReg(args[2])
		if err != nil {
			return Instr{}, "", err
		}
		imm, err := parseImm(args[3])
		if err != nil {
			return Instr{}, "", err
		}
		return Instr{Kind: OpALU, Dst: dst, Src1: s1, Src2: s2, Imm: imm}, "", nil
	case "ld":
		if len(args) != 3 {
			return Instr{}, "", fmt.Errorf("ld wants DST, ADDRREG, IMM")
		}
		dst, err := parseReg(args[0])
		if err != nil {
			return Instr{}, "", err
		}
		a, err := parseReg(args[1])
		if err != nil {
			return Instr{}, "", err
		}
		imm, err := parseImm(args[2])
		if err != nil {
			return Instr{}, "", err
		}
		return Instr{Kind: OpLoad, Dst: dst, Src1: a, Imm: imm}, "", nil
	case "st":
		if len(args) != 2 {
			return Instr{}, "", fmt.Errorf("st wants ADDRREG, IMM")
		}
		a, err := parseReg(args[0])
		if err != nil {
			return Instr{}, "", err
		}
		imm, err := parseImm(args[1])
		if err != nil {
			return Instr{}, "", err
		}
		return Instr{Kind: OpStore, Src1: a, Imm: imm}, "", nil
	case "br":
		if len(args) != 2 {
			return Instr{}, "", fmt.Errorf("br wants CONDREG, LABEL")
		}
		c, err := parseReg(args[0])
		if err != nil {
			return Instr{}, "", err
		}
		if isIdent(args[1]) {
			return Instr{Kind: OpBranch, Src1: c}, args[1], nil
		}
		imm, err := parseImm(args[1])
		if err != nil {
			return Instr{}, "", err
		}
		return Instr{Kind: OpBranch, Src1: c, Imm: imm}, "", nil
	default:
		return Instr{}, "", fmt.Errorf("unknown mnemonic %q", mnemonic)
	}
}

func splitArgs(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		out = append(out, strings.TrimSpace(p))
	}
	return out
}

func parseReg(s string) (uint8, error) {
	if len(s) < 2 || (s[0] != 'r' && s[0] != 'R') {
		return 0, fmt.Errorf("bad register %q", s)
	}
	n, err := strconv.ParseUint(s[1:], 10, 8)
	if err != nil || n >= NumRegs {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return uint8(n), nil
}

func parseImm(s string) (int64, error) {
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	return v, nil
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
