package dspcore

import (
	"strings"
	"testing"

	"mpsocsim/internal/bus"
	"mpsocsim/internal/mem"
	"mpsocsim/internal/sim"
	"mpsocsim/internal/stbus"
)

const copyKernel = `
; copy 50 lines from 0x1000 to 0x20000
.base 0x9000000
        alu r1, r0, r0, 50        ; count
        alu r2, r0, r0, 0x1000    ; src
        alu r3, r0, r0, 0x20000   ; dst
loop:   ld  r4, r2, 0 | alu r2, r2, r0, 32
        st  r3, 0     | alu r3, r3, r0, 32 | alu r1, r1, r0, -1
        br  r1, loop
        halt
`

func TestAssembleAndRun(t *testing.T) {
	prog, err := AssembleString(copyKernel)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Base != 0x9000000 {
		t.Fatalf("base = %#x", prog.Base)
	}
	r := newRig(t, DefaultConfig("c"), prog)
	r.run(t)
	s := r.core.Stats()
	if s.Loads != 50 || s.Stores != 50 {
		t.Fatalf("loads/stores = %d/%d, want 50/50", s.Loads, s.Stores)
	}
	if got := r.core.Reg(1); got != 0 {
		t.Fatalf("loop counter = %d, want 0", got)
	}
}

func TestAssembleMatchesBuilder(t *testing.T) {
	// The hand-built StreamKernel and an equivalent assembly text must
	// produce identical cycle counts.
	built := StreamKernel(0x1000, 0x20000, 50, 32)
	rBuilt := newRig(t, DefaultConfig("c"), built)
	rBuilt.run(t)

	asm := `
.base 0x8000000
        alu r1, r0, r0, 50
        alu r2, r0, r0, 0x1000
        alu r3, r0, r0, 0x20000
loop:   ld  r4, r2, 0 | alu r2, r2, r0, 32
        st  r3, 0     | alu r3, r3, r0, 32 | alu r1, r1, r0, -1
        br  r1, loop
        halt
`
	prog, err := AssembleString(asm)
	if err != nil {
		t.Fatal(err)
	}
	rAsm := newRig(t, DefaultConfig("c"), prog)
	rAsm.run(t)
	if a, b := rBuilt.core.Stats().Cycles, rAsm.core.Stats().Cycles; a != b {
		t.Fatalf("builder (%d cycles) and assembly (%d cycles) diverge", a, b)
	}
}

func TestAssembleForwardReference(t *testing.T) {
	prog, err := AssembleString(`
        alu r1, r0, r0, 1
        br  r0, skip      ; never taken, but resolves forward
        alu r1, r0, r0, 2
skip:   halt
`)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Bundles[1][0].Imm != 3 {
		t.Fatalf("forward label resolved to %d, want 3", prog.Bundles[1][0].Imm)
	}
}

func TestAssembleStandaloneLabelAndNumericBranch(t *testing.T) {
	prog, err := AssembleString(`
top:
        alu r1, r0, r0, 0
        br  r1, 0
        halt
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Bundles) != 3 {
		t.Fatalf("bundles = %d", len(prog.Bundles))
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		name string
		text string
		want string
	}{
		{"unknown-op", "frob r1", "unknown mnemonic"},
		{"bad-reg", "alu rX, r0, r0, 1", "bad register"},
		{"reg-range", "alu r40, r0, r0, 1", "bad register"},
		{"bad-imm", "alu r1, r0, r0, twelve", "bad immediate"},
		{"alu-arity", "alu r1, r0", "alu wants"},
		{"ld-arity", "ld r1", "ld wants"},
		{"st-arity", "st r1", "st wants"},
		{"br-arity", "br r1", "br wants"},
		{"nop-args", "nop r1", "nop takes no operands"},
		{"halt-args", "halt 3", "halt takes no operands"},
		{"too-wide", "nop | nop | nop | nop | nop", "exceed bundle width"},
		{"undef-label", "br r1, nowhere\nhalt", "undefined label"},
		{"dup-label", "a:\nhalt\na:\nhalt", "duplicate label"},
		{"bad-base", ".base zz", ".base"},
		{"empty", "; only a comment", "empty program"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := AssembleString(tc.text)
			if err == nil {
				t.Fatalf("expected error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustAssemble("frob")
}

func TestAssembledKernelOnFabric(t *testing.T) {
	// end-to-end: assembled program through a node to a memory; a tiny
	// D-cache forces dirty evictions so writes reach the memory too
	prog := MustAssemble(copyKernel)
	k := sim.NewKernel()
	clk := k.NewClock("cpu", 400)
	cfg := DefaultConfig("c")
	cfg.DCache = CacheConfig{SizeBytes: 256, LineBytes: 32, Ways: 2}
	core := MustNew(cfg, prog, clk, &bus.IDSource{}, 0)
	node := stbus.NewNode("n", stbus.Config{Type: stbus.Type3, BytesPerBeat: 4}, bus.Single(0))
	m := mem.New("m", mem.DefaultConfig())
	node.AttachInitiator(core.Port())
	node.AttachTarget(m.Port())
	clk.Register(core)
	clk.Register(node)
	clk.Register(m)
	if !k.RunWhile(func() bool { return !core.Halted() }, 1e10) {
		t.Fatal("assembled kernel did not halt")
	}
	if m.Stats().Reads == 0 || m.Stats().Writes == 0 {
		t.Fatal("kernel produced no memory traffic")
	}
}
