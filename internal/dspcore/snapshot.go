package dspcore

import (
	"mpsocsim/internal/attr"
	"mpsocsim/internal/bus"
	"mpsocsim/internal/snapshot"
)

// encodeCacheState serializes a cache's full array state: every line's
// tag/valid/dirty/age plus the LRU tick and counters. Lines dominate the
// snapshot size for DSP configs, so invalid lines encode as a single zero.
func encodeCacheState(e *snapshot.Encoder, c *cache) {
	e.Tag('$')
	e.U(uint64(len(c.sets)))
	e.U(uint64(c.cfg.Ways))
	for _, set := range c.sets {
		for i := range set {
			l := &set[i]
			if !l.valid {
				e.U(0)
				continue
			}
			e.U(1)
			e.U(l.tag)
			e.Bool(l.dirty)
			e.U(l.age)
		}
	}
	e.U(c.tick)
	e.I(c.hits)
	e.I(c.misses)
	e.I(c.writebacks)
}

func decodeCacheState(d *snapshot.Decoder, c *cache) {
	d.Tag('$')
	ns := d.N(1 << 24)
	nw := d.N(1 << 10)
	if d.Err() != nil {
		return
	}
	if ns != len(c.sets) || nw != c.cfg.Ways {
		d.Corrupt("cache geometry %dx%d does not match platform's %dx%d", ns, nw, len(c.sets), c.cfg.Ways)
		return
	}
	for _, set := range c.sets {
		for i := range set {
			l := &set[i]
			switch d.U() {
			case 0:
				*l = line{}
			case 1:
				l.valid = true
				l.tag = d.U()
				l.dirty = d.Bool()
				l.age = d.U()
			default:
				d.Corrupt("cache line marker out of range")
				return
			}
		}
		if d.Err() != nil {
			return
		}
	}
	c.tick = d.U()
	c.hits = d.I()
	c.misses = d.I()
	c.writebacks = d.I()
}

// EncodeState serializes the core's mutable state (DESIGN.md §16): the owned
// port, architectural registers, both cache arrays, the pipeline micro-state
// and the counters. The program is spec-derived.
func (c *Core) EncodeState(e *snapshot.Encoder) {
	e.Tag('V')
	bus.EncodeInitiatorPortState(e, c.port)
	for i := range c.regs {
		e.I(c.regs[i])
	}
	e.I(c.pc)
	e.Bool(c.halted)
	encodeCacheState(e, c.icache)
	encodeCacheState(e, c.dcache)
	e.Bool(c.fetchDone)
	e.U(uint64(len(c.memOps)))
	for _, op := range c.memOps {
		e.U(uint64(op.instr.Kind))
		e.I(int64(op.instr.Dst))
		e.I(int64(op.instr.Src1))
		e.I(int64(op.instr.Src2))
		e.I(op.instr.Imm)
		e.U(op.addr)
	}
	e.U(c.refillID)
	e.Bool(c.refillWait)
	e.Bool(c.opAccessed)
	e.Bool(c.needWB)
	e.U(c.wbAddr)
	e.Bool(c.needRefill)
	e.I(c.cycles)
	e.I(c.stallCycles)
	e.I(c.bundles)
	e.I(c.instrs)
	e.I(c.loads)
	e.I(c.stores)
	e.I(c.refills)
	e.I(c.writebacks)
}

// DecodeState restores a core serialized by EncodeState.
func (c *Core) DecodeState(d *snapshot.Decoder, col *attr.Collector) {
	d.Tag('V')
	bus.DecodeInitiatorPortState(d, c.port, col)
	for i := range c.regs {
		c.regs[i] = d.I()
	}
	c.pc = d.I()
	c.halted = d.Bool()
	decodeCacheState(d, c.icache)
	decodeCacheState(d, c.dcache)
	c.fetchDone = d.Bool()
	nm := d.N(1 << 10)
	c.memOps = c.memOps[:0]
	for i := 0; i < nm; i++ {
		var op pendingOp
		op.instr.Kind = OpKind(d.U())
		op.instr.Dst = uint8(d.I())
		op.instr.Src1 = uint8(d.I())
		op.instr.Src2 = uint8(d.I())
		op.instr.Imm = d.I()
		op.addr = d.U()
		if d.Err() != nil {
			return
		}
		c.memOps = append(c.memOps, op)
	}
	c.refillID = d.U()
	c.refillWait = d.Bool()
	c.opAccessed = d.Bool()
	c.needWB = d.Bool()
	c.wbAddr = d.U()
	c.needRefill = d.Bool()
	c.cycles = d.I()
	c.stallCycles = d.I()
	c.bundles = d.I()
	c.instrs = d.I()
	c.loads = d.I()
	c.stores = d.I()
	c.refills = d.I()
	c.writebacks = d.I()
}
