// Package dspcore models the platform's general-purpose processor — the
// ST220 VLIW DSP of the paper (400 MHz, 32-bit, data and instruction
// caches) — at the instruction-set level, the same abstraction the authors
// chose. The core executes bundles of up to four operations per cycle,
// fetches through a direct-mapped instruction cache and loads/stores through
// a set-associative write-back data cache; every cache miss becomes a burst
// transaction on the core's bus port, producing the interfering cache-miss
// traffic the paper's synthetic benchmark is tuned to generate.
package dspcore

import "fmt"

// OpKind is an operation class.
type OpKind uint8

// Operation kinds.
const (
	OpNop OpKind = iota
	// OpALU computes Dst = R[Src1] + R[Src2] + Imm.
	OpALU
	// OpLoad reads R[Src1]+Imm; Dst receives a deterministic pseudo-value
	// (the model is timing-accurate, not data-accurate).
	OpLoad
	// OpStore writes to R[Src1]+Imm.
	OpStore
	// OpBranch jumps to bundle index Imm when R[Src1] != 0.
	OpBranch
	// OpHalt stops the core.
	OpHalt
)

// String names the op kind.
func (k OpKind) String() string {
	switch k {
	case OpNop:
		return "nop"
	case OpALU:
		return "alu"
	case OpLoad:
		return "ld"
	case OpStore:
		return "st"
	case OpBranch:
		return "br"
	case OpHalt:
		return "halt"
	}
	return fmt.Sprintf("op(%d)", uint8(k))
}

// NumRegs is the architectural register count.
const NumRegs = 32

// Instr is one operation of a bundle.
type Instr struct {
	Kind OpKind
	Dst  uint8
	Src1 uint8
	Src2 uint8
	Imm  int64
}

// BundleWidth is the VLIW issue width.
const BundleWidth = 4

// Bundle is one VLIW instruction word: up to four operations issued
// together. Register reads within a bundle observe pre-bundle state.
type Bundle [BundleWidth]Instr

// Program is a sequence of bundles located at Base in the address space
// (instruction fetches hit the bus at Base + 8*pc on a miss).
type Program struct {
	Base    uint64
	Bundles []Bundle
}

// Validate checks register indices and branch targets.
func (p *Program) Validate() error {
	if len(p.Bundles) == 0 {
		return fmt.Errorf("dspcore: empty program")
	}
	for i, b := range p.Bundles {
		for j, in := range b {
			if in.Dst >= NumRegs || in.Src1 >= NumRegs || in.Src2 >= NumRegs {
				return fmt.Errorf("dspcore: bundle %d slot %d: register out of range", i, j)
			}
			if in.Kind == OpBranch {
				if in.Imm < 0 || in.Imm >= int64(len(p.Bundles)) {
					return fmt.Errorf("dspcore: bundle %d slot %d: branch target %d out of range", i, j, in.Imm)
				}
			}
		}
	}
	return nil
}

// asm is a tiny program builder used by the synthetic benchmarks.
type asm struct {
	prog Program
}

func newAsm(base uint64) *asm { return &asm{prog: Program{Base: base}} }

// emit appends one bundle padded with NOPs.
func (a *asm) emit(instrs ...Instr) int {
	if len(instrs) > BundleWidth {
		panic("dspcore: bundle overflow")
	}
	var b Bundle
	copy(b[:], instrs)
	a.prog.Bundles = append(a.prog.Bundles, b)
	return len(a.prog.Bundles) - 1
}

func alu(dst, src1, src2 uint8, imm int64) Instr {
	return Instr{Kind: OpALU, Dst: dst, Src1: src1, Src2: src2, Imm: imm}
}

func ld(dst, addrReg uint8, imm int64) Instr {
	return Instr{Kind: OpLoad, Dst: dst, Src1: addrReg, Imm: imm}
}

func st(addrReg uint8, imm int64) Instr {
	return Instr{Kind: OpStore, Src1: addrReg, Imm: imm}
}

func br(condReg uint8, target int64) Instr {
	return Instr{Kind: OpBranch, Src1: condReg, Imm: target}
}

func halt() Instr { return Instr{Kind: OpHalt} }

// StreamKernel returns a synthetic benchmark: iterations passes of
// load-compute-store over two arrays with the given byte stride. Small
// strides hit the D-cache; strides at or above the line size miss on every
// access, generating the heavy refill traffic the paper's benchmark is
// tuned for.
func StreamKernel(srcBase, dstBase uint64, iterations int64, stride int64) Program {
	const (
		rCnt  = 1
		rSrc  = 2
		rDst  = 3
		rTmp  = 4
		rZero = 0
	)
	a := newAsm(0x0800_0000)
	// r1 = iterations; r2 = src; r3 = dst (encoded as ALU from r0=0)
	a.emit(alu(rCnt, rZero, rZero, iterations))
	a.emit(alu(rSrc, rZero, rZero, int64(srcBase)))
	a.emit(alu(rDst, rZero, rZero, int64(dstBase)))
	loop := a.emit(
		ld(rTmp, rSrc, 0),
		alu(rSrc, rSrc, rZero, stride),
	)
	a.emit(
		st(rDst, 0),
		alu(rDst, rDst, rZero, stride),
		alu(rCnt, rCnt, rZero, -1),
	)
	a.emit(br(rCnt, int64(loop)))
	a.emit(halt())
	return a.prog
}

// StreamKernelWS returns a working-set-bounded stream benchmark: passes
// passes over a wsBytes window of the two arrays, touching one line per
// stride. If the D-cache holds the 2*wsBytes footprint, every pass after
// the first hits; otherwise the kernel thrashes and every access refills —
// the cache-size interference lever of the platform's DSP sweep.
func StreamKernelWS(srcBase, dstBase uint64, passes int64, stride int64, wsBytes uint64) Program {
	const (
		rOuter = 1
		rSrc   = 2
		rDst   = 3
		rTmp   = 4
		rInner = 5
		rZero  = 0
	)
	inner := int64(wsBytes) / stride
	if inner < 1 {
		inner = 1
	}
	a := newAsm(0x0b00_0000)
	a.emit(alu(rOuter, rZero, rZero, passes))
	outer := a.emit(
		alu(rSrc, rZero, rZero, int64(srcBase)),
		alu(rDst, rZero, rZero, int64(dstBase)),
		alu(rInner, rZero, rZero, inner),
	)
	innerLoop := a.emit(
		ld(rTmp, rSrc, 0),
		alu(rSrc, rSrc, rZero, stride),
	)
	a.emit(
		st(rDst, 0),
		alu(rDst, rDst, rZero, stride),
		alu(rInner, rInner, rZero, -1),
	)
	a.emit(br(rInner, int64(innerLoop)))
	a.emit(alu(rOuter, rOuter, rZero, -1))
	a.emit(br(rOuter, int64(outer)))
	a.emit(halt())
	return a.prog
}

// PointerChaseKernel returns a dependent-load benchmark: each load's
// pseudo-result perturbs the next address, defeating spatial locality and
// producing near-100% D-cache misses over a working set of wsBytes.
func PointerChaseKernel(base uint64, iterations int64, wsBytes uint64) Program {
	const (
		rCnt  = 1
		rPtr  = 2
		rVal  = 3
		rZero = 0
	)
	a := newAsm(0x0900_0000)
	a.emit(alu(rCnt, rZero, rZero, iterations))
	a.emit(alu(rPtr, rZero, rZero, int64(base)))
	loop := a.emit(
		ld(rVal, rPtr, 0),
	)
	// ptr = base + (val masked into working set); the load pseudo-value
	// is derived from the address, so the walk is deterministic.
	a.emit(
		alu(rPtr, rVal, rZero, int64(base)),
		alu(rCnt, rCnt, rZero, -1),
	)
	a.emit(br(rCnt, int64(loop)))
	a.emit(halt())
	_ = wsBytes
	return a.prog
}

// ComputeKernel returns a mostly-ALU benchmark with an occasional load, the
// low-interference counterpart used to contrast cache-miss pressure.
func ComputeKernel(base uint64, iterations int64) Program {
	const (
		rCnt  = 1
		rAcc  = 2
		rPtr  = 3
		rTmp  = 4
		rZero = 0
	)
	a := newAsm(0x0a00_0000)
	a.emit(alu(rCnt, rZero, rZero, iterations))
	a.emit(alu(rPtr, rZero, rZero, int64(base)))
	loop := a.emit(
		alu(rAcc, rAcc, rCnt, 1),
		alu(rTmp, rAcc, rAcc, 3),
		alu(rAcc, rTmp, rCnt, -2),
	)
	a.emit(
		ld(rTmp, rPtr, 0),
		alu(rPtr, rPtr, rZero, 4),
		alu(rCnt, rCnt, rZero, -1),
	)
	a.emit(br(rCnt, int64(loop)))
	a.emit(halt())
	return a.prog
}
