package dspcore

import "fmt"

// CacheConfig sizes a cache.
type CacheConfig struct {
	SizeBytes int
	LineBytes int
	Ways      int
}

// valid reports whether the configuration is a power-of-two geometry.
func (c CacheConfig) validate(name string) error {
	if c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Ways <= 0 {
		return fmt.Errorf("dspcore: %s cache: non-positive geometry %+v", name, c)
	}
	if c.SizeBytes%(c.LineBytes*c.Ways) != 0 {
		return fmt.Errorf("dspcore: %s cache: size %d not divisible by line*ways", name, c.SizeBytes)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("dspcore: %s cache: line size %d not a power of two", name, c.LineBytes)
	}
	sets := c.SizeBytes / (c.LineBytes * c.Ways)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("dspcore: %s cache: set count %d not a power of two", name, sets)
	}
	return nil
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
	age   uint64 // LRU timestamp
}

// cache is a set-associative write-back, write-allocate cache (timing only).
type cache struct {
	cfg      CacheConfig
	sets     [][]line
	setMask  uint64
	lineBits uint

	tick       uint64
	hits       int64
	misses     int64
	writebacks int64
}

func newCache(name string, cfg CacheConfig) (*cache, error) {
	if err := cfg.validate(name); err != nil {
		return nil, err
	}
	nSets := cfg.SizeBytes / (cfg.LineBytes * cfg.Ways)
	c := &cache{
		cfg:     cfg,
		sets:    make([][]line, nSets),
		setMask: uint64(nSets - 1),
	}
	// One contiguous slab for all ways of all sets: hundreds fewer
	// allocations per cache and better lookup locality than per-set slices.
	backing := make([]line, nSets*cfg.Ways)
	for i := range c.sets {
		c.sets[i] = backing[i*cfg.Ways : (i+1)*cfg.Ways : (i+1)*cfg.Ways]
	}
	for l := cfg.LineBytes; l > 1; l >>= 1 {
		c.lineBits++
	}
	return c, nil
}

// lineAddr returns the line-aligned address.
func (c *cache) lineAddr(addr uint64) uint64 { return addr &^ (uint64(c.cfg.LineBytes) - 1) }

// access looks up addr; on a miss it allocates a line (LRU victim) and
// returns the dirty victim's line address for write-back, if any. write
// marks the line dirty on both hit and miss (write-allocate).
func (c *cache) access(addr uint64, write bool) (hit bool, writeback uint64, hasWB bool) {
	c.tick++
	setIdx := (addr >> c.lineBits) & c.setMask
	tag := addr >> c.lineBits
	set := c.sets[setIdx]
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].age = c.tick
			if write {
				set[i].dirty = true
			}
			c.hits++
			return true, 0, false
		}
	}
	c.misses++
	// choose LRU victim
	victim := 0
	for i := 1; i < len(set); i++ {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].age < set[victim].age {
			victim = i
		}
	}
	v := &set[victim]
	if v.valid && v.dirty {
		// the stored tag is addr>>lineBits (set bits included), so the
		// victim's line address reconstructs directly
		writeback = v.tag << c.lineBits
		hasWB = true
		c.writebacks++
	}
	v.tag = tag
	v.valid = true
	v.dirty = write
	v.age = c.tick
	return false, writeback, hasWB
}

// flushStats resets counters (not contents).
func (c *cache) hitRate() float64 {
	tot := c.hits + c.misses
	if tot == 0 {
		return 0
	}
	return float64(c.hits) / float64(tot)
}
