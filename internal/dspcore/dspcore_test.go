package dspcore

import (
	"testing"

	"mpsocsim/internal/bus"
	"mpsocsim/internal/mem"
	"mpsocsim/internal/sim"
	"mpsocsim/internal/stbus"
)

// rig wires a core to a memory through an STBus node.
type rig struct {
	k    *sim.Kernel
	clk  *sim.Clock
	core *Core
	m    *mem.Memory
}

func newRig(t *testing.T, cfg Config, prog Program) *rig {
	t.Helper()
	k := sim.NewKernel()
	clk := k.NewClock("cpu", 400)
	core, err := New(cfg, prog, clk, &bus.IDSource{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	node := stbus.NewNode("n", stbus.Config{Type: stbus.Type3, BytesPerBeat: cfg.BytesPerBeat}, bus.Single(0))
	m := mem.New("mem", mem.Config{WaitStates: 1, ReqDepth: 2, RespDepth: 4})
	node.AttachInitiator(core.Port())
	node.AttachTarget(m.Port())
	clk.Register(core)
	clk.Register(node)
	clk.Register(m)
	return &rig{k: k, clk: clk, core: core, m: m}
}

func (r *rig) run(t *testing.T) {
	t.Helper()
	if !r.k.RunWhile(func() bool { return !r.core.Halted() }, 1e11) {
		t.Fatalf("core did not halt: %s", r.core.Stats())
	}
}

func TestStreamKernelRuns(t *testing.T) {
	prog := StreamKernel(0x1000, 0x200000, 100, 32)
	r := newRig(t, DefaultConfig("st220"), prog)
	r.run(t)
	s := r.core.Stats()
	if s.Loads != 100 || s.Stores != 100 {
		t.Fatalf("loads/stores = %d/%d, want 100/100", s.Loads, s.Stores)
	}
	if s.Refills == 0 {
		t.Fatal("a 32-byte-stride stream must miss the D-cache")
	}
	if s.CPI() <= 1.0 {
		t.Fatalf("CPI = %v; miss stalls must push CPI above 1", s.CPI())
	}
}

func TestRegisterSemantics(t *testing.T) {
	// r1 = 5; r2 = r1 + 3; within one bundle reads see pre-bundle values.
	a := newAsm(0x8000000)
	a.emit(alu(1, 0, 0, 5))
	a.emit(
		alu(2, 1, 0, 3), // r2 = 5 + 3
		alu(1, 1, 1, 0), // r1 = 5 + 5 (reads pre-bundle r1)
	)
	a.emit(halt())
	r := newRig(t, DefaultConfig("c"), a.prog)
	r.run(t)
	if got := r.core.Reg(2); got != 8 {
		t.Fatalf("r2 = %d, want 8", got)
	}
	if got := r.core.Reg(1); got != 10 {
		t.Fatalf("r1 = %d, want 10 (VLIW pre-bundle read semantics)", got)
	}
}

func TestBranchLoop(t *testing.T) {
	// count down from 5
	a := newAsm(0x8000000)
	a.emit(alu(1, 0, 0, 5))
	loop := a.emit(alu(1, 1, 0, -1))
	a.emit(br(1, int64(loop)))
	a.emit(halt())
	r := newRig(t, DefaultConfig("c"), a.prog)
	r.run(t)
	if got := r.core.Reg(1); got != 0 {
		t.Fatalf("r1 = %d, want 0", got)
	}
}

func TestCacheLocalityChangesCPI(t *testing.T) {
	// stride 4 (within line) vs stride 64 (every access a new line):
	// the small stride must enjoy a much better CPI.
	small := newRig(t, DefaultConfig("c"), StreamKernel(0x1000, 0x200000, 200, 4))
	small.run(t)
	large := newRig(t, DefaultConfig("c"), StreamKernel(0x1000, 0x200000, 200, 64))
	large.run(t)
	cpiSmall := small.core.Stats().CPI()
	cpiLarge := large.core.Stats().CPI()
	if cpiSmall >= cpiLarge {
		t.Fatalf("stride-4 CPI (%v) should beat stride-64 CPI (%v)", cpiSmall, cpiLarge)
	}
	if small.core.Stats().DHitRate <= large.core.Stats().DHitRate {
		t.Fatal("hit rates inverted")
	}
}

func TestWritebacksHappen(t *testing.T) {
	// Stores over a working set larger than the D-cache: dirty evictions
	// must produce write-back traffic.
	cfg := DefaultConfig("c")
	cfg.DCache = CacheConfig{SizeBytes: 1 << 10, LineBytes: 32, Ways: 2}
	// store-only stream over 8 KiB (8x the cache), twice around
	prog := StreamKernel(0x1000, 0x4000, 512, 32)
	r := newRig(t, cfg, prog)
	r.run(t)
	if r.core.Stats().Writebacks == 0 {
		t.Fatal("expected write-backs from dirty evictions")
	}
}

func TestWriteThroughVariant(t *testing.T) {
	cfg := DefaultConfig("c")
	cfg.WriteThrough = true
	prog := StreamKernel(0x1000, 0x200000, 100, 8)
	r := newRig(t, cfg, prog)
	r.run(t)
	s := r.core.Stats()
	if s.Writebacks != 0 {
		t.Fatal("write-through must not produce write-backs")
	}
	if s.Stores != 100 {
		t.Fatalf("stores = %d", s.Stores)
	}
}

func TestPointerChaseHighMissRate(t *testing.T) {
	prog := PointerChaseKernel(0x100000, 300, 1<<20)
	r := newRig(t, DefaultConfig("c"), prog)
	r.run(t)
	s := r.core.Stats()
	if s.DHitRate > 0.6 {
		t.Fatalf("pointer chase D-hit rate %v too high", s.DHitRate)
	}
}

func TestComputeKernelLowTraffic(t *testing.T) {
	heavy := newRig(t, DefaultConfig("c"), StreamKernel(0x1000, 0x200000, 200, 64))
	heavy.run(t)
	light := newRig(t, DefaultConfig("c"), ComputeKernel(0x1000, 200))
	light.run(t)
	if light.core.Stats().Refills >= heavy.core.Stats().Refills {
		t.Fatalf("compute kernel refills (%d) should be far below stream kernel (%d)",
			light.core.Stats().Refills, heavy.core.Stats().Refills)
	}
}

func TestICacheMissesOnColdStart(t *testing.T) {
	r := newRig(t, DefaultConfig("c"), ComputeKernel(0x1000, 10))
	r.run(t)
	s := r.core.Stats()
	if s.IHitRate >= 1.0 {
		t.Fatal("cold start must take at least one I-cache miss")
	}
	if s.IHitRate < 0.5 {
		t.Fatalf("tight loop should mostly hit the I-cache, rate=%v", s.IHitRate)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() int64 {
		r := newRig(t, DefaultConfig("c"), StreamKernel(0x1000, 0x200000, 100, 16))
		r.run(t)
		return r.core.Stats().Cycles
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic execution: %d vs %d cycles", a, b)
	}
}

func TestProgramValidation(t *testing.T) {
	bad := []Program{
		{},
		{Bundles: []Bundle{{Instr{Kind: OpALU, Dst: 40}}}},
		{Bundles: []Bundle{{Instr{Kind: OpBranch, Imm: 5}}}},
	}
	clk := sim.NewKernel().NewClock("c", 400)
	for i, p := range bad {
		if _, err := New(DefaultConfig("c"), p, clk, &bus.IDSource{}, 0); err == nil {
			t.Errorf("program %d should be rejected", i)
		}
	}
}

func TestCacheConfigValidation(t *testing.T) {
	clk := sim.NewKernel().NewClock("c", 400)
	prog := ComputeKernel(0, 1)
	bad := []CacheConfig{
		{SizeBytes: 0, LineBytes: 32, Ways: 1},
		{SizeBytes: 1000, LineBytes: 32, Ways: 1},    // not divisible
		{SizeBytes: 1 << 10, LineBytes: 24, Ways: 1}, // line not pow2
		{SizeBytes: 96 * 32, LineBytes: 32, Ways: 1}, // sets not pow2
	}
	for i, cc := range bad {
		cfg := DefaultConfig("c")
		cfg.DCache = cc
		if _, err := New(cfg, prog, clk, &bus.IDSource{}, 0); err == nil {
			t.Errorf("cache config %d should be rejected", i)
		}
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNew(DefaultConfig("c"), Program{}, sim.NewKernel().NewClock("c", 400), &bus.IDSource{}, 0)
}

func TestOpKindString(t *testing.T) {
	for _, k := range []OpKind{OpNop, OpALU, OpLoad, OpStore, OpBranch, OpHalt, OpKind(99)} {
		if k.String() == "" {
			t.Fatal("empty op name")
		}
	}
}

func TestStatsString(t *testing.T) {
	r := newRig(t, DefaultConfig("c"), ComputeKernel(0x1000, 5))
	r.run(t)
	if r.core.Stats().String() == "" {
		t.Fatal("empty stats string")
	}
	var zero Stats
	if zero.CPI() != 0 {
		t.Fatal("zero stats CPI")
	}
}
