package dspcore

import (
	"testing"

	"mpsocsim/internal/bus"
	"mpsocsim/internal/mem"
	"mpsocsim/internal/sim"
	"mpsocsim/internal/stbus"
)

// BenchmarkISSThroughput measures simulated instructions per wall-clock
// second on a cache-friendly kernel.
func BenchmarkISSThroughput(b *testing.B) {
	k := sim.NewKernel()
	clk := k.NewClock("cpu", 400)
	core := MustNew(DefaultConfig("c"), ComputeKernel(0x1000, 1<<40), clk, &bus.IDSource{}, 0)
	node := stbus.NewNode("n", stbus.Config{Type: stbus.Type3, BytesPerBeat: 4}, bus.Single(0))
	m := mem.New("m", mem.DefaultConfig())
	node.AttachInitiator(core.Port())
	node.AttachTarget(m.Port())
	clk.Register(core)
	clk.Register(node)
	clk.Register(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Step()
	}
	b.StopTimer()
	if cy := core.Stats().Cycles; cy > 0 {
		b.ReportMetric(float64(core.Stats().Instrs)/float64(cy), "instr/cycle")
	}
}
