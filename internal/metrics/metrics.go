// Package metrics is the platform-wide telemetry layer: a registry of named
// counters, gauges and latency histograms that components register at build
// time, plus per-clock-domain ring-buffer samplers that turn gauges into
// cycle-stamped timelines. The paper's contribution is *measurement* — the
// interaction of the communication, memory and I/O subsystems is only
// visible when every arbiter, bridge, memory controller and cache exposes
// its cycle-level state — so the registry generalizes the one-off LMI
// bus-interface monitor onto every node of the platform.
//
// Design constraints, in priority order:
//
//  1. Zero allocations on the observation hot path. Counters and gauges are
//     plain int64 cells (or read-on-demand closures over component state);
//     histograms are stats.Histogram values registered by pointer; samplers
//     record into storage preallocated at registration. The PR-2 invariant
//     (TestZeroAllocSteadyState) holds with the full registry and samplers
//     attached.
//  2. Deterministic enumeration. Instruments snapshot in registration
//     order, and platform builds register components in a fixed order, so
//     two identical runs produce byte-identical reports.
//  3. Post-run export off the hot path. Snapshot() copies every instrument
//     into a plain, JSON-marshalable value; the exporters (JSON run report,
//     Chrome trace events, text tables) render from the snapshot.
package metrics

import (
	"fmt"

	"mpsocsim/internal/stats"
)

// Counter is a monotonically increasing count (grants, stall cycles,
// retries). A counter either owns its cell (written through Add/Inc on the
// hot path) or reads a component's existing field through a closure at
// snapshot time — the latter keeps already-instrumented hot paths untouched.
type Counter struct {
	name string
	v    int64
	fn   func() int64
}

// Name returns the instrument name.
func (c *Counter) Name() string { return c.name }

// Add increments the counter by d. Hot-path safe: no allocation, no lock (a
// platform is stepped from a single goroutine).
func (c *Counter) Add(d int64) { c.v += d }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v++ }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c.fn != nil {
		return c.fn()
	}
	return c.v
}

// Gauge is an instantaneous level (queue depth, outstanding occupancy,
// FIFO fill). Gauges carry the name of the clock domain they are meaningful
// in; a Sampler on that domain turns them into a timeline.
type Gauge struct {
	name  string
	clock string
	v     int64
	fn    func() int64
}

// Name returns the instrument name.
func (g *Gauge) Name() string { return g.name }

// Clock returns the clock-domain name the gauge belongs to.
func (g *Gauge) Clock() string { return g.clock }

// Set stores the current level. Hot-path safe.
func (g *Gauge) Set(v int64) { g.v = v }

// Value returns the current level.
func (g *Gauge) Value() int64 {
	if g.fn != nil {
		return g.fn()
	}
	return g.v
}

// Histogram is a registered latency distribution. The registry holds a
// pointer to the component's own stats.Histogram, so components keep their
// existing Add call sites and the registry adds no observation cost at all.
type Histogram struct {
	name string
	h    *stats.Histogram
}

// Name returns the instrument name.
func (h *Histogram) Name() string { return h.name }

// Registry holds every instrument of one platform instance. It is not safe
// for concurrent use; a platform is built and stepped from one goroutine.
type Registry struct {
	counters []*Counter
	gauges   []*Gauge
	hists    []*Histogram
	samplers []*Sampler
	names    map[string]struct{}
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: map[string]struct{}{}}
}

// claim panics on duplicate instrument names: two components registering the
// same name is a wiring bug that would silently merge unrelated series.
func (r *Registry) claim(name string) {
	if _, dup := r.names[name]; dup {
		panic(fmt.Sprintf("metrics: duplicate instrument %q", name))
	}
	r.names[name] = struct{}{}
}

// Counter registers and returns an owned counter.
func (r *Registry) Counter(name string) *Counter {
	r.claim(name)
	c := &Counter{name: name}
	r.counters = append(r.counters, c)
	return c
}

// CounterFunc registers a counter that reads fn at snapshot time — the
// zero-overhead way to expose a count the component already maintains.
func (r *Registry) CounterFunc(name string, fn func() int64) {
	r.claim(name)
	r.counters = append(r.counters, &Counter{name: name, fn: fn})
}

// Gauge registers and returns an owned gauge on the named clock domain.
func (r *Registry) Gauge(name, clock string) *Gauge {
	r.claim(name)
	g := &Gauge{name: name, clock: clock}
	r.gauges = append(r.gauges, g)
	return g
}

// GaugeFunc registers a gauge that reads fn when sampled or snapshot.
func (r *Registry) GaugeFunc(name, clock string, fn func() int64) {
	r.claim(name)
	r.gauges = append(r.gauges, &Gauge{name: name, clock: clock, fn: fn})
}

// Histogram registers an existing histogram under the given name.
func (r *Registry) Histogram(name string, h *stats.Histogram) {
	r.claim(name)
	r.hists = append(r.hists, &Histogram{name: name, h: h})
}

// Counters returns the registered counters in registration order.
func (r *Registry) Counters() []*Counter { return r.counters }

// Gauges returns the registered gauges in registration order.
func (r *Registry) Gauges() []*Gauge { return r.gauges }

// Samplers returns the attached samplers in attachment order.
func (r *Registry) Samplers() []*Sampler { return r.samplers }

// CounterValue is one counter's snapshot.
type CounterValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeValue is one gauge's final-level snapshot.
type GaugeValue struct {
	Name  string `json:"name"`
	Clock string `json:"clock"`
	Value int64  `json:"value"`
}

// HistogramValue is one histogram's snapshot: the summary statistics the
// reports print, plus a value copy of the histogram itself so later
// consumers can re-derive any quantile.
type HistogramValue struct {
	Name string  `json:"name"`
	N    int64   `json:"n"`
	Sum  int64   `json:"sum"`
	Mean float64 `json:"mean"`
	Min  int64   `json:"min"`
	Max  int64   `json:"max"`
	P50  int64   `json:"p50"`
	P90  int64   `json:"p90"`
	P99  int64   `json:"p99"`

	hist stats.Histogram
}

// Quantile re-derives an arbitrary quantile from the snapshot copy.
func (h *HistogramValue) Quantile(q float64) int64 { return h.hist.Quantile(q) }

// Snapshot is a point-in-time copy of every instrument, detached from the
// live components so it stays valid after the platform is gone.
type Snapshot struct {
	Counters   []CounterValue   `json:"counters"`
	Gauges     []GaugeValue     `json:"gauges"`
	Histograms []HistogramValue `json:"histograms"`
	Timelines  []Timeline       `json:"timelines,omitempty"`
}

// Snapshot copies the current value of every instrument and the contents of
// every sampler ring.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{
		Counters:   make([]CounterValue, 0, len(r.counters)),
		Gauges:     make([]GaugeValue, 0, len(r.gauges)),
		Histograms: make([]HistogramValue, 0, len(r.hists)),
	}
	for _, c := range r.counters {
		s.Counters = append(s.Counters, CounterValue{Name: c.name, Value: c.Value()})
	}
	for _, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugeValue{Name: g.name, Clock: g.clock, Value: g.Value()})
	}
	for _, h := range r.hists {
		s.Histograms = append(s.Histograms, HistogramValue{
			Name: h.name,
			N:    h.h.N(),
			Sum:  h.h.Sum(),
			Mean: h.h.Mean(),
			Min:  h.h.Min(),
			Max:  h.h.Max(),
			P50:  h.h.Quantile(0.5),
			P90:  h.h.Quantile(0.9),
			P99:  h.h.Quantile(0.99),
			hist: *h.h,
		})
	}
	for _, sp := range r.samplers {
		s.Timelines = append(s.Timelines, sp.timeline())
	}
	return s
}

// Counter returns the named counter's value, and whether it exists.
func (s *Snapshot) Counter(name string) (int64, bool) {
	for i := range s.Counters {
		if s.Counters[i].Name == name {
			return s.Counters[i].Value, true
		}
	}
	return 0, false
}

// MustCounter returns the named counter's value or panics — for report
// rendering paths where a missing instrument is a wiring bug.
func (s *Snapshot) MustCounter(name string) int64 {
	v, ok := s.Counter(name)
	if !ok {
		panic(fmt.Sprintf("metrics: snapshot has no counter %q", name))
	}
	return v
}

// Histogram returns the named histogram snapshot, or nil.
func (s *Snapshot) Histogram(name string) *HistogramValue {
	for i := range s.Histograms {
		if s.Histograms[i].Name == name {
			return &s.Histograms[i]
		}
	}
	return nil
}

// DiffCounters returns cur - prev for every counter that moved, preserving
// cur's order. The fast path assumes both slices enumerate the same
// instruments in the same order (registration order is fixed per Build);
// when the shapes differ — snapshots of different platforms — prev is
// matched by name and unmatched counters diff against zero. The telemetry
// layer derives counter rates from consecutive snapshots with it, and the
// stall forensics use it to show what still moved in the last watchdog
// window.
func DiffCounters(cur, prev []CounterValue) []CounterValue {
	aligned := len(cur) == len(prev)
	if aligned {
		for i := range cur {
			if cur[i].Name != prev[i].Name {
				aligned = false
				break
			}
		}
	}
	var byName map[string]int64
	if !aligned {
		byName = make(map[string]int64, len(prev))
		for _, p := range prev {
			byName[p.Name] = p.Value
		}
	}
	var out []CounterValue
	for i := range cur {
		var base int64
		if aligned {
			base = prev[i].Value
		} else {
			base = byName[cur[i].Name]
		}
		if d := cur[i].Value - base; d != 0 {
			out = append(out, CounterValue{Name: cur[i].Name, Value: d})
		}
	}
	return out
}

// DeltaCounters returns the counters that moved between prev and s (s -
// prev), in s's enumeration order.
func (s *Snapshot) DeltaCounters(prev *Snapshot) []CounterValue {
	return DiffCounters(s.Counters, prev.Counters)
}

// Gauge returns the named gauge's final level, and whether it exists.
func (s *Snapshot) Gauge(name string) (int64, bool) {
	for i := range s.Gauges {
		if s.Gauges[i].Name == name {
			return s.Gauges[i].Value, true
		}
	}
	return 0, false
}
