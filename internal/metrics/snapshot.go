package metrics

import "mpsocsim/internal/snapshot"

// EncodeState serializes the sampler's mutable state (DESIGN.md §16): the
// self-clocked counters and the ring contents, re-packed oldest-first so the
// byte stream is independent of where the head happened to sit. Gauge values
// themselves are live reads of component counters — those are restored by the
// components — so only the recorded rows travel. The clock name, track count
// and ring capacity guard shape.
func (s *Sampler) EncodeState(e *snapshot.Encoder) {
	e.Tag('Z')
	e.Str(s.clock)
	e.U(uint64(len(s.gauges)))
	e.U(uint64(s.cap))
	e.I(s.cycle)
	e.I(s.next)
	e.I(s.n)
	kept := int(s.n)
	start := 0
	if kept > s.cap {
		kept = s.cap
		start = s.head // oldest surviving row
	}
	e.U(uint64(kept))
	nt := len(s.gauges)
	for i := 0; i < kept; i++ {
		slot := (start + i) % s.cap
		e.I(s.times[slot])
		for _, v := range s.vals[slot*nt : (slot+1)*nt] {
			e.I(v)
		}
	}
}

// DecodeState restores a sampler serialized by EncodeState. Rows are placed
// from slot 0 with the head advanced past them, which reproduces the exported
// timeline exactly (it only depends on logical order, not physical layout).
func (s *Sampler) DecodeState(d *snapshot.Decoder) {
	d.Tag('Z')
	clock := d.Str()
	nt := d.N(1 << 16)
	rcap := d.N(1 << 24)
	if d.Err() != nil {
		return
	}
	if clock != s.clock || nt != len(s.gauges) || rcap != s.cap {
		d.Corrupt("sampler %q/%d tracks/cap %d does not match platform's %q/%d/%d",
			clock, nt, rcap, s.clock, len(s.gauges), s.cap)
		return
	}
	s.cycle = d.I()
	s.next = d.I()
	s.n = d.I()
	kept := d.N(s.cap)
	if d.Err() != nil {
		return
	}
	for i := range s.times {
		s.times[i] = 0
	}
	for i := range s.vals {
		s.vals[i] = 0
	}
	for i := 0; i < kept; i++ {
		s.times[i] = d.I()
		for j := 0; j < nt; j++ {
			s.vals[i*nt+j] = d.I()
		}
		if d.Err() != nil {
			return
		}
	}
	s.head = kept % s.cap
}
