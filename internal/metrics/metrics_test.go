package metrics

import (
	"testing"

	"mpsocsim/internal/stats"
)

func TestCounterOwnedAndFunc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.grants")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("owned counter = %d, want 5", got)
	}
	var backing int64 = 7
	r.CounterFunc("a.stalls", func() int64 { return backing })
	snap := r.Snapshot()
	if v := snap.MustCounter("a.grants"); v != 5 {
		t.Fatalf("snapshot grants = %d, want 5", v)
	}
	if v := snap.MustCounter("a.stalls"); v != 7 {
		t.Fatalf("snapshot stalls = %d, want 7", v)
	}
	// The snapshot is detached: later component changes don't leak in.
	backing = 100
	if v := snap.MustCounter("a.stalls"); v != 7 {
		t.Fatalf("snapshot not detached: stalls = %d, want 7", v)
	}
}

func TestDuplicateNamePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Gauge("x", "central")
}

func TestHistogramSnapshotQuantiles(t *testing.T) {
	var h stats.Histogram
	for v := int64(1); v <= 1000; v++ {
		h.Add(v)
	}
	r := NewRegistry()
	r.Histogram("lat", &h)
	snap := r.Snapshot()
	hv := snap.Histogram("lat")
	if hv == nil {
		t.Fatal("histogram missing from snapshot")
	}
	if hv.N != 1000 || hv.Min != 1 || hv.Max != 1000 {
		t.Fatalf("summary = {N:%d Min:%d Max:%d}, want {1000 1 1000}", hv.N, hv.Min, hv.Max)
	}
	if hv.P50 != h.Quantile(0.5) || hv.P90 != h.Quantile(0.9) {
		t.Fatal("snapshot quantiles disagree with source histogram")
	}
	// Arbitrary quantiles re-derive from the embedded copy.
	if got, want := hv.Quantile(0.99), h.Quantile(0.99); got != want {
		t.Fatalf("Quantile(0.99) = %d, want %d", got, want)
	}
}

func TestSamplerRecordsAndWraps(t *testing.T) {
	r := NewRegistry()
	var level int64
	r.GaugeFunc("q.depth", "clk", func() int64 { return level })
	r.GaugeFunc("other.domain", "elsewhere", func() int64 { return 99 })
	s := r.NewSampler("clk", 4000, 10, 4)
	if s.Tracks() != 1 {
		t.Fatalf("sampler tracks = %d, want 1 (gauge filtering by clock)", s.Tracks())
	}
	// 100 cycles at every=10 -> 10 samples into a 4-slot ring: 6 dropped,
	// slots hold cycles 70..100.
	for c := int64(1); c <= 100; c++ {
		level = c
		s.Eval()
		s.Update()
	}
	tl := r.Snapshot().Timelines[0]
	if tl.Clock != "clk" || tl.PeriodPS != 4000 || tl.Every != 10 {
		t.Fatalf("timeline header = %+v", tl)
	}
	if tl.Dropped != 6 {
		t.Fatalf("dropped = %d, want 6", tl.Dropped)
	}
	wantCycles := []int64{70, 80, 90, 100}
	if len(tl.Cycles) != len(wantCycles) {
		t.Fatalf("kept %d samples, want %d", len(tl.Cycles), len(wantCycles))
	}
	for i, want := range wantCycles {
		if tl.Cycles[i] != want {
			t.Fatalf("cycle[%d] = %d, want %d", i, tl.Cycles[i], want)
		}
		if tl.Values[i][0] != want {
			t.Fatalf("value[%d] = %d, want %d (gauge read at sample time)", i, tl.Values[i][0], want)
		}
	}
}

func TestSamplerNoAllocSteadyState(t *testing.T) {
	r := NewRegistry()
	var level int64
	for i := 0; i < 8; i++ {
		name := string(rune('a'+i)) + ".depth"
		r.GaugeFunc(name, "clk", func() int64 { return level })
	}
	s := r.NewSampler("clk", 4000, 1, 16) // sample every cycle, wrap fast
	for i := 0; i < 100; i++ {
		s.Eval()
	}
	allocs := testing.AllocsPerRun(1000, func() {
		level++
		s.Eval()
	})
	if allocs != 0 {
		t.Fatalf("sampler Eval allocates: %.2f allocs/cycle (want 0)", allocs)
	}
}

func TestDiffCountersAligned(t *testing.T) {
	prev := []CounterValue{{Name: "a", Value: 10}, {Name: "b", Value: 20}, {Name: "c", Value: 5}}
	cur := []CounterValue{{Name: "a", Value: 10}, {Name: "b", Value: 27}, {Name: "c", Value: 6}}
	got := DiffCounters(cur, prev)
	if len(got) != 2 {
		t.Fatalf("got %d deltas, want 2 (unchanged counters dropped)", len(got))
	}
	if got[0].Name != "b" || got[0].Value != 7 || got[1].Name != "c" || got[1].Value != 1 {
		t.Fatalf("deltas = %+v", got)
	}
}

func TestDiffCountersMisaligned(t *testing.T) {
	// prev is shorter and differently ordered: the name-map fallback must
	// treat missing baselines as zero and still emit deltas in cur order.
	prev := []CounterValue{{Name: "b", Value: 20}}
	cur := []CounterValue{{Name: "a", Value: 3}, {Name: "b", Value: 20}, {Name: "c", Value: 4}}
	got := DiffCounters(cur, prev)
	if len(got) != 2 {
		t.Fatalf("got %d deltas, want 2", len(got))
	}
	if got[0].Name != "a" || got[0].Value != 3 || got[1].Name != "c" || got[1].Value != 4 {
		t.Fatalf("deltas = %+v", got)
	}
}

func TestSnapshotDeltaCounters(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("grants")
	c.Add(5)
	before := r.Snapshot()
	c.Add(3)
	got := r.Snapshot().DeltaCounters(before)
	if len(got) != 1 || got[0].Name != "grants" || got[0].Value != 3 {
		t.Fatalf("delta = %+v", got)
	}
}
