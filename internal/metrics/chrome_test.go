package metrics

import (
	"bytes"
	"encoding/json"
	"testing"

	"mpsocsim/internal/bus"
	"mpsocsim/internal/tracecap"
)

// buildTestTrace records a tiny two-initiator trace through the real capture
// path so the exporter is tested against genuine probe output.
func buildTestTrace() *tracecap.Trace {
	c := tracecap.NewCapture("test", 0)
	fast := c.Probe("ip_fast", 4000) // 250 MHz
	slow := c.Probe("ip_slow", 5000) // 200 MHz
	reqs := []*bus.Request{
		{ID: 1, Op: bus.OpRead, Addr: 0x1000, Beats: 4, IssueCycle: 10},
		{ID: 2, Op: bus.OpWrite, Addr: 0x2000, Beats: 2, IssueCycle: 12, Posted: true},
		{ID: 3, Op: bus.OpRead, Addr: 0x3000, Beats: 8, IssueCycle: 5},
	}
	fast.RequestIssued(reqs[0])
	fast.RequestIssued(reqs[1])
	slow.RequestIssued(reqs[2])
	fast.RequestCompleted(reqs[0], 30)
	slow.RequestCompleted(reqs[2], 41)
	return c.Trace()
}

func TestWriteChromeTraceShape(t *testing.T) {
	r := NewRegistry()
	var depth int64
	r.GaugeFunc("lmi.queue_depth", "central", func() int64 { return depth })
	s := r.NewSampler("central", 4000, 2, 64)
	for i := 0; i < 20; i++ {
		depth = int64(i % 5)
		s.Eval()
	}
	snap := r.Snapshot()

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, buildTestTrace(), snap, nil); err != nil {
		t.Fatal(err)
	}

	// The output must be valid JSON in the trace-event object format.
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}

	var nX, nC, nM int
	lastTs := -1.0
	threadNames := map[int]string{}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			nM++
			if ev.Name == "thread_name" {
				threadNames[ev.Tid] = ev.Args["name"].(string)
			}
		case "X":
			nX++
			if ev.Pid != chromePidInitiators {
				t.Fatalf("X event on pid %d, want %d", ev.Pid, chromePidInitiators)
			}
			if ev.Ts < lastTs {
				t.Fatalf("timestamps not monotonic: %v after %v", ev.Ts, lastTs)
			}
			lastTs = ev.Ts
		case "C":
			nC++
			if ev.Pid != chromePidCounters {
				t.Fatalf("C event on pid %d, want %d", ev.Pid, chromePidCounters)
			}
			if ev.Ts < lastTs {
				t.Fatalf("timestamps not monotonic: %v after %v", ev.Ts, lastTs)
			}
			lastTs = ev.Ts
		default:
			t.Fatalf("unexpected event phase %q", ev.Ph)
		}
	}
	if nX != 3 {
		t.Fatalf("duration events = %d, want 3 (one per recorded transaction)", nX)
	}
	if nC != 10 {
		t.Fatalf("counter events = %d, want 10 (20 cycles sampled every 2)", nC)
	}
	if threadNames[1] != "ip_fast" || threadNames[2] != "ip_slow" {
		t.Fatalf("tid mapping = %v, want 1:ip_fast 2:ip_slow", threadNames)
	}

	// Cross-domain time conversion: ip_slow's read issued at cycle 5 of a
	// 5000 ps clock lands at 25000 ps = 0.025 us, before ip_fast's cycle-10
	// issue at 40000 ps.
	var sawSlowRead bool
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && ev.Args["addr"] == "0x3000" {
			sawSlowRead = true
			if ev.Ts != 0.025 {
				t.Fatalf("slow read ts = %v us, want 0.025", ev.Ts)
			}
			if ev.Dur != 0.18 { // latency 41-5=36 cycles * 5000 ps
				t.Fatalf("slow read dur = %v us, want 0.18", ev.Dur)
			}
		}
	}
	if !sawSlowRead {
		t.Fatal("slow-domain read missing from trace")
	}
}

func TestWriteChromeTraceNilInputs(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil, nil, nil); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("empty trace is not valid JSON: %v", err)
	}
	if _, ok := doc["traceEvents"]; !ok {
		t.Fatal("traceEvents key missing")
	}
}
