package metrics

// Sampler records the level of every gauge of one clock domain into a
// preallocated ring, producing the cycle-stamped timelines behind the
// Chrome-trace counter tracks and the JSON report's series. No allocation
// ever happens after construction — once the ring is full the oldest
// samples are overwritten (and counted in Dropped) rather than the storage
// regrown.
//
// A sampler is passive: something must call Sample (or the self-clocked
// Eval) to record a row. Driving many samplers from one shared trigger is
// deliberately cheap — per-cycle cost lives in the trigger (one decrement
// and one branch), not in per-sampler clock registrations, whose interface
// dispatch on every domain edge measurably slows the kernel's hot loop.
type Sampler struct {
	clock    string
	periodPS int64
	every    int64
	cap      int

	gauges []*Gauge

	cycle int64
	next  int64 // next self-clocked sample cycle (Eval path)
	n     int64 // total samples taken (may exceed cap)
	head  int   // next ring slot to write
	times []int64
	vals  []int64 // cap rows of len(gauges), row-major
}

// DefaultSampleEvery is the default sampling window in cycles: fine enough
// to resolve the paper's Fig.6 working regimes (whose phase window is 2000
// cycles), coarse enough that sampling cost is invisible.
const DefaultSampleEvery = 256

// DefaultSampleCap is the default ring capacity in samples per domain.
const DefaultSampleCap = 4096

// NewSampler attaches a sampler for the named clock domain: it records every
// gauge registered with that clock name. every is the sampling window in
// driving-clock cycles; capSamples bounds the ring (both fall back to the
// package defaults when <= 0). The sampler must be created after all gauges
// of the domain are registered, then driven either by an external trigger
// calling Sample or by registering it on a clock (Eval samples every
// `every` of its own calls).
func (r *Registry) NewSampler(clock string, periodPS, every int64, capSamples int) *Sampler {
	if every <= 0 {
		every = DefaultSampleEvery
	}
	if capSamples <= 0 {
		capSamples = DefaultSampleCap
	}
	s := &Sampler{clock: clock, periodPS: periodPS, every: every, cap: capSamples, next: every}
	for _, g := range r.gauges {
		if g.clock == clock {
			s.gauges = append(s.gauges, g)
		}
	}
	s.times = make([]int64, capSamples)
	s.vals = make([]int64, capSamples*len(s.gauges))
	r.samplers = append(r.samplers, s)
	return s
}

// Tracks returns the number of gauges the sampler records.
func (s *Sampler) Tracks() int { return len(s.gauges) }

// Clock returns the name of the clock domain the sampler records.
func (s *Sampler) Clock() string { return s.clock }

// Dropped returns the number of samples overwritten after the ring filled
// (zero while the ring still has room). A non-zero value means the exported
// timeline covers only the tail of the run — callers should either raise the
// ring capacity or widen the sampling window.
func (s *Sampler) Dropped() int64 {
	if s.n > int64(s.cap) {
		return s.n - int64(s.cap)
	}
	return 0
}

// Eval advances the self-clocked cycle count and records one sample at each
// window boundary (a comparison, not a modulo — this runs every cycle when
// the sampler is clock-registered). Zero allocations: the ring storage is
// preallocated.
func (s *Sampler) Eval() {
	s.cycle++
	if s.cycle != s.next {
		return
	}
	s.next += s.every
	s.Sample(s.cycle)
}

// Update is a no-op; the sampler owns no two-phase state.
func (s *Sampler) Update() {}

// Sample records one row stamped with the given domain-cycle count. Called
// by an external trigger (one per platform, not per domain) or by Eval.
// Zero allocations.
func (s *Sampler) Sample(cycle int64) {
	s.times[s.head] = cycle
	base := s.head * len(s.gauges)
	for i, g := range s.gauges {
		s.vals[base+i] = g.Value()
	}
	s.head++
	if s.head == s.cap {
		s.head = 0
	}
	s.n++
}

// Timeline is the exported contents of one sampler ring: parallel tracks of
// gauge levels sampled on a common cycle axis of one clock domain.
type Timeline struct {
	Clock    string   `json:"clock"`
	PeriodPS int64    `json:"period_ps"`
	Every    int64    `json:"every_cycles"`
	Tracks   []string `json:"tracks"`
	// Cycles holds the sample timestamps in domain cycles, oldest first.
	Cycles []int64 `json:"cycles"`
	// Values holds one row per sample, one column per track.
	Values [][]int64 `json:"values"`
	// Dropped counts samples overwritten after the ring filled.
	Dropped int64 `json:"dropped,omitempty"`
}

// timeline copies the ring contents in chronological order.
func (s *Sampler) timeline() Timeline {
	tl := Timeline{
		Clock:    s.clock,
		PeriodPS: s.periodPS,
		Every:    s.every,
		Tracks:   make([]string, len(s.gauges)),
	}
	for i, g := range s.gauges {
		tl.Tracks[i] = g.name
	}
	kept := int(s.n)
	if kept > s.cap {
		kept = s.cap
		tl.Dropped = s.n - int64(s.cap)
	}
	tl.Cycles = make([]int64, kept)
	tl.Values = make([][]int64, kept)
	start := 0
	if s.n > int64(s.cap) {
		start = s.head // oldest surviving sample
	}
	nt := len(s.gauges)
	for i := 0; i < kept; i++ {
		slot := (start + i) % s.cap
		tl.Cycles[i] = s.times[slot]
		row := make([]int64, nt)
		copy(row, s.vals[slot*nt:(slot+1)*nt])
		tl.Values[i] = row
	}
	return tl
}
