package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"mpsocsim/internal/bus"
	"mpsocsim/internal/tracecap"
)

// Chrome trace-event export: renders a captured transaction trace (duration
// events — one slice per transaction lifecycle, one thread row per
// initiator) together with the registry's sampled timelines (counter tracks
// — one per gauge) into the Chrome trace-event JSON format, loadable in
// ui.perfetto.dev or chrome://tracing. Every clock domain's cycles are
// converted to a shared picosecond axis through its period, then to the
// trace format's microsecond unit, so cross-domain causality (an initiator
// burst inflating the LMI queue two domains away) lines up visually.

// Trace-event pids: one synthetic "process" per event family keeps the
// Perfetto track groups tidy.
const (
	chromePidInitiators = 1
	chromePidCounters   = 2
)

// chromeEvent is one trace event. Field presence follows the trace-event
// format spec: "X" (complete) events carry dur; "C" (counter) and "M"
// (metadata) events don't.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// psToUS converts picoseconds to the trace format's microseconds.
func psToUS(ps int64) float64 { return float64(ps) / 1e6 }

// WriteChromeTrace renders tr and snap into Chrome trace-event JSON. Either
// argument may be nil: a nil trace omits the lifecycle slices, a nil
// snapshot (or one without timelines) omits the counter tracks. Events are
// emitted sorted by timestamp (metadata first), which both viewers accept
// and which makes the output deterministic and easy to assert on.
func WriteChromeTrace(w io.Writer, tr *tracecap.Trace, snap *Snapshot) error {
	var events []chromeEvent
	meta := func(pid, tid int, kind, name string) {
		events = append(events, chromeEvent{
			Name: kind, Ph: "M", Pid: pid, Tid: tid,
			Args: map[string]any{"name": name},
		})
	}
	meta(chromePidInitiators, 0, "process_name", "initiators")
	meta(chromePidCounters, 0, "process_name", "metrics")

	var body []chromeEvent
	if tr != nil {
		for i, s := range tr.Streams {
			tid := i + 1
			meta(chromePidInitiators, tid, "thread_name", s.Name)
			for j := range s.Events {
				ev := &s.Events[j]
				lat := ev.Latency
				if lat < 0 {
					lat = 0 // still in flight at capture stop: zero-width marker
				}
				name := "read"
				if ev.Op == bus.OpWrite {
					name = "write"
					if ev.Posted {
						name = "posted-write"
					}
				}
				body = append(body, chromeEvent{
					Name: name,
					Ph:   "X",
					Ts:   psToUS(ev.IssueCycle * s.PeriodPS),
					Dur:  psToUS(lat * s.PeriodPS),
					Pid:  chromePidInitiators,
					Tid:  tid,
					Args: map[string]any{
						"addr":  fmt.Sprintf("%#x", ev.Addr),
						"beats": ev.Beats,
						"prio":  ev.Prio,
					},
				})
			}
		}
	}
	if snap != nil {
		for _, tl := range snap.Timelines {
			for ti, track := range tl.Tracks {
				for si, cyc := range tl.Cycles {
					body = append(body, chromeEvent{
						Name: track,
						Ph:   "C",
						Ts:   psToUS(cyc * tl.PeriodPS),
						Pid:  chromePidCounters,
						Tid:  0,
						Args: map[string]any{"value": tl.Values[si][ti]},
					})
				}
			}
		}
	}
	sort.SliceStable(body, func(i, j int) bool { return body[i].Ts < body[j].Ts })
	events = append(events, body...)

	out := struct {
		DisplayTimeUnit string        `json:"displayTimeUnit"`
		TraceEvents     []chromeEvent `json:"traceEvents"`
	}{DisplayTimeUnit: "ms", TraceEvents: events}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
