package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"mpsocsim/internal/attr"
	"mpsocsim/internal/bus"
	"mpsocsim/internal/tracecap"
)

// Chrome trace-event export: renders a captured transaction trace (duration
// events — one slice per transaction lifecycle, one thread row per
// initiator) together with the registry's sampled timelines (counter tracks
// — one per gauge) into the Chrome trace-event JSON format, loadable in
// ui.perfetto.dev or chrome://tracing. Every clock domain's cycles are
// converted to a shared picosecond axis through its period, then to the
// trace format's microsecond unit, so cross-domain causality (an initiator
// burst inflating the LMI queue two domains away) lines up visually.

// Trace-event pids: one synthetic "process" per event family keeps the
// Perfetto track groups tidy.
const (
	chromePidInitiators = 1
	chromePidCounters   = 2
)

// chromeEvent is one trace event. Field presence follows the trace-event
// format spec: "X" (complete) events carry dur; "C" (counter) and "M"
// (metadata) events don't.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// psToUS converts picoseconds to the trace format's microseconds.
func psToUS(ps int64) float64 { return float64(ps) / 1e6 }

// WriteChromeTrace renders tr and snap into Chrome trace-event JSON. Any
// argument may be nil: a nil trace omits the lifecycle slices, a nil
// snapshot (or one without timelines) omits the counter tracks, and a nil
// attribution collector omits the phase sub-slices. Events are emitted
// sorted by timestamp (metadata first), which both viewers accept and which
// makes the output deterministic and easy to assert on.
//
// When att carries retained transactions (attr.Collector.EnableRetention),
// each one is matched to its capture lifecycle slice — same initiator name,
// same issue cycle — and rendered as nested "X" sub-slices, one per
// attribution phase, exactly tiling the parent: a per-transaction waterfall
// of where the latency went. Retained transactions without a capture stream
// (e.g. the DSP core, which is not captured) are skipped.
func WriteChromeTrace(w io.Writer, tr *tracecap.Trace, snap *Snapshot, att *attr.Collector) error {
	var events []chromeEvent
	meta := func(pid, tid int, kind, name string) {
		events = append(events, chromeEvent{
			Name: kind, Ph: "M", Pid: pid, Tid: tid,
			Args: map[string]any{"name": name},
		})
	}
	meta(chromePidInitiators, 0, "process_name", "initiators")
	meta(chromePidCounters, 0, "process_name", "metrics")

	// Index the retained attribution records by initiator name; each stream
	// below re-indexes its slice by issue cycle (the record's start is the
	// edge after the issue cycle, so StartPS/period-1 recovers the cycle the
	// capture stamped).
	var retByName map[string][]*attr.RetainedTx
	if att != nil {
		txs := att.Retained()
		if len(txs) > 0 {
			retByName = make(map[string][]*attr.RetainedTx)
			for i := range txs {
				tx := &txs[i]
				name := att.InitiatorName(tx.Origin)
				retByName[name] = append(retByName[name], tx)
			}
		}
	}

	var body []chromeEvent
	if tr != nil {
		for i, s := range tr.Streams {
			tid := i + 1
			meta(chromePidInitiators, tid, "thread_name", s.Name)
			var retByCycle map[int64]*attr.RetainedTx
			if list := retByName[s.Name]; len(list) > 0 && s.PeriodPS > 0 {
				retByCycle = make(map[int64]*attr.RetainedTx, len(list))
				for _, tx := range list {
					retByCycle[tx.StartPS/s.PeriodPS-1] = tx
				}
			}
			for j := range s.Events {
				ev := &s.Events[j]
				lat := ev.Latency
				if lat < 0 {
					lat = 0 // still in flight at capture stop: zero-width marker
				}
				name := "read"
				if ev.Op == bus.OpWrite {
					name = "write"
					if ev.Posted {
						name = "posted-write"
					}
				}
				parentTS := ev.IssueCycle * s.PeriodPS
				body = append(body, chromeEvent{
					Name: name,
					Ph:   "X",
					Ts:   psToUS(parentTS),
					Dur:  psToUS(lat * s.PeriodPS),
					Pid:  chromePidInitiators,
					Tid:  tid,
					Args: map[string]any{
						"addr":  fmt.Sprintf("%#x", ev.Addr),
						"beats": ev.Beats,
						"prio":  ev.Prio,
					},
				})
				tx := retByCycle[ev.IssueCycle]
				if tx == nil || lat <= 0 {
					continue
				}
				// Phase sub-slices, shifted so the first starts exactly at
				// the parent's Ts (the record's axis begins one initiator
				// period after the issue cycle's timestamp); the segments
				// telescope, so they tile the parent without gaps. The
				// stable sort below keeps the parent (appended first) ahead
				// of its equal-Ts first child, which the viewers require
				// for nesting.
				for k := 0; k < tx.N; k++ {
					segStart := tx.Starts[k]
					segEnd := tx.EndPS
					if k+1 < tx.N {
						segEnd = tx.Starts[k+1]
					}
					if segEnd <= segStart {
						continue
					}
					body = append(body, chromeEvent{
						Name: tx.Phases[k].String(),
						Ph:   "X",
						Ts:   psToUS(parentTS + (segStart - tx.StartPS)),
						Dur:  psToUS(segEnd - segStart),
						Pid:  chromePidInitiators,
						Tid:  tid,
					})
				}
			}
		}
	}
	if snap != nil {
		for _, tl := range snap.Timelines {
			for ti, track := range tl.Tracks {
				for si, cyc := range tl.Cycles {
					body = append(body, chromeEvent{
						Name: track,
						Ph:   "C",
						Ts:   psToUS(cyc * tl.PeriodPS),
						Pid:  chromePidCounters,
						Tid:  0,
						Args: map[string]any{"value": tl.Values[si][ti]},
					})
				}
			}
		}
	}
	sort.SliceStable(body, func(i, j int) bool { return body[i].Ts < body[j].Ts })
	events = append(events, body...)

	out := struct {
		DisplayTimeUnit string        `json:"displayTimeUnit"`
		TraceEvents     []chromeEvent `json:"traceEvents"`
	}{DisplayTimeUnit: "ms", TraceEvents: events}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
