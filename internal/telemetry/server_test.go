package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"
)

// promLine matches one Prometheus text-exposition sample line.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9]+(\.[0-9]+)?$`)

func TestServerMetricsExposition(t *testing.T) {
	col, ctr, a, _ := testCollector(8)
	srv := httptest.NewServer(NewServer(col).Handler())
	defer srv.Close()

	// Before any snapshot: a comment-only body, still valid exposition.
	body := httpGet(t, srv.URL+"/metrics")
	if !strings.Contains(body, "# no snapshot") {
		t.Fatalf("empty-collector exposition: %q", body)
	}

	ctr.Add(42)
	a.issued, a.completed = 9, 5
	col.Collect(1000, 4_000_000)

	body = httpGet(t, srv.URL+"/metrics")
	for _, want := range []string{
		"mpsocsim_sim_cycle 1000",
		"mpsocsim_sim_time_ps 4000000",
		"mpsocsim_issued_total 9",
		"mpsocsim_completed_total 5",
		`mpsocsim_initiator_outstanding{initiator="video"} 4`,
		`mpsocsim_counter{name="grants"} 42`,
		`mpsocsim_gauge{name="queue.depth",clock="central"} 3`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q:\n%s", want, body)
		}
	}
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("unparsable exposition line: %q", line)
		}
	}
}

func TestServerProgressDocument(t *testing.T) {
	col, _, a, _ := testCollector(8)
	col.SetBudgetPS(8_000_000)
	col.SetShards(2)
	col.AddWindow()
	srv := httptest.NewServer(NewServer(col).Handler())
	defer srv.Close()

	a.issued, a.completed = 3, 1
	col.Collect(500, 2_000_000)
	col.Collect(1000, 4_000_000)

	var p Progress
	if err := json.Unmarshal([]byte(httpGet(t, srv.URL+"/progress")), &p); err != nil {
		t.Fatal(err)
	}
	if p.Schema != ProgressSchema {
		t.Fatalf("schema = %q", p.Schema)
	}
	if p.Cycle != 1000 || p.TimePS != 4_000_000 || p.Done {
		t.Fatalf("position = cycle %d, %d ps, done=%v", p.Cycle, p.TimePS, p.Done)
	}
	if p.BudgetFrac != 0.5 {
		t.Fatalf("budget frac = %v, want 0.5", p.BudgetFrac)
	}
	if p.Shards != 2 || len(p.ShardWindows) != 2 || p.ShardWindows[0] != 1 {
		t.Fatalf("shards=%d windows=%v", p.Shards, p.ShardWindows)
	}
	if len(p.Initiators) != 2 || p.Initiators[0].Outstanding != 2 {
		t.Fatalf("initiators = %+v", p.Initiators)
	}

	col.Finish()
	if err := json.Unmarshal([]byte(httpGet(t, srv.URL+"/progress")), &p); err != nil {
		t.Fatal(err)
	}
	if !p.Done {
		t.Fatal("progress does not report done after Finish")
	}
}

// TestServerEventsStream exercises the SSE endpoint end to end: records
// already in the ring are replayed, then the done event terminates the
// stream once Finish lands.
func TestServerEventsStream(t *testing.T) {
	col, _, _, _ := testCollector(8)
	col.Collect(10, 40_000)
	col.Collect(20, 80_000)
	srv := httptest.NewServer(NewServer(col).Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	go func() {
		time.Sleep(50 * time.Millisecond)
		col.Collect(30, 120_000)
		col.Finish()
	}()

	var dataLines []string
	var sawDone bool
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "data: {\"schema\"") {
			dataLines = append(dataLines, strings.TrimPrefix(line, "data: "))
		}
		if line == "event: done" {
			sawDone = true
			break
		}
	}
	if !sawDone {
		t.Fatalf("stream ended without done event (scan err %v)", sc.Err())
	}
	if len(dataLines) != 3 {
		t.Fatalf("received %d records over SSE, want 3", len(dataLines))
	}
	for i, line := range dataLines {
		var rec Record
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if rec.Seq != int64(i) {
			t.Fatalf("event %d has seq %d", i, rec.Seq)
		}
	}
}

func TestHubAggregation(t *testing.T) {
	hub := NewHub()
	if line := hub.Line(); line != "" {
		t.Fatalf("empty hub renders %q", line)
	}

	j1 := hub.Job("fig5/ddr", 1_000_000)
	j2 := hub.Job("fig5/lmi", 1_000_000)
	j1.Publish(100, 400_000)
	j2.Publish(50, 200_000)

	doc := hub.Doc()
	if doc.Schema != HubSchema || doc.Total != 2 || doc.Running != 2 {
		t.Fatalf("doc = %+v", doc)
	}
	// Jobs sort by name.
	if doc.Jobs[0].Name != "fig5/ddr" || doc.Jobs[1].Name != "fig5/lmi" {
		t.Fatalf("job order = %s, %s", doc.Jobs[0].Name, doc.Jobs[1].Name)
	}
	if doc.Jobs[0].BudgetFrac != 0.4 {
		t.Fatalf("budget frac = %v", doc.Jobs[0].BudgetFrac)
	}

	if line := hub.Line(); !strings.Contains(line, "2 running") {
		t.Fatalf("line = %q", line)
	}

	j1.Finish()
	j2.Finish()
	doc = hub.Doc()
	if doc.Running != 0 || !doc.Jobs[0].Done {
		t.Fatalf("after finish: %+v", doc)
	}
	if line := hub.Line(); line != "" {
		t.Fatalf("all-done hub renders %q", line)
	}
}

func TestHubHandler(t *testing.T) {
	hub := NewHub()
	hub.Job("io/stbus3", 500_000).Publish(10, 40_000)
	srv := httptest.NewServer(hub.Handler())
	defer srv.Close()

	var doc HubProgress
	if err := json.Unmarshal([]byte(httpGet(t, srv.URL+"/progress")), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema != HubSchema || len(doc.Jobs) != 1 || doc.Jobs[0].Cycle != 10 {
		t.Fatalf("doc = %+v", doc)
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}
