package telemetry

import (
	"fmt"
	"io"
	"sort"

	"mpsocsim/internal/bus"
	"mpsocsim/internal/metrics"
	"mpsocsim/internal/stats"
)

// PortTracker is the always-on run-health probe on one initiator port: a
// preallocated in-flight table keyed by request ID, plus the last cycle the
// initiator issued or completed anything. It implements bus.PortProbe and is
// passive and allocation-free, so attaching one to every port (platform
// Build does) costs nothing observable. On a wedged run the trackers answer
// the two forensic questions the watchdog cannot: which transactions have
// been in flight the longest, and when each clock domain last made progress.
//
// Posted writes are recorded for last-issue tracking but not entered into
// the in-flight table: they complete at issue (the fabric acks them at
// acceptance) and never produce a RequestCompleted call.
type PortTracker struct {
	name  string
	clock string

	ids []uint64
	iss []int64 // issue instants, absolute picoseconds
	n   int
	// overflow counts issues dropped because the table was full (only
	// possible if an initiator exceeds its declared MaxConcurrent bound).
	overflow int64

	lastIssueCycle    int64
	lastCompleteCycle int64
}

// NewPortTracker builds a tracker for the named initiator in the named clock
// domain, with table capacity cap (clamped to >= 4).
func NewPortTracker(name, clock string, cap int) *PortTracker {
	if cap < 4 {
		cap = 4
	}
	return &PortTracker{
		name: name, clock: clock,
		ids: make([]uint64, cap), iss: make([]int64, cap),
		lastIssueCycle: -1, lastCompleteCycle: -1,
	}
}

// Name returns the tracked initiator's name.
func (t *PortTracker) Name() string { return t.name }

// Clock returns the initiator's clock-domain name.
func (t *PortTracker) Clock() string { return t.clock }

// RequestIssued implements bus.PortProbe. Allocation-free.
func (t *PortTracker) RequestIssued(r *bus.Request) {
	t.lastIssueCycle = r.IssueCycle
	if r.Posted {
		return
	}
	if t.n == len(t.ids) {
		t.overflow++
		return
	}
	t.ids[t.n] = r.ID
	t.iss[t.n] = r.IssuePS
	t.n++
}

// RequestCompleted implements bus.PortProbe. Allocation-free.
func (t *PortTracker) RequestCompleted(r *bus.Request, cycle int64) {
	t.lastCompleteCycle = cycle
	for i := 0; i < t.n; i++ {
		if t.ids[i] == r.ID {
			t.n--
			t.ids[i], t.iss[i] = t.ids[t.n], t.iss[t.n]
			return
		}
	}
}

// InFlight returns the tracked in-flight count.
func (t *PortTracker) InFlight() int { return t.n }

// Oldest returns the longest-outstanding tracked transaction.
func (t *PortTracker) Oldest() (id uint64, issuePS int64, ok bool) {
	if t.n == 0 {
		return 0, 0, false
	}
	best := 0
	for i := 1; i < t.n; i++ {
		if t.iss[i] < t.iss[best] {
			best = i
		}
	}
	return t.ids[best], t.iss[best], true
}

// LastIssueCycle returns the initiator-domain cycle of the last issue (-1
// when nothing was ever issued).
func (t *PortTracker) LastIssueCycle() int64 { return t.lastIssueCycle }

// LastCompleteCycle returns the initiator-domain cycle of the last tracked
// completion (-1 when nothing completed).
func (t *PortTracker) LastCompleteCycle() int64 { return t.lastCompleteCycle }

// Overflow returns how many issues the table could not record.
func (t *PortTracker) Overflow() int64 { return t.overflow }

// FifoFill is one FIFO's occupancy row of a stall report.
type FifoFill struct {
	Name  string  `json:"name"`
	Len   int     `json:"len"`
	Depth int     `json:"depth"`
	Fill  float64 `json:"fill"`
}

// InitiatorHealth is one initiator's row: cumulative counts, in-flight
// occupancy and the oldest outstanding transaction's identity and age.
type InitiatorHealth struct {
	Name      string `json:"name"`
	Clock     string `json:"clock"`
	Issued    int64  `json:"issued"`
	Completed int64  `json:"completed"`
	InFlight  int    `json:"in_flight"`
	// OldestID/OldestAgePS identify the longest-outstanding transaction
	// (zero when nothing is in flight).
	OldestID    uint64 `json:"oldest_id,omitempty"`
	OldestAgePS int64  `json:"oldest_age_ps,omitempty"`
	// LastIssueCycle/LastCompleteCycle are in the initiator's own clock
	// domain; -1 means never.
	LastIssueCycle    int64 `json:"last_issue_cycle"`
	LastCompleteCycle int64 `json:"last_complete_cycle"`
}

// DomainHealth is one clock domain's row: how far it ticked and the last
// cycle any of its initiators made progress (-1 when the domain has no
// tracked initiator or none ever moved).
type DomainHealth struct {
	Clock             string `json:"clock"`
	Cycles            int64  `json:"cycles"`
	LastProgressCycle int64  `json:"last_progress_cycle"`
}

// StallReport is the structured run-health dump emitted when the progress
// watchdog fires (exit 2) or the simulated-time budget is blown (exit 3):
// the fullest FIFOs, per-initiator oldest-outstanding ages, per-domain last
// progress and the counters that still moved during the final watchdog
// window (what was alive vs what wedged).
type StallReport struct {
	Reason    string `json:"reason"`
	Cycle     int64  `json:"cycle"`
	TimePS    int64  `json:"time_ps"`
	Issued    int64  `json:"issued"`
	Completed int64  `json:"completed"`

	Fifos      []FifoFill        `json:"fifos"`
	Initiators []InitiatorHealth `json:"initiators"`
	Domains    []DomainHealth    `json:"domains"`
	// Moved lists the registry counters that advanced during the last
	// watchdog observation window, with their deltas.
	Moved []metrics.CounterValue `json:"moved,omitempty"`
}

// SortFifos orders rows fullest-first (name-ascending tie-break) and
// truncates to the top n (n <= 0 keeps everything).
func SortFifos(rows []FifoFill, n int) []FifoFill {
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Fill != rows[j].Fill {
			return rows[i].Fill > rows[j].Fill
		}
		return rows[i].Name < rows[j].Name
	})
	if n > 0 && len(rows) > n {
		rows = rows[:n]
	}
	return rows
}

// Write renders the report as the human-readable stderr dump.
func (r *StallReport) Write(w io.Writer) error {
	fmt.Fprintf(w, "stall report: %s\n", r.Reason)
	fmt.Fprintf(w, "at cycle %d (%.3f ms simulated), issued=%d completed=%d in_flight=%d\n\n",
		r.Cycle, float64(r.TimePS)/1e9, r.Issued, r.Completed, r.Issued-r.Completed)

	fmt.Fprintf(w, "fullest FIFOs (top %d):\n", len(r.Fifos))
	ftbl := stats.NewTable("fifo", "len", "depth", "fill")
	for _, f := range r.Fifos {
		ftbl.AddRow(f.Name, fmt.Sprint(f.Len), fmt.Sprint(f.Depth), fmt.Sprintf("%.0f%%", 100*f.Fill))
	}
	if err := ftbl.Write(w); err != nil {
		return err
	}

	fmt.Fprint(w, "\noldest outstanding per initiator:\n")
	itbl := stats.NewTable("initiator", "clock", "issued", "completed", "in_flight", "oldest_id", "oldest_age_us", "last_issue_cyc", "last_complete_cyc")
	for _, in := range r.Initiators {
		oldest, age := "-", "-"
		if in.InFlight > 0 {
			oldest = fmt.Sprintf("%#x", in.OldestID)
			age = fmt.Sprintf("%.2f", float64(in.OldestAgePS)/1e6)
		}
		itbl.AddRow(in.Name, in.Clock, fmt.Sprint(in.Issued), fmt.Sprint(in.Completed),
			fmt.Sprint(in.InFlight), oldest, age,
			fmt.Sprint(in.LastIssueCycle), fmt.Sprint(in.LastCompleteCycle))
	}
	if err := itbl.Write(w); err != nil {
		return err
	}

	fmt.Fprint(w, "\nlast progress per clock domain:\n")
	dtbl := stats.NewTable("clock", "cycles", "last_progress_cycle", "idle_cycles")
	for _, d := range r.Domains {
		idle := "-"
		if d.LastProgressCycle >= 0 {
			idle = fmt.Sprint(d.Cycles - d.LastProgressCycle)
		}
		dtbl.AddRow(d.Clock, fmt.Sprint(d.Cycles), fmt.Sprint(d.LastProgressCycle), idle)
	}
	if err := dtbl.Write(w); err != nil {
		return err
	}

	if len(r.Moved) > 0 {
		fmt.Fprint(w, "\ncounters still moving in the last watchdog window:\n")
		mtbl := stats.NewTable("counter", "delta")
		for _, m := range r.Moved {
			mtbl.AddRow(m.Name, fmt.Sprint(m.Value))
		}
		if err := mtbl.Write(w); err != nil {
			return err
		}
	} else {
		fmt.Fprint(w, "\nno counter moved in the last watchdog window (fully wedged)\n")
	}
	return nil
}
