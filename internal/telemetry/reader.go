package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// Stream is a parsed NDJSON telemetry stream: the records in file order,
// plus whether the final line was cut mid-record. Produced by ReadStream;
// consumed by the cross-run stream diff (internal/diff).
type Stream struct {
	Records []Record

	truncated bool
}

// Truncated reports whether the stream's final line was an incomplete JSON
// record — the signature of a crash- or kill-interrupted run whose last
// buffered write never finished. Mirrors trace.Recorder's trailer
// convention: damage confined to the tail is reported, not fatal, because
// every record before the cut is still trustworthy.
func (s *Stream) Truncated() bool { return s.truncated }

// ReadStream parses an NDJSON telemetry stream written by Streamer. Every
// record must carry the mpsocsim.telemetry/1 schema. A malformed line in
// the middle of the stream is an error (the file is not a telemetry
// stream, or worse); a malformed *final* line without a trailing newline
// is tolerated as a truncation and reported through Truncated.
func ReadStream(r io.Reader) (*Stream, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	s := &Stream{}
	for line := 1; ; line++ {
		raw, err := br.ReadBytes('\n')
		if err != nil && err != io.EOF {
			return nil, err
		}
		atEOF := err == io.EOF
		trimmed := bytes.TrimSpace(raw)
		if len(trimmed) > 0 {
			var rec Record
			if jerr := json.Unmarshal(trimmed, &rec); jerr != nil {
				// Only an unterminated final line can be a crash cut:
				// anything the writer finished ends in '\n'.
				if atEOF {
					s.truncated = true
					return s, nil
				}
				return nil, fmt.Errorf("telemetry stream line %d: %w", line, jerr)
			}
			if rec.Schema != Schema {
				return nil, fmt.Errorf("telemetry stream line %d: schema %q, want %q", line, rec.Schema, Schema)
			}
			s.Records = append(s.Records, rec)
		}
		if atEOF {
			return s, nil
		}
	}
}
