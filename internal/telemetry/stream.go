package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
)

// Streamer drains a collector into an NDJSON stream: one Record per line,
// schema mpsocsim.telemetry/1, in sequence order. It runs on its own
// goroutine (woken by the collector's notify channel), so JSON encoding —
// which allocates — never lands on the simulation hot path. The stream is
// fully deterministic: byte-identical for serial and sharded runs of the
// same spec and cadence.
type Streamer struct {
	col *Collector
	w   *bufio.Writer

	stop chan struct{}
	wg   sync.WaitGroup

	mu      sync.Mutex
	cursor  int64
	skipped int64
	written int64
	err     error
}

// NewStreamer wraps w; the caller retains ownership of the underlying file
// and closes it after Close returns.
func NewStreamer(w io.Writer, col *Collector) *Streamer {
	return &Streamer{col: col, w: bufio.NewWriterSize(w, 1<<16), stop: make(chan struct{})}
}

// Start launches the drain goroutine. Call once, before the run.
func (s *Streamer) Start() {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			select {
			case <-s.col.Notify():
				s.drain()
			case <-s.stop:
				return
			}
		}
	}()
}

// drain writes every undrained record.
func (s *Streamer) drain() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	recs, next := s.col.Drain(s.cursor)
	if len(recs) > 0 && recs[0].Seq > s.cursor {
		s.skipped += recs[0].Seq - s.cursor
	}
	s.cursor = next
	enc := json.NewEncoder(s.w)
	for i := range recs {
		if err := enc.Encode(&recs[i]); err != nil {
			s.err = err
			return
		}
		s.written++
	}
}

// Close stops the goroutine, drains any remaining records, flushes, and
// returns the first write error.
func (s *Streamer) Close() error {
	close(s.stop)
	s.wg.Wait()
	s.drain()
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.w.Flush(); err != nil && s.err == nil {
		s.err = err
	}
	return s.err
}

// Written returns the number of records written so far.
func (s *Streamer) Written() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.written
}

// Skipped returns the number of records lost to ring overflow before the
// streamer could drain them (0 in any healthy configuration — the ring
// holds DefaultRingCap snapshots and the streamer wakes on every one).
func (s *Streamer) Skipped() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.skipped
}
