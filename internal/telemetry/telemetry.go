// Package telemetry is the live observability layer: periodic in-run
// snapshots of the platform's metrics registry, collected at safe boundaries
// of the run loop (after a fully committed central-clock instant serially,
// after the window barrier when sharded) into a preallocated ring, and
// exported as an NDJSON stream (stream.go), a live HTTP endpoint with
// Prometheus exposition, SSE events and a JSON progress document
// (server.go), a multi-job aggregation hub for experiment sweeps (hub.go)
// and the post-mortem stall forensics of a wedged run (forensics.go).
//
// Design constraints, in priority order (mirroring internal/metrics):
//
//  1. Zero allocations on the collection hot path. Collect writes into ring
//     rows whose storage is preallocated at construction; export — the JSON
//     encoding, the HTTP handlers — happens on reader goroutines that drain
//     the ring under its mutex and may allocate freely.
//  2. Deterministic records. A Record carries only simulated state (cycle,
//     simulated time, per-initiator and instrument values in registration
//     order) — never wall-clock time, shard counts or rates — so the NDJSON
//     stream of a sharded run is byte-identical to the serial one, and a
//     telemetry-enabled run leaves the run report untouched. Wall-clock
//     derived figures (cycles/s, ETA) live only in the live progress
//     document, which is explicitly non-deterministic.
//  3. The run itself is never observable through telemetry: the collector
//     only reads component state, so enabling or disabling it cannot change
//     a single simulated event.
package telemetry

import (
	"sync"
	"time"

	"mpsocsim/internal/metrics"
)

// Schema identifies the NDJSON telemetry record layout. Consumers must check
// it before interpreting the rest of each record; purely additive changes
// keep the version.
const Schema = "mpsocsim.telemetry/1"

// DefaultRingCap is the snapshot ring capacity when the caller passes <= 0.
const DefaultRingCap = 1024

// InitiatorSource is the per-traffic-source view the collector samples:
// platform initiators (generators, replayers, I/O agents) satisfy it.
type InitiatorSource interface {
	Name() string
	Issued() int64
	Completed() int64
}

// row is one preallocated ring slot. All slices are allocated once at
// construction and overwritten in place.
type row struct {
	seq    int64
	cycle  int64
	ps     int64
	wallNS int64

	issued    int64
	completed int64

	initIssued    []int64
	initCompleted []int64
	counters      []int64
	gauges        []int64
}

// InitiatorRecord is one traffic source's slice of a Record.
type InitiatorRecord struct {
	Name      string `json:"name"`
	Issued    int64  `json:"issued"`
	Completed int64  `json:"completed"`
	// Outstanding is Issued - Completed: the transactions genuinely in
	// flight at the snapshot instant (posted writes complete at issue).
	Outstanding int64 `json:"outstanding"`
}

// Record is one exported telemetry snapshot. Every field is simulated state:
// two runs of the same spec — serial or sharded, streamed or not — produce
// byte-identical record sequences. WallNS (the wall-clock offset the live
// endpoint derives rates from) is deliberately excluded from the JSON form.
type Record struct {
	Schema    string `json:"schema"`
	Seq       int64  `json:"seq"`
	Cycle     int64  `json:"cycle"`
	TimePS    int64  `json:"time_ps"`
	Issued    int64  `json:"issued"`
	Completed int64  `json:"completed"`

	Initiators []InitiatorRecord      `json:"initiators"`
	Counters   []metrics.CounterValue `json:"counters"`
	Gauges     []metrics.GaugeValue   `json:"gauges"`

	WallNS int64 `json:"-"`
}

// Collector takes periodic snapshots of a platform's instruments into a
// fixed-capacity ring. The writer side (Collect, called from the simulation
// loop) is allocation-free; reader-side exports drain under the same mutex
// and build JSON-ready Records.
type Collector struct {
	counters  []*metrics.Counter
	gauges    []*metrics.Gauge
	gaugeClks []string
	inits     []InitiatorSource
	initNames []string

	start time.Time

	mu      sync.Mutex
	rows    []row
	head    int // next slot to overwrite
	count   int // live rows (<= len(rows))
	seq     int64
	dropped int64
	done    bool

	// run-shape fields for the progress document, set by the platform
	// before/at Run under mu.
	budgetPS int64
	shards   int
	windows  int64

	publish func(cycle, ps int64)
	notify  chan struct{}
}

// NewCollector builds a collector over the registry's instruments (in
// registration order) and the given traffic sources, preallocating a ring of
// ringCap rows (DefaultRingCap when <= 0). All per-row storage is allocated
// here, so Collect never allocates.
func NewCollector(reg *metrics.Registry, inits []InitiatorSource, ringCap int) *Collector {
	if ringCap <= 0 {
		ringCap = DefaultRingCap
	}
	c := &Collector{
		counters: reg.Counters(),
		gauges:   reg.Gauges(),
		inits:    inits,
		start:    time.Now(),
		rows:     make([]row, ringCap),
		shards:   1,
		notify:   make(chan struct{}, 1),
	}
	for _, g := range c.gauges {
		c.gaugeClks = append(c.gaugeClks, g.Clock())
	}
	for _, in := range inits {
		c.initNames = append(c.initNames, in.Name())
	}
	for i := range c.rows {
		c.rows[i].initIssued = make([]int64, len(inits))
		c.rows[i].initCompleted = make([]int64, len(inits))
		c.rows[i].counters = make([]int64, len(c.counters))
		c.rows[i].gauges = make([]int64, len(c.gauges))
	}
	return c
}

// SetBudgetPS records the run's simulated-time budget for the progress
// document's ETA; call before Run.
func (c *Collector) SetBudgetPS(ps int64) {
	c.mu.Lock()
	c.budgetPS = ps
	c.mu.Unlock()
}

// SetShards records the run's shard count for the progress document.
func (c *Collector) SetShards(n int) {
	c.mu.Lock()
	if n < 1 {
		n = 1
	}
	c.shards = n
	c.mu.Unlock()
}

// SetPublish installs a hook called after every Collect with the snapshot's
// cycle and simulated time. The hook runs on the simulation goroutine and
// must not allocate in steady state — the experiments hub uses atomic stores.
func (c *Collector) SetPublish(fn func(cycle, ps int64)) {
	c.mu.Lock()
	c.publish = fn
	c.mu.Unlock()
}

// AddWindow counts one sharded barrier window for the progress document.
// Allocation-free.
func (c *Collector) AddWindow() {
	c.mu.Lock()
	c.windows++
	c.mu.Unlock()
}

// Collect takes one snapshot at the given central cycle and simulated time.
// Called from the simulation run loop at safe boundaries only — after a
// fully committed instant — so every value it reads is exactly the state a
// serial run would show at that cycle. Allocation-free.
func (c *Collector) Collect(cycle, ps int64) {
	c.mu.Lock()
	r := &c.rows[c.head]
	c.head++
	if c.head == len(c.rows) {
		c.head = 0
	}
	if c.count < len(c.rows) {
		c.count++
	} else {
		c.dropped++
	}
	r.seq = c.seq
	c.seq++
	r.cycle = cycle
	r.ps = ps
	r.wallNS = int64(time.Since(c.start))
	r.issued, r.completed = 0, 0
	for i, in := range c.inits {
		iss, cmp := in.Issued(), in.Completed()
		r.initIssued[i], r.initCompleted[i] = iss, cmp
		r.issued += iss
		r.completed += cmp
	}
	for i, ctr := range c.counters {
		r.counters[i] = ctr.Value()
	}
	for i, g := range c.gauges {
		r.gauges[i] = g.Value()
	}
	pub := c.publish
	c.mu.Unlock()
	if pub != nil {
		pub(cycle, ps)
	}
	select {
	case c.notify <- struct{}{}:
	default:
	}
}

// Finish marks the run complete: SSE streams terminate after draining and
// the progress document reports done. Idempotent.
func (c *Collector) Finish() {
	c.mu.Lock()
	c.done = true
	c.mu.Unlock()
	select {
	case c.notify <- struct{}{}:
	default:
	}
}

// Done reports whether Finish was called.
func (c *Collector) Done() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.done
}

// Notify returns the channel signalled (non-blocking, capacity 1) after
// every Collect and at Finish — the streamer's wake-up.
func (c *Collector) Notify() <-chan struct{} { return c.notify }

// Dropped returns how many rows the ring has overwritten before any reader
// drained them past the ring capacity.
func (c *Collector) Dropped() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped
}

// Seq returns the total number of snapshots collected so far.
func (c *Collector) Seq() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.seq
}

// record builds the exported form of ring slot i (reader side; allocates).
// Caller holds mu.
func (c *Collector) record(r *row) Record {
	rec := Record{
		Schema:     Schema,
		Seq:        r.seq,
		Cycle:      r.cycle,
		TimePS:     r.ps,
		Issued:     r.issued,
		Completed:  r.completed,
		Initiators: make([]InitiatorRecord, len(c.inits)),
		Counters:   make([]metrics.CounterValue, len(c.counters)),
		Gauges:     make([]metrics.GaugeValue, len(c.gauges)),
		WallNS:     r.wallNS,
	}
	for i := range c.inits {
		rec.Initiators[i] = InitiatorRecord{
			Name:        c.initNames[i],
			Issued:      r.initIssued[i],
			Completed:   r.initCompleted[i],
			Outstanding: r.initIssued[i] - r.initCompleted[i],
		}
	}
	for i, ctr := range c.counters {
		rec.Counters[i] = metrics.CounterValue{Name: ctr.Name(), Value: r.counters[i]}
	}
	for i, g := range c.gauges {
		rec.Gauges[i] = metrics.GaugeValue{Name: g.Name(), Clock: c.gaugeClks[i], Value: r.gauges[i]}
	}
	return rec
}

// rowAt returns the ring slot holding sequence number seq, or nil when it
// has been overwritten or not collected yet. Caller holds mu.
func (c *Collector) rowAt(seq int64) *row {
	oldest := c.seq - int64(c.count)
	if seq < oldest || seq >= c.seq {
		return nil
	}
	// The ring slot of the newest row is head-1; walking back from it,
	// sequence numbers decrease by one per slot.
	idx := c.head - 1 - int(c.seq-1-seq)
	for idx < 0 {
		idx += len(c.rows)
	}
	return &c.rows[idx]
}

// Drain returns every surviving record with sequence number >= cursor, in
// order, plus the cursor for the next call. Records older than the ring
// capacity are lost (counted by Dropped); the caller detects the gap by the
// first record's Seq exceeding its cursor.
func (c *Collector) Drain(cursor int64) ([]Record, int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	oldest := c.seq - int64(c.count)
	if cursor < oldest {
		cursor = oldest
	}
	if cursor >= c.seq {
		return nil, c.seq
	}
	recs := make([]Record, 0, c.seq-cursor)
	for s := cursor; s < c.seq; s++ {
		recs = append(recs, c.record(c.rowAt(s)))
	}
	return recs, c.seq
}

// Latest returns the newest record, if any snapshot has been collected.
func (c *Collector) Latest() (Record, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.count == 0 {
		return Record{}, false
	}
	return c.record(c.rowAt(c.seq - 1)), true
}

// latestPair returns the two newest records (prev may be invalid when only
// one snapshot exists) for rate derivation.
func (c *Collector) latestPair() (last, prev Record, n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.count == 0 {
		return Record{}, Record{}, 0
	}
	last = c.record(c.rowAt(c.seq - 1))
	if c.count == 1 {
		return last, Record{}, 1
	}
	return last, c.record(c.rowAt(c.seq - 2)), 2
}

// status snapshots the run-shape fields under the mutex.
func (c *Collector) status() (budgetPS int64, shards int, windows int64, done bool, wall time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.budgetPS, c.shards, c.windows, c.done, time.Since(c.start)
}
