package telemetry

import (
	"encoding/json"
	"strings"
	"testing"

	"mpsocsim/internal/metrics"
)

func teleLine(t *testing.T, seq, cycle int64) string {
	t.Helper()
	rec := Record{
		Schema: Schema, Seq: seq, Cycle: cycle, TimePS: cycle * 4000,
		Issued: 10 * seq, Completed: 9 * seq,
		Initiators: []InitiatorRecord{{Name: "arm1", Issued: 5 * seq, Completed: 5 * seq}},
		Counters:   []metrics.CounterValue{{Name: "fab.grants", Value: 7 * seq}},
		Gauges:     []metrics.GaugeValue{{Name: "fab.fifo", Clock: "central", Value: seq % 3}},
	}
	b, err := json.Marshal(rec)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return string(b)
}

func TestReadStreamParsesFullStream(t *testing.T) {
	text := teleLine(t, 0, 100) + "\n" + teleLine(t, 1, 200) + "\n" + teleLine(t, 2, 300) + "\n"
	s, err := ReadStream(strings.NewReader(text))
	if err != nil {
		t.Fatalf("ReadStream: %v", err)
	}
	if s.Truncated() {
		t.Fatalf("fully written stream reported truncated")
	}
	if len(s.Records) != 3 {
		t.Fatalf("got %d records, want 3", len(s.Records))
	}
	for i, rec := range s.Records {
		if rec.Seq != int64(i) {
			t.Fatalf("record %d has seq %d", i, rec.Seq)
		}
	}
	if s.Records[2].Cycle != 300 {
		t.Fatalf("last record cycle = %d, want 300", s.Records[2].Cycle)
	}
}

// A crash-interrupted run leaves its final record cut mid-line with no
// trailing newline. The reader must keep every complete record and report
// the damage through Truncated() instead of erroring — mirroring
// trace.Recorder's missing-trailer convention.
func TestReadStreamToleratesTruncatedFinalLine(t *testing.T) {
	full := teleLine(t, 0, 100) + "\n" + teleLine(t, 1, 200) + "\n"
	cut := teleLine(t, 2, 300)
	cut = cut[:len(cut)/2] // mid-record cut, no newline
	s, err := ReadStream(strings.NewReader(full + cut))
	if err != nil {
		t.Fatalf("ReadStream on truncated stream: %v", err)
	}
	if !s.Truncated() {
		t.Fatalf("truncated stream not reported as truncated")
	}
	if len(s.Records) != 2 {
		t.Fatalf("got %d records before the cut, want 2", len(s.Records))
	}
}

// A malformed line in the middle of the stream is not a truncation — the
// writer terminates every record it finishes, so mid-stream damage means
// the file is not a telemetry stream at all.
func TestReadStreamRejectsMidStreamGarbage(t *testing.T) {
	text := teleLine(t, 0, 100) + "\n{\"schema\": \"mpsocsim.telem" + "\n" + teleLine(t, 2, 300) + "\n"
	if _, err := ReadStream(strings.NewReader(text)); err == nil {
		t.Fatalf("mid-stream garbage accepted")
	}
}

func TestReadStreamRejectsForeignSchema(t *testing.T) {
	text := `{"schema":"mpsocsim.report/2","seq":0}` + "\n"
	if _, err := ReadStream(strings.NewReader(text)); err == nil {
		t.Fatalf("foreign schema accepted")
	}
}
