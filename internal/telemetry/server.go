package telemetry

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"mpsocsim/internal/metrics"
)

// ProgressSchema identifies the live progress document's layout.
const ProgressSchema = "mpsocsim.progress/1"

// Progress is the live run-progress document served at /progress. Unlike
// telemetry Records it is explicitly wall-clock dependent: rates and ETA are
// derived from the wall-time offsets of the last two snapshots and change
// from request to request.
type Progress struct {
	Schema string `json:"schema"`
	Done   bool   `json:"done"`
	Cycle  int64  `json:"cycle"`
	TimePS int64  `json:"time_ps"`

	BudgetPS   int64   `json:"budget_ps,omitempty"`
	BudgetFrac float64 `json:"budget_frac,omitempty"`
	WallMS     float64 `json:"wall_ms"`
	// CyclesPerSec is the wall-clock simulation rate over the last snapshot
	// interval (whole-run mean when only one snapshot exists).
	CyclesPerSec float64 `json:"cycles_per_sec"`
	// ETAMS is the projected wall milliseconds until the simulated-time
	// budget is exhausted — an upper bound, since most runs drain earlier.
	ETAMS float64 `json:"eta_ms,omitempty"`

	Shards int `json:"shards"`
	// Windows counts completed barrier windows; ShardWindows replicates it
	// per shard (all shards cross every barrier together, so the counts are
	// equal by construction). Empty for a serial run.
	Windows      int64   `json:"windows,omitempty"`
	ShardWindows []int64 `json:"shard_windows,omitempty"`

	Initiators []InitiatorRecord `json:"initiators"`
	// CounterRatesPerSec holds the per-wall-second delta of every counter
	// that moved between the last two snapshots.
	CounterRatesPerSec []metrics.CounterValue `json:"counter_rates_per_sec,omitempty"`
}

// Server serves one collector's live surfaces:
//
//	/metrics   Prometheus text exposition of the latest snapshot
//	/events    SSE stream of telemetry records (data: one Record JSON each)
//	/progress  the JSON Progress document
//	/          a small text index
type Server struct {
	col *Collector
}

// NewServer wraps a collector.
func NewServer(col *Collector) *Server { return &Server{col: col} }

// Handler returns the route mux. Mount it on any listener:
//
//	ln, _ := net.Listen("tcp", addr)
//	go http.Serve(ln, srv.Handler())
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.index)
	mux.HandleFunc("/metrics", s.metrics)
	mux.HandleFunc("/events", s.events)
	mux.HandleFunc("/progress", s.progress)
	return mux
}

func (s *Server) index(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "mpsocsim live telemetry (%s)\n\n/metrics   Prometheus text exposition\n/events    SSE record stream\n/progress  JSON progress document\n", Schema)
}

// promName rewrites an instrument name into the Prometheus label-value form
// (instrument names become label values, not metric names, so dots and
// arbitrary characters never produce an unparsable exposition).
func promEscape(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func (s *Server) metrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	rec, ok := s.col.Latest()
	if !ok {
		fmt.Fprint(w, "# no snapshot collected yet\n")
		return
	}
	fmt.Fprint(w, "# HELP mpsocsim_sim_cycle Central-clock cycles completed.\n# TYPE mpsocsim_sim_cycle gauge\n")
	fmt.Fprintf(w, "mpsocsim_sim_cycle %d\n", rec.Cycle)
	fmt.Fprint(w, "# HELP mpsocsim_sim_time_ps Simulated time in picoseconds.\n# TYPE mpsocsim_sim_time_ps gauge\n")
	fmt.Fprintf(w, "mpsocsim_sim_time_ps %d\n", rec.TimePS)
	fmt.Fprint(w, "# HELP mpsocsim_issued_total Transactions issued across all initiators.\n# TYPE mpsocsim_issued_total counter\n")
	fmt.Fprintf(w, "mpsocsim_issued_total %d\n", rec.Issued)
	fmt.Fprint(w, "# HELP mpsocsim_completed_total Transactions completed across all initiators.\n# TYPE mpsocsim_completed_total counter\n")
	fmt.Fprintf(w, "mpsocsim_completed_total %d\n", rec.Completed)
	fmt.Fprint(w, "# HELP mpsocsim_initiator_outstanding In-flight transactions per initiator.\n# TYPE mpsocsim_initiator_outstanding gauge\n")
	for _, in := range rec.Initiators {
		fmt.Fprintf(w, "mpsocsim_initiator_outstanding{initiator=%q} %d\n", promEscape(in.Name), in.Outstanding)
	}
	fmt.Fprint(w, "# HELP mpsocsim_counter Registry counters, keyed by instrument name.\n# TYPE mpsocsim_counter counter\n")
	for _, c := range rec.Counters {
		fmt.Fprintf(w, "mpsocsim_counter{name=%q} %d\n", promEscape(c.Name), c.Value)
	}
	fmt.Fprint(w, "# HELP mpsocsim_gauge Registry gauges, keyed by instrument name and clock domain.\n# TYPE mpsocsim_gauge gauge\n")
	for _, g := range rec.Gauges {
		fmt.Fprintf(w, "mpsocsim_gauge{name=%q,clock=%q} %d\n", promEscape(g.Name), promEscape(g.Clock), g.Value)
	}
}

func (s *Server) events(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	// Start from the oldest surviving record; poll for new ones. The ring
	// is drained by sequence cursor, so concurrent SSE clients each get the
	// full surviving stream independently.
	var cursor int64
	tick := time.NewTicker(200 * time.Millisecond)
	defer tick.Stop()
	enc := json.NewEncoder(w)
	for {
		recs, next := s.col.Drain(cursor)
		cursor = next
		for i := range recs {
			fmt.Fprint(w, "data: ")
			if err := enc.Encode(&recs[i]); err != nil {
				return
			}
			fmt.Fprint(w, "\n")
		}
		if len(recs) > 0 {
			fl.Flush()
		}
		if s.col.Done() && cursor >= s.col.Seq() {
			fmt.Fprint(w, "event: done\ndata: {}\n\n")
			fl.Flush()
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-tick.C:
		}
	}
}

// buildProgress derives the progress document from the collector's newest
// snapshots. Shared by the single-run server and tests.
func buildProgress(col *Collector) Progress {
	budgetPS, shards, windows, done, wall := col.status()
	p := Progress{
		Schema: ProgressSchema,
		Done:   done,
		WallMS: float64(wall.Nanoseconds()) / 1e6,
		Shards: shards,
	}
	last, prev, n := col.latestPair()
	if n == 0 {
		return p
	}
	p.Cycle = last.Cycle
	p.TimePS = last.TimePS
	p.Initiators = last.Initiators
	if budgetPS > 0 {
		p.BudgetPS = budgetPS
		p.BudgetFrac = float64(last.TimePS) / float64(budgetPS)
	}
	if shards > 1 {
		p.Windows = windows
		p.ShardWindows = make([]int64, shards)
		for i := range p.ShardWindows {
			p.ShardWindows[i] = windows
		}
	}
	// Rates over the last snapshot interval; whole-run mean with a single
	// snapshot.
	refCycle, refPS, refWallNS := int64(0), int64(0), int64(0)
	if n >= 2 {
		refCycle, refPS, refWallNS = prev.Cycle, prev.TimePS, prev.WallNS
	}
	dWallSec := float64(last.WallNS-refWallNS) / 1e9
	if dWallSec > 0 {
		p.CyclesPerSec = float64(last.Cycle-refCycle) / dWallSec
		psPerSec := float64(last.TimePS-refPS) / dWallSec
		if budgetPS > 0 && psPerSec > 0 && !done {
			p.ETAMS = float64(budgetPS-last.TimePS) / psPerSec * 1e3
		}
		if n >= 2 {
			for _, d := range metrics.DiffCounters(last.Counters, prev.Counters) {
				d.Value = int64(float64(d.Value) / dWallSec)
				if d.Value != 0 {
					p.CounterRatesPerSec = append(p.CounterRatesPerSec, d)
				}
			}
		}
	}
	return p
}

func (s *Server) progress(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(buildProgress(s.col))
}
