package telemetry

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// HubSchema identifies the multi-job progress document's layout.
const HubSchema = "mpsocsim.progress.jobs/1"

// JobProgress is one simulation run's live position, updated from the run's
// telemetry collector via Publish (atomic stores, so the publishing side
// stays allocation-free and lock-free) and read by the hub's aggregation.
type JobProgress struct {
	name     string
	budgetPS int64
	start    time.Time

	cycle atomic.Int64
	ps    atomic.Int64
	done  atomic.Bool
}

// Publish records the run's latest snapshot position. Wire it as the
// collector's publish hook: col.SetPublish(jp.Publish). Allocation-free.
func (j *JobProgress) Publish(cycle, ps int64) {
	j.cycle.Store(cycle)
	j.ps.Store(ps)
}

// Finish marks the job complete.
func (j *JobProgress) Finish() { j.done.Store(true) }

// HubJob is one job's row of the aggregate progress document.
type HubJob struct {
	Name       string  `json:"name"`
	Done       bool    `json:"done"`
	Cycle      int64   `json:"cycle"`
	TimePS     int64   `json:"time_ps"`
	BudgetPS   int64   `json:"budget_ps,omitempty"`
	BudgetFrac float64 `json:"budget_frac,omitempty"`
	// ETAMS projects wall milliseconds to budget exhaustion from the job's
	// mean simulation rate — an upper bound; most runs drain earlier.
	ETAMS float64 `json:"eta_ms,omitempty"`
}

// HubProgress is the aggregate document served by the hub's /progress.
type HubProgress struct {
	Schema  string  `json:"schema"`
	WallMS  float64 `json:"wall_ms"`
	Running int     `json:"running"`
	Total   int     `json:"total"`
	// CyclesPerSec is the aggregate simulation rate across every live job,
	// measured over the window since the previous aggregation call.
	CyclesPerSec float64  `json:"cycles_per_sec"`
	Jobs         []HubJob `json:"jobs"`
}

// Hub aggregates many jobs' progress onto one surface: the runner's live
// progress-line suffix (Line) and a single HTTP endpoint (Handler) for an
// experiments sweep run with -live. Jobs register as they start; a finished
// job keeps its final position so aggregate cycle totals stay monotonic.
type Hub struct {
	start time.Time

	mu       sync.Mutex
	jobs     []*JobProgress
	prevSum  int64
	prevAt   time.Time
	prevRate float64
}

// NewHub returns an empty hub.
func NewHub() *Hub {
	now := time.Now()
	return &Hub{start: now, prevAt: now}
}

// Job registers one run about to start and returns its progress handle.
// Safe for concurrent use (runner workers register from their goroutines).
func (h *Hub) Job(name string, budgetPS int64) *JobProgress {
	j := &JobProgress{name: name, budgetPS: budgetPS, start: time.Now()}
	h.mu.Lock()
	h.jobs = append(h.jobs, j)
	h.mu.Unlock()
	return j
}

// rate returns the aggregate cycles/s over the window since the previous
// call, holding the last value for windows too short to measure.
func (h *Hub) rate(sum int64) float64 {
	now := time.Now()
	dt := now.Sub(h.prevAt).Seconds()
	if dt < 0.2 {
		return h.prevRate
	}
	h.prevRate = float64(sum-h.prevSum) / dt
	h.prevSum = sum
	h.prevAt = now
	return h.prevRate
}

// Doc builds the aggregate progress document.
func (h *Hub) Doc() HubProgress {
	h.mu.Lock()
	defer h.mu.Unlock()
	doc := HubProgress{
		Schema: HubSchema,
		WallMS: float64(time.Since(h.start).Nanoseconds()) / 1e6,
		Total:  len(h.jobs),
	}
	var sum int64
	for _, j := range h.jobs {
		cycle, ps, done := j.cycle.Load(), j.ps.Load(), j.done.Load()
		sum += cycle
		row := HubJob{Name: j.name, Done: done, Cycle: cycle, TimePS: ps, BudgetPS: j.budgetPS}
		if j.budgetPS > 0 {
			row.BudgetFrac = float64(ps) / float64(j.budgetPS)
		}
		if !done {
			doc.Running++
			if elapsed := time.Since(j.start).Seconds(); elapsed > 0 && ps > 0 && j.budgetPS > ps {
				psPerSec := float64(ps) / elapsed
				row.ETAMS = float64(j.budgetPS-ps) / psPerSec * 1e3
			}
		}
		doc.Jobs = append(doc.Jobs, row)
	}
	doc.CyclesPerSec = h.rate(sum)
	sort.SliceStable(doc.Jobs, func(i, k int) bool { return doc.Jobs[i].Name < doc.Jobs[k].Name })
	return doc
}

// Line renders the one-line live suffix for the runner's progress display:
// aggregate cycles/s and the slowest running job's budget ETA.
func (h *Hub) Line() string {
	doc := h.Doc()
	if doc.Running == 0 {
		return ""
	}
	slowest, eta := "", 0.0
	for _, j := range doc.Jobs {
		if !j.Done && j.ETAMS > eta {
			slowest, eta = j.Name, j.ETAMS
		}
	}
	s := fmt.Sprintf("| %s cyc/s, %d running", siRate(doc.CyclesPerSec), doc.Running)
	if slowest != "" {
		s += fmt.Sprintf(", slowest %s eta<=%.1fs", slowest, eta/1e3)
	}
	return s
}

// siRate renders a rate with an SI suffix (1.2M, 430k).
func siRate(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.1fG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

// Handler serves the hub's aggregate surfaces: /progress (JSON HubProgress)
// and a text index at /.
func (h *Hub) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "mpsocsim experiments live progress (%s)\n\n/progress  aggregate JSON progress document\n", HubSchema)
	})
	mux.HandleFunc("/progress", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(h.Doc())
	})
	return mux
}
