package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"mpsocsim/internal/bus"
	"mpsocsim/internal/metrics"
)

// req builds the minimal bus.Request a PortTracker reads.
func req(id uint64, cycle, ps int64, posted bool) bus.Request {
	return bus.Request{ID: id, IssueCycle: cycle, IssuePS: ps, Posted: posted}
}

// fakeInit is a scripted InitiatorSource.
type fakeInit struct {
	name              string
	issued, completed int64
}

func (f *fakeInit) Name() string     { return f.name }
func (f *fakeInit) Issued() int64    { return f.issued }
func (f *fakeInit) Completed() int64 { return f.completed }

// testCollector builds a collector over a two-counter/one-gauge registry and
// two fake initiators.
func testCollector(ringCap int) (*Collector, *metrics.Counter, *fakeInit, *fakeInit) {
	reg := metrics.NewRegistry()
	ctr := reg.Counter("grants")
	reg.Counter("stalls")
	reg.GaugeFunc("queue.depth", "central", func() int64 { return 3 })
	a, b := &fakeInit{name: "video"}, &fakeInit{name: "dsp"}
	return NewCollector(reg, []InitiatorSource{a, b}, ringCap), ctr, a, b
}

func TestCollectorDrainOrderAndCursor(t *testing.T) {
	col, ctr, a, _ := testCollector(16)
	for i := int64(1); i <= 3; i++ {
		ctr.Add(10)
		a.issued = i * 2
		a.completed = i
		col.Collect(i*100, i*400_000)
	}
	recs, next := col.Drain(0)
	if len(recs) != 3 || next != 3 {
		t.Fatalf("Drain(0) = %d records, next %d; want 3, 3", len(recs), next)
	}
	for i, r := range recs {
		if r.Seq != int64(i) {
			t.Fatalf("record %d has seq %d", i, r.Seq)
		}
		if r.Schema != Schema {
			t.Fatalf("record %d schema %q", i, r.Schema)
		}
	}
	if recs[2].Cycle != 300 || recs[2].TimePS != 1_200_000 {
		t.Fatalf("last record at cycle %d / %d ps", recs[2].Cycle, recs[2].TimePS)
	}
	if recs[2].Issued != 6 || recs[2].Completed != 3 {
		t.Fatalf("totals issued=%d completed=%d, want 6/3", recs[2].Issued, recs[2].Completed)
	}
	if out := recs[2].Initiators[0].Outstanding; out != 3 {
		t.Fatalf("video outstanding = %d, want 3", out)
	}
	if v, _ := counterValue(recs[2].Counters, "grants"); v != 30 {
		t.Fatalf("grants = %d, want 30", v)
	}
	// Incremental drain from the returned cursor is empty until new data.
	if more, _ := col.Drain(next); len(more) != 0 {
		t.Fatalf("redundant drain returned %d records", len(more))
	}
	col.Collect(400, 1_600_000)
	more, _ := col.Drain(next)
	if len(more) != 1 || more[0].Seq != 3 {
		t.Fatalf("after new snapshot, drain = %d records (seq %d)", len(more), more[0].Seq)
	}
}

func counterValue(vals []metrics.CounterValue, name string) (int64, bool) {
	for _, v := range vals {
		if v.Name == name {
			return v.Value, true
		}
	}
	return 0, false
}

func TestCollectorRingOverwrite(t *testing.T) {
	col, _, _, _ := testCollector(4)
	for i := int64(0); i < 10; i++ {
		col.Collect(i, i)
	}
	if d := col.Dropped(); d != 6 {
		t.Fatalf("Dropped = %d, want 6", d)
	}
	recs, next := col.Drain(0)
	if len(recs) != 4 || next != 10 {
		t.Fatalf("Drain = %d records, next %d; want 4, 10", len(recs), next)
	}
	for i, r := range recs {
		if want := int64(6 + i); r.Seq != want || r.Cycle != want {
			t.Fatalf("survivor %d: seq=%d cycle=%d, want %d", i, r.Seq, r.Cycle, want)
		}
	}
}

func TestCollectorLatestAndStatus(t *testing.T) {
	col, _, _, _ := testCollector(8)
	if _, ok := col.Latest(); ok {
		t.Fatal("Latest on empty collector reported a record")
	}
	col.SetBudgetPS(1_000_000)
	col.SetShards(2)
	col.AddWindow()
	col.AddWindow()
	col.Collect(100, 400_000)
	rec, ok := col.Latest()
	if !ok || rec.Cycle != 100 {
		t.Fatalf("Latest = %+v, %v", rec, ok)
	}
	budget, shards, windows, done, _ := col.status()
	if budget != 1_000_000 || shards != 2 || windows != 2 || done {
		t.Fatalf("status = %d %d %d %v", budget, shards, windows, done)
	}
	col.Finish()
	if !col.Done() {
		t.Fatal("Finish did not mark done")
	}
}

func TestCollectorPublishHook(t *testing.T) {
	col, _, _, _ := testCollector(8)
	var gotCycle, gotPS int64
	col.SetPublish(func(cycle, ps int64) { gotCycle, gotPS = cycle, ps })
	col.Collect(7, 28_000)
	if gotCycle != 7 || gotPS != 28_000 {
		t.Fatalf("publish hook saw %d/%d", gotCycle, gotPS)
	}
}

func TestStreamerNDJSON(t *testing.T) {
	col, ctr, _, _ := testCollector(16)
	var buf bytes.Buffer
	s := NewStreamer(&buf, col)
	s.Start()
	for i := int64(0); i < 5; i++ {
		ctr.Inc()
		col.Collect(i*10, i*40_000)
	}
	col.Finish()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if s.Written() != 5 || s.Skipped() != 0 {
		t.Fatalf("written=%d skipped=%d", s.Written(), s.Skipped())
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("%d NDJSON lines, want 5", len(lines))
	}
	for i, line := range lines {
		var rec Record
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if rec.Seq != int64(i) || rec.Schema != Schema {
			t.Fatalf("line %d: seq=%d schema=%q", i, rec.Seq, rec.Schema)
		}
		if strings.Contains(line, "WallNS") || strings.Contains(line, "wall") {
			t.Fatalf("line %d leaks wall-clock state: %s", i, line)
		}
	}
}

func TestPortTrackerLifecycle(t *testing.T) {
	tr := NewPortTracker("video", "cluster0", 4)
	if tr.Name() != "video" || tr.Clock() != "cluster0" {
		t.Fatal("identity lost")
	}
	if tr.LastIssueCycle() != -1 || tr.LastCompleteCycle() != -1 {
		t.Fatal("fresh tracker claims progress")
	}
	r1 := req(1, 10, 40_000, false)
	r2 := req(2, 12, 48_000, false)
	rp := req(3, 14, 56_000, true)
	tr.RequestIssued(&r1)
	tr.RequestIssued(&r2)
	tr.RequestIssued(&rp) // posted: last-issue moves, table does not
	if tr.InFlight() != 2 {
		t.Fatalf("in flight = %d, want 2 (posted write tracked)", tr.InFlight())
	}
	if tr.LastIssueCycle() != 14 {
		t.Fatalf("last issue cycle = %d, want 14", tr.LastIssueCycle())
	}
	if id, ps, ok := tr.Oldest(); !ok || id != 1 || ps != 40_000 {
		t.Fatalf("oldest = %d @%d %v", id, ps, ok)
	}
	tr.RequestCompleted(&r1, 20)
	if tr.InFlight() != 1 || tr.LastCompleteCycle() != 20 {
		t.Fatalf("after completion: inflight=%d last=%d", tr.InFlight(), tr.LastCompleteCycle())
	}
	if id, _, ok := tr.Oldest(); !ok || id != 2 {
		t.Fatalf("oldest after completion = %d %v", id, ok)
	}
}

func TestPortTrackerOverflow(t *testing.T) {
	tr := NewPortTracker("x", "central", 4)
	reqs := make([]bus.Request, 6)
	for i := range reqs {
		reqs[i] = req(uint64(i+1), int64(i), int64(i*4000), false)
		tr.RequestIssued(&reqs[i])
	}
	if tr.InFlight() != 4 || tr.Overflow() != 2 {
		t.Fatalf("inflight=%d overflow=%d, want 4/2", tr.InFlight(), tr.Overflow())
	}
}

func TestSortFifos(t *testing.T) {
	rows := []FifoFill{
		{Name: "b", Len: 1, Depth: 4, Fill: 0.25},
		{Name: "a", Len: 2, Depth: 4, Fill: 0.5},
		{Name: "c", Len: 2, Depth: 4, Fill: 0.5},
		{Name: "d", Len: 4, Depth: 4, Fill: 1.0},
	}
	got := SortFifos(rows, 3)
	if len(got) != 3 {
		t.Fatalf("len = %d", len(got))
	}
	if got[0].Name != "d" || got[1].Name != "a" || got[2].Name != "c" {
		t.Fatalf("order = %s %s %s", got[0].Name, got[1].Name, got[2].Name)
	}
}

func TestStallReportRender(t *testing.T) {
	rep := &StallReport{
		Reason: "watchdog", Cycle: 400000, TimePS: 1_600_000_000,
		Issued: 100, Completed: 90,
		Fifos:      []FifoFill{{Name: "video.req", Len: 4, Depth: 4, Fill: 1}},
		Initiators: []InitiatorHealth{{Name: "video", Clock: "cluster0", Issued: 100, Completed: 90, InFlight: 10, OldestID: 7, OldestAgePS: 2_000_000, LastIssueCycle: 300, LastCompleteCycle: 200}},
		Domains:    []DomainHealth{{Clock: "central", Cycles: 400000, LastProgressCycle: -1}},
		Moved:      []metrics.CounterValue{{Name: "dsp.refills", Value: 12}},
	}
	var buf bytes.Buffer
	if err := rep.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"watchdog", "video.req", "100%", "oldest outstanding", "dsp.refills", "in_flight"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}

	rep.Moved = nil
	buf.Reset()
	if err := rep.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "fully wedged") {
		t.Error("render without moved counters missing the fully-wedged note")
	}
}
