package io

import (
	"fmt"

	"mpsocsim/internal/attr"
	"mpsocsim/internal/bus"
	"mpsocsim/internal/iptg"
	"mpsocsim/internal/metrics"
	"mpsocsim/internal/sim"
	"mpsocsim/internal/stats"
)

// DMAConfig parameterizes a descriptor-chain DMA engine.
type DMAConfig struct {
	Name string
	// Descriptors is the chain length: how many linked descriptors the
	// engine walks before raising its final completion.
	Descriptors int
	// DescBase is the memory address of the first descriptor; descriptor
	// i lives at DescBase + i*DescBeats*BytesPerBeat (linked chain laid
	// out by the driver). DescBeats is the descriptor size in bus beats
	// (default 4: a 32-byte descriptor at the 8-byte beat width).
	DescBase  uint64
	DescBeats int
	// SrcBase/DstBase/RegionSize bound the scatter/gather windows: each
	// payload chunk reads from a gather slice drawn inside
	// [SrcBase, SrcBase+RegionSize) and writes a scatter slice inside
	// [DstBase, DstBase+RegionSize).
	SrcBase, DstBase uint64
	RegionSize       uint64
	// MinBytes/MaxBytes bound the per-descriptor payload, drawn uniformly
	// when the descriptor is decoded.
	MinBytes, MaxBytes int
	// BurstBeats is the programmed burst length: payload moves in bus
	// transactions of at most this many beats.
	BurstBeats int
	// Outstanding bounds simultaneously in-flight payload transactions.
	Outstanding int
	// BytesPerBeat is the engine's native data width.
	BytesPerBeat int
	// PostedWrites marks scatter writes as posted (the completion
	// writeback is always tracked).
	PostedWrites bool
	// GapCycles idles the engine between a descriptor's completion
	// writeback and the next descriptor fetch.
	GapCycles int64
	// Prio is the request priority label.
	Prio int
	// PortReqDepth/PortRespDepth size the bus interface FIFOs.
	PortReqDepth  int
	PortRespDepth int
	// Seed makes the engine's descriptor contents deterministic.
	Seed uint64
}

func (c *DMAConfig) normalize() error {
	if c.Name == "" {
		return fmt.Errorf("io: DMA engine needs a name")
	}
	if c.Descriptors <= 0 {
		return fmt.Errorf("io: DMA engine %q: non-positive descriptor count %d", c.Name, c.Descriptors)
	}
	if c.DescBeats <= 0 {
		c.DescBeats = 4
	}
	if c.BytesPerBeat <= 0 {
		c.BytesPerBeat = 8
	}
	if c.BurstBeats <= 0 {
		c.BurstBeats = 16
	}
	if c.MinBytes <= 0 {
		c.MinBytes = 2048
	}
	if c.MaxBytes < c.MinBytes {
		c.MaxBytes = c.MinBytes
	}
	if c.Outstanding <= 0 {
		c.Outstanding = 4
	}
	if c.RegionSize == 0 {
		c.RegionSize = 1 << 21
	}
	if c.PortReqDepth <= 0 {
		c.PortReqDepth = 4
	}
	if c.PortRespDepth <= 0 {
		c.PortRespDepth = 8
	}
	if c.GapCycles < 0 {
		c.GapCycles = 0
	}
	return nil
}

// Transaction kinds of the engine's in-flight tracking table.
const (
	dmaKindFetch uint8 = iota
	dmaKindRead
	dmaKindWrite
	dmaKindWriteback
)

// Engine is the descriptor-chain DMA: a sim.Clocked initiator that fetches
// linked descriptors from memory, moves each descriptor's payload as gather
// reads followed by scatter writes at the programmed burst length, posts a
// completion writeback into the descriptor's status word, then follows the
// link to the next descriptor.
type Engine struct {
	cfg    DMAConfig
	port   *bus.InitiatorPort
	clk    *sim.Clock
	rng    *sim.Rand
	ids    *bus.IDSource
	origin int

	pool    *bus.RequestPool
	attrCol *attr.Collector

	// Per-chain progress: desc is the current descriptor index.
	desc    int
	gapLeft int64
	// Per-descriptor state machine.
	fetchIssued  bool
	fetchDone    bool
	chunksTotal  int
	lastBeats    int
	readsIssued  int
	readsDone    int
	writesIssued int
	writesDone   int
	wbIssued     bool

	byReqID  map[uint64]uint8
	inFlight int

	descsFetched   int64
	bytesMoved     int64
	issuedTotal    int64
	completedTotal int64
	readsTotal     int64
	writesTotal    int64
	latency        stats.Histogram
}

// NewDMA builds a descriptor-chain DMA engine.
func NewDMA(cfg DMAConfig, clk *sim.Clock, ids *bus.IDSource, origin int) (*Engine, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	return &Engine{
		cfg:     cfg,
		port:    bus.NewInitiatorPort(cfg.Name, cfg.PortReqDepth, cfg.PortRespDepth),
		clk:     clk,
		rng:     sim.NewRand(cfg.Seed ^ 0xd3a),
		ids:     ids,
		origin:  origin,
		byReqID: map[uint64]uint8{},
	}, nil
}

// UseRequestPool makes the engine mint requests from (and return them to)
// the given pool. Call before simulation starts.
func (en *Engine) UseRequestPool(p *bus.RequestPool) { en.pool = p }

// UseAttribution makes the engine finish each tracked transaction's
// latency-attribution record at final-beat consumption.
func (en *Engine) UseAttribution(col *attr.Collector) { en.attrCol = col }

// Port returns the initiator port to attach to a fabric.
func (en *Engine) Port() *bus.InitiatorPort { return en.port }

// Name returns the engine name.
func (en *Engine) Name() string { return en.cfg.Name }

// Origin returns the platform-wide initiator identity.
func (en *Engine) Origin() int { return en.origin }

// Done reports whether the whole descriptor chain has been processed.
func (en *Engine) Done() bool { return en.desc >= en.cfg.Descriptors && en.inFlight == 0 }

// Issued returns the total transactions issued (fetches, payload moves and
// writebacks).
func (en *Engine) Issued() int64 { return en.issuedTotal }

// Completed returns the total completed transactions.
func (en *Engine) Completed() int64 { return en.completedTotal }

// burstBytes is the payload carried by one full programmed burst.
func (en *Engine) burstBytes() int { return en.cfg.BurstBeats * en.cfg.BytesPerBeat }

// minChunks lower-bounds the payload transactions of an undecoded
// descriptor: the smallest payload still needs this many gather reads (and
// as many scatter writes).
func (en *Engine) minChunks() int {
	n := ceilDiv(en.cfg.MinBytes, en.burstBytes())
	if n < 1 {
		n = 1
	}
	return n
}

// Unfinished lower-bounds the transactions not yet completed (to-issue plus
// in flight). Descriptors not yet decoded contribute their guaranteed
// minimum (fetch + MinBytes-worth of moves + writeback); the current decoded
// descriptor contributes its exact remainder. A lower bound is what the
// sharded run coordinator needs: it proves the run cannot drain inside a
// window while Unfinished exceeds the per-window completion bound.
func (en *Engine) Unfinished() int64 {
	var n int64 = int64(en.inFlight)
	if en.desc >= en.cfg.Descriptors {
		return n
	}
	minPerDesc := int64(2 + 2*en.minChunks())
	// Current descriptor.
	switch {
	case !en.fetchIssued:
		n += minPerDesc
	case !en.fetchDone:
		n += int64(1 + 2*en.minChunks())
	default:
		n += int64(en.chunksTotal-en.readsIssued) + int64(en.chunksTotal-en.writesIssued)
		if !en.wbIssued {
			n++
		}
	}
	// Descriptors still linked behind it.
	n += int64(en.cfg.Descriptors-en.desc-1) * minPerDesc
	return n
}

// MaxConcurrent bounds the engine's simultaneously in-flight transactions.
func (en *Engine) MaxConcurrent() int64 {
	if en.cfg.Outstanding > 1 {
		return int64(en.cfg.Outstanding)
	}
	return 1
}

// Eval collects responses and issues at most one new transaction per cycle.
func (en *Engine) Eval() {
	en.collect()
	if en.gapLeft > 0 {
		en.gapLeft--
		return
	}
	en.issue()
}

// Update commits the port FIFOs.
func (en *Engine) Update() { en.port.Update() }

func (en *Engine) collect() {
	for en.port.Resp.CanPop() {
		beat := en.port.Resp.Pop()
		if !beat.Last {
			continue
		}
		kind, ok := en.byReqID[beat.Req.ID]
		if !ok {
			continue
		}
		delete(en.byReqID, beat.Req.ID)
		en.inFlight--
		en.completedTotal++
		en.latency.Add(en.clk.Cycles() - beat.Req.IssueCycle)
		if pr := en.port.Probe; pr != nil {
			pr.RequestCompleted(beat.Req, en.clk.Cycles())
		}
		if rec := beat.Req.Attr; rec != nil && en.attrCol != nil {
			en.attrCol.Finish(rec, en.clk.NowPS())
		}
		switch kind {
		case dmaKindFetch:
			en.decodeDescriptor()
		case dmaKindRead:
			en.readsDone++
		case dmaKindWrite:
			en.writesDone++
		case dmaKindWriteback:
			en.advanceChain()
		}
		// The transaction was tracked, so this request is ours and this
		// beat is its final reference: recycle it.
		en.pool.Put(beat.Req)
	}
}

// decodeDescriptor interprets the just-fetched descriptor. The simulator is
// timing-accurate, not data-accurate: the descriptor's payload size is drawn
// deterministically from the engine's seeded PRNG, standing in for the
// contents the fetch returned.
func (en *Engine) decodeDescriptor() {
	en.fetchDone = true
	en.descsFetched++
	payload := en.rng.Range(en.cfg.MinBytes, en.cfg.MaxBytes)
	bb := en.burstBytes()
	en.chunksTotal = ceilDiv(payload, bb)
	if en.chunksTotal < 1 {
		en.chunksTotal = 1
	}
	tail := payload - (en.chunksTotal-1)*bb
	en.lastBeats = ceilDiv(tail, en.cfg.BytesPerBeat)
	if en.lastBeats < 1 {
		en.lastBeats = 1
	}
}

// advanceChain follows the link to the next descriptor after the completion
// writeback lands.
func (en *Engine) advanceChain() {
	en.desc++
	en.fetchIssued = false
	en.fetchDone = false
	en.chunksTotal = 0
	en.lastBeats = 0
	en.readsIssued = 0
	en.readsDone = 0
	en.writesIssued = 0
	en.writesDone = 0
	en.wbIssued = false
	en.gapLeft = en.cfg.GapCycles
}

// chunkBeats returns the burst length of payload chunk i.
func (en *Engine) chunkBeats(i int) int {
	if i == en.chunksTotal-1 {
		return en.lastBeats
	}
	return en.cfg.BurstBeats
}

// descAddr is the memory address of descriptor i in the chain.
func (en *Engine) descAddr(i int) uint64 {
	return en.cfg.DescBase + uint64(i*en.cfg.DescBeats*en.cfg.BytesPerBeat)
}

// scatterGatherAddr draws one scatter/gather slice address inside the given
// window, aligned to the programmed burst.
func (en *Engine) scatterGatherAddr(base uint64) uint64 {
	bb := uint64(en.burstBytes())
	span := en.cfg.RegionSize / bb
	if span == 0 {
		span = 1
	}
	return base + uint64(en.rng.Intn(int(span)))*bb
}

// issue advances the descriptor state machine by at most one transaction:
// fetch the descriptor, then scatter writes chasing completed gather reads,
// then the completion writeback once the payload has fully moved.
func (en *Engine) issue() {
	if en.desc >= en.cfg.Descriptors || !en.port.Req.CanPush() {
		return
	}
	switch {
	case !en.fetchIssued:
		if en.inFlight > 0 {
			return
		}
		en.push(dmaKindFetch, bus.OpRead, en.descAddr(en.desc), en.cfg.DescBeats, false)
		en.fetchIssued = true
	case !en.fetchDone:
		return
	case en.readsDone > en.writesIssued && en.inFlight < en.cfg.Outstanding:
		beats := en.chunkBeats(en.writesIssued)
		en.push(dmaKindWrite, bus.OpWrite, en.scatterGatherAddr(en.cfg.DstBase), beats, en.cfg.PostedWrites)
		en.writesIssued++
		en.bytesMoved += int64(beats * en.cfg.BytesPerBeat)
	case en.readsIssued < en.chunksTotal && en.inFlight < en.cfg.Outstanding:
		beats := en.chunkBeats(en.readsIssued)
		en.push(dmaKindRead, bus.OpRead, en.scatterGatherAddr(en.cfg.SrcBase), beats, false)
		en.readsIssued++
	case en.readsDone == en.chunksTotal && en.writesDone == en.chunksTotal && !en.wbIssued && en.inFlight == 0:
		en.push(dmaKindWriteback, bus.OpWrite, en.descAddr(en.desc), 1, false)
		en.wbIssued = true
	}
}

// push mints and issues one request. Posted writes complete at issue and are
// reclaimed by the consuming memory; everything else is tracked to its final
// response beat.
func (en *Engine) push(kind uint8, op bus.Op, addr uint64, beats int, posted bool) {
	req := en.pool.Get()
	*req = bus.Request{
		ID:           en.ids.Next(),
		Origin:       en.origin,
		Op:           op,
		Addr:         addr,
		Beats:        beats,
		BytesPerBeat: en.cfg.BytesPerBeat,
		Prio:         en.cfg.Prio,
		IssueCycle:   en.clk.Cycles(),
		IssuePS:      en.clk.NowPS(),
		MsgEnd:       true,
		Posted:       posted && op == bus.OpWrite,
	}
	en.port.Req.Push(req)
	if pr := en.port.Probe; pr != nil {
		pr.RequestIssued(req)
	}
	en.issuedTotal++
	if op == bus.OpRead {
		en.readsTotal++
	} else {
		en.writesTotal++
	}
	if req.Posted {
		en.completedTotal++ // posted writes complete at issue
		if kind == dmaKindWrite {
			en.writesDone++
		}
		return
	}
	en.byReqID[req.ID] = kind
	en.inFlight++
}

// Stats reports the engine as a single-agent IP row.
func (en *Engine) Stats() []iptg.AgentStats {
	return []iptg.AgentStats{{
		Name:         "chain",
		Issued:       en.issuedTotal,
		Completed:    en.completedTotal,
		Reads:        en.readsTotal,
		Writes:       en.writesTotal,
		Bytes:        en.bytesMoved,
		MeanLatency:  en.latency.Mean(),
		MaxLatency:   en.latency.Max(),
		P50Latency:   en.latency.Quantile(0.5),
		P90Latency:   en.latency.Quantile(0.9),
		CurrentPhase: en.desc,
	}}
}

// DescriptorsFetched returns how many descriptors the engine has fetched and
// decoded so far.
func (en *Engine) DescriptorsFetched() int64 { return en.descsFetched }

// BytesMoved returns the payload bytes the engine has scattered so far.
func (en *Engine) BytesMoved() int64 { return en.bytesMoved }

// RegisterMetrics registers the engine's telemetry: the shared "ip.<name>.*"
// initiator surface (so report tables render it like any other IP) plus the
// DMA-specific instruments under "io.dma.<name>.*".
func (en *Engine) RegisterMetrics(m *metrics.Registry, clock string) {
	p := "ip." + en.cfg.Name + "."
	m.CounterFunc(p+"issued", func() int64 { return en.issuedTotal })
	m.CounterFunc(p+"completed", func() int64 { return en.completedTotal })
	m.GaugeFunc(p+"req_depth", clock, func() int64 { return int64(en.port.Req.Len()) })
	ap := p + "chain."
	m.CounterFunc(ap+"issued", func() int64 { return en.issuedTotal })
	m.CounterFunc(ap+"completed", func() int64 { return en.completedTotal })
	m.CounterFunc(ap+"bytes", func() int64 { return en.bytesMoved })
	m.Histogram(ap+"latency", &en.latency)

	dp := "io.dma." + en.cfg.Name + "."
	m.CounterFunc(dp+"descriptors_fetched", func() int64 { return en.descsFetched })
	m.CounterFunc(dp+"bytes_moved", func() int64 { return en.bytesMoved })
	m.GaugeFunc(dp+"in_flight", clock, func() int64 { return int64(en.inFlight) })
}
