package io

import (
	"fmt"

	"mpsocsim/internal/attr"
	"mpsocsim/internal/bus"
	"mpsocsim/internal/iptg"
	"mpsocsim/internal/metrics"
	"mpsocsim/internal/sim"
	"mpsocsim/internal/stats"
)

// IRQConfig parameterizes an interrupt-driven I/O device agent.
type IRQConfig struct {
	Name string
	// Events is the total device events the agent raises over the run
	// (finite: the platform run drains when every initiator is Done).
	Events int
	// PeriodCycles is the nominal inter-event period; JitterCycles is the
	// uniform ± jitter applied per raise (the effective period never drops
	// below 1).
	PeriodCycles int64
	JitterCycles int64
	// DeadlineCycles is each event's service deadline, measured in this
	// agent's clock cycles from the raise to the final drain beat.
	DeadlineCycles int64
	// Bursts is how many bus transactions one interrupt service routine
	// performs (status reads + buffer drains); BurstBeats is the burst
	// length of each.
	Bursts     int
	BurstBeats int
	// ReadFrac is the probability each service transaction is a read
	// (device buffer drain) rather than a write (buffer refill / ack).
	ReadFrac float64
	// Outstanding bounds simultaneously in-flight service transactions.
	Outstanding int
	// RegionBase/RegionSize bound the device's buffer window.
	RegionBase uint64
	RegionSize uint64
	// BytesPerBeat is the agent's data width.
	BytesPerBeat int
	// Prio is the request priority label.
	Prio int
	// PortReqDepth/PortRespDepth size the bus interface FIFOs.
	PortReqDepth  int
	PortRespDepth int
	// Seed makes jitter and read/write choices deterministic.
	Seed uint64
}

func (c *IRQConfig) normalize() error {
	if c.Name == "" {
		return fmt.Errorf("io: IRQ device needs a name")
	}
	if c.Events <= 0 {
		return fmt.Errorf("io: IRQ device %q: non-positive event count %d", c.Name, c.Events)
	}
	if c.PeriodCycles <= 0 {
		c.PeriodCycles = 400
	}
	if c.JitterCycles < 0 {
		c.JitterCycles = 0
	}
	if c.DeadlineCycles <= 0 {
		c.DeadlineCycles = 256
	}
	if c.Bursts <= 0 {
		c.Bursts = 4
	}
	if c.BurstBeats <= 0 {
		c.BurstBeats = 8
	}
	if c.ReadFrac < 0 || c.ReadFrac > 1 {
		c.ReadFrac = 0.75
	}
	if c.Outstanding <= 0 {
		c.Outstanding = 2
	}
	if c.BytesPerBeat <= 0 {
		c.BytesPerBeat = 8
	}
	if c.RegionSize == 0 {
		c.RegionSize = 1 << 20
	}
	if c.PortReqDepth <= 0 {
		c.PortReqDepth = 4
	}
	if c.PortRespDepth <= 0 {
		c.PortRespDepth = 8
	}
	return nil
}

// Device is an interrupt-driven I/O agent: a device-side event source raises
// an IRQ line on a jittered period; the modelled service routine drains the
// device buffer as a fixed number of bus transactions. Events queue while a
// service is in progress (the IRQ line stays asserted), service is strictly
// FIFO, and each event's service latency — raise to the final drain beat — is
// checked against the deadline.
type Device struct {
	cfg    IRQConfig
	port   *bus.InitiatorPort
	clk    *sim.Clock
	rng    *sim.Rand
	ids    *bus.IDSource
	origin int

	pool    *bus.RequestPool
	attrCol *attr.Collector

	// Raise side. raiseRing holds the raise cycle of each pending event,
	// preallocated to exactly cfg.Events (the hard upper bound on
	// simultaneously pending events), indexed head..head+pending.
	nextRaiseIn int64
	raiseRing   []int64
	head        int
	pending     int64
	pendingMax  int64

	// Service side: the head event's in-progress drain.
	burstsIssued int
	burstsDone   int

	byReqID  map[uint64]struct{}
	inFlight int

	raised         int64
	serviced       int64
	met            int64
	missed         int64
	issuedTotal    int64
	completedTotal int64
	readsTotal     int64
	writesTotal    int64
	bytesTotal     int64
	latency        stats.Histogram // per-transaction, cycles
	svcLatency     stats.Histogram // per-event raise→final-drain, cycles
}

// NewIRQ builds an interrupt-driven device agent.
func NewIRQ(cfg IRQConfig, clk *sim.Clock, ids *bus.IDSource, origin int) (*Device, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	d := &Device{
		cfg:       cfg,
		port:      bus.NewInitiatorPort(cfg.Name, cfg.PortReqDepth, cfg.PortRespDepth),
		clk:       clk,
		rng:       sim.NewRand(cfg.Seed ^ 0x12c),
		ids:       ids,
		origin:    origin,
		raiseRing: make([]int64, cfg.Events),
		byReqID:   make(map[uint64]struct{}, cfg.Outstanding),
	}
	d.nextRaiseIn = d.drawPeriod()
	return d, nil
}

// drawPeriod samples the next inter-raise interval: period ± uniform jitter,
// floored at 1 cycle.
func (d *Device) drawPeriod() int64 {
	p := d.cfg.PeriodCycles
	if j := d.cfg.JitterCycles; j > 0 {
		p += int64(d.rng.Range(int(-j), int(j)))
	}
	if p < 1 {
		p = 1
	}
	return p
}

// UseRequestPool makes the device mint requests from (and return them to)
// the given pool. Call before simulation starts.
func (d *Device) UseRequestPool(p *bus.RequestPool) { d.pool = p }

// UseAttribution makes the device finish each transaction's attribution
// record at final-beat consumption.
func (d *Device) UseAttribution(col *attr.Collector) { d.attrCol = col }

// Port returns the initiator port to attach to a fabric.
func (d *Device) Port() *bus.InitiatorPort { return d.port }

// Name returns the device name.
func (d *Device) Name() string { return d.cfg.Name }

// Origin returns the platform-wide initiator identity.
func (d *Device) Origin() int { return d.origin }

// Done reports whether every device event has been raised and serviced.
func (d *Device) Done() bool { return d.serviced >= int64(d.cfg.Events) }

// Issued returns the total service transactions issued.
func (d *Device) Issued() int64 { return d.issuedTotal }

// Completed returns the total completed service transactions.
func (d *Device) Completed() int64 { return d.completedTotal }

// Unfinished returns exactly the service transactions not yet completed
// across the device's whole lifetime (every service transaction is tracked,
// so the remaining count is known in closed form).
func (d *Device) Unfinished() int64 {
	return int64(d.cfg.Events)*int64(d.cfg.Bursts) - d.completedTotal
}

// MaxConcurrent bounds the device's simultaneously in-flight transactions.
func (d *Device) MaxConcurrent() int64 { return int64(d.cfg.Outstanding) }

// Eval raises due events, collects drain beats and issues at most one new
// service transaction per cycle.
func (d *Device) Eval() {
	d.raise()
	d.collect()
	d.issue()
}

// Update commits the port FIFOs.
func (d *Device) Update() { d.port.Update() }

// raise fires the device event source: count down the jittered period and
// assert the IRQ line (append to the pending ring) when it expires.
func (d *Device) raise() {
	if d.raised >= int64(d.cfg.Events) {
		return
	}
	d.nextRaiseIn--
	if d.nextRaiseIn > 0 {
		return
	}
	d.raiseRing[(d.head+int(d.pending))%len(d.raiseRing)] = d.clk.Cycles()
	d.raised++
	d.pending++
	if d.pending > d.pendingMax {
		d.pendingMax = d.pending
	}
	d.nextRaiseIn = d.drawPeriod()
}

func (d *Device) collect() {
	for d.port.Resp.CanPop() {
		beat := d.port.Resp.Pop()
		if !beat.Last {
			continue
		}
		if _, ok := d.byReqID[beat.Req.ID]; !ok {
			continue
		}
		delete(d.byReqID, beat.Req.ID)
		d.inFlight--
		d.completedTotal++
		d.burstsDone++
		d.latency.Add(d.clk.Cycles() - beat.Req.IssueCycle)
		if pr := d.port.Probe; pr != nil {
			pr.RequestCompleted(beat.Req, d.clk.Cycles())
		}
		if rec := beat.Req.Attr; rec != nil && d.attrCol != nil {
			d.attrCol.Finish(rec, d.clk.NowPS())
		}
		d.pool.Put(beat.Req)
		if d.burstsDone == d.cfg.Bursts {
			d.completeEvent()
		}
	}
}

// completeEvent closes the head event's service: the final drain beat just
// landed, so score the raise→now latency against the deadline and pop the
// IRQ ring.
func (d *Device) completeEvent() {
	svc := d.clk.Cycles() - d.raiseRing[d.head]
	d.svcLatency.Add(svc)
	if svc > d.cfg.DeadlineCycles {
		d.missed++
	} else {
		d.met++
	}
	d.serviced++
	d.head = (d.head + 1) % len(d.raiseRing)
	d.pending--
	d.burstsIssued = 0
	d.burstsDone = 0
}

// issue advances the head event's service routine by at most one transaction.
func (d *Device) issue() {
	if d.pending == 0 || d.burstsIssued >= d.cfg.Bursts ||
		d.inFlight >= d.cfg.Outstanding || !d.port.Req.CanPush() {
		return
	}
	op := bus.OpWrite
	if d.rng.Bool(d.cfg.ReadFrac) {
		op = bus.OpRead
	}
	bb := uint64(d.cfg.BurstBeats * d.cfg.BytesPerBeat)
	span := d.cfg.RegionSize / bb
	if span == 0 {
		span = 1
	}
	addr := d.cfg.RegionBase + uint64(d.rng.Intn(int(span)))*bb
	req := d.pool.Get()
	*req = bus.Request{
		ID:           d.ids.Next(),
		Origin:       d.origin,
		Op:           op,
		Addr:         addr,
		Beats:        d.cfg.BurstBeats,
		BytesPerBeat: d.cfg.BytesPerBeat,
		Prio:         d.cfg.Prio,
		IssueCycle:   d.clk.Cycles(),
		IssuePS:      d.clk.NowPS(),
		MsgEnd:       true,
	}
	d.port.Req.Push(req)
	if pr := d.port.Probe; pr != nil {
		pr.RequestIssued(req)
	}
	d.issuedTotal++
	d.bytesTotal += int64(req.Bytes())
	if op == bus.OpRead {
		d.readsTotal++
	} else {
		d.writesTotal++
	}
	d.byReqID[req.ID] = struct{}{}
	d.inFlight++
	d.burstsIssued++
}

// DeadlineStats implements DeadlineTracker.
func (d *Device) DeadlineStats() DeadlineStats {
	return deadlineStats(d.cfg.Name, d.cfg.DeadlineCycles,
		d.raised, d.serviced, d.met, d.missed, d.pendingMax, &d.svcLatency)
}

// Missed returns the deadline-miss count so far.
func (d *Device) Missed() int64 { return d.missed }

// Stats reports the device as a single-agent IP row.
func (d *Device) Stats() []iptg.AgentStats {
	return []iptg.AgentStats{{
		Name:         "isr",
		Issued:       d.issuedTotal,
		Completed:    d.completedTotal,
		Reads:        d.readsTotal,
		Writes:       d.writesTotal,
		Bytes:        d.bytesTotal,
		MeanLatency:  d.latency.Mean(),
		MaxLatency:   d.latency.Max(),
		P50Latency:   d.latency.Quantile(0.5),
		P90Latency:   d.latency.Quantile(0.9),
		CurrentPhase: int(d.serviced),
	}}
}

// RegisterMetrics registers the device's telemetry: the shared "ip.<name>.*"
// initiator surface plus IRQ-specific instruments under "io.irq.<name>.*".
func (d *Device) RegisterMetrics(m *metrics.Registry, clock string) {
	p := "ip." + d.cfg.Name + "."
	m.CounterFunc(p+"issued", func() int64 { return d.issuedTotal })
	m.CounterFunc(p+"completed", func() int64 { return d.completedTotal })
	m.GaugeFunc(p+"req_depth", clock, func() int64 { return int64(d.port.Req.Len()) })
	ap := p + "isr."
	m.CounterFunc(ap+"issued", func() int64 { return d.issuedTotal })
	m.CounterFunc(ap+"completed", func() int64 { return d.completedTotal })
	m.CounterFunc(ap+"bytes", func() int64 { return d.bytesTotal })
	m.Histogram(ap+"latency", &d.latency)

	ip := "io.irq." + d.cfg.Name + "."
	m.CounterFunc(ip+"events_raised", func() int64 { return d.raised })
	m.CounterFunc(ip+"events_serviced", func() int64 { return d.serviced })
	m.CounterFunc(ip+"deadline_misses", func() int64 { return d.missed })
	m.GaugeFunc(ip+"pending", clock, func() int64 { return d.pending })
	m.Histogram(ip+"service_latency", &d.svcLatency)
}
