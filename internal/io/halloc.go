package io

import (
	"fmt"

	"mpsocsim/internal/attr"
	"mpsocsim/internal/bus"
	"mpsocsim/internal/iptg"
	"mpsocsim/internal/metrics"
	"mpsocsim/internal/sim"
	"mpsocsim/internal/stats"
)

// AllocConfig parameterizes the software heap-allocator traffic source.
type AllocConfig struct {
	Name string
	// Ops is the total malloc/free operations performed over the run.
	Ops int
	// MinBytes/MaxBytes bound the allocation-size draw.
	MinBytes, MaxBytes int
	// HeapBase/HeapSize bound the modelled heap arena; the first 4 KiB of
	// the arena hold the allocator's size-class free-list bins.
	HeapBase uint64
	HeapSize uint64
	// LiveCap caps simultaneously live blocks: at the cap the allocator
	// must free before it can malloc (steady-state churn).
	LiveCap int
	// MallocFrac is the probability an unconstrained op is a malloc
	// (live==0 forces malloc, live==LiveCap forces free).
	MallocFrac float64
	// GapMean is the mean geometric idle gap between operations, in
	// cycles (software does real work between heap calls).
	GapMean float64
	// BytesPerBeat is the data width at the allocator's attach point.
	BytesPerBeat int
	// TouchBeatsCap caps the payload-touch write burst of a malloc.
	TouchBeatsCap int
	// Prio is the request priority label.
	Prio int
	// PortReqDepth/PortRespDepth size the bus interface FIFOs.
	PortReqDepth  int
	PortRespDepth int
	// Seed makes sizes, op choices and gaps deterministic.
	Seed uint64
}

func (c *AllocConfig) normalize() error {
	if c.Name == "" {
		return fmt.Errorf("io: heap allocator needs a name")
	}
	if c.Ops <= 0 {
		return fmt.Errorf("io: heap allocator %q: non-positive op count %d", c.Name, c.Ops)
	}
	if c.MinBytes <= 0 {
		c.MinBytes = 16
	}
	if c.MaxBytes < c.MinBytes {
		c.MaxBytes = 4096
		if c.MaxBytes < c.MinBytes {
			c.MaxBytes = c.MinBytes
		}
	}
	if c.LiveCap <= 0 {
		c.LiveCap = 32
	}
	if c.MallocFrac <= 0 || c.MallocFrac >= 1 {
		c.MallocFrac = 0.55
	}
	if c.GapMean < 0 {
		c.GapMean = 0
	}
	if c.BytesPerBeat <= 0 {
		c.BytesPerBeat = 4
	}
	if c.TouchBeatsCap <= 0 {
		c.TouchBeatsCap = 16
	}
	if c.HeapSize == 0 {
		c.HeapSize = 1 << 22
	}
	if c.PortReqDepth <= 0 {
		c.PortReqDepth = 4
	}
	if c.PortRespDepth <= 0 {
		c.PortRespDepth = 8
	}
	return nil
}

// Steps of the two-transaction malloc/free sequences.
const (
	hsIdle       uint8 = iota // between ops (gap countdown)
	hsMetaIssued              // step 1 in flight: bin read (malloc) / header read (free)
	hsBodyReady               // step 1 done, step 2 (write) not yet issued
	hsBodyIssued              // step 2 in flight
)

// Allocator is the software heap-allocator traffic source (after Villa et
// al.'s dynamic-memory co-simulation): each malloc is a free-list bin read
// followed by a header+payload-touch write, each free is a header read
// followed by a free-list link write, all hitting the memory path like the
// real allocator running on the DSP would. Addresses are deterministic: a
// bump cursor (64-byte aligned, wrapping) allocates block addresses and a
// preallocated live table tracks blocks to free.
type Allocator struct {
	cfg    AllocConfig
	port   *bus.InitiatorPort
	clk    *sim.Clock
	rng    *sim.Rand
	ids    *bus.IDSource
	origin int

	pool    *bus.RequestPool
	attrCol *attr.Collector

	opsDone  int64
	gapLeft  int64
	step     uint8
	opFree   bool   // current op is a free
	opSize   int    // current op's block size
	opAddr   uint64 // current op's block address
	reqID    uint64 // the in-flight transaction (one at a time)
	cursor   uint64 // bump offset into the arena, past the bin table
	liveAddr []uint64
	liveSize []int
	live     int

	mallocs        int64
	frees          int64
	issuedTotal    int64
	completedTotal int64
	readsTotal     int64
	writesTotal    int64
	bytesTotal     int64
	allocedBytes   int64
	latency        stats.Histogram
}

// binTableBytes reserves the head of the arena for the size-class bins.
const binTableBytes = 4096

// NewAllocator builds the heap-allocator traffic source.
func NewAllocator(cfg AllocConfig, clk *sim.Clock, ids *bus.IDSource, origin int) (*Allocator, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	return &Allocator{
		cfg:      cfg,
		port:     bus.NewInitiatorPort(cfg.Name, cfg.PortReqDepth, cfg.PortRespDepth),
		clk:      clk,
		rng:      sim.NewRand(cfg.Seed ^ 0x4a11),
		ids:      ids,
		origin:   origin,
		liveAddr: make([]uint64, cfg.LiveCap),
		liveSize: make([]int, cfg.LiveCap),
	}, nil
}

// UseRequestPool makes the allocator mint requests from (and return them to)
// the given pool. Call before simulation starts.
func (h *Allocator) UseRequestPool(p *bus.RequestPool) { h.pool = p }

// UseAttribution makes the allocator finish each transaction's attribution
// record at final-beat consumption.
func (h *Allocator) UseAttribution(col *attr.Collector) { h.attrCol = col }

// Port returns the initiator port to attach to a fabric.
func (h *Allocator) Port() *bus.InitiatorPort { return h.port }

// Name returns the allocator name.
func (h *Allocator) Name() string { return h.cfg.Name }

// Origin returns the platform-wide initiator identity.
func (h *Allocator) Origin() int { return h.origin }

// Done reports whether every heap operation has completed.
func (h *Allocator) Done() bool { return h.opsDone >= int64(h.cfg.Ops) }

// Issued returns the total transactions issued.
func (h *Allocator) Issued() int64 { return h.issuedTotal }

// Completed returns the total completed transactions.
func (h *Allocator) Completed() int64 { return h.completedTotal }

// Unfinished returns exactly the transactions not yet completed: every op is
// exactly two tracked transactions.
func (h *Allocator) Unfinished() int64 {
	return 2*int64(h.cfg.Ops) - h.completedTotal
}

// MaxConcurrent bounds the allocator's in-flight transactions: the metadata
// dependency chain serializes them, so at most one.
func (h *Allocator) MaxConcurrent() int64 { return 1 }

// binAddr maps a size class to its free-list bin slot.
func (h *Allocator) binAddr(size int) uint64 {
	return h.cfg.HeapBase + uint64(size/64*8)%binTableBytes
}

// bumpAlloc carves the next 64-byte-aligned block from the arena cursor,
// wrapping past the end (the model is timing-accurate; overlap is fine).
func (h *Allocator) bumpAlloc(size int) uint64 {
	aligned := uint64((size + 63) &^ 63)
	body := h.cfg.HeapSize - binTableBytes
	if h.cursor+aligned > body {
		h.cursor = 0
	}
	addr := h.cfg.HeapBase + binTableBytes + h.cursor
	h.cursor += aligned
	return addr
}

// Eval collects the in-flight response and advances the op state machine,
// issuing at most one transaction per cycle.
func (h *Allocator) Eval() {
	h.collect()
	if h.Done() {
		return
	}
	if h.gapLeft > 0 {
		h.gapLeft--
		return
	}
	h.issue()
}

// Update commits the port FIFOs.
func (h *Allocator) Update() { h.port.Update() }

func (h *Allocator) collect() {
	for h.port.Resp.CanPop() {
		beat := h.port.Resp.Pop()
		if !beat.Last || beat.Req.ID != h.reqID {
			continue
		}
		h.reqID = 0
		h.completedTotal++
		h.latency.Add(h.clk.Cycles() - beat.Req.IssueCycle)
		if pr := h.port.Probe; pr != nil {
			pr.RequestCompleted(beat.Req, h.clk.Cycles())
		}
		if rec := beat.Req.Attr; rec != nil && h.attrCol != nil {
			h.attrCol.Finish(rec, h.clk.NowPS())
		}
		h.pool.Put(beat.Req)
		switch h.step {
		case hsMetaIssued:
			h.step = hsBodyReady
		case hsBodyIssued:
			h.finishOp()
		}
	}
}

// startOp picks the next operation: malloc when nothing is live, free when
// the live table is full, otherwise a seeded biased coin.
func (h *Allocator) startOp() {
	switch {
	case h.live == 0:
		h.opFree = false
	case h.live == h.cfg.LiveCap:
		h.opFree = true
	default:
		h.opFree = !h.rng.Bool(h.cfg.MallocFrac)
	}
	if h.opFree {
		v := h.rng.Intn(h.live)
		h.opAddr = h.liveAddr[v]
		h.opSize = h.liveSize[v]
		// Swap-remove the victim.
		h.live--
		h.liveAddr[v] = h.liveAddr[h.live]
		h.liveSize[v] = h.liveSize[h.live]
	} else {
		h.opSize = h.rng.Range(h.cfg.MinBytes, h.cfg.MaxBytes)
		h.opAddr = h.bumpAlloc(h.opSize)
	}
}

// finishOp closes the current op and books the idle gap before the next.
func (h *Allocator) finishOp() {
	if h.opFree {
		h.frees++
	} else {
		h.mallocs++
		h.allocedBytes += int64(h.opSize)
		h.liveAddr[h.live] = h.opAddr
		h.liveSize[h.live] = h.opSize
		h.live++
	}
	h.opsDone++
	h.step = hsIdle
	h.gapLeft = int64(h.rng.Geometric(h.cfg.GapMean))
}

// issue advances the current op: metadata read first (free-list bin for
// malloc, block header for free), then the dependent write (header +
// payload touch for malloc, free-list link for free).
func (h *Allocator) issue() {
	if !h.port.Req.CanPush() {
		return
	}
	switch h.step {
	case hsIdle:
		h.startOp()
		if h.opFree {
			h.push(bus.OpRead, h.opAddr, 1) // read the block header
		} else {
			h.push(bus.OpRead, h.binAddr(h.opSize), 1) // walk the bin free list
		}
		h.step = hsMetaIssued
	case hsBodyReady:
		if h.opFree {
			h.push(bus.OpWrite, h.binAddr(h.opSize), 1) // link into the bin
		} else {
			beats := ceilDiv(h.opSize, h.cfg.BytesPerBeat)
			if beats > h.cfg.TouchBeatsCap {
				beats = h.cfg.TouchBeatsCap
			}
			if beats < 1 {
				beats = 1
			}
			h.push(bus.OpWrite, h.opAddr, beats) // header + first-touch
		}
		h.step = hsBodyIssued
	}
}

func (h *Allocator) push(op bus.Op, addr uint64, beats int) {
	req := h.pool.Get()
	*req = bus.Request{
		ID:           h.ids.Next(),
		Origin:       h.origin,
		Op:           op,
		Addr:         addr,
		Beats:        beats,
		BytesPerBeat: h.cfg.BytesPerBeat,
		Prio:         h.cfg.Prio,
		IssueCycle:   h.clk.Cycles(),
		IssuePS:      h.clk.NowPS(),
		MsgEnd:       true,
	}
	h.port.Req.Push(req)
	if pr := h.port.Probe; pr != nil {
		pr.RequestIssued(req)
	}
	h.reqID = req.ID
	h.issuedTotal++
	h.bytesTotal += int64(req.Bytes())
	if op == bus.OpRead {
		h.readsTotal++
	} else {
		h.writesTotal++
	}
}

// Mallocs returns the completed allocation count.
func (h *Allocator) Mallocs() int64 { return h.mallocs }

// Frees returns the completed free count.
func (h *Allocator) Frees() int64 { return h.frees }

// Stats reports the allocator as a single-agent IP row.
func (h *Allocator) Stats() []iptg.AgentStats {
	return []iptg.AgentStats{{
		Name:         "heap",
		Issued:       h.issuedTotal,
		Completed:    h.completedTotal,
		Reads:        h.readsTotal,
		Writes:       h.writesTotal,
		Bytes:        h.bytesTotal,
		MeanLatency:  h.latency.Mean(),
		MaxLatency:   h.latency.Max(),
		P50Latency:   h.latency.Quantile(0.5),
		P90Latency:   h.latency.Quantile(0.9),
		CurrentPhase: int(h.opsDone),
	}}
}

// RegisterMetrics registers the allocator's telemetry: the shared
// "ip.<name>.*" initiator surface plus allocator-specific instruments under
// "io.halloc.<name>.*".
func (h *Allocator) RegisterMetrics(m *metrics.Registry, clock string) {
	p := "ip." + h.cfg.Name + "."
	m.CounterFunc(p+"issued", func() int64 { return h.issuedTotal })
	m.CounterFunc(p+"completed", func() int64 { return h.completedTotal })
	m.GaugeFunc(p+"req_depth", clock, func() int64 { return int64(h.port.Req.Len()) })
	ap := p + "heap."
	m.CounterFunc(ap+"issued", func() int64 { return h.issuedTotal })
	m.CounterFunc(ap+"completed", func() int64 { return h.completedTotal })
	m.CounterFunc(ap+"bytes", func() int64 { return h.bytesTotal })
	m.Histogram(ap+"latency", &h.latency)

	hp := "io.halloc." + h.cfg.Name + "."
	m.CounterFunc(hp+"mallocs", func() int64 { return h.mallocs })
	m.CounterFunc(hp+"frees", func() int64 { return h.frees })
	m.CounterFunc(hp+"alloced_bytes", func() int64 { return h.allocedBytes })
	m.GaugeFunc(hp+"live_blocks", clock, func() int64 { return int64(h.live) })
}
