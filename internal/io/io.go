// Package io models the third pillar of the paper's title — the I/O
// subsystem — as live platform initiators: a descriptor-chain DMA engine
// (linked descriptors fetched from memory, programmable burst length,
// scatter/gather source/destination windows, completion writeback), an
// interrupt-driven device agent (periodic jittered events raising an IRQ
// line, service latency measured from the raise to the final drain beat,
// per-event deadline tracking), and a software heap-allocator traffic source
// (malloc/free metadata + payload-touch pattern, after Villa et al.'s
// dynamic-memory co-simulation).
//
// All three implement the platform.Initiator surface shared with
// iptg.Generator and replay.Initiator: they issue at most one transaction per
// cycle through an owned bus.InitiatorPort, recycle requests through the
// platform pool, stamp IssuePS for latency attribution and close records at
// final-beat consumption, and carry full snapshot section codecs — so they
// compose with every fabric, capture/replay, attribution, metrics, sharding
// and checkpoint/restore like any other initiator (DESIGN.md §17).
package io

import "mpsocsim/internal/stats"

// DeadlineStats is one device agent's deadline accounting: how many events
// were raised and serviced, how many met or missed the deadline, and the
// shape of the raise-to-final-drain-beat service latency (agent-clock
// cycles). Met+Missed == Serviced always (conservation); Serviced trails
// Raised only while events are still pending.
type DeadlineStats struct {
	Device         string  `json:"device"`
	DeadlineCycles int64   `json:"deadline_cycles"`
	Raised         int64   `json:"raised"`
	Serviced       int64   `json:"serviced"`
	Met            int64   `json:"met"`
	Missed         int64   `json:"missed"`
	PendingMax     int64   `json:"pending_max"`
	MinSvcCycles   int64   `json:"min_svc_cycles"`
	MeanSvcCycles  float64 `json:"mean_svc_cycles"`
	MaxSvcCycles   int64   `json:"max_svc_cycles"`
	P50SvcCycles   int64   `json:"p50_svc_cycles"`
	P90SvcCycles   int64   `json:"p90_svc_cycles"`
}

// DeadlineTracker is implemented by initiators that track per-event service
// deadlines (the Device agent). The platform collects one DeadlineStats row
// per tracker into the run result's "deadlines" section.
type DeadlineTracker interface {
	DeadlineStats() DeadlineStats
}

// deadlineStats assembles the exported row from a device's counters.
func deadlineStats(name string, deadline, raised, serviced, met, missed, pendingMax int64, svc *stats.Histogram) DeadlineStats {
	ds := DeadlineStats{
		Device:         name,
		DeadlineCycles: deadline,
		Raised:         raised,
		Serviced:       serviced,
		Met:            met,
		Missed:         missed,
		PendingMax:     pendingMax,
	}
	if svc.N() > 0 {
		ds.MinSvcCycles = svc.Min()
		ds.MeanSvcCycles = svc.Mean()
		ds.MaxSvcCycles = svc.Max()
		ds.P50SvcCycles = svc.Quantile(0.5)
		ds.P90SvcCycles = svc.Quantile(0.9)
	}
	return ds
}

// ceilDiv returns ceil(a/b) for positive b.
func ceilDiv(a, b int) int {
	if a <= 0 {
		return 0
	}
	return (a + b - 1) / b
}
