package io

import (
	"bytes"
	"testing"

	"mpsocsim/internal/bus"
	"mpsocsim/internal/mem"
	"mpsocsim/internal/sim"
	"mpsocsim/internal/snapshot"
	"mpsocsim/internal/stbus"
)

// initiator is the slice of the platform.Initiator surface the rig needs.
type initiator interface {
	sim.Clocked
	Port() *bus.InitiatorPort
	Done() bool
	Issued() int64
	Completed() int64
	Unfinished() int64
}

// rig wires one io initiator to a memory through an STBus node.
type rig struct {
	k   *sim.Kernel
	clk *sim.Clock
	in  initiator
	m   *mem.Memory
}

func newRig(t *testing.T, mk func(clk *sim.Clock, ids *bus.IDSource) (initiator, error)) *rig {
	t.Helper()
	k := sim.NewKernel()
	clk := k.NewClock("clk", 250)
	in, err := mk(clk, &bus.IDSource{})
	if err != nil {
		t.Fatal(err)
	}
	node := stbus.NewNode("n", stbus.DefaultConfig(), bus.Single(0))
	m := mem.New("mem", mem.Config{WaitStates: 1, ReqDepth: 2, RespDepth: 4})
	node.AttachInitiator(in.Port())
	node.AttachTarget(m.Port())
	clk.Register(in)
	clk.Register(node)
	clk.Register(m)
	return &rig{k: k, clk: clk, in: in, m: m}
}

func (r *rig) run(t *testing.T) {
	t.Helper()
	if !r.k.RunWhile(func() bool { return !r.in.Done() }, 1e10) {
		t.Fatalf("timeout: issued=%d completed=%d", r.in.Issued(), r.in.Completed())
	}
}

func dmaCfg() DMAConfig {
	return DMAConfig{
		Name:        "dma",
		Descriptors: 4,
		DescBase:    0x10000,
		SrcBase:     0x20000,
		DstBase:     0x40000,
		RegionSize:  1 << 16,
		MinBytes:    256,
		MaxBytes:    512,
		BurstBeats:  4,
		Outstanding: 3,
		Seed:        7,
	}
}

func TestDMAChainCompletes(t *testing.T) {
	r := newRig(t, func(clk *sim.Clock, ids *bus.IDSource) (initiator, error) {
		return NewDMA(dmaCfg(), clk, ids, 5)
	})
	r.run(t)
	en := r.in.(*Engine)
	if en.DescriptorsFetched() != 4 {
		t.Fatalf("descriptors fetched = %d, want 4", en.DescriptorsFetched())
	}
	if en.Issued() != en.Completed() {
		t.Fatalf("issued %d != completed %d", en.Issued(), en.Completed())
	}
	if en.Unfinished() != 0 {
		t.Fatalf("unfinished = %d after drain", en.Unfinished())
	}
	// Payload is drawn in [256,512] per descriptor, moved as whole beats.
	bb := int64(4 * 8)
	if mv := en.BytesMoved(); mv < 4*256 || mv > 4*(512+bb) {
		t.Fatalf("bytes moved = %d, outside descriptor payload bounds", mv)
	}
	// Each descriptor costs a fetch, N reads, N writes and a writeback.
	s := en.Stats()[0]
	if s.Reads+s.Writes != en.Issued() {
		t.Fatalf("reads+writes = %d, issued %d", s.Reads+s.Writes, en.Issued())
	}
	if s.MeanLatency <= 0 {
		t.Fatal("latency not recorded")
	}
}

func TestDMAPostedWritesCompleteAtIssue(t *testing.T) {
	cfg := dmaCfg()
	cfg.PostedWrites = true
	r := newRig(t, func(clk *sim.Clock, ids *bus.IDSource) (initiator, error) {
		return NewDMA(cfg, clk, ids, 5)
	})
	r.run(t)
	if r.in.Issued() != r.in.Completed() {
		t.Fatalf("issued %d != completed %d with posted writes", r.in.Issued(), r.in.Completed())
	}
	if r.in.(*Engine).DescriptorsFetched() != 4 {
		t.Fatal("chain did not complete")
	}
}

// The sharded-run coordinator needs Unfinished to never overestimate the
// transactions still coming: sample it through the run and check every
// sample against the completions that actually followed.
func TestDMAUnfinishedIsLowerBound(t *testing.T) {
	r := newRig(t, func(clk *sim.Clock, ids *bus.IDSource) (initiator, error) {
		return NewDMA(dmaCfg(), clk, ids, 5)
	})
	type sample struct{ unfinished, completed int64 }
	var samples []sample
	r.clk.Register(&sim.ClockedFunc{OnEval: func() {
		samples = append(samples, sample{r.in.Unfinished(), r.in.Completed()})
	}})
	r.run(t)
	final := r.in.Completed()
	for i, s := range samples {
		if s.unfinished > final-s.completed {
			t.Fatalf("sample %d: Unfinished()=%d overestimates remaining %d",
				i, s.unfinished, final-s.completed)
		}
	}
}

func TestDMAConfigValidation(t *testing.T) {
	clk := sim.NewKernel().NewClock("c", 100)
	if _, err := NewDMA(DMAConfig{Descriptors: 1}, clk, &bus.IDSource{}, 0); err == nil {
		t.Error("nameless DMA config should be rejected")
	}
	if _, err := NewDMA(DMAConfig{Name: "d"}, clk, &bus.IDSource{}, 0); err == nil {
		t.Error("zero-descriptor DMA config should be rejected")
	}
}

func irqCfg() IRQConfig {
	return IRQConfig{
		Name:           "irq",
		Events:         12,
		PeriodCycles:   60,
		JitterCycles:   10,
		DeadlineCycles: 10000,
		Bursts:         3,
		BurstBeats:     4,
		ReadFrac:       0.75,
		RegionBase:     0x80000,
		RegionSize:     1 << 16,
		Seed:           11,
	}
}

func TestIRQAllDeadlinesMetWhenLoose(t *testing.T) {
	r := newRig(t, func(clk *sim.Clock, ids *bus.IDSource) (initiator, error) {
		return NewIRQ(irqCfg(), clk, ids, 6)
	})
	r.run(t)
	ds := r.in.(*Device).DeadlineStats()
	if ds.Raised != 12 || ds.Serviced != 12 {
		t.Fatalf("raised/serviced = %d/%d, want 12/12", ds.Raised, ds.Serviced)
	}
	if ds.Met+ds.Missed != ds.Serviced {
		t.Fatalf("met %d + missed %d != serviced %d", ds.Met, ds.Missed, ds.Serviced)
	}
	if ds.Missed != 0 {
		t.Fatalf("missed = %d under a 10000-cycle deadline", ds.Missed)
	}
	if ds.MeanSvcCycles <= 0 || ds.MaxSvcCycles < ds.MinSvcCycles {
		t.Fatalf("service latency stats malformed: %+v", ds)
	}
	if r.in.Unfinished() != 0 {
		t.Fatalf("unfinished = %d after drain", r.in.Unfinished())
	}
}

func TestIRQAllDeadlinesMissedWhenTight(t *testing.T) {
	cfg := irqCfg()
	cfg.DeadlineCycles = 1 // a 3-transaction service can never finish in 1 cycle
	r := newRig(t, func(clk *sim.Clock, ids *bus.IDSource) (initiator, error) {
		return NewIRQ(cfg, clk, ids, 6)
	})
	r.run(t)
	ds := r.in.(*Device).DeadlineStats()
	if ds.Missed != 12 || ds.Met != 0 {
		t.Fatalf("missed/met = %d/%d, want 12/0", ds.Missed, ds.Met)
	}
}

// When events arrive faster than the service drain, the IRQ line backs up;
// pending depth must be tracked and every event still serviced in order.
func TestIRQEventBackpressure(t *testing.T) {
	cfg := irqCfg()
	cfg.PeriodCycles = 2
	cfg.JitterCycles = 0
	r := newRig(t, func(clk *sim.Clock, ids *bus.IDSource) (initiator, error) {
		return NewIRQ(cfg, clk, ids, 6)
	})
	r.run(t)
	ds := r.in.(*Device).DeadlineStats()
	if ds.PendingMax < 2 {
		t.Fatalf("pending max = %d, want backlog under a 2-cycle period", ds.PendingMax)
	}
	if ds.Serviced != 12 {
		t.Fatalf("serviced = %d, want 12", ds.Serviced)
	}
}

func TestIRQConfigValidation(t *testing.T) {
	clk := sim.NewKernel().NewClock("c", 100)
	if _, err := NewIRQ(IRQConfig{Events: 1}, clk, &bus.IDSource{}, 0); err == nil {
		t.Error("nameless IRQ config should be rejected")
	}
	if _, err := NewIRQ(IRQConfig{Name: "q"}, clk, &bus.IDSource{}, 0); err == nil {
		t.Error("zero-event IRQ config should be rejected")
	}
}

func allocCfg() AllocConfig {
	return AllocConfig{
		Name:     "heap",
		Ops:      40,
		MinBytes: 16,
		MaxBytes: 1024,
		HeapBase: 0x100000,
		HeapSize: 1 << 20,
		LiveCap:  8,
		GapMean:  2,
		Seed:     13,
	}
}

func TestAllocatorCompletes(t *testing.T) {
	r := newRig(t, func(clk *sim.Clock, ids *bus.IDSource) (initiator, error) {
		return NewAllocator(allocCfg(), clk, ids, 9)
	})
	r.run(t)
	h := r.in.(*Allocator)
	if h.Mallocs()+h.Frees() != 40 {
		t.Fatalf("mallocs %d + frees %d != 40", h.Mallocs(), h.Frees())
	}
	if h.Frees() > h.Mallocs() {
		t.Fatalf("freed %d blocks but only allocated %d", h.Frees(), h.Mallocs())
	}
	// Every op is exactly two tracked transactions.
	if h.Issued() != 80 || h.Completed() != 80 {
		t.Fatalf("issued/completed = %d/%d, want 80/80", h.Issued(), h.Completed())
	}
	if h.Unfinished() != 0 {
		t.Fatalf("unfinished = %d after drain", h.Unfinished())
	}
	if h.live > allocCfg().LiveCap {
		t.Fatalf("live blocks %d exceed cap", h.live)
	}
}

func TestAllocatorAddressesStayInArena(t *testing.T) {
	cfg := allocCfg()
	r := newRig(t, func(clk *sim.Clock, ids *bus.IDSource) (initiator, error) {
		return NewAllocator(cfg, clk, ids, 9)
	})
	lo, hi := cfg.HeapBase, cfg.HeapBase+cfg.HeapSize
	r.in.Port().Probe = probeFunc(func(req *bus.Request) {
		if req.Addr < lo || req.Addr >= hi {
			t.Errorf("heap transaction at %#x outside arena [%#x,%#x)", req.Addr, lo, hi)
		}
	})
	r.run(t)
}

// probeFunc adapts a request callback to bus.PortProbe.
type probeFunc func(*bus.Request)

func (f probeFunc) RequestIssued(r *bus.Request)                 { f(r) }
func (f probeFunc) RequestCompleted(r *bus.Request, cycle int64) {}

func TestAllocatorConfigValidation(t *testing.T) {
	clk := sim.NewKernel().NewClock("c", 100)
	if _, err := NewAllocator(AllocConfig{Ops: 1}, clk, &bus.IDSource{}, 0); err == nil {
		t.Error("nameless allocator config should be rejected")
	}
	if _, err := NewAllocator(AllocConfig{Name: "h"}, clk, &bus.IDSource{}, 0); err == nil {
		t.Error("zero-op allocator config should be rejected")
	}
}

// All three initiators must be cycle-deterministic for a fixed seed.
func TestDeterminismAcrossRuns(t *testing.T) {
	builders := map[string]func(clk *sim.Clock, ids *bus.IDSource) (initiator, error){
		"dma": func(clk *sim.Clock, ids *bus.IDSource) (initiator, error) {
			return NewDMA(dmaCfg(), clk, ids, 5)
		},
		"irq": func(clk *sim.Clock, ids *bus.IDSource) (initiator, error) {
			return NewIRQ(irqCfg(), clk, ids, 6)
		},
		"halloc": func(clk *sim.Clock, ids *bus.IDSource) (initiator, error) {
			return NewAllocator(allocCfg(), clk, ids, 9)
		},
	}
	for name, mk := range builders {
		once := func() (int64, int64) {
			r := newRig(t, mk)
			r.run(t)
			return r.clk.Cycles(), r.in.Issued()
		}
		c1, i1 := once()
		c2, i2 := once()
		if c1 != c2 || i1 != i2 {
			t.Errorf("%s: same seed diverged: cycles %d/%d issued %d/%d", name, c1, c2, i1, i2)
		}
	}
}

// Snapshot codec fidelity: freeze each initiator mid-run (in-flight
// transactions in the port FIFOs, a descriptor chain half-moved, events
// pending), decode into a fresh same-config instance and re-encode — the
// streams must match byte for byte.
func TestSnapshotRoundTripMidFlight(t *testing.T) {
	t.Run("dma", func(t *testing.T) {
		a := newRig(t, func(clk *sim.Clock, ids *bus.IDSource) (initiator, error) {
			return NewDMA(dmaCfg(), clk, ids, 5)
		})
		a.k.RunCycles(a.clk, 40) // mid-chain: fetch done, moves in flight
		en := a.in.(*Engine)
		if en.inFlight == 0 && en.desc == 0 && !en.fetchIssued {
			t.Fatal("test did not reach an interesting state")
		}
		e := snapshot.NewEncoder()
		en.EncodeState(e)

		b := newRig(t, func(clk *sim.Clock, ids *bus.IDSource) (initiator, error) {
			return NewDMA(dmaCfg(), clk, ids, 5)
		})
		en2 := b.in.(*Engine)
		d, err := snapshot.NewDecoder(e.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		en2.DecodeState(d, nil)
		if err := d.Err(); err != nil {
			t.Fatal(err)
		}
		e2 := snapshot.NewEncoder()
		en2.EncodeState(e2)
		if !bytes.Equal(e.Bytes(), e2.Bytes()) {
			t.Fatal("re-encoded DMA state differs")
		}
		if en2.inFlight != en.inFlight || en2.desc != en.desc || en2.Unfinished() != en.Unfinished() {
			t.Fatal("decoded DMA state differs from original")
		}
	})

	t.Run("irq", func(t *testing.T) {
		cfg := irqCfg()
		cfg.PeriodCycles = 8 // force pending backlog at snapshot time
		cfg.JitterCycles = 0
		a := newRig(t, func(clk *sim.Clock, ids *bus.IDSource) (initiator, error) {
			return NewIRQ(cfg, clk, ids, 6)
		})
		a.k.RunCycles(a.clk, 60)
		dev := a.in.(*Device)
		if dev.raised == 0 {
			t.Fatal("no events raised before snapshot")
		}
		e := snapshot.NewEncoder()
		dev.EncodeState(e)

		b := newRig(t, func(clk *sim.Clock, ids *bus.IDSource) (initiator, error) {
			return NewIRQ(cfg, clk, ids, 6)
		})
		dev2 := b.in.(*Device)
		d, err := snapshot.NewDecoder(e.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		dev2.DecodeState(d, nil)
		if err := d.Err(); err != nil {
			t.Fatal(err)
		}
		e2 := snapshot.NewEncoder()
		dev2.EncodeState(e2)
		if !bytes.Equal(e.Bytes(), e2.Bytes()) {
			t.Fatal("re-encoded IRQ state differs")
		}
		if dev2.pending != dev.pending || dev2.raised != dev.raised {
			t.Fatal("decoded IRQ state differs from original")
		}
	})

	t.Run("halloc", func(t *testing.T) {
		a := newRig(t, func(clk *sim.Clock, ids *bus.IDSource) (initiator, error) {
			return NewAllocator(allocCfg(), clk, ids, 9)
		})
		a.k.RunCycles(a.clk, 80)
		h := a.in.(*Allocator)
		if h.opsDone == 0 {
			t.Fatal("no ops completed before snapshot")
		}
		e := snapshot.NewEncoder()
		h.EncodeState(e)

		b := newRig(t, func(clk *sim.Clock, ids *bus.IDSource) (initiator, error) {
			return NewAllocator(allocCfg(), clk, ids, 9)
		})
		h2 := b.in.(*Allocator)
		d, err := snapshot.NewDecoder(e.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		h2.DecodeState(d, nil)
		if err := d.Err(); err != nil {
			t.Fatal(err)
		}
		e2 := snapshot.NewEncoder()
		h2.EncodeState(e2)
		if !bytes.Equal(e.Bytes(), e2.Bytes()) {
			t.Fatal("re-encoded allocator state differs")
		}
		if h2.live != h.live || h2.opsDone != h.opsDone {
			t.Fatal("decoded allocator state differs from original")
		}
	})
}

// Corrupt streams must fail cleanly, never panic.
func TestSnapshotDecodeRejectsCorruptKinds(t *testing.T) {
	a := newRig(t, func(clk *sim.Clock, ids *bus.IDSource) (initiator, error) {
		return NewDMA(dmaCfg(), clk, ids, 5)
	})
	a.k.RunCycles(a.clk, 40)
	e := snapshot.NewEncoder()
	a.in.(*Engine).EncodeState(e)
	raw := e.Bytes()
	for i := len(snapshot.Magic) + 1; i < len(raw); i++ {
		mut := append([]byte(nil), raw...)
		mut[i] ^= 0x5a
		d, err := snapshot.NewDecoder(mut)
		if err != nil {
			continue
		}
		b := newRig(t, func(clk *sim.Clock, ids *bus.IDSource) (initiator, error) {
			return NewDMA(dmaCfg(), clk, ids, 5)
		})
		// Must not panic; an error (or silent value change) is fine.
		b.in.(*Engine).DecodeState(d, nil)
	}
}
