package io

import (
	"sort"

	"mpsocsim/internal/attr"
	"mpsocsim/internal/bus"
	"mpsocsim/internal/snapshot"
)

// maxInFlight bounds the decoded in-flight tables; no configuration gets
// anywhere near it, so anything larger is a corrupt stream.
const maxInFlight = 1 << 16

// EncodeState serializes the DMA engine's mutable state (DESIGN.md §17): the
// owned port, the PRNG, chain progress, the current descriptor's move state,
// and the in-flight transaction kinds (sorted by request ID so the stream is
// deterministic). Configuration is spec-derived and not serialized.
func (en *Engine) EncodeState(e *snapshot.Encoder) {
	e.Tag('E')
	bus.EncodeInitiatorPortState(e, en.port)
	e.U(en.rng.State())
	e.I(int64(en.desc))
	e.I(en.gapLeft)
	e.Bool(en.fetchIssued)
	e.Bool(en.fetchDone)
	e.I(int64(en.chunksTotal))
	e.I(int64(en.lastBeats))
	e.I(int64(en.readsIssued))
	e.I(int64(en.readsDone))
	e.I(int64(en.writesIssued))
	e.I(int64(en.writesDone))
	e.Bool(en.wbIssued)
	ids := make([]uint64, 0, len(en.byReqID))
	for id := range en.byReqID {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	e.U(uint64(len(ids)))
	for _, id := range ids {
		e.U(id)
		e.U(uint64(en.byReqID[id]))
	}
	e.I(en.descsFetched)
	e.I(en.bytesMoved)
	e.I(en.issuedTotal)
	e.I(en.completedTotal)
	e.I(en.readsTotal)
	e.I(en.writesTotal)
	en.latency.EncodeState(e)
}

// DecodeState restores an engine serialized by EncodeState.
func (en *Engine) DecodeState(d *snapshot.Decoder, col *attr.Collector) {
	d.Tag('E')
	bus.DecodeInitiatorPortState(d, en.port, col)
	en.rng.SetState(d.U())
	en.desc = int(d.I())
	en.gapLeft = d.I()
	en.fetchIssued = d.Bool()
	en.fetchDone = d.Bool()
	en.chunksTotal = int(d.I())
	en.lastBeats = int(d.I())
	en.readsIssued = int(d.I())
	en.readsDone = int(d.I())
	en.writesIssued = int(d.I())
	en.writesDone = int(d.I())
	en.wbIssued = d.Bool()
	for id := range en.byReqID {
		delete(en.byReqID, id)
	}
	nid := d.N(maxInFlight)
	for i := 0; i < nid; i++ {
		id := d.U()
		kind := d.U()
		if d.Err() != nil {
			return
		}
		if kind > uint64(dmaKindWriteback) {
			d.Corrupt("io dma %q in-flight entry has unknown kind %d", en.cfg.Name, kind)
			return
		}
		en.byReqID[id] = uint8(kind)
	}
	en.inFlight = len(en.byReqID)
	en.descsFetched = d.I()
	en.bytesMoved = d.I()
	en.issuedTotal = d.I()
	en.completedTotal = d.I()
	en.readsTotal = d.I()
	en.writesTotal = d.I()
	en.latency.DecodeState(d)
}

// EncodeState serializes the IRQ device's mutable state: the owned port, the
// PRNG, the pending-event raise ring, the head event's service progress, the
// in-flight transaction IDs and the deadline counters.
func (dev *Device) EncodeState(e *snapshot.Encoder) {
	e.Tag('Q')
	bus.EncodeInitiatorPortState(e, dev.port)
	e.U(dev.rng.State())
	e.I(dev.nextRaiseIn)
	e.U(uint64(dev.pending))
	for i := int64(0); i < dev.pending; i++ {
		e.I(dev.raiseRing[(dev.head+int(i))%len(dev.raiseRing)])
	}
	e.I(dev.pendingMax)
	e.I(int64(dev.burstsIssued))
	e.I(int64(dev.burstsDone))
	ids := make([]uint64, 0, len(dev.byReqID))
	for id := range dev.byReqID {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	e.U(uint64(len(ids)))
	for _, id := range ids {
		e.U(id)
	}
	e.I(dev.raised)
	e.I(dev.serviced)
	e.I(dev.met)
	e.I(dev.missed)
	e.I(dev.issuedTotal)
	e.I(dev.completedTotal)
	e.I(dev.readsTotal)
	e.I(dev.writesTotal)
	e.I(dev.bytesTotal)
	dev.latency.EncodeState(e)
	dev.svcLatency.EncodeState(e)
}

// DecodeState restores a device serialized by EncodeState. Pending raises
// are re-packed from ring slot 0, which preserves FIFO order.
func (dev *Device) DecodeState(d *snapshot.Decoder, col *attr.Collector) {
	d.Tag('Q')
	bus.DecodeInitiatorPortState(d, dev.port, col)
	dev.rng.SetState(d.U())
	dev.nextRaiseIn = d.I()
	np := d.N(len(dev.raiseRing))
	if d.Err() != nil {
		return
	}
	dev.head = 0
	dev.pending = int64(np)
	for i := 0; i < np; i++ {
		dev.raiseRing[i] = d.I()
	}
	dev.pendingMax = d.I()
	dev.burstsIssued = int(d.I())
	dev.burstsDone = int(d.I())
	for id := range dev.byReqID {
		delete(dev.byReqID, id)
	}
	nid := d.N(maxInFlight)
	for i := 0; i < nid; i++ {
		dev.byReqID[d.U()] = struct{}{}
	}
	dev.inFlight = len(dev.byReqID)
	dev.raised = d.I()
	dev.serviced = d.I()
	dev.met = d.I()
	dev.missed = d.I()
	dev.issuedTotal = d.I()
	dev.completedTotal = d.I()
	dev.readsTotal = d.I()
	dev.writesTotal = d.I()
	dev.bytesTotal = d.I()
	dev.latency.DecodeState(d)
	dev.svcLatency.DecodeState(d)
}

// EncodeState serializes the heap allocator's mutable state: the owned port,
// the PRNG, the op state machine, the live-block table and the counters.
func (h *Allocator) EncodeState(e *snapshot.Encoder) {
	e.Tag('H')
	bus.EncodeInitiatorPortState(e, h.port)
	e.U(h.rng.State())
	e.I(h.opsDone)
	e.I(h.gapLeft)
	e.U(uint64(h.step))
	e.Bool(h.opFree)
	e.I(int64(h.opSize))
	e.U(h.opAddr)
	e.U(h.reqID)
	e.U(h.cursor)
	e.U(uint64(h.live))
	for i := 0; i < h.live; i++ {
		e.U(h.liveAddr[i])
		e.I(int64(h.liveSize[i]))
	}
	e.I(h.mallocs)
	e.I(h.frees)
	e.I(h.issuedTotal)
	e.I(h.completedTotal)
	e.I(h.readsTotal)
	e.I(h.writesTotal)
	e.I(h.bytesTotal)
	e.I(h.allocedBytes)
	h.latency.EncodeState(e)
}

// DecodeState restores an allocator serialized by EncodeState.
func (h *Allocator) DecodeState(d *snapshot.Decoder, col *attr.Collector) {
	d.Tag('H')
	bus.DecodeInitiatorPortState(d, h.port, col)
	h.rng.SetState(d.U())
	h.opsDone = d.I()
	h.gapLeft = d.I()
	step := d.U()
	if d.Err() != nil {
		return
	}
	if step > uint64(hsBodyIssued) {
		d.Corrupt("io halloc %q has unknown op step %d", h.cfg.Name, step)
		return
	}
	h.step = uint8(step)
	h.opFree = d.Bool()
	h.opSize = int(d.I())
	h.opAddr = d.U()
	h.reqID = d.U()
	h.cursor = d.U()
	nl := d.N(len(h.liveAddr))
	if d.Err() != nil {
		return
	}
	h.live = nl
	for i := 0; i < nl; i++ {
		h.liveAddr[i] = d.U()
		h.liveSize[i] = int(d.I())
	}
	h.mallocs = d.I()
	h.frees = d.I()
	h.issuedTotal = d.I()
	h.completedTotal = d.I()
	h.readsTotal = d.I()
	h.writesTotal = d.I()
	h.bytesTotal = d.I()
	h.allocedBytes = d.I()
	h.latency.DecodeState(d)
}
