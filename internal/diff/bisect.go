package diff

import (
	"bytes"
	"fmt"
	"io"
	"math/bits"

	"mpsocsim/internal/platform"
	"mpsocsim/internal/runner"
	"mpsocsim/internal/telemetry"
)

// BisectOptions tunes the divergence search. The zero value is usable.
type BisectOptions struct {
	// BudgetPS caps each variant's simulated time (default 5e12 ps — the
	// experiments budget). A variant that exhausts it counts as ended.
	BudgetPS int64
	// GridEvery is the shared checkpoint grid spacing in central cycles,
	// rounded up to a power of two (default 2048). A power-of-two span
	// makes the binary-search step count exactly log2(span).
	GridEvery int64
	// Horizon stops the forward grid walk once both variants agree past
	// this central cycle (0 = walk until both runs end).
	Horizon int64
	// TopFifos bounds the FIFO rows in each context block (default 10).
	TopFifos int
	// Workers sizes the paired-advance pool (default 2 — one per variant).
	Workers int
}

// WindowDelta records an instrument that moved by different amounts across
// the final agreeing-to-diverged window [agree_cycle, diverged_at].
type WindowDelta struct {
	Name   string `json:"name"`
	DeltaA int64  `json:"delta_a"`
	DeltaB int64  `json:"delta_b"`
}

// FifoDelta is a queue whose occupancy differs at the divergence instant.
type FifoDelta struct {
	Name  string `json:"name"`
	LenA  int    `json:"len_a"`
	LenB  int    `json:"len_b"`
	Depth int    `json:"depth"`
}

// InitiatorDelta is a traffic source whose health differs at the
// divergence instant — in-flight depth, cumulative issue/completion, and
// the age of its oldest outstanding transaction.
type InitiatorDelta struct {
	Name         string `json:"name"`
	InFlightA    int    `json:"in_flight_a"`
	InFlightB    int    `json:"in_flight_b"`
	IssuedA      int64  `json:"issued_a"`
	IssuedB      int64  `json:"issued_b"`
	CompletedA   int64  `json:"completed_a"`
	CompletedB   int64  `json:"completed_b"`
	OldestAgeAPS int64  `json:"oldest_age_a_ps"`
	OldestAgeBPS int64  `json:"oldest_age_b_ps"`
}

// BisectResult is the outcome of a divergence bisection: the exact first
// central-clock cycle where the two variants' observable state differs,
// plus a forensics-style context block for that instant. The diverged_at
// section is the machine surface a batch API can consume directly.
type BisectResult struct {
	Schema string `json:"schema"`
	Kind   string `json:"kind"`
	A      Side   `json:"a"`
	B      Side   `json:"b"`

	// DivergedAt is the first central-clock cycle at which the variants'
	// observable state (shared counters + gauges, registration order)
	// differs; -1 when they never diverged before both runs ended.
	DivergedAt int64 `json:"diverged_at"`
	// AgreeCycle is the last probed cycle at which the states still
	// matched (DivergedAt - 1 after a completed search).
	AgreeCycle int64 `json:"agree_cycle"`
	GridEvery  int64 `json:"grid_every"`
	GridPoints int   `json:"grid_points"`
	SpanLo     int64 `json:"span_lo"`
	SpanHi     int64 `json:"span_hi"`
	// Steps is the number of paired restore-and-advance probes the binary
	// search spent inside the grid span — exactly log2(span_hi - span_lo)
	// because the grid is power-of-two spaced.
	Steps int `json:"bisect_steps"`

	SharedCounters int `json:"shared_counters"`
	SharedGauges   int `json:"shared_gauges"`

	FirstCounters []ValueDelta  `json:"first_diverging_counters,omitempty"`
	FirstGauges   []ValueDelta  `json:"first_diverging_gauges,omitempty"`
	WindowMoved   []WindowDelta `json:"window_moved_differently,omitempty"`

	Fifos      []FifoDelta      `json:"fifo_deltas,omitempty"`
	Initiators []InitiatorDelta `json:"initiator_deltas,omitempty"`

	ContextA *telemetry.StallReport `json:"context_a,omitempty"`
	ContextB *telemetry.StallReport `json:"context_b,omitempty"`
}

// WriteJSON renders the bisect document deterministically.
func (r *BisectResult) WriteJSON(w io.Writer) error { return writeJSON(w, r) }

// digester compares two platforms' observable state over the instruments
// they share. Cross-fabric variants register different fabric counters, so
// equality is defined on the intersection of names, resolved once from the
// freshly built platforms (in variant A's registration order) and then
// addressed by index — a digest is two slice walks, no map lookups.
type digester struct {
	ctrA, ctrB []int // indices into each registry's counter slice
	gagA, gagB []int
	ctrNames   []string
	gagNames   []string
}

func newDigester(pa, pb *platform.Platform) *digester {
	d := &digester{}
	bIdx := map[string]int{}
	for i, c := range pb.Metrics.Counters() {
		bIdx[c.Name()] = i
	}
	for i, c := range pa.Metrics.Counters() {
		if j, ok := bIdx[c.Name()]; ok {
			d.ctrA = append(d.ctrA, i)
			d.ctrB = append(d.ctrB, j)
			d.ctrNames = append(d.ctrNames, c.Name())
		}
	}
	bIdx = map[string]int{}
	for i, g := range pb.Metrics.Gauges() {
		bIdx[g.Name()] = i
	}
	for i, g := range pa.Metrics.Gauges() {
		if j, ok := bIdx[g.Name()]; ok {
			d.gagA = append(d.gagA, i)
			d.gagB = append(d.gagB, j)
			d.gagNames = append(d.gagNames, g.Name())
		}
	}
	return d
}

// digest reads the shared instruments from p. side selects which index set
// applies (0 = variant A, 1 = variant B).
func (d *digester) digest(p *platform.Platform, side int) []int64 {
	ctrIdx, gagIdx := d.ctrA, d.gagA
	if side == 1 {
		ctrIdx, gagIdx = d.ctrB, d.gagB
	}
	out := make([]int64, 0, len(ctrIdx)+len(gagIdx))
	ctrs := p.Metrics.Counters()
	for _, i := range ctrIdx {
		out = append(out, ctrs[i].Value())
	}
	gags := p.Metrics.Gauges()
	for _, i := range gagIdx {
		out = append(out, gags[i].Value())
	}
	return out
}

func equalDigest(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// pair is the two variants at a common probe cycle, plus their in-memory
// base checkpoints (taken at the last cycle the states agreed).
type pair struct {
	specA, specB platform.Spec
	pa, pb       *platform.Platform
	snapA, snapB []byte
	opt          BisectOptions
}

func (pr *pair) snapshot() error {
	var ba, bb bytes.Buffer
	if err := pr.pa.Snapshot(&ba); err != nil {
		return fmt.Errorf("snapshot A: %w", err)
	}
	if err := pr.pb.Snapshot(&bb); err != nil {
		return fmt.Errorf("snapshot B: %w", err)
	}
	pr.snapA, pr.snapB = ba.Bytes(), bb.Bytes()
	return nil
}

func (pr *pair) restore() error {
	pa, err := platform.Restore(pr.specA, bytes.NewReader(pr.snapA))
	if err != nil {
		return fmt.Errorf("restore A: %w", err)
	}
	pb, err := platform.Restore(pr.specB, bytes.NewReader(pr.snapB))
	if err != nil {
		return fmt.Errorf("restore B: %w", err)
	}
	pr.pa, pr.pb = pa, pb
	return nil
}

// advance drives both variants to the target central cycle on the runner
// pool. A variant that drains or exhausts the budget before the target
// simply stays at its final state — the probe still compares "state at
// cycle c", which for an ended run is its terminal state.
func (pr *pair) advance(cycle int64) error {
	jobs := []runner.Job[bool]{
		{Name: "A", Run: func() (bool, error) { return pr.pa.RunToCycle(cycle, pr.opt.BudgetPS), nil }},
		{Name: "B", Run: func() (bool, error) { return pr.pb.RunToCycle(cycle, pr.opt.BudgetPS), nil }},
	}
	_, err := runner.Values(runner.Map(jobs, runner.Options{Workers: pr.opt.Workers}))
	return err
}

// Bisect localizes the first central-clock cycle at which two variants'
// observable state diverges under identical stimulus (same seeds, or the
// same replayed trace attached to both specs).
//
// Protocol: both variants are built fresh and advanced in lockstep along a
// shared power-of-two checkpoint grid, snapshotting both (in memory, via
// Platform.Snapshot) at every grid point where the states still agree. The
// first disagreeing grid point bounds the divergence to one grid interval;
// binary search inside it restores both variants from the shared base
// checkpoint and advances to the midpoint, re-snapshotting whenever the
// states still agree so later probes replay ever-shorter suffixes. Probes
// run serial per variant (the Snapshot/RunToCycle contract) but the two
// variants advance in parallel on an internal/runner pool.
//
// Because snapshots capture exact machine state and replaying from one is
// bit-identical to having run straight through (the §16 contract), the
// search never perturbs what it measures: every probe observes exactly the
// state the uninterrupted run would have had at that cycle.
func Bisect(specA, specB platform.Spec, opt BisectOptions) (*BisectResult, error) {
	if opt.BudgetPS <= 0 {
		opt.BudgetPS = 5_000_000_000_000
	}
	if opt.GridEvery <= 0 {
		opt.GridEvery = 2048
	}
	grid := int64(1)
	for grid < opt.GridEvery {
		grid <<= 1
	}
	if opt.TopFifos <= 0 {
		opt.TopFifos = 10
	}
	if opt.Workers <= 0 {
		opt.Workers = 2
	}

	pr := &pair{specA: specA, specB: specB, opt: opt}
	var err error
	if pr.pa, err = platform.Build(specA); err != nil {
		return nil, fmt.Errorf("build A: %w", err)
	}
	if pr.pb, err = platform.Build(specB); err != nil {
		return nil, fmt.Errorf("build B: %w", err)
	}
	dg := newDigester(pr.pa, pr.pb)

	res := &BisectResult{
		Schema:         Schema,
		Kind:           "bisect",
		A:              Side{Platform: specA.Name()},
		B:              Side{Platform: specB.Name()},
		GridEvery:      grid,
		SharedCounters: len(dg.ctrNames),
		SharedGauges:   len(dg.gagNames),
		DivergedAt:     -1,
		AgreeCycle:     -1,
		SpanLo:         -1,
		SpanHi:         -1,
	}

	// Cycle 0: freshly built platforms. A divergence here means the shared
	// instruments disagree before a single cycle ran — report it directly.
	if !equalDigest(dg.digest(pr.pa, 0), dg.digest(pr.pb, 1)) {
		res.DivergedAt = 0
		return res, finalize(pr, dg, res)
	}
	if err := pr.snapshot(); err != nil {
		return nil, err
	}

	// Forward grid walk: advance both to each grid point, re-basing the
	// shared checkpoints while the states agree.
	lo, hi := int64(0), int64(-1)
	for g := grid; hi < 0; g += grid {
		if err := pr.advance(g); err != nil {
			return nil, err
		}
		res.GridPoints++
		endedA := pr.pa.CentralClk.Cycles() < g
		endedB := pr.pb.CentralClk.Cycles() < g
		if equalDigest(dg.digest(pr.pa, 0), dg.digest(pr.pb, 1)) {
			lo = g
			res.AgreeCycle = g
			if endedA && endedB {
				return res, nil // both runs ended in agreement: no divergence
			}
			if opt.Horizon > 0 && g >= opt.Horizon {
				return res, nil // agreed past the horizon: stop searching
			}
			if err := pr.snapshot(); err != nil {
				return nil, err
			}
			continue
		}
		hi = g
	}
	res.SpanLo, res.SpanHi = lo, hi

	// Binary search inside (lo, hi]: restore both variants from the shared
	// base checkpoint (taken at lo), advance to the midpoint, and narrow.
	// Re-basing on every agreeing midpoint keeps each probe's replayed
	// suffix at most half the previous one.
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		if err := pr.restore(); err != nil {
			return nil, err
		}
		if err := pr.advance(mid); err != nil {
			return nil, err
		}
		res.Steps++
		if equalDigest(dg.digest(pr.pa, 0), dg.digest(pr.pb, 1)) {
			lo = mid
			if err := pr.snapshot(); err != nil {
				return nil, err
			}
		} else {
			hi = mid
		}
	}
	res.DivergedAt, res.AgreeCycle = hi, lo
	return res, finalize(pr, dg, res)
}

// CeilLog2 returns ⌈log2(n)⌉ for n >= 1 — the exact bisection step count
// for a span of n cycles. Exported for the bench harness's invariant check.
func CeilLog2(n int64) int {
	if n <= 1 {
		return 0
	}
	return bits.Len64(uint64(n - 1))
}

// finalize renders the forensics context for the located divergence: both
// variants restored to the last agreeing cycle, digested, advanced across
// the final window to the divergence instant, and compared instrument by
// instrument plus through their stall-report renderers.
func finalize(pr *pair, dg *digester, res *BisectResult) error {
	lo, hi := res.AgreeCycle, res.DivergedAt
	if hi > 0 {
		if err := pr.restore(); err != nil {
			return err
		}
	}
	dLoA, dLoB := dg.digest(pr.pa, 0), dg.digest(pr.pb, 1)
	if hi > 0 {
		if err := pr.advance(hi); err != nil {
			return err
		}
	}
	dHiA, dHiB := dg.digest(pr.pa, 0), dg.digest(pr.pb, 1)

	names := append(append([]string{}, dg.ctrNames...), dg.gagNames...)
	nc := len(dg.ctrNames)
	for i, name := range names {
		if dHiA[i] != dHiB[i] {
			vd := ValueDelta{
				Name: name, A: dHiA[i], B: dHiB[i],
				Delta: dHiB[i] - dHiA[i], Rel: rel(float64(dHiA[i]), float64(dHiB[i])),
			}
			if i < nc {
				res.FirstCounters = append(res.FirstCounters, vd)
			} else {
				res.FirstGauges = append(res.FirstGauges, vd)
			}
		}
		if hi > 0 && (dHiA[i]-dLoA[i]) != (dHiB[i]-dLoB[i]) {
			res.WindowMoved = append(res.WindowMoved, WindowDelta{
				Name: name, DeltaA: dHiA[i] - dLoA[i], DeltaB: dHiB[i] - dLoB[i],
			})
		}
	}
	rankValues(res.FirstCounters)
	rankValues(res.FirstGauges)

	reason := fmt.Sprintf("divergence probe at cycle %d (last agreement at cycle %d)", hi, lo)
	ca := pr.pa.StallReport(reason, pr.opt.TopFifos)
	cb := pr.pb.StallReport(reason, pr.opt.TopFifos)
	res.ContextA, res.ContextB = ca, cb

	bf := map[string]telemetry.FifoFill{}
	for _, f := range cb.Fifos {
		bf[f.Name] = f
	}
	for _, f := range ca.Fifos {
		if fb, ok := bf[f.Name]; ok && fb.Len != f.Len {
			res.Fifos = append(res.Fifos, FifoDelta{Name: f.Name, LenA: f.Len, LenB: fb.Len, Depth: f.Depth})
		}
	}
	bi := map[string]telemetry.InitiatorHealth{}
	for _, h := range cb.Initiators {
		bi[h.Name] = h
	}
	for _, h := range ca.Initiators {
		hb, ok := bi[h.Name]
		if !ok {
			continue
		}
		if h.InFlight != hb.InFlight || h.Issued != hb.Issued ||
			h.Completed != hb.Completed || h.OldestAgePS != hb.OldestAgePS {
			res.Initiators = append(res.Initiators, InitiatorDelta{
				Name:      h.Name,
				InFlightA: h.InFlight, InFlightB: hb.InFlight,
				IssuedA: h.Issued, IssuedB: hb.Issued,
				CompletedA: h.Completed, CompletedB: hb.Completed,
				OldestAgeAPS: h.OldestAgePS, OldestAgeBPS: hb.OldestAgePS,
			})
		}
	}
	return nil
}
