package diff

import (
	"bytes"
	"fmt"
	"testing"

	"mpsocsim/internal/config"
	"mpsocsim/internal/platform"
	"mpsocsim/internal/telemetry"
)

// specPair builds variant A from a config text and variant B from the same
// text plus one perturbation line — the ISSUE's "one-parameter perturbation
// via config" shape.
func specPair(t *testing.T, base, perturb string) (platform.Spec, platform.Spec) {
	t.Helper()
	sa, err := config.ParsePlatformString(base)
	if err != nil {
		t.Fatalf("parse base config: %v", err)
	}
	sb, err := config.ParsePlatformString(base + perturb + "\n")
	if err != nil {
		t.Fatalf("parse perturbed config: %v", err)
	}
	return sa, sb
}

// goldens are three reference variants, each seeded with a different
// one-parameter perturbation: +1 SDRAM CAS wait state on the two LMI
// platforms, +1 on-chip wait state on the on-chip one.
var goldens = []struct {
	name    string
	base    string
	perturb string
}{
	{
		name:    "stbus-distributed-lmi-cas",
		base:    "[platform]\nprotocol = stbus\ntopology = distributed\nmemory = lmi\nscale = 0.1\n",
		perturb: "lmi.sdram.cas = 4",
	},
	{
		name:    "axi-collapsed-lmi-cas",
		base:    "[platform]\nprotocol = axi\ntopology = collapsed\nmemory = lmi\nscale = 0.1\n",
		perturb: "lmi.sdram.cas = 4",
	},
	{
		name:    "ahb-distributed-onchip-ws",
		base:    "[platform]\nprotocol = ahb\ntopology = distributed\nmemory = onchip\nscale = 0.1\n",
		perturb: "waitstates = 2",
	},
}

const bisectBudget = int64(5_000_000_000_000)

// linearFirstDivergence is the reference oracle: advance both variants one
// central cycle at a time and report the first cycle where the observable
// state differs. Slow but unarguable.
func linearFirstDivergence(t *testing.T, sa, sb platform.Spec, limit int64) int64 {
	t.Helper()
	pa, err := platform.Build(sa)
	if err != nil {
		t.Fatalf("build A: %v", err)
	}
	pb, err := platform.Build(sb)
	if err != nil {
		t.Fatalf("build B: %v", err)
	}
	dg := newDigester(pa, pb)
	for c := int64(0); c <= limit; c++ {
		pa.RunToCycle(c, bisectBudget)
		pb.RunToCycle(c, bisectBudget)
		if !equalDigest(dg.digest(pa, 0), dg.digest(pb, 1)) {
			return c
		}
	}
	t.Fatalf("no divergence within %d cycles", limit)
	return -1
}

// TestBisectMatchesLinearScan is the seeded known-divergence property test:
// for each golden, the snapshot-grid binary search must land on exactly the
// cycle a cycle-by-cycle forward scan finds.
func TestBisectMatchesLinearScan(t *testing.T) {
	for _, g := range goldens {
		g := g
		t.Run(g.name, func(t *testing.T) {
			sa, sb := specPair(t, g.base, g.perturb)
			res, err := Bisect(sa, sb, BisectOptions{GridEvery: 512, Workers: 2})
			if err != nil {
				t.Fatalf("Bisect: %v", err)
			}
			if res.DivergedAt <= 0 {
				t.Fatalf("perturbed variant reported no divergence: %+v", res)
			}
			want := linearFirstDivergence(t, sa, sb, res.DivergedAt+512)
			if res.DivergedAt != want {
				t.Fatalf("bisect diverged_at = %d, linear scan says %d", res.DivergedAt, want)
			}
			if res.AgreeCycle != res.DivergedAt-1 {
				t.Fatalf("agree_cycle = %d, want %d", res.AgreeCycle, res.DivergedAt-1)
			}
			if res.SpanHi-res.SpanLo != res.GridEvery {
				t.Fatalf("span [%d, %d] is not one grid interval (%d)", res.SpanLo, res.SpanHi, res.GridEvery)
			}
			if want := CeilLog2(res.SpanHi - res.SpanLo); res.Steps != want {
				t.Fatalf("bisect_steps = %d, want log2(span) = %d", res.Steps, want)
			}
			if len(res.FirstCounters) == 0 && len(res.FirstGauges) == 0 {
				t.Fatalf("divergence at %d carries no differing instruments", res.DivergedAt)
			}
			if res.ContextA == nil || res.ContextB == nil {
				t.Fatalf("missing forensics context blocks")
			}
		})
	}
}

// TestBisectAgreesWithShardedTelemetry cross-checks the bisection cycle
// against per-cycle telemetry streams of full runs, serial and sharded:
// with cadence-1 collection, the first record pair that disagrees must sit
// at exactly diverged_at, for shards 1 and 2 alike (records are
// byte-identical across shard counts by the telemetry contract).
func TestBisectAgreesWithShardedTelemetry(t *testing.T) {
	for _, g := range goldens {
		g := g
		t.Run(g.name, func(t *testing.T) {
			sa, sb := specPair(t, g.base, g.perturb)
			res, err := Bisect(sa, sb, BisectOptions{GridEvery: 512, Workers: 2})
			if err != nil {
				t.Fatalf("Bisect: %v", err)
			}
			div := res.DivergedAt
			if div <= 0 {
				t.Fatalf("no divergence: %+v", res)
			}
			for _, shards := range []int{1, 2} {
				recA := teleRecords(t, sa, shards, div)
				recB := teleRecords(t, sb, shards, div)
				d := Streams(
					&telemetry.Stream{Records: recA},
					&telemetry.Stream{Records: recB},
					fmt.Sprintf("A/shards=%d", shards), fmt.Sprintf("B/shards=%d", shards),
				)
				if d.DivergedAt == nil {
					t.Fatalf("shards=%d: telemetry streams never diverged", shards)
				}
				if d.DivergedAt.CycleA != div {
					t.Fatalf("shards=%d: telemetry diverges at cycle %d, bisect says %d",
						shards, d.DivergedAt.CycleA, div)
				}
				if len(d.DivergedAt.Counters) == 0 && len(d.DivergedAt.Gauges) == 0 &&
					len(d.DivergedAt.Initiators) == 0 && len(d.DivergedAt.Fields) == 0 {
					t.Fatalf("shards=%d: divergence record carries no deltas", shards)
				}
			}
		})
	}
}

// teleRecords runs spec with cadence-1 telemetry under the given shard
// count, cutting the run just past the divergence cycle via the simulated
// budget, and drains the collected records.
func teleRecords(t *testing.T, spec platform.Spec, shards int, div int64) []telemetry.Record {
	t.Helper()
	p, err := platform.Build(spec)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	col := p.EnableTelemetry(1, int(div)+128)
	if shards > 1 {
		if err := p.EnableSharding(shards); err != nil {
			t.Fatalf("EnableSharding(%d): %v", shards, err)
		}
	}
	p.Run((div + 64) * p.CentralClk.PeriodPS())
	recs, _ := col.Drain(0)
	return recs
}

// TestBisectIdenticalSpecsReportNoDivergence pins the negative path: the
// same spec against itself must walk the grid to the end of the run and
// come back with diverged_at = -1.
func TestBisectIdenticalSpecsReportNoDivergence(t *testing.T) {
	sa, err := config.ParsePlatformString("[platform]\nmemory = onchip\nscale = 0.05\n")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	res, err := Bisect(sa, sa, BisectOptions{GridEvery: 1024, Workers: 2})
	if err != nil {
		t.Fatalf("Bisect: %v", err)
	}
	if res.DivergedAt != -1 {
		t.Fatalf("identical specs diverged at %d", res.DivergedAt)
	}
	if res.GridPoints == 0 {
		t.Fatalf("grid walk never advanced")
	}
}

// TestBisectResultJSONDeterministic renders the same result twice and
// re-runs the whole search for a third copy: all three documents must be
// byte-identical.
func TestBisectResultJSONDeterministic(t *testing.T) {
	g := goldens[0]
	sa, sb := specPair(t, g.base, g.perturb)
	res1, err := Bisect(sa, sb, BisectOptions{GridEvery: 512, Workers: 2})
	if err != nil {
		t.Fatalf("Bisect: %v", err)
	}
	res2, err := Bisect(sa, sb, BisectOptions{GridEvery: 512, Workers: 2})
	if err != nil {
		t.Fatalf("Bisect: %v", err)
	}
	var b1, b2, b3 bytes.Buffer
	if err := res1.WriteJSON(&b1); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if err := res1.WriteJSON(&b2); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if err := res2.WriteJSON(&b3); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatalf("same result rendered differently")
	}
	if !bytes.Equal(b1.Bytes(), b3.Bytes()) {
		t.Fatalf("re-running the search changed the document")
	}
}

func TestCeilLog2(t *testing.T) {
	cases := map[int64]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 512: 9, 513: 10, 2048: 11}
	for n, want := range cases {
		if got := CeilLog2(n); got != want {
			t.Fatalf("CeilLog2(%d) = %d, want %d", n, got, want)
		}
	}
}
