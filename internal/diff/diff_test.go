package diff

import (
	"bytes"
	"encoding/json"
	"testing"

	"mpsocsim/internal/config"
	"mpsocsim/internal/metrics"
	"mpsocsim/internal/platform"
	"mpsocsim/internal/telemetry"
)

func runReport(t *testing.T, text string, attr bool) *platform.Report {
	t.Helper()
	spec, err := config.ParsePlatformString(text)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p, err := platform.Build(spec)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if attr {
		p.EnableAttribution(0)
	}
	r := p.Run(5_000_000_000_000)
	rep := r.Report()
	return &rep
}

func TestReportDiffRanksAndFlags(t *testing.T) {
	a := runReport(t, "[platform]\nprotocol = stbus\ntopology = distributed\nmemory = lmi\nscale = 0.1\nio = true\n", true)
	b := runReport(t, "[platform]\nprotocol = ahb\ntopology = distributed\nmemory = lmi\nscale = 0.1\nio = true\n", true)
	d := Reports(a, b, "a.json", "b.json")

	if d.Schema != Schema || d.Kind != "report" {
		t.Fatalf("schema/kind = %q/%q", d.Schema, d.Kind)
	}
	if len(d.Scalars) != 7 {
		t.Fatalf("got %d scalar rows, want 7", len(d.Scalars))
	}
	if len(d.Counters) == 0 {
		t.Fatalf("cross-fabric runs produced no counter deltas")
	}
	for i := 1; i < len(d.Counters); i++ {
		ri, rj := d.Counters[i-1].Rel, d.Counters[i].Rel
		if abs(ri) < abs(rj) {
			t.Fatalf("counter deltas not ranked: %v before %v", d.Counters[i-1], d.Counters[i])
		}
	}
	// STBus and AHB register fabric-specific instruments, so both
	// only-in lists must be populated.
	if len(d.CountersOnlyInA) == 0 || len(d.CountersOnlyInB) == 0 {
		t.Fatalf("cross-fabric only-in lists empty: %v / %v", d.CountersOnlyInA, d.CountersOnlyInB)
	}
	if d.Attribution == nil || len(d.Attribution.Cells) == 0 {
		t.Fatalf("attribution section missing or empty")
	}
	if len(d.Deadlines) == 0 {
		t.Fatalf("io runs produced no deadline comparison")
	}
	for _, row := range d.Deadlines {
		if row.Regressed != (row.MissedB > row.MissedA) {
			t.Fatalf("regression flag inconsistent: %+v", row)
		}
	}
}

func TestReportDiffIdenticalRunsQuiet(t *testing.T) {
	a := runReport(t, "[platform]\nmemory = onchip\nscale = 0.1\n", false)
	b := runReport(t, "[platform]\nmemory = onchip\nscale = 0.1\n", false)
	d := Reports(a, b, "", "")
	if len(d.Counters) != 0 || len(d.Gauges) != 0 || len(d.Histograms) != 0 {
		t.Fatalf("identical runs produced deltas: %d counters, %d gauges, %d histograms",
			len(d.Counters), len(d.Gauges), len(d.Histograms))
	}
	for _, s := range d.Scalars {
		if s.Delta != 0 {
			t.Fatalf("identical runs moved scalar %s by %v", s.Name, s.Delta)
		}
	}
}

func TestReportDiffJSONDeterministic(t *testing.T) {
	a := runReport(t, "[platform]\nprotocol = stbus\nmemory = lmi\nscale = 0.1\n", false)
	b := runReport(t, "[platform]\nprotocol = axi\nmemory = lmi\nscale = 0.1\n", false)
	var b1, b2 bytes.Buffer
	if err := Reports(a, b, "x", "y").WriteJSON(&b1); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if err := Reports(a, b, "x", "y").WriteJSON(&b2); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatalf("diff output not byte-identical across invocations")
	}
	var doc map[string]any
	if err := json.Unmarshal(b1.Bytes(), &doc); err != nil {
		t.Fatalf("diff output not valid JSON: %v", err)
	}
	if doc["schema"] != Schema {
		t.Fatalf("schema = %v", doc["schema"])
	}
}

func TestStreamDiffFindsFirstDivergentRecord(t *testing.T) {
	rec := func(seq, cycle, grants int64) telemetry.Record {
		return telemetry.Record{
			Schema: telemetry.Schema, Seq: seq, Cycle: cycle, TimePS: cycle * 4000,
			Issued: 2 * seq, Completed: seq,
			Counters: []metrics.CounterValue{{Name: "fab.grants", Value: grants}},
		}
	}
	a := &telemetry.Stream{Records: []telemetry.Record{rec(0, 100, 5), rec(1, 200, 9), rec(2, 300, 14)}}
	b := &telemetry.Stream{Records: []telemetry.Record{rec(0, 100, 5), rec(1, 200, 9), rec(2, 300, 17)}}
	d := Streams(a, b, "a.ndjson", "b.ndjson")
	if d.DivergedAt == nil {
		t.Fatalf("divergent streams reported identical")
	}
	if d.DivergedAt.Seq != 2 || d.DivergedAt.CycleA != 300 {
		t.Fatalf("diverged at seq %d cycle %d, want seq 2 cycle 300", d.DivergedAt.Seq, d.DivergedAt.CycleA)
	}
	if d.Compared != 2 {
		t.Fatalf("compared %d pairs before divergence, want 2", d.Compared)
	}
	if len(d.DivergedAt.Counters) != 1 || d.DivergedAt.Counters[0].Name != "fab.grants" {
		t.Fatalf("first disagreeing counters = %+v", d.DivergedAt.Counters)
	}

	// Identical prefixes with a sequence gap (ring drop) still align.
	c := &telemetry.Stream{Records: []telemetry.Record{rec(0, 100, 5), rec(2, 300, 14)}}
	if d := Streams(a, c, "", ""); d.DivergedAt != nil || d.Compared != 2 {
		t.Fatalf("seq-gap alignment failed: %+v", d)
	}
}

func abs(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}
