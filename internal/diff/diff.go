// Package diff is the differential-observability layer: structural
// comparison of two runs' artifacts and snapshot-driven localization of the
// first cycle where two variants diverge.
//
// The paper's core claim is that communication/memory/I/O interactions only
// become visible when two platform variants are compared under identical
// stimulus. The simulator already produces rich per-run artifacts — report/2
// JSON, attribution matrices, telemetry NDJSON, snapshots — and this package
// turns them into first-class comparisons:
//
//   - diff.go: structural diff of two report/2 documents — counter, gauge
//     and histogram deltas ranked by relative magnitude, per-initiator ×
//     per-phase attribution deltas with dominant-phase flips highlighted,
//     and deadline-table regressions.
//   - stream.go: diff of two telemetry NDJSON streams aligned by sequence
//     number, emitting the first divergent snapshot's cycle and the set of
//     counters that first disagree.
//   - bisect.go: paired-run divergence bisection — checkpoint two variants
//     on a shared cycle grid via Platform.Snapshot and binary-search to the
//     exact first central-clock cycle where observable state differs, with
//     a forensics-style context block for that instant.
//
// Every document carries Schema (mpsocsim.diff/1) and renders
// deterministically: the same two inputs produce byte-identical output, so a
// diff can itself be cached, compared and asserted on in CI.
package diff

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"

	"mpsocsim/internal/platform"
)

// Schema identifies the diff document layout. The "kind" field says which
// shape follows: "report", "telemetry" or "bisect".
const Schema = "mpsocsim.diff/1"

// Side identifies one input of a comparison.
type Side struct {
	File     string `json:"file,omitempty"`
	Platform string `json:"platform,omitempty"`
	Schema   string `json:"schema,omitempty"`
	Done     bool   `json:"done"`
}

// ScalarDelta is the change of one top-level run figure.
type ScalarDelta struct {
	Name  string  `json:"name"`
	A     float64 `json:"a"`
	B     float64 `json:"b"`
	Delta float64 `json:"delta"`
	Rel   float64 `json:"rel"`
}

// ValueDelta is the change of one integer instrument (counter or gauge).
// Rel is delta over the larger magnitude, so it is bounded to [-1, 1] and
// stays JSON-encodable when one side is zero.
type ValueDelta struct {
	Name  string  `json:"name"`
	A     int64   `json:"a"`
	B     int64   `json:"b"`
	Delta int64   `json:"delta"`
	Rel   float64 `json:"rel"`
}

// HistDelta is the change of one latency distribution's summary.
type HistDelta struct {
	Name  string  `json:"name"`
	NA    int64   `json:"n_a"`
	NB    int64   `json:"n_b"`
	MeanA float64 `json:"mean_a"`
	MeanB float64 `json:"mean_b"`
	P99A  int64   `json:"p99_a"`
	P99B  int64   `json:"p99_b"`
	MaxA  int64   `json:"max_a"`
	MaxB  int64   `json:"max_b"`
	Rel   float64 `json:"rel"`
}

// DominantFlip records an initiator whose dominant latency phase changed
// between the two runs — the paper's headline "where do cycles go" signal.
type DominantFlip struct {
	Initiator string `json:"initiator"`
	A         string `json:"a"`
	B         string `json:"b"`
}

// AttrCellDelta is the change of one initiator × phase attribution cell.
type AttrCellDelta struct {
	Initiator string  `json:"initiator"`
	Phase     string  `json:"phase"`
	APS       int64   `json:"a_ps"`
	BPS       int64   `json:"b_ps"`
	DeltaPS   int64   `json:"delta_ps"`
	Rel       float64 `json:"rel"`
}

// AttrDiff is the attribution section of a report diff.
type AttrDiff struct {
	Flips []DominantFlip  `json:"dominant_phase_flips,omitempty"`
	Cells []AttrCellDelta `json:"cells,omitempty"`
}

// DeadlineDelta compares one I/O device's deadline accounting across the
// two runs. Regressed marks devices that missed more deadlines in B.
type DeadlineDelta struct {
	Device      string  `json:"device"`
	MissedA     int64   `json:"missed_a"`
	MissedB     int64   `json:"missed_b"`
	DeltaMissed int64   `json:"delta_missed"`
	MeanSvcA    float64 `json:"mean_svc_a"`
	MeanSvcB    float64 `json:"mean_svc_b"`
	P90SvcA     int64   `json:"p90_svc_a"`
	P90SvcB     int64   `json:"p90_svc_b"`
	Regressed   bool    `json:"regressed"`
}

// ReportDiff is the structural comparison of two report/2 documents.
// Instrument deltas are ranked by relative magnitude (then absolute delta,
// then name), so the most-disturbed subsystems lead each list.
type ReportDiff struct {
	Schema          string          `json:"schema"`
	Kind            string          `json:"kind"`
	A               Side            `json:"a"`
	B               Side            `json:"b"`
	Scalars         []ScalarDelta   `json:"scalars"`
	Counters        []ValueDelta    `json:"counters,omitempty"`
	CountersOnlyInA []string        `json:"counters_only_in_a,omitempty"`
	CountersOnlyInB []string        `json:"counters_only_in_b,omitempty"`
	Gauges          []ValueDelta    `json:"gauges,omitempty"`
	Histograms      []HistDelta     `json:"histograms,omitempty"`
	Attribution     *AttrDiff       `json:"attribution,omitempty"`
	Deadlines       []DeadlineDelta `json:"deadlines,omitempty"`
}

// rel is the bounded relative change: delta over the larger magnitude.
// Symmetric in the sense that swapping sides only flips the sign, and
// defined (as 0) when both sides are zero.
func rel(a, b float64) float64 {
	if a == b {
		return 0
	}
	m := math.Max(math.Abs(a), math.Abs(b))
	return (b - a) / m
}

// rankValues orders instrument deltas most-disturbed first: |rel| desc,
// then |delta| desc, then name asc. Total order, so output is stable.
func rankValues(ds []ValueDelta) {
	sort.Slice(ds, func(i, j int) bool {
		ri, rj := math.Abs(ds[i].Rel), math.Abs(ds[j].Rel)
		if ri != rj {
			return ri > rj
		}
		di, dj := ds[i].Delta, ds[j].Delta
		if di < 0 {
			di = -di
		}
		if dj < 0 {
			dj = -dj
		}
		if di != dj {
			return di > dj
		}
		return ds[i].Name < ds[j].Name
	})
}

// ReadReportFile loads a report/2 JSON document, checking its schema family.
func ReadReportFile(path string) (*platform.Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep platform.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if !strings.HasPrefix(rep.Schema, "mpsocsim.report/") {
		return nil, fmt.Errorf("%s: schema %q is not a run report", path, rep.Schema)
	}
	return &rep, nil
}

// Reports builds the structural diff of two run reports. fileA/fileB label
// the sides in the output and may be empty for in-memory comparisons.
func Reports(a, b *platform.Report, fileA, fileB string) *ReportDiff {
	d := &ReportDiff{
		Schema: Schema,
		Kind:   "report",
		A:      Side{File: fileA, Platform: a.Spec.Platform, Schema: a.Schema, Done: a.Done},
		B:      Side{File: fileB, Platform: b.Spec.Platform, Schema: b.Schema, Done: b.Done},
	}
	d.Scalars = diffScalars(a, b)
	if a.Metrics != nil && b.Metrics != nil {
		d.Counters, d.CountersOnlyInA, d.CountersOnlyInB = diffCounters(a, b)
		d.Gauges = diffGauges(a, b)
		d.Histograms = diffHistograms(a, b)
	}
	if a.Attribution != nil && b.Attribution != nil {
		d.Attribution = diffAttribution(a, b)
	}
	if len(a.Deadlines) > 0 || len(b.Deadlines) > 0 {
		d.Deadlines = diffDeadlines(a, b)
	}
	return d
}

func diffScalars(a, b *platform.Report) []ScalarDelta {
	rows := []struct {
		name string
		a, b float64
	}{
		{"exec_ps", float64(a.ExecPS), float64(b.ExecPS)},
		{"central_cycles", float64(a.CentralCycles), float64(b.CentralCycles)},
		{"issued", float64(a.Issued), float64(b.Issued)},
		{"completed", float64(a.Completed), float64(b.Completed)},
		{"total_bytes", float64(a.TotalBytes), float64(b.TotalBytes)},
		{"throughput_mbps", a.ThroughputMBps, b.ThroughputMBps},
		{"mem_utilization", a.MemUtilization, b.MemUtilization},
	}
	out := make([]ScalarDelta, len(rows))
	for i, r := range rows {
		out[i] = ScalarDelta{Name: r.name, A: r.a, B: r.b, Delta: r.b - r.a, Rel: rel(r.a, r.b)}
	}
	return out
}

func diffCounters(a, b *platform.Report) (deltas []ValueDelta, onlyA, onlyB []string) {
	bv := make(map[string]int64, len(b.Metrics.Counters))
	for _, c := range b.Metrics.Counters {
		bv[c.Name] = c.Value
	}
	seen := make(map[string]bool, len(a.Metrics.Counters))
	for _, c := range a.Metrics.Counters {
		seen[c.Name] = true
		vb, ok := bv[c.Name]
		if !ok {
			onlyA = append(onlyA, c.Name)
			continue
		}
		if vb != c.Value {
			deltas = append(deltas, ValueDelta{
				Name: c.Name, A: c.Value, B: vb,
				Delta: vb - c.Value, Rel: rel(float64(c.Value), float64(vb)),
			})
		}
	}
	for _, c := range b.Metrics.Counters {
		if !seen[c.Name] {
			onlyB = append(onlyB, c.Name)
		}
	}
	rankValues(deltas)
	return deltas, onlyA, onlyB
}

func diffGauges(a, b *platform.Report) []ValueDelta {
	bv := make(map[string]int64, len(b.Metrics.Gauges))
	for _, g := range b.Metrics.Gauges {
		bv[g.Name] = g.Value
	}
	var deltas []ValueDelta
	for _, g := range a.Metrics.Gauges {
		if vb, ok := bv[g.Name]; ok && vb != g.Value {
			deltas = append(deltas, ValueDelta{
				Name: g.Name, A: g.Value, B: vb,
				Delta: vb - g.Value, Rel: rel(float64(g.Value), float64(vb)),
			})
		}
	}
	rankValues(deltas)
	return deltas
}

func diffHistograms(a, b *platform.Report) []HistDelta {
	type hsum struct {
		n, p99, max int64
		mean        float64
	}
	bv := make(map[string]hsum, len(b.Metrics.Histograms))
	for _, h := range b.Metrics.Histograms {
		bv[h.Name] = hsum{n: h.N, p99: h.P99, max: h.Max, mean: h.Mean}
	}
	var out []HistDelta
	for _, h := range a.Metrics.Histograms {
		hb, ok := bv[h.Name]
		if !ok {
			continue
		}
		if h.N == hb.n && h.Mean == hb.mean && h.P99 == hb.p99 && h.Max == hb.max {
			continue
		}
		out = append(out, HistDelta{
			Name: h.Name, NA: h.N, NB: hb.n,
			MeanA: h.Mean, MeanB: hb.mean,
			P99A: h.P99, P99B: hb.p99,
			MaxA: h.Max, MaxB: hb.max,
			Rel: rel(h.Mean, hb.mean),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		ri, rj := math.Abs(out[i].Rel), math.Abs(out[j].Rel)
		if ri != rj {
			return ri > rj
		}
		return out[i].Name < out[j].Name
	})
	return out
}

func diffAttribution(a, b *platform.Report) *AttrDiff {
	d := &AttrDiff{}
	type irow struct {
		dominant string
		phases   map[string]int64
	}
	bi := make(map[string]irow, len(b.Attribution.Initiators))
	for _, is := range b.Attribution.Initiators {
		ph := make(map[string]int64, len(is.Phases))
		for _, p := range is.Phases {
			ph[p.Phase] = p.TotalPS
		}
		bi[is.Initiator] = irow{dominant: is.Dominant, phases: ph}
	}
	for _, is := range a.Attribution.Initiators {
		rb, ok := bi[is.Initiator]
		if !ok {
			continue
		}
		if is.Dominant != rb.dominant {
			d.Flips = append(d.Flips, DominantFlip{Initiator: is.Initiator, A: is.Dominant, B: rb.dominant})
		}
		for _, p := range is.Phases {
			bp, ok := rb.phases[p.Phase]
			if !ok || bp == p.TotalPS {
				continue
			}
			d.Cells = append(d.Cells, AttrCellDelta{
				Initiator: is.Initiator, Phase: p.Phase,
				APS: p.TotalPS, BPS: bp, DeltaPS: bp - p.TotalPS,
				Rel: rel(float64(p.TotalPS), float64(bp)),
			})
		}
	}
	sort.Slice(d.Cells, func(i, j int) bool {
		ri, rj := math.Abs(d.Cells[i].Rel), math.Abs(d.Cells[j].Rel)
		if ri != rj {
			return ri > rj
		}
		if d.Cells[i].Initiator != d.Cells[j].Initiator {
			return d.Cells[i].Initiator < d.Cells[j].Initiator
		}
		return d.Cells[i].Phase < d.Cells[j].Phase
	})
	return d
}

func diffDeadlines(a, b *platform.Report) []DeadlineDelta {
	type drow struct {
		missed, p90 int64
		mean        float64
	}
	bv := make(map[string]drow, len(b.Deadlines))
	for _, s := range b.Deadlines {
		bv[s.Device] = drow{missed: s.Missed, p90: s.P90SvcCycles, mean: s.MeanSvcCycles}
	}
	var out []DeadlineDelta
	for _, s := range a.Deadlines {
		sb, ok := bv[s.Device]
		if !ok {
			continue
		}
		out = append(out, DeadlineDelta{
			Device:  s.Device,
			MissedA: s.Missed, MissedB: sb.missed, DeltaMissed: sb.missed - s.Missed,
			MeanSvcA: s.MeanSvcCycles, MeanSvcB: sb.mean,
			P90SvcA: s.P90SvcCycles, P90SvcB: sb.p90,
			Regressed: sb.missed > s.Missed,
		})
	}
	return out
}

// writeJSON renders any diff document with the repo's standard two-space
// indentation. encoding/json iterates struct fields in declaration order
// and the builders above sort every slice with a total order, so output is
// byte-identical across invocations for the same inputs.
func writeJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// WriteJSON renders the diff document deterministically.
func (d *ReportDiff) WriteJSON(w io.Writer) error { return writeJSON(w, d) }
