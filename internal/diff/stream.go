package diff

import (
	"fmt"
	"io"
	"os"

	"mpsocsim/internal/telemetry"
)

// StreamSide identifies one telemetry stream of a comparison.
type StreamSide struct {
	File      string `json:"file,omitempty"`
	Records   int64  `json:"records"`
	Truncated bool   `json:"truncated,omitempty"`
}

// StreamDivergence describes the first aligned snapshot pair that
// disagrees: its sequence number, each side's cycle, which top-level fields
// differ, and the instrument/initiator values that first disagree (ranked
// most-disturbed first, like the report diff).
type StreamDivergence struct {
	Seq        int64        `json:"seq"`
	CycleA     int64        `json:"cycle_a"`
	CycleB     int64        `json:"cycle_b"`
	Fields     []string     `json:"fields,omitempty"`
	Counters   []ValueDelta `json:"counters,omitempty"`
	Gauges     []ValueDelta `json:"gauges,omitempty"`
	Initiators []ValueDelta `json:"initiators,omitempty"`
}

// StreamDiff is the comparison of two telemetry NDJSON streams, aligned by
// sequence number. DivergedAt is nil when every aligned pair matched.
type StreamDiff struct {
	Schema     string            `json:"schema"`
	Kind       string            `json:"kind"`
	A          StreamSide        `json:"a"`
	B          StreamSide        `json:"b"`
	Compared   int64             `json:"compared"`
	DivergedAt *StreamDivergence `json:"diverged_at,omitempty"`
}

// StreamFiles reads two NDJSON telemetry streams and diffs them. A
// truncated final line (crash-interrupted run) is tolerated and flagged on
// that side rather than failing the comparison.
func StreamFiles(pathA, pathB string) (*StreamDiff, error) {
	read := func(path string) (*telemetry.Stream, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		s, err := telemetry.ReadStream(f)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return s, nil
	}
	sa, err := read(pathA)
	if err != nil {
		return nil, err
	}
	sb, err := read(pathB)
	if err != nil {
		return nil, err
	}
	return Streams(sa, sb, pathA, pathB), nil
}

// Streams diffs two parsed telemetry streams. Records are aligned by
// sequence number (a side's ring may have dropped records, so sequences can
// be sparse); the walk stops at the first aligned pair that disagrees.
func Streams(a, b *telemetry.Stream, fileA, fileB string) *StreamDiff {
	d := &StreamDiff{
		Schema: Schema,
		Kind:   "telemetry",
		A:      StreamSide{File: fileA, Records: int64(len(a.Records)), Truncated: a.Truncated()},
		B:      StreamSide{File: fileB, Records: int64(len(b.Records)), Truncated: b.Truncated()},
	}
	i, j := 0, 0
	for i < len(a.Records) && j < len(b.Records) {
		ra, rb := &a.Records[i], &b.Records[j]
		if ra.Seq < rb.Seq {
			i++
			continue
		}
		if rb.Seq < ra.Seq {
			j++
			continue
		}
		if div := compareRecords(ra, rb); div != nil {
			d.DivergedAt = div
			return d
		}
		d.Compared++
		i, j = i+1, j+1
	}
	return d
}

// compareRecords returns nil when the two snapshots agree, or the
// divergence description otherwise. Instrument comparisons cover the names
// present on both sides, so cross-fabric streams (different registries)
// still align on their shared subsystems.
func compareRecords(a, b *telemetry.Record) *StreamDivergence {
	div := &StreamDivergence{Seq: a.Seq, CycleA: a.Cycle, CycleB: b.Cycle}
	if a.Cycle != b.Cycle {
		div.Fields = append(div.Fields, "cycle")
	}
	if a.TimePS != b.TimePS {
		div.Fields = append(div.Fields, "time_ps")
	}
	if a.Issued != b.Issued {
		div.Fields = append(div.Fields, "issued")
	}
	if a.Completed != b.Completed {
		div.Fields = append(div.Fields, "completed")
	}

	bc := make(map[string]int64, len(b.Counters))
	for _, c := range b.Counters {
		bc[c.Name] = c.Value
	}
	for _, c := range a.Counters {
		if vb, ok := bc[c.Name]; ok && vb != c.Value {
			div.Counters = append(div.Counters, ValueDelta{
				Name: c.Name, A: c.Value, B: vb,
				Delta: vb - c.Value, Rel: rel(float64(c.Value), float64(vb)),
			})
		}
	}
	bg := make(map[string]int64, len(b.Gauges))
	for _, g := range b.Gauges {
		bg[g.Name] = g.Value
	}
	for _, g := range a.Gauges {
		if vb, ok := bg[g.Name]; ok && vb != g.Value {
			div.Gauges = append(div.Gauges, ValueDelta{
				Name: g.Name, A: g.Value, B: vb,
				Delta: vb - g.Value, Rel: rel(float64(g.Value), float64(vb)),
			})
		}
	}
	type iv struct{ issued, completed int64 }
	bi := make(map[string]iv, len(b.Initiators))
	for _, r := range b.Initiators {
		bi[r.Name] = iv{issued: r.Issued, completed: r.Completed}
	}
	for _, r := range a.Initiators {
		vb, ok := bi[r.Name]
		if !ok {
			continue
		}
		if vb.issued != r.Issued {
			div.Initiators = append(div.Initiators, ValueDelta{
				Name: r.Name + ".issued", A: r.Issued, B: vb.issued,
				Delta: vb.issued - r.Issued, Rel: rel(float64(r.Issued), float64(vb.issued)),
			})
		}
		if vb.completed != r.Completed {
			div.Initiators = append(div.Initiators, ValueDelta{
				Name: r.Name + ".completed", A: r.Completed, B: vb.completed,
				Delta: vb.completed - r.Completed, Rel: rel(float64(r.Completed), float64(vb.completed)),
			})
		}
	}
	if len(div.Fields) == 0 && len(div.Counters) == 0 && len(div.Gauges) == 0 && len(div.Initiators) == 0 {
		return nil
	}
	rankValues(div.Counters)
	rankValues(div.Gauges)
	rankValues(div.Initiators)
	return div
}

// WriteJSON renders the diff document deterministically.
func (d *StreamDiff) WriteJSON(w io.Writer) error { return writeJSON(w, d) }
