package sdram

import (
	"testing"
	"testing/quick"
)

func dev() *Device { return New(DefaultConfig()) }

func TestAddressMapping(t *testing.T) {
	d := dev()
	g := d.Config().Geometry
	// consecutive columns stay in the same row/bank
	a0, a1 := uint64(0), uint64(g.BytesPerCol)
	if d.BankOf(a0) != d.BankOf(a1) || d.RowOf(a0) != d.RowOf(a1) {
		t.Fatal("adjacent columns must share bank and row")
	}
	// stepping past the column range changes bank (bank-interleaved)
	rowBytes := uint64(1<<uint(g.ColBits)) * uint64(g.BytesPerCol)
	if d.BankOf(0) == d.BankOf(rowBytes) {
		t.Fatal("bank interleave expected at row-size stride")
	}
	// stepping past banks*rowsize changes row, same bank
	bigStride := rowBytes * uint64(g.Banks)
	if d.BankOf(0) != d.BankOf(bigStride) {
		t.Fatal("same bank expected")
	}
	if d.RowOf(0) == d.RowOf(bigStride) {
		t.Fatal("different row expected")
	}
}

func TestActivateReadSequence(t *testing.T) {
	d := dev()
	tm := d.Config().Timing
	addr := uint64(0x1000)
	bk, row := d.BankOf(addr), d.RowOf(addr)
	now := int64(100)
	if !d.CanActivate(bk, now) {
		t.Fatal("fresh bank must accept activate")
	}
	d.Activate(bk, row, now)
	if d.OpenRow(bk) != row {
		t.Fatal("row not open")
	}
	if d.CanAccess(addr, now+int64(tm.TRCD)-1) {
		t.Fatal("access before tRCD must be illegal")
	}
	if !d.CanAccess(addr, now+int64(tm.TRCD)) {
		t.Fatal("access at tRCD must be legal")
	}
	first, busCycles := d.Access(addr, 8, false, now+int64(tm.TRCD))
	if first != now+int64(tm.TRCD)+int64(tm.TCAS) {
		t.Fatalf("first data at %d", first)
	}
	if busCycles != 4 { // DDR: 8 cols / 2
		t.Fatalf("bus cycles = %d, want 4", busCycles)
	}
}

func TestSDRModeBusCycles(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DDR = false
	d := New(cfg)
	addr := uint64(0)
	d.Activate(d.BankOf(addr), d.RowOf(addr), 0)
	_, busCycles := d.Access(addr, 8, false, int64(cfg.Timing.TRCD))
	if busCycles != 8 {
		t.Fatalf("SDR bus cycles = %d, want 8", busCycles)
	}
}

func TestRowMissRequiresPrecharge(t *testing.T) {
	d := dev()
	tm := d.Config().Timing
	g := d.Config().Geometry
	rowStride := uint64(1<<uint(g.ColBits)) * uint64(g.BytesPerCol) * uint64(g.Banks)
	a, b := uint64(0), rowStride // same bank, different rows
	bk := d.BankOf(a)
	d.Activate(bk, d.RowOf(a), 0)
	if d.CanActivate(bk, 100) {
		t.Fatal("activate with open row must be illegal")
	}
	if d.CanPrecharge(bk, int64(tm.TRAS)-1) {
		t.Fatal("precharge before tRAS must be illegal")
	}
	now := int64(tm.TRAS)
	d.Precharge(bk, now)
	if d.OpenRow(bk) != -1 {
		t.Fatal("row still open after precharge")
	}
	if d.CanActivate(bk, now+int64(tm.TRP)-1) {
		t.Fatal("activate before tRP must be illegal")
	}
	// also respect tRC from the first activate
	earliest := now + int64(tm.TRP)
	if int64(tm.TRC) > earliest {
		earliest = int64(tm.TRC)
	}
	if !d.CanActivate(bk, earliest) {
		t.Fatal("activate should be legal after tRP and tRC")
	}
	d.Activate(bk, d.RowOf(b), earliest)
}

func TestWriteRecoveryBlocksPrecharge(t *testing.T) {
	d := dev()
	tm := d.Config().Timing
	addr := uint64(0)
	bk := d.BankOf(addr)
	d.Activate(bk, d.RowOf(addr), 0)
	wNow := int64(tm.TRCD)
	first, busCycles := d.Access(addr, 4, true, wNow)
	dataEnd := first + busCycles
	if d.CanPrecharge(bk, dataEnd+int64(tm.TWR)-1) {
		t.Fatal("precharge before write recovery must be illegal")
	}
	minPre := dataEnd + int64(tm.TWR)
	if int64(tm.TRAS) > minPre {
		minPre = int64(tm.TRAS)
	}
	if !d.CanPrecharge(bk, minPre) {
		t.Fatal("precharge should be legal after tWR and tRAS")
	}
}

func TestDataBusConflict(t *testing.T) {
	d := dev()
	tm := d.Config().Timing
	// open rows in two banks
	g := d.Config().Geometry
	rowBytes := uint64(1<<uint(g.ColBits)) * uint64(g.BytesPerCol)
	a, b := uint64(0), rowBytes // different banks
	if d.BankOf(a) == d.BankOf(b) {
		t.Fatal("test setup: expected different banks")
	}
	d.Activate(d.BankOf(a), d.RowOf(a), 0)
	d.Activate(d.BankOf(b), d.RowOf(b), 1)
	now := int64(tm.TRCD) + 1
	_, busCycles := d.Access(a, 8, false, now)
	// the second access must wait for the data bus
	if d.CanAccess(b, now+1) {
		t.Fatal("data bus conflict not detected")
	}
	if !d.CanAccess(b, now+int64(tm.TCAS)+busCycles) {
		t.Fatal("access should be legal once the data bus frees")
	}
}

func TestRefreshCycle(t *testing.T) {
	d := dev()
	tm := d.Config().Timing
	if d.RefreshDue(0) {
		t.Fatal("refresh must not be due at reset")
	}
	if !d.RefreshDue(int64(tm.TREFI)) {
		t.Fatal("refresh must be due at tREFI")
	}
	// refresh illegal with open row
	d.Activate(0, 5, 0)
	if d.CanRefresh(int64(tm.TRAS) + 1) {
		t.Fatal("refresh with open row must be illegal")
	}
	d.Precharge(0, int64(tm.TRAS))
	rNow := int64(tm.TRAS + tm.TRP)
	if !d.CanRefresh(rNow) {
		t.Fatal("refresh should be legal with all banks precharged")
	}
	d.Refresh(rNow)
	if d.CanActivate(0, rNow+int64(tm.TRFC)-1) {
		t.Fatal("activate during tRFC must be illegal")
	}
	if !d.CanActivate(0, rNow+int64(tm.TRFC)) {
		t.Fatal("activate after tRFC should be legal")
	}
	if d.Stats().Refreshes != 1 {
		t.Fatal("refresh not counted")
	}
}

func TestIsRowHitAndStats(t *testing.T) {
	d := dev()
	addr := uint64(0x2000)
	if d.IsRowHit(addr) {
		t.Fatal("no row open yet")
	}
	d.Activate(d.BankOf(addr), d.RowOf(addr), 0)
	if !d.IsRowHit(addr) {
		t.Fatal("row hit expected")
	}
	d.NoteRowHit()
	d.NoteRowMiss()
	s := d.Stats()
	if s.HitRate() != 0.5 {
		t.Fatalf("hit rate = %v", s.HitRate())
	}
	if s.Activates != 1 {
		t.Fatalf("activates = %d", s.Activates)
	}
}

func TestHitRateEmpty(t *testing.T) {
	var s Stats
	if s.HitRate() != 0 {
		t.Fatal("empty hit rate must be 0")
	}
}

func TestIllegalCommandsPanic(t *testing.T) {
	cases := []struct {
		name string
		f    func(d *Device)
	}{
		{"activate-open-bank", func(d *Device) { d.Activate(0, 1, 0); d.Activate(0, 2, 1) }},
		{"access-closed-row", func(d *Device) { d.Access(0, 4, false, 0) }},
		{"early-precharge", func(d *Device) { d.Activate(0, 1, 0); d.Precharge(0, 1) }},
		{"early-refresh", func(d *Device) { d.Activate(0, 1, 0); d.Refresh(1) }},
		{"zero-cols", func(d *Device) {
			d.Activate(0, 0, 0)
			d.Access(0, 0, false, int64(d.Config().Timing.TRCD))
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			tc.f(dev())
		})
	}
}

func TestNewPanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{Geometry: Geometry{Banks: 0, BytesPerCol: 8}})
}

// Property: a controller loop that always consults Can* before issuing never
// triggers a panic and always makes forward progress.
func TestPropertyLegalScheduleProgress(t *testing.T) {
	prop := func(seed uint64) bool {
		d := dev()
		tm := d.Config().Timing
		rng := newRand(seed)
		now := int64(0)
		served := 0
		var pendingAddr uint64
		havePending := false
		for step := 0; step < 5000 && served < 50; step++ {
			if !havePending {
				pendingAddr = uint64(rng.next() % (1 << 26))
				havePending = true
			}
			bk := d.BankOf(pendingAddr)
			switch {
			case d.RefreshDue(now) && d.CanRefresh(now):
				d.Refresh(now)
			case d.RefreshDue(now):
				// close all banks for refresh
				for i := 0; i < d.Config().Geometry.Banks; i++ {
					if d.OpenRow(i) != -1 && d.CanPrecharge(i, now) {
						d.Precharge(i, now)
					}
				}
			case d.IsRowHit(pendingAddr) && d.CanAccess(pendingAddr, now):
				d.Access(pendingAddr, 1+int(rng.next()%8), rng.next()%2 == 0, now)
				served++
				havePending = false
			case d.OpenRow(bk) == -1 && d.CanActivate(bk, now):
				d.Activate(bk, d.RowOf(pendingAddr), now)
			case d.OpenRow(bk) != -1 && d.OpenRow(bk) != d.RowOf(pendingAddr) && d.CanPrecharge(bk, now):
				d.Precharge(bk, now)
			}
			now++
		}
		_ = tm
		return served >= 50
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// minimal local PRNG to avoid importing sim into this leaf package's tests
type xrand struct{ s uint64 }

func newRand(seed uint64) *xrand { return &xrand{s: seed | 1} }

func (r *xrand) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}
