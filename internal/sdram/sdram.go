// Package sdram models an SDR/DDR SDRAM device at the command level: banks
// with open-row state, the command set the paper's LMI controller generates
// (precharge, activate, read, write, auto-refresh) and the JEDEC-style
// timing constraints (tRCD, tCAS, tRP, tRAS, tRC, tWR, tRFC, tREFI) that the
// controller's scheduler must respect.
//
// The device is passive bookkeeping: the memory controller asks whether a
// command is legal at the current cycle (CanX) and then commits it (X). Time
// is the controller-clock cycle count passed in by the caller, so the device
// needs no clock of its own.
package sdram

import "fmt"

// Timing holds the device timing constraints in controller-clock cycles.
type Timing struct {
	TRCD int // activate to read/write delay
	TCAS int // read command to first data
	TRP  int // precharge to activate delay
	TRAS int // activate to precharge minimum
	TRC  int // activate to activate (same bank) minimum
	TWR  int // write recovery before precharge
	TRFC int // auto-refresh cycle time
	// TREFI is the average refresh interval; the controller must issue
	// one auto-refresh at least this often.
	TREFI int
}

// DDR2_400Like returns timing numbers representative of the DDR SDRAM
// behind a mid-2000s LMI, expressed in 133-200 MHz controller cycles.
func DDR2_400Like() Timing {
	return Timing{TRCD: 3, TCAS: 3, TRP: 3, TRAS: 8, TRC: 11, TWR: 3, TRFC: 21, TREFI: 1560}
}

// Geometry describes the address organization.
type Geometry struct {
	Banks       int
	RowBits     int
	ColBits     int
	BytesPerCol int
}

// DefaultGeometry is a 4-bank device with 8 KiB rows of 8-byte columns.
func DefaultGeometry() Geometry {
	return Geometry{Banks: 4, RowBits: 13, ColBits: 10, BytesPerCol: 8}
}

// Config combines timing, geometry and the data-rate mode.
type Config struct {
	Timing   Timing
	Geometry Geometry
	// DDR transfers two columns per controller cycle.
	DDR bool
}

// DefaultConfig returns a DDR device with representative timings.
func DefaultConfig() Config {
	return Config{Timing: DDR2_400Like(), Geometry: DefaultGeometry(), DDR: true}
}

// bank tracks one bank's row state and timing fences.
type bank struct {
	openRow        int64 // -1 when precharged
	activateAt     int64 // cycle of last activate
	lastWriteData  int64 // cycle the last write's data finished
	prechargeReady int64 // earliest cycle activate is allowed (after tRP)
}

// Device is one SDRAM device.
type Device struct {
	cfg   Config
	banks []bank

	// dataFreeAt is the first cycle the shared data bus is free.
	dataFreeAt int64
	// refreshReady is the earliest cycle a new command may issue after an
	// in-progress auto-refresh.
	refreshReady int64
	// refreshDeadline is the cycle by which the next auto-refresh must
	// have been issued.
	refreshDeadline int64

	activates  int64
	precharges int64
	reads      int64
	writes     int64
	refreshes  int64
	rowHits    int64
	rowMisses  int64
}

// New builds a device; all banks start precharged.
func New(cfg Config) *Device {
	if cfg.Geometry.Banks <= 0 {
		panic("sdram: need at least one bank")
	}
	if cfg.Geometry.BytesPerCol <= 0 {
		panic("sdram: BytesPerCol must be positive")
	}
	d := &Device{cfg: cfg, banks: make([]bank, cfg.Geometry.Banks)}
	for i := range d.banks {
		// Start every timing fence far in the past so cycle-0 commands
		// are legal on a fresh device.
		past := -int64(cfg.Timing.TRC + cfg.Timing.TRFC + 1)
		d.banks[i] = bank{openRow: -1, activateAt: past, lastWriteData: past, prechargeReady: 0}
	}
	d.refreshDeadline = int64(cfg.Timing.TREFI)
	return d
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// BankOf returns the bank index addr maps to (bank bits above the column
// bits, the usual bank-interleaved mapping that spreads sequential bursts).
func (d *Device) BankOf(addr uint64) int {
	g := d.cfg.Geometry
	return int((addr >> (uint(g.ColBits) + uintLog2(g.BytesPerCol))) % uint64(g.Banks))
}

// RowOf returns the row index addr maps to.
func (d *Device) RowOf(addr uint64) int64 {
	g := d.cfg.Geometry
	shift := uint(g.ColBits) + uintLog2(g.BytesPerCol) + uintLog2(g.Banks)
	return int64((addr >> shift) & ((1 << uint(g.RowBits)) - 1))
}

func uintLog2(v int) uint {
	var n uint
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// OpenRow returns the open row of the bank (-1 if precharged).
func (d *Device) OpenRow(bankIdx int) int64 { return d.banks[bankIdx].openRow }

// IsRowHit reports whether addr's row is open in its bank.
func (d *Device) IsRowHit(addr uint64) bool {
	return d.banks[d.BankOf(addr)].openRow == d.RowOf(addr)
}

// RefreshDue reports whether the refresh deadline has passed at now.
func (d *Device) RefreshDue(now int64) bool { return now >= d.refreshDeadline }

// CanActivate reports whether an activate to the bank is legal at now.
func (d *Device) CanActivate(bankIdx int, now int64) bool {
	if now < d.refreshReady {
		return false
	}
	b := &d.banks[bankIdx]
	if b.openRow != -1 {
		return false // must precharge first
	}
	if now < b.prechargeReady {
		return false // tRP not elapsed
	}
	if now < b.activateAt+int64(d.cfg.Timing.TRC) {
		return false // tRC not elapsed
	}
	return true
}

// Activate opens row in the bank. It panics on an illegal command — the
// controller must check CanActivate.
func (d *Device) Activate(bankIdx int, row int64, now int64) {
	if !d.CanActivate(bankIdx, now) {
		panic(fmt.Sprintf("sdram: illegal ACTIVATE bank %d at %d", bankIdx, now))
	}
	b := &d.banks[bankIdx]
	b.openRow = row
	b.activateAt = now
	d.activates++
}

// CanPrecharge reports whether a precharge of the bank is legal at now.
func (d *Device) CanPrecharge(bankIdx int, now int64) bool {
	if now < d.refreshReady {
		return false
	}
	b := &d.banks[bankIdx]
	if b.openRow == -1 {
		return true // NOP precharge is legal
	}
	if now < b.activateAt+int64(d.cfg.Timing.TRAS) {
		return false // tRAS not satisfied
	}
	if now < b.lastWriteData+int64(d.cfg.Timing.TWR) {
		return false // write recovery
	}
	return true
}

// Precharge closes the bank's row.
func (d *Device) Precharge(bankIdx int, now int64) {
	if !d.CanPrecharge(bankIdx, now) {
		panic(fmt.Sprintf("sdram: illegal PRECHARGE bank %d at %d", bankIdx, now))
	}
	b := &d.banks[bankIdx]
	if b.openRow != -1 {
		d.precharges++
	}
	b.openRow = -1
	b.prechargeReady = now + int64(d.cfg.Timing.TRP)
}

// CanAccess reports whether a read or write of cols columns at addr is legal
// at now (row open, tRCD satisfied, data bus free).
func (d *Device) CanAccess(addr uint64, now int64) bool {
	if now < d.refreshReady {
		return false
	}
	b := &d.banks[d.BankOf(addr)]
	if b.openRow != d.RowOf(addr) {
		return false
	}
	if now < b.activateAt+int64(d.cfg.Timing.TRCD) {
		return false
	}
	return now >= d.dataFreeAt
}

// Access performs a read or write burst of cols columns and returns the
// cycle of the first data transfer and the number of data-bus cycles the
// burst occupies. write selects the direction.
func (d *Device) Access(addr uint64, cols int, write bool, now int64) (firstData, busCycles int64) {
	if cols <= 0 {
		panic("sdram: access with no columns")
	}
	if !d.CanAccess(addr, now) {
		panic(fmt.Sprintf("sdram: illegal access @%#x at %d", addr, now))
	}
	bk := &d.banks[d.BankOf(addr)]
	per := int64(cols)
	if d.cfg.DDR {
		per = (per + 1) / 2
	}
	firstData = now + int64(d.cfg.Timing.TCAS)
	d.dataFreeAt = firstData + per
	if write {
		bk.lastWriteData = firstData + per
		d.writes++
	} else {
		d.reads++
	}
	return firstData, per
}

// CanRefresh reports whether an auto-refresh is legal at now (all banks
// precharged).
func (d *Device) CanRefresh(now int64) bool {
	if now < d.refreshReady {
		return false
	}
	for i := range d.banks {
		if d.banks[i].openRow != -1 {
			return false
		}
		if now < d.banks[i].prechargeReady {
			return false
		}
	}
	return true
}

// Refresh issues an auto-refresh; all commands are fenced for tRFC.
func (d *Device) Refresh(now int64) {
	if !d.CanRefresh(now) {
		panic(fmt.Sprintf("sdram: illegal REFRESH at %d", now))
	}
	d.refreshReady = now + int64(d.cfg.Timing.TRFC)
	d.refreshDeadline = now + int64(d.cfg.Timing.TREFI)
	d.refreshes++
}

// NoteRowHit/NoteRowMiss let the controller attribute its scheduling
// decisions for statistics.
func (d *Device) NoteRowHit() { d.rowHits++ }

// NoteRowMiss records a row-miss scheduling decision.
func (d *Device) NoteRowMiss() { d.rowMisses++ }

// Stats reports device activity.
func (d *Device) Stats() Stats {
	return Stats{
		Activates:  d.activates,
		Precharges: d.precharges,
		Reads:      d.reads,
		Writes:     d.writes,
		Refreshes:  d.refreshes,
		RowHits:    d.rowHits,
		RowMisses:  d.rowMisses,
	}
}

// Stats summarizes command counts.
type Stats struct {
	Activates  int64
	Precharges int64
	Reads      int64
	Writes     int64
	Refreshes  int64
	RowHits    int64
	RowMisses  int64
}

// HitRate returns the row-hit fraction of attributed accesses.
func (s Stats) HitRate() float64 {
	tot := s.RowHits + s.RowMisses
	if tot == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(tot)
}
