package sdram

import "mpsocsim/internal/snapshot"

// EncodeState serializes the device's mutable state (DESIGN.md §16): per-bank
// row state and timing fences, the shared data-bus and refresh fences, and
// the command counters. Timing/geometry are construction parameters,
// re-derived from the spec; the bank count guards shape.
func (d *Device) EncodeState(e *snapshot.Encoder) {
	e.Tag('D')
	e.U(uint64(len(d.banks)))
	for i := range d.banks {
		b := &d.banks[i]
		e.I(b.openRow)
		e.I(b.activateAt)
		e.I(b.lastWriteData)
		e.I(b.prechargeReady)
	}
	e.I(d.dataFreeAt)
	e.I(d.refreshReady)
	e.I(d.refreshDeadline)
	e.I(d.activates)
	e.I(d.precharges)
	e.I(d.reads)
	e.I(d.writes)
	e.I(d.refreshes)
	e.I(d.rowHits)
	e.I(d.rowMisses)
}

// DecodeState restores a device serialized by EncodeState.
func (d *Device) DecodeState(dec *snapshot.Decoder) {
	dec.Tag('D')
	nb := dec.N(1 << 10)
	if dec.Err() != nil {
		return
	}
	if nb != len(d.banks) {
		dec.Corrupt("sdram bank count %d does not match platform's %d", nb, len(d.banks))
		return
	}
	for i := range d.banks {
		b := &d.banks[i]
		b.openRow = dec.I()
		b.activateAt = dec.I()
		b.lastWriteData = dec.I()
		b.prechargeReady = dec.I()
	}
	d.dataFreeAt = dec.I()
	d.refreshReady = dec.I()
	d.refreshDeadline = dec.I()
	d.activates = dec.I()
	d.precharges = dec.I()
	d.reads = dec.I()
	d.writes = dec.I()
	d.refreshes = dec.I()
	d.rowHits = dec.I()
	d.rowMisses = dec.I()
}
