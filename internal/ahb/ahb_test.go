package ahb

import (
	"testing"

	"mpsocsim/internal/bus"
	"mpsocsim/internal/mem"
	"mpsocsim/internal/sim"
)

type scripted struct {
	port      *bus.InitiatorPort
	clk       *sim.Clock
	script    []*bus.Request
	i         int
	beats     []bus.Beat
	completed map[uint64]int64
}

func newScripted(clk *sim.Clock, script []*bus.Request) *scripted {
	return &scripted{
		port:      bus.NewInitiatorPort("ini", 4, 8),
		clk:       clk,
		script:    script,
		completed: map[uint64]int64{},
	}
}

func (s *scripted) Eval() {
	if s.i < len(s.script) && s.port.Req.CanPush() {
		s.port.Req.Push(s.script[s.i])
		s.i++
	}
	for s.port.Resp.CanPop() {
		b := s.port.Resp.Pop()
		s.beats = append(s.beats, b)
		if b.Last {
			s.completed[b.Req.ID] = s.clk.Cycles()
		}
	}
}

func (s *scripted) Update() { s.port.Update() }

type tb struct {
	k    *sim.Kernel
	clk  *sim.Clock
	bus  *Bus
	mems []*mem.Memory
	inis []*scripted
}

func newTB(t *testing.T, memCfg mem.Config, nMems int, scripts ...[]*bus.Request) *tb {
	t.Helper()
	k := sim.NewKernel()
	clk := k.NewClock("clk", 250)
	var regions []bus.Region
	for i := 0; i < nMems; i++ {
		regions = append(regions, bus.Region{Base: uint64(i) << 24, Size: 1 << 24, Target: i})
	}
	b := New("ahb0", DefaultConfig(), bus.MustAddrMap(regions...))
	out := &tb{k: k, clk: clk, bus: b}
	for i := 0; i < nMems; i++ {
		m := mem.New("mem", memCfg)
		b.AttachTarget(m.Port())
		out.mems = append(out.mems, m)
	}
	for _, sc := range scripts {
		ini := newScripted(clk, sc)
		b.AttachInitiator(ini.port)
		out.inis = append(out.inis, ini)
		clk.Register(ini)
	}
	clk.Register(b)
	for _, m := range out.mems {
		clk.Register(m)
	}
	return out
}

func (b *tb) run(t *testing.T, total int) {
	t.Helper()
	done := func() int {
		n := 0
		for _, ini := range b.inis {
			n += len(ini.completed)
		}
		return n
	}
	if !b.k.RunWhile(func() bool { return done() < total }, 1e10) {
		t.Fatalf("timeout: %d of %d transactions completed", done(), total)
	}
}

func rd(id, addr uint64, beats int) *bus.Request {
	return &bus.Request{ID: id, Op: bus.OpRead, Addr: addr, Beats: beats, BytesPerBeat: 8}
}

func wrp(id, addr uint64, beats int) *bus.Request {
	return &bus.Request{ID: id, Op: bus.OpWrite, Addr: addr, Beats: beats, BytesPerBeat: 8, Posted: true}
}

func TestReadBurstCompletes(t *testing.T) {
	b := newTB(t, mem.DefaultConfig(), 1, []*bus.Request{rd(1, 0x100, 4)})
	b.run(t, 1)
	if len(b.inis[0].beats) != 4 {
		t.Fatalf("beats = %d, want 4", len(b.inis[0].beats))
	}
}

func TestSingleTransactionAtATime(t *testing.T) {
	// Two masters to two different memories: AHB still serializes —
	// total time ~2x a single run, unlike a crossbar.
	single := newTB(t, mem.Config{WaitStates: 1, ReqDepth: 1, RespDepth: 2}, 2,
		[]*bus.Request{rd(1, 0x10, 8), rd(2, 0x20, 8)})
	single.run(t, 2)
	t1 := single.clk.Cycles()

	dual := newTB(t, mem.Config{WaitStates: 1, ReqDepth: 1, RespDepth: 2}, 2,
		[]*bus.Request{rd(1, 0x10, 8), rd(2, 0x20, 8)},
		[]*bus.Request{rd(11, 1<<24|0x10, 8), rd(12, 1<<24|0x20, 8)})
	dual.run(t, 4)
	t2 := dual.clk.Cycles()
	// The data phases serialize; only the pipelined address phase may
	// overlap, so doubling the work must cost clearly more than 1.5x
	// (a crossbar would stay near 1.0x).
	if float64(t2) < 1.5*float64(t1) {
		t.Fatalf("AHB must serialize across targets: dual %d vs single %d cycles", t2, t1)
	}
}

func TestWaitStatesStallBus(t *testing.T) {
	// With W=3 the bus is held but only 1 of 4 busy cycles moves data.
	b := newTB(t, mem.Config{WaitStates: 3, ReqDepth: 1, RespDepth: 2}, 1,
		[]*bus.Request{rd(1, 0x0, 8), rd(2, 0x100, 8)})
	b.run(t, 2)
	s := b.bus.Stats()
	if eff := s.DataEfficiency(); eff > 0.35 {
		t.Fatalf("data efficiency %v too high for W=3 (expected ~0.25)", eff)
	}
	if s.Utilization() < 0.8 {
		t.Fatalf("bus should be held nearly continuously, utilization %v", s.Utilization())
	}
}

func TestWritesAreNonPosted(t *testing.T) {
	// Posted flag must be stripped: the write completes only via ack, and
	// the bus is held during the memory's absorption of the data.
	b := newTB(t, mem.Config{WaitStates: 1, ReqDepth: 1, RespDepth: 2}, 1,
		[]*bus.Request{wrp(1, 0x0, 4), rd(2, 0x100, 1)})
	b.run(t, 2) // both must produce completions (write acked)
	if len(b.inis[0].completed) != 2 {
		t.Fatal("write must be acked (non-posted)")
	}
	if b.inis[0].completed[2] < b.inis[0].completed[1] {
		t.Fatal("read must complete after the blocking write")
	}
}

func TestZeroHandoverBackToBack(t *testing.T) {
	// With W=0 and two 4-beat reads from one master, the second burst's
	// first beat should follow the first burst's last beat within 4
	// cycles (grant + request hop + memory pop + beat hop), with no
	// additional arbitration bubble.
	k := sim.NewKernel()
	clk := k.NewClock("clk", 250)
	b := New("ahb0", DefaultConfig(), bus.Single(0))
	m := mem.New("mem", mem.Config{WaitStates: 0, ReqDepth: 1, RespDepth: 2})
	b.AttachTarget(m.Port())
	ini := newScripted(clk, []*bus.Request{rd(1, 0, 4), rd(2, 0x40, 4)})
	b.AttachInitiator(ini.port)
	var beatCycles []int64
	probe := &sim.ClockedFunc{OnEval: func() {
		if n := len(ini.beats); n > len(beatCycles) {
			for len(beatCycles) < n {
				beatCycles = append(beatCycles, clk.Cycles())
			}
		}
	}}
	clk.Register(ini)
	clk.Register(b)
	clk.Register(m)
	clk.Register(probe)
	k.RunWhile(func() bool { return len(ini.completed) < 2 }, 1e9)
	if len(beatCycles) != 8 {
		t.Fatalf("got %d beats, want 8", len(beatCycles))
	}
	gap := beatCycles[4] - beatCycles[3]
	if gap > 4 {
		t.Fatalf("inter-burst gap = %d cycles, want <= 4 (early re-arbitration)", gap)
	}
}

func TestRoundRobinFairness(t *testing.T) {
	// Three masters with identical workloads should all finish within a
	// reasonable spread.
	mk := func(base uint64, idBase uint64) []*bus.Request {
		var s []*bus.Request
		for i := uint64(0); i < 10; i++ {
			s = append(s, rd(idBase+i, base+i*0x40, 4))
		}
		return s
	}
	b := newTB(t, mem.Config{WaitStates: 1, ReqDepth: 1, RespDepth: 2}, 1,
		mk(0x1000, 100), mk(0x2000, 200), mk(0x3000, 300))
	b.run(t, 30)
	var finish []int64
	for _, ini := range b.inis {
		var last int64
		for _, c := range ini.completed {
			if c > last {
				last = c
			}
		}
		finish = append(finish, last)
	}
	lo, hi := finish[0], finish[0]
	for _, f := range finish {
		if f < lo {
			lo = f
		}
		if f > hi {
			hi = f
		}
	}
	if float64(hi-lo) > 0.3*float64(hi) {
		t.Fatalf("unfair arbitration: finish times %v", finish)
	}
}

func TestStatsZeroCycles(t *testing.T) {
	var s Stats
	if s.Utilization() != 0 || s.DataEfficiency() != 0 {
		t.Fatal("zero stats must be 0")
	}
}
