package ahb

import (
	"mpsocsim/internal/attr"
	"mpsocsim/internal/bus"
	"mpsocsim/internal/snapshot"
)

// EncodeState serializes the layer's mutable state (DESIGN.md §16): the
// data-phase and pipelined address-phase transactions, the round-robin
// pointer and the activity counters. Ports belong to the attached components
// and are serialized by their owners.
func (b *Bus) EncodeState(e *snapshot.Encoder) {
	e.Tag('B')
	bus.EncodeReqRef(e, b.cur)
	e.I(int64(b.curTarget))
	bus.EncodeReqRef(e, b.next)
	e.I(int64(b.nextTarget))
	e.I(int64(b.rr))
	e.U(uint64(len(b.attrHead)))
	for _, h := range b.attrHead {
		e.Bool(h)
	}
	e.I(b.cycles)
	e.I(b.busyCycles)
	e.I(b.dataBeats)
	e.I(b.granted)
	e.I(b.stallCycles)
}

// DecodeState restores a layer serialized by EncodeState.
func (b *Bus) DecodeState(d *snapshot.Decoder, col *attr.Collector) {
	d.Tag('B')
	b.cur = bus.DecodeReqRef(d, col)
	b.curTarget = int(d.I())
	b.next = bus.DecodeReqRef(d, col)
	b.nextTarget = int(d.I())
	b.rr = int(d.I())
	nh := d.N(1 << 16)
	if d.Err() != nil {
		return
	}
	if nh != 0 && nh != len(b.initiators) {
		d.Corrupt("ahb %q attr head cache size %d does not match %d masters", b.name, nh, len(b.initiators))
		return
	}
	b.attrHead = b.attrHead[:0]
	for i := 0; i < nh; i++ {
		b.attrHead = append(b.attrHead, d.Bool())
	}
	b.cycles = d.I()
	b.busyCycles = d.I()
	b.dataBeats = d.I()
	b.granted = d.I()
	b.stallCycles = d.I()
}
