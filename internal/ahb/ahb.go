// Package ahb models an AMBA AHB shared-bus layer as described in the paper
// (§3.2): two unidirectional data links of which only one can be active at a
// time, transaction pipelining (split address/data ownership) but no
// multiple outstanding transactions, burst support, implicit non-posted
// writes, and no split transactions — target wait states turn into idle bus
// cycles that stall every other master.
//
// Grant hand-over is free: AHB re-arbitrates while the penultimate beat of a
// burst is on the bus (HGRANT changes early), so back-to-back bursts incur
// no arbitration bubble — the behaviour §4.1.2 calls "the best operating
// condition for AMBA AHB".
package ahb

import (
	"mpsocsim/internal/attr"
	"mpsocsim/internal/bus"
	"mpsocsim/internal/metrics"
)

// Config parameterizes an AHB layer.
type Config struct {
	// BytesPerBeat is the bus data width in bytes.
	BytesPerBeat int
}

// DefaultConfig returns a 64-bit AHB layer.
func DefaultConfig() Config { return Config{BytesPerBeat: 8} }

// Bus is a single AHB layer: one shared channel, one transaction in flight.
type Bus struct {
	name string
	cfg  Config

	initiators []*bus.InitiatorPort
	targets    []*bus.TargetPort
	amap       *bus.AddrMap

	// current transaction (data phase) and the pipelined next one
	// (address phase): AHB overlaps the next master's address phase with
	// the current data phase (HGRANT changes early), so back-to-back
	// transactions reach the slave with no handover bubble.
	cur        *bus.Request
	curTarget  int
	next       *bus.Request
	nextTarget int
	rr         int

	// attrCol/attrNow, when set, stamp latency-attribution phases on every
	// granted request (see EnableAttribution). attrHead caches, per
	// master port, whether the current committed head already carries a
	// stamped record (cleared at grant).
	attrCol  *attr.Collector
	attrNow  func() int64
	attrHead []bool

	cycles     int64
	busyCycles int64
	dataBeats  int64
	granted    int64
	// stallCycles counts idle-bus cycles where at least one master had a
	// request queued but no grant could be issued (slave FIFO full or no
	// decodable target) — the wait-state starvation the paper charges
	// against the shared-bus topology.
	stallCycles int64
}

// New builds an empty AHB layer.
func New(name string, cfg Config, amap *bus.AddrMap) *Bus {
	if cfg.BytesPerBeat <= 0 {
		cfg.BytesPerBeat = 8
	}
	return &Bus{name: name, cfg: cfg, amap: amap}
}

// Name returns the layer name.
func (b *Bus) Name() string { return b.name }

// AttachInitiator connects a master; see bus.Fabric.
func (b *Bus) AttachInitiator(p *bus.InitiatorPort) int {
	b.initiators = append(b.initiators, p)
	return len(b.initiators) - 1
}

// AttachTarget connects a slave; see bus.Fabric.
func (b *Bus) AttachTarget(p *bus.TargetPort) int {
	b.targets = append(b.targets, p)
	return len(b.targets) - 1
}

// EnableAttribution makes the layer stamp latency-attribution phases:
// records attach at the head-of-queue scan (PhaseArbWait); on AHB the grant
// delivers the request to the slave in the same cycle, so PhaseBusXfer is a
// zero-length marker and the time lands in PhaseTargetQueue. now must return
// the bus clock's current edge in absolute picoseconds (sim.Clock.NowPS).
func (b *Bus) EnableAttribution(col *attr.Collector, now func() int64) {
	b.attrCol = col
	b.attrNow = now
}

// Eval advances the bus one cycle.
func (b *Bus) Eval() {
	b.cycles++
	if b.attrCol != nil {
		// Attach records to requests newly arrived at a master-port head
		// (entering arb_wait). The bus is the sole consumer of these
		// FIFOs, so attrHead caches "current head already stamped" per
		// port: one bool load per attached port and one inlined CanPop
		// per empty port per cycle; arbitrate clears the flag on grant.
		if len(b.attrHead) != len(b.initiators) {
			b.attrHead = make([]bool, len(b.initiators))
		}
		var now int64
		for i, ip := range b.initiators {
			if b.attrHead[i] || !ip.Req.CanPop() {
				continue
			}
			if now == 0 {
				now = b.attrNow()
			}
			bus.AttachAttr(b.attrCol, ip.Req.Peek(), now)
			b.attrHead[i] = true
		}
	}
	if b.cur != nil {
		b.busyCycles++
		// Pipelined address phase: grant one transaction ahead while
		// the current data phase is in progress.
		if b.next == nil {
			b.next, b.nextTarget = b.arbitrate()
		}
		// Wait for the slave's response beats; forward one per cycle.
		tp := b.targets[b.curTarget]
		ip := b.initiators[b.cur.Src]
		if tp.Resp.CanPop() && ip.Resp.CanPush() {
			beat := tp.Resp.Peek()
			if beat.Req.ID == b.cur.ID {
				tp.Resp.Pop()
				ip.Resp.Push(beat)
				b.dataBeats++
				if beat.Last {
					// the pipelined transaction (if any) enters
					// its data phase with no handover bubble
					b.cur, b.curTarget = b.next, b.nextTarget
					b.next = nil
				}
			}
		}
		return
	}
	// Idle bus: plain address phase.
	b.cur, b.curTarget = b.arbitrate()
	if b.cur != nil {
		b.busyCycles++
	} else if b.pendingRequest() {
		b.stallCycles++
	}
}

// pendingRequest reports whether any master has a request queued — used to
// distinguish a stalled idle cycle from a genuinely quiet one.
func (b *Bus) pendingRequest() bool {
	for _, ip := range b.initiators {
		if ip.Req.CanPop() {
			return true
		}
	}
	return false
}

// arbitrate grants one queued request round-robin and hands it to its slave;
// it returns nil when nothing can be granted this cycle.
func (b *Bus) arbitrate() (*bus.Request, int) {
	ni := len(b.initiators)
	for k := 0; k < ni; k++ {
		i := (b.rr + k) % ni
		ip := b.initiators[i]
		if !ip.Req.CanPop() {
			continue
		}
		req := ip.Req.Peek()
		t := b.amap.Decode(req.Addr)
		if t < 0 || !b.targets[t].Req.CanPush() {
			continue
		}
		ip.Req.Pop()
		req.Src = i
		req.Posted = false // AHB writes are implicitly non-posted
		if b.attrCol != nil {
			// Attach here as well as at the head scan, so a request
			// granted the same cycle it became head still gets a record;
			// the granted port's next head needs a fresh stamp.
			now := b.attrNow()
			bus.AttachAttr(b.attrCol, req, now)
			req.Attr.Enter(attr.PhaseBusXfer, now)
			req.Attr.Enter(attr.PhaseTargetQueue, now)
			if i < len(b.attrHead) {
				b.attrHead[i] = false
			}
		}
		b.targets[t].Req.Push(req)
		b.rr = (i + 1) % ni
		b.granted++
		return req, t
	}
	return nil, -1
}

// Update: the bus owns no FIFOs.
func (b *Bus) Update() {}

// RegisterMetrics registers the layer's telemetry under "ahb.<name>.*" on
// the given clock domain: grants, busy/stall cycles, data beats, and an
// in-flight gauge (0/1/2 — the current data phase plus the pipelined
// address phase). Func-backed: the grant path is untouched.
func (b *Bus) RegisterMetrics(m *metrics.Registry, clock string) {
	p := "ahb." + b.name + "."
	m.CounterFunc(p+"grants", func() int64 { return b.granted })
	m.CounterFunc(p+"busy_cycles", func() int64 { return b.busyCycles })
	m.CounterFunc(p+"stall_cycles", func() int64 { return b.stallCycles })
	m.CounterFunc(p+"data_beats", func() int64 { return b.dataBeats })
	m.GaugeFunc(p+"outstanding", clock, func() int64 {
		var n int64
		if b.cur != nil {
			n++
		}
		if b.next != nil {
			n++
		}
		return n
	})
}

// Stats reports bus activity.
func (b *Bus) Stats() Stats {
	return Stats{
		Cycles:      b.cycles,
		BusyCycles:  b.busyCycles,
		DataBeats:   b.dataBeats,
		Granted:     b.granted,
		StallCycles: b.stallCycles,
	}
}

// Stats summarizes AHB activity.
type Stats struct {
	Cycles      int64
	BusyCycles  int64
	DataBeats   int64
	Granted     int64
	StallCycles int64
}

// Utilization is the busy fraction of the bus (held cycles, including the
// idle wait-state cycles the paper highlights as AHB's weakness).
func (s Stats) Utilization() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.BusyCycles) / float64(s.Cycles)
}

// DataEfficiency is the fraction of held cycles that moved data.
func (s Stats) DataEfficiency() float64 {
	if s.BusyCycles == 0 {
		return 0
	}
	return float64(s.DataBeats) / float64(s.BusyCycles)
}
