// Package bridge models the hybrid bridges of the paper's Fig.2: a target
// side attached to the source fabric, an initiator side attached to the
// destination fabric, and asynchronous FIFOs between them supporting
// different clock domains. One configurable component covers the whole
// family the paper instantiates — AHB-AHB, AXI-AXI, AHB-STBus, AXI-STBus,
// AHB-AXI, STBus-AHB, STBus-AXI lightweight bridges and the proprietary
// STBus GenConv converter.
//
// Common features (paper §3.2): write transactions are handled in a
// store-and-forward fashion; the lightweight configurations have a blocking
// target side in presence of read transactions; latency is tunable. The
// GenConv configuration additionally supports split (non-blocking)
// transactions with multiple outstanding requests, clock-domain crossing,
// data-width conversion and message preservation — combining conversions in
// one instance to minimize latency, as the real block does.
package bridge

import (
	"fmt"

	"mpsocsim/internal/attr"
	"mpsocsim/internal/bus"
	"mpsocsim/internal/metrics"
	"mpsocsim/internal/sim"
	"mpsocsim/internal/stats"
)

// Config parameterizes a bridge instance.
type Config struct {
	// Split enables a non-blocking target side: new transactions are
	// accepted while earlier reads are still in flight (required for the
	// LMI input FIFO to ever hold more than one transaction, paper §4.2).
	// When false the bridge blocks on every read: no new transaction is
	// accepted until the read's response has been fully delivered.
	Split bool
	// MaxOutstanding bounds in-flight transactions in split mode.
	MaxOutstanding int
	// Latency is the extra pipeline latency, in destination-clock cycles,
	// added to each request crossing the bridge.
	Latency int
	// SrcBytesPerBeat / DstBytesPerBeat select data-width conversion
	// (e.g. 4 -> 8 for the 32-to-64-bit upsize in front of the ST220).
	SrcBytesPerBeat int
	DstBytesPerBeat int
	// ReqDepth / RespDepth size the internal asynchronous FIFOs.
	ReqDepth  int
	RespDepth int
	// SyncCycles is the clock-domain-crossing synchronizer latency in
	// reader cycles (0 when both sides share a clock).
	SyncCycles int
	// PortReqDepth / PortRespDepth size the bus-facing port FIFOs.
	PortReqDepth  int
	PortRespDepth int
	// PreserveMessages keeps MsgSeq/MsgEnd across the bridge so message-
	// based arbitration downstream still sees controller-friendly
	// sequences (GenConv); lightweight bridges terminate each message.
	PreserveMessages bool
	// InOrderUpstream forces ALL upstream responses into request-
	// acceptance order (not merely per-source order), buffering
	// out-of-order downstream responses in a reorder stash. Required
	// when the source fabric is non-split (AHB) or single-ID in-order:
	// such a bus consumes responses strictly in issue order, so a split
	// bridge feeding it out of order deadlocks its response path.
	InOrderUpstream bool
}

// Lightweight returns the paper's basic bridge configuration: blocking
// target side on reads, store-and-forward writes, no message preservation.
func Lightweight(latency int) Config {
	return Config{
		Split:           false,
		MaxOutstanding:  1,
		Latency:         latency,
		SrcBytesPerBeat: 8,
		DstBytesPerBeat: 8,
		ReqDepth:        2,
		RespDepth:       4,
		SyncCycles:      2,
		PortReqDepth:    2,
		PortRespDepth:   4,
	}
}

// GenConv returns the proprietary STBus converter configuration: split
// transactions, multiple outstanding, message preservation.
func GenConv(latency int) Config {
	return Config{
		Split:            true,
		MaxOutstanding:   8,
		Latency:          latency,
		SrcBytesPerBeat:  8,
		DstBytesPerBeat:  8,
		ReqDepth:         8,
		RespDepth:        16,
		SyncCycles:       2,
		PortReqDepth:     4,
		PortRespDepth:    8,
		PreserveMessages: true,
	}
}

func (c *Config) normalize() {
	if c.MaxOutstanding <= 0 {
		c.MaxOutstanding = 1
	}
	if c.SrcBytesPerBeat <= 0 {
		c.SrcBytesPerBeat = 8
	}
	if c.DstBytesPerBeat <= 0 {
		c.DstBytesPerBeat = 8
	}
	if c.ReqDepth <= 0 {
		c.ReqDepth = 2
	}
	if c.RespDepth <= 0 {
		c.RespDepth = 4
	}
	if c.PortReqDepth <= 0 {
		c.PortReqDepth = 2
	}
	if c.PortRespDepth <= 0 {
		c.PortRespDepth = 4
	}
	if c.Latency < 0 {
		c.Latency = 0
	}
	if c.SyncCycles < 0 {
		c.SyncCycles = 0
	}
}

// reqCtx tracks one transaction crossing the bridge.
type reqCtx struct {
	up      *bus.Request // upstream (source-fabric) request
	down    *bus.Request // downstream clone with converted width
	isRead  bool
	upBeats int // beats expected by the upstream initiator
	emitted int // upstream beats emitted so far
	collect int // downsize: downstream beats collected toward one upstream beat
	retired bool
	// upstream response-ordering state: src is the upstream source label;
	// ackPending marks a store-and-forward write whose upstream ack must
	// wait for older same-source transactions (in-order protocols such as
	// STBus Type 2 require per-source response order, so the bridge may
	// not ack a write ahead of an earlier read's data); ordered marks the
	// transaction as still queued in perSrc.
	src         int
	ackPending  bool
	finished    bool
	inQ         bool  // still queued in perSrc or globalOrder
	acceptCycle int64 // source-clock cycle of acceptance (residency stats)
	// stash buffers already-converted upstream beats of a transaction
	// whose turn has not come yet (InOrderUpstream reorder buffer);
	// complete marks that every upstream beat has been produced.
	stash    []bus.Beat
	complete bool
}

type delayedReq struct {
	ctx   *reqCtx
	ready int64 // source-clock cycle at which store-and-forward completes
}

type heldReq struct {
	ctx   *reqCtx
	ready int64 // destination-clock cycle after pipeline latency
}

// Bridge connects a source fabric (where its target side is attached) to a
// destination fabric (where its initiator side is attached). Register
// TargetSide on the source clock and InitiatorSide on the destination clock.
type Bridge struct {
	name string
	cfg  Config

	tport *bus.TargetPort
	iport *bus.InitiatorPort

	srcClk, dstClk *sim.Clock

	reqX  *sim.AsyncFifo[*reqCtx]
	respX *sim.AsyncFifo[bus.Beat]

	// target-side state
	readsInFlight int
	outstanding   int
	delayLine     []delayedReq
	emitQ         []bus.Beat
	byDown        map[*bus.Request]*reqCtx
	// perSrc holds unfinished transactions per upstream source label, in
	// acceptance order, to keep upstream responses per-source in-order.
	perSrc map[int][]*reqCtx
	// globalOrder holds every unfinished transaction in acceptance order
	// when InOrderUpstream is set.
	globalOrder []*reqCtx

	// initiator-side state
	held []heldReq

	// pool recycles downstream request clones (nil outside platform
	// builds); ctxFree recycles reqCtx records the same way.
	pool    *bus.RequestPool
	ctxFree []*reqCtx

	// attrOn enables latency-attribution phase stamping (EnableAttribution).
	attrOn bool

	// statistics
	accepted      int64
	blockedCycles int64
	reads, writes int64
	// residency measures source-clock cycles from acceptance to the last
	// upstream response of each transaction — the per-bridge share of
	// end-to-end latency.
	residency stats.Histogram

	// TargetSide must be registered on the source-fabric clock,
	// InitiatorSide on the destination-fabric clock.
	TargetSide    sim.Clocked
	InitiatorSide sim.Clocked
}

// New builds a bridge between the two clock domains.
func New(name string, cfg Config, srcClk, dstClk *sim.Clock) *Bridge {
	cfg.normalize()
	b := &Bridge{
		name:   name,
		cfg:    cfg,
		srcClk: srcClk,
		dstClk: dstClk,
		tport:  bus.NewTargetPort(name+".t", cfg.PortReqDepth, cfg.PortRespDepth),
		iport:  bus.NewInitiatorPort(name+".i", cfg.PortReqDepth, cfg.PortRespDepth),
		reqX:   sim.NewAsyncFifo[*reqCtx](name+".reqX", cfg.ReqDepth, cfg.SyncCycles, dstClk),
		respX:  sim.NewAsyncFifo[bus.Beat](name+".respX", cfg.RespDepth, cfg.SyncCycles, srcClk),
		byDown: map[*bus.Request]*reqCtx{},
		perSrc: map[int][]*reqCtx{},
	}
	b.TargetSide = &sim.ClockedFunc{OnEval: b.evalTarget, OnUpdate: b.updateTarget}
	b.InitiatorSide = &sim.ClockedFunc{OnEval: b.evalInitiator, OnUpdate: b.updateInitiator}
	return b
}

// Name returns the bridge instance name.
func (b *Bridge) Name() string { return b.name }

// UseRequestPool makes the bridge mint downstream clones from (and retire
// them into) the given pool. Call before simulation starts.
func (b *Bridge) UseRequestPool(p *bus.RequestPool) { b.pool = p }

// SourceClock returns the clock domain of the bridge's target side.
func (b *Bridge) SourceClock() *sim.Clock { return b.srcClk }

// DestinationClock returns the clock domain of the bridge's initiator side.
func (b *Bridge) DestinationClock() *sim.Clock { return b.dstClk }

// RehomeDestination re-points the bridge's destination domain at a different
// clock. Sharded assembly calls it when the bridge's home shard is not the
// shard owning the real destination clock: the initiator side is then
// registered on a shard-local replica (same name and period, so cycle counts
// are identical), keeping every clock the bridge reads — including the
// request crossing FIFO's reader clock — inside its own shard. Call before
// simulation starts, on an idle bridge.
func (b *Bridge) RehomeDestination(clk *sim.Clock) {
	b.dstClk = clk
	b.reqX.SetReaderClock(clk)
}

// EnableAttribution makes the bridge stamp latency-attribution phases on
// crossing transactions: PhaseBridgeSF at acceptance (store-and-forward +
// conversion), PhaseBridgeCDC entering the clock-domain-crossing FIFO,
// PhaseBridgeIssue in the downstream latency line and PhaseInitQueue at
// downstream re-issue (the next fabric layer takes over from there). The
// record is shared between the upstream request and its downstream clone for
// reads and posted writes; a non-posted write's clone drops it — the bridge
// acks the write upstream at acceptance, so the upstream-visible latency is
// fully attributed and the clone's private downstream journey never touches
// a record the initiator may already have finished.
func (b *Bridge) EnableAttribution() { b.attrOn = true }

// TargetPort is the port to attach as a target on the source fabric.
func (b *Bridge) TargetPort() *bus.TargetPort { return b.tport }

// InitiatorPort is the port to attach as an initiator on the destination
// fabric.
func (b *Bridge) InitiatorPort() *bus.InitiatorPort { return b.iport }

// ---- target side (source clock domain) ----

func (b *Bridge) evalTarget() {
	b.drainEmitQ()
	b.convertResponses()
	b.acceptRequests()
	b.forwardMatured()
}

func (b *Bridge) updateTarget() {
	b.tport.Update()
	b.reqX.WriterUpdate()
	b.respX.ReaderUpdate()
}

// drainEmitQ pushes at most one upstream response beat per cycle.
func (b *Bridge) drainEmitQ() {
	if len(b.emitQ) == 0 || !b.tport.Resp.CanPush() {
		return
	}
	beat := b.emitQ[0]
	n := copy(b.emitQ, b.emitQ[1:])
	b.emitQ[n] = bus.Beat{}
	b.emitQ = b.emitQ[:n]
	b.tport.Resp.Push(beat)
}

// convertResponses turns downstream beats into upstream beats, applying
// width conversion, at one downstream beat per cycle.
func (b *Bridge) convertResponses() {
	// keep emitQ bounded so conversion stalls under upstream backpressure
	if len(b.emitQ) >= 4+b.cfg.DstBytesPerBeat/b.cfg.SrcBytesPerBeat {
		return
	}
	if !b.respX.CanPop() {
		return
	}
	beat := b.respX.Pop()
	ctx := b.byDown[beat.Req]
	if ctx == nil || !ctx.isRead {
		return // only read beats cross respX; anything else is stale
	}
	src, dst := b.cfg.SrcBytesPerBeat, b.cfg.DstBytesPerBeat
	switch {
	case dst >= src:
		// upsize bridge: one downstream beat carries dst/src upstream
		// beats.
		r := dst / src
		for k := 0; k < r && ctx.emitted < ctx.upBeats; k++ {
			b.emitUp(ctx)
		}
	default:
		// downsize bridge: collect src/dst downstream beats per
		// upstream beat.
		q := src / dst
		ctx.collect++
		if ctx.collect >= q || beat.Last {
			ctx.collect = 0
			if ctx.emitted < ctx.upBeats {
				b.emitUp(ctx)
			}
		}
	}
	if beat.Last {
		// flush any rounding remainder
		for ctx.emitted < ctx.upBeats {
			b.emitUp(ctx)
		}
		ctx.complete = true
		if b.cfg.InOrderUpstream {
			if len(b.globalOrder) > 0 && b.globalOrder[0] == ctx {
				b.drainGlobalOrder()
			}
		} else {
			b.finishRead(ctx)
		}
	}
}

// emitUp produces the next upstream beat of ctx, either directly into the
// emit queue or — when another transaction must respond first under
// InOrderUpstream — into the transaction's reorder stash.
func (b *Bridge) emitUp(ctx *reqCtx) {
	idx := ctx.emitted
	ctx.emitted++
	beat := bus.Beat{
		Req:  ctx.up,
		Idx:  idx,
		Last: ctx.emitted == ctx.upBeats,
	}
	if b.cfg.InOrderUpstream && (len(b.globalOrder) == 0 || b.globalOrder[0] != ctx) {
		ctx.stash = append(ctx.stash, beat)
		return
	}
	b.emitQ = append(b.emitQ, beat)
}

// drainGlobalOrder releases reorder-stashed responses in acceptance order.
func (b *Bridge) drainGlobalOrder() {
	done := 0
	for done < len(b.globalOrder) {
		head := b.globalOrder[done]
		if len(head.stash) > 0 {
			b.emitQ = append(b.emitQ, head.stash...)
			for i := range head.stash {
				head.stash[i] = bus.Beat{}
			}
			head.stash = head.stash[:0]
		}
		if head.ackPending {
			head.ackPending = false
			head.finished = true
			head.complete = true
			b.residency.Add(b.srcClk.Cycles() - head.acceptCycle)
			if rec := head.up.Attr; b.attrOn && rec != nil {
				rec.Enter(attr.PhaseRespReturn, b.srcClk.NowPS())
			}
			b.emitQ = append(b.emitQ, bus.Beat{Req: head.up, Idx: 0, Last: true})
			// The ack returns `up` to the initiator while this context may
			// outlive it in byDown until the downstream ack arrives (see
			// retireWrite).
			head.up = nil
		}
		if !head.complete {
			break
		}
		if head.isRead {
			b.finishRead(head)
		}
		head.inQ = false
		b.maybeRelease(head)
		done++
	}
	if done > 0 {
		// Shift the survivors down in place so the order queue's backing
		// array is reused, and clear the vacated tail slots.
		n := copy(b.globalOrder, b.globalOrder[done:])
		for i := n; i < len(b.globalOrder); i++ {
			b.globalOrder[i] = nil
		}
		b.globalOrder = b.globalOrder[:n]
	}
}

func (b *Bridge) finishRead(ctx *reqCtx) {
	if ctx.retired {
		return
	}
	ctx.retired = true
	ctx.finished = true
	b.residency.Add(b.srcClk.Cycles() - ctx.acceptCycle)
	if b.readsInFlight > 0 {
		b.readsInFlight--
	}
	if b.outstanding > 0 {
		b.outstanding--
	}
	delete(b.byDown, ctx.down)
	b.pool.Put(ctx.down)
	// Every upstream beat is already emitted (the initiator owns `up` again
	// and may recycle it) and the downstream clone just went back to the
	// pool; the context can linger in an ordering queue, so both pointers
	// must go with the ownership (see retireWrite).
	ctx.up = nil
	ctx.down = nil
	if !b.cfg.InOrderUpstream {
		b.drainSrcOrder(ctx.src)
	}
}

// drainSrcOrder pops finished transactions from the source's order queue
// and releases write acks that were deferred behind them.
func (b *Bridge) drainSrcOrder(src int) {
	q := b.perSrc[src]
	done := 0
	for done < len(q) {
		head := q[done]
		if head.ackPending {
			head.ackPending = false
			head.finished = true
			b.residency.Add(b.srcClk.Cycles() - head.acceptCycle)
			if rec := head.up.Attr; b.attrOn && rec != nil {
				rec.Enter(attr.PhaseRespReturn, b.srcClk.NowPS())
			}
			b.emitQ = append(b.emitQ, bus.Beat{Req: head.up, Idx: 0, Last: true})
			head.up = nil // see retireWrite: the initiator owns it again
		}
		if !head.finished {
			break
		}
		head.inQ = false
		b.maybeRelease(head)
		done++
	}
	if done > 0 {
		// Shift in place and keep the (possibly empty) entry so the
		// per-source queue's backing array survives across transactions.
		n := copy(q, q[done:])
		for i := n; i < len(q); i++ {
			q[i] = nil
		}
		b.perSrc[src] = q[:n]
	}
}

// acceptRequests pops at most one upstream request per cycle, respecting the
// blocking/split policy.
func (b *Bridge) acceptRequests() {
	if !b.tport.Req.CanPop() {
		return
	}
	if !b.cfg.Split && b.readsInFlight > 0 {
		b.blockedCycles++
		return // blocking target side: a read is in flight
	}
	if b.outstanding >= b.cfg.MaxOutstanding {
		b.blockedCycles++
		return
	}
	if len(b.delayLine) >= b.cfg.ReqDepth {
		return // store-and-forward buffer full
	}
	up := b.tport.Req.Pop()
	if rec := up.Attr; b.attrOn && rec != nil {
		rec.Enter(attr.PhaseBridgeSF, b.srcClk.NowPS())
	}
	ctx := b.makeCtx(up)
	ctx.src = up.Src
	ctx.acceptCycle = b.srcClk.Cycles()
	b.accepted++
	b.outstanding++
	ready := b.srcClk.Cycles()
	if up.Op == bus.OpWrite {
		b.writes++
		// store-and-forward: the whole burst is buffered before any
		// forwarding starts.
		ready += int64(up.Beats)
		if !up.Posted {
			// The bridge takes ownership of the write and acks the
			// source fabric once the data is absorbed — but never
			// ahead of an older transaction's response whose order
			// the upstream bus relies on.
			switch {
			case b.cfg.InOrderUpstream && len(b.globalOrder) > 0:
				ctx.ackPending = true
				ctx.inQ = true
				b.globalOrder = append(b.globalOrder, ctx)
			case !b.cfg.InOrderUpstream && len(b.perSrc[ctx.src]) > 0:
				ctx.ackPending = true
				ctx.inQ = true
				b.perSrc[ctx.src] = append(b.perSrc[ctx.src], ctx)
			default:
				ctx.finished = true
				b.residency.Add(0)
				if rec := up.Attr; b.attrOn && rec != nil {
					rec.Enter(attr.PhaseRespReturn, b.srcClk.NowPS())
				}
				b.emitQ = append(b.emitQ, bus.Beat{Req: up, Idx: 0, Last: true})
				// The ack hands the upstream request back to the
				// initiator, which may recycle it while this context
				// still sits in the delay line — drop the pointer with
				// the obligation (see retireWrite).
				ctx.up = nil
			}
		}
	} else {
		b.reads++
		b.readsInFlight++
		ctx.inQ = true
		if b.cfg.InOrderUpstream {
			b.globalOrder = append(b.globalOrder, ctx)
		} else {
			b.perSrc[ctx.src] = append(b.perSrc[ctx.src], ctx)
		}
	}
	b.delayLine = append(b.delayLine, delayedReq{ctx: ctx, ready: ready})
}

// forwardMatured moves at most one matured store-and-forward entry per cycle
// into the crossing FIFO.
func (b *Bridge) forwardMatured() {
	if len(b.delayLine) == 0 {
		return
	}
	head := b.delayLine[0]
	if head.ready > b.srcClk.Cycles() || !b.reqX.CanPush() {
		return
	}
	n := copy(b.delayLine, b.delayLine[1:])
	b.delayLine[n] = delayedReq{}
	b.delayLine = b.delayLine[:n]
	if rec := head.ctx.down.Attr; b.attrOn && rec != nil {
		rec.Enter(attr.PhaseBridgeCDC, b.srcClk.NowPS())
	}
	b.reqX.Push(head.ctx)
}

// makeCtx builds the downstream clone with width conversion applied.
func (b *Bridge) makeCtx(up *bus.Request) *reqCtx {
	src, dst := b.cfg.SrcBytesPerBeat, b.cfg.DstBytesPerBeat
	bytes := up.Beats * src
	downBeats := (bytes + dst - 1) / dst
	if downBeats < 1 {
		downBeats = 1
	}
	down := b.pool.Get()
	*down = bus.Request{
		ID:           up.ID,
		Origin:       up.Origin,
		Op:           up.Op,
		Addr:         up.Addr,
		Beats:        downBeats,
		BytesPerBeat: dst,
		Prio:         up.Prio,
		Posted:       up.Posted,
		IssueCycle:   up.IssueCycle,
		IssuePS:      up.IssuePS,
		MsgEnd:       true,
	}
	if b.cfg.PreserveMessages {
		down.MsgSeq = up.MsgSeq
		down.MsgEnd = up.MsgEnd
	}
	if b.attrOn && (up.Op == bus.OpRead || up.Posted) {
		// The attribution record follows the live copy: reads and posted
		// writes continue downstream (and finish at the initiator or the
		// consuming memory); a non-posted write is acked upstream by the
		// bridge, so its clone must not share a record the initiator may
		// finish first.
		down.Attr = up.Attr
	}
	ctx := b.getCtx()
	ctx.up = up
	ctx.down = down
	ctx.isRead = up.Op == bus.OpRead
	ctx.upBeats = up.Beats
	if !ctx.isRead {
		ctx.upBeats = 1 // a write yields at most one upstream ack beat
	}
	b.byDown[down] = ctx
	return ctx
}

// getCtx reuses a retired transaction record or allocates a fresh one.
func (b *Bridge) getCtx() *reqCtx {
	if n := len(b.ctxFree) - 1; n >= 0 {
		ctx := b.ctxFree[n]
		b.ctxFree[n] = nil
		b.ctxFree = b.ctxFree[:n]
		return ctx
	}
	return &reqCtx{}
}

// maybeRelease recycles a transaction record once nothing references it any
// more: it has retired downstream, met its upstream obligations, and left
// the ordering queues.
func (b *Bridge) maybeRelease(ctx *reqCtx) {
	if ctx == nil || ctx.inQ || !ctx.retired || !ctx.finished {
		return
	}
	stash := ctx.stash
	for i := range stash {
		stash[i] = bus.Beat{}
	}
	*ctx = reqCtx{stash: stash[:0]}
	b.ctxFree = append(b.ctxFree, ctx)
}

// ---- initiator side (destination clock domain) ----

func (b *Bridge) evalInitiator() {
	b.issueDownstream()
	b.collectDownstream()
}

func (b *Bridge) updateInitiator() {
	b.iport.Update()
	b.reqX.ReaderUpdate()
	b.respX.WriterUpdate()
}

// issueDownstream applies the pipeline latency and pushes requests into the
// destination fabric.
func (b *Bridge) issueDownstream() {
	// move one matured crossing entry into the latency line
	if b.reqX.CanPop() && len(b.held) < b.cfg.ReqDepth {
		ctx := b.reqX.Pop()
		if rec := ctx.down.Attr; b.attrOn && rec != nil {
			rec.Enter(attr.PhaseBridgeIssue, b.dstClk.NowPS())
		}
		b.held = append(b.held, heldReq{ctx: ctx, ready: b.dstClk.Cycles() + int64(b.cfg.Latency)})
	}
	if len(b.held) == 0 {
		return
	}
	head := b.held[0]
	if head.ready > b.dstClk.Cycles() || !b.iport.Req.CanPush() {
		return
	}
	n := copy(b.held, b.held[1:])
	b.held[n] = heldReq{}
	b.held = b.held[:n]
	if rec := head.ctx.down.Attr; b.attrOn && rec != nil {
		rec.Enter(attr.PhaseInitQueue, b.dstClk.NowPS())
	}
	b.iport.Req.Push(head.ctx.down)
	if head.ctx.down.Op == bus.OpWrite && head.ctx.down.Posted {
		// posted write: nothing will come back; retire now
		b.retireWrite(head.ctx, true)
	}
}

// collectDownstream pops response beats from the destination fabric: read
// beats cross back through respX; write acks are swallowed (the upstream ack
// was already emitted at store-and-forward acceptance).
func (b *Bridge) collectDownstream() {
	if !b.iport.Resp.CanPop() {
		return
	}
	beat := b.iport.Resp.Peek()
	if beat.Req.Op == bus.OpWrite {
		b.iport.Resp.Pop()
		if ctx := b.byDown[beat.Req]; ctx != nil {
			b.retireWrite(ctx, false)
		}
		return
	}
	if !b.respX.CanPush() {
		return
	}
	b.iport.Resp.Pop()
	b.respX.Push(beat)
}

// retireWrite takes a write out of the bridge's accounting. postedForward
// marks the posted-at-issue path: the downstream copy stays live in the
// destination fabric (its eventual consumer reclaims it), while the upstream
// original has no response obligation left and is reclaimed here. For the
// acknowledged (non-posted) path the downstream copy just delivered its
// final beat and is reclaimed, while the upstream original still backs the
// initiator-facing ack and belongs to the initiator.
func (b *Bridge) retireWrite(ctx *reqCtx, postedForward bool) {
	if ctx.retired {
		return
	}
	ctx.retired = true
	if b.outstanding > 0 {
		b.outstanding--
	}
	delete(b.byDown, ctx.down)
	// Clear the pointers alongside the ownership handoff: a context can
	// outlive this retirement in an ordering queue, and a dangling pointer
	// to a recycled (or downstream-owned) request, while never dereferenced
	// again, would leak a dead object into a checkpoint (DESIGN.md §16).
	if postedForward {
		ctx.finished = true // a posted write has no upstream obligations
		b.pool.Put(ctx.up)
		ctx.up = nil
		ctx.down = nil // live downstream; its consumer owns it now
	} else {
		b.pool.Put(ctx.down)
		ctx.down = nil
	}
	b.maybeRelease(ctx)
}

// Outstanding returns the number of transactions currently inside the
// bridge (accepted but not retired).
func (b *Bridge) Outstanding() int { return b.outstanding }

// RegisterMetrics registers the bridge's telemetry under
// "bridge.<name>.*": acceptance/blocking counters, the residency latency
// histogram, and occupancy gauges for the store-and-forward delay line
// (posted-write depth), the clock-crossing request FIFO and the upstream
// emit queue. Gauges live on the source clock domain — the side the paper's
// cluster-pressure analysis observes. Func-backed: the bridge hot paths are
// untouched.
func (b *Bridge) RegisterMetrics(m *metrics.Registry) {
	p := "bridge." + b.name + "."
	clock := b.srcClk.Name()
	m.CounterFunc(p+"accepted", func() int64 { return b.accepted })
	m.CounterFunc(p+"reads", func() int64 { return b.reads })
	m.CounterFunc(p+"writes", func() int64 { return b.writes })
	m.CounterFunc(p+"blocked_cycles", func() int64 { return b.blockedCycles })
	m.Histogram(p+"residency", &b.residency)
	m.GaugeFunc(p+"outstanding", clock, func() int64 { return int64(b.outstanding) })
	m.GaugeFunc(p+"delay_line_depth", clock, func() int64 { return int64(len(b.delayLine)) })
	m.GaugeFunc(p+"reqx_depth", clock, func() int64 { return int64(b.reqX.Len()) })
	m.GaugeFunc(p+"emitq_depth", clock, func() int64 { return int64(len(b.emitQ)) })
}

// Stats reports bridge activity.
func (b *Bridge) Stats() Stats {
	return Stats{
		Accepted:      b.accepted,
		Reads:         b.reads,
		Writes:        b.writes,
		BlockedCycles: b.blockedCycles,
		MeanResidency: b.residency.Mean(),
		P90Residency:  b.residency.Quantile(0.9),
		MaxResidency:  b.residency.Max(),
	}
}

// Stats summarizes bridge activity.
type Stats struct {
	Accepted      int64
	Reads         int64
	Writes        int64
	BlockedCycles int64
	// Residency is the source-clock time from acceptance to the last
	// upstream response, i.e. this bridge's contribution (queueing +
	// downstream round trip) to end-to-end latency.
	MeanResidency float64
	P90Residency  int64
	MaxResidency  int64
}

func (s Stats) String() string {
	return fmt.Sprintf("accepted=%d (r=%d w=%d) blocked=%d", s.Accepted, s.Reads, s.Writes, s.BlockedCycles)
}
