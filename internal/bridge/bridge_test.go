package bridge

import (
	"testing"
	"testing/quick"

	"mpsocsim/internal/bus"
	"mpsocsim/internal/mem"
	"mpsocsim/internal/sim"
	"mpsocsim/internal/stbus"
	"mpsocsim/internal/testutil"
)

// chain is a two-node testbench: initiator -> nodeA -(bridge)-> nodeB -> mem.
type chain struct {
	k      *sim.Kernel
	srcClk *sim.Clock
	dstClk *sim.Clock
	br     *Bridge
	ini    *testutil.Scripted
	m      *mem.Memory
}

func newChain(t *testing.T, bcfg Config, srcMHz, dstMHz float64, memCfg mem.Config, script []*bus.Request) *chain {
	t.Helper()
	k := sim.NewKernel()
	srcClk := k.NewClock("src", srcMHz)
	dstClk := k.NewClock("dst", dstMHz)

	nodeA := stbus.NewNode("nA", stbus.DefaultConfig(), bus.Single(0))
	nodeB := stbus.NewNode("nB", stbus.DefaultConfig(), bus.Single(0))

	br := New("br", bcfg, srcClk, dstClk)
	ini := testutil.NewScripted("ini", srcClk, script)
	m := mem.New("mem", memCfg)

	nodeA.AttachInitiator(ini.Port)
	nodeA.AttachTarget(br.TargetPort())
	nodeB.AttachInitiator(br.InitiatorPort())
	nodeB.AttachTarget(m.Port())

	srcClk.Register(ini)
	srcClk.Register(nodeA)
	srcClk.Register(br.TargetSide)
	dstClk.Register(br.InitiatorSide)
	dstClk.Register(nodeB)
	dstClk.Register(m)

	return &chain{k: k, srcClk: srcClk, dstClk: dstClk, br: br, ini: ini, m: m}
}

func (c *chain) run(t *testing.T) {
	t.Helper()
	if !c.k.RunWhile(func() bool { return !c.ini.Done() }, 1e10) {
		t.Fatalf("timeout: %d of %d completions", len(c.ini.Completed), c.ini.ExpectedCompletions())
	}
}

func rd(id, addr uint64, beats int) *bus.Request  { return testutil.Read(id, addr, beats, 8) }
func wrn(id, addr uint64, beats int) *bus.Request { return testutil.Write(id, addr, beats, 8, false) }

func TestReadAcrossBridge(t *testing.T) {
	c := newChain(t, Lightweight(2), 250, 250, mem.DefaultConfig(), []*bus.Request{rd(1, 0x100, 4)})
	c.run(t)
	if len(c.ini.Beats) != 4 {
		t.Fatalf("beats = %d, want 4", len(c.ini.Beats))
	}
	for i, b := range c.ini.Beats {
		if b.Idx != i || b.Req.ID != 1 {
			t.Fatalf("beat %d malformed: idx=%d id=%d", i, b.Idx, b.Req.ID)
		}
	}
}

func TestBlockingBridgeSerializesReads(t *testing.T) {
	c := newChain(t, Lightweight(1), 250, 250, mem.Config{WaitStates: 4, ReqDepth: 4, RespDepth: 2}, []*bus.Request{
		rd(1, 0x100, 4), rd(2, 0x200, 4), rd(3, 0x300, 4),
	})
	maxOut := 0
	c.srcClk.Register(&sim.ClockedFunc{OnEval: func() {
		if o := c.br.Outstanding(); o > maxOut {
			maxOut = o
		}
	}})
	c.run(t)
	if maxOut != 1 {
		t.Fatalf("blocking bridge allowed %d outstanding reads, want 1", maxOut)
	}
}

func TestSplitBridgeOverlapsReads(t *testing.T) {
	cfg := GenConv(1)
	c := newChain(t, cfg, 250, 250, mem.Config{WaitStates: 4, ReqDepth: 8, RespDepth: 2}, []*bus.Request{
		rd(1, 0x100, 2), rd(2, 0x200, 2), rd(3, 0x300, 2), rd(4, 0x400, 2),
	})
	maxOut := 0
	c.srcClk.Register(&sim.ClockedFunc{OnEval: func() {
		if o := c.br.Outstanding(); o > maxOut {
			maxOut = o
		}
	}})
	c.run(t)
	if maxOut < 2 {
		t.Fatalf("split bridge should pipeline reads, max outstanding = %d", maxOut)
	}
}

func TestSplitFasterThanBlocking(t *testing.T) {
	// Short reads: memory occupancy per transaction is small relative to
	// the bridge round-trip, which is the regime where split transactions
	// pay off (paper §4.2).
	script := func() []*bus.Request {
		var s []*bus.Request
		for i := uint64(1); i <= 8; i++ {
			s = append(s, rd(i, 0x100*i, 1))
		}
		return s
	}
	slowMem := mem.Config{WaitStates: 3, ReqDepth: 8, RespDepth: 2}
	cb := newChain(t, Lightweight(1), 250, 250, slowMem, script())
	cb.run(t)
	tBlocking := cb.srcClk.Cycles()
	cs := newChain(t, GenConv(1), 250, 250, slowMem, script())
	cs.run(t)
	tSplit := cs.srcClk.Cycles()
	if float64(tSplit) > 0.8*float64(tBlocking) {
		t.Fatalf("split bridge (%d cycles) should clearly beat blocking (%d cycles) on a slow memory",
			tSplit, tBlocking)
	}
}

func TestStoreAndForwardWriteDelay(t *testing.T) {
	// A long write must not appear downstream before Beats source cycles
	// have elapsed (accumulation), while a read crosses quickly.
	k := sim.NewKernel()
	clk := k.NewClock("clk", 250)
	br := New("br", Lightweight(0), clk, clk)
	ini := testutil.NewScripted("ini", clk, []*bus.Request{wrn(1, 0x100, 16)})
	probe := testutil.NewProbe("probe", clk, 4)
	nodeA := stbus.NewNode("nA", stbus.DefaultConfig(), bus.Single(0))
	nodeB := stbus.NewNode("nB", stbus.DefaultConfig(), bus.Single(0))
	nodeA.AttachInitiator(ini.Port)
	nodeA.AttachTarget(br.TargetPort())
	nodeB.AttachInitiator(br.InitiatorPort())
	nodeB.AttachTarget(probe.Port)
	clk.Register(ini)
	clk.Register(nodeA)
	clk.Register(br.TargetSide)
	clk.Register(br.InitiatorSide)
	clk.Register(nodeB)
	clk.Register(probe)
	k.RunWhile(func() bool { return len(probe.Arrivals) < 1 }, 1e9)
	if len(probe.Arrivals) != 1 {
		t.Fatal("write never arrived downstream")
	}
	// the write spends 16 cycles on nodeA's request channel, then >= 16
	// more accumulating in the bridge
	if probe.ArriveAt[0] < 32 {
		t.Fatalf("write arrived at cycle %d, want >= 32 (store-and-forward)", probe.ArriveAt[0])
	}
	// upstream ack happens at acceptance, long before downstream arrival
	if c, ok := ini.Completed[1]; !ok || c > probe.ArriveAt[0] {
		t.Fatalf("store-and-forward ack should precede downstream arrival (ack %d, arrival %d)",
			c, probe.ArriveAt[0])
	}
}

func TestLatencyParameterDelaysRequests(t *testing.T) {
	measure := func(lat int) int64 {
		cfg := Lightweight(lat)
		cfg.SyncCycles = 0
		c := newChain(t, cfg, 250, 250, mem.Config{WaitStates: 0, ReqDepth: 2, RespDepth: 2},
			[]*bus.Request{rd(1, 0x100, 1)})
		c.run(t)
		return c.ini.Completed[1]
	}
	t0, t8 := measure(0), measure(8)
	if t8-t0 < 8 {
		t.Fatalf("latency 8 added only %d cycles", t8-t0)
	}
}

func TestUpsizeWidthConversion(t *testing.T) {
	// 32-bit source, 64-bit destination (the ST220 GenConv case): an
	// 8-beat upstream read becomes a 4-beat downstream read, and the
	// initiator still receives 8 beats.
	cfg := GenConv(1)
	cfg.SrcBytesPerBeat = 4
	cfg.DstBytesPerBeat = 8
	k := sim.NewKernel()
	clk := k.NewClock("clk", 250)
	br := New("br", cfg, clk, clk)
	ini := testutil.NewScripted("ini", clk, []*bus.Request{testutil.Read(1, 0x100, 8, 4)})
	probe := testutil.NewProbe("probe", clk, 4)
	nodeA := stbus.NewNode("nA", stbus.Config{Type: stbus.Type3, BytesPerBeat: 4}, bus.Single(0))
	nodeB := stbus.NewNode("nB", stbus.DefaultConfig(), bus.Single(0))
	nodeA.AttachInitiator(ini.Port)
	nodeA.AttachTarget(br.TargetPort())
	nodeB.AttachInitiator(br.InitiatorPort())
	nodeB.AttachTarget(probe.Port)
	clk.Register(ini)
	clk.Register(nodeA)
	clk.Register(br.TargetSide)
	clk.Register(br.InitiatorSide)
	clk.Register(nodeB)
	clk.Register(probe)
	k.RunWhile(func() bool { return !ini.Done() }, 1e9)
	if !ini.Done() {
		t.Fatal("timeout")
	}
	if len(probe.Arrivals) != 1 || probe.Arrivals[0].Beats != 4 {
		t.Fatalf("downstream beats = %d, want 4", probe.Arrivals[0].Beats)
	}
	if probe.Arrivals[0].BytesPerBeat != 8 {
		t.Fatalf("downstream width = %d, want 8", probe.Arrivals[0].BytesPerBeat)
	}
	if len(ini.Beats) != 8 {
		t.Fatalf("upstream beats = %d, want 8", len(ini.Beats))
	}
	for i, b := range ini.Beats {
		if b.Idx != i {
			t.Fatalf("upstream beat %d has idx %d", i, b.Idx)
		}
	}
	if !ini.Beats[7].Last {
		t.Fatal("final upstream beat must be Last")
	}
}

func TestDownsizeWidthConversion(t *testing.T) {
	// 64-bit source to 32-bit destination: 4 upstream beats -> 8
	// downstream beats -> 4 upstream response beats.
	cfg := GenConv(1)
	cfg.SrcBytesPerBeat = 8
	cfg.DstBytesPerBeat = 4
	k := sim.NewKernel()
	clk := k.NewClock("clk", 250)
	br := New("br", cfg, clk, clk)
	ini := testutil.NewScripted("ini", clk, []*bus.Request{testutil.Read(1, 0x100, 4, 8)})
	probe := testutil.NewProbe("probe", clk, 4)
	nodeA := stbus.NewNode("nA", stbus.DefaultConfig(), bus.Single(0))
	nodeB := stbus.NewNode("nB", stbus.Config{Type: stbus.Type3, BytesPerBeat: 4}, bus.Single(0))
	nodeA.AttachInitiator(ini.Port)
	nodeA.AttachTarget(br.TargetPort())
	nodeB.AttachInitiator(br.InitiatorPort())
	nodeB.AttachTarget(probe.Port)
	clk.Register(ini)
	clk.Register(nodeA)
	clk.Register(br.TargetSide)
	clk.Register(br.InitiatorSide)
	clk.Register(nodeB)
	clk.Register(probe)
	k.RunWhile(func() bool { return !ini.Done() }, 1e9)
	if !ini.Done() {
		t.Fatal("timeout")
	}
	if probe.Arrivals[0].Beats != 8 {
		t.Fatalf("downstream beats = %d, want 8", probe.Arrivals[0].Beats)
	}
	if len(ini.Beats) != 4 {
		t.Fatalf("upstream beats = %d, want 4", len(ini.Beats))
	}
}

func TestClockDomainCrossing(t *testing.T) {
	// 400 MHz source, 100 MHz destination and vice versa: all traffic
	// completes correctly.
	for _, tc := range []struct {
		name       string
		srcF, dstF float64
	}{
		{"fast-to-slow", 400, 100},
		{"slow-to-fast", 100, 400},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var script []*bus.Request
			for i := uint64(1); i <= 6; i++ {
				if i%2 == 0 {
					script = append(script, wrn(i, 0x100*i, 4))
				} else {
					script = append(script, rd(i, 0x100*i, 4))
				}
			}
			c := newChain(t, GenConv(1), tc.srcF, tc.dstF, mem.DefaultConfig(), script)
			c.run(t)
			if len(c.ini.Completed) != 6 {
				t.Fatalf("completed %d of 6", len(c.ini.Completed))
			}
		})
	}
}

func TestMessagePreservation(t *testing.T) {
	mkScript := func() []*bus.Request {
		var s []*bus.Request
		for i := 0; i < 3; i++ {
			r := rd(uint64(i+1), uint64(0x100*(i+1)), 2)
			r.MsgSeq = 9
			r.MsgEnd = i == 2
			s = append(s, r)
		}
		return s
	}
	probeArrivals := func(cfg Config) []*bus.Request {
		k := sim.NewKernel()
		clk := k.NewClock("clk", 250)
		br := New("br", cfg, clk, clk)
		ini := testutil.NewScripted("ini", clk, mkScript())
		probe := testutil.NewProbe("probe", clk, 8)
		nodeA := stbus.NewNode("nA", stbus.DefaultConfig(), bus.Single(0))
		nodeB := stbus.NewNode("nB", stbus.DefaultConfig(), bus.Single(0))
		nodeA.AttachInitiator(ini.Port)
		nodeA.AttachTarget(br.TargetPort())
		nodeB.AttachInitiator(br.InitiatorPort())
		nodeB.AttachTarget(probe.Port)
		clk.Register(ini)
		clk.Register(nodeA)
		clk.Register(br.TargetSide)
		clk.Register(br.InitiatorSide)
		clk.Register(nodeB)
		clk.Register(probe)
		k.RunWhile(func() bool { return !ini.Done() }, 1e9)
		return probe.Arrivals
	}
	gc := probeArrivals(GenConv(1))
	if len(gc) != 3 {
		t.Fatalf("genconv arrivals = %d", len(gc))
	}
	if gc[0].MsgSeq != 9 || gc[0].MsgEnd || !gc[2].MsgEnd {
		t.Fatal("GenConv must preserve message labelling")
	}
	lw := probeArrivals(Lightweight(1))
	for _, r := range lw {
		if !r.MsgEnd {
			t.Fatal("lightweight bridge must terminate messages")
		}
	}
}

func TestPostedWriteThroughBridge(t *testing.T) {
	c := newChain(t, GenConv(1), 250, 250, mem.DefaultConfig(), []*bus.Request{
		testutil.Write(1, 0x100, 4, 8, true), rd(2, 0x200, 1),
	})
	c.run(t)
	// only the read completes; bridge must fully drain
	if got := c.br.Outstanding(); got != 0 {
		t.Fatalf("bridge outstanding = %d after drain, want 0", got)
	}
	s := c.br.Stats()
	if s.Writes != 1 || s.Reads != 1 {
		t.Fatalf("bridge stats %+v", s)
	}
}

func TestStatsString(t *testing.T) {
	s := Stats{Accepted: 3, Reads: 2, Writes: 1, BlockedCycles: 7}
	if s.String() == "" {
		t.Fatal("empty stats string")
	}
}

// Property: any random read/write mix crosses any width-conversion bridge
// with correct upstream beat counts.
func TestPropertyBridgeConversion(t *testing.T) {
	widths := []int{4, 8, 16}
	prop := func(seed uint64, n8 uint8, split bool) bool {
		rng := sim.NewRand(seed)
		src := widths[rng.Intn(3)]
		dst := widths[rng.Intn(3)]
		cfg := GenConv(rng.Intn(3))
		if !split {
			cfg = Lightweight(rng.Intn(3))
		}
		cfg.SrcBytesPerBeat = src
		cfg.DstBytesPerBeat = dst
		n := int(n8%6) + 1
		var script []*bus.Request
		for i := 0; i < n; i++ {
			beats := rng.Range(1, 8)
			if rng.Bool(0.5) {
				script = append(script, testutil.Read(uint64(i+1), uint64(0x100*(i+1)), beats, src))
			} else {
				script = append(script, testutil.Write(uint64(i+1), uint64(0x100*(i+1)), beats, src, false))
			}
		}
		c := newChain(t, cfg, 250, 125, mem.Config{WaitStates: 1, ReqDepth: 4, RespDepth: 4}, script)
		c.k.RunWhile(func() bool { return !c.ini.Done() }, 1e10)
		if !c.ini.Done() {
			return false
		}
		counts := map[uint64]int{}
		for _, b := range c.ini.Beats {
			if b.Req.Op == bus.OpRead {
				counts[b.Req.ID]++
			}
		}
		for _, r := range script {
			if r.Op == bus.OpRead && counts[r.ID] != r.Beats {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestInOrderUpstreamReordersResponses(t *testing.T) {
	// A split bridge accepting a read (src A) then a write (src B): the
	// write's ack is available immediately (store-and-forward), but with
	// InOrderUpstream it must not be emitted before the read's data —
	// the contract a non-split upstream bus (AHB) depends on.
	cfg := GenConv(1)
	cfg.InOrderUpstream = true
	k := sim.NewKernel()
	clk := k.NewClock("clk", 250)
	br := New("br", cfg, clk, clk)

	// two scripted initiators on the upstream node so Src labels differ
	nodeA := stbus.NewNode("nA", stbus.DefaultConfig(), bus.Single(0))
	read := rd(1, 0x100, 4)
	write := wrn(2, 0x200, 2)
	iniA := testutil.NewScripted("a", clk, []*bus.Request{read})
	iniB := testutil.NewScripted("b", clk, []*bus.Request{write})
	nodeA.AttachInitiator(iniA.Port)
	nodeA.AttachInitiator(iniB.Port)
	nodeA.AttachTarget(br.TargetPort())

	nodeB := stbus.NewNode("nB", stbus.DefaultConfig(), bus.Single(0))
	m := mem.New("mem", mem.Config{WaitStates: 6, ReqDepth: 4, RespDepth: 2})
	nodeB.AttachInitiator(br.InitiatorPort())
	nodeB.AttachTarget(m.Port())

	clk.Register(iniA)
	clk.Register(iniB)
	clk.Register(nodeA)
	clk.Register(br.TargetSide)
	clk.Register(br.InitiatorSide)
	clk.Register(nodeB)
	clk.Register(m)

	k.RunWhile(func() bool { return !(iniA.Done() && iniB.Done()) }, 1e10)
	if !iniA.Done() || !iniB.Done() {
		t.Fatal("timeout")
	}
	// The write ack must arrive at or after the read's completion (global
	// acceptance order), assuming the read was accepted first.
	if iniB.Completed[2] < iniA.Completed[1] {
		t.Fatalf("write ack at %d preceded read completion at %d despite InOrderUpstream",
			iniB.Completed[2], iniA.Completed[1])
	}
	// let the downstream write ack drain back to the bridge
	k.RunUntil(k.Now() + 100*clk.PeriodPS())
	if br.Outstanding() != 0 {
		t.Fatalf("bridge did not drain: outstanding=%d", br.Outstanding())
	}
}

func TestInOrderUpstreamManyTransactions(t *testing.T) {
	// Stress the reorder buffer with a longer mixed sequence.
	cfg := GenConv(1)
	cfg.InOrderUpstream = true
	var script []*bus.Request
	for i := uint64(1); i <= 12; i++ {
		if i%3 == 0 {
			script = append(script, wrn(i, 0x100*i, 2))
		} else {
			script = append(script, rd(i, 0x100*i, 4))
		}
	}
	c := newChain(t, cfg, 250, 200, mem.Config{WaitStates: 2, ReqDepth: 8, RespDepth: 4}, script)
	c.run(t)
	// responses must arrive in acceptance order
	var last int64 = -1
	for i := uint64(1); i <= 12; i++ {
		done, ok := c.ini.Completed[i]
		if !ok {
			t.Fatalf("transaction %d never completed", i)
		}
		if done < last {
			t.Fatalf("transaction %d completed at %d, before its predecessor at %d", i, done, last)
		}
		last = done
	}
}

func TestResidencyStatistics(t *testing.T) {
	// Residency must grow with memory latency: the bridge's share of
	// end-to-end latency includes the downstream round trip.
	run := func(ws int) Stats {
		c := newChain(t, GenConv(1), 250, 250, mem.Config{WaitStates: ws, ReqDepth: 4, RespDepth: 2},
			[]*bus.Request{rd(1, 0x100, 4), rd(2, 0x200, 4), wrn(3, 0x300, 4)})
		c.run(t)
		return c.br.Stats()
	}
	fast, slow := run(0), run(16)
	if fast.MeanResidency <= 0 {
		t.Fatal("residency not recorded")
	}
	if slow.MeanResidency <= fast.MeanResidency {
		t.Fatalf("slow-memory residency (%.1f) should exceed fast (%.1f)",
			slow.MeanResidency, fast.MeanResidency)
	}
	if fast.MaxResidency < int64(fast.MeanResidency) {
		t.Fatal("max residency below mean")
	}
}
