package bridge

import (
	"sort"

	"mpsocsim/internal/attr"
	"mpsocsim/internal/bus"
	"mpsocsim/internal/sim"
	"mpsocsim/internal/snapshot"
)

// Checkpoint codec (DESIGN.md §16). A reqCtx is aliased across the delay
// line, the crossing FIFO, the latency line, the ordering queues and the
// byDown index, so contexts serialize through the snapshot's shared-object
// table like requests do. byDown itself is not serialized — it is rebuilt
// from the decoded contexts (a context is indexed exactly while its
// downstream clone is unretired) — and every other container is walked in a
// fixed order, with map keys sorted, so the byte stream is deterministic.

// Wire markers for ctx references (same scheme as bus.EncodeReqRef).
const (
	ctxNil  = 0
	ctxBody = 1
	ctxRefs = 2
)

func encodeCtxRef(e *snapshot.Encoder, ctx *reqCtx) {
	if ctx == nil {
		e.U(ctxNil)
		return
	}
	idx, first := e.Ref(ctx)
	if !first {
		e.U(ctxRefs + idx)
		return
	}
	e.U(ctxBody)
	bus.EncodeReqRef(e, ctx.up)
	bus.EncodeReqRef(e, ctx.down)
	e.Bool(ctx.isRead)
	e.I(int64(ctx.upBeats))
	e.I(int64(ctx.emitted))
	e.I(int64(ctx.collect))
	e.Bool(ctx.retired)
	e.I(int64(ctx.src))
	e.Bool(ctx.ackPending)
	e.Bool(ctx.finished)
	e.Bool(ctx.inQ)
	e.I(ctx.acceptCycle)
	e.Bool(ctx.complete)
	e.U(uint64(len(ctx.stash)))
	for _, beat := range ctx.stash {
		bus.EncodeBeat(e, beat)
	}
}

func decodeCtxRef(d *snapshot.Decoder, col *attr.Collector) *reqCtx {
	tag := d.U()
	if d.Err() != nil || tag == ctxNil {
		return nil
	}
	if tag >= ctxRefs {
		ctx, _ := d.Ref(tag - ctxRefs).(*reqCtx)
		if ctx == nil {
			d.Corrupt("bridge context reference %d is not a context", tag-ctxRefs)
		}
		return ctx
	}
	ctx := &reqCtx{}
	d.AddRef(ctx)
	ctx.up = bus.DecodeReqRef(d, col)
	ctx.down = bus.DecodeReqRef(d, col)
	ctx.isRead = d.Bool()
	ctx.upBeats = int(d.I())
	ctx.emitted = int(d.I())
	ctx.collect = int(d.I())
	ctx.retired = d.Bool()
	ctx.src = int(d.I())
	ctx.ackPending = d.Bool()
	ctx.finished = d.Bool()
	ctx.inQ = d.Bool()
	ctx.acceptCycle = d.I()
	ctx.complete = d.Bool()
	ns := d.N(1 << 16)
	for i := 0; i < ns; i++ {
		ctx.stash = append(ctx.stash, bus.DecodeBeat(d, col))
	}
	return ctx
}

// EncodeState serializes the bridge's mutable state: both bus-facing ports
// (the bridge owns them), the emit queue, the crossing FIFOs, the
// store-and-forward and latency lines, the ordering queues, the transaction
// contexts they alias, and the activity counters.
func (b *Bridge) EncodeState(e *snapshot.Encoder) {
	e.Tag('G')
	bus.EncodeTargetPortState(e, b.tport)
	bus.EncodeInitiatorPortState(e, b.iport)
	e.U(uint64(len(b.emitQ)))
	for _, beat := range b.emitQ {
		bus.EncodeBeat(e, beat)
	}
	sim.EncodeAsyncFifoState(e, b.respX, bus.EncodeBeat)
	e.U(uint64(len(b.delayLine)))
	for _, dr := range b.delayLine {
		encodeCtxRef(e, dr.ctx)
		e.I(dr.ready)
	}
	sim.EncodeAsyncFifoState(e, b.reqX, encodeCtxRef)
	e.U(uint64(len(b.held)))
	for _, hr := range b.held {
		encodeCtxRef(e, hr.ctx)
		e.I(hr.ready)
	}
	e.U(uint64(len(b.globalOrder)))
	for _, ctx := range b.globalOrder {
		encodeCtxRef(e, ctx)
	}
	// perSrc in sorted key order; empty queues are kept (their backing
	// arrays persist across transactions) but carry no information, so only
	// non-empty ones travel.
	srcs := make([]int, 0, len(b.perSrc))
	for src, q := range b.perSrc {
		if len(q) > 0 {
			srcs = append(srcs, src)
		}
	}
	sort.Ints(srcs)
	e.U(uint64(len(srcs)))
	for _, src := range srcs {
		e.I(int64(src))
		q := b.perSrc[src]
		e.U(uint64(len(q)))
		for _, ctx := range q {
			encodeCtxRef(e, ctx)
		}
	}
	// byDown in down-ID order (IDs are unique among live clones); decode
	// rebuilds the map from this list.
	downs := make([]*reqCtx, 0, len(b.byDown))
	for _, ctx := range b.byDown {
		downs = append(downs, ctx)
	}
	sort.Slice(downs, func(i, j int) bool { return downs[i].down.ID < downs[j].down.ID })
	e.U(uint64(len(downs)))
	for _, ctx := range downs {
		encodeCtxRef(e, ctx)
	}
	e.I(int64(b.readsInFlight))
	e.I(int64(b.outstanding))
	e.I(b.accepted)
	e.I(b.blockedCycles)
	e.I(b.reads)
	e.I(b.writes)
	b.residency.EncodeState(e)
}

// DecodeState restores a bridge serialized by EncodeState.
func (b *Bridge) DecodeState(d *snapshot.Decoder, col *attr.Collector) {
	d.Tag('G')
	bus.DecodeTargetPortState(d, b.tport, col)
	bus.DecodeInitiatorPortState(d, b.iport, col)
	nq := d.N(1 << 16)
	b.emitQ = b.emitQ[:0]
	for i := 0; i < nq; i++ {
		b.emitQ = append(b.emitQ, bus.DecodeBeat(d, col))
	}
	sim.DecodeAsyncFifoState(d, b.respX, func(d *snapshot.Decoder) bus.Beat { return bus.DecodeBeat(d, col) })
	nd := d.N(1 << 16)
	b.delayLine = b.delayLine[:0]
	for i := 0; i < nd; i++ {
		ctx := decodeCtxRef(d, col)
		ready := d.I()
		b.delayLine = append(b.delayLine, delayedReq{ctx: ctx, ready: ready})
	}
	sim.DecodeAsyncFifoState(d, b.reqX, func(d *snapshot.Decoder) *reqCtx { return decodeCtxRef(d, col) })
	nh := d.N(1 << 16)
	b.held = b.held[:0]
	for i := 0; i < nh; i++ {
		ctx := decodeCtxRef(d, col)
		ready := d.I()
		b.held = append(b.held, heldReq{ctx: ctx, ready: ready})
	}
	ng := d.N(1 << 16)
	b.globalOrder = b.globalOrder[:0]
	for i := 0; i < ng; i++ {
		b.globalOrder = append(b.globalOrder, decodeCtxRef(d, col))
	}
	for src := range b.perSrc {
		delete(b.perSrc, src)
	}
	nsrc := d.N(1 << 16)
	for i := 0; i < nsrc; i++ {
		src := int(d.I())
		cnt := d.N(1 << 16)
		q := make([]*reqCtx, 0, cnt)
		for j := 0; j < cnt; j++ {
			q = append(q, decodeCtxRef(d, col))
		}
		if d.Err() != nil {
			return
		}
		b.perSrc[src] = q
	}
	for down := range b.byDown {
		delete(b.byDown, down)
	}
	nby := d.N(1 << 16)
	for i := 0; i < nby; i++ {
		ctx := decodeCtxRef(d, col)
		if d.Err() != nil {
			return
		}
		if ctx == nil || ctx.down == nil {
			d.Corrupt("bridge %q byDown entry without a downstream clone", b.name)
			return
		}
		b.byDown[ctx.down] = ctx
	}
	b.readsInFlight = int(d.I())
	b.outstanding = int(d.I())
	b.accepted = d.I()
	b.blockedCycles = d.I()
	b.reads = d.I()
	b.writes = d.I()
	b.residency.DecodeState(d)
}
