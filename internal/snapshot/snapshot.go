// Package snapshot provides the versioned binary codec under the platform
// checkpoint/restore facility (DESIGN.md §16). It carries the low-level
// encode/decode machinery only; each stateful subsystem package contributes
// its own section codec on top of the Encoder/Decoder pair, and
// platform.Snapshot / platform.Restore walk the subsystems in one fixed
// deterministic order.
//
// Format discipline follows internal/tracecap: a fixed magic, a version
// byte rejected on mismatch, unsigned varints for counts and plain values,
// zigzag varints for signed values, length-prefixed strings, and sentinel
// errors (ErrMagic, ErrVersion, ErrTruncated, ErrCorrupt) wrapped with the
// byte offset of the failing field so corrupt checkpoints fail loudly and
// precisely.
//
// The Decoder is sticky-error: after the first failure every read returns a
// zero value and the error is reported by Err (and by the platform entry
// points). Section tags — one byte asserted on decode — bound how far a
// traversal mismatch can drift before it is caught.
package snapshot

import (
	"errors"
	"fmt"

	"mpsocsim/internal/varint"
)

// Magic identifies a snapshot file.
const Magic = "MPSNAP"

// Version is the current snapshot format version. Bumped on any
// incompatible layout change; the decoder rejects unknown versions rather
// than guessing (same rule as the trace format).
const Version = 1

// Sentinel decode errors; match with errors.Is.
var (
	// ErrMagic marks a file that is not a snapshot at all.
	ErrMagic = errors.New("bad magic (not a platform snapshot)")
	// ErrVersion marks a snapshot written by an incompatible format version.
	ErrVersion = errors.New("unsupported snapshot version")
	// ErrTruncated marks a snapshot that ends mid-structure.
	ErrTruncated = errors.New("truncated snapshot")
	// ErrCorrupt marks a structurally invalid snapshot (overlong varint,
	// out-of-range count, section tag mismatch, dangling object reference).
	ErrCorrupt = errors.New("corrupt snapshot")
)

// Encoder accumulates the snapshot byte stream. The zero value is not
// usable; call NewEncoder.
type Encoder struct {
	buf []byte
	// refs assigns a dense index to every shared object (requests,
	// attribution records, bridge contexts) on first encounter, so object
	// graphs serialize as one body plus references. Keys are pointers;
	// encode and decode must visit objects in the same traversal order.
	refs map[any]uint64
}

// NewEncoder returns an encoder with the header (magic + version) written.
func NewEncoder() *Encoder {
	e := &Encoder{buf: make([]byte, 0, 1<<16), refs: make(map[any]uint64, 256)}
	e.buf = append(e.buf, Magic...)
	e.buf = append(e.buf, Version)
	return e
}

// Bytes returns the encoded stream.
func (e *Encoder) Bytes() []byte { return e.buf }

// Tag writes a one-byte section marker; the decoder asserts it.
func (e *Encoder) Tag(id byte) { e.buf = append(e.buf, id) }

// U writes an unsigned varint.
func (e *Encoder) U(v uint64) { e.buf = varint.AppendUvarint(e.buf, v) }

// I writes a zigzag-encoded signed varint.
func (e *Encoder) I(v int64) { e.buf = varint.AppendVarint(e.buf, v) }

// Bool writes a boolean as one varint.
func (e *Encoder) Bool(v bool) {
	if v {
		e.U(1)
	} else {
		e.U(0)
	}
}

// Str writes a length-prefixed string.
func (e *Encoder) Str(s string) { e.buf = varint.AppendString(e.buf, s) }

// Ref assigns (or looks up) the dense index of a shared object. The second
// result is true exactly on the first encounter, when the caller must encode
// the object body.
func (e *Encoder) Ref(obj any) (uint64, bool) {
	if idx, ok := e.refs[obj]; ok {
		return idx, false
	}
	idx := uint64(len(e.refs))
	e.refs[obj] = idx
	return idx, true
}

// Decoder walks a snapshot byte stream. Errors are sticky: after the first
// failure all reads return zero values and Err reports the failure.
type Decoder struct {
	data []byte
	off  int
	err  error
	// objs holds decoded shared objects by dense index, mirroring the
	// Encoder's first-encounter numbering.
	objs []any
}

// maxRefs bounds the shared-object table so a corrupt count cannot drive a
// huge allocation; it is far above any real platform's in-flight graph.
const maxRefs = 1 << 22

// NewDecoder validates the header and positions the decoder after it.
func NewDecoder(data []byte) (*Decoder, error) {
	d := &Decoder{data: data}
	if len(data) < len(Magic)+1 {
		return nil, d.fail(ErrTruncated, 0, "header needs %d bytes, have %d", len(Magic)+1, len(data))
	}
	if string(data[:len(Magic)]) != Magic {
		return nil, d.fail(ErrMagic, 0, "got %q", data[:len(Magic)])
	}
	d.off = len(Magic)
	if v := data[d.off]; v != Version {
		return nil, d.fail(ErrVersion, d.off, "version %d (decoder supports %d)", v, Version)
	}
	d.off++
	return d, nil
}

// Err returns the first decode failure, or nil.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of undecoded bytes (0 after an error).
func (d *Decoder) Remaining() int {
	if d.err != nil {
		return 0
	}
	return len(d.data) - d.off
}

// fail records (and returns) the sticky error with positional context.
func (d *Decoder) fail(err error, at int, format string, args ...any) error {
	if d.err == nil {
		d.err = fmt.Errorf("snapshot: %s at offset %d: %w", fmt.Sprintf(format, args...), at, err)
	}
	return d.err
}

// Corrupt lets a section codec reject a semantically invalid value (e.g. a
// FIFO occupancy above its depth) with the standard error shape.
func (d *Decoder) Corrupt(format string, args ...any) {
	d.fail(ErrCorrupt, d.off, format, args...)
}

// Tag asserts a one-byte section marker.
func (d *Decoder) Tag(id byte) {
	if d.err != nil {
		return
	}
	at := d.off
	if d.off >= len(d.data) {
		d.fail(ErrTruncated, at, "section tag %#x missing", id)
		return
	}
	if got := d.data[d.off]; got != id {
		d.fail(ErrCorrupt, at, "section tag mismatch: want %#x, got %#x", id, got)
		return
	}
	d.off++
}

// U reads an unsigned varint.
func (d *Decoder) U() uint64 {
	if d.err != nil {
		return 0
	}
	at := d.off
	v, n, st := varint.Uvarint(d.data, d.off)
	switch st {
	case varint.Truncated:
		d.fail(ErrTruncated, at, "value ends mid-varint")
		return 0
	case varint.Overflow:
		d.fail(ErrCorrupt, at, "varint overflows 64 bits")
		return 0
	}
	d.off += n
	return v
}

// I reads a zigzag-encoded signed varint.
func (d *Decoder) I() int64 {
	if d.err != nil {
		return 0
	}
	at := d.off
	v, n, st := varint.Varint(d.data, d.off)
	switch st {
	case varint.Truncated:
		d.fail(ErrTruncated, at, "value ends mid-varint")
		return 0
	case varint.Overflow:
		d.fail(ErrCorrupt, at, "varint overflows 64 bits")
		return 0
	}
	d.off += n
	return v
}

// Bool reads a boolean.
func (d *Decoder) Bool() bool {
	at := d.off
	switch d.U() {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail(ErrCorrupt, at, "boolean out of range")
		return false
	}
}

// N reads a count and rejects values above max, bounding every decode-side
// allocation and loop.
func (d *Decoder) N(max int) int {
	at := d.off
	v := d.U()
	if d.err != nil {
		return 0
	}
	if v > uint64(max) {
		d.fail(ErrCorrupt, at, "count %d exceeds bound %d", v, max)
		return 0
	}
	return int(v)
}

// maxStrLen bounds decoded string lengths (names only; matches tracecap).
const maxStrLen = 1 << 12

// Str reads a length-prefixed string.
func (d *Decoder) Str() string {
	at := d.off
	n := d.N(maxStrLen)
	if d.err != nil {
		return ""
	}
	if len(d.data)-d.off < n {
		d.fail(ErrTruncated, at, "string needs %d bytes, %d left", n, len(d.data)-d.off)
		return ""
	}
	s := string(d.data[d.off : d.off+n])
	d.off += n
	return s
}

// AddRef appends a decoded shared object, assigning it the next dense
// index (mirroring Encoder.Ref's first-encounter numbering).
func (d *Decoder) AddRef(obj any) {
	if len(d.objs) >= maxRefs {
		d.Corrupt("shared-object table exceeds bound %d", maxRefs)
		return
	}
	d.objs = append(d.objs, obj)
}

// NextRef returns the index the next AddRef call will assign.
func (d *Decoder) NextRef() uint64 { return uint64(len(d.objs)) }

// Ref resolves a dense index to the decoded object.
func (d *Decoder) Ref(idx uint64) any {
	if d.err != nil {
		return nil
	}
	if idx >= uint64(len(d.objs)) {
		d.fail(ErrCorrupt, d.off, "dangling object reference %d (table holds %d)", idx, len(d.objs))
		return nil
	}
	return d.objs[idx]
}

// Finish asserts that the stream was fully consumed.
func (d *Decoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	if rem := len(d.data) - d.off; rem != 0 {
		return d.fail(ErrCorrupt, d.off, "%d trailing bytes after final section", rem)
	}
	return nil
}
