// Package profiling wires the standard runtime/pprof CPU and heap profiles
// behind command-line flags, shared by the repo's benchmark and experiment
// commands so profile capture works identically everywhere:
//
//	flags := profiling.DefineFlags()
//	flag.Parse()
//	stop, err := flags.Start()
//	if err != nil { ... }
//	defer stop()
package profiling

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Flags holds the profile output paths registered on the default flag set.
type Flags struct {
	CPU *string
	Mem *string
}

// DefineFlags registers -cpuprofile and -memprofile on the default flag set.
// Call before flag.Parse.
func DefineFlags() Flags {
	return Flags{
		CPU: flag.String("cpuprofile", "", "write a CPU profile to this file"),
		Mem: flag.String("memprofile", "", "write a heap profile to this file at exit"),
	}
}

// Start begins CPU profiling when -cpuprofile was given. The returned stop
// function ends the CPU profile and, when -memprofile was given, writes the
// heap profile; call it exactly once on every exit path (defer it right
// after Start).
func (f Flags) Start() (stop func(), err error) {
	var cpuFile *os.File
	if *f.CPU != "" {
		cpuFile, err = os.Create(*f.CPU)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if *f.Mem != "" {
			mf, err := os.Create(*f.Mem)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer mf.Close()
			runtime.GC() // settle the heap so the profile reflects live data
			if err := pprof.WriteHeapProfile(mf); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}
	}, nil
}
