package platform

import "mpsocsim/internal/metrics"

// ObservableState is the externally visible state of a paused platform: the
// central-clock cycle plus every registered counter and gauge, read in
// registration order. It is the same instrument set a telemetry record
// carries, which makes it the natural equality domain for cross-variant
// divergence searches (internal/diff): two runs whose observable state
// matches at a cycle are indistinguishable to every artifact the simulator
// emits at that cycle.
//
// Histograms and timelines are deliberately excluded — they summarize the
// path taken, not the state reached, so two runs can hold identical
// machine state while their distributions differ in bucket order only.
type ObservableState struct {
	Cycle    int64
	TimePS   int64
	Counters []metrics.CounterValue
	Gauges   []metrics.GaugeValue
}

// Observable captures the platform's current observable state. It reads
// live instruments and is valid at any paused instant — between Run calls,
// at a RunToCycle pause, or after the run drains. Allocates; not for the
// per-cycle hot path.
func (p *Platform) Observable() ObservableState {
	st := ObservableState{
		Cycle:  p.CentralClk.Cycles(),
		TimePS: p.Kernel.Now(),
	}
	ctrs := p.Metrics.Counters()
	st.Counters = make([]metrics.CounterValue, len(ctrs))
	for i, c := range ctrs {
		st.Counters[i] = metrics.CounterValue{Name: c.Name(), Value: c.Value()}
	}
	gags := p.Metrics.Gauges()
	st.Gauges = make([]metrics.GaugeValue, len(gags))
	for i, g := range gags {
		st.Gauges[i] = metrics.GaugeValue{Name: g.Name(), Clock: g.Clock(), Value: g.Value()}
	}
	return st
}
