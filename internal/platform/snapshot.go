package platform

import (
	"fmt"
	"hash/fnv"
	"io"
	"sort"

	"mpsocsim/internal/ahb"
	"mpsocsim/internal/attr"
	"mpsocsim/internal/axi"
	"mpsocsim/internal/bridge"
	"mpsocsim/internal/snapshot"
	"mpsocsim/internal/stbus"
	"mpsocsim/internal/tracecap"
)

// Platform checkpoint/restore (DESIGN.md §16).
//
// Snapshot serializes the full mutable state of a serial platform at an edge
// boundary; Restore rebuilds the topology from the spec (Build is
// deterministic) and overwrites the mutable state in the same fixed
// traversal order. Restore-then-run is bit-identical to the uninterrupted
// run: reports, traces and attribution matrices match byte for byte, and a
// restored platform may still EnableSharding for the remainder.

// stateEncoder/stateDecoder are the per-subsystem section-codec surfaces.
// Every stateful component implements them; the traversal below visits the
// components in one fixed order on both sides, which is what keeps the
// shared-object reference tables (requests, attribution records, bridge
// contexts) aligned.
type stateEncoder interface {
	EncodeState(*snapshot.Encoder)
}

type stateDecoder interface {
	DecodeState(*snapshot.Decoder, *attr.Collector)
}

// Fingerprint returns a stable hash of the spec: the snapshot header carries
// it so a checkpoint cannot be restored onto a differently-configured
// platform (whose topology traversal would misinterpret the byte stream).
// The replay trace — an input, not a knob — contributes its identity (name,
// streams, event count), not its events.
func (s Spec) Fingerprint() uint64 {
	h := fnv.New64a()
	replay := s.Replay
	flat := s
	flat.Replay = nil
	fmt.Fprintf(h, "%#v", flat)
	if replay != nil {
		fmt.Fprintf(h, "|replay:%s:%v:%d", replay.Platform, replay.StreamNames(), replay.Events())
	}
	return h.Sum64()
}

// Snapshot writes a checkpoint of the platform's complete mutable state.
// Call it only between steps (after Build, or when Run/RunToCycle has
// returned) — that is an edge boundary, where every two-phase FIFO is
// quiescent. Sharded platforms cannot snapshot (checkpoint before
// EnableSharding; a restored platform can be re-sharded), and neither can a
// platform with the CSV/VCD trace sampler attached (its closure state is not
// serializable).
func (p *Platform) Snapshot(w io.Writer) error {
	if p.sharded {
		return fmt.Errorf("platform: cannot snapshot a sharded platform (checkpoint before EnableSharding)")
	}
	if p.samplerAttached {
		return fmt.Errorf("platform: cannot snapshot with AttachSampler installed (its closure state is not serializable)")
	}
	e := snapshot.NewEncoder()
	e.Tag('W')
	e.U(p.Spec.Fingerprint())

	// Feature flags: which post-Build enables were applied, with their
	// parameters, so Restore re-applies them before decoding state.
	e.Bool(p.attrCol != nil)
	e.I(int64(p.attrRetain))
	e.Bool(len(p.samplers) > 0)
	e.I(p.timelineEvery)
	e.I(int64(p.timelineCap))
	e.Bool(p.capture != nil)
	if p.capture != nil {
		e.I(int64(p.capture.Limit()))
	} else {
		e.I(0)
	}

	// Run-loop state: watchdog history and the timeline countdown.
	e.I(p.wdLastProg)
	e.I(p.wdLastCheck)
	e.I(p.timelineLeft)

	p.encodeComponents(e)
	_, err := w.Write(e.Bytes())
	return err
}

// encodeComponents walks every stateful subsystem in the fixed traversal
// order (mirrored exactly by decodeComponents): kernel time axis, request
// pool, fabrics in build order, bridges by sorted name, memory subsystem,
// DSP core, initiators in attachment order, ID sources, then the
// attribution collector, trace capture and samplers when enabled.
func (p *Platform) encodeComponents(e *snapshot.Encoder) {
	p.Kernel.EncodeState(e)
	p.pool.EncodeState(e)
	for _, fe := range p.fabrics {
		fe.fab.(stateEncoder).EncodeState(e)
	}
	for _, name := range sortedBridgeNames(p.bridges) {
		p.bridges[name].EncodeState(e)
	}
	if p.onchip != nil {
		p.onchip.EncodeState(e)
	}
	if p.ctrl != nil {
		p.ctrl.EncodeState(e)
	}
	if p.core != nil {
		p.core.EncodeState(e)
	}
	for _, g := range p.gens {
		g.(stateEncoder).EncodeState(e)
	}
	e.U(uint64(len(p.idSrcs)))
	for _, src := range p.idSrcs {
		e.U(src.State())
	}
	if p.attrCol != nil {
		p.attrCol.EncodeState(e)
	}
	if p.capture != nil {
		p.capture.EncodeState(e)
	}
	for _, s := range p.samplers {
		s.EncodeState(e)
	}
}

// Restore rebuilds a platform from the spec and overwrites its mutable state
// from a checkpoint written by Snapshot. The spec must be the one the
// checkpoint was taken from (the header fingerprint enforces it). The
// returned platform is paused at the checkpoint instant: continue with Run
// (optionally after EnableSharding) and the results are bit-identical to a
// run that never checkpointed.
func Restore(spec Spec, r io.Reader) (*Platform, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("platform: reading snapshot: %w", err)
	}
	d, err := snapshot.NewDecoder(data)
	if err != nil {
		return nil, err
	}
	p, err := Build(spec)
	if err != nil {
		return nil, err
	}
	d.Tag('W')
	fp := d.U()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if want := spec.Fingerprint(); fp != want {
		return nil, fmt.Errorf("platform: snapshot was taken from a different spec (fingerprint %#x, this spec is %#x)", fp, want)
	}

	attrOn := d.Bool()
	attrRetain := d.I()
	tlOn := d.Bool()
	tlEvery := d.I()
	tlCap := d.I()
	capOn := d.Bool()
	capLimit := d.I()
	// The retention/capacity knobs size preallocated buffers (the sampler
	// rings multiply by gauges × domains), so a corrupt stream must not
	// reach EnableTimelines and friends with an absurd value — the
	// decoder's count bound does not cover these signed fields. 1<<16 is
	// 16x the metrics default ring; the period and capture limit drive no
	// allocation and only need a sanity ceiling.
	const maxObsBuf, maxObsVal = 1 << 16, 1 << 40
	for _, v := range []int64{attrRetain, tlCap} {
		if v < 0 || v > maxObsBuf {
			d.Corrupt("observability buffer size %d out of range [0, %d]", v, int64(maxObsBuf))
		}
	}
	for _, v := range []int64{tlEvery, capLimit} {
		if v < 0 || v > maxObsVal {
			d.Corrupt("observability parameter %d out of range [0, %d]", v, int64(maxObsVal))
		}
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	if attrOn {
		p.EnableAttribution(int(attrRetain))
	}
	if tlOn {
		p.EnableTimelines(tlEvery, int(tlCap))
	}
	if capOn {
		p.AttachCapture(tracecap.NewCapture(spec.Name(), int(capLimit)))
	}

	p.wdLastProg = d.I()
	p.wdLastCheck = d.I()
	p.timelineLeft = d.I()

	p.decodeComponents(d)
	if err := d.Err(); err != nil {
		return nil, err
	}
	if err := d.Finish(); err != nil {
		return nil, err
	}
	p.resumedPS = p.Kernel.Now()
	p.resumedCycles = p.CentralClk.Cycles()
	return p, nil
}

// ResumedCycles returns the central-clock cycle the platform was restored
// at (0 for a fresh Build).
func (p *Platform) ResumedCycles() int64 { return p.resumedCycles }

// decodeComponents mirrors encodeComponents exactly.
func (p *Platform) decodeComponents(d *snapshot.Decoder) {
	p.Kernel.DecodeState(d)
	p.pool.DecodeState(d)
	for _, fe := range p.fabrics {
		fe.fab.(stateDecoder).DecodeState(d, p.attrCol)
	}
	for _, name := range sortedBridgeNames(p.bridges) {
		p.bridges[name].DecodeState(d, p.attrCol)
	}
	if p.onchip != nil {
		p.onchip.DecodeState(d, p.attrCol)
	}
	if p.ctrl != nil {
		p.ctrl.DecodeState(d, p.attrCol)
	}
	if p.core != nil {
		p.core.DecodeState(d, p.attrCol)
	}
	for _, g := range p.gens {
		g.(stateDecoder).DecodeState(d, p.attrCol)
	}
	n := d.N(1 << 10)
	if d.Err() != nil {
		return
	}
	if n != len(p.idSrcs) {
		d.Corrupt("ID-source count %d does not match platform's %d", n, len(p.idSrcs))
		return
	}
	for _, src := range p.idSrcs {
		src.SetState(d.U())
	}
	if p.attrCol != nil {
		p.attrCol.DecodeState(d)
	}
	if p.capture != nil {
		p.capture.DecodeState(d)
	}
	for _, s := range p.samplers {
		s.DecodeState(d)
	}
}

// sortedBridgeNames returns the bridge names in sorted order — the fixed
// bridge traversal order of the snapshot format (and of registerMetrics).
func sortedBridgeNames(bridges map[string]*bridge.Bridge) []string {
	names := make([]string, 0, len(bridges))
	for name := range bridges {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Compile-time interface checks: every component in the traversal speaks the
// section-codec surface.
var (
	_ stateEncoder = (*stbus.Node)(nil)
	_ stateEncoder = (*ahb.Bus)(nil)
	_ stateEncoder = (*axi.Interconnect)(nil)
	_ stateDecoder = (*stbus.Node)(nil)
	_ stateDecoder = (*ahb.Bus)(nil)
	_ stateDecoder = (*axi.Interconnect)(nil)
)
