package platform

import (
	"reflect"
	"testing"

	"mpsocsim/internal/runner"
)

// goldenSpecs are the three reference configurations the golden cycle
// counts pin; the determinism tests reuse them so the "no map-iteration
// order, no shared PRNG" guarantee of DESIGN §4 is checked on exactly the
// configurations whose numbers we promise to hold.
func goldenSpecs() map[string]Spec {
	return map[string]Spec{
		"stbus-distributed-lmi":    quick(STBus, Distributed, LMIDDR),
		"ahb-distributed-onchip":   quick(AHB, Distributed, OnChip),
		"axi-collapsed-lmi":        quick(AXI, Collapsed, LMIDDR),
		"stbus-distributed-lmi-io": quickIO(STBus, Distributed, LMIDDR),
	}
}

// TestDeterministicResults runs each golden spec twice and requires the
// two Results to be bit-identical — not just the cycle count, but every
// statistic, histogram and monitor window. Any divergence means hidden
// shared state (a global PRNG, map-iteration order leaking into the
// schedule) has crept into the simulator.
func TestDeterministicResults(t *testing.T) {
	for name, spec := range goldenSpecs() {
		t.Run(name, func(t *testing.T) {
			a := runCycles(t, spec)
			b := runCycles(t, spec)
			if a.CentralCycles != b.CentralCycles {
				t.Fatalf("cycle count not reproducible: %d vs %d", a.CentralCycles, b.CentralCycles)
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("two runs of %s produced different Results:\n%+v\nvs\n%+v", spec.Name(), a, b)
			}
		})
	}
}

// TestDeterministicUnderParallelRunner runs the same golden specs through
// the worker pool at -j 4 and requires every Result to match its serial
// twin — the concurrency layer must not perturb any run.
func TestDeterministicUnderParallelRunner(t *testing.T) {
	specs := goldenSpecs()
	var names []string
	var jobs []runner.Job[Result]
	serial := map[string]Result{}
	for name, spec := range specs {
		spec := spec
		names = append(names, name)
		serial[name] = runCycles(t, spec)
		jobs = append(jobs, runner.Job[Result]{Name: name, Run: func() (Result, error) {
			p, err := Build(spec)
			if err != nil {
				return Result{}, err
			}
			return p.Run(5e12), nil
		}})
	}
	results, err := runner.Values(runner.Map(jobs, runner.Options{Workers: 4}))
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range names {
		if !results[i].Done {
			t.Fatalf("%s did not drain under the parallel runner", name)
		}
		if !reflect.DeepEqual(results[i], serial[name]) {
			t.Errorf("%s: parallel Result differs from serial Result (cycles %d vs %d)",
				name, results[i].CentralCycles, serial[name].CentralCycles)
		}
	}
}
