package platform

import (
	"bytes"
	"encoding/json"
	"testing"
)

// reportSpec is a small LMI platform that drains quickly but exercises every
// report section: bridges, LMI stats, DSP, and the metrics snapshot.
func reportSpec() Spec {
	s := DefaultSpec()
	s.WorkloadScale = 0.05
	return s
}

// TestReportSchema pins the JSON run report's golden schema: the version
// string and the top-level keys consumers key on. Removing or renaming any
// of these requires bumping ReportSchema.
func TestReportSchema(t *testing.T) {
	p := MustBuild(reportSpec())
	p.EnableTimelines(64, 0)
	r := p.Run(200e9)
	if !r.Done {
		t.Fatal("report run did not drain")
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if got := doc["schema"]; got != ReportSchema {
		t.Fatalf("schema = %v, want %q", got, ReportSchema)
	}
	for _, key := range []string{
		"spec", "done", "exec_ps", "central_cycles", "issued", "completed",
		"total_bytes", "throughput_mbps", "mem_utilization", "ips", "metrics",
	} {
		if _, ok := doc[key]; !ok {
			t.Errorf("report missing top-level key %q", key)
		}
	}
	spec := doc["spec"].(map[string]any)
	for _, key := range []string{"platform", "protocol", "topology", "memory", "seed"} {
		if _, ok := spec[key]; !ok {
			t.Errorf("spec missing key %q", key)
		}
	}
	m := doc["metrics"].(map[string]any)
	for _, key := range []string{"counters", "gauges", "histograms", "timelines"} {
		if _, ok := m[key]; !ok {
			t.Errorf("metrics snapshot missing key %q", key)
		}
	}
	// Spot-check that each instrumented subsystem family is present.
	counters := m["counters"].([]any)
	names := map[string]bool{}
	for _, c := range counters {
		names[c.(map[string]any)["name"].(string)] = true
	}
	for _, want := range []string{
		"stbus.n8.grants", "stbus.n8.grant_stall_cycles",
		"bridge.n5_dma_br.accepted", "lmi.lmi.fifo_full_cycles",
		"lmi.lmi.sdram_row_hits", "dsp.st220.dcache_misses",
		"ip.decrypt.issued",
	} {
		if !names[want] {
			t.Errorf("report missing counter %q", want)
		}
	}
}

// TestReportDeterministic proves two identical runs render byte-identical
// reports: instrument enumeration is registration-ordered and map keys
// serialize sorted.
func TestReportDeterministic(t *testing.T) {
	render := func() []byte {
		p := MustBuild(reportSpec())
		p.EnableTimelines(64, 0)
		r := p.Run(200e9)
		if !r.Done {
			t.Fatal("run did not drain")
		}
		var buf bytes.Buffer
		if err := r.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Fatal("identical runs produced different reports")
	}
}

// TestSummaryMatchesLegacyRendering proves the registry-sourced text summary
// is byte-identical to the rendering computed directly from component stats:
// the same Result rendered with and without its metrics snapshot attached
// must agree.
func TestSummaryMatchesLegacyRendering(t *testing.T) {
	p := MustBuild(reportSpec())
	r := p.Run(200e9)
	if !r.Done {
		t.Fatal("run did not drain")
	}
	var withSnap bytes.Buffer
	if err := r.WriteSummary(&withSnap); err != nil {
		t.Fatal(err)
	}
	legacy := r
	legacy.Metrics = nil
	var withoutSnap bytes.Buffer
	if err := legacy.WriteSummary(&withoutSnap); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(withSnap.Bytes(), withoutSnap.Bytes()) {
		t.Fatalf("summary diverges between registry and legacy sources:\n--- registry ---\n%s\n--- legacy ---\n%s",
			withSnap.String(), withoutSnap.String())
	}
}
