package platform

import (
	"fmt"
	"sort"

	"mpsocsim/internal/ahb"
	"mpsocsim/internal/attr"
	"mpsocsim/internal/axi"
	"mpsocsim/internal/bridge"
	"mpsocsim/internal/bus"
	"mpsocsim/internal/dspcore"
	"mpsocsim/internal/iptg"
	"mpsocsim/internal/lmi"
	"mpsocsim/internal/mem"
	"mpsocsim/internal/metrics"
	"mpsocsim/internal/replay"
	"mpsocsim/internal/sim"
	"mpsocsim/internal/stbus"
	"mpsocsim/internal/telemetry"
	"mpsocsim/internal/tracecap"
)

// Clock frequencies of the reference platform (MHz).
const (
	CentralMHz = 250
	ClusterMHz = 200
	CPUMHz     = 400
)

// Initiator is the component surface shared by live IP traffic generators
// (iptg.Generator) and trace-driven replayers (replay.Initiator). The
// platform treats its traffic sources uniformly through it: run completion,
// statistics collection, pool wiring and capture attachment all go through
// this interface, so a Spec with Replay set swaps stimulus without touching
// any other subsystem.
type Initiator interface {
	sim.Clocked
	Name() string
	Origin() int
	Port() *bus.InitiatorPort
	Done() bool
	Issued() int64
	Completed() int64
	// Unfinished counts transactions not yet completed (to-issue plus in
	// flight); MaxConcurrent bounds the simultaneously in-flight count.
	// The sharded run coordinator combines them to prove how long parallel
	// windows cannot drain the workload (see shard.go).
	Unfinished() int64
	MaxConcurrent() int64
	Stats() []iptg.AgentStats
	UseRequestPool(*bus.RequestPool)
	UseAttribution(*attr.Collector)
	RegisterMetrics(*metrics.Registry, string)
}

// dspOrigin is the platform-wide initiator identity of the DSP core, chosen
// far above the traffic-generator origins (0..n-1).
const dspOrigin = 1000

// Platform is a fully assembled instance ready to Run.
type Platform struct {
	Spec       Spec
	Kernel     *sim.Kernel
	CentralClk *sim.Clock
	CPUClk     *sim.Clock

	// Metrics is the platform-wide instrument registry; every subsystem
	// registers its counters, gauges and histograms here during Build, in a
	// fixed order, so snapshots enumerate deterministically.
	Metrics *metrics.Registry

	centralFab bus.Fabric
	clusterFab []bus.Fabric
	gens       []Initiator
	genCluster []string
	genClk     []*sim.Clock
	bridges    map[string]*bridge.Bridge
	core       *dspcore.Core
	// dspLink is the point-to-point node at the DSP core interface; the
	// I/O subsystem's heap allocator attaches here when the DSP is present
	// (allocator traffic models software running on the core).
	dspLink *stbus.Node

	onchip *mem.Memory
	ctrl   *lmi.Controller

	// fabrics lists every interconnect node with its clock-domain name, in
	// build order, for metric registration.
	fabrics  []fabricEntry
	samplers []*metrics.Sampler

	// attrCol is the latency-attribution collector, nil until
	// EnableAttribution is called.
	attrCol *attr.Collector

	// idSrcs holds one request-ID source per initiator (traffic generators,
	// replayers, DSP core), each seeded into a disjoint range. Per-initiator
	// sources keep IDs globally unique without a shared counter, which a
	// sharded run would race on; IDs are correlation-only and never reach a
	// result or trace, so serial results are unchanged.
	idSrcs []*bus.IDSource
	pool   bus.RequestPool

	// centralRegs journals every component registered on the central clock,
	// tagged with the platform unit it belongs to, in registration order.
	// Sharded assembly replays the journal onto per-shard central clocks
	// (see shard.go); serial runs never read it.
	centralRegs []centralReg

	// timeline-trigger state, kept so sharded assembly can replace the
	// single cross-domain trigger with per-shard equivalents.
	timelineEvery   int64
	timelineCap     int
	timelineTrigger *sim.ClockedFunc
	samplerClocks   []*sim.Clock
	// timelineLeft is the live countdown to the next sampling instant. A
	// Platform field (not a closure variable) so checkpoint/restore can
	// carry it: a restored run must sample at exactly the instants the
	// uninterrupted run would.
	timelineLeft int64

	// attrRetain remembers the retention depth EnableAttribution was called
	// with, so a snapshot can re-enable attribution identically on restore.
	attrRetain int

	// capture is the attached trace capture (nil unless AttachCapture was
	// called); retained so snapshots can carry the recorded streams.
	capture *tracecap.Capture

	// Progress-watchdog state, shared by the serial and sharded run loops.
	// Fields (not run-loop locals) so a checkpointed run resumes with the
	// same observation history — stall detection after restore fires at
	// exactly the instants an uninterrupted run would. Build initializes
	// wdLastProg to -1 (no observation yet).
	wdLastProg  int64
	wdLastCheck int64
	// wdCounters holds the counter baseline copied at the last watchdog
	// observation and wdPrevCounters the one before it (both preallocated in
	// Build, written in place), so a stall report can show which counters
	// still moved in the final window — falling back to the previous window
	// when the run ended on the very cycle the baseline was refreshed (whole-
	// ms budgets land on watchdog-window multiples routinely, which would
	// otherwise diff a zero-width window). wdObservations counts refreshes;
	// wdObservedCycle is the cycle of the newest one.
	wdCounters      []metrics.CounterValue
	wdPrevCounters  []metrics.CounterValue
	wdObservations  int64
	wdObservedCycle int64

	// Live-telemetry state (nil/zero until EnableTelemetry): the snapshot
	// collector, its cadence in central cycles, the next snapshot cycle and
	// the last snapshotted cycle (to avoid a duplicate final record).
	tele          *telemetry.Collector
	teleEvery     int64
	teleNext      int64
	teleLastCycle int64

	// stallTrackers are the always-on run-health probes, one per traffic
	// source, parallel to gens. Build attaches them; StallReport reads them.
	stallTrackers []*telemetry.PortTracker

	// resumedPS/resumedCycles mark the restore point (zero for a fresh
	// Build). EnableSharding's pre-run guard and Result.ResumedFromCycle
	// read them.
	resumedPS     int64
	resumedCycles int64

	// sharded-run state (nil/zero until EnableSharding).
	shardKernels  []*sim.Kernel
	shardCentral  []*sim.Clock // per-shard central clock (real or replica)
	boundaryFifos []sim.DeferredCommitter
	tailThreshold int64
	sharded       bool
	shards        int
	// samplerAttached marks that the CSV/VCD tracing sampler (AttachSampler
	// in tracing.go) was installed; it reads cross-domain state from a
	// central-clock hook and is incompatible with sharded execution.
	samplerAttached bool
}

// centralReg is one journaled central-clock registration: the component and
// the platform unit (shard-assignment granule) that owns it.
type centralReg struct {
	unit string
	comp sim.Clocked
}

// timelineUnit is the reserved journal unit of the EnableTimelines sampling
// trigger. It is not a shard-assignment granule: sharded assembly skips it
// when replaying the journal and installs one trigger per shard instead.
const timelineUnit = "\x00timeline"

// regCentral registers comp on the central clock and journals the
// registration under the owning unit ("central" for the memory/interconnect
// core, a cluster name for that cluster's bridge initiator side, "cpu" for
// the DSP converter's initiator side).
func (p *Platform) regCentral(unit string, comp sim.Clocked) {
	p.CentralClk.Register(comp)
	p.centralRegs = append(p.centralRegs, centralReg{unit: unit, comp: comp})
}

// newIDSource mints the per-initiator request-ID source for the given
// origin. Bases are spaced 2^40 apart — wider than any run's transaction
// count — so ranges never collide.
func (p *Platform) newIDSource(origin int) *bus.IDSource {
	src := bus.NewIDSource(uint64(origin+1) << 40)
	p.idSrcs = append(p.idSrcs, &src)
	return p.idSrcs[len(p.idSrcs)-1]
}

// fabricEntry pairs an interconnect node with the clock domain it runs in.
type fabricEntry struct {
	fab   bus.Fabric
	clock string
}

// instrumented is the metric-registration surface every concrete fabric
// (stbus.Node, ahb.Bus, axi.Bus) provides.
type instrumented interface {
	RegisterMetrics(*metrics.Registry, string)
}

// Build assembles a platform instance from the spec.
func Build(spec Spec) (*Platform, error) {
	spec.normalize()
	p := &Platform{
		Spec:       spec,
		Kernel:     sim.NewKernel(),
		bridges:    map[string]*bridge.Bridge{},
		wdLastProg: -1,
	}
	p.CentralClk = p.Kernel.NewClock("central", CentralMHz)
	p.centralFab = p.newFabric("n8")
	p.fabrics = append(p.fabrics, fabricEntry{p.centralFab, "central"})

	if err := p.buildMemory(); err != nil {
		return nil, err
	}
	if err := p.buildClusters(); err != nil {
		return nil, err
	}
	if spec.WithDSP {
		p.buildDSP()
	}
	if err := p.buildIO(); err != nil {
		return nil, err
	}
	// The central fabric evaluates after all its initiator-side feeders
	// have been registered (registration order within a clock is the
	// deterministic evaluation order; correctness is order-independent
	// thanks to two-phase FIFOs).
	p.regCentral("central", p.centralFab)
	if p.onchip != nil {
		p.regCentral("central", p.onchip)
	}
	if p.ctrl != nil {
		p.regCentral("central", p.ctrl)
	}
	p.wirePool()
	p.registerMetrics()
	p.attachStallTrackers()
	p.wdCounters = make([]metrics.CounterValue, len(p.Metrics.Counters()))
	p.wdPrevCounters = make([]metrics.CounterValue, len(p.Metrics.Counters()))
	return p, nil
}

// registerMetrics builds the instrument registry. Registration happens once
// per Build in a fixed order — fabrics in build order, bridges by sorted
// name, memory subsystem, DSP core, then initiators in attachment order — so
// every run of the same spec enumerates instruments identically. All
// instruments are func-backed reads of counters the components already
// maintain: attaching the registry adds no hot-path cost.
func (p *Platform) registerMetrics() {
	p.Metrics = metrics.NewRegistry()
	for _, fe := range p.fabrics {
		if in, ok := fe.fab.(instrumented); ok {
			in.RegisterMetrics(p.Metrics, fe.clock)
		}
	}
	names := make([]string, 0, len(p.bridges))
	for name := range p.bridges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		p.bridges[name].RegisterMetrics(p.Metrics)
	}
	if p.onchip != nil {
		p.onchip.RegisterMetrics(p.Metrics, "central")
	}
	if p.ctrl != nil {
		p.ctrl.RegisterMetrics(p.Metrics, "central")
	}
	if p.core != nil {
		p.core.RegisterMetrics(p.Metrics, "cpu")
	}
	for i, g := range p.gens {
		g.RegisterMetrics(p.Metrics, p.genClk[i].Name())
	}
}

// EnableTimelines attaches one gauge sampler per clock domain, turning every
// registered gauge into a cycle-stamped timeline (the counter tracks of the
// Chrome trace export and the series of the JSON report). every is the
// sampling window in central-clock cycles and capSamples the ring capacity
// per domain; both fall back to the metrics package defaults when <= 0.
// Call after Build and before Run — the samplers' ring storage is
// preallocated here, so the steady-state zero-allocation invariant holds
// with timelines enabled. Calling it twice is a no-op.
//
// All domains are sampled by a single trigger registered on the central
// clock: per-cycle cost is one decrement and one branch for the whole
// platform, instead of an Eval/Update interface dispatch per domain per
// edge (which measurably slows the kernel's hot loop). Each sampled row is
// stamped with its own domain's cycle counter at the trigger instant, so
// timestamps stay exact in every domain.
func (p *Platform) EnableTimelines(every int64, capSamples int) {
	if len(p.samplers) > 0 {
		return
	}
	if p.sharded {
		panic("platform: EnableTimelines must be called before EnableSharding")
	}
	if every <= 0 {
		every = metrics.DefaultSampleEvery
	}
	clocks := p.Kernel.Clocks()
	for _, clk := range clocks {
		s := p.Metrics.NewSampler(clk.Name(), clk.PeriodPS(), every, capSamples)
		p.samplers = append(p.samplers, s)
	}
	p.timelineEvery = every
	p.timelineCap = capSamples
	p.samplerClocks = append([]*sim.Clock(nil), clocks...)
	p.timelineLeft = every
	p.timelineTrigger = &sim.ClockedFunc{OnEval: func() {
		p.timelineLeft--
		if p.timelineLeft > 0 {
			return
		}
		p.timelineLeft = every
		for i, s := range p.samplers {
			s.Sample(clocks[i].Cycles())
		}
	}}
	// Journaled under a reserved unit so sharded assembly can replace the
	// single trigger with one per shard (each sampling only its home
	// domains); see EnableSharding.
	p.regCentral(timelineUnit, p.timelineTrigger)
}

// attributable is the attribution-enable surface every concrete fabric
// (stbus.Node, ahb.Bus, axi.Bus) provides: the shared collector plus a
// closure returning the fabric's own clock edge in absolute picoseconds.
type attributable interface {
	EnableAttribution(*attr.Collector, func() int64)
}

// EnableAttribution builds the platform-wide latency-attribution collector
// and hands it to every component that stamps or closes phase records: the
// fabrics (arbitration/transfer/target-queue phases), the bridges (store &
// forward, CDC, downstream issue), the memory subsystem (service and SDRAM
// phases, posted-write completion) and the initiators (record completion at
// the final response beat). Each component stamps with its *own* clock's
// NowPS, so segments share one monotonic picosecond axis across domains.
//
// Call after Build and before Run — the collector's record storage is
// preallocated, so the steady-state zero-allocation invariant holds with
// attribution enabled. retain > 0 additionally keeps the last retain
// finished transactions verbatim for per-transaction export (Chrome-trace
// phase sub-slices). Calling it twice is a no-op returning the existing
// collector.
func (p *Platform) EnableAttribution(retain int) *attr.Collector {
	if p.attrCol != nil {
		return p.attrCol
	}
	if p.sharded {
		panic("platform: EnableAttribution must be called before EnableSharding")
	}
	col := attr.NewCollector(0)
	for _, g := range p.gens {
		col.AddInitiator(g.Origin(), g.Name())
	}
	if p.core != nil {
		col.AddInitiator(dspOrigin, p.core.Name())
	}
	if retain > 0 {
		col.EnableRetention(retain)
	}
	p.attrRetain = retain
	clocks := map[string]*sim.Clock{}
	for _, clk := range p.Kernel.Clocks() {
		clocks[clk.Name()] = clk
	}
	for _, fe := range p.fabrics {
		clk := clocks[fe.clock]
		if a, ok := fe.fab.(attributable); ok && clk != nil {
			a.EnableAttribution(col, clk.NowPS)
		}
	}
	for _, br := range p.bridges {
		br.EnableAttribution()
	}
	if p.onchip != nil {
		p.onchip.EnableAttribution(col, p.CentralClk.NowPS)
	}
	if p.ctrl != nil {
		p.ctrl.EnableAttribution(col, p.CentralClk.NowPS)
	}
	for _, g := range p.gens {
		g.UseAttribution(col)
	}
	if p.core != nil {
		p.core.UseAttribution(col)
	}
	p.attrCol = col
	return col
}

// Attribution returns the latency-attribution collector (nil unless
// EnableAttribution was called).
func (p *Platform) Attribution() *attr.Collector { return p.attrCol }

// Samplers returns the per-domain gauge samplers (empty unless
// EnableTimelines was called).
func (p *Platform) Samplers() []*metrics.Sampler { return p.samplers }

// wirePool hands every component the platform-wide request pool so steady
// state mints no new bus.Request values. A platform is stepped from a single
// goroutine, so one unsynchronized pool is safe.
func (p *Platform) wirePool() {
	for _, g := range p.gens {
		g.UseRequestPool(&p.pool)
	}
	for _, br := range p.bridges {
		br.UseRequestPool(&p.pool)
	}
	if p.onchip != nil {
		p.onchip.UseRequestPool(&p.pool)
	}
	if p.ctrl != nil {
		p.ctrl.UseRequestPool(&p.pool)
	}
	if p.core != nil {
		p.core.UseRequestPool(&p.pool)
	}
}

// MustBuild is Build that panics on error.
func MustBuild(spec Spec) *Platform {
	p, err := Build(spec)
	if err != nil {
		panic(err)
	}
	return p
}

// newFabric constructs one interconnect layer of the spec's protocol. All
// layers are memory-centric: every address decodes to target 0.
func (p *Platform) newFabric(name string) bus.Fabric {
	amap := bus.Single(0)
	switch p.Spec.Protocol {
	case AHB:
		return ahb.New(name, ahb.Config{BytesPerBeat: 8}, amap)
	case AXI:
		return axi.New(name, axi.Config{MaxOutstanding: p.Spec.MaxOutstanding, BytesPerBeat: 8}, amap)
	default:
		return stbus.NewNode(name, stbus.Config{
			Type:               p.Spec.STBusType,
			MaxOutstanding:     p.Spec.MaxOutstanding,
			MessageArbitration: !p.Spec.NoMessageArbitration,
			BytesPerBeat:       8,
		}, amap)
	}
}

// clusterBridgeConfig returns the bridge used between a cluster layer and
// the central node: the proprietary split-capable GenConv for STBus
// platforms, the lightweight blocking implementation for AHB and AXI
// (paper §3.2: those bridges "implement basic bridging functionality").
func (p *Platform) clusterBridgeConfig() bridge.Config {
	lat := p.Spec.BridgeLatency
	if lat <= 0 {
		lat = 1
	}
	if p.Spec.Protocol == STBus {
		cfg := bridge.GenConv(lat)
		cfg.MaxOutstanding = p.Spec.MaxOutstanding
		return cfg
	}
	return bridge.Lightweight(lat)
}

// buildMemory attaches the selected memory subsystem to the central node.
func (p *Platform) buildMemory() error {
	switch p.Spec.Memory {
	case OnChip:
		p.onchip = mem.New("shmem", mem.Config{
			WaitStates: p.Spec.OnChipWaitStates,
			ReqDepth:   1, // single-slot buffering (paper §4.2)
			RespDepth:  p.Spec.TargetRespDepth,
		})
		p.centralFab.AttachTarget(p.onchip.Port())
		return nil
	case LMIDDR:
		cfg := p.Spec.LMI
		p.ctrl = lmi.New("lmi", cfg)
		if p.Spec.Protocol == STBus {
			// the LMI is STBus-native: direct attach
			p.centralFab.AttachTarget(p.ctrl.Port())
			return nil
		}
		// Other protocols need a conversion bridge in front of the
		// LMI's native STBus interface; whether it supports split
		// transactions is the lever of §4.2.
		var bcfg bridge.Config
		if p.Spec.SplitLMIBridge {
			bcfg = bridge.GenConv(1)
			if p.Spec.Protocol == AHB {
				// AHB consumes responses strictly in issue order
				// (non-split bus): the split converter must reorder
				// responses back into request order.
				bcfg.InOrderUpstream = true
			}
		} else {
			bcfg = bridge.Lightweight(1)
		}
		bcfg.SyncCycles = 0 // same clock domain
		br := bridge.New("lmi_bridge", bcfg, p.CentralClk, p.CentralClk)
		p.bridges["lmi_bridge"] = br
		lmiNode := stbus.NewNode("lmi_node", stbus.Config{
			Type: stbus.Type3, MaxOutstanding: 8, BytesPerBeat: 8,
		}, bus.Single(0))
		p.fabrics = append(p.fabrics, fabricEntry{lmiNode, "central"})
		p.centralFab.AttachTarget(br.TargetPort())
		lmiNode.AttachInitiator(br.InitiatorPort())
		lmiNode.AttachTarget(p.ctrl.Port())
		p.regCentral("central", br.TargetSide)
		p.regCentral("central", br.InitiatorSide)
		p.regCentral("central", lmiNode)
		return nil
	default:
		return fmt.Errorf("platform: unknown memory kind %d", p.Spec.Memory)
	}
}

// buildClusters instantiates the traffic-generating subsystem in the
// selected topology.
func (p *Platform) buildClusters() error {
	clusters := referenceWorkload(p.Spec)
	origin := 0
	switch p.Spec.Topology {
	case Collapsed:
		// every actor directly on the central node
		for _, cl := range clusters {
			for _, ipCfg := range cl.ips {
				gen, err := p.newInitiator(ipCfg, p.CentralClk, origin)
				if err != nil {
					return err
				}
				origin++
				p.centralFab.AttachInitiator(gen.Port())
				p.regCentral("central", gen)
				p.gens = append(p.gens, gen)
				p.genCluster = append(p.genCluster, cl.name)
				p.genClk = append(p.genClk, p.CentralClk)
			}
		}
	case Distributed:
		for _, cl := range clusters {
			freq := cl.freqMHz
			if freq <= 0 {
				freq = ClusterMHz
			}
			clk := p.Kernel.NewClock(cl.name, freq)
			fab := p.newFabric(cl.name)
			p.fabrics = append(p.fabrics, fabricEntry{fab, cl.name})
			br := bridge.New(cl.name+"_br", p.clusterBridgeConfig(), clk, p.CentralClk)
			p.bridges[cl.name+"_br"] = br
			fab.AttachTarget(br.TargetPort())
			p.centralFab.AttachInitiator(br.InitiatorPort())
			for _, ipCfg := range cl.ips {
				gen, err := p.newInitiator(ipCfg, clk, origin)
				if err != nil {
					return err
				}
				origin++
				fab.AttachInitiator(gen.Port())
				clk.Register(gen)
				p.gens = append(p.gens, gen)
				p.genCluster = append(p.genCluster, cl.name)
				p.genClk = append(p.genClk, clk)
			}
			clk.Register(fab)
			clk.Register(br.TargetSide)
			p.regCentral(cl.name, br.InitiatorSide)
			p.clusterFab = append(p.clusterFab, fab)
		}
	default:
		return fmt.Errorf("platform: unknown topology %d", p.Spec.Topology)
	}
	return nil
}

// newInitiator builds the traffic source for one IP slot: the live generator
// normally, or — when the spec carries a replay trace — the trace-driven
// replayer fed from the stream recorded at the same-named IP. The replayer
// inherits the IP's port depths, so the fabric sees an identical interface.
func (p *Platform) newInitiator(ipCfg iptg.Config, clk *sim.Clock, origin int) (Initiator, error) {
	if p.Spec.Replay == nil {
		return iptg.New(ipCfg, clk, p.newIDSource(origin), origin)
	}
	st := p.Spec.Replay.Stream(ipCfg.Name)
	if st == nil {
		return nil, fmt.Errorf("platform: replay trace %q has no stream for initiator %q (trace streams: %v)",
			p.Spec.Replay.Platform, ipCfg.Name, p.Spec.Replay.StreamNames())
	}
	return replay.New(replay.Config{
		Stream:        st,
		Mode:          p.Spec.ReplayMode,
		Outstanding:   p.Spec.ReplayOutstanding,
		PortReqDepth:  ipCfg.PortReqDepth,
		PortRespDepth: ipCfg.PortRespDepth,
	}, clk, p.newIDSource(origin), origin)
}

// AttachCapture installs the capture's per-initiator stream probes on every
// traffic-source port, recording the full transaction stimulus of the run
// (issue cycle, opcode, address, burst shape, completion latency). Call
// after Build and before Run; the probes record inline with no per-event
// allocation in steady state, so TestZeroAllocSteadyState holds with capture
// enabled. Capture composes with replay: capturing a replayed run is how the
// round-trip determinism suite proves bit-identical reproduction.
func (p *Platform) AttachCapture(c *tracecap.Capture) {
	for i, g := range p.gens {
		// Tee over the always-on stall tracker rather than displacing it —
		// a port has a single Probe slot.
		g.Port().Probe = bus.TeeProbes(g.Port().Probe, c.Probe(g.Name(), p.genClk[i].PeriodPS()))
	}
	p.capture = c
}

// Capture returns the attached trace capture (nil unless AttachCapture was
// called).
func (p *Platform) Capture() *tracecap.Capture { return p.capture }

// buildDSP adds the ST220-class core behind its upsize (32->64 bit) and
// frequency (400->250 MHz) converter.
func (p *Platform) buildDSP() {
	const mb = 1 << 20
	p.CPUClk = p.Kernel.NewClock("cpu", CPUMHz)
	iters := p.Spec.DSPIterations
	if iters <= 0 {
		iters = 1 << 40 // effectively endless background interference
	}
	// Default 64 KiB working set per array: larger than the default
	// 32 KiB D-cache, so the stream thrashes and interferes throughout.
	ws := uint64(64 << 10)
	if p.Spec.DSPWorkingSetKB > 0 {
		ws = uint64(p.Spec.DSPWorkingSetKB) << 10
	}
	prog := dspcore.StreamKernelWS(30*mb, 34*mb, iters, 32, ws)
	coreCfg := dspcore.DefaultConfig("st220")
	if p.Spec.DSPDCacheKB > 0 {
		coreCfg.DCache.SizeBytes = p.Spec.DSPDCacheKB << 10
	}
	p.core = dspcore.MustNew(coreCfg, prog, p.CPUClk, p.newIDSource(dspOrigin), dspOrigin)

	var convCfg bridge.Config
	if p.Spec.Protocol == STBus {
		convCfg = bridge.GenConv(1)
	} else {
		convCfg = bridge.Lightweight(1)
	}
	convCfg.SrcBytesPerBeat = 4
	convCfg.DstBytesPerBeat = 8
	conv := bridge.New("st220_conv", convCfg, p.CPUClk, p.CentralClk)
	p.bridges["st220_conv"] = conv

	// A 1x1 node connects the core's initiator port to the converter's
	// target side (point-to-point wiring at the core interface).
	link := stbus.NewNode("st220_link", stbus.Config{
		Type: stbus.Type3, MaxOutstanding: 4, BytesPerBeat: 4,
	}, bus.Single(0))
	p.dspLink = link
	p.fabrics = append(p.fabrics, fabricEntry{link, "cpu"})
	link.AttachInitiator(p.core.Port())
	link.AttachTarget(conv.TargetPort())
	p.centralFab.AttachInitiator(conv.InitiatorPort())

	p.CPUClk.Register(p.core)
	p.CPUClk.Register(link)
	p.CPUClk.Register(conv.TargetSide)
	p.regCentral("cpu", conv.InitiatorSide)
}

// Initiators returns the platform's traffic sources (live generators or
// trace-driven replayers), in attachment order.
func (p *Platform) Initiators() []Initiator { return p.gens }

// Generators returns the platform's traffic sources. Deprecated alias of
// Initiators, kept for callers predating trace replay.
func (p *Platform) Generators() []Initiator { return p.gens }

// Core returns the DSP core (nil when WithDSP is false).
func (p *Platform) Core() *dspcore.Core { return p.core }

// Controller returns the LMI controller (nil for on-chip memory).
func (p *Platform) Controller() *lmi.Controller { return p.ctrl }

// OnChipMemory returns the shared memory (nil for the LMI variant).
func (p *Platform) OnChipMemory() *mem.Memory { return p.onchip }

// Bridge returns a bridge by name (nil if absent).
func (p *Platform) Bridge(name string) *bridge.Bridge { return p.bridges[name] }

// CentralFabric returns the central interconnect.
func (p *Platform) CentralFabric() bus.Fabric { return p.centralFab }
