package platform

import "testing"

// benchRun builds the scale-0.25 reference platform (optionally with
// attribution) and runs it to drain; cmd/bench measures the same pair with
// an op-interleaved minimum estimator — these exist for profiling the
// attribution hot path in isolation (go test -bench RunPhase -cpuprofile).
func benchRun(b *testing.B, withAttr bool) {
	for i := 0; i < b.N; i++ {
		s := DefaultSpec()
		s.WorkloadScale = 0.25
		p := MustBuild(s)
		if withAttr {
			p.EnableAttribution(0)
		}
		if r := p.Run(5e12); !r.Done {
			b.Fatal("run did not drain")
		}
	}
}

func BenchmarkRunPhaseBare(b *testing.B) { benchRun(b, false) }
func BenchmarkRunPhaseAttr(b *testing.B) { benchRun(b, true) }
