package platform

import (
	"encoding/json"
	"io"

	"mpsocsim/internal/attr"
	"mpsocsim/internal/bridge"
	mpio "mpsocsim/internal/io"
	"mpsocsim/internal/iptg"
	"mpsocsim/internal/lmi"
	"mpsocsim/internal/metrics"
)

// ReportSchema identifies the JSON run-report layout. Consumers must check
// it before interpreting the rest of the document. The version is bumped
// when a field changes meaning or disappears; purely additive changes keep
// it.
//
// /2 added the optional "attribution" section (per-initiator × per-phase
// latency breakdown) and the timeline "dropped" counters; every /1 field is
// unchanged. The optional "deadlines" section (I/O deadline accounting) and
// the spec's io_* fields are additive to /2.
const ReportSchema = "mpsocsim.report/2"

// SpecReport is the JSON-stable description of the run's configuration: the
// knobs that determine the run, flattened to plain values. A replay spec is
// described by its mode and stream names — the recorded events themselves
// are the run's *input* and would dwarf the report.
type SpecReport struct {
	Platform string `json:"platform"`
	Protocol string `json:"protocol"`
	Topology string `json:"topology"`
	Memory   string `json:"memory"`

	STBusType            string  `json:"stbus_type,omitempty"`
	MaxOutstanding       int     `json:"max_outstanding"`
	TargetRespDepth      int     `json:"target_resp_depth"`
	SplitLMIBridge       bool    `json:"split_lmi_bridge,omitempty"`
	NoMessageArbitration bool    `json:"no_message_arbitration,omitempty"`
	BridgeLatency        int     `json:"bridge_latency,omitempty"`
	OnChipWaitStates     int     `json:"onchip_wait_states,omitempty"`
	WithDSP              bool    `json:"with_dsp,omitempty"`
	DSPDCacheKB          int     `json:"dsp_dcache_kb,omitempty"`
	DSPWorkingSetKB      int     `json:"dsp_working_set_kb,omitempty"`
	WorkloadScale        float64 `json:"workload_scale"`
	OutstandingOverride  int     `json:"outstanding_override,omitempty"`
	ForceNonPostedWrites bool    `json:"force_non_posted_writes,omitempty"`
	TwoPhase             bool    `json:"two_phase,omitempty"`
	Seed                 uint64  `json:"seed"`

	Replay        bool     `json:"replay,omitempty"`
	ReplayMode    string   `json:"replay_mode,omitempty"`
	ReplayStreams []string `json:"replay_streams,omitempty"`

	IO                bool  `json:"io,omitempty"`
	IODMADescriptors  int   `json:"io_dma_descriptors,omitempty"`
	IODMABurstBeats   int   `json:"io_dma_burst_beats,omitempty"`
	IOIRQAgents       int   `json:"io_irq_agents,omitempty"`
	IOIRQPeriodCycles int64 `json:"io_irq_period_cycles,omitempty"`
	IOIRQDeadline     int64 `json:"io_irq_deadline_cycles,omitempty"`
	IOIRQEvents       int   `json:"io_irq_events,omitempty"`
	IOAllocOps        int   `json:"io_alloc_ops,omitempty"`
}

// DSPReport is the core's slice of the report.
type DSPReport struct {
	Cycles int64   `json:"cycles"`
	CPI    float64 `json:"cpi"`
}

// Report is the full machine-readable run report: the schema version, the
// flattened spec, the run outcome, the per-subsystem statistics the text
// summary prints, and the complete metrics snapshot (every registered
// counter, gauge, histogram and sampled timeline).
type Report struct {
	Schema        string     `json:"schema"`
	Spec          SpecReport `json:"spec"`
	Done          bool       `json:"done"`
	Stalled       bool       `json:"stalled,omitempty"`
	ExecPS        int64      `json:"exec_ps"`
	CentralCycles int64      `json:"central_cycles"`
	// ResumedFromCycle is the central-clock cycle the run was restored from
	// a checkpoint at; absent for a run started from scratch. Additive to
	// report/2 — every other field keeps its meaning (cumulative figures
	// still cover the whole run from cycle 0).
	ResumedFromCycle int64                        `json:"resumed_from_cycle,omitempty"`
	Issued           int64                        `json:"issued"`
	Completed        int64                        `json:"completed"`
	TotalBytes       int64                        `json:"total_bytes"`
	ThroughputMBps   float64                      `json:"throughput_mbps"`
	MemUtilization   float64                      `json:"mem_utilization"`
	LMI              *lmi.Stats                   `json:"lmi,omitempty"`
	DSP              *DSPReport                   `json:"dsp,omitempty"`
	IPs              map[string][]iptg.AgentStats `json:"ips"`
	// Deadlines is the per-device deadline accounting of the interrupt-driven
	// I/O agents, present when the I/O subsystem is enabled. Additive to
	// report/2.
	Deadlines []mpio.DeadlineStats    `json:"deadlines,omitempty"`
	Bridges   map[string]bridge.Stats `json:"bridges,omitempty"`
	Metrics   *metrics.Snapshot       `json:"metrics,omitempty"`
	// Attribution is the per-initiator × per-phase latency breakdown,
	// present when the run was executed with attribution enabled.
	Attribution *attr.Snapshot `json:"attribution,omitempty"`
}

// Report assembles the schema-versioned run report from the result.
func (r Result) Report() Report {
	s := r.Spec
	sr := SpecReport{
		Platform:             s.Name(),
		Protocol:             s.Protocol.String(),
		Topology:             s.Topology.String(),
		Memory:               s.Memory.String(),
		MaxOutstanding:       s.MaxOutstanding,
		TargetRespDepth:      s.TargetRespDepth,
		SplitLMIBridge:       s.SplitLMIBridge,
		NoMessageArbitration: s.NoMessageArbitration,
		BridgeLatency:        s.BridgeLatency,
		OnChipWaitStates:     s.OnChipWaitStates,
		WithDSP:              s.WithDSP,
		DSPDCacheKB:          s.DSPDCacheKB,
		DSPWorkingSetKB:      s.DSPWorkingSetKB,
		WorkloadScale:        s.WorkloadScale,
		OutstandingOverride:  s.OutstandingOverride,
		ForceNonPostedWrites: s.ForceNonPostedWrites,
		TwoPhase:             s.TwoPhase,
		Seed:                 s.Seed,
	}
	if s.Protocol == STBus {
		sr.STBusType = s.STBusType.String()
	}
	if s.Replay != nil {
		sr.Replay = true
		sr.ReplayMode = s.ReplayMode.String()
		sr.ReplayStreams = s.Replay.StreamNames()
	}
	if s.IO.Enable {
		prm := s.IO.effective(s.WorkloadScale)
		sr.IO = true
		if prm.dma {
			sr.IODMADescriptors = prm.dmaDescriptors
			sr.IODMABurstBeats = prm.dmaBurstBeats
		}
		sr.IOIRQAgents = prm.irqAgents
		if prm.irqAgents > 0 {
			sr.IOIRQPeriodCycles = prm.irqPeriod
			sr.IOIRQDeadline = prm.irqDeadline
			sr.IOIRQEvents = prm.irqEvents
		}
		if prm.alloc {
			sr.IOAllocOps = prm.allocOps
		}
	}
	rep := Report{
		Schema:           ReportSchema,
		Spec:             sr,
		Done:             r.Done,
		Stalled:          r.Stalled,
		ExecPS:           r.ExecPS,
		CentralCycles:    r.CentralCycles,
		ResumedFromCycle: r.ResumedFromCycle,
		Issued:           r.Issued,
		Completed:        r.Completed,
		TotalBytes:       r.TotalBytes,
		ThroughputMBps:   r.ThroughputMBps(),
		MemUtilization:   r.MemUtilization,
		IPs:              r.IPs,
		Deadlines:        r.Deadlines,
		Bridges:          r.Bridges,
		Metrics:          r.Metrics,
		Attribution:      r.Attribution,
	}
	if r.Spec.Memory == LMIDDR {
		l := r.LMI
		rep.LMI = &l
	}
	if r.DSP.Present {
		rep.DSP = &DSPReport{Cycles: r.DSP.Cycles, CPI: r.DSP.CPI}
	}
	return rep
}

// WriteJSON renders the run report as indented JSON. Map keys serialize in
// sorted order and instruments enumerate in registration order, so two
// identical runs produce byte-identical documents.
func (r Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Report())
}
