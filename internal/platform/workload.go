package platform

import "mpsocsim/internal/iptg"

// clusterSpec describes one functional cluster of the reference platform.
// Each cluster runs its own clock domain (the heterogeneity the paper's
// Fig.1 platform exhibits); the GenConv/lightweight bridges perform the
// frequency adaptation toward the 250 MHz central node.
type clusterSpec struct {
	name    string
	freqMHz float64
	ips     []iptg.Config
}

// scale multiplies a count by the workload scale, minimum 1.
func scale(n int64, f float64) int64 {
	v := int64(float64(n) * f)
	if v < 1 {
		v = 1
	}
	return v
}

// referenceWorkload builds the five functional clusters of the Fig.1-style
// platform: video decrypting, video decoding, audio + generic DMA, image
// resizing, and the heavily loaded DMA cluster (N5). Address windows are
// disjoint slices of the unified memory so each stream has its own SDRAM
// row locality, as in the real memory-centric platform.
//
// With twoPhase set, every agent runs two regimes: an intense phase with
// short gaps followed by a lower-intensity but burstier phase — the
// application lifetime Fig.6 dissects.
func referenceWorkload(spec Spec) []clusterSpec {
	f := spec.WorkloadScale
	seed := spec.Seed

	phases := func(count int64, gapA, gapB float64, bmin, bmax int, read float64) []iptg.Phase {
		if !spec.TwoPhase {
			return []iptg.Phase{{Count: scale(count, f), GapMean: gapA, BurstMin: bmin, BurstMax: bmax, ReadFrac: read}}
		}
		return []iptg.Phase{
			{Count: scale(count*2/3, f), GapMean: gapA, BurstMin: bmin, BurstMax: bmax, ReadFrac: read},
			{Count: scale(count/3, f), GapMean: gapB, BurstMin: bmin, BurstMax: bmax, ReadFrac: read},
		}
	}

	const mb = 1 << 20
	clusters := []clusterSpec{
		{
			name: "n1_decrypt", freqMHz: 166,
			ips: []iptg.Config{{
				Name: "decrypt",
				Agents: []iptg.AgentConfig{
					{
						Name:        "stream_in",
						Phases:      phases(360, 0, 54, 8, 16, 1.0),
						Outstanding: 4,
						RegionBase:  0 * mb, RegionSize: 2 * mb,
						Pattern: iptg.Sequential,
						MsgLen:  4,
					},
					{
						Name:        "stream_out",
						Phases:      phases(360, 0, 54, 8, 16, 0.0),
						Outstanding: 4,
						RegionBase:  2 * mb, RegionSize: 2 * mb,
						Pattern:      iptg.Sequential,
						MsgLen:       4,
						PostedWrites: true,
						After:        "stream_in", AfterCount: 8,
					},
				},
				BytesPerBeat: 8,
				Seed:         seed ^ 0x11,
			}},
		},
		{
			name: "n2_decode", freqMHz: 200,
			ips: []iptg.Config{{
				Name: "decoder",
				Agents: []iptg.AgentConfig{
					{
						Name:        "ref_fetch",
						Phases:      phases(480, 0, 42, 4, 8, 1.0),
						Outstanding: 6,
						RegionBase:  4 * mb, RegionSize: 4 * mb,
						Pattern: iptg.Random,
						MsgLen:  2,
					},
					{
						Name:        "frame_out",
						Phases:      phases(300, 1, 60, 8, 16, 0.0),
						Outstanding: 4,
						RegionBase:  8 * mb, RegionSize: 2 * mb,
						Pattern:      iptg.Sequential,
						MsgLen:       4,
						PostedWrites: true,
						After:        "ref_fetch", AfterCount: 16,
					},
					{
						Name:        "ctrl",
						Phases:      phases(60, 40, 360, 1, 2, 0.7),
						Outstanding: 1,
						RegionBase:  10 * mb, RegionSize: mb / 4,
						Pattern: iptg.Random,
					},
				},
				BytesPerBeat: 8,
				Seed:         seed ^ 0x22,
			}},
		},
		{
			name: "n3_audio", freqMHz: 133,
			ips: []iptg.Config{
				{
					Name: "audio",
					Agents: []iptg.AgentConfig{{
						Name:        "pcm",
						Phases:      phases(180, 12, 180, 2, 4, 0.6),
						Outstanding: 2,
						RegionBase:  11 * mb, RegionSize: mb,
						Pattern: iptg.Sequential,
					}},
					BytesPerBeat: 8,
					Seed:         seed ^ 0x33,
				},
				{
					Name: "gdma",
					Agents: []iptg.AgentConfig{{
						Name:        "copy",
						Phases:      phases(240, 1, 72, 8, 16, 0.7),
						Outstanding: 4,
						RegionBase:  12 * mb, RegionSize: 2 * mb,
						Pattern: iptg.Sequential,
						MsgLen:  4,
					}},
					BytesPerBeat: 8,
					Seed:         seed ^ 0x44,
				},
			},
		},
		{
			name: "n4_resize", freqMHz: 166,
			ips: []iptg.Config{{
				Name: "resizer",
				Agents: []iptg.AgentConfig{
					{
						Name:        "line_in",
						Phases:      phases(300, 1, 60, 4, 8, 1.0),
						Outstanding: 4,
						RegionBase:  14 * mb, RegionSize: 2 * mb,
						Pattern: iptg.Strided,
						Stride:  0x400,
					},
					{
						Name:        "line_out",
						Phases:      phases(300, 1, 60, 4, 8, 0.0),
						Outstanding: 4,
						RegionBase:  16 * mb, RegionSize: 2 * mb,
						Pattern:      iptg.Sequential,
						PostedWrites: true,
						After:        "line_in", AfterCount: 4,
					},
				},
				BytesPerBeat: 8,
				Seed:         seed ^ 0x55,
			}},
		},
		{
			// N5 — the most heavily congested cluster, removed in the
			// collapsed variants.
			name: "n5_dma", freqMHz: 250,
			ips: []iptg.Config{
				{
					Name: "dma1",
					Agents: []iptg.AgentConfig{{
						Name:        "bulk",
						Phases:      phases(900, 0, 24, 8, 16, 0.75),
						Outstanding: 6,
						RegionBase:  18 * mb, RegionSize: 4 * mb,
						Pattern: iptg.Sequential,
						MsgLen:  4,
					}},
					BytesPerBeat: 8,
					Seed:         seed ^ 0x66,
				},
				{
					Name: "dma2",
					Agents: []iptg.AgentConfig{{
						Name:        "bulk",
						Phases:      phases(900, 0, 24, 8, 16, 0.75),
						Outstanding: 6,
						RegionBase:  22 * mb, RegionSize: 4 * mb,
						Pattern: iptg.Sequential,
						MsgLen:  4,
					}},
					BytesPerBeat: 8,
					Seed:         seed ^ 0x77,
				},
				{
					Name: "dma3",
					Agents: []iptg.AgentConfig{{
						Name:        "scatter",
						Phases:      phases(700, 0, 24, 4, 8, 0.75),
						Outstanding: 4,
						RegionBase:  26 * mb, RegionSize: 4 * mb,
						Pattern: iptg.Random,
					}},
					BytesPerBeat: 8,
					Seed:         seed ^ 0x88,
				},
			},
		},
	}
	if spec.OutstandingOverride > 0 || spec.ForceNonPostedWrites {
		for ci := range clusters {
			for ii := range clusters[ci].ips {
				for ai := range clusters[ci].ips[ii].Agents {
					a := &clusters[ci].ips[ii].Agents[ai]
					if spec.OutstandingOverride > 0 {
						a.Outstanding = spec.OutstandingOverride
					}
					if spec.ForceNonPostedWrites {
						a.PostedWrites = false
					}
				}
			}
		}
	}
	return clusters
}
