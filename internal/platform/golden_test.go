package platform

import (
	"testing"
	tq "testing/quick"

	"mpsocsim/internal/stbus"
)

// TestGoldenCycleCounts pins exact execution times for three reference
// configurations. These are regression anchors: the simulator is fully
// deterministic, so any change to these numbers means a behavioural change
// in some component — verify it is intentional (and re-baseline) before
// updating the constants.
func TestGoldenCycleCounts(t *testing.T) {
	cases := []struct {
		name string
		spec func() Spec
		want int64
	}{
		{
			name: "stbus-distributed-lmi",
			spec: func() Spec { return quick(STBus, Distributed, LMIDDR) },
			want: 12388,
		},
		{
			name: "ahb-distributed-onchip",
			spec: func() Spec { return quick(AHB, Distributed, OnChip) },
			want: 25805,
		},
		{
			name: "axi-collapsed-lmi",
			spec: func() Spec { return quick(AXI, Collapsed, LMIDDR) },
			want: 37541,
		},
		{
			name: "stbus-distributed-lmi-io",
			spec: func() Spec { return quickIO(STBus, Distributed, LMIDDR) },
			want: 23022,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := runCycles(t, tc.spec())
			if r.CentralCycles != tc.want {
				t.Errorf("golden cycle count drifted: got %d, want %d (re-baseline only if the change is intentional)",
					r.CentralCycles, tc.want)
			}
		})
	}
}

// Property: any valid spec combination at small scale builds, drains, and
// conserves transactions.
func TestPropertyRandomSpecs(t *testing.T) {
	prop := func(proto8, topo8, mem8, typ8 uint8, seed uint64, split, twoPhase, noMsg bool) bool {
		s := DefaultSpec()
		s.Protocol = Protocol(proto8 % 3)
		s.Topology = Topology(topo8 % 2)
		s.Memory = MemoryKind(mem8 % 2)
		s.STBusType = stbus.Type(int(typ8%3) + 1)
		s.SplitLMIBridge = split
		s.TwoPhase = twoPhase
		s.NoMessageArbitration = noMsg
		s.Seed = seed%1000 + 1
		s.WorkloadScale = 0.05
		p, err := Build(s)
		if err != nil {
			return false
		}
		r := p.Run(20e12)
		return r.Done && r.Issued == r.Completed && r.Issued > 0
	}
	if err := tq.Check(prop, &tq.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
