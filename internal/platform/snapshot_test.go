package platform

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"reflect"
	"testing"

	"mpsocsim/internal/snapshot"
	"mpsocsim/internal/tracecap"
)

// checkpointAt is the central-clock cycle the round-trip tests checkpoint
// at: mid-flight for every golden configuration (they drain between ~12k and
// ~38k central cycles).
const checkpointAt = 3000

// checkpointRun builds spec, applies the observability variant, runs to the
// checkpoint instant, snapshots, restores into a fresh platform (optionally
// re-sharded) and finishes the run there. It returns the final Result with
// ResumedFromCycle cleared — the one field that legitimately distinguishes a
// restored run — plus the rendered report/summary bytes and the encoded
// captured trace, shaped exactly like shardRun's returns so the two are
// directly comparable.
func checkpointRun(t *testing.T, spec Spec, shards int, prep func(*Platform) *tracecap.Capture) (Result, []byte, []byte) {
	t.Helper()
	p := MustBuild(spec)
	prep(p)
	if !p.RunToCycle(checkpointAt, 5e12) {
		t.Fatalf("%s drained before checkpoint cycle %d", spec.Name(), checkpointAt)
	}
	var buf bytes.Buffer
	if err := p.Snapshot(&buf); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	rp, err := Restore(spec, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if rp.ResumedCycles() < checkpointAt {
		t.Fatalf("restored at cycle %d, want >= %d", rp.ResumedCycles(), checkpointAt)
	}
	if shards > 1 {
		if err := rp.EnableSharding(shards); err != nil {
			t.Fatalf("EnableSharding(%d) after Restore: %v", shards, err)
		}
	}
	r := rp.Run(5e12)
	if !r.Done {
		t.Fatalf("restored %s did not drain (issued=%d completed=%d)", spec.Name(), r.Issued, r.Completed)
	}
	if r.ResumedFromCycle != rp.ResumedCycles() {
		t.Fatalf("Result.ResumedFromCycle = %d, want %d", r.ResumedFromCycle, rp.ResumedCycles())
	}
	r.ResumedFromCycle = 0
	var rep bytes.Buffer
	if err := r.WriteJSON(&rep); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteSummary(&rep); err != nil {
		t.Fatal(err)
	}
	var tb []byte
	if c := rp.Capture(); c != nil {
		var tbuf bytes.Buffer
		if _, err := c.Trace().WriteTo(&tbuf); err != nil {
			t.Fatal(err)
		}
		tb = tbuf.Bytes()
	}
	return r, rep.Bytes(), tb
}

// TestCheckpointRestoreBitIdentical is the checkpoint half of the
// serial-equivalence contract: for every golden configuration and every
// observability variant (plain, attribution, timelines, capture), a run
// interrupted by Snapshot/Restore at a mid-flight cycle must finish
// bit-identical to the uninterrupted run — the full Result, the rendered
// JSON report and text summary, and the captured transaction trace.
func TestCheckpointRestoreBitIdentical(t *testing.T) {
	for name, spec := range goldenSpecs() {
		for _, v := range shardVariants {
			ref, refRep, refTrace := shardRun(t, spec, 1, v.prep)
			t.Run(fmt.Sprintf("%s/%s", name, v.name), func(t *testing.T) {
				r, rep, tr := checkpointRun(t, spec, 1, v.prep)
				if !reflect.DeepEqual(r, ref) {
					t.Errorf("restored Result differs from uninterrupted (cycles %d vs %d, issued %d vs %d)",
						r.CentralCycles, ref.CentralCycles, r.Issued, ref.Issued)
				}
				if !bytes.Equal(rep, refRep) {
					t.Errorf("restored report/summary bytes differ from uninterrupted (%d vs %d bytes)", len(rep), len(refRep))
				}
				if !bytes.Equal(tr, refTrace) {
					t.Errorf("restored captured trace differs from uninterrupted (%d vs %d bytes)", len(tr), len(refTrace))
				}
			})
		}
	}
}

// TestCheckpointRestoreShardedBitIdentical extends the PR-6 conformance
// matrix across the restore boundary: a run checkpointed serially, restored
// and re-sharded into 2 or 4 shards must still finish bit-identical to the
// uninterrupted serial run.
func TestCheckpointRestoreShardedBitIdentical(t *testing.T) {
	for name, spec := range goldenSpecs() {
		for _, v := range shardVariants {
			ref, refRep, refTrace := shardRun(t, spec, 1, v.prep)
			for _, n := range []int{2, 4} {
				t.Run(fmt.Sprintf("%s/%s/shards=%d", name, v.name, n), func(t *testing.T) {
					r, rep, tr := checkpointRun(t, spec, n, v.prep)
					if !reflect.DeepEqual(r, ref) {
						t.Errorf("restored sharded Result differs from uninterrupted serial (cycles %d vs %d)",
							r.CentralCycles, ref.CentralCycles)
					}
					if !bytes.Equal(rep, refRep) {
						t.Errorf("restored sharded report differs from uninterrupted serial")
					}
					if !bytes.Equal(tr, refTrace) {
						t.Errorf("restored sharded captured trace differs from uninterrupted serial")
					}
				})
			}
		}
	}
}

// TestSnapshotDeterministic pins that snapshotting the same instant twice
// yields byte-identical streams (the property the experiment harness's
// content-addressed snapshot cache relies on), and that a restored platform
// re-snapshots to the same bytes.
func TestSnapshotDeterministic(t *testing.T) {
	spec := quick(STBus, Distributed, LMIDDR)
	p := MustBuild(spec)
	p.EnableAttribution(4)
	p.EnableTimelines(50, 0)
	if !p.RunToCycle(checkpointAt, 5e12) {
		t.Fatal("drained before checkpoint")
	}
	var a, b bytes.Buffer
	if err := p.Snapshot(&a); err != nil {
		t.Fatal(err)
	}
	if err := p.Snapshot(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two snapshots of the same instant differ")
	}
	rp, err := Restore(spec, bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var c bytes.Buffer
	if err := rp.Snapshot(&c); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Fatalf("restore-then-snapshot differs from the original (%d vs %d bytes)", len(c.Bytes()), len(a.Bytes()))
	}
}

// TestSnapshotValidation pins the refusal cases: sharded platforms and
// platforms with the CSV/VCD sampler cannot snapshot; restores reject a
// different spec, truncation and corruption with the sentinel errors.
func TestSnapshotValidation(t *testing.T) {
	spec := quick(STBus, Distributed, LMIDDR)

	t.Run("sharded-refuses", func(t *testing.T) {
		p := MustBuild(spec)
		if err := p.EnableSharding(2); err != nil {
			t.Fatal(err)
		}
		if err := p.Snapshot(&bytes.Buffer{}); err == nil {
			t.Fatal("Snapshot of a sharded platform should fail")
		}
	})
	t.Run("csv-sampler-refuses", func(t *testing.T) {
		p := MustBuild(spec)
		p.samplerAttached = true
		if err := p.Snapshot(&bytes.Buffer{}); err == nil {
			t.Fatal("Snapshot with AttachSampler should fail")
		}
	})

	p := MustBuild(spec)
	if !p.RunToCycle(checkpointAt, 5e12) {
		t.Fatal("drained before checkpoint")
	}
	var buf bytes.Buffer
	if err := p.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	t.Run("wrong-spec", func(t *testing.T) {
		other := spec
		other.Seed = spec.Seed + 1
		if _, err := Restore(other, bytes.NewReader(data)); err == nil {
			t.Fatal("Restore onto a different spec should fail")
		}
	})
	t.Run("bad-magic", func(t *testing.T) {
		bad := append([]byte(nil), data...)
		bad[0] ^= 0xff
		if _, err := Restore(spec, bytes.NewReader(bad)); !errors.Is(err, snapshot.ErrMagic) {
			t.Fatalf("want ErrMagic, got %v", err)
		}
	})
	t.Run("bad-version", func(t *testing.T) {
		bad := append([]byte(nil), data...)
		bad[len(snapshot.Magic)] = 0x7f
		if _, err := Restore(spec, bytes.NewReader(bad)); !errors.Is(err, snapshot.ErrVersion) {
			t.Fatalf("want ErrVersion, got %v", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		for _, cut := range []int{len(data) / 4, len(data) / 2, len(data) - 1} {
			if _, err := Restore(spec, bytes.NewReader(data[:cut])); err == nil {
				t.Fatalf("Restore of %d/%d bytes should fail", cut, len(data))
			}
		}
	})
	t.Run("trailing-garbage", func(t *testing.T) {
		bad := append(append([]byte(nil), data...), 0x00)
		if _, err := Restore(spec, bytes.NewReader(bad)); !errors.Is(err, snapshot.ErrCorrupt) {
			t.Fatalf("want ErrCorrupt for trailing bytes, got %v", err)
		}
	})
}

// TestRunToCycleDrainedWorkload pins RunToCycle's false return when the
// workload finishes before the checkpoint instant.
func TestRunToCycleDrainedWorkload(t *testing.T) {
	spec := quick(STBus, Distributed, LMIDDR)
	p := MustBuild(spec)
	if p.RunToCycle(1_000_000_000, 5e12) {
		t.Fatal("RunToCycle past the drain point should return false")
	}
	r := p.Run(5e12)
	if !r.Done {
		t.Fatal("finishing a drained run should report Done")
	}
}

// TestSnapshotEncodableAcrossConfigs snapshots every protocol × topology ×
// memory combination at several mid-run instants. It guards the encoder's
// reachability invariant: no component may hold a dangling pointer to a
// request already recycled through the pool (the walker panics on one), a
// bug class that is timing- and topology-dependent — the lightweight-bridge
// posted-write path only dangles on AXI platforms, for example.
func TestSnapshotEncodableAcrossConfigs(t *testing.T) {
	for _, proto := range []Protocol{STBus, AHB, AXI} {
		for _, topo := range []Topology{Distributed, Collapsed} {
			for _, mem := range []MemoryKind{OnChip, LMIDDR} {
				spec := quick(proto, topo, mem)
				t.Run(spec.Name(), func(t *testing.T) {
					p := MustBuild(spec)
					for c := int64(500); c <= 4000; c += 500 {
						if !p.RunToCycle(c, 5e12) {
							break
						}
						if err := p.Snapshot(io.Discard); err != nil {
							t.Fatalf("cycle %d: %v", c, err)
						}
					}
				})
			}
		}
	}
}
