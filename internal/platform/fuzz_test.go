package platform

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mpsocsim/internal/snapshot"
)

// fuzzSpec is the one configuration the snapshot fuzzer decodes against: the
// full platform (bridges, LMI controller, DDR model) with the I/O subsystem
// attached, so every section codec — including the DMA chain, IRQ ring and
// heap-allocator codecs — is on the decode path. Must stay in sync with the
// checked-in corpus under testdata/fuzz/FuzzSnapshotDecode — those seeds
// carry its fingerprint.
func fuzzSpec() Spec { return quickIO(STBus, Distributed, LMIDDR) }

// fuzzSnapshotBytes runs the fuzz spec to a mid-flight instant and returns
// the real snapshot stream — the seed that lets the mutation engine reach
// the component codecs instead of dying at the header.
func fuzzSnapshotBytes(tb testing.TB) []byte {
	p := MustBuild(fuzzSpec())
	if !p.RunToCycle(1500, 5e12) {
		tb.Fatal("fuzz spec drained before the seed checkpoint")
	}
	var buf bytes.Buffer
	if err := p.Snapshot(&buf); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzSnapshotDecode drives platform.Restore with arbitrary bytes. The
// decoder must never panic and never allocate unboundedly: every failure
// surfaces as an error wrapping one of the snapshot sentinels (ErrMagic,
// ErrVersion, ErrTruncated, ErrCorrupt) or as the spec-fingerprint refusal.
// Inputs it accepts restore to a platform paused at the checkpoint instant.
func FuzzSnapshotDecode(f *testing.F) {
	seed := fuzzSnapshotBytes(f)
	f.Add([]byte(nil))
	f.Add([]byte(snapshot.Magic))
	f.Add(append([]byte(snapshot.Magic), snapshot.Version))
	f.Add(seed)
	f.Add(seed[:len(seed)/2])
	// valid header, flipped byte mid-state: exercises the section codecs'
	// semantic validation rather than the header checks
	bad := append([]byte(nil), seed...)
	bad[len(bad)/2] ^= 0xff
	f.Add(bad)

	spec := fuzzSpec()
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Restore(spec, bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, snapshot.ErrMagic) && !errors.Is(err, snapshot.ErrVersion) &&
				!errors.Is(err, snapshot.ErrTruncated) && !errors.Is(err, snapshot.ErrCorrupt) &&
				!strings.Contains(err.Error(), "different spec") {
				t.Fatalf("error %v wraps no snapshot sentinel", err)
			}
			return
		}
		if p.ResumedCycles() != p.CentralClk.Cycles() {
			t.Fatalf("restored platform resumed at %d but central clock reads %d",
				p.ResumedCycles(), p.CentralClk.Cycles())
		}
	})
}

// TestWriteFuzzCorpus regenerates the checked-in seed corpus for
// FuzzSnapshotDecode (run with WRITE_FUZZ_CORPUS=1 after a snapshot format
// change — the seeds embed the fuzz spec's fingerprint and version byte, so
// stale ones degrade to header-only coverage).
func TestWriteFuzzCorpus(t *testing.T) {
	if os.Getenv("WRITE_FUZZ_CORPUS") == "" {
		t.Skip("set WRITE_FUZZ_CORPUS=1 to regenerate testdata/fuzz/FuzzSnapshotDecode")
	}
	seed := fuzzSnapshotBytes(t)
	trunc := seed[:len(seed)/2]
	flipped := append([]byte(nil), seed...)
	flipped[len(flipped)/2] ^= 0xff
	dir := filepath.Join("testdata", "fuzz", "FuzzSnapshotDecode")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, data := range map[string][]byte{
		"seed_empty":       nil,
		"seed_magic_only":  []byte(snapshot.Magic),
		"seed_header_only": append([]byte(snapshot.Magic), snapshot.Version),
		"seed_snapshot":    seed,
		"seed_truncated":   trunc,
		"seed_bitflip":     flipped,
	} {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
