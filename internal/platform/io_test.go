package platform

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	mpio "mpsocsim/internal/io"
)

// TestIOAllFabricsDrainAndConserve runs the I/O-enabled platform across every
// protocol × topology combination: the run must drain, conserve transactions,
// and produce consistent deadline accounting for both IRQ agents.
func TestIOAllFabricsDrainAndConserve(t *testing.T) {
	for _, proto := range []Protocol{STBus, AHB, AXI} {
		for _, topo := range []Topology{Distributed, Collapsed} {
			s := quickIO(proto, topo, LMIDDR)
			t.Run(s.Name(), func(t *testing.T) {
				r := runCycles(t, s)
				if len(r.Deadlines) != 2 {
					t.Fatalf("deadline rows = %d, want 2", len(r.Deadlines))
				}
				for _, ds := range r.Deadlines {
					if ds.Raised != ds.Serviced {
						t.Errorf("%s: raised=%d but serviced=%d after drain", ds.Device, ds.Raised, ds.Serviced)
					}
					if ds.Met+ds.Missed != ds.Serviced {
						t.Errorf("%s: met(%d)+missed(%d) != serviced(%d)", ds.Device, ds.Met, ds.Missed, ds.Serviced)
					}
					if ds.Serviced > 0 && ds.MaxSvcCycles < ds.P50SvcCycles {
						t.Errorf("%s: max service %d < p50 %d", ds.Device, ds.MaxSvcCycles, ds.P50SvcCycles)
					}
				}
				for _, name := range []string{"iodma0", "irq0", "irq1", "halloc"} {
					if _, ok := r.IPs[name]; !ok {
						t.Errorf("result has no IP stats for %q", name)
					}
				}
			})
		}
	}
}

// TestIODisableKnobs pins the negative-value semantics of the IOSpec knobs:
// each initiator family can be switched off independently (the `experiments
// io` scenario uses DMADescriptors < 0 as its storm-off control).
func TestIODisableKnobs(t *testing.T) {
	base := quickIO(STBus, Distributed, LMIDDR)

	t.Run("no-dma", func(t *testing.T) {
		s := base
		s.IO.DMADescriptors = -1
		r := runCycles(t, s)
		if _, ok := r.IPs["iodma0"]; ok {
			t.Error("DMADescriptors<0 still built the DMA engine")
		}
		if len(r.Deadlines) != 2 {
			t.Errorf("deadline rows = %d, want 2", len(r.Deadlines))
		}
	})
	t.Run("no-irq", func(t *testing.T) {
		s := base
		s.IO.IRQAgents = -1
		r := runCycles(t, s)
		if _, ok := r.IPs["irq0"]; ok {
			t.Error("IRQAgents<0 still built device agents")
		}
		if len(r.Deadlines) != 0 {
			t.Errorf("deadline rows = %d, want 0 without IRQ agents", len(r.Deadlines))
		}
	})
	t.Run("no-alloc", func(t *testing.T) {
		s := base
		s.IO.AllocOps = -1
		r := runCycles(t, s)
		if _, ok := r.IPs["halloc"]; ok {
			t.Error("AllocOps<0 still built the heap allocator")
		}
	})
}

// TestIOCheckpointMidDescriptorChain checkpoints the I/O platform at an
// instant where the DMA engine is provably mid-chain (some descriptors
// fetched, not done), restores, and requires the resumed run to finish
// bit-identical to the uninterrupted one — the in-flight descriptor state,
// the pending IRQ ring and the allocator's live-block table all survive the
// round trip.
func TestIOCheckpointMidDescriptorChain(t *testing.T) {
	spec := quickIO(STBus, Distributed, LMIDDR)

	findDMA := func(p *Platform) *mpio.Engine {
		t.Helper()
		for _, g := range p.gens {
			if en, ok := g.(*mpio.Engine); ok {
				return en
			}
		}
		t.Fatal("no DMA engine in the built platform")
		return nil
	}

	ref := MustBuild(spec)
	refRes := ref.Run(5e12)
	if !refRes.Done {
		t.Fatal("reference run did not drain")
	}

	p := MustBuild(spec)
	en := findDMA(p)
	var buf bytes.Buffer
	checkpointed := false
	for c := int64(500); c <= 20000; c += 250 {
		if !p.RunToCycle(c, 5e12) {
			break
		}
		if en.DescriptorsFetched() > 0 && !en.Done() {
			if err := p.Snapshot(&buf); err != nil {
				t.Fatalf("Snapshot at cycle %d: %v", c, err)
			}
			checkpointed = true
			break
		}
	}
	if !checkpointed {
		t.Fatal("never observed the DMA engine mid-chain — retune the probe window")
	}

	rp, err := Restore(spec, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	ren := findDMA(rp)
	if ren.DescriptorsFetched() != en.DescriptorsFetched() || ren.BytesMoved() != en.BytesMoved() {
		t.Fatalf("restored chain state differs: fetched %d/%d, moved %d/%d",
			ren.DescriptorsFetched(), en.DescriptorsFetched(), ren.BytesMoved(), en.BytesMoved())
	}
	res := rp.Run(5e12)
	if !res.Done {
		t.Fatal("restored run did not drain")
	}
	res.ResumedFromCycle = 0
	if !reflect.DeepEqual(res, refRes) {
		t.Fatalf("restored Result differs from uninterrupted (cycles %d vs %d, issued %d vs %d)",
			res.CentralCycles, refRes.CentralCycles, res.Issued, refRes.Issued)
	}
}

// TestIOReportSections pins the additive report surface: the "deadlines"
// section, the spec's io_* fields, and the I/O metrics families.
func TestIOReportSections(t *testing.T) {
	r := runCycles(t, quickIO(STBus, Distributed, LMIDDR))
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	dl, ok := doc["deadlines"].([]any)
	if !ok || len(dl) != 2 {
		t.Fatalf("deadlines section = %v, want 2 rows", doc["deadlines"])
	}
	row := dl[0].(map[string]any)
	for _, key := range []string{"device", "deadline_cycles", "raised", "serviced", "met", "missed"} {
		if _, ok := row[key]; !ok {
			t.Errorf("deadline row missing key %q", key)
		}
	}
	spec := doc["spec"].(map[string]any)
	for _, key := range []string{"io", "io_dma_descriptors", "io_irq_agents", "io_irq_deadline_cycles", "io_alloc_ops"} {
		if _, ok := spec[key]; !ok {
			t.Errorf("spec missing key %q", key)
		}
	}
	counters := doc["metrics"].(map[string]any)["counters"].([]any)
	names := map[string]bool{}
	for _, c := range counters {
		names[c.(map[string]any)["name"].(string)] = true
	}
	for _, want := range []string{
		"io.dma.iodma0.descriptors_fetched", "io.dma.iodma0.bytes_moved",
		"io.irq.irq0.events_raised", "io.irq.irq1.deadline_misses",
		"io.halloc.halloc.mallocs", "ip.iodma0.issued", "ip.irq0.issued", "ip.halloc.issued",
	} {
		if !names[want] {
			t.Errorf("report missing counter %q", want)
		}
	}

	var sum bytes.Buffer
	if err := r.WriteSummary(&sum); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(sum.Bytes(), []byte("mean_svc")) {
		t.Error("text summary has no deadline table")
	}
}
