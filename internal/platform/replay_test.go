package platform

import (
	"reflect"
	"strings"
	"testing"

	"mpsocsim/internal/replay"
	"mpsocsim/internal/tracecap"
)

// captureRun runs spec with a capture attached and returns the result and
// the recorded trace.
func captureRun(t *testing.T, s Spec) (Result, *tracecap.Trace) {
	t.Helper()
	p := MustBuild(s)
	c := tracecap.NewCapture(s.Name(), 0)
	p.AttachCapture(c)
	r := p.Run(5e12)
	if !r.Done {
		t.Fatalf("%s capture run did not drain", s.Name())
	}
	return r, c.Trace()
}

// TestCaptureReplayRoundTrip is the acceptance criterion of the capture/
// replay subsystem: capturing a reference STBus run and replaying the trace
// in timed mode on the same platform must reproduce the run bit-identically —
// the same total cycle count and, re-capturing the replay, the exact same
// trace (which subsumes identical per-initiator latency histograms).
func TestCaptureReplayRoundTrip(t *testing.T) {
	base := quick(STBus, Distributed, LMIDDR)
	ref, tr := captureRun(t, base)
	if tr.Events() == 0 || tr.Truncated() {
		t.Fatalf("degenerate capture: %d events, truncated=%v", tr.Events(), tr.Truncated())
	}

	// The trace must survive its own serialization: the replay consumes the
	// decoded form, so round-trip through the codec first.
	decoded, err := tracecap.Decode(tr.Encode())
	if err != nil {
		t.Fatal(err)
	}

	spec := base
	spec.Replay = decoded
	spec.ReplayMode = replay.Timed
	rep, tr2 := captureRun(t, spec)

	if rep.CentralCycles != ref.CentralCycles {
		t.Fatalf("timed replay diverged: %d cycles vs %d captured", rep.CentralCycles, ref.CentralCycles)
	}
	if rep.Issued != ref.Issued || rep.Completed != ref.Completed {
		t.Fatalf("transaction counts diverged: %d/%d vs %d/%d",
			rep.Issued, rep.Completed, ref.Issued, ref.Completed)
	}
	if !reflect.DeepEqual(tr2.Streams, tr.Streams) {
		for _, s := range tr.Streams {
			s2 := tr2.Stream(s.Name)
			if s2 == nil {
				t.Fatalf("replay lost stream %q", s.Name)
			}
			h, h2 := s.LatencyHistogram(), s2.LatencyHistogram()
			t.Logf("%s: events %d vs %d, mean %.2f vs %.2f, p90 %d vs %d",
				s.Name, len(s.Events), len(s2.Events), h.Mean(), h2.Mean(),
				h.Quantile(0.9), h2.Quantile(0.9))
		}
		t.Fatal("re-captured replay trace differs from the original capture")
	}
}

// TestReplayCrossFabricDrains checks the subsystem's purpose: a stimulus
// captured on the reference STBus platform drives the AHB and AXI variants
// to completion, in both scheduling modes.
func TestReplayCrossFabricDrains(t *testing.T) {
	_, tr := captureRun(t, quick(STBus, Distributed, LMIDDR))
	for _, proto := range []Protocol{AHB, AXI} {
		for _, mode := range []replay.Mode{replay.Timed, replay.Elastic} {
			s := quick(proto, Distributed, LMIDDR)
			s.Replay = tr
			s.ReplayMode = mode
			p := MustBuild(s)
			r := p.Run(5e12)
			if !r.Done {
				t.Errorf("%s %s replay did not drain (issued=%d completed=%d)",
					s.Name(), mode, r.Issued, r.Completed)
				continue
			}
			if r.Issued != tr.Events() {
				t.Errorf("%s %s replay issued %d, trace has %d", s.Name(), mode, r.Issued, tr.Events())
			}
		}
	}
}

// TestReplayCrossClockDomains replays into the collapsed topology, whose
// cluster initiators run in the central 250 MHz domain instead of the
// 200 MHz cluster domains they were captured in — the issue-cycle rescaling
// path.
func TestReplayCrossClockDomains(t *testing.T) {
	_, tr := captureRun(t, quick(STBus, Distributed, LMIDDR))
	s := quick(STBus, Collapsed, LMIDDR)
	s.Replay = tr
	s.ReplayMode = replay.Timed
	p := MustBuild(s)
	r := p.Run(5e12)
	if !r.Done {
		t.Fatalf("cross-domain replay did not drain (issued=%d completed=%d)", r.Issued, r.Completed)
	}
}

// TestReplayValidation exercises the build-time validation: a trace missing
// a stream for a workload initiator must be rejected with an error naming
// both the initiator and the streams the trace does have.
func TestReplayValidation(t *testing.T) {
	s := quick(STBus, Distributed, LMIDDR)
	s.Replay = &tracecap.Trace{
		Platform: "other",
		Streams: []*tracecap.Stream{
			{Name: "nobody", PeriodPS: 4000},
		},
	}
	_, err := Build(s)
	if err == nil {
		t.Fatal("trace with no matching streams accepted")
	}
	if !strings.Contains(err.Error(), "no stream for initiator") ||
		!strings.Contains(err.Error(), "nobody") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

// TestReplayDeterminism: two replays of the same trace are bit-identical
// Results, matching the determinism contract of live runs.
func TestReplayDeterminism(t *testing.T) {
	_, tr := captureRun(t, quick(STBus, Distributed, LMIDDR))
	mk := func() Result {
		s := quick(AHB, Distributed, LMIDDR)
		s.Replay = tr
		s.ReplayMode = replay.Timed
		return runCycles(t, s)
	}
	a, b := mk(), mk()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("replay runs diverged: %d vs %d cycles", a.CentralCycles, b.CentralCycles)
	}
}
