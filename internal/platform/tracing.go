package platform

import (
	"mpsocsim/internal/sim"
	"mpsocsim/internal/trace"
)

// AttachSampler registers a waveform-style sampler on the central clock,
// recording every periodCycles: the memory-subsystem input-queue occupancy
// (the LMI bus-interface FIFO for the LMI variant, the memory port queue
// otherwise), the total completed transactions, and each bridge's in-flight
// count. Call before Run; dump the sampler with trace.Sampler.WriteCSV.
func (p *Platform) AttachSampler(s *trace.Sampler, periodCycles int64) {
	if p.sharded {
		panic("platform: AttachSampler is incompatible with sharded execution")
	}
	// The closure reads generator and bridge state across every clock domain
	// from a central-clock hook, which sharded execution cannot allow;
	// EnableSharding refuses a platform with this sampler attached.
	p.samplerAttached = true
	if periodCycles <= 0 {
		periodCycles = 100
	}
	p.CentralClk.Register(&sim.ClockedFunc{OnEval: func() {
		now := p.CentralClk.Cycles()
		if now%periodCycles != 0 {
			return
		}
		switch {
		case p.ctrl != nil:
			s.Sample(now, "lmi_fifo", int64(p.ctrl.Port().Req.Len()))
		case p.onchip != nil:
			s.Sample(now, "mem_fifo", int64(p.onchip.Port().Req.Len()))
		}
		var completed int64
		for _, g := range p.gens {
			completed += g.Completed()
		}
		s.Sample(now, "completed", completed)
		for name, br := range p.bridges {
			s.Sample(now, "out_"+name, int64(br.Outstanding()))
		}
	}})
}
