package platform

import (
	"fmt"
	"testing"

	"mpsocsim/internal/stbus"
)

// TestNoDeadlockAcrossConfigurations sweeps a representative grid of
// protocol / topology / memory / STBus-type / bridge configurations at tiny
// scale and asserts every one drains — the progress watchdog turns any
// deadlock into a fast failure instead of a burned time budget.
func TestNoDeadlockAcrossConfigurations(t *testing.T) {
	for proto := 0; proto < 3; proto++ {
		for topo := 0; topo < 2; topo++ {
			for _, typ := range []stbus.Type{stbus.Type1, stbus.Type3} {
				for _, split := range []bool{false, true} {
					s := DefaultSpec()
					s.Protocol = Protocol(proto)
					s.Topology = Topology(topo)
					s.Memory = LMIDDR
					s.STBusType = typ
					s.SplitLMIBridge = split
					s.WorkloadScale = 0.05
					name := fmt.Sprintf("%s-%v-split%v", s.Name(), typ, split)
					t.Run(name, func(t *testing.T) {
						t.Parallel()
						p := MustBuild(s)
						r := p.Run(2e11)
						if r.Stalled {
							t.Fatalf("deadlock (issued=%d completed=%d)", r.Issued, r.Completed)
						}
						if !r.Done {
							t.Fatalf("budget exhausted (issued=%d completed=%d)", r.Issued, r.Completed)
						}
					})
				}
			}
		}
	}
}
