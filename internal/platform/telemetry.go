package platform

import (
	"sort"

	"mpsocsim/internal/bus"
	"mpsocsim/internal/metrics"
	"mpsocsim/internal/sim"
	"mpsocsim/internal/telemetry"
)

// DefaultTelemetryEvery is the snapshot cadence (central cycles) when the
// caller passes <= 0: ~4 us of simulated time at 250 MHz, a few thousand
// records for a typical run.
const DefaultTelemetryEvery = 1024

// EnableTelemetry attaches a live telemetry collector: every `every` central
// cycles the run loop snapshots the metrics registry and per-initiator
// counts into the collector's preallocated ring (DefaultTelemetryEvery when
// every <= 0, telemetry.DefaultRingCap rows when ringCap <= 0). Snapshots
// are taken at safe boundaries only — after a fully committed central-clock
// instant serially, after the window barrier when sharded — so the record
// stream of a sharded run is byte-identical to the serial one. Call after
// Build (or Restore: collectors are not part of a checkpoint) and before
// Run; idempotent, returning the existing collector on a second call.
func (p *Platform) EnableTelemetry(every int64, ringCap int) *telemetry.Collector {
	if p.tele != nil {
		return p.tele
	}
	if every <= 0 {
		every = DefaultTelemetryEvery
	}
	srcs := make([]telemetry.InitiatorSource, len(p.gens))
	for i, g := range p.gens {
		srcs[i] = g
	}
	p.tele = telemetry.NewCollector(p.Metrics, srcs, ringCap)
	p.teleEvery = every
	// First snapshot at the next cadence multiple strictly ahead of the
	// current cycle, so a restored run snapshots at exactly the instants
	// the uninterrupted run would.
	p.teleNext = (p.CentralClk.Cycles()/every + 1) * every
	p.teleLastCycle = -1
	return p.tele
}

// Telemetry returns the attached collector, nil until EnableTelemetry.
func (p *Platform) Telemetry() *telemetry.Collector { return p.tele }

// pollTelemetry is the run loops' per-step snapshot check. One nil check
// when telemetry is off, one compare when on; allocation-free either way
// (Collect writes into preallocated ring rows). The snapshot instant is the
// central edge of cycle teleNext, whose absolute time is exactly
// cycle*period — p.Kernel.Now() is not used because the platform kernel's
// clock is stale during a sharded run.
func (p *Platform) pollTelemetry() {
	if p.tele == nil {
		return
	}
	if c := p.CentralClk.Cycles(); c >= p.teleNext {
		p.teleLastCycle = c
		p.teleNext += p.teleEvery
		p.tele.Collect(c, c*p.CentralClk.PeriodPS())
	}
}

// finishTelemetry emits the final snapshot (the run's end state, at the last
// stepped instant — collected only if the cadence did not already sample
// this cycle) and marks the collector done. Called by Run once the run loop
// exits, after a sharded run has stamped its final instant back onto the
// platform kernel.
func (p *Platform) finishTelemetry() {
	if p.tele == nil {
		return
	}
	if c := p.CentralClk.Cycles(); c != p.teleLastCycle {
		p.teleLastCycle = c
		p.tele.Collect(c, p.Kernel.Now())
	}
	p.tele.Finish()
}

// attachStallTrackers installs the always-on run-health probes on every
// traffic-source port at Build time. Trackers are passive and
// allocation-free on the hot path; they exist so a wedged run can answer
// which transactions have been stuck the longest and when each clock domain
// last made progress (StallReport), whether or not telemetry was enabled.
func (p *Platform) attachStallTrackers() {
	p.stallTrackers = make([]*telemetry.PortTracker, len(p.gens))
	for i, g := range p.gens {
		depth := int(g.MaxConcurrent()) + 8
		if depth > 1024 || depth < 0 {
			depth = 1024
		}
		t := telemetry.NewPortTracker(g.Name(), p.genClk[i].Name(), depth)
		p.stallTrackers[i] = t
		g.Port().Probe = bus.TeeProbes(g.Port().Probe, t)
	}
}

// observeWatchdogCounters copies every registry counter into the
// preallocated watchdog baseline, demoting the old baseline to the previous
// slot first. The run loops call it at each watchdog observation that saw
// progress, so a stall report can show exactly which counters still moved
// during the final (wedged) window. Allocation-free (the two buffers swap).
func (p *Platform) observeWatchdogCounters() {
	p.wdCounters, p.wdPrevCounters = p.wdPrevCounters, p.wdCounters
	for i, c := range p.Metrics.Counters() {
		p.wdCounters[i] = metrics.CounterValue{Name: c.Name(), Value: c.Value()}
	}
	p.wdObservations++
	p.wdObservedCycle = p.CentralClk.Cycles()
}

// fifoState is the occupancy surface shared by request and beat queues.
type fifoState interface {
	Name() string
	Len() int
	Depth() int
}

func appendFifo(rows []telemetry.FifoFill, f fifoState) []telemetry.FifoFill {
	d := f.Depth()
	if d <= 0 {
		return rows
	}
	l := f.Len()
	return append(rows, telemetry.FifoFill{Name: f.Name(), Len: l, Depth: d, Fill: float64(l) / float64(d)})
}

func appendInitiatorPort(rows []telemetry.FifoFill, p *bus.InitiatorPort) []telemetry.FifoFill {
	return appendFifo(appendFifo(rows, p.Req), p.Resp)
}

func appendTargetPort(rows []telemetry.FifoFill, p *bus.TargetPort) []telemetry.FifoFill {
	return appendFifo(appendFifo(rows, p.Req), p.Resp)
}

// StallReport assembles the run-health forensics dump: the topFifos fullest
// FIFOs across every port of the platform (10 when <= 0), each initiator's
// oldest outstanding transaction, each clock domain's last-progress cycle
// and the counters that moved during the last watchdog window. Valid after
// Run returns with Stalled (watchdog fired, exit 2) or over budget (exit 3);
// works whether or not telemetry streaming was enabled.
func (p *Platform) StallReport(reason string, topFifos int) *telemetry.StallReport {
	if topFifos <= 0 {
		topFifos = 10
	}
	rep := &telemetry.StallReport{
		Reason: reason,
		Cycle:  p.CentralClk.Cycles(),
		TimePS: p.Kernel.Now(),
	}

	var fifos []telemetry.FifoFill
	for _, g := range p.gens {
		fifos = appendInitiatorPort(fifos, g.Port())
	}
	names := make([]string, 0, len(p.bridges))
	for name := range p.bridges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		br := p.bridges[name]
		fifos = appendTargetPort(fifos, br.TargetPort())
		fifos = appendInitiatorPort(fifos, br.InitiatorPort())
	}
	if p.onchip != nil {
		fifos = appendTargetPort(fifos, p.onchip.Port())
	}
	if p.ctrl != nil {
		fifos = appendTargetPort(fifos, p.ctrl.Port())
	}
	if p.core != nil {
		fifos = appendInitiatorPort(fifos, p.core.Port())
	}
	rep.Fifos = telemetry.SortFifos(fifos, topFifos)

	for i, g := range p.gens {
		rep.Issued += g.Issued()
		rep.Completed += g.Completed()
		t := p.stallTrackers[i]
		row := telemetry.InitiatorHealth{
			Name:              g.Name(),
			Clock:             p.genClk[i].Name(),
			Issued:            g.Issued(),
			Completed:         g.Completed(),
			InFlight:          t.InFlight(),
			LastIssueCycle:    t.LastIssueCycle(),
			LastCompleteCycle: t.LastCompleteCycle(),
		}
		if id, issuePS, ok := t.Oldest(); ok {
			row.OldestID = id
			row.OldestAgePS = rep.TimePS - issuePS
		}
		rep.Initiators = append(rep.Initiators, row)
	}

	// Per-clock-domain last progress, from the platform's own clock fields:
	// the kernel's clock list is rearranged by sharded adoption, but the
	// clock objects themselves keep counting.
	clocks := []*sim.Clock{p.CentralClk}
	seen := map[*sim.Clock]bool{p.CentralClk: true}
	for _, clk := range p.genClk {
		if !seen[clk] {
			seen[clk] = true
			clocks = append(clocks, clk)
		}
	}
	if p.CPUClk != nil && !seen[p.CPUClk] {
		clocks = append(clocks, p.CPUClk)
	}
	for _, clk := range clocks {
		d := telemetry.DomainHealth{Clock: clk.Name(), Cycles: clk.Cycles(), LastProgressCycle: -1}
		for i, t := range p.stallTrackers {
			if p.genClk[i] != clk {
				continue
			}
			if v := t.LastIssueCycle(); v > d.LastProgressCycle {
				d.LastProgressCycle = v
			}
			if v := t.LastCompleteCycle(); v > d.LastProgressCycle {
				d.LastProgressCycle = v
			}
		}
		rep.Domains = append(rep.Domains, d)
	}

	if p.wdObservations > 0 {
		// A run that ends on the exact cycle of a baseline refresh (whole-ms
		// budgets are often watchdog-window multiples) would diff a zero-
		// width window; use the previous baseline so the report still covers
		// one full window of movement.
		base := p.wdCounters
		if p.wdObservedCycle == rep.Cycle && p.wdObservations > 1 {
			base = p.wdPrevCounters
		}
		cur := make([]metrics.CounterValue, len(base))
		for i, c := range p.Metrics.Counters() {
			cur[i] = metrics.CounterValue{Name: c.Name(), Value: c.Value()}
		}
		rep.Moved = metrics.DiffCounters(cur, base)
	}
	return rep
}
