package platform

import (
	"fmt"
	"io"

	"mpsocsim/internal/attr"
	"mpsocsim/internal/bridge"
	mpio "mpsocsim/internal/io"
	"mpsocsim/internal/iptg"
	"mpsocsim/internal/lmi"
	"mpsocsim/internal/metrics"
	"mpsocsim/internal/stats"
)

// Result summarizes one platform run.
type Result struct {
	Spec Spec
	// Done is false when the run hit the time budget before the workload
	// drained.
	Done bool
	// Stalled marks a run aborted by the progress watchdog: no
	// transaction was issued or completed for a long window, i.e. the
	// configuration deadlocked rather than ran out of budget.
	Stalled bool
	// ExecPS is the execution time in picoseconds; CentralCycles the
	// same expressed in central-node cycles.
	ExecPS        int64
	CentralCycles int64
	// ResumedFromCycle is the central-clock cycle the platform was restored
	// at (0 for a run started from a fresh Build). All cumulative figures —
	// cycles, transactions, histograms — still cover the whole run from
	// cycle 0: a restored run carries the prefix's state with it.
	ResumedFromCycle int64

	Issued    int64
	Completed int64
	// TotalBytes is the payload moved by the traffic generators.
	TotalBytes int64

	// IPs holds per-generator agent statistics keyed by IP name.
	IPs map[string][]iptg.AgentStats
	// Bridges holds per-bridge statistics.
	Bridges map[string]bridge.Stats
	// MemUtilization is the busy fraction of the memory subsystem.
	MemUtilization float64
	// LMI carries the controller statistics (zero value for on-chip).
	LMI lmi.Stats
	// Monitor is the Fig.6 bus-interface monitor (nil for on-chip).
	Monitor *lmi.Monitor
	// DSP carries core statistics when the DSP is present.
	DSP struct {
		Present bool
		Cycles  int64
		CPI     float64
	}
	// Deadlines holds one row per deadline-tracked I/O agent (empty unless
	// the spec enables the I/O subsystem): events raised/serviced, deadline
	// met/miss counts and the service-latency shape.
	Deadlines []mpio.DeadlineStats
	// Metrics is the point-in-time snapshot of every registered instrument,
	// taken when the run finished. The text summary and the JSON report
	// render from it; it stays valid after the platform is gone.
	Metrics *metrics.Snapshot
	// Attribution is the per-initiator × per-phase latency breakdown (nil
	// unless EnableAttribution was called before the run).
	Attribution *attr.Snapshot
}

// Run executes the platform until the workload drains, maxPS of simulated
// time elapses, or the progress watchdog detects a stall (no transaction
// issued or completed over a long window — a deadlocked configuration).
func (p *Platform) Run(maxPS int64) Result {
	if p.tele != nil {
		p.tele.SetBudgetPS(maxPS)
		p.tele.SetShards(p.shards)
	}
	if p.sharded {
		return p.runSharded(maxPS)
	}
	drained, stalled, _ := p.runSerial(maxPS, -1)
	p.finishTelemetry()
	r := p.collect(drained)
	r.Stalled = stalled
	return r
}

// stallWindow is the progress watchdog's observation window in central
// cycles. It is generous: the slowest legitimate configurations move at
// least one transaction every few thousand central cycles.
const stallWindow = 200_000

// runSerial is the serial run loop, shared by Run and RunToCycle. It steps
// the kernel until the workload drains (completion is defined by the IP
// traffic draining; the DSP is background interference and never gates the
// run), maxPS elapses, the watchdog detects a stall, or — when stopAtCycle
// is >= 0 — the central clock completes stopAtCycle cycles (the checkpoint
// instant; paused reports that exit). The watchdog history lives in Platform
// fields, so a run split across checkpoint/restore observes progress at
// exactly the instants an uninterrupted run would.
func (p *Platform) runSerial(maxPS, stopAtCycle int64) (drained, stalled, paused bool) {
	pending := func() bool {
		for _, g := range p.gens {
			if !g.Done() {
				return true
			}
		}
		return false
	}
	progress := func() int64 {
		var n int64
		for _, g := range p.gens {
			n += g.Issued() + g.Completed()
		}
		return n
	}
	for pending() {
		if stopAtCycle >= 0 && p.CentralClk.Cycles() >= stopAtCycle {
			return false, false, true
		}
		if p.Kernel.Now() >= maxPS {
			return false, false, false
		}
		if !p.Kernel.Step() {
			return false, false, false
		}
		p.pollTelemetry()
		if c := p.CentralClk.Cycles(); c-p.wdLastCheck >= stallWindow {
			prog := progress()
			if prog == p.wdLastProg {
				return false, true, false
			}
			p.wdLastProg = prog
			p.wdLastCheck = c
			p.observeWatchdogCounters()
		}
	}
	return true, false, false
}

// RunToCycle steps the serial platform until the central clock completes at
// least `cycle` cycles, pausing at the first edge boundary past it — the
// quiescent instant to call Snapshot at. It returns true when the run paused
// with work remaining; false means the workload drained, the budget ran out
// or the watchdog fired before the checkpoint instant (finish with Run). Not
// supported on a sharded platform.
func (p *Platform) RunToCycle(cycle, maxPS int64) bool {
	if p.sharded {
		panic("platform: RunToCycle requires serial mode (checkpoint before EnableSharding)")
	}
	_, _, paused := p.runSerial(maxPS, cycle)
	return paused
}

func (p *Platform) collect(done bool) Result {
	r := Result{
		Spec:             p.Spec,
		Done:             done,
		ExecPS:           p.Kernel.Now(),
		CentralCycles:    p.CentralClk.Cycles(),
		ResumedFromCycle: p.resumedCycles,
		IPs:              map[string][]iptg.AgentStats{},
		Bridges:          map[string]bridge.Stats{},
	}
	for _, g := range p.gens {
		as := g.Stats()
		r.IPs[g.Name()] = as
		r.Issued += g.Issued()
		r.Completed += g.Completed()
		for _, a := range as {
			r.TotalBytes += a.Bytes
		}
	}
	for _, g := range p.gens {
		if dt, ok := g.(mpio.DeadlineTracker); ok {
			r.Deadlines = append(r.Deadlines, dt.DeadlineStats())
		}
	}
	for name, br := range p.bridges {
		r.Bridges[name] = br.Stats()
	}
	if p.onchip != nil {
		r.MemUtilization = p.onchip.Stats().Utilization()
	}
	if p.ctrl != nil {
		r.LMI = p.ctrl.Stats()
		r.MemUtilization = r.LMI.Utilization()
		r.Monitor = p.ctrl.Monitor()
	}
	if p.core != nil {
		cs := p.core.Stats()
		r.DSP.Present = true
		r.DSP.Cycles = cs.Cycles
		r.DSP.CPI = cs.CPI()
	}
	if p.Metrics != nil {
		r.Metrics = p.Metrics.Snapshot()
	}
	if p.attrCol != nil {
		r.Attribution = p.attrCol.Snapshot()
	}
	return r
}

// ExecMS returns the execution time in milliseconds.
func (r Result) ExecMS() float64 { return float64(r.ExecPS) / 1e9 }

// ThroughputMBps returns generator payload throughput in MB/s of simulated
// time.
func (r Result) ThroughputMBps() float64 {
	if r.ExecPS == 0 {
		return 0
	}
	return float64(r.TotalBytes) / (float64(r.ExecPS) / 1e12) / 1e6
}

// WriteSummary renders a human-readable run report.
func (r Result) WriteSummary(w io.Writer) error {
	fmt.Fprintf(w, "platform   : %s\n", r.Spec.Name())
	fmt.Fprintf(w, "done       : %v\n", r.Done)
	fmt.Fprintf(w, "exec time  : %.3f ms (%d central cycles)\n", r.ExecMS(), r.CentralCycles)
	fmt.Fprintf(w, "transactions: issued=%d completed=%d\n", r.Issued, r.Completed)
	fmt.Fprintf(w, "payload    : %.2f MB, %.1f MB/s\n", float64(r.TotalBytes)/1e6, r.ThroughputMBps())
	fmt.Fprintf(w, "memory util: %.1f%%\n", 100*r.MemUtilization)
	if r.Monitor != nil {
		full, storing, noreq, empty := r.fifoFracs()
		fmt.Fprintf(w, "lmi fifo   : full=%.1f%% storing=%.1f%% norequest=%.1f%% empty=%.1f%%\n",
			100*full, 100*storing, 100*noreq, 100*empty)
	}
	if r.DSP.Present {
		fmt.Fprintf(w, "dsp        : %d cycles, CPI %.2f\n", r.DSP.Cycles, r.DSP.CPI)
	}
	tbl := stats.NewTable("ip", "agent", "issued", "completed", "bytes", "mean_lat", "p90_lat", "max_lat")
	for _, name := range stats.SortedKeys(r.IPs) {
		for _, a := range r.IPs[name] {
			issued, completed, bytes := a.Issued, a.Completed, a.Bytes
			mean, p90, max := a.MeanLatency, a.P90Latency, a.MaxLatency
			// Source the row from the metrics snapshot when present; the
			// registry reads the same component counters and histograms, so
			// the rendering is byte-identical either way.
			if s := r.Metrics; s != nil {
				ap := "ip." + name + "." + a.Name + "."
				if v, ok := s.Counter(ap + "issued"); ok {
					issued = v
					completed, _ = s.Counter(ap + "completed")
					bytes, _ = s.Counter(ap + "bytes")
					if h := s.Histogram(ap + "latency"); h != nil {
						mean, p90, max = h.Mean, h.P90, h.Max
					}
				}
			}
			tbl.AddRow(name, a.Name,
				fmt.Sprint(issued), fmt.Sprint(completed), fmt.Sprint(bytes),
				fmt.Sprintf("%.1f", mean), fmt.Sprint(p90), fmt.Sprint(max))
		}
	}
	if err := tbl.Write(w); err != nil {
		return err
	}
	if len(r.Deadlines) > 0 {
		fmt.Fprintln(w)
		dtbl := stats.NewTable("device", "deadline", "raised", "serviced", "met", "missed", "mean_svc", "p90_svc", "max_svc")
		for _, ds := range r.Deadlines {
			dtbl.AddRow(ds.Device, fmt.Sprint(ds.DeadlineCycles),
				fmt.Sprint(ds.Raised), fmt.Sprint(ds.Serviced),
				fmt.Sprint(ds.Met), fmt.Sprint(ds.Missed),
				fmt.Sprintf("%.1f", ds.MeanSvcCycles), fmt.Sprint(ds.P90SvcCycles), fmt.Sprint(ds.MaxSvcCycles))
		}
		if err := dtbl.Write(w); err != nil {
			return err
		}
	}
	if len(r.Bridges) == 0 {
		return nil
	}
	fmt.Fprintln(w)
	btbl := stats.NewTable("bridge", "accepted", "blocked_cycles", "mean_res", "p90_res", "max_res")
	for _, name := range stats.SortedKeys(r.Bridges) {
		b := r.Bridges[name]
		accepted, blocked := b.Accepted, b.BlockedCycles
		mean, p90, max := b.MeanResidency, b.P90Residency, b.MaxResidency
		if s := r.Metrics; s != nil {
			bp := "bridge." + name + "."
			if v, ok := s.Counter(bp + "accepted"); ok {
				accepted = v
				blocked, _ = s.Counter(bp + "blocked_cycles")
				if h := s.Histogram(bp + "residency"); h != nil {
					mean, p90, max = h.Mean, h.P90, h.Max
				}
			}
		}
		btbl.AddRow(name, fmt.Sprint(accepted), fmt.Sprint(blocked),
			fmt.Sprintf("%.1f", mean), fmt.Sprint(p90), fmt.Sprint(max))
	}
	return btbl.Write(w)
}

// fifoFracs returns the Fig.6 lifetime fractions of the LMI bus-interface
// FIFO, sourced from the metrics snapshot when one is attached and from the
// live monitor otherwise. Both paths divide the same integer cycle counts,
// so the summary renders byte-identically whichever source is used.
func (r Result) fifoFracs() (full, storing, noreq, empty float64) {
	if s := r.Metrics; s != nil {
		if f, ok := s.Counter("lmi.lmi.fifo_full_cycles"); ok {
			st, _ := s.Counter("lmi.lmi.fifo_storing_cycles")
			nr, _ := s.Counter("lmi.lmi.fifo_norequest_cycles")
			em, _ := s.Counter("lmi.lmi.fifo_empty_cycles")
			if cyc := f + st + nr; cyc > 0 {
				d := float64(cyc)
				return float64(f) / d, float64(st) / d, float64(nr) / d, float64(em) / d
			}
			return 0, 0, 0, 0
		}
	}
	return r.Monitor.TotalFrac(lmi.StateFull),
		r.Monitor.TotalFrac(lmi.StateStoring),
		r.Monitor.TotalFrac(lmi.StateNoRequest),
		r.Monitor.EmptyFrac()
}
