package platform

// Sharded parallel execution (DESIGN.md §15).
//
// A sharded run partitions the platform's clock domains into per-shard
// mini-kernels stepped on parallel goroutines and synchronized at
// central-clock-period windows. The partition granule is a *unit*: one clock
// domain plus the components it registered on the central clock (journaled by
// regCentral during Build). Cross-shard communication flows exclusively
// through the bridges' initiator-port bus FIFOs, switched into deferred-commit
// mode (sim.Fifo.MarkDeferred): both endpoints act only at central-clock
// edges, a window contains exactly one central edge, and the window
// coordinator performs the commit single-threaded at the barrier — so every
// shard observes exactly the committed state a serial run would show it, and
// results are bit-identical to serial execution.

import (
	"fmt"
	"sort"

	"mpsocsim/internal/sim"
)

// centralUnit is the unit owning the central interconnect, memory subsystem
// and everything else journaled under it; it is pinned to shard 0.
const centralUnit = "central"

// EnableSharding partitions the platform into at most n shards for parallel
// execution. Call after Build (and after EnableTimelines/EnableAttribution,
// when used) but before Run. n is clamped to the number of partitionable
// units — the central domain plus one unit per additional clock domain — so
// a collapsed single-clock topology degenerates to serial execution no matter
// how many shards are requested. n == 1 (or an effective count of 1) leaves
// the platform in serial mode; the serial kernel *is* the one-shard case.
//
// Sharded runs produce bit-identical Results, reports, captured traces and
// attribution matrices to serial runs of the same spec; the conformance
// matrix in shard_test.go enforces this property.
func (p *Platform) EnableSharding(n int) error {
	if n < 1 {
		return fmt.Errorf("platform: shard count must be >= 1, got %d", n)
	}
	if p.sharded {
		return fmt.Errorf("platform: sharding already enabled")
	}
	if p.Kernel.Now() != p.resumedPS || p.CentralClk.Cycles() != p.resumedCycles {
		return fmt.Errorf("platform: EnableSharding must be called before the run starts")
	}
	if p.samplerAttached {
		return fmt.Errorf("platform: sharded execution is incompatible with AttachSampler (the CSV/VCD sampler reads cross-domain state from a central-clock hook)")
	}
	if got, want := p.CentralClk.NumRegistered(), len(p.centralRegs); got != want {
		return fmt.Errorf("platform: central clock has %d registrations but the journal holds %d — a component bypassed regCentral", got, want)
	}

	// Units and their weights. Every clock domain is one unit named after its
	// clock; a unit's weight is the component count it brings (its own clock's
	// registrations plus its journaled central-clock registrations).
	clocks := append([]*sim.Clock(nil), p.Kernel.Clocks()...)
	weight := map[string]int{centralUnit: 0}
	units := []string{centralUnit}
	for _, c := range clocks[1:] {
		units = append(units, c.Name())
		weight[c.Name()] += c.NumRegistered()
	}
	for _, reg := range p.centralRegs {
		if reg.unit == timelineUnit {
			continue
		}
		if _, ok := weight[reg.unit]; !ok {
			return fmt.Errorf("platform: journal references unknown unit %q", reg.unit)
		}
		weight[reg.unit]++
	}

	eff := n
	if eff > len(units) {
		eff = len(units)
	}
	p.shards = eff
	if eff == 1 {
		return nil
	}

	// Deterministic greedy balance: the central unit is pinned to shard 0;
	// the rest go heaviest-first (name-ascending tie-break) onto the least
	// loaded shard (lowest index tie-break).
	rest := append([]string(nil), units[1:]...)
	sort.Slice(rest, func(i, j int) bool {
		if weight[rest[i]] != weight[rest[j]] {
			return weight[rest[i]] > weight[rest[j]]
		}
		return rest[i] < rest[j]
	})
	load := make([]int, eff)
	load[0] = weight[centralUnit]
	shardOf := map[string]int{centralUnit: 0}
	for _, u := range rest {
		best := 0
		for s := 1; s < eff; s++ {
			if load[s] < load[best] {
				best = s
			}
		}
		shardOf[u] = best
		load[best] += weight[u]
	}

	// Per-shard kernels. Each non-central clock is adopted whole — its
	// components keep their *Clock pointer, cycle counts and registration
	// order. The central clock's components are stripped and re-registered
	// from the journal: the real clock (with the shard-0 components) goes to
	// shard 0, every other shard gets a same-period replica. All central
	// clocks tick the same edges in lockstep, and "central" sorts first in
	// every shard's name-ordered schedule, so each component sees exactly the
	// serial firing order restricted to its shard.
	kernels := make([]*sim.Kernel, eff)
	for i := range kernels {
		kernels[i] = sim.NewKernel()
	}
	if comps := p.CentralClk.TakeComponents(); len(comps) != len(p.centralRegs) {
		panic("platform: central journal out of sync") // unreachable: checked above
	}
	central := make([]*sim.Clock, eff)
	central[0] = p.CentralClk
	kernels[0].AdoptClock(p.CentralClk)
	for i := 1; i < eff; i++ {
		central[i] = kernels[i].NewClockPeriodPS("central", p.CentralClk.PeriodPS())
		// On a checkpoint-restored platform the real central clock is
		// mid-run; replicas must agree on the completed-cycle count so all
		// central domains keep ticking in lockstep.
		central[i].SeedCycles(p.CentralClk.Cycles())
	}
	for _, c := range clocks[1:] {
		kernels[shardOf[c.Name()]].AdoptClock(c)
	}
	for _, reg := range p.centralRegs {
		if reg.unit == timelineUnit {
			continue
		}
		central[shardOf[reg.unit]].Register(reg.comp)
	}

	// Timeline sampling: replace the single cross-domain trigger with one per
	// shard, each sampling only its home domains' gauges on its own `left`
	// countdown. The countdowns run in lockstep (every central clock ticks
	// every edge), so the sampling instants — and the sampled values, read
	// from shard-local components — are exactly the serial ones. Registered
	// last on each shard's central clock, like the serial trigger.
	if p.timelineTrigger != nil {
		shardOfClock := func(c *sim.Clock) int {
			if c == p.CentralClk {
				return 0
			}
			return shardOf[c.Name()]
		}
		for s := 0; s < eff; s++ {
			var idxs []int
			for j, c := range p.samplerClocks {
				if shardOfClock(c) == s {
					idxs = append(idxs, j)
				}
			}
			if len(idxs) == 0 {
				continue
			}
			every := p.timelineEvery
			// Seed each shard's countdown from the live serial countdown:
			// p.timelineLeft is `every` for a fresh platform and the
			// restored mid-window value after a checkpoint restore. All
			// central clocks tick in lockstep, so the per-shard countdowns
			// stay synchronized from that common seed.
			left := p.timelineLeft
			central[s].Register(&sim.ClockedFunc{OnEval: func() {
				left--
				if left > 0 {
					return
				}
				left = every
				for _, j := range idxs {
					p.samplers[j].Sample(p.samplerClocks[j].Cycles())
				}
			}})
		}
	}

	// Shard cuts. Every bridge whose initiator side landed outside shard 0 is
	// re-pointed at its shard's central replica (so all clocks it reads are
	// shard-local) and its initiator-port FIFOs — the only state both sides of
	// the cut touch — switch to deferred commit. The window coordinator
	// commits them at each barrier, once per central cycle, as the serial
	// bridge Update would.
	names := make([]string, 0, len(p.bridges))
	for name := range p.bridges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		br := p.bridges[name]
		unit := ""
		for _, reg := range p.centralRegs {
			if reg.comp == br.InitiatorSide {
				unit = reg.unit
				break
			}
		}
		if unit == "" {
			return fmt.Errorf("platform: bridge %q initiator side not found in the central journal", name)
		}
		if shardOf[unit] == 0 {
			continue
		}
		br.RehomeDestination(central[shardOf[unit]])
		ip := br.InitiatorPort()
		ip.Req.MarkDeferred()
		ip.Resp.MarkDeferred()
		p.boundaryFifos = append(p.boundaryFifos, ip.Req, ip.Resp)
	}

	// Shared services crossed by transaction lifecycles: the request pool
	// (mutex-guarded; pointer identity is unobservable in results) and the
	// attribution collector (mutex on Start/Finish; slot-keyed commutative
	// folds keep the matrices bit-identical — see attr.Collector).
	p.pool.SetShared(true)
	if p.attrCol != nil {
		p.attrCol.SetShared(true)
	}

	// tailThreshold bounds how many uncompleted transactions guarantee that a
	// whole window cannot drain the workload: per window each initiator
	// completes at most its in-flight cap plus the issues of that window
	// (every initiator clock period is >= the central period in this
	// platform, so at most one issue — +4 is headroom for faster clocks).
	thr := int64(1)
	for _, g := range p.gens {
		thr += g.MaxConcurrent() + 4
	}
	p.tailThreshold = thr

	p.shardKernels = kernels
	p.shardCentral = central
	p.sharded = true
	return nil
}

// Shards returns the effective shard count (1 until EnableSharding selects
// more).
func (p *Platform) Shards() int {
	if p.shards == 0 {
		return 1
	}
	return p.shards
}

// shardExec drives one sharded run: the parallel window loop and the serial
// per-instant tail share its state, and the zero-allocation test measures its
// window method directly.
type shardExec struct {
	p      *Platform
	runner *sim.ShardRunner
	period int64
	next   int64 // next central edge: the next barrier/commit instant
	now    int64 // last executed global instant
}

func (p *Platform) newShardExec() *shardExec {
	return &shardExec{
		p:      p,
		runner: sim.NewShardRunner(p.shardKernels),
		period: p.CentralClk.PeriodPS(),
		// The first barrier is the next central edge — period for a fresh
		// platform, mid-run for a checkpoint-restored one.
		next: p.CentralClk.NowPS(),
	}
}

// window runs one synchronization window in parallel — all edges up to and
// including the next central edge — then commits the boundary FIFOs at the
// barrier. Allocation-free in steady state.
func (e *shardExec) window() {
	e.runner.RunWindow(e.next)
	for _, f := range e.p.boundaryFifos {
		f.CommitDeferred()
	}
	e.now = e.next
	e.next += e.period
}

// step executes the single earliest global instant across all shards on the
// caller's goroutine, committing boundary FIFOs whenever the instant is a
// central edge. The serial tail uses it to reproduce a serial run's exact
// per-instant stop conditions. It returns false when no shard has clocks.
func (e *shardExec) step() bool {
	t := e.runner.PeekNextEdge()
	if t < 0 {
		return false
	}
	e.runner.StepAll(t)
	// Central edges are due every period in every shard, so the global
	// minimum instant can never jump past one: t == e.next exactly at
	// central edges.
	if t == e.next {
		for _, f := range e.p.boundaryFifos {
			f.CommitDeferred()
		}
		e.next += e.period
	}
	e.now = t
	return true
}

// runSharded is Run for a sharded platform. The loop runs whole parallel
// windows while (a) the workload provably cannot drain within one window
// (tail threshold — completion counts could otherwise diverge from the serial
// stop instant) and (b) the next barrier stays inside the time budget; it
// then finishes on a serial per-instant tail that reproduces the serial
// run's exact stop instant, budget-overshoot-by-one-instant semantics and
// stall-watchdog observation points.
func (p *Platform) runSharded(maxPS int64) Result {
	ex := p.newShardExec()
	defer ex.runner.Close()

	pending := func() bool {
		for _, g := range p.gens {
			if !g.Done() {
				return true
			}
		}
		return false
	}
	progress := func() int64 {
		var n int64
		for _, g := range p.gens {
			n += g.Issued() + g.Completed()
		}
		return n
	}
	unfinished := func() int64 {
		var n int64
		for _, g := range p.gens {
			n += g.Unfinished()
		}
		return n
	}

	// Identical watchdog to the serial Run, sharing the same Platform-field
	// history (so a restored sharded run observes progress at the instants
	// the uninterrupted serial run would). Its observation points — the
	// first instants where the central cycle count crosses a 200k-cycle
	// milestone — are central edges, i.e. exactly the window barriers, so
	// the sharded watchdog samples progress at the same instants with the
	// same values as the serial one.
	done := true
	stalled := false

	for pending() && unfinished() > p.tailThreshold && ex.next < maxPS {
		ex.window()
		if p.tele != nil {
			p.tele.AddWindow()
		}
		p.pollTelemetry()
		if c := p.CentralClk.Cycles(); c-p.wdLastCheck >= stallWindow {
			if prog := progress(); prog == p.wdLastProg {
				done = false
				stalled = true
				break
			} else {
				p.wdLastProg = prog
				p.observeWatchdogCounters()
			}
			p.wdLastCheck = c
		}
	}

	if !stalled {
		for pending() {
			if ex.now >= maxPS {
				done = false
				break
			}
			if !ex.step() {
				done = false
				break
			}
			p.pollTelemetry()
			if c := p.CentralClk.Cycles(); c-p.wdLastCheck >= stallWindow {
				if prog := progress(); prog == p.wdLastProg {
					done = false
					stalled = true
					break
				} else {
					p.wdLastProg = prog
					p.observeWatchdogCounters()
				}
				p.wdLastCheck = c
			}
		}
	}

	// The platform kernel itself never stepped (its clocks moved to the
	// shard kernels); stamp the final instant back so collect() reads the
	// same ExecPS a serial run would report.
	p.Kernel.SetNow(ex.now)
	p.finishTelemetry()
	r := p.collect(done)
	r.Stalled = stalled
	return r
}
