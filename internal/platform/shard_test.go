package platform

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"mpsocsim/internal/tracecap"
)

// shardCounts is the conformance-matrix shard axis: serial-degenerate, two
// and four shards, plus whatever the host offers.
func shardCounts() []int {
	counts := []int{1, 2, 4}
	if n := runtime.NumCPU(); n != 1 && n != 2 && n != 4 {
		counts = append(counts, n)
	}
	return counts
}

// shardVariants are the observability configurations the equivalence contract
// covers. Each prepares a freshly built platform and returns the capture
// session when one was attached (so the recorded trace bytes join the
// comparison).
var shardVariants = []struct {
	name string
	prep func(p *Platform) *tracecap.Capture
}{
	{"plain", func(p *Platform) *tracecap.Capture { return nil }},
	{"attr", func(p *Platform) *tracecap.Capture {
		p.EnableAttribution(0)
		return nil
	}},
	{"timelines", func(p *Platform) *tracecap.Capture {
		p.EnableTimelines(50, 0)
		return nil
	}},
	{"capture", func(p *Platform) *tracecap.Capture {
		c := tracecap.NewCapture(p.Spec.Name(), 0)
		p.AttachCapture(c)
		return c
	}},
}

// shardRun builds spec, applies prep, shards the platform into n and runs it.
// It returns the Result, the rendered JSON report and summary bytes, and the
// encoded captured trace (nil when the variant doesn't capture).
func shardRun(t *testing.T, spec Spec, shards int, prep func(*Platform) *tracecap.Capture) (Result, []byte, []byte) {
	t.Helper()
	p := MustBuild(spec)
	c := prep(p)
	if shards > 1 {
		if err := p.EnableSharding(shards); err != nil {
			t.Fatalf("EnableSharding(%d): %v", shards, err)
		}
	}
	r := p.Run(5e12)
	if !r.Done {
		t.Fatalf("%s (shards=%d) did not drain (issued=%d completed=%d)", spec.Name(), shards, r.Issued, r.Completed)
	}
	var rep bytes.Buffer
	if err := r.WriteJSON(&rep); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteSummary(&rep); err != nil {
		t.Fatal(err)
	}
	var tb []byte
	if c != nil {
		var buf bytes.Buffer
		if _, err := c.Trace().WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		tb = buf.Bytes()
	}
	return r, rep.Bytes(), tb
}

// TestShardedConformanceMatrix is the serial-equivalence contract: for every
// golden configuration, every observability variant and every shard count,
// the sharded run must be bit-identical to the serial run — the full Result
// (every statistic, histogram, attribution matrix and monitor window), the
// rendered JSON report and text summary, and the captured transaction trace.
func TestShardedConformanceMatrix(t *testing.T) {
	for name, spec := range goldenSpecs() {
		for _, v := range shardVariants {
			ref, refRep, refTrace := shardRun(t, spec, 1, v.prep)
			for _, n := range shardCounts() {
				t.Run(fmt.Sprintf("%s/%s/shards=%d", name, v.name, n), func(t *testing.T) {
					r, rep, tr := shardRun(t, spec, n, v.prep)
					if !reflect.DeepEqual(r, ref) {
						t.Errorf("sharded Result differs from serial (cycles %d vs %d, issued %d vs %d)",
							r.CentralCycles, ref.CentralCycles, r.Issued, ref.Issued)
					}
					if !bytes.Equal(rep, refRep) {
						t.Errorf("sharded report/summary bytes differ from serial (%d vs %d bytes)", len(rep), len(refRep))
					}
					if !bytes.Equal(tr, refTrace) {
						t.Errorf("sharded captured trace differs from serial (%d vs %d bytes)", len(tr), len(refTrace))
					}
				})
			}
		}
	}
}

// TestShardedReplayConformance closes the differential loop: a trace captured
// from a serial run is replayed serially and at every shard count, and all
// replayed runs must agree bit-for-bit.
func TestShardedReplayConformance(t *testing.T) {
	for name, spec := range goldenSpecs() {
		cap := tracecap.NewCapture(spec.Name(), 0)
		p := MustBuild(spec)
		p.AttachCapture(cap)
		if r := p.Run(5e12); !r.Done {
			t.Fatalf("%s capture run did not drain", name)
		}
		rspec := spec
		rspec.Replay = cap.Trace()
		ref, refRep, _ := shardRun(t, rspec, 1, func(*Platform) *tracecap.Capture { return nil })
		for _, n := range shardCounts() {
			t.Run(fmt.Sprintf("%s/shards=%d", name, n), func(t *testing.T) {
				r, rep, _ := shardRun(t, rspec, n, func(*Platform) *tracecap.Capture { return nil })
				if !reflect.DeepEqual(r, ref) {
					t.Errorf("sharded replay Result differs from serial (cycles %d vs %d)", r.CentralCycles, ref.CentralCycles)
				}
				if !bytes.Equal(rep, refRep) {
					t.Errorf("sharded replay report differs from serial")
				}
			})
		}
	}
}

// randomSpec draws one platform configuration from the property-test space:
// every protocol, topology and memory subsystem, with randomized workload
// scale, buffering, bridge and DSP parameters.
func randomSpec(rng *rand.Rand) Spec {
	s := DefaultSpec()
	s.Protocol = []Protocol{STBus, AHB, AXI}[rng.Intn(3)]
	s.Topology = []Topology{Distributed, Collapsed}[rng.Intn(2)]
	s.Memory = []MemoryKind{OnChip, LMIDDR}[rng.Intn(2)]
	s.WorkloadScale = 0.05 + 0.15*rng.Float64()
	s.Seed = rng.Uint64()%1000 + 1
	s.WithDSP = rng.Intn(2) == 0
	s.DSPIterations = 50
	s.OnChipWaitStates = rng.Intn(8)
	s.SplitLMIBridge = rng.Intn(2) == 0
	s.TwoPhase = rng.Intn(4) == 0
	s.MaxOutstanding = []int{1, 2, 4, 8}[rng.Intn(4)]
	s.BridgeLatency = 1 + rng.Intn(3)
	if rng.Intn(2) == 0 {
		s.IO.Enable = true
		s.IO.DMAPostedWrites = rng.Intn(2) == 0
	}
	return s
}

// shardDiff runs spec serially and sharded and describes the first observed
// divergence ("" when equivalent).
func shardDiff(spec Spec, shards int) string {
	run := func(n int) (Result, []byte, error) {
		p, err := Build(spec)
		if err != nil {
			return Result{}, nil, err
		}
		if n > 1 {
			if err := p.EnableSharding(n); err != nil {
				return Result{}, nil, err
			}
		}
		r := p.Run(2e12)
		var rep bytes.Buffer
		if err := r.WriteJSON(&rep); err != nil {
			return Result{}, nil, err
		}
		return r, rep.Bytes(), nil
	}
	ref, refRep, err := run(1)
	if err != nil {
		return fmt.Sprintf("serial run failed: %v", err)
	}
	r, rep, err := run(shards)
	if err != nil {
		return fmt.Sprintf("sharded run failed: %v", err)
	}
	switch {
	case r.Done != ref.Done || r.Stalled != ref.Stalled:
		return fmt.Sprintf("outcome differs: done=%v/%v stalled=%v/%v", r.Done, ref.Done, r.Stalled, ref.Stalled)
	case r.CentralCycles != ref.CentralCycles:
		return fmt.Sprintf("cycle count differs: %d vs %d", r.CentralCycles, ref.CentralCycles)
	case !reflect.DeepEqual(r, ref):
		return "Result differs (same cycle count)"
	case !bytes.Equal(rep, refRep):
		return "report bytes differ (same Result)"
	}
	return ""
}

// shrinkSpec reduces a failing spec one dimension at a time while the failure
// persists, converging on a minimal reproducer.
func shrinkSpec(spec Spec, shards int) Spec {
	dims := []func(*Spec) bool{
		func(s *Spec) bool { changed := s.IO.Enable; s.IO = IOSpec{}; return changed },
		func(s *Spec) bool { changed := s.TwoPhase; s.TwoPhase = false; return changed },
		func(s *Spec) bool { changed := s.WithDSP; s.WithDSP = false; return changed },
		func(s *Spec) bool { changed := s.SplitLMIBridge; s.SplitLMIBridge = false; return changed },
		func(s *Spec) bool { changed := s.OnChipWaitStates != 1; s.OnChipWaitStates = 1; return changed },
		func(s *Spec) bool { changed := s.BridgeLatency > 1; s.BridgeLatency = 1; return changed },
		func(s *Spec) bool { changed := s.MaxOutstanding != 8; s.MaxOutstanding = 8; return changed },
		func(s *Spec) bool { changed := s.Memory != OnChip; s.Memory = OnChip; return changed },
		func(s *Spec) bool { changed := s.Protocol != STBus; s.Protocol = STBus; return changed },
		func(s *Spec) bool { changed := s.Seed != 1; s.Seed = 1; return changed },
		func(s *Spec) bool {
			changed := s.WorkloadScale > 0.051
			s.WorkloadScale = s.WorkloadScale / 2
			if s.WorkloadScale < 0.05 {
				s.WorkloadScale = 0.05
			}
			return changed
		},
	}
	for pass := 0; pass < 4; pass++ {
		reduced := false
		for _, dim := range dims {
			cand := spec
			if !dim(&cand) {
				continue
			}
			if shardDiff(cand, shards) != "" {
				spec = cand
				reduced = true
			}
		}
		if !reduced {
			break
		}
	}
	return spec
}

// TestShardedRandomTopologyProperty fuzzes the equivalence contract over
// seeded random platform specifications. Failures are shrunk to a minimal
// reproducing spec before reporting.
func TestShardedRandomTopologyProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(0x5EED_0006))
	n := 10
	if testing.Short() {
		n = 3
	}
	for i := 0; i < n; i++ {
		spec := randomSpec(rng)
		shards := 2 + rng.Intn(3)
		if diff := shardDiff(spec, shards); diff != "" {
			min := shrinkSpec(spec, shards)
			t.Fatalf("case %d: sharded(%d) diverged from serial: %s\nspec: %+v\nminimal failing spec: %+v",
				i, shards, diff, specSummary(spec), specSummary(min))
		}
	}
}

// specSummary renders the property-test-relevant spec dimensions compactly.
func specSummary(s Spec) string {
	return fmt.Sprintf("%s scale=%.3f seed=%d dsp=%v waits=%d split=%v twophase=%v outstanding=%d bridgelat=%d",
		s.Name(), s.WorkloadScale, s.Seed, s.WithDSP, s.OnChipWaitStates, s.SplitLMIBridge, s.TwoPhase, s.MaxOutstanding, s.BridgeLatency)
}

// TestEnableShardingValidation pins the refusal cases and the degenerate
// topologies of EnableSharding.
func TestEnableShardingValidation(t *testing.T) {
	t.Run("bad-count", func(t *testing.T) {
		p := MustBuild(quick(STBus, Distributed, LMIDDR))
		if err := p.EnableSharding(0); err == nil {
			t.Fatal("EnableSharding(0) should fail")
		}
	})
	t.Run("twice", func(t *testing.T) {
		p := MustBuild(quick(STBus, Distributed, LMIDDR))
		if err := p.EnableSharding(2); err != nil {
			t.Fatal(err)
		}
		if err := p.EnableSharding(2); err == nil {
			t.Fatal("second EnableSharding should fail")
		}
	})
	t.Run("after-start", func(t *testing.T) {
		p := MustBuild(quick(STBus, Distributed, LMIDDR))
		p.Kernel.RunCycles(p.CentralClk, 10)
		if err := p.EnableSharding(2); err == nil {
			t.Fatal("EnableSharding after stepping should fail")
		}
	})
	t.Run("csv-sampler", func(t *testing.T) {
		p := MustBuild(quick(STBus, Distributed, LMIDDR))
		p.samplerAttached = true
		if err := p.EnableSharding(2); err == nil {
			t.Fatal("EnableSharding with the CSV/VCD sampler should fail")
		}
	})
	t.Run("one-shard-stays-serial", func(t *testing.T) {
		p := MustBuild(quick(STBus, Distributed, LMIDDR))
		if err := p.EnableSharding(1); err != nil {
			t.Fatal(err)
		}
		if p.sharded || p.Shards() != 1 {
			t.Fatalf("one shard must stay serial (sharded=%v shards=%d)", p.sharded, p.Shards())
		}
	})
	t.Run("clamped-to-units", func(t *testing.T) {
		// Collapsed without DSP has a single clock domain: one unit.
		s := quick(STBus, Collapsed, OnChip)
		s.WithDSP = false
		p := MustBuild(s)
		if err := p.EnableSharding(8); err != nil {
			t.Fatal(err)
		}
		if p.Shards() != 1 {
			t.Fatalf("collapsed no-DSP topology must clamp to 1 shard, got %d", p.Shards())
		}
		// With the DSP there are two units (central + cpu).
		p2 := MustBuild(quick(AXI, Collapsed, LMIDDR))
		if err := p2.EnableSharding(8); err != nil {
			t.Fatal(err)
		}
		if p2.Shards() != 2 {
			t.Fatalf("collapsed DSP topology must clamp to 2 shards, got %d", p2.Shards())
		}
		r := p2.Run(5e12)
		if !r.Done {
			t.Fatal("clamped sharded run did not drain")
		}
	})
	t.Run("timelines-after-sharding-panics", func(t *testing.T) {
		p := MustBuild(quick(STBus, Distributed, LMIDDR))
		if err := p.EnableSharding(2); err != nil {
			t.Fatal(err)
		}
		defer func() {
			if recover() == nil {
				t.Fatal("EnableTimelines after EnableSharding should panic")
			}
		}()
		p.EnableTimelines(0, 0)
	})
}

// TestShardedZeroAllocSteadyState proves the 0 allocs/cycle invariant holds
// in parallel mode: one synchronization window — a parallel RunWindow across
// all shard kernels plus the barrier commit of every boundary FIFO — performs
// no heap allocation in steady state.
func TestShardedZeroAllocSteadyState(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement is slow under -short")
	}
	p := MustBuild(DefaultSpec())
	if err := p.EnableSharding(4); err != nil {
		t.Fatal(err)
	}
	ex := p.newShardExec()
	defer ex.runner.Close()
	for i := 0; i < 5000; i++ {
		ex.window()
	}
	allocs := testing.AllocsPerRun(2000, func() {
		ex.window()
	})
	if allocs != 0 {
		t.Fatalf("steady-state window allocates: %.2f allocs/window (want 0)", allocs)
	}
	if len(p.boundaryFifos) == 0 {
		t.Fatal("no boundary FIFOs — the cut did not happen")
	}
}

// TestShardedStallDetection pins watchdog equivalence: a sharded run of a
// deadlocking configuration must report the same Stalled outcome as serial.
// Forcing a single outstanding slot with a zero-depth emulation is not
// possible through the public spec, so this test instead relies on the
// budget path: a run cut off mid-flight must stop at the same instant.
func TestShardedBudgetCutoff(t *testing.T) {
	spec := quick(STBus, Distributed, LMIDDR)
	const budget = 20_000_000 // 20 µs: mid-run for this workload
	run := func(n int) Result {
		p := MustBuild(spec)
		if n > 1 {
			if err := p.EnableSharding(n); err != nil {
				t.Fatal(err)
			}
		}
		return p.Run(budget)
	}
	ref := run(1)
	if ref.Done {
		t.Fatalf("budget %d did not cut the run off — shrink it", budget)
	}
	for _, n := range []int{2, 4} {
		r := run(n)
		if !reflect.DeepEqual(r, ref) {
			t.Errorf("shards=%d: budget-cut Result differs from serial (exec %d vs %d ps, cycles %d vs %d)",
				n, r.ExecPS, ref.ExecPS, r.CentralCycles, ref.CentralCycles)
		}
	}
}
