package platform

import (
	"testing"

	"mpsocsim/internal/tracecap"
)

// TestZeroAllocSteadyState proves the tentpole claim: once a platform has
// reached steady state, stepping the kernel performs zero heap allocations
// per cycle. Queue capacities, the request pool, and the stats arenas are all
// grown during warm-up; after that every data structure is recycled in place.
func TestZeroAllocSteadyState(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement is slow under -short")
	}
	p := MustBuild(DefaultSpec())
	// Warm up past every high-water mark: queue growth, pool population,
	// phase-tracker windows. 5000 central cycles is ~10x the deepest
	// transient observed in the reference workload.
	p.Kernel.RunCycles(p.CentralClk, 5000)

	allocs := testing.AllocsPerRun(2000, func() {
		p.Kernel.Step()
	})
	if allocs != 0 {
		t.Fatalf("steady-state Step allocates: %.2f allocs/step (want 0)", allocs)
	}
}

// TestZeroAllocSteadyStateWithCapture re-proves the invariant with trace
// capture attached: the probes record into preallocated event storage, so
// observing the full stimulus costs no allocations per cycle either.
func TestZeroAllocSteadyStateWithCapture(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement is slow under -short")
	}
	spec := DefaultSpec()
	p := MustBuild(spec)
	c := tracecap.NewCapture(spec.Name(), 0)
	p.AttachCapture(c)
	p.Kernel.RunCycles(p.CentralClk, 5000)

	allocs := testing.AllocsPerRun(2000, func() {
		p.Kernel.Step()
	})
	if allocs != 0 {
		t.Fatalf("steady-state Step with capture allocates: %.2f allocs/step (want 0)", allocs)
	}
	if c.Trace().Events() == 0 {
		t.Fatal("capture recorded nothing")
	}
}

// TestZeroAllocSteadyStateWithMetrics re-proves the invariant with the full
// observability stack attached: trace capture on every initiator port plus
// one gauge sampler per clock domain. The samplers record into preallocated
// rings and every other instrument is a func-backed read of existing
// component state, so complete instrumentation costs no allocations per
// cycle.
func TestZeroAllocSteadyStateWithMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement is slow under -short")
	}
	spec := DefaultSpec()
	p := MustBuild(spec)
	c := tracecap.NewCapture(spec.Name(), 0)
	p.AttachCapture(c)
	p.EnableTimelines(0, 0)
	p.Kernel.RunCycles(p.CentralClk, 5000)

	allocs := testing.AllocsPerRun(2000, func() {
		p.Kernel.Step()
	})
	if allocs != 0 {
		t.Fatalf("steady-state Step with metrics allocates: %.2f allocs/step (want 0)", allocs)
	}
	snap := p.Metrics.Snapshot()
	if len(snap.Timelines) == 0 {
		t.Fatal("no timelines recorded")
	}
	for _, tl := range snap.Timelines {
		if len(tl.Cycles) == 0 {
			t.Fatalf("timeline %q recorded no samples", tl.Clock)
		}
	}
}

// TestZeroAllocSteadyStateWithAttribution re-proves the invariant with
// latency attribution enabled: records come from the collector's
// preallocated free list, every stamp writes into fixed-size segment arrays,
// and Finish folds durations into preallocated histograms, so the full
// phase-stamped breakdown costs no allocations per cycle either.
func TestZeroAllocSteadyStateWithAttribution(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement is slow under -short")
	}
	spec := DefaultSpec()
	p := MustBuild(spec)
	col := p.EnableAttribution(0)
	p.Kernel.RunCycles(p.CentralClk, 5000)

	allocs := testing.AllocsPerRun(2000, func() {
		p.Kernel.Step()
	})
	if allocs != 0 {
		t.Fatalf("steady-state Step with attribution allocates: %.2f allocs/step (want 0)", allocs)
	}
	if col.Finished() == 0 {
		t.Fatal("attribution recorded nothing")
	}
	if col.Grown() != 0 {
		t.Fatalf("record free list grew by %d in steady state (leaking records?)", col.Grown())
	}
}

// TestZeroAllocSteadyStateWithIO re-proves the invariant with the I/O
// subsystem attached: the DMA engine's descriptor chain, the IRQ devices'
// event rings and in-flight tables, and the heap allocator's live-block table
// are all preallocated at build time and recycled in place, so the extra
// initiator types cost no allocations per cycle either.
func TestZeroAllocSteadyStateWithIO(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement is slow under -short")
	}
	spec := DefaultSpec()
	spec.IO.Enable = true
	// Long chains and event streams keep both I/O initiator types live for
	// the whole measurement window.
	spec.IO.DMADescriptors = 1 << 20
	spec.IO.IRQEvents = 1 << 20
	spec.IO.AllocOps = 1 << 20
	p := MustBuild(spec)
	p.Kernel.RunCycles(p.CentralClk, 5000)

	allocs := testing.AllocsPerRun(2000, func() {
		p.Kernel.Step()
	})
	if allocs != 0 {
		t.Fatalf("steady-state Step with I/O allocates: %.2f allocs/step (want 0)", allocs)
	}
}

// TestZeroAllocSteadyStateSingleLayer covers the single-clock kernel fast
// path with the §4.1 testbench.
func TestZeroAllocSteadyStateSingleLayer(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement is slow under -short")
	}
	spec := DefaultSingleLayerSpec(STBus, 1)
	spec.Txns = 1 << 30 // never drain during the measurement
	sl, err := BuildSingleLayer(spec)
	if err != nil {
		t.Fatal(err)
	}
	sl.Kernel.RunCycles(sl.Clk, 5000)

	allocs := testing.AllocsPerRun(2000, func() {
		sl.Kernel.Step()
	})
	if allocs != 0 {
		t.Fatalf("steady-state Step allocates: %.2f allocs/step (want 0)", allocs)
	}
}
