package platform

import (
	"fmt"

	"mpsocsim/internal/ahb"
	"mpsocsim/internal/axi"
	"mpsocsim/internal/bus"
	"mpsocsim/internal/iptg"
	"mpsocsim/internal/mem"
	"mpsocsim/internal/sim"
	"mpsocsim/internal/stbus"
)

// SingleLayerSpec describes the single-layer testbenches of the paper's
// §4.1: N traffic generators and M memories on one shared interconnect.
// M > 1 exercises the many-to-many pattern (§4.1.1); M = 1 the many-to-one,
// memory-centric pattern (§4.1.2).
type SingleLayerSpec struct {
	Protocol   Protocol
	Initiators int
	Targets    int

	// MemWaitStates configures every memory.
	MemWaitStates int
	// TargetReqDepth / TargetRespDepth size each memory's bus-interface
	// FIFOs; the response depth is the "buffering resources at the
	// target interfaces" STBus adds to close the gap with AXI (§4.1.1).
	TargetReqDepth  int
	TargetRespDepth int

	// Workload per initiator.
	Txns        int64
	GapMean     float64
	BurstMin    int
	BurstMax    int
	ReadFrac    float64
	MsgLen      int
	Outstanding int

	// MaxOutstanding configures the fabric (STBus/AXI).
	MaxOutstanding int
	Seed           uint64
}

// DefaultSingleLayerSpec returns the §4.1 baseline: 6 generators issuing
// bursty reads.
func DefaultSingleLayerSpec(proto Protocol, targets int) SingleLayerSpec {
	return SingleLayerSpec{
		Protocol:        proto,
		Initiators:      6,
		Targets:         targets,
		MemWaitStates:   1,
		TargetReqDepth:  1,
		TargetRespDepth: 2,
		Txns:            300,
		GapMean:         2,
		BurstMin:        4,
		BurstMax:        8,
		ReadFrac:        1.0,
		MsgLen:          1,
		Outstanding:     4,
		MaxOutstanding:  8,
		Seed:            1,
	}
}

func (s *SingleLayerSpec) normalize() {
	if s.Initiators <= 0 {
		s.Initiators = 6
	}
	if s.Targets <= 0 {
		s.Targets = 1
	}
	if s.TargetReqDepth <= 0 {
		s.TargetReqDepth = 1
	}
	if s.TargetRespDepth <= 0 {
		s.TargetRespDepth = 2
	}
	if s.Txns <= 0 {
		s.Txns = 300
	}
	if s.BurstMin <= 0 {
		s.BurstMin = 4
	}
	if s.BurstMax < s.BurstMin {
		s.BurstMax = s.BurstMin
	}
	if s.Outstanding <= 0 {
		s.Outstanding = 4
	}
	if s.MaxOutstanding <= 0 {
		s.MaxOutstanding = 8
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
}

// SingleLayer is an assembled single-layer testbench.
type SingleLayer struct {
	Spec   SingleLayerSpec
	Kernel *sim.Kernel
	Clk    *sim.Clock
	Fabric bus.Fabric

	gens []*iptg.Generator
	mems []*mem.Memory
	ids  bus.IDSource
	pool bus.RequestPool
}

// BuildSingleLayer assembles the testbench.
func BuildSingleLayer(spec SingleLayerSpec) (*SingleLayer, error) {
	spec.normalize()
	sl := &SingleLayer{
		Spec:   spec,
		Kernel: sim.NewKernel(),
	}
	sl.Clk = sl.Kernel.NewClock("bus", CentralMHz)

	var regions []bus.Region
	for t := 0; t < spec.Targets; t++ {
		regions = append(regions, bus.Region{Base: uint64(t) << 24, Size: 1 << 24, Target: t})
	}
	amap, err := bus.NewAddrMap(regions...)
	if err != nil {
		return nil, err
	}
	switch spec.Protocol {
	case AHB:
		sl.Fabric = ahb.New("bus", ahb.Config{BytesPerBeat: 8}, amap)
	case AXI:
		sl.Fabric = axi.New("bus", axi.Config{MaxOutstanding: spec.MaxOutstanding, BytesPerBeat: 8}, amap)
	default:
		sl.Fabric = stbus.NewNode("bus", stbus.Config{
			Type:               stbus.Type3,
			MaxOutstanding:     spec.MaxOutstanding,
			MessageArbitration: spec.MsgLen > 1,
			BytesPerBeat:       8,
		}, amap)
	}

	for t := 0; t < spec.Targets; t++ {
		m := mem.New(fmt.Sprintf("mem%d", t), mem.Config{
			WaitStates: spec.MemWaitStates,
			ReqDepth:   spec.TargetReqDepth,
			RespDepth:  spec.TargetRespDepth,
		})
		sl.Fabric.AttachTarget(m.Port())
		sl.mems = append(sl.mems, m)
	}
	span := uint64(spec.Targets) << 24
	for i := 0; i < spec.Initiators; i++ {
		cfg := iptg.Config{
			Name: fmt.Sprintf("ini%d", i),
			Agents: []iptg.AgentConfig{{
				Name: "gen",
				Phases: []iptg.Phase{{
					Count:    spec.Txns,
					GapMean:  spec.GapMean,
					BurstMin: spec.BurstMin,
					BurstMax: spec.BurstMax,
					ReadFrac: spec.ReadFrac,
				}},
				Outstanding: spec.Outstanding,
				RegionBase:  0,
				RegionSize:  span,
				Pattern:     iptg.Random,
				MsgLen:      spec.MsgLen,
			}},
			BytesPerBeat: 8,
			Seed:         spec.Seed ^ uint64(i)*0x9e37,
		}
		g, err := iptg.New(cfg, sl.Clk, &sl.ids, i)
		if err != nil {
			return nil, err
		}
		sl.Fabric.AttachInitiator(g.Port())
		sl.Clk.Register(g)
		sl.gens = append(sl.gens, g)
	}
	sl.Clk.Register(sl.Fabric)
	for _, m := range sl.mems {
		sl.Clk.Register(m)
		m.UseRequestPool(&sl.pool)
	}
	for _, g := range sl.gens {
		g.UseRequestPool(&sl.pool)
	}
	return sl, nil
}

// SingleLayerResult summarizes one single-layer run.
type SingleLayerResult struct {
	Done      bool
	Cycles    int64
	Issued    int64
	Completed int64
	// BusUtilization is the protocol-appropriate busy fraction: held
	// cycles for AHB, mean response-channel occupancy for STBus, mean
	// read-data-channel occupancy for AXI.
	BusUtilization float64
	// MemUtilization is the mean busy fraction across memories.
	MemUtilization float64
	// MeanLatency is the mean transaction latency over all generators.
	MeanLatency float64
}

// Run executes until the workload drains or maxPS elapses.
func (sl *SingleLayer) Run(maxPS int64) SingleLayerResult {
	pending := func() bool {
		for _, g := range sl.gens {
			if !g.Done() {
				return true
			}
		}
		return false
	}
	done := sl.Kernel.RunWhile(pending, maxPS)
	r := SingleLayerResult{Done: done, Cycles: sl.Clk.Cycles()}
	var latSum float64
	var latN int64
	for _, g := range sl.gens {
		r.Issued += g.Issued()
		r.Completed += g.Completed()
		for _, a := range g.Stats() {
			latSum += a.MeanLatency * float64(a.Completed)
			latN += a.Completed
		}
	}
	if latN > 0 {
		r.MeanLatency = latSum / float64(latN)
	}
	var mu float64
	for _, m := range sl.mems {
		mu += m.Stats().Utilization()
	}
	r.MemUtilization = mu / float64(len(sl.mems))
	r.BusUtilization = sl.busUtilization()
	return r
}

func (sl *SingleLayer) busUtilization() float64 {
	switch f := sl.Fabric.(type) {
	case *ahb.Bus:
		return f.Stats().Utilization()
	case *stbus.Node:
		s := f.Stats()
		var sum float64
		for i := range s.RespChannelBusy {
			sum += s.RespUtilization(i)
		}
		if n := len(s.RespChannelBusy); n > 0 {
			return sum / float64(n)
		}
		return 0
	case *axi.Interconnect:
		s := f.Stats()
		var sum float64
		for i := range s.RChannelBusy {
			sum += s.RUtilization(i)
		}
		if n := len(s.RChannelBusy); n > 0 {
			return sum / float64(n)
		}
		return 0
	}
	return 0
}

// Generators exposes the testbench generators.
func (sl *SingleLayer) Generators() []*iptg.Generator { return sl.gens }

// Memories exposes the testbench memories.
func (sl *SingleLayer) Memories() []*mem.Memory { return sl.mems }
