package platform

import (
	"strings"
	"testing"

	"mpsocsim/internal/lmi"
	"mpsocsim/internal/trace"
)

// quick returns a small-scale spec for fast tests.
func quick(proto Protocol, topo Topology, m MemoryKind) Spec {
	s := DefaultSpec()
	s.Protocol, s.Topology, s.Memory = proto, topo, m
	s.WorkloadScale = 0.2
	s.DSPIterations = 100
	return s
}

// quickIO is quick with the I/O subsystem attached (DMA engine, two IRQ
// agents, heap allocator) at its default knobs.
func quickIO(proto Protocol, topo Topology, m MemoryKind) Spec {
	s := quick(proto, topo, m)
	s.IO.Enable = true
	return s
}

// runCycles builds and runs, failing the test on timeout.
func runCycles(t *testing.T, s Spec) Result {
	t.Helper()
	p := MustBuild(s)
	r := p.Run(5e12)
	if !r.Done {
		t.Fatalf("%s did not drain (issued=%d completed=%d)", s.Name(), r.Issued, r.Completed)
	}
	if r.Issued != r.Completed {
		t.Fatalf("%s lost transactions: issued=%d completed=%d", s.Name(), r.Issued, r.Completed)
	}
	return r
}

func TestAllVariantsRunToCompletion(t *testing.T) {
	for _, proto := range []Protocol{STBus, AHB, AXI} {
		for _, topo := range []Topology{Distributed, Collapsed} {
			for _, m := range []MemoryKind{OnChip, LMIDDR} {
				s := quick(proto, topo, m)
				t.Run(s.Name(), func(t *testing.T) {
					r := runCycles(t, s)
					if r.CentralCycles <= 0 || r.TotalBytes <= 0 {
						t.Fatalf("degenerate result: %+v", r)
					}
					if r.MemUtilization <= 0 || r.MemUtilization > 1 {
						t.Fatalf("memory utilization %v", r.MemUtilization)
					}
				})
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := runCycles(t, quick(STBus, Distributed, LMIDDR))
	b := runCycles(t, quick(STBus, Distributed, LMIDDR))
	if a.CentralCycles != b.CentralCycles || a.ExecPS != b.ExecPS {
		t.Fatalf("same spec diverged: %d vs %d cycles", a.CentralCycles, b.CentralCycles)
	}
	c := func() Result {
		s := quick(STBus, Distributed, LMIDDR)
		s.Seed = 99
		return runCycles(t, s)
	}()
	if c.CentralCycles == a.CentralCycles {
		t.Log("different seed produced identical cycles (possible but unlikely)")
	}
}

// Fig.3: collapsed and distributed STBus perform almost the same with the
// 1-wait-state on-chip memory; the same holds for collapsed AXI vs collapsed
// STBus.
func TestFig3Equivalences(t *testing.T) {
	stbusD := runCycles(t, quick(STBus, Distributed, OnChip)).CentralCycles
	stbusC := runCycles(t, quick(STBus, Collapsed, OnChip)).CentralCycles
	axiC := runCycles(t, quick(AXI, Collapsed, OnChip)).CentralCycles

	within := func(a, b int64, tol float64) bool {
		d := float64(a-b) / float64(b)
		if d < 0 {
			d = -d
		}
		return d <= tol
	}
	if !within(stbusD, stbusC, 0.12) {
		t.Errorf("distributed STBus (%d) vs collapsed STBus (%d) differ too much", stbusD, stbusC)
	}
	if !within(axiC, stbusC, 0.12) {
		t.Errorf("collapsed AXI (%d) vs collapsed STBus (%d) differ too much", axiC, stbusC)
	}
}

// Fig.3: the full AHB platform is slower than the full STBus platform even
// in AHB's best operating condition (1-wait-state memory), because its
// bridges block on every transaction.
func TestFig3AHBIneffective(t *testing.T) {
	stbus := runCycles(t, quick(STBus, Distributed, OnChip)).CentralCycles
	ahbRes := runCycles(t, quick(AHB, Distributed, OnChip)).CentralCycles
	if float64(ahbRes) < 1.10*float64(stbus) {
		t.Fatalf("full AHB (%d) should clearly trail full STBus (%d)", ahbRes, stbus)
	}
}

// Fig.5: with the LMI + DDR memory subsystem, (a) collapsed AXI is much
// worse than collapsed STBus (its protocol-conversion bridge cannot split),
// (b) collapsed STBus approaches distributed STBus, and (c) the STBus-AHB
// gap grows versus the on-chip case.
func TestFig5LMIShapes(t *testing.T) {
	stbusD := runCycles(t, quick(STBus, Distributed, LMIDDR)).CentralCycles
	stbusC := runCycles(t, quick(STBus, Collapsed, LMIDDR)).CentralCycles
	axiC := runCycles(t, quick(AXI, Collapsed, LMIDDR)).CentralCycles
	ahbD := runCycles(t, quick(AHB, Distributed, LMIDDR)).CentralCycles

	if float64(axiC) < 1.5*float64(stbusC) {
		t.Errorf("collapsed AXI (%d) should be much worse than collapsed STBus (%d)", axiC, stbusC)
	}
	if float64(stbusC) > 1.15*float64(stbusD) {
		t.Errorf("collapsed STBus (%d) should approach distributed STBus (%d)", stbusC, stbusD)
	}
	gapLMI := float64(ahbD) / float64(stbusD)
	stbusOn := runCycles(t, quick(STBus, Distributed, OnChip)).CentralCycles
	ahbOn := runCycles(t, quick(AHB, Distributed, OnChip)).CentralCycles
	gapOn := float64(ahbOn) / float64(stbusOn)
	if gapLMI <= gapOn {
		t.Errorf("STBus-AHB gap should grow with LMI: onchip %.2f, lmi %.2f", gapOn, gapLMI)
	}
}

// §4.2: upgrading the LMI conversion bridge to split transactions recovers
// performance for a non-STBus platform.
func TestSplitLMIBridgeHelps(t *testing.T) {
	blocking := quick(AXI, Collapsed, LMIDDR)
	split := quick(AXI, Collapsed, LMIDDR)
	split.SplitLMIBridge = true
	b := runCycles(t, blocking).CentralCycles
	s := runCycles(t, split).CentralCycles
	if float64(s) > 0.8*float64(b) {
		t.Fatalf("split LMI bridge (%d) should clearly beat blocking (%d)", s, b)
	}
}

// Fig.4 trend: the distributed-over-collapsed execution-time ratio shrinks
// as the memory slows (crossing latency is exposed by a fast memory, hidden
// by a slow one).
func TestFig4RatioShrinksWithMemoryLatency(t *testing.T) {
	ratio := func(w int) float64 {
		mk := func(topo Topology) int64 {
			s := quick(STBus, topo, OnChip)
			s.OnChipWaitStates = w
			s.OutstandingOverride = 1
			s.ForceNonPostedWrites = true
			return runCycles(t, s).CentralCycles
		}
		return float64(mk(Distributed)) / float64(mk(Collapsed))
	}
	fast, slow := ratio(0), ratio(16)
	if fast <= slow {
		t.Fatalf("distributed penalty should shrink with memory latency: fast=%.3f slow=%.3f", fast, slow)
	}
	if fast < 1.0 {
		t.Fatalf("with a fast memory the distributed topology should pay its crossing latency (ratio %.3f)", fast)
	}
}

// Fig.6: in the full STBus platform with LMI the input FIFO is full a large
// fraction of the time and almost never empty during the intense phase; the
// bursty phase keeps a similar full fraction but is empty more often. The
// AHB rerun shows the FIFO never full with no incoming request almost all
// the time.
func TestFig6MonitorRegimes(t *testing.T) {
	s := quick(STBus, Distributed, LMIDDR)
	s.TwoPhase = true
	s.WorkloadScale = 0.4
	s.LMI.PhaseWindow = 1000
	p := MustBuild(s)
	r := p.Run(5e12)
	if !r.Done {
		t.Fatal("two-phase run did not drain")
	}
	m := r.Monitor
	if m == nil {
		t.Fatal("monitor missing")
	}
	ws := m.Windows()
	if len(ws) < 4 {
		t.Fatalf("too few monitor windows: %d", len(ws))
	}
	// phase A = first third of windows, phase B = last third
	third := int64(len(ws)) * int64(s.LMI.PhaseWindow) / 3
	phaseA := m.Phase(0, third)
	phaseB := m.Phase(2*third, int64(len(ws))*s.LMI.PhaseWindow)
	if phaseA.FullFrac < 0.15 {
		t.Errorf("intense phase should keep the FIFO full a sizeable fraction (got %.2f)", phaseA.FullFrac)
	}
	if phaseB.EmptyFrac <= phaseA.EmptyFrac {
		t.Errorf("bursty phase should be empty more often: A=%.2f B=%.2f",
			phaseA.EmptyFrac, phaseB.EmptyFrac)
	}

	// AHB rerun: FIFO never (or almost never) full, interconnect-bound.
	sa := quick(AHB, Distributed, LMIDDR)
	sa.TwoPhase = true
	sa.WorkloadScale = 0.4
	pa := MustBuild(sa)
	ra := pa.Run(5e12)
	if !ra.Done {
		t.Fatal("AHB run did not drain")
	}
	if f := ra.Monitor.TotalFrac(lmi.StateFull); f > 0.02 {
		t.Errorf("AHB LMI FIFO full %.3f of cycles; should be ~never", f)
	}
	if nr := ra.Monitor.TotalFrac(lmi.StateNoRequest); nr < 0.7 {
		t.Errorf("AHB no-request fraction %.2f; should dominate", nr)
	}
}

// §4.1.2: with a single slave and a 1-wait-state memory all three protocols
// reach nearly the same execution time (the memory bounds everything).
func TestSingleLayerManyToOneEquality(t *testing.T) {
	cycles := map[Protocol]int64{}
	for _, proto := range []Protocol{STBus, AHB, AXI} {
		sl, err := BuildSingleLayer(DefaultSingleLayerSpec(proto, 1))
		if err != nil {
			t.Fatal(err)
		}
		r := sl.Run(5e12)
		if !r.Done {
			t.Fatalf("%v single-layer did not drain", proto)
		}
		cycles[proto] = r.Cycles
	}
	base := cycles[STBus]
	for proto, c := range cycles {
		d := float64(c-base) / float64(base)
		if d < 0 {
			d = -d
		}
		if d > 0.12 {
			t.Errorf("%v single-slave time %d deviates %.1f%% from STBus %d", proto, c, 100*d, base)
		}
	}
}

// §4.1.1: with six slaves (many-to-many), AHB's single active transaction
// serializes everything; STBus and AXI exploit the parallelism.
func TestSingleLayerManyToManyDifferentiation(t *testing.T) {
	run := func(proto Protocol) int64 {
		spec := DefaultSingleLayerSpec(proto, 6)
		sl, err := BuildSingleLayer(spec)
		if err != nil {
			t.Fatal(err)
		}
		r := sl.Run(5e12)
		if !r.Done {
			t.Fatalf("%v many-to-many did not drain", proto)
		}
		return r.Cycles
	}
	st, ah, ax := run(STBus), run(AHB), run(AXI)
	if float64(ah) < 2.0*float64(st) {
		t.Errorf("many-to-many AHB (%d) should be far slower than STBus (%d)", ah, st)
	}
	if float64(ax) > 1.2*float64(st) {
		t.Errorf("many-to-many AXI (%d) should be competitive with STBus (%d)", ax, st)
	}
}

// §4.1.1: deeper buffering at STBus target interfaces must not hurt, and
// should help under congestion.
func TestSingleLayerTargetBuffering(t *testing.T) {
	run := func(respDepth int) int64 {
		spec := DefaultSingleLayerSpec(STBus, 6)
		spec.GapMean = 0 // congest
		spec.TargetRespDepth = respDepth
		sl, err := BuildSingleLayer(spec)
		if err != nil {
			t.Fatal(err)
		}
		r := sl.Run(5e12)
		if !r.Done {
			t.Fatal("did not drain")
		}
		return r.Cycles
	}
	shallow, deep := run(1), run(8)
	if deep > shallow {
		t.Fatalf("deeper target buffering should not hurt: shallow=%d deep=%d", shallow, deep)
	}
}

func TestWorkloadScale(t *testing.T) {
	small := quick(STBus, Distributed, OnChip)
	small.WorkloadScale = 0.1
	big := quick(STBus, Distributed, OnChip)
	big.WorkloadScale = 0.3
	rs := runCycles(t, small)
	rb := runCycles(t, big)
	if rb.CentralCycles <= rs.CentralCycles || rb.Issued <= rs.Issued {
		t.Fatalf("scale must grow the workload: %d/%d vs %d/%d cycles/txns",
			rs.CentralCycles, rs.Issued, rb.CentralCycles, rb.Issued)
	}
}

func TestResultSummary(t *testing.T) {
	r := runCycles(t, quick(STBus, Distributed, LMIDDR))
	var sb strings.Builder
	if err := r.WriteSummary(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"STBus/distributed/lmi+ddr", "lmi fifo", "decoder", "dsp"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
	if r.ThroughputMBps() <= 0 || r.ExecMS() <= 0 {
		t.Fatal("throughput/exec time must be positive")
	}
}

func TestSpecNameAndStrings(t *testing.T) {
	s := quick(AXI, Collapsed, LMIDDR)
	if s.Name() != "AXI/collapsed/lmi+ddr" {
		t.Fatalf("name = %q", s.Name())
	}
	if Protocol(9).String() == "" || MemoryKind(0).String() == "" || Topology(0).String() == "" {
		t.Fatal("enum strings broken")
	}
}

func TestAttachSampler(t *testing.T) {
	p := MustBuild(quick(STBus, Distributed, LMIDDR))
	s := trace.NewSampler(1 << 16)
	p.AttachSampler(s, 50)
	r := p.Run(5e12)
	if !r.Done {
		t.Fatal("run did not drain")
	}
	signals := s.Signals()
	want := map[string]bool{"lmi_fifo": false, "completed": false, "out_n5_dma_br": false}
	for _, sig := range signals {
		if _, ok := want[sig]; ok {
			want[sig] = true
		}
	}
	for sig, seen := range want {
		if !seen {
			t.Errorf("signal %q not sampled (got %v)", sig, signals)
		}
	}
	var sb strings.Builder
	if err := s.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "time,") {
		t.Fatal("CSV header missing")
	}
}

func TestPlatformAccessors(t *testing.T) {
	p := MustBuild(quick(STBus, Distributed, LMIDDR))
	if p.Controller() == nil || p.OnChipMemory() != nil {
		t.Fatal("LMI variant accessors wrong")
	}
	if p.Core() == nil {
		t.Fatal("DSP missing")
	}
	if p.CentralFabric() == nil {
		t.Fatal("central fabric missing")
	}
	if len(p.Generators()) == 0 {
		t.Fatal("no generators")
	}
	if p.Bridge("n5_dma_br") == nil {
		t.Fatal("cluster bridge missing")
	}
	q := MustBuild(quick(AHB, Collapsed, OnChip))
	if q.OnChipMemory() == nil || q.Controller() != nil {
		t.Fatal("on-chip variant accessors wrong")
	}
	if q.Bridge("lmi_bridge") != nil {
		t.Fatal("unexpected lmi bridge")
	}
}
