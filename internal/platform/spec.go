// Package platform assembles complete MPSoC virtual-platform instances in
// the mould of the paper's Fig.1: functional clusters of IP traffic
// generators on their own interconnect layers, bridged into a central
// node that owns the memory subsystem (on-chip shared memory or the LMI
// controller with off-chip DDR SDRAM), plus the ST220-class DSP core behind
// an upsize frequency converter.
//
// Every architectural variant the paper evaluates is a Spec value:
// communication protocol (STBus / AHB / AXI), topology (distributed
// multi-layer vs collapsed single-layer), memory subsystem, bridge
// functionality, and the workload (steady or two-phase for the Fig.6
// analysis).
package platform

import (
	"fmt"

	"mpsocsim/internal/lmi"
	"mpsocsim/internal/replay"
	"mpsocsim/internal/stbus"
	"mpsocsim/internal/tracecap"
)

// Protocol selects the communication protocol family.
type Protocol int

// Protocols.
const (
	STBus Protocol = iota
	AHB
	AXI
)

// String names the protocol.
func (p Protocol) String() string {
	switch p {
	case STBus:
		return "STBus"
	case AHB:
		return "AHB"
	case AXI:
		return "AXI"
	}
	return fmt.Sprintf("Protocol(%d)", int(p))
}

// Topology selects the interconnect organization.
type Topology int

// Topologies.
const (
	// Distributed is the full multi-layer platform of Fig.1: five
	// functional clusters on their own layers, bridged to the central
	// node.
	Distributed Topology = iota
	// Collapsed attaches every communication actor directly to the
	// central node (the paper's "collapsed" = single-layer variants),
	// trading bus-access contention against multi-hop latency.
	Collapsed
)

// String names the topology.
func (t Topology) String() string {
	if t == Collapsed {
		return "collapsed"
	}
	return "distributed"
}

// MemoryKind selects the memory subsystem.
type MemoryKind int

// Memory subsystems.
const (
	// OnChip is the on-chip shared memory variant (W wait states,
	// single-slot buffering).
	OnChip MemoryKind = iota
	// LMIDDR is the LMI memory controller driving off-chip DDR SDRAM.
	LMIDDR
)

// String names the memory kind.
func (m MemoryKind) String() string {
	if m == LMIDDR {
		return "lmi+ddr"
	}
	return "onchip"
}

// Spec fully describes one platform instance.
type Spec struct {
	Protocol Protocol
	Topology Topology
	Memory   MemoryKind

	// OnChipWaitStates configures the OnChip memory (default 1, the
	// paper's baseline).
	OnChipWaitStates int
	// LMI configures the LMIDDR memory subsystem.
	LMI lmi.Config

	// STBusType selects the protocol generation for STBus layers.
	STBusType stbus.Type
	// MaxOutstanding bounds in-flight transactions per initiator
	// interface on STBus/AXI layers.
	MaxOutstanding int
	// SplitLMIBridge upgrades the protocol-conversion bridge in front of
	// the LMI (needed only when Protocol != STBus) from the lightweight
	// blocking implementation to a split-capable one — the knob §4.2 of
	// the paper turns.
	SplitLMIBridge bool
	// TargetRespDepth sizes the response/prefetch FIFO at target bus
	// interfaces (the buffering lever of §4.1.1).
	TargetRespDepth int
	// NoMessageArbitration disables message-granularity arbitration in
	// STBus nodes — the ablation for §3's claim that messaging keeps
	// memory-controller-friendly sequences together.
	NoMessageArbitration bool
	// BridgeLatency overrides the pipeline latency (in destination
	// cycles) of every cluster bridge; 0 keeps the default of 1.
	BridgeLatency int

	// WithDSP includes the ST220-class core and its converter. The core
	// runs its cache-missing synthetic benchmark as background
	// interference for the whole application lifetime (paper §3: "tuned
	// to generate a significant amount of cache misses interfering with
	// the traffic patterns of the other cores"); it does not gate run
	// completion.
	WithDSP bool
	// DSPIterations bounds the core's benchmark; 0 or negative runs it
	// for the whole simulation (the default interference setup).
	DSPIterations int64
	// DSPDCacheKB overrides the core's D-cache size in KiB (0 keeps the
	// 32 KiB default) — the interference lever of the cache-size sweep.
	DSPDCacheKB int
	// DSPWorkingSetKB sets the benchmark's per-array working-set window
	// in KiB (0 keeps the 64 KiB default, which thrashes the default
	// cache and sustains interference). Small windows combined with a
	// cache sweep expose the reuse/thrash transition.
	DSPWorkingSetKB int

	// WorkloadScale multiplies every agent's transaction counts.
	WorkloadScale float64
	// OutstandingOverride, when positive, caps every agent's transaction
	// pipelining capability — the "simple IP bus interface" setting used
	// by the Fig.4 memory-speed sweep, where per-transaction latency is
	// exposed rather than hidden behind deep pipelining.
	OutstandingOverride int
	// ForceNonPostedWrites makes every write wait for its acknowledgement
	// (no posting). Combined with low outstanding counts this is the
	// latency-sensitive regime of the Fig.4 analysis: a distributed
	// topology acks writes locally in its store-and-forward bridges,
	// while a collapsed one waits for the (possibly slow) memory.
	ForceNonPostedWrites bool
	// TwoPhase switches the workload to the two-regime profile used for
	// the Fig.6 analysis.
	TwoPhase bool
	// Seed drives all traffic-generator randomness.
	Seed uint64

	// IO configures the I/O subsystem: a descriptor-chain DMA engine,
	// interrupt-driven device agents with deadline tracking, and a software
	// heap-allocator traffic source (DESIGN.md §17). Disabled by default so
	// the paper's reference figures are unchanged.
	IO IOSpec

	// Replay, when non-nil, swaps every IP traffic generator for a
	// trace-driven replay initiator fed from the trace's matching
	// per-initiator stream (matched by IP name). The workload knobs above
	// (scale, seed, two-phase) then only shape the expected initiator
	// set, not the traffic — the trace is the traffic. Capture a trace
	// with Platform.AttachCapture or `mpsocsim -capture`.
	Replay *tracecap.Trace
	// ReplayMode selects the replay scheduling discipline (Timed
	// re-issues at the recorded cycles; Elastic issues as fast as
	// accepted).
	ReplayMode replay.Mode
	// ReplayOutstanding bounds in-flight transactions per initiator in
	// Elastic mode (0 keeps the replay default of 8).
	ReplayOutstanding int
}

// DefaultSpec returns the paper's reference platform: distributed STBus
// with the LMI + DDR memory subsystem and the DSP enabled.
func DefaultSpec() Spec {
	return Spec{
		Protocol:         STBus,
		Topology:         Distributed,
		Memory:           LMIDDR,
		OnChipWaitStates: 1,
		LMI:              lmi.DefaultConfig(),
		STBusType:        stbus.Type3,
		MaxOutstanding:   8,
		TargetRespDepth:  8,
		WithDSP:          true,
		DSPIterations:    400,
		WorkloadScale:    1,
		Seed:             1,
	}
}

func (s *Spec) normalize() {
	if s.OnChipWaitStates < 0 {
		s.OnChipWaitStates = 0
	}
	if s.STBusType == 0 {
		s.STBusType = stbus.Type3
	}
	if s.MaxOutstanding <= 0 {
		s.MaxOutstanding = 8
	}
	if s.TargetRespDepth <= 0 {
		s.TargetRespDepth = 8
	}
	if s.WorkloadScale <= 0 {
		s.WorkloadScale = 1
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
}

// IOSpec configures the I/O subsystem of DESIGN.md §17. The zero value is
// "disabled"; with Enable set, zero-valued knobs mean "default". Defaults
// are interpreted at build time (see effective), NOT filled in here or in
// normalize: Snapshot fingerprints the normalized spec while Restore
// fingerprints the caller's raw spec, so normalization must never rewrite
// spec fields.
type IOSpec struct {
	// Enable attaches the I/O subsystem: its own 125 MHz cluster layer in
	// the distributed topology (a sixth bridge into the central node), or
	// direct central-node attachment in the collapsed one.
	Enable bool

	// DMADescriptors is the DMA engine's chain length. 0 means the default
	// (48, scaled by WorkloadScale); negative disables the DMA engine —
	// the "storm off" control of the `experiments io` scenario.
	DMADescriptors int
	// DMABurstBeats is the programmed burst length (default 16).
	DMABurstBeats int
	// DMAMinBytes/DMAMaxBytes bound the per-descriptor payload draw
	// (defaults 2048/8192).
	DMAMinBytes int
	DMAMaxBytes int
	// DMAPostedWrites posts the engine's scatter writes (subject to
	// ForceNonPostedWrites, like every other initiator).
	DMAPostedWrites bool

	// IRQAgents is how many interrupt-driven device agents to attach
	// (0 means the default of 2; negative disables them).
	IRQAgents int
	// IRQPeriodCycles/IRQJitterCycles shape the device event source in
	// I/O-clock cycles (defaults 400 ± 32).
	IRQPeriodCycles int64
	IRQJitterCycles int64
	// IRQDeadlineCycles is each event's service deadline in I/O-clock
	// cycles (default 256).
	IRQDeadlineCycles int64
	// IRQEvents is the per-agent event count (0 means the default of 48,
	// scaled by WorkloadScale).
	IRQEvents int
	// IRQBursts is the transactions per interrupt service (default 4).
	IRQBursts int

	// AllocOps is the heap allocator's malloc/free operation count.
	// 0 means the default (240, scaled by WorkloadScale); negative
	// disables the allocator.
	AllocOps int
}

// ioParams are the build-time-effective I/O parameters after default
// interpretation and workload scaling.
type ioParams struct {
	dma            bool
	dmaDescriptors int
	dmaBurstBeats  int
	dmaMinBytes    int
	dmaMaxBytes    int
	dmaPosted      bool

	irqAgents   int
	irqPeriod   int64
	irqJitter   int64
	irqDeadline int64
	irqEvents   int
	irqBursts   int

	alloc    bool
	allocOps int
}

// effective interprets the IOSpec's zero values against the defaults and the
// workload scale. Pure: it never mutates the spec (see the IOSpec doc for
// why that matters to checkpoint fingerprints).
func (s IOSpec) effective(workloadScale float64) ioParams {
	if workloadScale <= 0 {
		workloadScale = 1
	}
	def := func(v, d int) int {
		if v == 0 {
			return d
		}
		return v
	}
	def64 := func(v, d int64) int64 {
		if v == 0 {
			return d
		}
		return v
	}
	prm := ioParams{
		dma:            s.DMADescriptors >= 0,
		dmaDescriptors: int(scale(int64(def(s.DMADescriptors, 48)), workloadScale)),
		dmaBurstBeats:  def(s.DMABurstBeats, 16),
		dmaMinBytes:    def(s.DMAMinBytes, 2048),
		dmaMaxBytes:    def(s.DMAMaxBytes, 8192),
		dmaPosted:      s.DMAPostedWrites,

		irqAgents:   def(s.IRQAgents, 2),
		irqPeriod:   def64(s.IRQPeriodCycles, 400),
		irqJitter:   def64(s.IRQJitterCycles, 32),
		irqDeadline: def64(s.IRQDeadlineCycles, 256),
		irqEvents:   int(scale(int64(def(s.IRQEvents, 48)), workloadScale)),
		irqBursts:   def(s.IRQBursts, 4),

		alloc:    s.AllocOps >= 0,
		allocOps: int(scale(int64(def(s.AllocOps, 240)), workloadScale)),
	}
	if prm.irqAgents < 0 {
		prm.irqAgents = 0
	}
	if prm.dmaMaxBytes < prm.dmaMinBytes {
		prm.dmaMaxBytes = prm.dmaMinBytes
	}
	return prm
}

// Name returns a compact identifier like "STBus/distributed/lmi+ddr".
func (s Spec) Name() string {
	return fmt.Sprintf("%s/%s/%s", s.Protocol, s.Topology, s.Memory)
}
