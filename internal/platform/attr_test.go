package platform

import (
	"fmt"
	"testing"

	"mpsocsim/internal/attr"
	"mpsocsim/internal/tracecap"
)

// runWithAttribution builds the spec with attribution (full retention) and
// capture enabled, runs it to drain, and returns the platform, the result
// and the capture.
func runWithAttribution(t *testing.T, spec Spec) (*Platform, Result, *tracecap.Capture) {
	t.Helper()
	p := MustBuild(spec)
	c := tracecap.NewCapture(spec.Name(), 0)
	p.AttachCapture(c)
	p.EnableAttribution(1 << 16)
	r := p.Run(500e9)
	if !r.Done {
		t.Fatalf("run did not drain (stalled=%v)", r.Stalled)
	}
	return p, r, c
}

// testAttributionConservation proves the tentpole invariant on a full
// platform run: per-transaction segment logs are monotonic and bounded by
// [StartPS, EndPS]; the per-initiator phase totals sum exactly to the
// end-to-end totals; and each tracked transaction's attributed end-to-end
// time equals the capture-measured latency to the picosecond.
func testAttributionConservation(t *testing.T, spec Spec) {
	t.Helper()
	p, r, c := runWithAttribution(t, spec)
	col := p.Attribution()
	snap := r.Attribution
	if snap == nil {
		t.Fatal("result carries no attribution snapshot")
	}
	if snap.Finished == 0 {
		t.Fatal("no transactions finished with attribution")
	}

	// Matrix-level conservation: for every initiator the per-phase totals
	// telescope to the end-to-end total exactly (stats.Histogram sums are
	// exact integers, so this is an equality, not a tolerance).
	for _, is := range snap.Initiators {
		if is.Transactions == 0 {
			t.Errorf("%s: no attributed transactions", is.Initiator)
			continue
		}
		var sum int64
		for _, ph := range is.Phases {
			sum += ph.TotalPS
		}
		if sum != is.TotalPS {
			t.Errorf("%s: phase totals sum to %d ps, end-to-end total is %d ps",
				is.Initiator, sum, is.TotalPS)
		}
	}

	// Per-transaction invariants on the verbatim retained logs.
	txs := col.Retained()
	if len(txs) == 0 {
		t.Fatal("retention ring is empty")
	}
	if col.RetainedDropped() > 0 {
		t.Fatalf("retention ring overflowed (%d dropped): the test needs every transaction", col.RetainedDropped())
	}
	for i, tx := range txs {
		if tx.N < 1 {
			t.Fatalf("retained[%d]: empty segment log", i)
		}
		if tx.Phases[0] != attr.PhaseInitQueue {
			t.Fatalf("retained[%d]: first phase %v, want init_queue", i, tx.Phases[0])
		}
		last := tx.StartPS
		for k := 0; k < tx.N; k++ {
			if tx.Starts[k] < last {
				t.Fatalf("retained[%d]: segment %d starts at %d ps, before %d", i, k, tx.Starts[k], last)
			}
			last = tx.Starts[k]
		}
		if tx.EndPS < last {
			t.Fatalf("retained[%d]: ends at %d ps, before last segment start %d", i, tx.EndPS, last)
		}
	}

	// Cross-check against the independent capture measurement: a tracked
	// transaction's attributed end-to-end time must equal its recorded
	// completion latency converted through the initiator's clock period.
	byName := map[string][]attrTxKey{}
	for _, tx := range txs {
		name := col.InitiatorName(tx.Origin)
		byName[name] = append(byName[name], attrTxKey{tx.StartPS, tx.EndPS})
	}
	matched := 0
	for _, s := range c.Trace().Streams {
		index := map[int64]int64{} // StartPS → EndPS
		for _, k := range byName[s.Name] {
			index[k.startPS] = k.endPS
		}
		for j := range s.Events {
			ev := &s.Events[j]
			if ev.Latency < 0 || ev.Posted {
				continue // completed elsewhere (posted) or still in flight
			}
			startPS := (ev.IssueCycle + 1) * s.PeriodPS
			endPS, ok := index[startPS]
			if !ok {
				t.Fatalf("%s: no attribution record for transaction issued at cycle %d", s.Name, ev.IssueCycle)
			}
			if got, want := endPS-startPS, ev.Latency*s.PeriodPS; got != want {
				t.Fatalf("%s@%d: attributed end-to-end %d ps, capture latency %d ps",
					s.Name, ev.IssueCycle, got, want)
			}
			matched++
		}
	}
	if matched == 0 {
		t.Fatal("cross-check matched no transactions")
	}
}

type attrTxKey struct{ startPS, endPS int64 }

func TestAttributionConservation(t *testing.T) {
	for _, proto := range []Protocol{STBus, AHB, AXI} {
		t.Run(proto.String(), func(t *testing.T) {
			spec := DefaultSpec()
			spec.Protocol = proto
			spec.WorkloadScale = 0.5
			testAttributionConservation(t, spec)
		})
	}
}

func TestAttributionConservationOnChip(t *testing.T) {
	spec := DefaultSpec()
	spec.Memory = OnChip
	spec.WorkloadScale = 0.5
	testAttributionConservation(t, spec)
}

// TestAttributionOffIsBitIdentical proves attribution is a pure observer:
// the same spec run with and without attribution produces byte-identical
// capture traces (same issue cycles, same latencies, transaction by
// transaction).
func TestAttributionOffIsBitIdentical(t *testing.T) {
	spec := DefaultSpec()
	spec.WorkloadScale = 0.3

	run := func(withAttr bool) *tracecap.Trace {
		p := MustBuild(spec)
		c := tracecap.NewCapture(spec.Name(), 0)
		p.AttachCapture(c)
		if withAttr {
			p.EnableAttribution(0)
		}
		if r := p.Run(500e9); !r.Done {
			t.Fatalf("run (attr=%v) did not drain", withAttr)
		}
		return c.Trace()
	}
	base, attributed := run(false), run(true)
	if len(base.Streams) != len(attributed.Streams) {
		t.Fatalf("stream count changed: %d vs %d", len(base.Streams), len(attributed.Streams))
	}
	for i, bs := range base.Streams {
		as := attributed.Streams[i]
		if bs.Name != as.Name {
			t.Fatalf("stream %d renamed: %q vs %q", i, bs.Name, as.Name)
		}
		if fmt.Sprint(bs.Events) != fmt.Sprint(as.Events) {
			t.Fatalf("attribution perturbed the simulated traffic of %q", bs.Name)
		}
	}
}

// TestAttributionDSPRow checks the DSP core's refills land in their own
// attribution row even though the core is not a captured initiator.
func TestAttributionDSPRow(t *testing.T) {
	spec := DefaultSpec()
	spec.WorkloadScale = 0.3
	_, r, _ := runWithAttribution(t, spec)
	for _, is := range r.Attribution.Initiators {
		if is.Initiator == "st220" {
			if is.Transactions == 0 {
				t.Fatal("DSP row has no attributed transactions")
			}
			return
		}
	}
	t.Fatal("no attribution row for the DSP core")
}
