package platform

import (
	"testing"
)

// Differential testing across fabrics: the same seeded workload pushed
// through the STBus Type 3, AXI and AHB single-layer benches must agree on
// every protocol-invariant property. The golden tests pin each fabric
// against its own history; this test pins the fabrics against each other,
// catching cross-fabric drift (a generator consuming RNG draws differently
// on one bus, a fabric dropping or duplicating responses) that per-fabric
// goldens cannot see.

// diffRun is the protocol-invariant summary of one single-layer run.
type diffRun struct {
	cycles    int64
	issued    int64
	completed int64
	// per-initiator workload totals, index-aligned across fabrics
	reads  []int64
	writes []int64
	bytes  []int64
	// memory-side transaction count, summed over targets
	memOps int64
}

func diffSpec(proto Protocol) SingleLayerSpec {
	spec := DefaultSingleLayerSpec(proto, 6)
	spec.GapMean = 0 // many-to-many load: every initiator pushes hard
	spec.Txns = 150
	spec.ReadFrac = 0.7 // exercise the write path too
	spec.Seed = 7
	return spec
}

func runDiff(t *testing.T, proto Protocol) diffRun {
	t.Helper()
	sl, err := BuildSingleLayer(diffSpec(proto))
	if err != nil {
		t.Fatalf("%s: %v", proto, err)
	}
	r := sl.Run(5e12)
	if !r.Done {
		t.Fatalf("%s: run did not drain", proto)
	}
	out := diffRun{cycles: r.Cycles, issued: r.Issued, completed: r.Completed}
	for _, g := range sl.Generators() {
		for _, a := range g.Stats() {
			out.reads = append(out.reads, a.Reads)
			out.writes = append(out.writes, a.Writes)
			out.bytes = append(out.bytes, a.Bytes)
		}
	}
	for _, m := range sl.Memories() {
		ms := m.Stats()
		out.memOps += ms.Reads + ms.Writes
	}
	return out
}

func TestDifferentialAcrossFabrics(t *testing.T) {
	runs := map[Protocol]diffRun{}
	for _, proto := range []Protocol{STBus, AXI, AHB} {
		runs[proto] = runDiff(t, proto)
	}
	ref := runs[STBus]

	// Invariant 1: conservation — every request gets exactly one
	// response, on every fabric, and the memories saw every transaction.
	wantIssued := int64(6 * 150)
	for proto, r := range runs {
		if r.issued != wantIssued {
			t.Errorf("%s: issued %d, want %d", proto, r.issued, wantIssued)
		}
		if r.completed != r.issued {
			t.Errorf("%s: response count %d != request count %d", proto, r.completed, r.issued)
		}
		if r.memOps != r.issued {
			t.Errorf("%s: memories served %d ops for %d requests", proto, r.memOps, r.issued)
		}
	}

	// Invariant 2: the workload is fabric-independent — identical
	// per-initiator read/write/byte totals on every fabric (each
	// initiator owns one agent, so its RNG draw sequence cannot depend
	// on bus timing).
	for _, proto := range []Protocol{AXI, AHB} {
		r := runs[proto]
		if len(r.reads) != len(ref.reads) {
			t.Fatalf("%s: %d agents vs %d on STBus", proto, len(r.reads), len(ref.reads))
		}
		for i := range ref.reads {
			if r.reads[i] != ref.reads[i] || r.writes[i] != ref.writes[i] || r.bytes[i] != ref.bytes[i] {
				t.Errorf("%s: initiator %d moved r=%d w=%d bytes=%d, STBus moved r=%d w=%d bytes=%d",
					proto, i, r.reads[i], r.writes[i], r.bytes[i],
					ref.reads[i], ref.writes[i], ref.bytes[i])
			}
		}
	}

	// Invariant 3: relative performance — under many-to-many load the
	// non-split AHB bus serializes what STBus and AXI overlap (paper
	// §4.1.1), so it can never win.
	if runs[AHB].cycles < runs[STBus].cycles {
		t.Errorf("AHB (%d cycles) beat STBus (%d) under many-to-many load", runs[AHB].cycles, runs[STBus].cycles)
	}
	if runs[AHB].cycles < runs[AXI].cycles {
		t.Errorf("AHB (%d cycles) beat AXI (%d) under many-to-many load", runs[AHB].cycles, runs[AXI].cycles)
	}
}
