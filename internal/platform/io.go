package platform

import (
	"fmt"

	"mpsocsim/internal/bridge"
	"mpsocsim/internal/bus"
	mpio "mpsocsim/internal/io"
	"mpsocsim/internal/replay"
	"mpsocsim/internal/sim"
)

// IOMHz is the I/O subsystem's clock frequency (MHz): a 125 MHz peripheral
// domain whose 8000 ps period is an exact multiple of the 250 MHz central
// clock's 4000 ps.
const IOMHz = 125

// I/O address windows (disjoint from the cluster map in workload.go, which
// uses 0..30 MB, and the DSP benchmark arrays at 30..34 MB). Address decoding
// is memory-centric — every window lands on the single memory target — so
// the windows only shape SDRAM row/bank locality.
const (
	ioHeapBase  = 36 << 20 // heap-allocator arena (4 MB)
	ioHeapSize  = 4 << 20
	ioDescBase  = 44 << 20 // DMA descriptor chain
	ioSrcBase   = 46 << 20 // DMA gather window
	ioDstBase   = 50 << 20 // DMA scatter window
	ioDMARegion = 2 << 20
	ioIRQBase   = 54 << 20 // first device buffer window; 2 MB stride per agent
	ioIRQStride = 2 << 20
	ioIRQRegion = 1 << 20
)

// buildIO attaches the I/O subsystem (DESIGN.md §17): a descriptor-chain DMA
// engine and interrupt-driven device agents on their own cluster layer
// ("n6_io", distributed) or directly on the central node (collapsed), plus
// the software heap allocator, which models malloc/free running on the DSP —
// it shares the core's 32-bit link when the DSP is present and joins the I/O
// layer otherwise. All three are ordinary platform initiators: they gate run
// completion, pool requests, stamp attribution, register metrics, snapshot,
// and replay-swap like every IP slot.
func (p *Platform) buildIO() error {
	if !p.Spec.IO.Enable {
		return nil
	}
	prm := p.Spec.IO.effective(p.Spec.WorkloadScale)
	onDSP := p.core != nil && p.dspLink != nil

	// Attach point. The distributed branch mirrors buildClusters exactly:
	// bridge first, initiators registered on the layer clock, then the
	// fabric and the bridge target side, then the bridge initiator side
	// journaled on the central clock under the cluster unit. The layer is
	// pay-as-you-go: when no initiator would attach to it (every family
	// disabled, or only the DSP-side allocator requested), no clock, fabric
	// or bridge is built, so an I/O-less configuration costs nothing.
	distributed := p.Spec.Topology == Distributed &&
		(prm.dma || prm.irqAgents > 0 || (prm.alloc && !onDSP))
	clk := p.CentralClk
	fab := p.centralFab
	unit := "central"
	var br *bridge.Bridge
	if distributed {
		unit = "n6_io"
		clk = p.Kernel.NewClock(unit, IOMHz)
		fab = p.newFabric(unit)
		p.fabrics = append(p.fabrics, fabricEntry{fab, unit})
		br = bridge.New(unit+"_br", p.clusterBridgeConfig(), clk, p.CentralClk)
		p.bridges[unit+"_br"] = br
		fab.AttachTarget(br.TargetPort())
		p.centralFab.AttachInitiator(br.InitiatorPort())
	}
	addGen := func(gen Initiator) {
		fab.AttachInitiator(gen.Port())
		if distributed {
			clk.Register(gen)
		} else {
			p.regCentral("central", gen)
		}
		p.gens = append(p.gens, gen)
		p.genCluster = append(p.genCluster, unit)
		p.genClk = append(p.genClk, clk)
	}

	if prm.dma {
		origin := len(p.gens)
		cfg := mpio.DMAConfig{
			Name:         "iodma0",
			Descriptors:  prm.dmaDescriptors,
			DescBase:     ioDescBase,
			SrcBase:      ioSrcBase,
			DstBase:      ioDstBase,
			RegionSize:   ioDMARegion,
			MinBytes:     prm.dmaMinBytes,
			MaxBytes:     prm.dmaMaxBytes,
			BurstBeats:   prm.dmaBurstBeats,
			Outstanding:  p.Spec.MaxOutstanding,
			BytesPerBeat: 8,
			PostedWrites: prm.dmaPosted && !p.Spec.ForceNonPostedWrites,
			Prio:         2,
			Seed:         p.Spec.Seed ^ 0xd0a0,
		}
		gen, err := p.ioInitiator(cfg.Name, clk, origin, func(ids *bus.IDSource) (Initiator, error) {
			return mpio.NewDMA(cfg, clk, ids, origin)
		})
		if err != nil {
			return err
		}
		addGen(gen)
	}

	for i := 0; i < prm.irqAgents; i++ {
		origin := len(p.gens)
		cfg := mpio.IRQConfig{
			Name:           fmt.Sprintf("irq%d", i),
			Events:         prm.irqEvents,
			PeriodCycles:   prm.irqPeriod,
			JitterCycles:   prm.irqJitter,
			DeadlineCycles: prm.irqDeadline,
			Bursts:         prm.irqBursts,
			BurstBeats:     8,
			ReadFrac:       0.75,
			RegionBase:     uint64(ioIRQBase + i*ioIRQStride),
			RegionSize:     ioIRQRegion,
			BytesPerBeat:   8,
			Prio:           3, // interrupt service outranks bulk moves
			Seed:           p.Spec.Seed ^ (0x19a0 + uint64(i)),
		}
		gen, err := p.ioInitiator(cfg.Name, clk, origin, func(ids *bus.IDSource) (Initiator, error) {
			return mpio.NewIRQ(cfg, clk, ids, origin)
		})
		if err != nil {
			return err
		}
		addGen(gen)
	}

	if prm.alloc {
		origin := len(p.gens)
		aclk, bpb := clk, 8
		if onDSP {
			aclk, bpb = p.CPUClk, 4
		}
		cfg := mpio.AllocConfig{
			Name:         "halloc",
			Ops:          prm.allocOps,
			MinBytes:     16,
			MaxBytes:     4096,
			HeapBase:     ioHeapBase,
			HeapSize:     ioHeapSize,
			LiveCap:      32,
			GapMean:      8,
			BytesPerBeat: bpb,
			Seed:         p.Spec.Seed ^ 0x4a11,
		}
		gen, err := p.ioInitiator(cfg.Name, aclk, origin, func(ids *bus.IDSource) (Initiator, error) {
			return mpio.NewAllocator(cfg, aclk, ids, origin)
		})
		if err != nil {
			return err
		}
		if onDSP {
			p.dspLink.AttachInitiator(gen.Port())
			p.CPUClk.Register(gen)
			p.gens = append(p.gens, gen)
			p.genCluster = append(p.genCluster, "cpu")
			p.genClk = append(p.genClk, p.CPUClk)
		} else {
			addGen(gen)
		}
	}

	if distributed {
		clk.Register(fab)
		clk.Register(br.TargetSide)
		p.regCentral(unit, br.InitiatorSide)
		p.clusterFab = append(p.clusterFab, fab)
	}
	return nil
}

// ioInitiator builds one I/O traffic slot: the live model normally, or —
// when the spec carries a replay trace — the trace-driven replayer fed from
// the stream recorded under the same name, exactly like the IP slots in
// newInitiator.
func (p *Platform) ioInitiator(name string, clk *sim.Clock, origin int, mk func(*bus.IDSource) (Initiator, error)) (Initiator, error) {
	if p.Spec.Replay == nil {
		return mk(p.newIDSource(origin))
	}
	st := p.Spec.Replay.Stream(name)
	if st == nil {
		return nil, fmt.Errorf("platform: replay trace %q has no stream for initiator %q (trace streams: %v)",
			p.Spec.Replay.Platform, name, p.Spec.Replay.StreamNames())
	}
	return replay.New(replay.Config{
		Stream:        st,
		Mode:          p.Spec.ReplayMode,
		Outstanding:   p.Spec.ReplayOutstanding,
		PortReqDepth:  4,
		PortRespDepth: 8,
	}, clk, p.newIDSource(origin), origin)
}
