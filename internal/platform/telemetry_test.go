package platform

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"mpsocsim/internal/telemetry"
)

// drainNDJSON renders every record the collector holds as NDJSON bytes.
func drainNDJSON(t *testing.T, col *telemetry.Collector) []byte {
	t.Helper()
	var buf bytes.Buffer
	s := telemetry.NewStreamer(&buf, col)
	if err := s.Close(); err != nil {
		t.Fatalf("streamer: %v", err)
	}
	if n := s.Skipped(); n != 0 {
		t.Fatalf("telemetry ring overflowed: %d records lost", n)
	}
	return buf.Bytes()
}

// TestTelemetryOffIsBitIdentical proves telemetry is purely observational:
// the full run report (every counter, gauge, histogram, timeline and the
// summary tables) of a telemetry-enabled run is byte-identical to a plain
// one.
func TestTelemetryOffIsBitIdentical(t *testing.T) {
	spec := DefaultSpec()
	spec.WorkloadScale = 0.3

	run := func(withTele bool) []byte {
		p := MustBuild(spec)
		if withTele {
			p.EnableTelemetry(256, 1<<14)
		}
		r := p.Run(500e9)
		if !r.Done {
			t.Fatalf("run (telemetry=%v) did not drain (stalled=%v)", withTele, r.Stalled)
		}
		var buf bytes.Buffer
		if err := r.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		if err := r.WriteSummary(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(run(false), run(true)) {
		t.Fatal("enabling telemetry perturbed the run report")
	}
}

// TestZeroAllocSteadyStateWithTelemetry extends the PR-2 invariant to the
// telemetry hot path: stepping the kernel plus the per-step snapshot poll —
// including the snapshots themselves, every 64 central cycles — performs
// zero heap allocations once the platform is warm.
func TestZeroAllocSteadyStateWithTelemetry(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement is slow under -short")
	}
	p := MustBuild(DefaultSpec())
	col := p.EnableTelemetry(64, 256)
	for p.CentralClk.Cycles() < 5000 {
		if !p.Kernel.Step() {
			t.Fatal("workload drained during warm-up")
		}
		p.pollTelemetry()
	}

	allocs := testing.AllocsPerRun(2000, func() {
		p.Kernel.Step()
		p.pollTelemetry()
	})
	if allocs != 0 {
		t.Fatalf("steady-state Step with telemetry allocates: %.2f allocs/step (want 0)", allocs)
	}
	if col.Seq() == 0 {
		t.Fatal("no telemetry snapshots collected")
	}
}

// TestTelemetryShardedConformance proves the determinism contract of the
// record stream: the NDJSON telemetry of a sharded run is byte-identical to
// the serial one at every shard count, because snapshots are only taken at
// window barriers — instants where the sharded state equals the serial
// state by the bit-identical-execution contract.
func TestTelemetryShardedConformance(t *testing.T) {
	spec := DefaultSpec()
	spec.WorkloadScale = 0.3

	var want []byte
	for _, shards := range []int{1, 2, 4} {
		p := MustBuild(spec)
		col := p.EnableTelemetry(256, 1<<14)
		if shards > 1 {
			if err := p.EnableSharding(shards); err != nil {
				t.Fatalf("EnableSharding(%d): %v", shards, err)
			}
		}
		r := p.Run(5e12)
		if !r.Done {
			t.Fatalf("shards=%d did not drain (stalled=%v)", shards, r.Stalled)
		}
		got := drainNDJSON(t, col)
		if shards == 1 {
			want = got
			if len(want) == 0 {
				t.Fatal("serial run produced no telemetry records")
			}
			continue
		}
		if !bytes.Equal(want, got) {
			wl, gl := strings.Split(string(want), "\n"), strings.Split(string(got), "\n")
			for i := range wl {
				if i >= len(gl) || wl[i] != gl[i] {
					t.Fatalf("shards=%d: record %d differs\nserial:  %.200s\nsharded: %.200s", shards, i, wl[i], gl[i])
				}
			}
			t.Fatalf("shards=%d: NDJSON differs from serial (%d vs %d bytes)", shards, len(want), len(got))
		}
	}
}

// TestTelemetryRecordSchema validates the NDJSON form: every line is a JSON
// object carrying the schema tag and the documented keys, sequence numbers
// are dense from zero, and the wall-clock offset never leaks into the JSON.
func TestTelemetryRecordSchema(t *testing.T) {
	spec := DefaultSpec()
	spec.WorkloadScale = 0.2
	p := MustBuild(spec)
	col := p.EnableTelemetry(256, 1<<14)
	if r := p.Run(500e9); !r.Done {
		t.Fatalf("run did not drain (stalled=%v)", r.Stalled)
	}
	lines := bytes.Split(bytes.TrimSpace(drainNDJSON(t, col)), []byte("\n"))
	if len(lines) == 0 {
		t.Fatal("no records")
	}
	for i, line := range lines {
		var m map[string]any
		if err := json.Unmarshal(line, &m); err != nil {
			t.Fatalf("record %d is not valid JSON: %v", i, err)
		}
		if m["schema"] != telemetry.Schema {
			t.Fatalf("record %d schema = %v, want %q", i, m["schema"], telemetry.Schema)
		}
		for _, key := range []string{"seq", "cycle", "time_ps", "issued", "completed", "initiators", "counters", "gauges"} {
			if _, ok := m[key]; !ok {
				t.Fatalf("record %d missing key %q", i, key)
			}
		}
		if got := int64(m["seq"].(float64)); got != int64(i) {
			t.Fatalf("record %d has seq %d (sequence not dense)", i, got)
		}
		if _, leaked := m["WallNS"]; leaked {
			t.Fatalf("record %d leaks the wall-clock offset", i)
		}
	}
}

// forcedDeadlockSpec wedges a run on purpose: the I/O interrupt agents wait
// for device events millions of I/O cycles apart while every other traffic
// source is disabled or drains quickly, so the progress watchdog sees a
// silent window long before the first event fires.
func forcedDeadlockSpec() Spec {
	spec := DefaultSpec()
	spec.WorkloadScale = 0.05
	spec.IO.Enable = true
	spec.IO.IRQPeriodCycles = 4_000_000
	spec.IO.IRQEvents = 4
	spec.IO.DMADescriptors = -1
	spec.IO.AllocOps = -1
	return spec
}

// TestForcedDeadlockForensics drives the watchdog into firing and asserts
// the stall report answers the forensic questions: which FIFOs are fullest,
// what each initiator last did, which clock domains went quiet, and which
// counters still moved in the final window (the DSP keeps running — the
// wedge is in the I/O subsystem, and the report shows exactly that split).
func TestForcedDeadlockForensics(t *testing.T) {
	p := MustBuild(forcedDeadlockSpec())
	r := p.Run(5e12)
	if !r.Stalled {
		t.Fatalf("expected the watchdog to fire (done=%v issued=%d completed=%d)", r.Done, r.Issued, r.Completed)
	}

	rep := p.StallReport("test stall", 10)
	if rep.Cycle <= 0 || rep.TimePS <= 0 {
		t.Fatalf("report carries no position: cycle=%d time=%d", rep.Cycle, rep.TimePS)
	}
	if len(rep.Fifos) == 0 {
		t.Fatal("report lists no FIFOs")
	}
	for i := 1; i < len(rep.Fifos); i++ {
		if rep.Fifos[i].Fill > rep.Fifos[i-1].Fill {
			t.Fatalf("FIFO rows not fullest-first at %d", i)
		}
	}
	if len(rep.Initiators) == 0 {
		t.Fatal("report lists no initiators")
	}
	var sawIRQ bool
	for _, in := range rep.Initiators {
		if strings.HasPrefix(in.Name, "irq") {
			sawIRQ = true
			if in.LastIssueCycle < 0 && in.Issued > 0 {
				t.Errorf("%s issued %d but has no last-issue cycle", in.Name, in.Issued)
			}
		}
	}
	if !sawIRQ {
		t.Fatal("no interrupt agent row in the report")
	}
	if len(rep.Domains) < 2 {
		t.Fatalf("expected >= 2 clock domains, got %d", len(rep.Domains))
	}
	if rep.Domains[0].Clock != "central" {
		t.Fatalf("first domain = %q, want central", rep.Domains[0].Clock)
	}
	for _, d := range rep.Domains {
		if d.Cycles <= 0 {
			t.Errorf("domain %s never ticked", d.Clock)
		}
	}

	var buf bytes.Buffer
	if err := rep.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"stall report: test stall",
		"fullest FIFOs",
		"oldest outstanding per initiator",
		"last progress per clock domain",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered report missing %q:\n%s", want, out)
		}
	}
}

// TestStallReportAfterBudgetExhaustion covers the exit-3 forensics path: a
// run stopped by the simulated-time budget (not the watchdog) still
// assembles a coherent report.
func TestStallReportAfterBudgetExhaustion(t *testing.T) {
	spec := DefaultSpec()
	spec.WorkloadScale = 0.3
	p := MustBuild(spec)
	r := p.Run(10e6) // 10 us: far too short to drain
	if r.Done || r.Stalled {
		t.Fatalf("expected budget exhaustion, got done=%v stalled=%v", r.Done, r.Stalled)
	}
	rep := p.StallReport("budget", 5)
	if len(rep.Fifos) == 0 || len(rep.Fifos) > 5 {
		t.Fatalf("top-5 FIFO list has %d rows", len(rep.Fifos))
	}
	var inFlight int
	for _, in := range rep.Initiators {
		inFlight += in.InFlight
		if in.InFlight > 0 && in.OldestAgePS <= 0 {
			t.Errorf("%s has %d in flight but oldest age %d ps", in.Name, in.InFlight, in.OldestAgePS)
		}
	}
	if inFlight == 0 {
		t.Fatal("mid-run cut shows no transaction in flight")
	}
}
