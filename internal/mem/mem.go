// Package mem models the on-chip shared memory of the paper's architectural
// variants: a single-ported target with a configurable number of wait states
// and single-slot processing (one transaction in flight), so each data beat
// costs 1+W cycles on the response channel — with W=1 this is exactly the
// 50%-efficiency bound discussed in §4.1.2 of the paper.
package mem

import (
	"fmt"

	"mpsocsim/internal/attr"
	"mpsocsim/internal/bus"
	"mpsocsim/internal/metrics"
)

// Config parameterizes an on-chip memory.
type Config struct {
	// WaitStates is the number of idle cycles before each data beat.
	WaitStates int
	// ReqDepth is the input FIFO depth of the bus interface. The paper's
	// simple memory uses single-slot buffering (depth 1).
	ReqDepth int
	// RespDepth is the response FIFO depth.
	RespDepth int
}

// DefaultConfig matches the paper's simple on-chip memory: 1 wait state,
// single-slot buffering.
func DefaultConfig() Config {
	return Config{WaitStates: 1, ReqDepth: 1, RespDepth: 2}
}

// Memory is a sim.Clocked on-chip memory target. It owns its TargetPort and
// commits the port FIFOs in its Update phase.
type Memory struct {
	name string
	cfg  Config
	port *bus.TargetPort

	// in-flight transaction state
	cur      *bus.Request
	beatIdx  int
	waitLeft int

	// pool reclaims posted writes, which die here with no response (nil
	// outside platform builds).
	pool *bus.RequestPool

	// attrCol/attrNow, when set, stamp the memory-side attribution phases
	// and close posted-write records (see EnableAttribution).
	attrCol *attr.Collector
	attrNow func() int64

	// statistics
	reads, writes   int64
	beats           int64
	busyCycles      int64
	totalCycles     int64
	acceptedPosted  int64
	stalledRespPush int64
}

// New builds a memory with the given configuration.
func New(name string, cfg Config) *Memory {
	if cfg.WaitStates < 0 {
		panic(fmt.Sprintf("mem: negative wait states for %q", name))
	}
	if cfg.ReqDepth <= 0 {
		cfg.ReqDepth = 1
	}
	if cfg.RespDepth <= 0 {
		cfg.RespDepth = 2
	}
	return &Memory{
		name: name,
		cfg:  cfg,
		port: bus.NewTargetPort(name, cfg.ReqDepth, cfg.RespDepth),
	}
}

// UseRequestPool makes the memory reclaim consumed posted writes into the
// given pool. Call before simulation starts.
func (m *Memory) UseRequestPool(p *bus.RequestPool) { m.pool = p }

// EnableAttribution makes the memory stamp latency-attribution phases:
// PhaseMemService when a request is popped for service (wait states and beat
// absorption) and PhaseRespReturn at the first response beat or write ack. A
// posted write's record is finished here — the transaction's life ends at
// absorption. now must return the memory clock's current edge in absolute
// picoseconds (sim.Clock.NowPS).
func (m *Memory) EnableAttribution(col *attr.Collector, now func() int64) {
	m.attrCol = col
	m.attrNow = now
}

// Port returns the target port a fabric attaches to.
func (m *Memory) Port() *bus.TargetPort { return m.port }

// Name returns the memory's instance name.
func (m *Memory) Name() string { return m.name }

// Eval advances the memory state machine one cycle.
func (m *Memory) Eval() {
	m.totalCycles++
	if m.cur == nil {
		if m.port.Req.CanPop() {
			m.cur = m.port.Req.Pop()
			if rec := m.cur.Attr; rec != nil && m.attrNow != nil {
				rec.Enter(attr.PhaseMemService, m.attrNow())
			}
			m.beatIdx = 0
			m.waitLeft = m.cfg.WaitStates
			if m.cur.Op == bus.OpRead {
				m.reads++
			} else {
				m.writes++
			}
		}
		return
	}
	m.busyCycles++
	if m.waitLeft > 0 {
		m.waitLeft--
		return
	}
	switch m.cur.Op {
	case bus.OpRead:
		// emit one data beat per (1+W) cycles
		if !m.port.Resp.CanPush() {
			m.stalledRespPush++
			return
		}
		last := m.beatIdx == m.cur.Beats-1
		if m.beatIdx == 0 {
			if rec := m.cur.Attr; rec != nil && m.attrNow != nil {
				rec.Enter(attr.PhaseRespReturn, m.attrNow())
			}
		}
		m.port.Resp.Push(bus.Beat{Req: m.cur, Idx: m.beatIdx, Last: last})
		m.beats++
		m.beatIdx++
		if last {
			m.cur = nil
		} else {
			m.waitLeft = m.cfg.WaitStates
		}
	case bus.OpWrite:
		// absorb one write beat per (1+W) cycles; ack (if non-posted)
		// after the last beat.
		m.beats++
		m.beatIdx++
		if m.beatIdx >= m.cur.Beats {
			if m.cur.Posted {
				m.acceptedPosted++
				// A posted write has no response: this is the end of
				// its life, so the memory owns its reclamation (and its
				// attribution record).
				if rec := m.cur.Attr; rec != nil && m.attrCol != nil {
					m.attrCol.Finish(rec, m.attrNow())
				}
				m.pool.Put(m.cur)
				m.cur = nil
				return
			}
			if !m.port.Resp.CanPush() {
				m.stalledRespPush++
				m.beatIdx-- // retry ack next cycle
				m.beats--
				return
			}
			if rec := m.cur.Attr; rec != nil && m.attrNow != nil {
				rec.Enter(attr.PhaseRespReturn, m.attrNow())
			}
			m.port.Resp.Push(bus.Beat{Req: m.cur, Idx: 0, Last: true})
			m.cur = nil
		} else {
			m.waitLeft = m.cfg.WaitStates
		}
	}
}

// Update commits the port FIFOs.
func (m *Memory) Update() {
	m.port.Update()
}

// RegisterMetrics registers the memory's telemetry under "mem.<name>.*" on
// the given clock domain: access/beat/busy counters, a response-push stall
// counter, and a request-queue-depth gauge. Func-backed: the beat state
// machine is untouched.
func (m *Memory) RegisterMetrics(reg *metrics.Registry, clock string) {
	p := "mem." + m.name + "."
	reg.CounterFunc(p+"reads", func() int64 { return m.reads })
	reg.CounterFunc(p+"writes", func() int64 { return m.writes })
	reg.CounterFunc(p+"beats", func() int64 { return m.beats })
	reg.CounterFunc(p+"busy_cycles", func() int64 { return m.busyCycles })
	reg.CounterFunc(p+"total_cycles", func() int64 { return m.totalCycles })
	reg.CounterFunc(p+"resp_stall_cycles", func() int64 { return m.stalledRespPush })
	reg.GaugeFunc(p+"queue_depth", clock, func() int64 { return int64(m.port.Req.Len()) })
}

// Stats reports lifetime counters.
func (m *Memory) Stats() Stats {
	return Stats{
		Reads:       m.reads,
		Writes:      m.writes,
		Beats:       m.beats,
		BusyCycles:  m.busyCycles,
		TotalCycles: m.totalCycles,
	}
}

// Stats summarizes memory activity.
type Stats struct {
	Reads       int64
	Writes      int64
	Beats       int64
	BusyCycles  int64
	TotalCycles int64
}

// Utilization returns the fraction of cycles the memory was processing a
// transaction.
func (s Stats) Utilization() float64 {
	if s.TotalCycles == 0 {
		return 0
	}
	return float64(s.BusyCycles) / float64(s.TotalCycles)
}
