package mem

import (
	"testing"

	"mpsocsim/internal/bus"
	"mpsocsim/internal/sim"
)

// run builds a kernel with the memory on a 100 MHz clock, injects the given
// requests through a feeding component, and collects response beats until n
// beats arrive or the cycle budget runs out. It returns collected beats and
// the cycle at which each arrived.
func run(t *testing.T, cfg Config, reqs []*bus.Request, wantBeats int, budget int64) ([]bus.Beat, []int64) {
	t.Helper()
	k := sim.NewKernel()
	clk := k.NewClock("clk", 100)
	m := New("mem", cfg)
	var got []bus.Beat
	var at []int64
	i := 0
	feeder := &sim.ClockedFunc{
		OnEval: func() {
			if i < len(reqs) && m.Port().Req.CanPush() {
				m.Port().Req.Push(reqs[i])
				i++
			}
			for m.Port().Resp.CanPop() {
				got = append(got, m.Port().Resp.Pop())
				at = append(at, clk.Cycles())
			}
		},
	}
	clk.Register(feeder)
	clk.Register(m)
	k.RunWhile(func() bool { return len(got) < wantBeats }, budget*clk.PeriodPS())
	return got, at
}

func req(id uint64, op bus.Op, beats int) *bus.Request {
	return &bus.Request{ID: id, Op: op, Addr: 0x100 * id, Beats: beats, BytesPerBeat: 8}
}

func TestReadBurstBeatsAndOrder(t *testing.T) {
	beats, _ := run(t, DefaultConfig(), []*bus.Request{req(1, bus.OpRead, 4)}, 4, 200)
	if len(beats) != 4 {
		t.Fatalf("got %d beats, want 4", len(beats))
	}
	for i, b := range beats {
		if b.Idx != i {
			t.Fatalf("beat %d has idx %d", i, b.Idx)
		}
		if b.Req.ID != 1 {
			t.Fatalf("beat for wrong request %d", b.Req.ID)
		}
		if b.Last != (i == 3) {
			t.Fatalf("beat %d Last=%v", i, b.Last)
		}
	}
}

func TestWaitStatesThrottleBeatRate(t *testing.T) {
	// W=1: beats must be spaced 2 cycles apart (50% efficiency).
	_, at1 := run(t, Config{WaitStates: 1, ReqDepth: 1, RespDepth: 2}, []*bus.Request{req(1, bus.OpRead, 4)}, 4, 200)
	for i := 1; i < len(at1); i++ {
		if gap := at1[i] - at1[i-1]; gap != 2 {
			t.Fatalf("W=1 beat gap = %d, want 2", gap)
		}
	}
	// W=0: beats back to back.
	_, at0 := run(t, Config{WaitStates: 0, ReqDepth: 1, RespDepth: 2}, []*bus.Request{req(1, bus.OpRead, 4)}, 4, 200)
	for i := 1; i < len(at0); i++ {
		if gap := at0[i] - at0[i-1]; gap != 1 {
			t.Fatalf("W=0 beat gap = %d, want 1", gap)
		}
	}
	// W=3: gap 4.
	_, at3 := run(t, Config{WaitStates: 3, ReqDepth: 1, RespDepth: 2}, []*bus.Request{req(1, bus.OpRead, 2)}, 2, 200)
	if gap := at3[1] - at3[0]; gap != 4 {
		t.Fatalf("W=3 beat gap = %d, want 4", gap)
	}
}

func TestNonPostedWriteAck(t *testing.T) {
	beats, _ := run(t, DefaultConfig(), []*bus.Request{req(1, bus.OpWrite, 4)}, 1, 200)
	if len(beats) != 1 {
		t.Fatalf("got %d ack beats, want 1", len(beats))
	}
	if !beats[0].Last {
		t.Fatal("write ack must be Last")
	}
}

func TestPostedWriteNoAck(t *testing.T) {
	r := req(1, bus.OpWrite, 4)
	r.Posted = true
	// follow with a read so we can detect completion
	beats, _ := run(t, DefaultConfig(), []*bus.Request{r, req(2, bus.OpRead, 1)}, 1, 300)
	if len(beats) != 1 {
		t.Fatalf("got %d beats, want 1 (read only)", len(beats))
	}
	if beats[0].Req.ID != 2 {
		t.Fatalf("beat is for req %d, want the read (2): posted write must not ack", beats[0].Req.ID)
	}
}

func TestSingleSlotBlocksSecondRequest(t *testing.T) {
	// With ReqDepth=1 and single in-flight processing, a long read delays
	// the second request's first beat by the full first transaction.
	beats, at := run(t, Config{WaitStates: 1, ReqDepth: 1, RespDepth: 2},
		[]*bus.Request{req(1, bus.OpRead, 4), req(2, bus.OpRead, 4)}, 8, 400)
	if len(beats) != 8 {
		t.Fatalf("got %d beats, want 8", len(beats))
	}
	// first 4 beats from req 1, next 4 from req 2 (strict order)
	for i := 0; i < 4; i++ {
		if beats[i].Req.ID != 1 || beats[i+4].Req.ID != 2 {
			t.Fatal("responses interleaved; single-slot memory must serialize")
		}
	}
	// gap between transactions includes second request's wait states
	if at[4]-at[3] < 2 {
		t.Fatalf("inter-transaction gap = %d, want >= 2", at[4]-at[3])
	}
}

func TestStatsAccounting(t *testing.T) {
	k := sim.NewKernel()
	clk := k.NewClock("clk", 100)
	m := New("mem", DefaultConfig())
	done := 0
	reqs := []*bus.Request{req(1, bus.OpRead, 2), req(2, bus.OpWrite, 2)}
	i := 0
	clk.Register(&sim.ClockedFunc{OnEval: func() {
		if i < len(reqs) && m.Port().Req.CanPush() {
			m.Port().Req.Push(reqs[i])
			i++
		}
		for m.Port().Resp.CanPop() {
			if m.Port().Resp.Pop().Last {
				done++
			}
		}
	}})
	clk.Register(m)
	k.RunWhile(func() bool { return done < 2 }, 1e9)
	s := m.Stats()
	if s.Reads != 1 || s.Writes != 1 {
		t.Fatalf("reads/writes = %d/%d, want 1/1", s.Reads, s.Writes)
	}
	if s.Beats != 4 {
		t.Fatalf("beats = %d, want 4", s.Beats)
	}
	if u := s.Utilization(); u <= 0 || u > 1 {
		t.Fatalf("utilization = %v out of (0,1]", u)
	}
}

func TestUtilizationZeroCycles(t *testing.T) {
	var s Stats
	if s.Utilization() != 0 {
		t.Fatal("zero-cycle utilization must be 0")
	}
}

func TestRespBackpressureDoesNotDropBeats(t *testing.T) {
	// Tiny response FIFO and a consumer that pops only every 5th cycle:
	// all beats must still arrive, in order.
	k := sim.NewKernel()
	clk := k.NewClock("clk", 100)
	m := New("mem", Config{WaitStates: 0, ReqDepth: 1, RespDepth: 1})
	var got []bus.Beat
	pushed := false
	clk.Register(&sim.ClockedFunc{OnEval: func() {
		if !pushed && m.Port().Req.CanPush() {
			m.Port().Req.Push(req(1, bus.OpRead, 6))
			pushed = true
		}
		if clk.Cycles()%5 == 0 && m.Port().Resp.CanPop() {
			got = append(got, m.Port().Resp.Pop())
		}
	}})
	clk.Register(m)
	k.RunWhile(func() bool { return len(got) < 6 }, 1e9)
	if len(got) != 6 {
		t.Fatalf("got %d beats, want 6", len(got))
	}
	for i, b := range got {
		if b.Idx != i {
			t.Fatalf("beat order violated at %d: idx %d", i, b.Idx)
		}
	}
}

func TestNewPanicsOnNegativeWaitStates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New("bad", Config{WaitStates: -1})
}
