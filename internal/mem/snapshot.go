package mem

import (
	"mpsocsim/internal/attr"
	"mpsocsim/internal/bus"
	"mpsocsim/internal/snapshot"
)

// EncodeState serializes the memory's mutable state (DESIGN.md §16): the
// owned target port, the in-flight transaction and the lifetime counters.
func (m *Memory) EncodeState(e *snapshot.Encoder) {
	e.Tag('M')
	bus.EncodeTargetPortState(e, m.port)
	bus.EncodeReqRef(e, m.cur)
	e.I(int64(m.beatIdx))
	e.I(int64(m.waitLeft))
	e.I(m.reads)
	e.I(m.writes)
	e.I(m.beats)
	e.I(m.busyCycles)
	e.I(m.totalCycles)
	e.I(m.acceptedPosted)
	e.I(m.stalledRespPush)
}

// DecodeState restores a memory serialized by EncodeState.
func (m *Memory) DecodeState(d *snapshot.Decoder, col *attr.Collector) {
	d.Tag('M')
	bus.DecodeTargetPortState(d, m.port, col)
	m.cur = bus.DecodeReqRef(d, col)
	m.beatIdx = int(d.I())
	m.waitLeft = int(d.I())
	m.reads = d.I()
	m.writes = d.I()
	m.beats = d.I()
	m.busyCycles = d.I()
	m.totalCycles = d.I()
	m.acceptedPosted = d.I()
	m.stalledRespPush = d.I()
}
