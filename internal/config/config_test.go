package config

import (
	"strings"
	"testing"

	"mpsocsim/internal/bus"
	"mpsocsim/internal/iptg"
	"mpsocsim/internal/sim"
)

const sample = `
# two IPs: a video pipeline and a DMA engine
[iptg video]
width = 8
seed  = 42

[agent video/stream]
phase       = count=1000 gap=2 burst=8..16 read=0.9
phase       = count=500  gap=30 burst=4..8 read=0.9
outstanding = 4
region      = 0x100000 0x80000
pattern     = seq
msglen      = 4
prio        = 2
posted      = true

[agent video/ctrl]
phase  = count=50 gap=100 burst=1 read=1.0
after  = stream 100

[iptg dma]
width = 4

[agent dma/copy]
phase   = count=200 gap=0 burst=16 read=0.5
pattern = stride
stride  = 0x400
`

func TestParseSample(t *testing.T) {
	cfgs, err := ParseIPTGString(sample)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfgs) != 2 {
		t.Fatalf("got %d IPs, want 2", len(cfgs))
	}
	// sorted by name: dma, video
	dma, video := cfgs[0], cfgs[1]
	if dma.Name != "dma" || video.Name != "video" {
		t.Fatalf("names: %q %q", dma.Name, video.Name)
	}
	if video.BytesPerBeat != 8 || video.Seed != 42 {
		t.Fatalf("video header: %+v", video)
	}
	if len(video.Agents) != 2 {
		t.Fatalf("video agents = %d", len(video.Agents))
	}
	st := video.Agents[0]
	if st.Name != "stream" {
		t.Fatalf("agent name %q", st.Name)
	}
	if len(st.Phases) != 2 {
		t.Fatalf("phases = %d", len(st.Phases))
	}
	p0 := st.Phases[0]
	if p0.Count != 1000 || p0.GapMean != 2 || p0.BurstMin != 8 || p0.BurstMax != 16 || p0.ReadFrac != 0.9 {
		t.Fatalf("phase 0: %+v", p0)
	}
	if st.Outstanding != 4 || st.RegionBase != 0x100000 || st.RegionSize != 0x80000 {
		t.Fatalf("stream agent: %+v", st)
	}
	if st.Pattern != iptg.Sequential || st.MsgLen != 4 || st.Prio != 2 || !st.PostedWrites {
		t.Fatalf("stream agent flags: %+v", st)
	}
	ctrl := video.Agents[1]
	if ctrl.After != "stream" || ctrl.AfterCount != 100 {
		t.Fatalf("ctrl sync: %+v", ctrl)
	}
	if ctrl.Phases[0].BurstMin != 1 || ctrl.Phases[0].BurstMax != 1 {
		t.Fatalf("single-valued burst: %+v", ctrl.Phases[0])
	}
	cp := dma.Agents[0]
	if cp.Pattern != iptg.Strided || cp.Stride != 0x400 {
		t.Fatalf("dma agent: %+v", cp)
	}
}

func TestParsedConfigsBuildGenerators(t *testing.T) {
	cfgs, err := ParseIPTGString(sample)
	if err != nil {
		t.Fatal(err)
	}
	// The parsed configs must pass iptg validation.
	clk := sim.NewKernel().NewClock("c", 100)
	for _, cfg := range cfgs {
		if _, err := iptg.New(cfg, clk, &bus.IDSource{}, 0); err != nil {
			t.Errorf("config %q invalid: %v", cfg.Name, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		text string
		want string
	}{
		{"no-section", "width = 8", "outside any section"},
		{"bad-section", "[iptg", "unterminated"},
		{"unnamed-section", "[iptg]", "needs a name"},
		{"unknown-kind", "[bus b0]", "unknown section kind"},
		{"agent-no-slash", "[iptg a]\n[agent a]", "must be IP/AGENT"},
		{"agent-unknown-ip", "[agent ghost/a]", "unknown iptg"},
		{"dup-iptg", "[iptg a]\n[iptg a]", "duplicate"},
		{"bad-kv", "[iptg a]\nwidth 8", "key = value"},
		{"unknown-iptg-key", "[iptg a]\ncolor = red", "unknown iptg key"},
		{"unknown-agent-key", "[iptg a]\n[agent a/x]\ncolor = red", "unknown agent key"},
		{"bad-width", "[iptg a]\nwidth = eight", "width"},
		{"bad-region", "[iptg a]\n[agent a/x]\nregion = 0x1000", "region"},
		{"bad-pattern", "[iptg a]\n[agent a/x]\npattern = zigzag", "unknown pattern"},
		{"bad-posted", "[iptg a]\n[agent a/x]\nposted = maybe", "boolean"},
		{"bad-after", "[iptg a]\n[agent a/x]\nafter = b", "AGENT COUNT"},
		{"phase-no-count", "[iptg a]\n[agent a/x]\nphase = gap=1", "count"},
		{"phase-bad-token", "[iptg a]\n[agent a/x]\nphase = count=1 zap", "bad token"},
		{"phase-unknown-key", "[iptg a]\n[agent a/x]\nphase = count=1 jitter=2", "unknown phase key"},
		{"phase-bad-burst", "[iptg a]\n[agent a/x]\nphase = count=1 burst=a..b", "burst"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseIPTGString(tc.text)
			if err == nil {
				t.Fatalf("expected error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	cfgs, err := ParseIPTGString("\n# top comment\n[iptg a]  # trailing\nwidth = 8 # another\n\n[agent a/x]\nphase = count=1\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(cfgs) != 1 || cfgs[0].BytesPerBeat != 8 {
		t.Fatalf("parsed: %+v", cfgs)
	}
}

func TestErrorsCarryLineNumbers(t *testing.T) {
	_, err := ParseIPTGString("[iptg a]\nwidth = 8\nbogus line without equals here no")
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("error %v should carry line 3", err)
	}
}
