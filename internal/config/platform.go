package config

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"mpsocsim/internal/platform"
	"mpsocsim/internal/stbus"
)

// ParsePlatform reads a platform specification file:
//
//	[platform]
//	protocol  = stbus          # stbus | ahb | axi
//	topology  = distributed    # distributed | collapsed
//	memory    = lmi            # onchip | lmi
//	waitstates = 1             # on-chip memory wait states
//	lmi.sdram.cas = 3          # SDRAM CAS latency in memory cycles (>= 1)
//	stbustype = 3              # 1 | 2 | 3
//	scale     = 1.0
//	seed      = 1
//	twophase  = false
//	splitlmi  = false
//	dsp       = true
//	messaging = true
//	io        = false          # attach the I/O subsystem (DMA + IRQ agents + heap allocator)
//	io.dma.descriptors = 0     # 0 = default, negative disables the DMA engine
//	io.irq.agents      = 0     # 0 = default (2), negative disables the IRQ agents
//	io.irq.deadline    = 0     # per-event service deadline in I/O cycles (0 = default)
//	io.alloc.ops       = 0     # 0 = default, negative disables the heap allocator
//
// Unset keys keep platform.DefaultSpec values. '#' and ';' start comments.
func ParsePlatform(r io.Reader) (platform.Spec, error) {
	spec := platform.DefaultSpec()
	sc := bufio.NewScanner(r)
	lineNo := 0
	inSection := false
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexAny(line, "#;"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "[") {
			if line != "[platform]" {
				return spec, fmt.Errorf("line %d: unknown section %q (only [platform] is valid here)", lineNo, line)
			}
			inSection = true
			continue
		}
		if !inSection {
			return spec, fmt.Errorf("line %d: key outside [platform] section", lineNo)
		}
		key, val, ok := strings.Cut(line, "=")
		if !ok {
			return spec, fmt.Errorf("line %d: expected key = value", lineNo)
		}
		if err := platformKey(&spec, strings.TrimSpace(key), strings.TrimSpace(val)); err != nil {
			return spec, fmt.Errorf("line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return spec, err
	}
	if !inSection {
		return spec, fmt.Errorf("no [platform] section found")
	}
	return spec, nil
}

// ParsePlatformString is ParsePlatform over a string.
func ParsePlatformString(s string) (platform.Spec, error) {
	return ParsePlatform(strings.NewReader(s))
}

func platformKey(spec *platform.Spec, key, val string) error {
	switch key {
	case "protocol":
		switch val {
		case "stbus":
			spec.Protocol = platform.STBus
		case "ahb":
			spec.Protocol = platform.AHB
		case "axi":
			spec.Protocol = platform.AXI
		default:
			return fmt.Errorf("unknown protocol %q", val)
		}
	case "topology":
		switch val {
		case "distributed":
			spec.Topology = platform.Distributed
		case "collapsed":
			spec.Topology = platform.Collapsed
		default:
			return fmt.Errorf("unknown topology %q", val)
		}
	case "memory":
		switch val {
		case "onchip":
			spec.Memory = platform.OnChip
		case "lmi":
			spec.Memory = platform.LMIDDR
		default:
			return fmt.Errorf("unknown memory kind %q", val)
		}
	case "waitstates":
		n, err := strconv.Atoi(val)
		if err != nil || n < 0 {
			return fmt.Errorf("waitstates wants a non-negative integer, got %q", val)
		}
		spec.OnChipWaitStates = n
	case "lmi.sdram.cas":
		n, err := strconv.Atoi(val)
		if err != nil || n < 1 {
			return fmt.Errorf("lmi.sdram.cas wants a positive integer, got %q", val)
		}
		spec.LMI.SDRAM.Timing.TCAS = n
	case "stbustype":
		n, err := strconv.Atoi(val)
		if err != nil || n < 1 || n > 3 {
			return fmt.Errorf("stbustype wants 1..3, got %q", val)
		}
		spec.STBusType = stbus.Type(n)
	case "scale":
		f, err := strconv.ParseFloat(val, 64)
		if err != nil || f <= 0 {
			return fmt.Errorf("scale wants a positive number, got %q", val)
		}
		spec.WorkloadScale = f
	case "seed":
		n, err := strconv.ParseUint(val, 0, 64)
		if err != nil {
			return fmt.Errorf("seed: %q", val)
		}
		spec.Seed = n
	case "twophase":
		b, err := parseBool(val)
		if err != nil {
			return err
		}
		spec.TwoPhase = b
	case "splitlmi":
		b, err := parseBool(val)
		if err != nil {
			return err
		}
		spec.SplitLMIBridge = b
	case "dsp":
		b, err := parseBool(val)
		if err != nil {
			return err
		}
		spec.WithDSP = b
	case "messaging":
		b, err := parseBool(val)
		if err != nil {
			return err
		}
		spec.NoMessageArbitration = !b
	case "io":
		b, err := parseBool(val)
		if err != nil {
			return err
		}
		spec.IO.Enable = b
	case "io.dma.descriptors":
		n, err := strconv.Atoi(val)
		if err != nil {
			return fmt.Errorf("io.dma.descriptors wants an integer, got %q", val)
		}
		spec.IO.DMADescriptors = n
	case "io.irq.agents":
		n, err := strconv.Atoi(val)
		if err != nil {
			return fmt.Errorf("io.irq.agents wants an integer, got %q", val)
		}
		spec.IO.IRQAgents = n
	case "io.irq.deadline":
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil || n < 0 {
			return fmt.Errorf("io.irq.deadline wants a non-negative integer, got %q", val)
		}
		spec.IO.IRQDeadlineCycles = n
	case "io.alloc.ops":
		n, err := strconv.Atoi(val)
		if err != nil {
			return fmt.Errorf("io.alloc.ops wants an integer, got %q", val)
		}
		spec.IO.AllocOps = n
	default:
		return fmt.Errorf("unknown platform key %q", key)
	}
	return nil
}

func parseBool(val string) (bool, error) {
	switch val {
	case "true", "yes", "1":
		return true, nil
	case "false", "no", "0":
		return false, nil
	}
	return false, fmt.Errorf("expected a boolean, got %q", val)
}
