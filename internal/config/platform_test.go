package config

import (
	"strings"
	"testing"

	"mpsocsim/internal/platform"
	"mpsocsim/internal/stbus"
)

func TestParsePlatform(t *testing.T) {
	spec, err := ParsePlatformString(`
# comment
[platform]
protocol   = ahb
topology   = collapsed
memory     = onchip
waitstates = 4
stbustype  = 2
scale      = 0.5
seed       = 42
twophase   = yes
splitlmi   = true
dsp        = false
messaging  = no
`)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Protocol != platform.AHB || spec.Topology != platform.Collapsed || spec.Memory != platform.OnChip {
		t.Fatalf("spec: %+v", spec)
	}
	if spec.OnChipWaitStates != 4 || spec.STBusType != stbus.Type2 {
		t.Fatalf("spec: %+v", spec)
	}
	if spec.WorkloadScale != 0.5 || spec.Seed != 42 {
		t.Fatalf("spec: %+v", spec)
	}
	if !spec.TwoPhase || !spec.SplitLMIBridge || spec.WithDSP || !spec.NoMessageArbitration {
		t.Fatalf("spec flags: %+v", spec)
	}
}

func TestParsePlatformDefaults(t *testing.T) {
	spec, err := ParsePlatformString("[platform]\n")
	if err != nil {
		t.Fatal(err)
	}
	def := platform.DefaultSpec()
	if spec.Protocol != def.Protocol || spec.Memory != def.Memory {
		t.Fatalf("defaults not preserved: %+v", spec)
	}
}

func TestParsePlatformBuilds(t *testing.T) {
	spec, err := ParsePlatformString("[platform]\nprotocol = axi\nscale = 0.05\n")
	if err != nil {
		t.Fatal(err)
	}
	p, err := platform.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	r := p.Run(2e11)
	if !r.Done {
		t.Fatal("parsed platform did not drain")
	}
}

func TestParsePlatformErrors(t *testing.T) {
	cases := []struct {
		name string
		text string
		want string
	}{
		{"no-section", "protocol = stbus", "outside"},
		{"missing-section", "# nothing", "no [platform] section"},
		{"wrong-section", "[chip]", "unknown section"},
		{"bad-kv", "[platform]\nprotocol stbus", "key = value"},
		{"bad-protocol", "[platform]\nprotocol = pci", "unknown protocol"},
		{"bad-topology", "[platform]\ntopology = ring", "unknown topology"},
		{"bad-memory", "[platform]\nmemory = sram", "unknown memory"},
		{"bad-waits", "[platform]\nwaitstates = -1", "waitstates"},
		{"bad-type", "[platform]\nstbustype = 5", "stbustype"},
		{"bad-scale", "[platform]\nscale = 0", "scale"},
		{"bad-seed", "[platform]\nseed = x", "seed"},
		{"bad-bool", "[platform]\ndsp = maybe", "boolean"},
		{"unknown-key", "[platform]\ncolor = blue", "unknown platform key"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParsePlatformString(tc.text)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %v should contain %q", err, tc.want)
			}
		})
	}
}
