// Package config parses the per-IP configuration files that drive IPTG
// instances, mirroring how the real traffic generators are configured
// (paper §3.1: "all the required options and parameters are set in a per-IP
// configuration file").
//
// Format: an INI-like text with one [iptg NAME] section per IP and one
// [agent IP/AGENT] section per sub-process:
//
//	# the video decoder IP
//	[iptg video]
//	width = 8
//	seed  = 42
//
//	[agent video/stream]
//	phase       = count=1000 gap=2 burst=8..16 read=0.9
//	phase       = count=500  gap=30 burst=4..8 read=0.9
//	outstanding = 4
//	region      = 0x100000 0x80000
//	pattern     = seq            # seq | stride | rand
//	stride      = 0x100
//	msglen      = 4
//	prio        = 2
//	posted      = true
//	after       = ctrl 100       # start after agent ctrl completes 100 txns
//
// '#' starts a comment; blank lines are ignored.
package config

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"mpsocsim/internal/iptg"
)

// ParseIPTGs reads IPTG configurations from r. The returned slice is sorted
// by IP name for determinism.
func ParseIPTGs(r io.Reader) ([]iptg.Config, error) {
	p := &parser{
		byIP: map[string]*iptg.Config{},
	}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		p.lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if err := p.feed(line); err != nil {
			return nil, fmt.Errorf("line %d: %w", p.lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	names := make([]string, 0, len(p.byIP))
	for n := range p.byIP {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]iptg.Config, 0, len(names))
	for _, n := range names {
		out = append(out, *p.byIP[n])
	}
	return out, nil
}

// ParseIPTGString is ParseIPTGs over a string.
func ParseIPTGString(s string) ([]iptg.Config, error) {
	return ParseIPTGs(strings.NewReader(s))
}

type parser struct {
	lineNo int
	byIP   map[string]*iptg.Config

	// current section
	curIP    *iptg.Config
	curAgent *iptg.AgentConfig
}

func (p *parser) feed(line string) error {
	if strings.HasPrefix(line, "[") {
		return p.section(line)
	}
	key, val, ok := strings.Cut(line, "=")
	if !ok {
		return fmt.Errorf("expected key = value, got %q", line)
	}
	key = strings.TrimSpace(key)
	val = strings.TrimSpace(val)
	switch {
	case p.curAgent != nil:
		return p.agentKey(key, val)
	case p.curIP != nil:
		return p.iptgKey(key, val)
	default:
		return fmt.Errorf("key %q outside any section", key)
	}
}

func (p *parser) section(line string) error {
	if !strings.HasSuffix(line, "]") {
		return fmt.Errorf("unterminated section header %q", line)
	}
	inner := strings.TrimSpace(line[1 : len(line)-1])
	kind, name, ok := strings.Cut(inner, " ")
	if !ok {
		return fmt.Errorf("section %q needs a name", inner)
	}
	name = strings.TrimSpace(name)
	switch kind {
	case "iptg":
		if _, dup := p.byIP[name]; dup {
			return fmt.Errorf("duplicate iptg %q", name)
		}
		cfg := &iptg.Config{Name: name}
		p.byIP[name] = cfg
		p.curIP = cfg
		p.curAgent = nil
		return nil
	case "agent":
		ipName, agentName, ok := strings.Cut(name, "/")
		if !ok {
			return fmt.Errorf("agent section %q must be IP/AGENT", name)
		}
		cfg := p.byIP[ipName]
		if cfg == nil {
			return fmt.Errorf("agent %q references unknown iptg %q", name, ipName)
		}
		cfg.Agents = append(cfg.Agents, iptg.AgentConfig{Name: agentName})
		p.curIP = cfg
		p.curAgent = &cfg.Agents[len(cfg.Agents)-1]
		return nil
	default:
		return fmt.Errorf("unknown section kind %q", kind)
	}
}

func (p *parser) iptgKey(key, val string) error {
	switch key {
	case "width":
		v, err := parseInt(val)
		if err != nil {
			return fmt.Errorf("width: %w", err)
		}
		p.curIP.BytesPerBeat = int(v)
	case "seed":
		v, err := parseUint(val)
		if err != nil {
			return fmt.Errorf("seed: %w", err)
		}
		p.curIP.Seed = v
	case "reqdepth":
		v, err := parseInt(val)
		if err != nil {
			return fmt.Errorf("reqdepth: %w", err)
		}
		p.curIP.PortReqDepth = int(v)
	case "respdepth":
		v, err := parseInt(val)
		if err != nil {
			return fmt.Errorf("respdepth: %w", err)
		}
		p.curIP.PortRespDepth = int(v)
	default:
		return fmt.Errorf("unknown iptg key %q", key)
	}
	return nil
}

func (p *parser) agentKey(key, val string) error {
	a := p.curAgent
	switch key {
	case "phase":
		ph, err := parsePhase(val)
		if err != nil {
			return fmt.Errorf("phase: %w", err)
		}
		a.Phases = append(a.Phases, ph)
	case "outstanding":
		v, err := parseInt(val)
		if err != nil {
			return fmt.Errorf("outstanding: %w", err)
		}
		a.Outstanding = int(v)
	case "region":
		fields := strings.Fields(val)
		if len(fields) != 2 {
			return fmt.Errorf("region wants BASE SIZE, got %q", val)
		}
		base, err := parseUint(fields[0])
		if err != nil {
			return fmt.Errorf("region base: %w", err)
		}
		size, err := parseUint(fields[1])
		if err != nil {
			return fmt.Errorf("region size: %w", err)
		}
		a.RegionBase, a.RegionSize = base, size
	case "pattern":
		switch val {
		case "seq":
			a.Pattern = iptg.Sequential
		case "stride":
			a.Pattern = iptg.Strided
		case "rand":
			a.Pattern = iptg.Random
		default:
			return fmt.Errorf("unknown pattern %q", val)
		}
	case "stride":
		v, err := parseUint(val)
		if err != nil {
			return fmt.Errorf("stride: %w", err)
		}
		a.Stride = v
	case "msglen":
		v, err := parseInt(val)
		if err != nil {
			return fmt.Errorf("msglen: %w", err)
		}
		a.MsgLen = int(v)
	case "prio":
		v, err := parseInt(val)
		if err != nil {
			return fmt.Errorf("prio: %w", err)
		}
		a.Prio = int(v)
	case "posted":
		switch val {
		case "true", "yes", "1":
			a.PostedWrites = true
		case "false", "no", "0":
			a.PostedWrites = false
		default:
			return fmt.Errorf("posted wants a boolean, got %q", val)
		}
	case "after":
		fields := strings.Fields(val)
		if len(fields) != 2 {
			return fmt.Errorf("after wants AGENT COUNT, got %q", val)
		}
		n, err := parseInt(fields[1])
		if err != nil {
			return fmt.Errorf("after count: %w", err)
		}
		a.After, a.AfterCount = fields[0], n
	default:
		return fmt.Errorf("unknown agent key %q", key)
	}
	return nil
}

// parsePhase parses "count=N gap=F burst=A..B read=F".
func parsePhase(val string) (iptg.Phase, error) {
	ph := iptg.Phase{BurstMin: 1, BurstMax: 1}
	for _, tok := range strings.Fields(val) {
		k, v, ok := strings.Cut(tok, "=")
		if !ok {
			return ph, fmt.Errorf("bad token %q", tok)
		}
		switch k {
		case "count":
			n, err := parseInt(v)
			if err != nil {
				return ph, fmt.Errorf("count: %w", err)
			}
			ph.Count = n
		case "gap":
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return ph, fmt.Errorf("gap: %w", err)
			}
			ph.GapMean = f
		case "burst":
			lo, hi, ok := strings.Cut(v, "..")
			if !ok {
				lo, hi = v, v
			}
			a, err := parseInt(lo)
			if err != nil {
				return ph, fmt.Errorf("burst: %w", err)
			}
			b, err := parseInt(hi)
			if err != nil {
				return ph, fmt.Errorf("burst: %w", err)
			}
			ph.BurstMin, ph.BurstMax = int(a), int(b)
		case "read":
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return ph, fmt.Errorf("read: %w", err)
			}
			ph.ReadFrac = f
		default:
			return ph, fmt.Errorf("unknown phase key %q", k)
		}
	}
	if ph.Count == 0 {
		return ph, fmt.Errorf("phase needs count=N")
	}
	return ph, nil
}

func parseInt(s string) (int64, error) {
	return strconv.ParseInt(s, 0, 64)
}

func parseUint(s string) (uint64, error) {
	return strconv.ParseUint(s, 0, 64)
}
