// Package trace provides the debugging/inspection channel of the virtual
// platform: a cycle-stamped event recorder and a signal sampler that dumps
// waveform-like CSV series (the role RTL waveform inspection played in the
// paper's reverse-engineering workflow).
package trace

import (
	"fmt"
	"io"
	"sort"
)

// Event is one recorded occurrence.
type Event struct {
	TimePS    int64
	Component string
	What      string
}

// Recorder accumulates events when enabled; a disabled recorder is free.
// Events recorded past the cap are not silently lost: they are counted in
// Dropped and flagged by Truncated, and Dump reports the loss.
type Recorder struct {
	enabled bool
	events  []Event
	limit   int
	dropped int64
}

// NewRecorder returns a recorder capped at limit events (0 = 1M default).
func NewRecorder(enabled bool, limit int) *Recorder {
	if limit <= 0 {
		limit = 1 << 20
	}
	return &Recorder{enabled: enabled, limit: limit}
}

// Enabled reports whether recording is active.
func (r *Recorder) Enabled() bool { return r.enabled }

// Record appends an event when enabled and under the cap; past the cap the
// event is discarded but counted, so truncation is observable.
func (r *Recorder) Record(timePS int64, component, format string, args ...any) {
	if !r.enabled {
		return
	}
	if len(r.events) >= r.limit {
		r.dropped++
		return
	}
	r.events = append(r.events, Event{TimePS: timePS, Component: component, What: fmt.Sprintf(format, args...)})
}

// Events returns the recorded events.
func (r *Recorder) Events() []Event { return r.events }

// Dropped returns how many events were discarded after the cap was hit.
func (r *Recorder) Dropped() int64 { return r.dropped }

// Truncated reports whether any event was lost to the cap.
func (r *Recorder) Truncated() bool { return r.dropped > 0 }

// Dump writes events as tab-separated lines. A truncated recording ends
// with a comment line stating how many events were dropped, so a dump that
// stops early is never mistaken for a complete one.
func (r *Recorder) Dump(w io.Writer) error {
	for _, e := range r.events {
		if _, err := fmt.Fprintf(w, "%d\t%s\t%s\n", e.TimePS, e.Component, e.What); err != nil {
			return err
		}
	}
	if r.dropped > 0 {
		if _, err := fmt.Fprintf(w, "# truncated: %d events dropped after cap of %d\n", r.dropped, r.limit); err != nil {
			return err
		}
	}
	return nil
}

// Sampler collects named integer signals over time (e.g. FIFO occupancy per
// cycle) and emits an aligned CSV with one column per signal.
type Sampler struct {
	series map[string][]point
	limit  int
}

type point struct {
	t int64
	v int64
}

// NewSampler returns a sampler capped at limit points per signal.
func NewSampler(limit int) *Sampler {
	if limit <= 0 {
		limit = 1 << 20
	}
	return &Sampler{series: map[string][]point{}, limit: limit}
}

// Sample records signal=value at time t.
func (s *Sampler) Sample(t int64, signal string, value int64) {
	pts := s.series[signal]
	if len(pts) >= s.limit {
		return
	}
	s.series[signal] = append(pts, point{t: t, v: value})
}

// Signals returns the sorted signal names.
func (s *Sampler) Signals() []string {
	names := make([]string, 0, len(s.series))
	for n := range s.series {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// WriteCSV emits "time,sig1,sig2,..." rows at every sampled instant, holding
// the previous value for signals not sampled at that instant.
func (s *Sampler) WriteCSV(w io.Writer) error {
	names := s.Signals()
	if len(names) == 0 {
		return nil
	}
	times := map[int64]bool{}
	for _, pts := range s.series {
		for _, p := range pts {
			times[p.t] = true
		}
	}
	sorted := make([]int64, 0, len(times))
	for t := range times {
		sorted = append(sorted, t)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	if _, err := fmt.Fprint(w, "time"); err != nil {
		return err
	}
	for _, n := range names {
		if _, err := fmt.Fprintf(w, ",%s", n); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	idx := make([]int, len(names))
	last := make([]int64, len(names))
	for _, t := range sorted {
		if _, err := fmt.Fprintf(w, "%d", t); err != nil {
			return err
		}
		for i, n := range names {
			pts := s.series[n]
			for idx[i] < len(pts) && pts[idx[i]].t <= t {
				last[i] = pts[idx[i]].v
				idx[i]++
			}
			if _, err := fmt.Fprintf(w, ",%d", last[i]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
