package trace

import (
	"strings"
	"testing"
)

func TestWriteVCD(t *testing.T) {
	s := NewSampler(100)
	s.Sample(0, "fifo", 0)
	s.Sample(10, "fifo", 3)
	s.Sample(10, "busy", 1)
	s.Sample(20, "fifo", 3) // unchanged: must not be dumped again
	s.Sample(30, "fifo", 1)
	var sb strings.Builder
	if err := s.WriteVCD(&sb, "plat"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"$timescale", "$scope module plat", "$var integer 64", "fifo", "busy",
		"$enddefinitions", "#0", "#10", "#30",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("VCD missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "#20") {
		t.Fatal("unchanged sample at t=20 must not appear")
	}
	if !strings.Contains(out, "b11 ") {
		t.Fatalf("value 3 should be dumped as binary 11:\n%s", out)
	}
}

func TestWriteVCDEmpty(t *testing.T) {
	s := NewSampler(10)
	var sb strings.Builder
	if err := s.WriteVCD(&sb, ""); err != nil {
		t.Fatal(err)
	}
	if sb.String() != "" {
		t.Fatal("empty sampler should write nothing")
	}
}

func TestVCDIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 500; i++ {
		id := vcdID(i)
		if seen[id] {
			t.Fatalf("duplicate VCD id %q at %d", id, i)
		}
		seen[id] = true
	}
}
