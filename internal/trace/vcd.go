package trace

import (
	"fmt"
	"io"
	"sort"
	"strconv"
)

// WriteVCD emits the sampler's signals as a Value Change Dump file viewable
// in standard waveform viewers (GTKWave etc.). Each signal becomes a 64-bit
// integer variable; the timescale is declared as 1 ns per sampler time unit
// (cycles, in the platform integration).
func (s *Sampler) WriteVCD(w io.Writer, module string) error {
	if module == "" {
		module = "mpsocsim"
	}
	names := s.Signals()
	if len(names) == 0 {
		return nil
	}
	if _, err := fmt.Fprintf(w, "$timescale 1ns $end\n$scope module %s $end\n", module); err != nil {
		return err
	}
	ids := make(map[string]string, len(names))
	for i, n := range names {
		id := vcdID(i)
		ids[n] = id
		if _, err := fmt.Fprintf(w, "$var integer 64 %s %s $end\n", id, n); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprint(w, "$upscope $end\n$enddefinitions $end\n"); err != nil {
		return err
	}

	// merge all sample points into one time-ordered change list
	type change struct {
		t    int64
		name string
		v    int64
	}
	var changes []change
	for _, n := range names {
		for _, p := range s.series[n] {
			changes = append(changes, change{t: p.t, name: n, v: p.v})
		}
	}
	sort.SliceStable(changes, func(i, j int) bool { return changes[i].t < changes[j].t })

	last := map[string]int64{}
	curTime := int64(-1)
	for _, c := range changes {
		if v, ok := last[c.name]; ok && v == c.v {
			continue // dump actual changes only
		}
		if c.t != curTime {
			if _, err := fmt.Fprintf(w, "#%d\n", c.t); err != nil {
				return err
			}
			curTime = c.t
		}
		if _, err := fmt.Fprintf(w, "b%s %s\n", strconv.FormatInt(c.v, 2), ids[c.name]); err != nil {
			return err
		}
		last[c.name] = c.v
	}
	return nil
}

// vcdID returns a short printable VCD identifier for signal index i.
func vcdID(i int) string {
	const alphabet = "!\"#$%&'()*+,-./0123456789:;<=>?@ABCDEFGHIJKLMNOPQRSTUVWXYZ"
	if i < len(alphabet) {
		return string(alphabet[i])
	}
	return string(alphabet[i%len(alphabet)]) + vcdID(i/len(alphabet)-1)
}
