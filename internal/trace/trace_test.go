package trace

import (
	"strings"
	"testing"
)

func TestRecorderEnabled(t *testing.T) {
	r := NewRecorder(true, 10)
	r.Record(100, "lmi", "pop req %d", 1)
	r.Record(200, "node", "grant %s", "i0")
	if len(r.Events()) != 2 {
		t.Fatalf("events = %d", len(r.Events()))
	}
	var sb strings.Builder
	if err := r.Dump(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "pop req 1") || !strings.Contains(sb.String(), "grant i0") {
		t.Fatalf("dump: %q", sb.String())
	}
}

func TestRecorderDisabledIsFree(t *testing.T) {
	r := NewRecorder(false, 10)
	r.Record(1, "x", "y")
	if len(r.Events()) != 0 {
		t.Fatal("disabled recorder recorded")
	}
	if r.Enabled() {
		t.Fatal("should be disabled")
	}
}

func TestRecorderLimit(t *testing.T) {
	r := NewRecorder(true, 3)
	for i := 0; i < 10; i++ {
		r.Record(int64(i), "c", "e")
	}
	if len(r.Events()) != 3 {
		t.Fatalf("limit ignored: %d events", len(r.Events()))
	}
}

// TestRecorderTruncationObservable guards against silent event loss: events
// past the cap must be counted, surfaced by the accessors, and flagged in
// the dump output.
func TestRecorderTruncationObservable(t *testing.T) {
	r := NewRecorder(true, 3)
	for i := 0; i < 10; i++ {
		r.Record(int64(i), "c", "event %d", i)
	}
	if got := r.Dropped(); got != 7 {
		t.Fatalf("Dropped() = %d, want 7", got)
	}
	if !r.Truncated() {
		t.Fatal("Truncated() = false after drops")
	}
	var sb strings.Builder
	if err := r.Dump(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "# truncated: 7 events dropped after cap of 3") {
		t.Fatalf("dump does not report truncation:\n%s", sb.String())
	}

	full := NewRecorder(true, 3)
	full.Record(1, "c", "e")
	if full.Truncated() || full.Dropped() != 0 {
		t.Fatal("under-cap recorder reports truncation")
	}
	var sb2 strings.Builder
	if err := full.Dump(&sb2); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb2.String(), "truncated") {
		t.Fatalf("untruncated dump mentions truncation:\n%s", sb2.String())
	}

	// a disabled recorder drops nothing — it never accepts events at all
	off := NewRecorder(false, 1)
	off.Record(1, "c", "e")
	off.Record(2, "c", "e")
	if off.Truncated() || off.Dropped() != 0 {
		t.Fatal("disabled recorder counted drops")
	}
}

func TestSamplerCSV(t *testing.T) {
	s := NewSampler(100)
	s.Sample(1, "fifo", 0)
	s.Sample(2, "fifo", 3)
	s.Sample(2, "busy", 1)
	s.Sample(4, "fifo", 1)
	var sb strings.Builder
	if err := s.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if lines[0] != "time,busy,fifo" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) != 4 {
		t.Fatalf("rows = %d, want 4:\n%s", len(lines), sb.String())
	}
	// at t=4 busy holds its last value (1)
	if lines[3] != "4,1,1" {
		t.Fatalf("hold-last failed: %q", lines[3])
	}
}

func TestSamplerEmpty(t *testing.T) {
	s := NewSampler(10)
	var sb strings.Builder
	if err := s.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != "" {
		t.Fatal("empty sampler should write nothing")
	}
}

func TestSamplerLimit(t *testing.T) {
	s := NewSampler(2)
	for i := 0; i < 5; i++ {
		s.Sample(int64(i), "x", int64(i))
	}
	var sb strings.Builder
	if err := s.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 { // header + 2 points
		t.Fatalf("rows = %d", len(lines))
	}
}
