package replay

import (
	"sort"

	"mpsocsim/internal/attr"
	"mpsocsim/internal/bus"
	"mpsocsim/internal/snapshot"
)

// EncodeState serializes the replayer's mutable state (DESIGN.md §16): the
// owned initiator port, the stream cursor, the in-flight tracking set
// (sorted so the byte stream is deterministic) and the lifetime counters.
// The recorded events themselves are spec-derived (the trace travels with
// the spec, not the snapshot).
func (in *Initiator) EncodeState(e *snapshot.Encoder) {
	e.Tag('Y')
	bus.EncodeInitiatorPortState(e, in.port)
	e.I(int64(in.next))
	e.I(int64(in.inFlight))
	ids := make([]uint64, 0, len(in.byReqID))
	for id := range in.byReqID {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	e.U(uint64(len(ids)))
	for _, id := range ids {
		e.U(id)
	}
	e.I(in.issued)
	e.I(in.completed)
	e.I(in.reads)
	e.I(in.writes)
	e.I(in.bytes)
	in.latency.EncodeState(e)
}

// DecodeState restores a replayer serialized by EncodeState.
func (in *Initiator) DecodeState(d *snapshot.Decoder, col *attr.Collector) {
	d.Tag('Y')
	bus.DecodeInitiatorPortState(d, in.port, col)
	next := d.I()
	if next < 0 || next > int64(len(in.events)) {
		d.Corrupt("replay %q cursor %d outside its %d-event stream", in.Name(), next, len(in.events))
		return
	}
	in.next = int(next)
	in.inFlight = int(d.I())
	for id := range in.byReqID {
		delete(in.byReqID, id)
	}
	nid := d.N(1 << 22)
	for i := 0; i < nid; i++ {
		in.byReqID[d.U()] = struct{}{}
	}
	in.issued = d.I()
	in.completed = d.I()
	in.reads = d.I()
	in.writes = d.I()
	in.bytes = d.I()
	in.latency.DecodeState(d)
}
