// Package replay provides trace-driven stimulus: an initiator that re-drives
// a transaction stream captured by internal/tracecap into any fabric, in
// place of the live iptg.Generator that produced it. This is the
// recorded-stimulus methodology of the paper's §3.1 ("reproduce the traffic
// of real IP cores") turned into a differential tool — every fabric or
// topology variant can be measured under *bit-identical* traffic.
//
// Two scheduling modes are supported:
//
//   - Timed re-issues each transaction at its recorded cycle (rescaled if
//     the replay clock domain differs from the capture domain), modelling a
//     fixed-rate IP core. Backpressure can only delay an issue, never
//     advance it, so replaying a trace into the platform that captured it
//     reproduces the original run exactly.
//   - Elastic issues as fast as the port accepts within a bounded
//     outstanding window, modelling an elastic master that drains its
//     command queue as quickly as the interconnect allows.
//
// The initiator is request-pool-aware and allocates nothing per transaction
// in steady state, preserving the platform's zero-alloc invariant.
package replay

import (
	"errors"
	"fmt"

	"mpsocsim/internal/attr"
	"mpsocsim/internal/bus"
	"mpsocsim/internal/iptg"
	"mpsocsim/internal/metrics"
	"mpsocsim/internal/sim"
	"mpsocsim/internal/stats"
	"mpsocsim/internal/tracecap"
)

// Mode selects the replay scheduling discipline.
type Mode int

// Modes.
const (
	// Timed re-issues at the recorded cycles (fixed-rate IP core).
	Timed Mode = iota
	// Elastic issues as fast as accepted within the outstanding window.
	Elastic
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case Timed:
		return "timed"
	case Elastic:
		return "elastic"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// ParseMode parses a mode name ("timed" or "elastic").
func ParseMode(s string) (Mode, error) {
	switch s {
	case "timed":
		return Timed, nil
	case "elastic":
		return Elastic, nil
	}
	return 0, fmt.Errorf("replay: unknown mode %q (want timed|elastic)", s)
}

// Config parameterizes a replay initiator.
type Config struct {
	// Stream is the recorded transaction sequence to re-drive (required).
	Stream *tracecap.Stream
	Mode   Mode
	// Outstanding bounds in-flight transactions in Elastic mode
	// (default 8). Timed mode follows the recorded schedule and needs no
	// window — the capture already embodies the source's pipelining.
	Outstanding int
	// PortReqDepth/PortRespDepth size the bus-interface FIFOs; defaults
	// (4/8) match iptg.Config, so a replayer substituted for a generator
	// presents an identical port to the fabric.
	PortReqDepth  int
	PortRespDepth int
}

// Initiator re-drives one captured stream. It implements the same component
// surface as iptg.Generator (sim.Clocked, Port, Done, Stats, pool wiring),
// so the platform builder can swap one for the other.
type Initiator struct {
	cfg    Config
	port   *bus.InitiatorPort
	clk    *sim.Clock
	ids    *bus.IDSource
	origin int
	pool   *bus.RequestPool

	events []tracecap.Event
	// target holds the issue cycle of each event rescaled into the replay
	// clock domain (precomputed at construction, identity when the
	// domains match).
	target []int64

	// byReqID tracks the in-flight (non-posted) requests this initiator
	// issued. Some fabric/bridge combinations route acknowledgement beats
	// even for posted writes the target already consumed (and reclaimed);
	// like iptg.Generator, the replayer must ignore beats for requests it
	// is not tracking, or it would double-complete and double-recycle.
	byReqID map[uint64]struct{}
	// attrCol, when set, closes each tracked transaction's attribution
	// record at final-beat consumption (see UseAttribution).
	attrCol   *attr.Collector
	next      int
	inFlight  int
	issued    int64
	completed int64
	reads     int64
	writes    int64
	bytes     int64
	latency   stats.Histogram
}

// New builds a replay initiator for one stream. The IDSource and origin play
// the same roles as for iptg.New: platform-unique request IDs and the
// end-to-end initiator identity.
func New(cfg Config, clk *sim.Clock, ids *bus.IDSource, origin int) (*Initiator, error) {
	if cfg.Stream == nil {
		return nil, errors.New("replay: nil stream")
	}
	if cfg.Outstanding <= 0 {
		cfg.Outstanding = 8
	}
	if cfg.PortReqDepth <= 0 {
		cfg.PortReqDepth = 4
	}
	if cfg.PortRespDepth <= 0 {
		cfg.PortRespDepth = 8
	}
	in := &Initiator{
		cfg:     cfg,
		port:    bus.NewInitiatorPort(cfg.Stream.Name, cfg.PortReqDepth, cfg.PortRespDepth),
		clk:     clk,
		ids:     ids,
		origin:  origin,
		events:  cfg.Stream.Events,
		target:  make([]int64, len(cfg.Stream.Events)),
		byReqID: make(map[uint64]struct{}, 64),
	}
	src, dst := cfg.Stream.PeriodPS, clk.PeriodPS()
	for i := range in.events {
		c := in.events[i].IssueCycle
		if src > 0 && src != dst {
			// Same absolute instant, nearest edge of the new domain.
			c = (c*src + dst/2) / dst
		}
		in.target[i] = c
	}
	return in, nil
}

// MustNew is New that panics on config errors.
func MustNew(cfg Config, clk *sim.Clock, ids *bus.IDSource, origin int) *Initiator {
	in, err := New(cfg, clk, ids, origin)
	if err != nil {
		panic(err)
	}
	return in
}

// UseRequestPool makes the initiator mint requests from (and return them to)
// the given pool. Call before simulation starts.
func (in *Initiator) UseRequestPool(p *bus.RequestPool) { in.pool = p }

// UseAttribution makes the replayer finish each tracked transaction's
// latency-attribution record when it consumes the final response beat
// (posted writes finish at the consuming memory instead). Call before
// simulation starts.
func (in *Initiator) UseAttribution(col *attr.Collector) { in.attrCol = col }

// Port returns the initiator port to attach to a fabric.
func (in *Initiator) Port() *bus.InitiatorPort { return in.port }

// Name returns the replayed initiator's name.
func (in *Initiator) Name() string { return in.cfg.Stream.Name }

// Origin returns the platform-wide initiator identity.
func (in *Initiator) Origin() int { return in.origin }

// Done reports whether every recorded event has been issued and completed.
func (in *Initiator) Done() bool { return in.next >= len(in.events) && in.inFlight == 0 }

// Eval collects responses and issues at most one transaction per cycle, the
// same per-cycle discipline as the generator that recorded the stream.
func (in *Initiator) Eval() {
	in.collect()
	in.issue()
}

// Update commits the port FIFOs.
func (in *Initiator) Update() { in.port.Update() }

func (in *Initiator) collect() {
	for in.port.Resp.CanPop() {
		beat := in.port.Resp.Pop()
		if !beat.Last {
			continue
		}
		if _, ok := in.byReqID[beat.Req.ID]; !ok {
			continue // untracked (e.g. an ack for a posted write)
		}
		delete(in.byReqID, beat.Req.ID)
		// The transaction was tracked, so this request is ours and this
		// beat is its final reference: complete it and recycle it.
		in.inFlight--
		in.completed++
		in.latency.Add(in.clk.Cycles() - beat.Req.IssueCycle)
		if pr := in.port.Probe; pr != nil {
			pr.RequestCompleted(beat.Req, in.clk.Cycles())
		}
		if rec := beat.Req.Attr; rec != nil && in.attrCol != nil {
			in.attrCol.Finish(rec, in.clk.NowPS())
		}
		in.pool.Put(beat.Req)
	}
}

func (in *Initiator) issue() {
	if in.next >= len(in.events) || !in.port.Req.CanPush() {
		return
	}
	ev := &in.events[in.next]
	switch in.cfg.Mode {
	case Timed:
		if in.clk.Cycles() < in.target[in.next] {
			return
		}
	case Elastic:
		if in.inFlight >= in.cfg.Outstanding {
			return
		}
	}
	req := in.pool.Get()
	*req = bus.Request{
		ID:           in.ids.Next(),
		Origin:       in.origin,
		Op:           ev.Op,
		Addr:         ev.Addr,
		Beats:        ev.Beats,
		BytesPerBeat: ev.BytesPerBeat,
		Prio:         ev.Prio,
		MsgSeq:       ev.MsgSeq,
		MsgEnd:       ev.MsgEnd,
		Posted:       ev.Posted,
		IssueCycle:   in.clk.Cycles(),
		IssuePS:      in.clk.NowPS(),
	}
	in.port.Req.Push(req)
	if pr := in.port.Probe; pr != nil {
		pr.RequestIssued(req)
	}
	in.next++
	in.issued++
	in.bytes += int64(req.Bytes())
	if req.Op == bus.OpRead {
		in.reads++
	} else {
		in.writes++
	}
	if req.Op == bus.OpRead || !req.Posted {
		in.inFlight++
		in.byReqID[req.ID] = struct{}{}
	} else {
		in.completed++ // posted writes complete at issue
	}
}

// RegisterMetrics registers the replayer's telemetry under "ip.<name>.*" on
// the given clock domain, mirroring the live generator's IP-level shape (one
// synthetic agent named "replay") so replayed runs export through the same
// metric names. Func-backed: the replay issue path is untouched.
func (in *Initiator) RegisterMetrics(m *metrics.Registry, clock string) {
	p := "ip." + in.Name() + "."
	m.CounterFunc(p+"issued", func() int64 { return in.issued })
	m.CounterFunc(p+"completed", func() int64 { return in.completed })
	m.GaugeFunc(p+"req_depth", clock, func() int64 { return int64(in.port.Req.Len()) })
	ap := p + "replay[" + in.cfg.Mode.String() + "]."
	m.CounterFunc(ap+"issued", func() int64 { return in.issued })
	m.CounterFunc(ap+"completed", func() int64 { return in.completed })
	m.CounterFunc(ap+"bytes", func() int64 { return in.bytes })
	m.Histogram(ap+"latency", &in.latency)
}

// Issued returns the transactions issued so far.
func (in *Initiator) Issued() int64 { return in.issued }

// Completed returns the transactions completed so far.
func (in *Initiator) Completed() int64 { return in.completed }

// Remaining returns the recorded events not yet issued.
func (in *Initiator) Remaining() int { return len(in.events) - in.next }

// Unfinished returns the transactions not yet completed: events still to be
// issued plus those in flight. Zero exactly when Done is true; see
// iptg.Generator.Unfinished for how the sharded coordinator uses it.
func (in *Initiator) Unfinished() int64 {
	return int64(len(in.events)-in.next) + int64(in.inFlight)
}

// MaxConcurrent returns the initiator's outstanding-transaction cap.
func (in *Initiator) MaxConcurrent() int64 { return int64(in.cfg.Outstanding) }

// Stats reports the replayer's activity in the generator stats shape: one
// synthetic agent named after the scheduling mode, so replay results render
// through the same reporting path as live runs.
func (in *Initiator) Stats() []iptg.AgentStats {
	return []iptg.AgentStats{{
		Name:        "replay[" + in.cfg.Mode.String() + "]",
		Issued:      in.issued,
		Completed:   in.completed,
		Reads:       in.reads,
		Writes:      in.writes,
		Bytes:       in.bytes,
		MeanLatency: in.latency.Mean(),
		MaxLatency:  in.latency.Max(),
		P50Latency:  in.latency.Quantile(0.5),
		P90Latency:  in.latency.Quantile(0.9),
	}}
}

// LatencyHistogram exposes the measured completion latencies for
// differential comparisons against the capture baseline.
func (in *Initiator) LatencyHistogram() stats.Histogram { return in.latency }
