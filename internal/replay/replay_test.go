package replay

import (
	"strings"
	"testing"

	"mpsocsim/internal/bus"
	"mpsocsim/internal/sim"
	"mpsocsim/internal/tracecap"
)

// stream builds a simple recorded sequence: n single-beat reads issued gap
// cycles apart, captured in a 250 MHz (4000 ps) domain.
func stream(n int, gap int64) *tracecap.Stream {
	s := &tracecap.Stream{Name: "ip0", PeriodPS: 4000}
	for i := 0; i < n; i++ {
		s.Events = append(s.Events, tracecap.Event{
			IssueCycle:   int64(i) * gap,
			Latency:      10,
			Addr:         uint64(i) * 64,
			Beats:        1,
			BytesPerBeat: 8,
			Op:           bus.OpRead,
		})
	}
	return s
}

// rig wires a replay initiator to an immediate responder that answers every
// request with its final beat after delay cycles, recording issue cycles.
type rig struct {
	k      *sim.Kernel
	clk    *sim.Clock
	in     *Initiator
	issued []int64 // cycle each request was popped from the port
	peak   int     // max simultaneously outstanding requests observed
}

func newRig(t *testing.T, cfg Config, freqMHz float64) *rig {
	t.Helper()
	k := sim.NewKernel()
	clk := k.NewClock("clk", freqMHz)
	in, err := New(cfg, clk, &bus.IDSource{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	r := &rig{k: k, clk: clk, in: in}
	type pending struct {
		req *bus.Request
		due int64
	}
	var queue []pending
	clk.Register(in)
	clk.Register(&sim.ClockedFunc{OnEval: func() {
		for in.Port().Req.CanPop() {
			req := in.Port().Req.Pop()
			r.issued = append(r.issued, clk.Cycles())
			if req.Posted {
				continue // consumed; posted writes get no response
			}
			queue = append(queue, pending{req: req, due: clk.Cycles() + 4})
		}
		if len(queue) > r.peak {
			r.peak = len(queue)
		}
		for len(queue) > 0 && queue[0].due <= clk.Cycles() && in.Port().Resp.CanPush() {
			p := queue[0]
			queue = queue[1:]
			in.Port().Resp.Push(bus.Beat{Req: p.req, Idx: p.req.Beats - 1, Last: true})
		}
	}})
	return r
}

func (r *rig) run(t *testing.T) {
	t.Helper()
	if !r.k.RunWhile(func() bool { return !r.in.Done() }, 1e10) {
		t.Fatalf("timeout: issued=%d completed=%d remaining=%d",
			r.in.Issued(), r.in.Completed(), r.in.Remaining())
	}
}

func TestTimedReplayHonoursSchedule(t *testing.T) {
	s := stream(20, 5)
	r := newRig(t, Config{Stream: s, Mode: Timed}, 250)
	r.run(t)
	if got := r.in.Issued(); got != 20 {
		t.Fatalf("issued = %d, want 20", got)
	}
	if got := r.in.Completed(); got != 20 {
		t.Fatalf("completed = %d, want 20", got)
	}
	if r.in.Remaining() != 0 {
		t.Fatalf("remaining = %d", r.in.Remaining())
	}
	// With an unloaded responder every transaction must be popped the cycle
	// after its recorded issue cycle (port FIFO commits at Update).
	for i, c := range r.issued {
		want := s.Events[i].IssueCycle + 1
		if c != want {
			t.Fatalf("txn %d seen at cycle %d, want %d", i, c, want)
		}
	}
}

func TestTimedReplayRescalesAcrossClockDomains(t *testing.T) {
	// Captured at 250 MHz (4000 ps), replayed at 125 MHz (8000 ps): the same
	// absolute instants land on half the cycle numbers.
	s := stream(10, 8)
	r := newRig(t, Config{Stream: s, Mode: Timed}, 125)
	r.run(t)
	for i, c := range r.issued {
		want := s.Events[i].IssueCycle/2 + 1
		if c != want {
			t.Fatalf("txn %d seen at cycle %d, want %d (rescaled from %d)",
				i, c, want, s.Events[i].IssueCycle)
		}
	}
}

func TestElasticReplayRespectsOutstandingWindow(t *testing.T) {
	// All events recorded at cycle 0; elastic mode ignores the schedule and
	// is limited only by the outstanding window.
	s := stream(30, 0)
	r := newRig(t, Config{Stream: s, Mode: Elastic, Outstanding: 2}, 250)
	r.run(t)
	if got := r.in.Completed(); got != 30 {
		t.Fatalf("completed = %d, want 30", got)
	}
	if r.peak > 2 {
		t.Fatalf("outstanding window violated: %d in flight", r.peak)
	}
}

func TestElasticFasterThanTimedOnSparseTrace(t *testing.T) {
	s := stream(20, 50) // 50-cycle gaps the elastic replayer should collapse
	timed := newRig(t, Config{Stream: s, Mode: Timed}, 250)
	timed.run(t)
	elastic := newRig(t, Config{Stream: s, Mode: Elastic, Outstanding: 8}, 250)
	elastic.run(t)
	if elastic.clk.Cycles() >= timed.clk.Cycles() {
		t.Fatalf("elastic (%d cycles) not faster than timed (%d cycles)",
			elastic.clk.Cycles(), timed.clk.Cycles())
	}
}

func TestPostedWritesCompleteAtIssue(t *testing.T) {
	s := &tracecap.Stream{Name: "ip0", PeriodPS: 4000}
	for i := 0; i < 10; i++ {
		s.Events = append(s.Events, tracecap.Event{
			IssueCycle: int64(i), Latency: 0, Addr: uint64(i) * 64,
			Beats: 2, BytesPerBeat: 8, Op: bus.OpWrite, Posted: true,
		})
	}
	r := newRig(t, Config{Stream: s, Mode: Timed}, 250)
	r.run(t)
	if got := r.in.Completed(); got != 10 {
		t.Fatalf("completed = %d, want 10", got)
	}
	if h := r.in.LatencyHistogram(); h.N() != 0 {
		t.Fatalf("posted writes must not enter the latency histogram (n=%d)", h.N())
	}
}

func TestStatsShape(t *testing.T) {
	r := newRig(t, Config{Stream: stream(5, 3), Mode: Elastic}, 250)
	r.run(t)
	st := r.in.Stats()
	if len(st) != 1 {
		t.Fatalf("stats rows = %d", len(st))
	}
	if st[0].Name != "replay[elastic]" {
		t.Fatalf("agent name = %q", st[0].Name)
	}
	if st[0].Issued != 5 || st[0].Completed != 5 || st[0].Reads != 5 {
		t.Fatalf("stats = %+v", st[0])
	}
	if st[0].MeanLatency <= 0 {
		t.Fatal("latency not recorded")
	}
	if r.in.Name() != "ip0" || r.in.Origin() != 3 {
		t.Fatalf("identity: name=%q origin=%d", r.in.Name(), r.in.Origin())
	}
}

func TestUntrackedResponseBeatsIgnored(t *testing.T) {
	k := sim.NewKernel()
	clk := k.NewClock("clk", 250)
	in := MustNew(Config{Stream: stream(1, 0), Mode: Timed}, clk, &bus.IDSource{}, 0)
	clk.Register(in)
	stray := &bus.Request{ID: 9999, Beats: 1, BytesPerBeat: 8, Op: bus.OpWrite, Posted: true}
	clk.Register(&sim.ClockedFunc{OnEval: func() {
		for in.Port().Req.CanPop() {
			req := in.Port().Req.Pop()
			// echo a stray ack first — some bridges do this for posted
			// writes the target already consumed — then the real response
			in.Port().Resp.Push(bus.Beat{Req: stray, Idx: 0, Last: true})
			in.Port().Resp.Push(bus.Beat{Req: req, Idx: req.Beats - 1, Last: true})
		}
	}})
	if !k.RunWhile(func() bool { return !in.Done() }, 1e8) {
		t.Fatalf("stray beat stalled the replayer: issued=%d completed=%d",
			in.Issued(), in.Completed())
	}
	if in.Completed() != 1 {
		t.Fatalf("completed = %d, want 1 (stray beat must not count)", in.Completed())
	}
}

func TestParseMode(t *testing.T) {
	cases := []struct {
		in   string
		want Mode
		ok   bool
	}{
		{"timed", Timed, true},
		{"elastic", Elastic, true},
		{"", 0, false},
		{"TIMED", 0, false},
		{"bursty", 0, false},
	}
	for _, tc := range cases {
		got, err := ParseMode(tc.in)
		if tc.ok != (err == nil) {
			t.Fatalf("ParseMode(%q) err = %v", tc.in, err)
		}
		if tc.ok && got != tc.want {
			t.Fatalf("ParseMode(%q) = %v", tc.in, got)
		}
		if !tc.ok && err != nil && !strings.Contains(err.Error(), "mode") {
			t.Fatalf("error %q does not name the problem", err)
		}
	}
	if Timed.String() != "timed" || Elastic.String() != "elastic" {
		t.Fatal("mode names wrong")
	}
	if Mode(7).String() != "Mode(7)" {
		t.Fatalf("unknown mode string %q", Mode(7).String())
	}
}

func TestNilStreamRejected(t *testing.T) {
	clk := sim.NewKernel().NewClock("c", 100)
	if _, err := New(Config{}, clk, &bus.IDSource{}, 0); err == nil {
		t.Fatal("nil stream accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic")
		}
	}()
	MustNew(Config{}, clk, &bus.IDSource{}, 0)
}
