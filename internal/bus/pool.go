package bus

import "sync"

// RequestPool recycles Request objects so the steady-state hot path of a
// platform allocates nothing per transaction. One pool is shared by every
// component of a platform instance (the platform builder wires it in), and
// ownership follows the transaction lifecycle:
//
//   - the component that created a request puts it back when it consumes the
//     transaction's final response beat (initiators on Last, bridges on the
//     downstream clone they minted);
//   - posted writes produce no response, so the component that takes the
//     write out of circulation puts it back: the final target for the copy
//     it consumed, the bridge for the upstream original it retired at
//     forward time;
//   - fabrics never own requests and never put.
//
// A nil *RequestPool is valid everywhere: Get falls back to plain allocation
// and Put is a no-op, so components built outside a platform (unit tests,
// examples) keep their original behaviour.
//
// The pool is not safe for concurrent use by default — a serial platform is
// single-threaded by construction, and the parallel experiment runner gives
// each worker its own platform (and therefore its own pool). Sharded
// execution keeps the single platform-wide pool (per-shard pools would drain
// systematically across shard cuts and allocate per transaction forever) and
// switches it into shared mode instead: SetShared(true) guards Get/Put with
// a mutex. Which shard's Get receives which recycled pointer then depends on
// scheduling, but request identity is unobservable — Put scrubs every field,
// and nothing keyed on request pointers is ever iterated — so results stay
// bit-identical to serial runs.
type RequestPool struct {
	free   []*Request
	gets   int64
	news   int64
	shared bool
	mu     sync.Mutex
}

// SetShared toggles mutex protection of Get/Put for sharded execution. Call
// before simulation starts; the serial hot path keeps a single predictable
// branch.
func (p *RequestPool) SetShared(on bool) { p.shared = on }

// Get returns a scrubbed Request, recycling a previously Put one when
// available.
func (p *RequestPool) Get() *Request {
	if p == nil {
		return &Request{}
	}
	if p.shared {
		p.mu.Lock()
	}
	var r *Request
	p.gets++
	if n := len(p.free) - 1; n >= 0 {
		r = p.free[n]
		p.free[n] = nil
		p.free = p.free[:n]
		r.pooled = false
	} else {
		p.news++
	}
	if p.shared {
		p.mu.Unlock()
	}
	if r == nil {
		return &Request{}
	}
	return r
}

// Put returns a request to the pool. The request must not be referenced by
// any live beat, queue, or map entry. Putting the same request twice without
// an intervening Get panics — that is a lifecycle bug, not a runtime
// condition. Put on a nil pool or a nil request is a no-op.
func (p *RequestPool) Put(r *Request) {
	if p == nil || r == nil {
		return
	}
	if r.pooled {
		panic("bus: request returned to pool twice")
	}
	*r = Request{pooled: true}
	if p.shared {
		p.mu.Lock()
		p.free = append(p.free, r)
		p.mu.Unlock()
		return
	}
	p.free = append(p.free, r)
}

// Recycled returns how many Gets were served from the free list vs. fresh
// allocations (for tests and diagnostics).
func (p *RequestPool) Recycled() (recycled, allocated int64) {
	if p == nil {
		return 0, 0
	}
	return p.gets - p.news, p.news
}
