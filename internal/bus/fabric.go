package bus

import "mpsocsim/internal/sim"

// Fabric is the interface every interconnect model (STBus node, AHB bus,
// AXI interconnect) implements, so platforms and bridges compose with any
// of them. Attach methods must be called before the first cycle.
type Fabric interface {
	sim.Clocked
	// AttachInitiator connects an initiator port and returns the index
	// the fabric writes into Request.Src for response routing.
	AttachInitiator(p *InitiatorPort) int
	// AttachTarget connects a target port and returns its index in the
	// fabric's address map.
	AttachTarget(p *TargetPort) int
	// Name identifies the fabric instance in statistics.
	Name() string
}
