package bus

// IDSource hands out request IDs unique within one initiator's range. IDs
// start above the base so the zero value of Request.ID means "unassigned".
//
// Request IDs are pure correlation handles: every consumer in the codebase
// compares them for equality only (response matching, probe bookkeeping),
// never for order or density, and no ID ever reaches a result, report or
// captured trace. The platform builder therefore gives each initiator its
// own source seeded into a disjoint range — IDs stay globally unique with no
// cross-initiator coordination, which keeps sharded execution free of a
// shared hot counter (and of the data race one would be).
type IDSource struct {
	next uint64
}

// NewIDSource returns a source whose first Next is base+1. Callers that need
// disjoint ranges (one source per initiator) space their bases far wider
// than any run's transaction count.
func NewIDSource(base uint64) IDSource { return IDSource{next: base} }

// Next returns a fresh request ID.
func (s *IDSource) Next() uint64 {
	s.next++
	return s.next
}
