package bus

// IDSource hands out globally unique request IDs. The simulation is
// single-threaded, so a plain counter suffices; IDs start at 1 so the zero
// value of Request.ID means "unassigned".
type IDSource struct {
	next uint64
}

// Next returns a fresh request ID.
func (s *IDSource) Next() uint64 {
	s.next++
	return s.next
}
