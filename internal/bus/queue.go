package bus

import "mpsocsim/internal/sim"

// Queue is a two-phase FIFO of *Request. It is a thin named wrapper around
// sim.Fifo so port types read naturally at call sites.
type Queue = sim.Fifo[*Request]

// BeatQueue is a two-phase FIFO of response Beats.
type BeatQueue = sim.Fifo[Beat]

// NewQueue returns a request queue with the given depth.
func NewQueue(name string, depth int) *Queue { return sim.NewFifo[*Request](name, depth) }

// NewBeatQueue returns a beat queue with the given depth.
func NewBeatQueue(name string, depth int) *BeatQueue { return sim.NewFifo[Beat](name, depth) }

// NewInitiatorPort builds an initiator port with request/response queue
// depths reqDepth and respDepth.
func NewInitiatorPort(name string, reqDepth, respDepth int) *InitiatorPort {
	return &InitiatorPort{
		Name: name,
		Req:  NewQueue(name+".req", reqDepth),
		Resp: NewBeatQueue(name+".resp", respDepth),
	}
}

// NewTargetPort builds a target port. reqDepth models the target's input
// FIFO (e.g. the LMI bus-interface FIFO); respDepth its output/prefetch
// FIFO.
func NewTargetPort(name string, reqDepth, respDepth int) *TargetPort {
	return &TargetPort{
		Name: name,
		Req:  NewQueue(name+".req", reqDepth),
		Resp: NewBeatQueue(name+".resp", respDepth),
	}
}
