package bus

import (
	"testing"
	"testing/quick"
)

func TestAddrMapDecode(t *testing.T) {
	m, err := NewAddrMap(
		Region{Base: 0x0000, Size: 0x1000, Target: 0},
		Region{Base: 0x1000, Size: 0x1000, Target: 1},
		Region{Base: 0x8000, Size: 0x4000, Target: 2},
	)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		addr uint64
		want int
	}{
		{0x0, 0}, {0xfff, 0},
		{0x1000, 1}, {0x1fff, 1},
		{0x2000, -1}, {0x7fff, -1},
		{0x8000, 2}, {0xbfff, 2},
		{0xc000, -1},
	}
	for _, tc := range cases {
		if got := m.Decode(tc.addr); got != tc.want {
			t.Errorf("Decode(%#x) = %d, want %d", tc.addr, got, tc.want)
		}
	}
}

func TestAddrMapRejectsOverlap(t *testing.T) {
	_, err := NewAddrMap(
		Region{Base: 0x0, Size: 0x2000, Target: 0},
		Region{Base: 0x1000, Size: 0x1000, Target: 1},
	)
	if err == nil {
		t.Fatal("overlapping regions must be rejected")
	}
}

func TestAddrMapRejectsZeroSize(t *testing.T) {
	_, err := NewAddrMap(Region{Base: 0x1000, Size: 0, Target: 0})
	if err == nil {
		t.Fatal("zero-size region must be rejected")
	}
}

func TestAddrMapRejectsWrap(t *testing.T) {
	_, err := NewAddrMap(Region{Base: ^uint64(0) - 10, Size: 100, Target: 0})
	if err == nil {
		t.Fatal("wrapping region must be rejected")
	}
}

func TestMustAddrMapPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustAddrMap must panic on invalid input")
		}
	}()
	MustAddrMap(Region{Base: 0, Size: 0, Target: 0})
}

func TestSingleMapsEverything(t *testing.T) {
	m := Single(3)
	for _, a := range []uint64{0, 0x1234, 1 << 40, 1<<63 - 1} {
		if got := m.Decode(a); got != 3 {
			t.Errorf("Decode(%#x) = %d, want 3", a, got)
		}
	}
}

// Property: for any set of disjoint regions, every address inside a region
// decodes to that region's target and every address in a gap decodes to -1.
func TestAddrMapPropertyDecode(t *testing.T) {
	prop := func(bases []uint16, off uint16) bool {
		// construct disjoint 256-byte regions from unique bases
		seen := map[uint64]bool{}
		var regions []Region
		for i, b := range bases {
			base := uint64(b) << 8
			if seen[base] {
				continue
			}
			seen[base] = true
			regions = append(regions, Region{Base: base, Size: 256, Target: i})
		}
		m, err := NewAddrMap(regions...)
		if err != nil {
			return false
		}
		for _, r := range regions {
			a := r.Base + uint64(off)%r.Size
			if m.Decode(a) != r.Target {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
