// Package bus defines the protocol-independent vocabulary shared by every
// interconnect fabric in the platform: requests, response beats, the
// initiator/target port pairs through which components attach to a fabric,
// and the address map used for target decoding.
//
// A fabric (internal/stbus, internal/ahb, internal/axi) is a sim.Clocked
// component that moves Requests from InitiatorPorts to TargetPorts and
// response Beats back, according to its protocol's arbitration and
// outstanding-transaction rules. Initiators (internal/iptg,
// internal/dspcore, bridge initiator sides) and targets (internal/mem,
// internal/lmi, bridge target sides) see only the port types defined here,
// so any component composes with any fabric.
package bus

import (
	"fmt"

	"mpsocsim/internal/attr"
)

// Op is a transaction opcode.
type Op uint8

// Transaction opcodes.
const (
	OpRead Op = iota
	OpWrite
)

// String returns "R" or "W".
func (o Op) String() string {
	if o == OpRead {
		return "R"
	}
	return "W"
}

// Request is one bus transaction (a burst). Data is not carried — the model
// is timing-accurate, not data-accurate, exactly like the paper's IPTG-based
// platform where traffic shape, not payload, determines performance.
type Request struct {
	// ID is globally unique, assigned by the issuing initiator.
	ID uint64
	// Src identifies the initiator port index on the fabric where the
	// request entered (source labelling, STBus Type >=2). Fabrics and
	// bridges rewrite Src at each layer boundary to route responses.
	Src int
	// Origin preserves the system-wide initiator identity across bridges
	// for end-to-end statistics.
	Origin int
	Op     Op
	Addr   uint64
	// Beats is the number of data beats in the burst at the current
	// fabric's data width. Width converters rescale it.
	Beats int
	// BytesPerBeat is the data width in bytes at the current fabric.
	BytesPerBeat int
	// Prio is the arbitration priority (higher wins) where the protocol
	// supports priority labelling.
	Prio int
	// MsgSeq and MsgEnd implement STBus message-based arbitration:
	// consecutive requests of one message carry the same MsgSeq from one
	// initiator, and the arbiter holds the grant until MsgEnd.
	MsgSeq uint64
	MsgEnd bool
	// Posted marks a posted write: the fabric acknowledges it at
	// acceptance and no response is routed back to the initiator.
	Posted bool
	// IssueCycle/IssuePS record when the initiator issued the request,
	// for latency accounting (in the initiator's clock domain and in
	// absolute picoseconds).
	IssueCycle int64
	IssuePS    int64

	// Attr, when non-nil, is the transaction's latency-attribution segment
	// log (internal/attr). Fabrics attach it lazily at the first
	// head-of-queue scan when attribution is enabled; every later stamping
	// site guards on nil, so a disabled run costs one pointer check. A
	// bridge's clone shares the original's record — whichever copy a
	// component recycles first must clear Attr so the record follows the
	// live copy.
	Attr *attr.Record

	// pooled marks a request currently sitting in a RequestPool free list;
	// it guards against double-Put lifecycle bugs.
	pooled bool
}

// Bytes returns the total payload size of the burst.
func (r *Request) Bytes() int { return r.Beats * r.BytesPerBeat }

// String formats a compact request description for traces.
func (r *Request) String() string {
	return fmt.Sprintf("%s#%d src%d @%#x %dx%dB", r.Op, r.ID, r.Src, r.Addr, r.Beats, r.BytesPerBeat)
}

// AttachAttr is the fabric-side head-of-queue attribution stamp: it lazily
// opens the request's attribution record on first contact (recovering the
// initiator-queue wait retroactively from IssuePS) and marks the transition
// from queueing to arbitration wait. Fabrics call it for each poppable
// initiator-port head not yet carrying a record, and again at the grant/pop
// site as a fallback (idempotent either way). Zero
// allocations in steady state (records come from the collector free list).
func AttachAttr(col *attr.Collector, req *Request, nowPS int64) {
	if req.Attr == nil {
		issue := req.IssuePS
		if issue == 0 || issue > nowPS {
			// Initiators stamp IssuePS at issue; a zero means the request
			// came from outside the platform wiring (unit tests) — fall
			// back to first-contact time so durations stay sane.
			issue = nowPS
		}
		req.Attr = col.Start(req.Origin, issue, req.Op == OpWrite, req.Posted)
	}
	req.Attr.EnterFrom(attr.PhaseInitQueue, attr.PhaseArbWait, nowPS)
}

// Beat is one response data beat (for reads) or the write acknowledgement
// (for non-posted writes, a single beat with Last=true).
type Beat struct {
	Req  *Request
	Idx  int
	Last bool
}

// PortProbe observes the transaction lifecycle at an initiator port.
// Probes are passive: they must not mutate the request, and they run inline
// on the simulation hot path, so implementations must not allocate in steady
// state (internal/tracecap's capture streams preallocate their event
// storage).
type PortProbe interface {
	// RequestIssued fires when the initiator stages r into the port's
	// request FIFO. The request's IssueCycle is already set; posted writes
	// will produce no RequestCompleted call.
	RequestIssued(r *Request)
	// RequestCompleted fires when the initiator consumes the final
	// response beat of a tracked request, before the request is recycled.
	// cycle is the completion time in the initiator's clock domain.
	RequestCompleted(r *Request, cycle int64)
}

// teeProbe fans one port's lifecycle events out to two probes, in order.
type teeProbe struct{ a, b PortProbe }

func (t teeProbe) RequestIssued(r *Request) {
	t.a.RequestIssued(r)
	t.b.RequestIssued(r)
}

func (t teeProbe) RequestCompleted(r *Request, cycle int64) {
	t.a.RequestCompleted(r, cycle)
	t.b.RequestCompleted(r, cycle)
}

// TeeProbes composes probes into one, dropping nils: a port has a single
// Probe slot, so a second observer (trace capture over the always-on
// telemetry stall tracker) chains through a tee rather than displacing the
// first. Probes fire in argument order; both remain passive, so the order
// is unobservable in results.
func TeeProbes(a, b PortProbe) PortProbe {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return teeProbe{a, b}
}

// InitiatorPort attaches an initiator to a fabric: the initiator pushes
// Requests into Req and pops response Beats from Resp. The fabric owns the
// arbitration over when Req entries drain.
type InitiatorPort struct {
	Name string
	Req  *Queue
	Resp *BeatQueue
	// Probe, when non-nil, observes every transaction crossing this port.
	// It is honoured by the components that own a port's issue side
	// (iptg.Generator, replay.Initiator); set it before simulation starts.
	Probe PortProbe
}

// TargetPort attaches a target to a fabric: the fabric pushes Requests into
// Req (the target's input FIFO — its depth models the target's buffering,
// e.g. the LMI bus-interface FIFO) and pops response Beats from Resp.
type TargetPort struct {
	Name string
	Req  *Queue
	Resp *BeatQueue
}

// Update commits both FIFOs; the owning fabric or target calls it once per
// cycle of the domain that owns the port.
func (p *InitiatorPort) Update() {
	p.Req.Update()
	p.Resp.Update()
}

// Update commits both FIFOs once per owning-domain cycle.
func (p *TargetPort) Update() {
	p.Req.Update()
	p.Resp.Update()
}
