package bus

import (
	"mpsocsim/internal/attr"
	"mpsocsim/internal/sim"
	"mpsocsim/internal/snapshot"
)

// Checkpoint codecs (DESIGN.md §16). A Request is referenced from many
// places at once — port FIFOs, fabric channel state, bridge context maps,
// initiator bookkeeping — and restore must preserve that aliasing exactly,
// so requests serialize through the snapshot's shared-object table: first
// encounter emits the body, later encounters a back-reference.

// Wire markers for EncodeReqRef (same scheme as attr.EncodeRecordRef).
const (
	reqNil  = 0
	reqBody = 1
	reqRefs = 2 // reqRefs+idx references a previously decoded request
)

// EncodeReqRef serializes a (possibly nil, possibly shared) request pointer.
func EncodeReqRef(e *snapshot.Encoder, r *Request) {
	if r == nil {
		e.U(reqNil)
		return
	}
	if r.pooled {
		panic("bus: snapshot reached a request sitting in the pool free list")
	}
	idx, first := e.Ref(r)
	if !first {
		e.U(reqRefs + idx)
		return
	}
	e.U(reqBody)
	e.U(r.ID)
	e.I(int64(r.Src))
	e.I(int64(r.Origin))
	e.U(uint64(r.Op))
	e.U(r.Addr)
	e.I(int64(r.Beats))
	e.I(int64(r.BytesPerBeat))
	e.I(int64(r.Prio))
	e.U(r.MsgSeq)
	e.Bool(r.MsgEnd)
	e.Bool(r.Posted)
	e.I(r.IssueCycle)
	e.I(r.IssuePS)
	attr.EncodeRecordRef(e, r.Attr)
}

// DecodeReqRef restores a request pointer serialized by EncodeReqRef.
// First encounters allocate directly (not through the pool — the restored
// request re-enters the normal lifecycle and reaches the pool when its
// transaction completes; pool counters are restored separately so Recycled
// still matches the uninterrupted run).
func DecodeReqRef(d *snapshot.Decoder, col *attr.Collector) *Request {
	tag := d.U()
	if d.Err() != nil || tag == reqNil {
		return nil
	}
	if tag >= reqRefs {
		r, _ := d.Ref(tag - reqRefs).(*Request)
		if r == nil {
			d.Corrupt("request reference %d is not a request", tag-reqRefs)
		}
		return r
	}
	r := &Request{}
	d.AddRef(r)
	r.ID = d.U()
	r.Src = int(d.I())
	r.Origin = int(d.I())
	op := d.U()
	if op > uint64(OpWrite) {
		d.Corrupt("request opcode %d out of range", op)
		return nil
	}
	r.Op = Op(op)
	r.Addr = d.U()
	r.Beats = int(d.I())
	r.BytesPerBeat = int(d.I())
	r.Prio = int(d.I())
	r.MsgSeq = d.U()
	r.MsgEnd = d.Bool()
	r.Posted = d.Bool()
	r.IssueCycle = d.I()
	r.IssuePS = d.I()
	r.Attr = attr.DecodeRecordRef(d, col)
	return r
}

// EncodeBeat serializes one response beat (request by reference).
func EncodeBeat(e *snapshot.Encoder, b Beat) {
	EncodeReqRef(e, b.Req)
	e.I(int64(b.Idx))
	e.Bool(b.Last)
}

// DecodeBeat restores a beat serialized by EncodeBeat.
func DecodeBeat(d *snapshot.Decoder, col *attr.Collector) Beat {
	var b Beat
	b.Req = DecodeReqRef(d, col)
	b.Idx = int(d.I())
	b.Last = d.Bool()
	return b
}

// maxPoolFree bounds the decoded free-list size; far above any real run's
// in-flight high-water mark.
const maxPoolFree = 1 << 22

// EncodeState serializes the pool's lifecycle counters and free-list depth.
// The free requests themselves are all identical scrubbed objects, so only
// their count travels.
func (p *RequestPool) EncodeState(e *snapshot.Encoder) {
	e.Tag('L')
	e.I(p.gets)
	e.I(p.news)
	e.U(uint64(len(p.free)))
}

// DecodeState restores a pool serialized by EncodeState, materializing the
// free list as fresh scrubbed requests.
func (p *RequestPool) DecodeState(d *snapshot.Decoder) {
	d.Tag('L')
	p.gets = d.I()
	p.news = d.I()
	n := d.N(maxPoolFree)
	if d.Err() != nil {
		return
	}
	p.free = p.free[:0]
	for i := 0; i < n; i++ {
		p.free = append(p.free, &Request{pooled: true})
	}
}

// State returns the source's last handed-out ID for checkpointing.
func (s *IDSource) State() uint64 { return s.next }

// SetState overwrites the source's position (checkpoint restore).
func (s *IDSource) SetState(v uint64) { s.next = v }

// EncodeInitiatorPortState serializes both FIFOs of an initiator port.
func EncodeInitiatorPortState(e *snapshot.Encoder, p *InitiatorPort) {
	sim.EncodeFifoState(e, p.Req, EncodeReqRef)
	sim.EncodeFifoState(e, p.Resp, EncodeBeat)
}

// DecodeInitiatorPortState restores both FIFOs of an initiator port.
func DecodeInitiatorPortState(d *snapshot.Decoder, p *InitiatorPort, col *attr.Collector) {
	sim.DecodeFifoState(d, p.Req, func(d *snapshot.Decoder) *Request { return DecodeReqRef(d, col) })
	sim.DecodeFifoState(d, p.Resp, func(d *snapshot.Decoder) Beat { return DecodeBeat(d, col) })
}

// EncodeTargetPortState serializes both FIFOs of a target port.
func EncodeTargetPortState(e *snapshot.Encoder, p *TargetPort) {
	sim.EncodeFifoState(e, p.Req, EncodeReqRef)
	sim.EncodeFifoState(e, p.Resp, EncodeBeat)
}

// DecodeTargetPortState restores both FIFOs of a target port.
func DecodeTargetPortState(d *snapshot.Decoder, p *TargetPort, col *attr.Collector) {
	sim.DecodeFifoState(d, p.Req, func(d *snapshot.Decoder) *Request { return DecodeReqRef(d, col) })
	sim.DecodeFifoState(d, p.Resp, func(d *snapshot.Decoder) Beat { return DecodeBeat(d, col) })
}
