package bus

import (
	"strings"
	"testing"
)

func TestOpString(t *testing.T) {
	if OpRead.String() != "R" || OpWrite.String() != "W" {
		t.Fatalf("op strings: %s %s", OpRead, OpWrite)
	}
}

func TestRequestBytes(t *testing.T) {
	r := &Request{Beats: 8, BytesPerBeat: 4}
	if r.Bytes() != 32 {
		t.Fatalf("bytes = %d, want 32", r.Bytes())
	}
}

func TestRequestString(t *testing.T) {
	r := &Request{ID: 3, Src: 1, Op: OpWrite, Addr: 0x1000, Beats: 4, BytesPerBeat: 8}
	s := r.String()
	for _, want := range []string{"W#3", "src1", "0x1000", "4x8B"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q, missing %q", s, want)
		}
	}
}

func TestPortUpdateCommits(t *testing.T) {
	ip := NewInitiatorPort("i0", 2, 4)
	ip.Req.Push(&Request{ID: 1})
	ip.Resp.Push(Beat{Idx: 0, Last: true})
	if ip.Req.CanPop() || ip.Resp.CanPop() {
		t.Fatal("staged entries visible before Update")
	}
	ip.Update()
	if !ip.Req.CanPop() || !ip.Resp.CanPop() {
		t.Fatal("entries not visible after Update")
	}

	tp := NewTargetPort("t0", 4, 4)
	tp.Req.Push(&Request{ID: 2})
	tp.Update()
	if !tp.Req.CanPop() {
		t.Fatal("target port req not committed")
	}
}
