package bus

import (
	"fmt"
	"sort"
)

// Region maps an address range [Base, Base+Size) to a target port index.
type Region struct {
	Base   uint64
	Size   uint64
	Target int
}

// End returns the first address past the region.
func (r Region) End() uint64 { return r.Base + r.Size }

// AddrMap decodes addresses to target indices. Regions must not overlap.
type AddrMap struct {
	regions []Region
}

// NewAddrMap builds an address map, validating that regions are non-empty
// and non-overlapping.
func NewAddrMap(regions ...Region) (*AddrMap, error) {
	rs := make([]Region, len(regions))
	copy(rs, regions)
	sort.Slice(rs, func(i, j int) bool { return rs[i].Base < rs[j].Base })
	for i, r := range rs {
		if r.Size == 0 {
			return nil, fmt.Errorf("bus: region %d at %#x has zero size", i, r.Base)
		}
		if r.End() < r.Base {
			return nil, fmt.Errorf("bus: region %d at %#x overflows address space", i, r.Base)
		}
		if i > 0 && rs[i-1].End() > r.Base {
			return nil, fmt.Errorf("bus: regions overlap at %#x", r.Base)
		}
	}
	return &AddrMap{regions: rs}, nil
}

// MustAddrMap is NewAddrMap that panics on error, for static platform tables.
func MustAddrMap(regions ...Region) *AddrMap {
	m, err := NewAddrMap(regions...)
	if err != nil {
		panic(err)
	}
	return m
}

// Decode returns the target index for addr, or -1 if unmapped.
func (m *AddrMap) Decode(addr uint64) int {
	lo, hi := 0, len(m.regions)
	for lo < hi {
		mid := (lo + hi) / 2
		r := m.regions[mid]
		switch {
		case addr < r.Base:
			hi = mid
		case addr >= r.End():
			lo = mid + 1
		default:
			return r.Target
		}
	}
	return -1
}

// Regions returns the sorted regions (shared slice; callers must not mutate).
func (m *AddrMap) Regions() []Region { return m.regions }

// Single returns an address map sending the entire address space to one
// target — the memory-centric configuration of the paper's platform.
func Single(target int) *AddrMap {
	return MustAddrMap(Region{Base: 0, Size: 1 << 63, Target: target})
}
