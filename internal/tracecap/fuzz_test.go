package tracecap

import (
	"errors"
	"reflect"
	"testing"
)

// FuzzDecode drives the trace decoder with arbitrary bytes. The decoder must
// never panic or allocate unboundedly: it either returns a Trace or an error
// wrapping one of the four sentinel errors. For inputs it accepts, the
// decoded form must survive a re-encode/re-decode round trip unchanged —
// the decoder and encoder agree on the format's meaning.
func FuzzDecode(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte(Magic))
	f.Add((&Trace{Platform: "empty"}).Encode())
	f.Add(sampleTrace().Encode())
	// a deliberately corrupt tail: valid header, garbage events
	bad := sampleTrace().Encode()
	f.Add(append(bad[:len(bad)/2], 0xFF, 0xFF, 0xFF))

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Decode(data)
		if err != nil {
			if !errors.Is(err, ErrMagic) && !errors.Is(err, ErrVersion) &&
				!errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("error %v wraps no sentinel", err)
			}
			return
		}
		again, err := Decode(tr.Encode())
		if err != nil {
			t.Fatalf("re-encoded trace does not decode: %v", err)
		}
		if !reflect.DeepEqual(again, tr) {
			t.Fatalf("decode/encode/decode not stable:\nfirst  %+v\nsecond %+v", tr, again)
		}
	})
}
