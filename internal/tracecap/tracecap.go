// Package tracecap records and re-serves the full transaction stimulus of a
// platform run: every request an initiator issued (issue cycle, opcode,
// address, burst shape, priority, message labelling) together with its
// observed completion latency. A captured Trace is the recorded-stimulus
// counterpart of the paper's IPTG methodology (§3.1): the same transaction
// stream can be re-driven into a different fabric or topology by
// internal/replay, so architectural variants are compared under *identical*
// traffic rather than statistically similar traffic.
//
// Capture is wired through lightweight bus.PortProbe hooks on the initiator
// ports; the probes preallocate their event storage and record into
// fixed-size structs, so capturing a steady-state run performs zero heap
// allocations per cycle (the PR-2 invariant). Encoding to the compact
// varint-delta binary format (see codec.go and DESIGN.md §12) happens after
// the run, off the hot path.
package tracecap

import (
	"mpsocsim/internal/bus"
	"mpsocsim/internal/stats"
)

// Event is one recorded transaction at an initiator port. Cycles are counted
// in the initiator's own clock domain.
type Event struct {
	// IssueCycle is when the initiator pushed the request into its port.
	IssueCycle int64
	// Latency is the completion delay in initiator cycles (final response
	// beat consumed at IssueCycle+Latency). Posted writes complete at
	// issue (0); -1 marks a request still in flight when capture stopped.
	Latency int64
	Addr    uint64
	// MsgSeq/MsgEnd reproduce STBus message-based arbitration labelling.
	MsgSeq uint64
	Beats  int
	// BytesPerBeat is the initiator's data width for this request.
	BytesPerBeat int
	Prio         int
	Op           bus.Op
	Posted       bool
	MsgEnd       bool
}

// Stream is the recorded transaction sequence of one initiator, ordered by
// issue cycle (the capture probe appends in issue order by construction).
type Stream struct {
	// Name is the initiator's platform-wide name (e.g. "decrypt"); replay
	// matches streams to workload initiators by this name.
	Name string
	// PeriodPS is the period of the clock domain the cycles are counted
	// in; replay rescales issue cycles when driving a different domain.
	PeriodPS int64
	Events   []Event
	// Dropped counts events discarded after the capture limit was hit.
	Dropped int64
}

// Truncated reports whether the stream lost events to the capture limit.
func (s *Stream) Truncated() bool { return s.Dropped > 0 }

// LatencyHistogram accumulates the recorded completion latencies (posted
// writes and never-completed events excluded) — the per-initiator baseline
// the cross-fabric replay experiment compares against.
func (s *Stream) LatencyHistogram() stats.Histogram {
	var h stats.Histogram
	for i := range s.Events {
		if !s.Events[i].Posted && s.Events[i].Latency >= 0 {
			h.Add(s.Events[i].Latency)
		}
	}
	return h
}

// Trace is a full captured stimulus: one stream per initiator.
type Trace struct {
	// Platform labels the capturing platform (Spec.Name()); informational.
	Platform string
	// Streams are in capture-attachment order (the platform's initiator
	// order), which is deterministic for a given spec.
	Streams []*Stream
}

// Stream returns the named stream, or nil.
func (t *Trace) Stream(name string) *Stream {
	for _, s := range t.Streams {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// StreamNames lists the stream names in trace order.
func (t *Trace) StreamNames() []string {
	names := make([]string, len(t.Streams))
	for i, s := range t.Streams {
		names[i] = s.Name
	}
	return names
}

// Events returns the total recorded event count across all streams.
func (t *Trace) Events() int64 {
	var n int64
	for _, s := range t.Streams {
		n += int64(len(s.Events))
	}
	return n
}

// Truncated reports whether any stream lost events to its capture limit.
func (t *Trace) Truncated() bool {
	for _, s := range t.Streams {
		if s.Truncated() {
			return true
		}
	}
	return false
}

// initialEventCap is the per-stream event storage preallocated at probe
// creation. While a stream stays under it, capture never allocates; beyond
// it, append regrows amortized (off the zero-alloc guarantee, which covers
// the reference workload with ample margin).
const initialEventCap = 4096

// DefaultLimit is the default per-stream event cap.
const DefaultLimit = 1 << 20

// Capture owns the streams being recorded for one platform run. It is not
// safe for concurrent use; a platform is stepped from a single goroutine.
type Capture struct {
	trace Trace
	limit int
	// probes are retained in stream order so snapshot/restore can reach the
	// per-stream pending maps (see snapshot.go).
	probes []*StreamProbe
}

// NewCapture starts a capture session. limit caps each stream's event count
// (0 selects DefaultLimit); events beyond the cap are counted in
// Stream.Dropped rather than silently lost.
func NewCapture(platformName string, limit int) *Capture {
	if limit <= 0 {
		limit = DefaultLimit
	}
	return &Capture{trace: Trace{Platform: platformName}, limit: limit}
}

// Trace returns the captured trace. Valid at any time; streams keep growing
// until the run stops.
func (c *Capture) Trace() *Trace { return &c.trace }

// Limit returns the per-stream event cap the capture was created with.
func (c *Capture) Limit() int { return c.limit }

// Probe creates the recording stream for one initiator and returns the probe
// to install on its port (bus.InitiatorPort.Probe). periodPS is the
// initiator's clock period.
func (c *Capture) Probe(name string, periodPS int64) *StreamProbe {
	prealloc := c.limit
	if prealloc > initialEventCap {
		prealloc = initialEventCap
	}
	s := &Stream{
		Name:     name,
		PeriodPS: periodPS,
		Events:   make([]Event, 0, prealloc),
	}
	c.trace.Streams = append(c.trace.Streams, s)
	p := &StreamProbe{
		s:       s,
		limit:   c.limit,
		pending: make(map[uint64]int, 64),
	}
	c.probes = append(c.probes, p)
	return p
}

// StreamProbe records one initiator's lifecycle events into its Stream. It
// implements bus.PortProbe.
type StreamProbe struct {
	s     *Stream
	limit int
	// pending maps an in-flight request ID to its event index so the
	// completion latency lands on the right record.
	pending map[uint64]int
}

// RequestIssued records the issue-side fields of r.
func (p *StreamProbe) RequestIssued(r *bus.Request) {
	if len(p.s.Events) >= p.limit {
		p.s.Dropped++
		return
	}
	lat := int64(-1)
	if r.Posted && r.Op == bus.OpWrite {
		lat = 0 // posted writes complete at issue
	}
	p.s.Events = append(p.s.Events, Event{
		IssueCycle:   r.IssueCycle,
		Latency:      lat,
		Addr:         r.Addr,
		MsgSeq:       r.MsgSeq,
		Beats:        r.Beats,
		BytesPerBeat: r.BytesPerBeat,
		Prio:         r.Prio,
		Op:           r.Op,
		Posted:       r.Posted,
		MsgEnd:       r.MsgEnd,
	})
	if lat < 0 {
		p.pending[r.ID] = len(p.s.Events) - 1
	}
}

// RequestCompleted stamps the completion latency onto the pending record.
func (p *StreamProbe) RequestCompleted(r *bus.Request, cycle int64) {
	i, ok := p.pending[r.ID]
	if !ok {
		return // dropped past the cap, or issued before capture attached
	}
	delete(p.pending, r.ID)
	ev := &p.s.Events[i]
	ev.Latency = cycle - ev.IssueCycle
}
