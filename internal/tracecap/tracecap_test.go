package tracecap

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"mpsocsim/internal/bus"
)

// sampleTrace builds a two-stream trace exercising every field the format
// carries: both opcodes, posted writes, message labelling, in-flight events,
// large address jumps (signed deltas) and a dropped count.
func sampleTrace() *Trace {
	return &Trace{
		Platform: "STBus/distributed/lmi+ddr",
		Streams: []*Stream{
			{
				Name:     "decrypt",
				PeriodPS: 6024,
				Events: []Event{
					{IssueCycle: 3, Latency: 17, Addr: 0x100000, MsgSeq: 1<<32 | 1, Beats: 8, BytesPerBeat: 8, Op: bus.OpRead},
					{IssueCycle: 3, Latency: 0, Addr: 0x200040, MsgSeq: 1<<32 | 1, Beats: 16, BytesPerBeat: 8, Op: bus.OpWrite, Posted: true, MsgEnd: true},
					{IssueCycle: 9, Latency: -1, Addr: 0x1000, MsgSeq: 1<<32 | 2, Beats: 1, BytesPerBeat: 4, Prio: 3, Op: bus.OpWrite, MsgEnd: true},
				},
				Dropped: 2,
			},
			{
				Name:     "dma1",
				PeriodPS: 4000,
				Events: []Event{
					{IssueCycle: 0, Latency: 40, Addr: 18 << 20, Beats: 8, BytesPerBeat: 8, Op: bus.OpRead, MsgEnd: true},
				},
			},
		},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	want := sampleTrace()
	got, err := Decode(want.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip diverged:\ngot  %+v\nwant %+v", got, want)
	}
}

func TestDecodeEmptyTrace(t *testing.T) {
	want := &Trace{Platform: "empty"}
	got, err := Decode(want.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Platform != "empty" || len(got.Streams) != 0 {
		t.Fatalf("got %+v", got)
	}
}

// TestDecodeErrors is the table-driven validation suite: every malformed
// input must map onto the right sentinel error and carry offset context in
// its message.
func TestDecodeErrors(t *testing.T) {
	valid := sampleTrace().Encode()
	truncated := func(n int) []byte { return valid[:n] }
	withVersion := func(v byte) []byte {
		b := append([]byte(nil), valid...)
		b[len(Magic)] = v
		return b
	}
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty input", nil, ErrTruncated},
		{"short header", []byte("MPST"), ErrTruncated},
		{"bad magic", []byte("NOTRC\x00\x01rest"), ErrMagic},
		{"vcd file", []byte("$date today $end ..."), ErrMagic},
		{"future version", withVersion(Version + 1), ErrVersion},
		{"version zero", withVersion(0), ErrVersion},
		{"cut mid header", truncated(len(Magic) + 1), ErrTruncated},
		{"cut mid stream header", truncated(len(Magic) + 1 + 26 + 3), ErrTruncated},
		{"cut mid events", truncated(len(valid) - 5), nil /* truncated or corrupt, set below */},
		{"trailing garbage", append(append([]byte(nil), valid...), 0xAA), ErrCorrupt},
		{"huge stream count", append(valid[:len(Magic)+1+26:len(Magic)+1+26], 0xFF, 0xFF, 0xFF, 0xFF, 0x7F), ErrCorrupt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Decode(tc.data)
			if err == nil {
				t.Fatal("decode accepted malformed input")
			}
			if tc.want != nil && !errors.Is(err, tc.want) {
				t.Fatalf("error %v, want %v", err, tc.want)
			}
			if tc.want == nil && !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("error %v, want truncated or corrupt", err)
			}
			if !strings.Contains(err.Error(), "offset") {
				t.Fatalf("error %q lacks offset context", err)
			}
		})
	}
}

// TestDecodeCorruptEventFields mutates a single-event trace so each field
// validation path fires.
func TestDecodeCorruptEventFields(t *testing.T) {
	mk := func(mutate func(ev *Event)) []byte {
		tr := &Trace{Platform: "p", Streams: []*Stream{{
			Name: "s", PeriodPS: 4000,
			Events: []Event{{IssueCycle: 1, Latency: 5, Addr: 64, Beats: 4, BytesPerBeat: 8, Op: bus.OpRead}},
		}}}
		mutate(&tr.Streams[0].Events[0])
		return tr.Encode()
	}
	cases := []struct {
		name   string
		mutate func(ev *Event)
	}{
		{"zero beats", func(ev *Event) { ev.Beats = 0 }},
		{"huge beats", func(ev *Event) { ev.Beats = 1 << 30 }},
		{"zero width", func(ev *Event) { ev.BytesPerBeat = 0 }},
		{"huge width", func(ev *Event) { ev.BytesPerBeat = 1 << 20 }},
		{"posted read", func(ev *Event) { ev.Op = bus.OpRead; ev.Posted = true; ev.Latency = 0 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Decode(mk(tc.mutate)); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("error %v, want %v", err, ErrCorrupt)
			}
		})
	}
}

func TestCaptureProbeRecordsLifecycle(t *testing.T) {
	c := NewCapture("test", 0)
	p := c.Probe("ip0", 4000)

	read := &bus.Request{ID: 1, Op: bus.OpRead, Addr: 0x80, Beats: 4, BytesPerBeat: 8, IssueCycle: 10, MsgSeq: 7, MsgEnd: true}
	posted := &bus.Request{ID: 2, Op: bus.OpWrite, Posted: true, Addr: 0x100, Beats: 8, BytesPerBeat: 8, IssueCycle: 12}
	inflight := &bus.Request{ID: 3, Op: bus.OpWrite, Addr: 0x180, Beats: 2, BytesPerBeat: 8, IssueCycle: 15, Prio: 2}
	p.RequestIssued(read)
	p.RequestIssued(posted)
	p.RequestIssued(inflight)
	p.RequestCompleted(read, 34)
	// completion for an ID never issued must be ignored
	p.RequestCompleted(&bus.Request{ID: 99}, 50)

	s := c.Trace().Stream("ip0")
	if s == nil || len(s.Events) != 3 {
		t.Fatalf("stream: %+v", s)
	}
	if got := s.Events[0]; got.Latency != 24 || got.Op != bus.OpRead || got.Addr != 0x80 || !got.MsgEnd || got.MsgSeq != 7 {
		t.Fatalf("read event: %+v", got)
	}
	if got := s.Events[1]; got.Latency != 0 || !got.Posted {
		t.Fatalf("posted event: %+v", got)
	}
	if got := s.Events[2]; got.Latency != -1 || got.Prio != 2 {
		t.Fatalf("in-flight event: %+v", got)
	}
	h := s.LatencyHistogram()
	if h.N() != 1 || h.Max() != 24 {
		t.Fatalf("latency histogram %v (want the single tracked completion)", h.String())
	}
}

func TestCaptureLimitCountsDrops(t *testing.T) {
	c := NewCapture("test", 2)
	p := c.Probe("ip0", 4000)
	for i := 0; i < 5; i++ {
		p.RequestIssued(&bus.Request{ID: uint64(i + 1), Op: bus.OpRead, Beats: 1, BytesPerBeat: 8, IssueCycle: int64(i)})
	}
	s := c.Trace().Stream("ip0")
	if len(s.Events) != 2 || s.Dropped != 3 || !s.Truncated() {
		t.Fatalf("events=%d dropped=%d", len(s.Events), s.Dropped)
	}
	if !c.Trace().Truncated() {
		t.Fatal("trace not flagged truncated")
	}
	// a completion for a dropped event must not panic or misattribute
	p.RequestCompleted(&bus.Request{ID: 5}, 99)
}

func TestTraceHelpers(t *testing.T) {
	tr := sampleTrace()
	if tr.Stream("nope") != nil {
		t.Fatal("found nonexistent stream")
	}
	if got := tr.StreamNames(); !reflect.DeepEqual(got, []string{"decrypt", "dma1"}) {
		t.Fatalf("names %v", got)
	}
	if tr.Events() != 4 {
		t.Fatalf("events %d", tr.Events())
	}
	if !tr.Truncated() {
		t.Fatal("sample trace has a dropped count; Truncated must report it")
	}
}
