package tracecap

import (
	"sort"

	"mpsocsim/internal/bus"
	"mpsocsim/internal/snapshot"
)

// EncodeState serializes the capture's mutable state (DESIGN.md §16): every
// stream's recorded events, its drop counter, and the probe's pending-request
// index. The full event history is part of the state — a restored run keeps
// appending to the same streams, so the final trace must be byte-identical to
// an uninterrupted capture. Stream names and count guard shape (they are
// spec-derived: one stream per initiator, in attachment order).
func (c *Capture) EncodeState(e *snapshot.Encoder) {
	e.Tag('Q')
	e.U(uint64(len(c.trace.Streams)))
	for i, s := range c.trace.Streams {
		e.Str(s.Name)
		e.I(s.PeriodPS)
		e.I(s.Dropped)
		e.U(uint64(len(s.Events)))
		for j := range s.Events {
			ev := &s.Events[j]
			e.I(ev.IssueCycle)
			e.I(ev.Latency)
			e.U(ev.Addr)
			e.U(ev.MsgSeq)
			e.I(int64(ev.Beats))
			e.I(int64(ev.BytesPerBeat))
			e.I(int64(ev.Prio))
			e.U(uint64(ev.Op))
			e.Bool(ev.Posted)
			e.Bool(ev.MsgEnd)
		}
		p := c.probes[i]
		ids := make([]uint64, 0, len(p.pending))
		for id := range p.pending {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		e.U(uint64(len(ids)))
		for _, id := range ids {
			e.U(id)
			e.U(uint64(p.pending[id]))
		}
	}
}

// DecodeState restores a capture serialized by EncodeState. The capture must
// already hold the same streams (same spec, same attachment order); decode
// overwrites their contents.
func (c *Capture) DecodeState(d *snapshot.Decoder) {
	d.Tag('Q')
	ns := d.N(1 << 10)
	if d.Err() != nil {
		return
	}
	if ns != len(c.trace.Streams) {
		d.Corrupt("capture stream count %d does not match platform's %d", ns, len(c.trace.Streams))
		return
	}
	for i, s := range c.trace.Streams {
		name := d.Str()
		if d.Err() != nil {
			return
		}
		if name != s.Name {
			d.Corrupt("capture stream %d is %q, platform expects %q", i, name, s.Name)
			return
		}
		s.PeriodPS = d.I()
		s.Dropped = d.I()
		ne := d.N(1 << 24)
		s.Events = s.Events[:0]
		for j := 0; j < ne; j++ {
			var ev Event
			ev.IssueCycle = d.I()
			ev.Latency = d.I()
			ev.Addr = d.U()
			ev.MsgSeq = d.U()
			ev.Beats = int(d.I())
			ev.BytesPerBeat = int(d.I())
			ev.Prio = int(d.I())
			op := d.U()
			ev.Posted = d.Bool()
			ev.MsgEnd = d.Bool()
			if d.Err() != nil {
				return
			}
			if op > uint64(bus.OpWrite) {
				d.Corrupt("capture stream %q event %d opcode %d out of range", s.Name, j, op)
				return
			}
			ev.Op = bus.Op(op)
			s.Events = append(s.Events, ev)
		}
		p := c.probes[i]
		for id := range p.pending {
			delete(p.pending, id)
		}
		np := d.N(1 << 22)
		for j := 0; j < np; j++ {
			id := d.U()
			idx := d.U()
			if d.Err() != nil {
				return
			}
			if idx >= uint64(len(s.Events)) {
				d.Corrupt("capture stream %q pending entry points at event %d of %d", s.Name, idx, len(s.Events))
				return
			}
			p.pending[id] = int(idx)
		}
	}
}
