package tracecap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"mpsocsim/internal/bus"
	"mpsocsim/internal/varint"
)

// Binary trace format (DESIGN.md §12). All integers are unsigned varints
// (encoding/binary Uvarint) unless marked zigzag (binary Varint). Strings
// are a uvarint byte length followed by raw UTF-8.
//
//	magic    6 bytes "MPSTRC"
//	version  1 byte  (currently 1)
//	platform string
//	nstreams uvarint
//	then, per stream:
//	  name     string
//	  periodPS uvarint (> 0)
//	  dropped  uvarint
//	  count    uvarint
//	  count events, delta-encoded against the previous event:
//	    flags      1 byte: bit0 write, bit1 posted, bit2 msgEnd,
//	               bit3 completed (latency field present)
//	    cycleDelta uvarint (IssueCycle - previous IssueCycle; issue
//	               cycles are nondecreasing within a stream)
//	    addrDelta  zigzag (Addr - previous Addr, two's complement)
//	    beats      uvarint (> 0)
//	    bytesPerBeat uvarint (> 0)
//	    prio       uvarint
//	    msgSeqDelta zigzag
//	    latency    uvarint, only when bit3 is set (absent = in flight,
//	               decoded as -1; posted writes carry latency 0)
//
// Versioning rule: the version byte is bumped on any incompatible layout
// change; the decoder rejects versions it does not know rather than
// guessing. Additive changes reuse the flags byte's free bits and keep the
// version.

// Magic identifies a trace file.
const Magic = "MPSTRC"

// Version is the current format version.
const Version = 1

// Sentinel decode errors; the decoder wraps them with byte-offset context,
// so match with errors.Is.
var (
	// ErrMagic marks a file that is not a trace at all.
	ErrMagic = errors.New("bad magic (not a tracecap trace)")
	// ErrVersion marks a trace written by an incompatible format version.
	ErrVersion = errors.New("unsupported trace version")
	// ErrTruncated marks a trace that ends mid-structure.
	ErrTruncated = errors.New("truncated trace")
	// ErrCorrupt marks a structurally invalid trace (overlong varint,
	// zero burst length, implausible counts).
	ErrCorrupt = errors.New("corrupt trace")
)

const (
	flagWrite     = 1 << 0
	flagPosted    = 1 << 1
	flagMsgEnd    = 1 << 2
	flagCompleted = 1 << 3
	flagsKnown    = flagWrite | flagPosted | flagMsgEnd | flagCompleted

	// maxNameLen bounds decoded string lengths; maxStreams bounds the
	// stream count. Both exist so a corrupt header cannot drive huge
	// allocations before the payload is validated.
	maxNameLen = 1 << 12
	maxStreams = 1 << 16
	// minEventBytes is the smallest possible encoded event (all fields
	// single-byte varints, no latency); the decoder uses it to reject
	// event counts that cannot fit in the remaining bytes.
	minEventBytes = 7
)

// Encode serializes the trace to its binary format.
func (t *Trace) Encode() []byte {
	// Size hint: header plus ~8 bytes per event keeps regrowth rare.
	buf := make([]byte, 0, 64+len(t.Streams)*32+int(t.Events())*8)
	buf = append(buf, Magic...)
	buf = append(buf, Version)
	buf = appendString(buf, t.Platform)
	buf = binary.AppendUvarint(buf, uint64(len(t.Streams)))
	for _, s := range t.Streams {
		buf = appendString(buf, s.Name)
		buf = binary.AppendUvarint(buf, uint64(s.PeriodPS))
		buf = binary.AppendUvarint(buf, uint64(s.Dropped))
		buf = binary.AppendUvarint(buf, uint64(len(s.Events)))
		var prevCycle int64
		var prevAddr, prevSeq uint64
		for i := range s.Events {
			ev := &s.Events[i]
			var flags byte
			if ev.Op == bus.OpWrite {
				flags |= flagWrite
			}
			if ev.Posted {
				flags |= flagPosted
			}
			if ev.MsgEnd {
				flags |= flagMsgEnd
			}
			if ev.Latency >= 0 {
				flags |= flagCompleted
			}
			buf = append(buf, flags)
			buf = binary.AppendUvarint(buf, uint64(ev.IssueCycle-prevCycle))
			buf = binary.AppendVarint(buf, int64(ev.Addr-prevAddr))
			buf = binary.AppendUvarint(buf, uint64(ev.Beats))
			buf = binary.AppendUvarint(buf, uint64(ev.BytesPerBeat))
			buf = binary.AppendUvarint(buf, uint64(ev.Prio))
			buf = binary.AppendVarint(buf, int64(ev.MsgSeq-prevSeq))
			if ev.Latency >= 0 {
				buf = binary.AppendUvarint(buf, uint64(ev.Latency))
			}
			prevCycle, prevAddr, prevSeq = ev.IssueCycle, ev.Addr, ev.MsgSeq
		}
	}
	return buf
}

func appendString(buf []byte, s string) []byte {
	return varint.AppendString(buf, s)
}

// WriteTo writes the encoded trace to w.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	n, err := w.Write(t.Encode())
	return int64(n), err
}

// WriteFile writes the encoded trace to path.
func (t *Trace) WriteFile(path string) error {
	return os.WriteFile(path, t.Encode(), 0o644)
}

// decoder walks the byte stream tracking the current offset so every error
// names the exact position of the problem.
type decoder struct {
	data []byte
	off  int
}

// errf wraps sentinel err with positional context. The offset is the
// position where the failing field started.
func (d *decoder) errf(err error, at int, format string, args ...any) error {
	return fmt.Errorf("tracecap: %s at offset %d: %w", fmt.Sprintf(format, args...), at, err)
}

func (d *decoder) remaining() int { return len(d.data) - d.off }

func (d *decoder) uvarint(what string) (uint64, error) {
	at := d.off
	v, n, st := varint.Uvarint(d.data, d.off)
	switch st {
	case varint.Truncated:
		return 0, d.errf(ErrTruncated, at, "%s ends mid-varint", what)
	case varint.Overflow:
		return 0, d.errf(ErrCorrupt, at, "%s varint overflows 64 bits", what)
	}
	d.off += n
	return v, nil
}

func (d *decoder) varint(what string) (int64, error) {
	at := d.off
	v, n, st := varint.Varint(d.data, d.off)
	switch st {
	case varint.Truncated:
		return 0, d.errf(ErrTruncated, at, "%s ends mid-varint", what)
	case varint.Overflow:
		return 0, d.errf(ErrCorrupt, at, "%s varint overflows 64 bits", what)
	}
	d.off += n
	return v, nil
}

func (d *decoder) str(what string) (string, error) {
	at := d.off
	n, err := d.uvarint(what + " length")
	if err != nil {
		return "", err
	}
	if n > maxNameLen {
		return "", d.errf(ErrCorrupt, at, "%s length %d exceeds %d", what, n, maxNameLen)
	}
	if uint64(d.remaining()) < n {
		return "", d.errf(ErrTruncated, at, "%s needs %d bytes, %d left", what, n, d.remaining())
	}
	s := string(d.data[d.off : d.off+int(n)])
	d.off += int(n)
	return s, nil
}

// Decode parses a binary trace, validating structure and value ranges. All
// errors wrap one of the sentinel errors above and carry the byte offset of
// the failing field.
func Decode(data []byte) (*Trace, error) {
	d := &decoder{data: data}
	if len(data) < len(Magic)+1 {
		return nil, d.errf(ErrTruncated, 0, "header needs %d bytes, have %d", len(Magic)+1, len(data))
	}
	if string(data[:len(Magic)]) != Magic {
		return nil, d.errf(ErrMagic, 0, "got %q", data[:len(Magic)])
	}
	d.off = len(Magic)
	if v := data[d.off]; v != Version {
		return nil, d.errf(ErrVersion, d.off, "version %d (decoder supports %d)", v, Version)
	}
	d.off++

	t := &Trace{}
	var err error
	if t.Platform, err = d.str("platform name"); err != nil {
		return nil, err
	}
	nstreams, err := d.uvarint("stream count")
	if err != nil {
		return nil, err
	}
	if nstreams > maxStreams {
		return nil, d.errf(ErrCorrupt, d.off, "stream count %d exceeds %d", nstreams, maxStreams)
	}
	t.Streams = make([]*Stream, 0, nstreams)
	for si := uint64(0); si < nstreams; si++ {
		s, err := d.stream(int(si))
		if err != nil {
			return nil, err
		}
		t.Streams = append(t.Streams, s)
	}
	if d.remaining() != 0 {
		return nil, d.errf(ErrCorrupt, d.off, "%d trailing bytes after last stream", d.remaining())
	}
	return t, nil
}

func (d *decoder) stream(si int) (*Stream, error) {
	s := &Stream{}
	var err error
	if s.Name, err = d.str(fmt.Sprintf("stream %d name", si)); err != nil {
		return nil, err
	}
	at := d.off
	period, err := d.uvarint("stream period")
	if err != nil {
		return nil, err
	}
	if period == 0 || period > 1<<40 {
		return nil, d.errf(ErrCorrupt, at, "stream %q period %d ps out of range", s.Name, period)
	}
	s.PeriodPS = int64(period)
	dropped, err := d.uvarint("dropped count")
	if err != nil {
		return nil, err
	}
	s.Dropped = int64(dropped)
	at = d.off
	count, err := d.uvarint("event count")
	if err != nil {
		return nil, err
	}
	if count > uint64(d.remaining())/minEventBytes {
		return nil, d.errf(ErrTruncated, at,
			"stream %q declares %d events (>= %d bytes each) but only %d bytes remain",
			s.Name, count, minEventBytes, d.remaining())
	}
	s.Events = make([]Event, count)
	var prevCycle int64
	var prevAddr, prevSeq uint64
	for i := range s.Events {
		ev := &s.Events[i]
		at := d.off
		if d.remaining() < 1 {
			return nil, d.errf(ErrTruncated, at, "stream %q event %d flags", s.Name, i)
		}
		flags := d.data[d.off]
		d.off++
		if flags&^byte(flagsKnown) != 0 {
			return nil, d.errf(ErrCorrupt, at, "stream %q event %d unknown flag bits %#x", s.Name, i, flags)
		}
		delta, err := d.uvarint("issue-cycle delta")
		if err != nil {
			return nil, err
		}
		ev.IssueCycle = prevCycle + int64(delta)
		if ev.IssueCycle < prevCycle {
			return nil, d.errf(ErrCorrupt, at, "stream %q event %d issue cycle overflows", s.Name, i)
		}
		addrDelta, err := d.varint("address delta")
		if err != nil {
			return nil, err
		}
		ev.Addr = prevAddr + uint64(addrDelta)
		beats, err := d.uvarint("beat count")
		if err != nil {
			return nil, err
		}
		if beats == 0 || beats > 1<<20 {
			return nil, d.errf(ErrCorrupt, at, "stream %q event %d beat count %d out of range", s.Name, i, beats)
		}
		ev.Beats = int(beats)
		bpb, err := d.uvarint("bytes per beat")
		if err != nil {
			return nil, err
		}
		if bpb == 0 || bpb > 1<<10 {
			return nil, d.errf(ErrCorrupt, at, "stream %q event %d bytes/beat %d out of range", s.Name, i, bpb)
		}
		ev.BytesPerBeat = int(bpb)
		prio, err := d.uvarint("priority")
		if err != nil {
			return nil, err
		}
		if prio > 1<<20 {
			return nil, d.errf(ErrCorrupt, at, "stream %q event %d priority %d out of range", s.Name, i, prio)
		}
		ev.Prio = int(prio)
		seqDelta, err := d.varint("message-sequence delta")
		if err != nil {
			return nil, err
		}
		ev.MsgSeq = prevSeq + uint64(seqDelta)
		if flags&flagWrite != 0 {
			ev.Op = bus.OpWrite
		}
		ev.Posted = flags&flagPosted != 0
		ev.MsgEnd = flags&flagMsgEnd != 0
		ev.Latency = -1
		if flags&flagCompleted != 0 {
			lat, err := d.uvarint("latency")
			if err != nil {
				return nil, err
			}
			if lat > 1<<40 {
				return nil, d.errf(ErrCorrupt, at, "stream %q event %d latency %d out of range", s.Name, i, lat)
			}
			ev.Latency = int64(lat)
		}
		if ev.Posted && ev.Op != bus.OpWrite {
			return nil, d.errf(ErrCorrupt, at, "stream %q event %d posted read", s.Name, i)
		}
		prevCycle, prevAddr, prevSeq = ev.IssueCycle, ev.Addr, ev.MsgSeq
	}
	return s, nil
}

// ReadFile reads and decodes a trace file.
func ReadFile(path string) (*Trace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	t, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}

// Read decodes a trace from r (reading it fully into memory; traces are
// compact — a few bytes per transaction).
func Read(r io.Reader) (*Trace, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}
