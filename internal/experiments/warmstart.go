package experiments

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sync/atomic"

	"mpsocsim/internal/platform"
	"mpsocsim/internal/snapshot"
)

// Warm-start sweeps (DESIGN.md §16). Every run of a figure sweep begins with
// the same deterministic warm-up: caches fill, FIFOs reach steady occupancy,
// the DSP loop settles. Re-invoking a sweep re-simulates that prefix for
// every configuration even though nothing about it changed. A SnapCache
// makes the prefix pay once: the first run of each configuration simulates
// the warm-up, checkpoints the complete platform state and stores it on
// disk; later runs restore the checkpoint and simulate only the remainder.
// Checkpoint restore is bit-identical by contract, so cached and uncached
// regenerations produce byte-identical tables.

// DefaultWarmPrefix is the default warm-up prefix length in central cycles.
// It is sized to sit well inside every full-platform figure run at bench
// scale (the shortest is ~13k cycles at scale 0.25); a run that drains
// before the prefix simply never primes the cache and loses nothing.
const DefaultWarmPrefix = 8000

// SnapCache is a content-addressed on-disk cache of warm-up checkpoints.
// The cache key hashes the spec fingerprint (topology, protocol, workload,
// replay-trace identity — everything that shapes the state), the prefix
// length and the snapshot format version, so any change to any of them
// misses cleanly instead of restoring a stale prefix. Entries are written
// atomically (temp file + rename), making the cache safe to share between
// the runner's concurrent workers and between concurrent invocations.
type SnapCache struct {
	dir    string
	prefix int64

	hits   atomic.Int64
	misses atomic.Int64
}

// NewSnapCache opens (creating if needed) a warm-start cache rooted at dir.
// prefixCycles is the warm-up length in central cycles; <= 0 selects
// DefaultWarmPrefix.
func NewSnapCache(dir string, prefixCycles int64) (*SnapCache, error) {
	if prefixCycles <= 0 {
		prefixCycles = DefaultWarmPrefix
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("warm-start cache: %w", err)
	}
	return &SnapCache{dir: dir, prefix: prefixCycles}, nil
}

// Hits returns how many runs restored a cached prefix; Misses how many
// simulated it (and primed the cache for the next invocation).
func (c *SnapCache) Hits() int64   { return c.hits.Load() }
func (c *SnapCache) Misses() int64 { return c.misses.Load() }

// PrefixCycles returns the configured warm-up length.
func (c *SnapCache) PrefixCycles() int64 { return c.prefix }

// entry returns the on-disk path of the checkpoint for one spec.
func (c *SnapCache) entry(spec platform.Spec) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%#x|%d|v%d", spec.Fingerprint(), c.prefix, snapshot.Version)
	return filepath.Join(c.dir, fmt.Sprintf("%016x.snap", h.Sum64()))
}

// run executes one full-platform run, warm-starting from a cached prefix
// checkpoint when one exists and priming the cache when it does not. The
// result is bit-identical either way (modulo Result.ResumedFromCycle, which
// records where the restore happened). attach, when non-nil, is called on
// the platform before the finishing run — the live-telemetry hook-up point
// (collectors are not part of a checkpoint, so a restored run re-attaches).
func (c *SnapCache) run(spec platform.Spec, shards int, attach func(*platform.Platform)) (platform.Result, error) {
	path := c.entry(spec)
	if data, err := os.ReadFile(path); err == nil {
		if p, err := platform.Restore(spec, bytes.NewReader(data)); err == nil {
			c.hits.Add(1)
			if attach != nil {
				attach(p)
			}
			return finishRun(p, shards)
		}
		// A stale or torn entry (format bump mid-hash-collision, partial
		// disk) must never kill the sweep: drop it and run cold.
		os.Remove(path)
	}
	c.misses.Add(1)
	p, err := platform.Build(spec)
	if err != nil {
		return platform.Result{}, err
	}
	if attach != nil {
		attach(p)
	}
	if p.RunToCycle(c.prefix, Budget) {
		var buf bytes.Buffer
		if err := p.Snapshot(&buf); err == nil {
			writeFileAtomic(path, buf.Bytes())
		}
	}
	return finishRun(p, shards)
}

// finishRun completes a run from wherever the platform currently stands
// (fresh, past the warm-up, or just restored), applying the sharded
// execution mode first when requested — sharding must follow any
// checkpoint/restore, never precede it.
func finishRun(p *platform.Platform, shards int) (platform.Result, error) {
	if shards > 1 {
		if err := p.EnableSharding(shards); err != nil {
			return platform.Result{}, err
		}
	}
	return p.Run(Budget), nil
}

// writeFileAtomic publishes data at path via a same-directory temp file and
// rename, so a concurrent reader sees either the old entry or the complete
// new one, never a prefix. Cache writes are best-effort: on any error the
// entry is simply not cached and the next invocation runs cold again.
func writeFileAtomic(path string, data []byte) {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".snap-*")
	if err != nil {
		return
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
	}
}
