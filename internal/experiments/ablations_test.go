package experiments

import (
	"strings"
	"testing"

	"mpsocsim/internal/stbus"
)

func TestAblationMessaging(t *testing.T) {
	r, err := AblationMessaging(small)
	if err != nil {
		t.Fatal(err)
	}
	worst := r.Cells[0][0] // no messaging, FCFS controller
	best := r.Cells[1][1]  // messaging + optimizer
	if best >= worst {
		t.Errorf("messaging+optimizer (%d) should beat the bare corner (%d)", best, worst)
	}
	// either mechanism alone should improve on the bare corner
	if r.Cells[0][1] > worst || r.Cells[1][0] > worst {
		t.Errorf("single mechanisms should not be worse than none: %+v", r.Cells)
	}
	var sb strings.Builder
	if err := r.Write(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "messaging, optimizing controller") {
		t.Fatal("render incomplete")
	}
}

func TestAblationSTBusTypes(t *testing.T) {
	s, err := AblationSTBusTypes(small)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Entry{}
	for _, e := range s.Entries {
		byName[e.Name] = e
	}
	if float64(byName["Type 1"].Cycles) < 1.3*float64(byName["Type 3"].Cycles) {
		t.Errorf("Type 1 (%d) should trail Type 3 (%d) badly", byName["Type 1"].Cycles, byName["Type 3"].Cycles)
	}
	if float64(byName["Type 2"].Cycles) > 1.25*float64(byName["Type 3"].Cycles) {
		t.Errorf("Type 2 (%d) should be close to Type 3 (%d)", byName["Type 2"].Cycles, byName["Type 3"].Cycles)
	}
	var sb strings.Builder
	if err := s.Write(&sb); err != nil {
		t.Fatal(err)
	}
}

func TestAblationSDRvsDDR(t *testing.T) {
	s, err := AblationSDRvsDDR(small)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Entries) != 2 {
		t.Fatalf("entries = %d", len(s.Entries))
	}
	ddr, sdr := s.Entries[0].Cycles, s.Entries[1].Cycles
	if sdr <= ddr {
		t.Errorf("SDR (%d) should be slower than DDR (%d)", sdr, ddr)
	}
	var sb strings.Builder
	if err := s.Write(&sb); err != nil {
		t.Fatal(err)
	}
}

func TestBridgeLatencySweep(t *testing.T) {
	r, err := BridgeLatencySweep(small, []int{1, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cycles) != 2 {
		t.Fatalf("points = %d", len(r.Cycles))
	}
	// Deep bridges cost something but the split pipeline hides most of it:
	// expect less than proportional slowdown (16x latency, < 1.5x time).
	ratio := float64(r.Cycles[1]) / float64(r.Cycles[0])
	if ratio < 1.0 {
		t.Logf("deep bridges came out faster (%.3f) — within noise", ratio)
	}
	if ratio > 1.5 {
		t.Errorf("split bridges should hide most of the extra latency, ratio %.3f", ratio)
	}
	var sb strings.Builder
	if err := r.Write(&sb); err != nil {
		t.Fatal(err)
	}
}

func TestBridgeLatencySweepRejectsInvalidLatency(t *testing.T) {
	for _, bad := range [][]int{{0}, {1, -2}} {
		if _, err := BridgeLatencySweep(small, bad); err == nil {
			t.Errorf("latencies %v must be rejected", bad)
		}
	}
}

func TestSTBusTypeLadderUsesAllTypes(t *testing.T) {
	// guard against the ablation silently running one type
	if stbus.Type1 == stbus.Type3 {
		t.Fatal("impossible")
	}
	s, err := AblationSTBusTypes(small)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Entries) != 3 {
		t.Fatalf("entries = %d", len(s.Entries))
	}
}

func TestRunAblationUnknownVariant(t *testing.T) {
	var sb strings.Builder
	err := RunAblation(&sb, "no-such-ablation", small)
	if err == nil {
		t.Fatal("unknown variant must be rejected")
	}
	// the error must teach the caller the valid names
	for _, name := range AblationNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list variant %q", err, name)
		}
	}
	if sb.Len() != 0 {
		t.Errorf("unknown variant must not write output, got %q", sb.String())
	}
}

func TestAblationNamesCoverEveryVariant(t *testing.T) {
	names := AblationNames()
	if len(names) != len(ablationVariants) {
		t.Fatalf("order list has %d names, registry has %d variants", len(names), len(ablationVariants))
	}
	for _, name := range names {
		if _, ok := ablationVariants[name]; !ok {
			t.Errorf("ordered name %q missing from registry", name)
		}
	}
}

func TestRunAblationByName(t *testing.T) {
	if testing.Short() {
		t.Skip("full-platform ablation dispatch is slow; covered unguarded in long mode")
	}
	var sb strings.Builder
	if err := RunAblation(&sb, "sdr-ddr", small); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "SDR vs DDR") {
		t.Fatalf("dispatched report incomplete: %q", sb.String())
	}
}

func TestLatencyReport(t *testing.T) {
	r, err := Latency(small)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Result.Done {
		t.Fatal("latency run did not drain")
	}
	var sb strings.Builder
	if err := r.Write(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Latency decomposition", "decoder/ref_fetch", "n5_dma_br", "memory subsystem utilization"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}
