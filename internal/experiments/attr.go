package experiments

import (
	"fmt"
	"io"

	"mpsocsim/internal/attr"
	"mpsocsim/internal/platform"
	"mpsocsim/internal/runner"
	"mpsocsim/internal/stats"
)

// AttrRow is one phase of the cross-protocol attribution comparison: the
// mean per-transaction time spent in the phase on each platform instance,
// and the deltas against the STBus reference.
type AttrRow struct {
	Phase string
	// MeanNS holds the per-protocol mean time per transaction in
	// nanoseconds, indexed like AttrResult.Protocols.
	MeanNS []float64
}

// AttrResult is the latency-attribution comparison of the paper's reference
// platform (distributed STBus + LMI) against the AHB and AXI instances under
// the same workload: where each protocol's transactions spend their time,
// phase by phase.
type AttrResult struct {
	Protocols []string
	Rows      []AttrRow
	// E2E is the end-to-end mean per transaction (ns) per protocol; the
	// phase rows sum to it (conservation).
	E2E []float64
}

// attrJob runs one platform with attribution enabled and reduces the result
// to its attribution snapshot.
func attrJob(name string, spec platform.Spec, shards int) runner.Job[*attr.Snapshot] {
	return runner.Job[*attr.Snapshot]{Name: name, Run: func() (*attr.Snapshot, error) {
		p, err := platform.Build(spec)
		if err != nil {
			return nil, err
		}
		// Attribution before sharding: EnableSharding freezes the
		// component-to-shard assignment, so observers attach first.
		p.EnableAttribution(0)
		if shards > 1 {
			if err := p.EnableSharding(shards); err != nil {
				return nil, err
			}
		}
		r := p.Run(Budget)
		if !r.Done {
			return nil, fmt.Errorf("%s did not drain within budget", spec.Name())
		}
		return r.Attribution, nil
	}}
}

// phaseMeans reduces a snapshot to the platform-wide mean per-transaction
// time per phase (ns) plus the end-to-end mean, aggregated over every
// initiator row.
func phaseMeans(s *attr.Snapshot) (map[string]float64, float64) {
	var txns, e2e int64
	totals := map[string]int64{}
	for _, is := range s.Initiators {
		txns += is.Transactions
		e2e += is.TotalPS
		for _, ph := range is.Phases {
			totals[ph.Phase] += ph.TotalPS
		}
	}
	means := make(map[string]float64, len(totals))
	if txns == 0 {
		return means, 0
	}
	for ph, total := range totals {
		means[ph] = float64(total) / float64(txns) / 1e3
	}
	return means, float64(e2e) / float64(txns) / 1e3
}

// AttrComparison runs the distributed LMI platform on all three protocols
// with latency attribution enabled and tabulates where the mean transaction
// spends its time on each — the paper's bridge-cost argument (§3.2, §4.2)
// made quantitative: the AHB/AXI deltas against STBus localize the slowdown
// to specific phases (initiator-queue backup and arbitration wait behind the
// serialized layers and blocking bridges) rather than one end-to-end number.
func AttrComparison(o Options) (AttrResult, error) {
	o.normalize()
	mk := func(name string, proto platform.Protocol) runner.Job[*attr.Snapshot] {
		s := baseSpec(o)
		s.Protocol, s.Topology, s.Memory = proto, platform.Distributed, platform.LMIDDR
		return attrJob(name, s, o.Shards)
	}
	snaps, err := runner.Values(runner.Map([]runner.Job[*attr.Snapshot]{
		mk("STBus", platform.STBus),
		mk("AHB", platform.AHB),
		mk("AXI", platform.AXI),
	}, o.pool("attr")))
	if err != nil {
		return AttrResult{}, err
	}
	out := AttrResult{Protocols: []string{"STBus", "AHB", "AXI"}}
	means := make([]map[string]float64, len(snaps))
	for i, s := range snaps {
		var e2e float64
		means[i], e2e = phaseMeans(s)
		out.E2E = append(out.E2E, e2e)
	}
	for _, ph := range attr.PhaseNames() {
		row := AttrRow{Phase: ph}
		any := false
		for i := range snaps {
			m := means[i][ph]
			row.MeanNS = append(row.MeanNS, m)
			any = any || m > 0
		}
		if any {
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

// Write renders the comparison.
func (r AttrResult) Write(w io.Writer) error {
	fmt.Fprintln(w, "== Latency attribution — where the mean transaction spends its time ==")
	fmt.Fprintln(w, "Mean ns per transaction per phase, distributed LMI platform, all protocols")
	fmt.Fprintln(w, "under the same workload. Expected shape: the AHB/AXI deltas concentrate in")
	fmt.Fprintln(w, "init_queue and arb_wait — transactions backing up behind the serialized")
	fmt.Fprintln(w, "layers and blocking bridges — while the memory-side phases (lmi_*, sdram_*)")
	fmt.Fprintln(w, "barely move: the interconnect, not the memory, is what the protocol changes.")
	fmt.Fprintln(w)
	cols := []string{"phase"}
	for _, p := range r.Protocols {
		cols = append(cols, p+"_ns")
	}
	for _, p := range r.Protocols[1:] {
		cols = append(cols, "d_"+p)
	}
	tbl := stats.NewTable(cols...)
	addRow := func(name string, vals []float64) {
		row := []string{name}
		for _, v := range vals {
			row = append(row, fmt.Sprintf("%.1f", v))
		}
		for _, v := range vals[1:] {
			row = append(row, fmt.Sprintf("%+.1f", v-vals[0]))
		}
		tbl.AddRow(row...)
	}
	for _, pr := range r.Rows {
		addRow(pr.Phase, pr.MeanNS)
	}
	addRow("end_to_end", r.E2E)
	if err := tbl.Write(w); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w)
	return err
}
