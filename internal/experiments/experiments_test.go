package experiments

import (
	"strings"
	"testing"
)

// small keeps test runs quick while staying above the congestion threshold
// where the paper's effects manifest. Workers: 2 exercises the parallel
// fan-out in every shape test (determinism is asserted separately in
// parallel_test.go).
var small = Options{Scale: 0.25, Seed: 1, Workers: 2}

func TestFig3ShapeAndRendering(t *testing.T) {
	s, err := Fig3(small)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Entries) != 5 {
		t.Fatalf("entries = %d", len(s.Entries))
	}
	byName := map[string]Entry{}
	for _, e := range s.Entries {
		byName[e.Name] = e
		if e.Cycles <= 0 {
			t.Fatalf("entry %q has no cycles", e.Name)
		}
	}
	if byName["collapsed AXI"].Normalized != 1.0 {
		t.Fatal("first entry must be the normalization base")
	}
	// shape assertions (loose versions of the paper's claims)
	if byName["full AHB"].Cycles < byName["full STBus"].Cycles {
		t.Error("full AHB should trail full STBus")
	}
	ratio := float64(byName["full STBus"].Cycles) / float64(byName["collapsed STBus"].Cycles)
	if ratio < 0.85 || ratio > 1.15 {
		t.Errorf("full vs collapsed STBus ratio %.3f outside parity band", ratio)
	}
	var sb strings.Builder
	if err := s.Write(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Fig.3") || !strings.Contains(sb.String(), "full AHB") {
		t.Fatalf("render: %s", sb.String())
	}
}

func TestFig4SweepShape(t *testing.T) {
	r, err := Fig4(small, []int{0, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 2 {
		t.Fatalf("points = %d", len(r.Points))
	}
	if r.Points[0].Ratio < 1.0 {
		t.Errorf("fast memory should expose the distributed crossing latency (ratio %.3f)", r.Points[0].Ratio)
	}
	if r.Points[1].Ratio >= r.Points[0].Ratio {
		t.Errorf("ratio should shrink with memory latency: %.3f -> %.3f",
			r.Points[0].Ratio, r.Points[1].Ratio)
	}
	var sb strings.Builder
	if err := r.Write(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "wait_states") {
		t.Fatal("render missing header")
	}
}

func TestFig4RejectsNegativeWaitStates(t *testing.T) {
	if _, err := Fig4(small, []int{0, -1}); err == nil {
		t.Fatal("negative wait states must be rejected")
	}
}

func TestFig5Shape(t *testing.T) {
	s, err := Fig5(small)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Entry{}
	for _, e := range s.Entries {
		byName[e.Name] = e
	}
	if float64(byName["collapsed AXI"].Cycles) < 1.5*float64(byName["collapsed STBus"].Cycles) {
		t.Error("collapsed AXI should be much worse than collapsed STBus with the LMI")
	}
	if float64(byName["full AHB"].Cycles) < 2.0*float64(byName["distributed STBus"].Cycles) {
		t.Error("the STBus-AHB gap should be large with the LMI")
	}
	var sb strings.Builder
	if err := s.Write(&sb); err != nil {
		t.Fatal(err)
	}
}

func TestFig6Report(t *testing.T) {
	r, err := Fig6(Options{Scale: 0.3, Seed: 1, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if r.PhaseA.FullFrac <= 0 {
		t.Error("intense phase should see a full FIFO some of the time")
	}
	if r.PhaseB.EmptyFrac <= r.PhaseA.EmptyFrac {
		t.Errorf("bursty phase should be empty more often (A=%.2f B=%.2f)",
			r.PhaseA.EmptyFrac, r.PhaseB.EmptyFrac)
	}
	if r.AHBFull > 0.05 {
		t.Errorf("AHB rerun should ~never fill the FIFO (%.3f)", r.AHBFull)
	}
	if r.AHBNoRequest < 0.6 {
		t.Errorf("AHB rerun should mostly see no requests (%.3f)", r.AHBNoRequest)
	}
	if len(r.Windows) == 0 {
		t.Error("no windows recorded")
	}
	var sb strings.Builder
	if err := r.Write(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "full AHB rerun") {
		t.Fatal("render incomplete")
	}
}

func TestSec411Shape(t *testing.T) {
	r, err := Sec411(small, []float64{4, 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 2 {
		t.Fatalf("points = %d", len(r.Points))
	}
	congested := r.Points[1] // gap 0
	if float64(congested.AHB) < 1.8*float64(congested.STBus) {
		t.Errorf("congested many-to-many AHB (%d) should trail STBus (%d) badly",
			congested.AHB, congested.STBus)
	}
	// Deeper target buffering must stay within noise of the baseline or
	// better (the wait-state memory, not the response path, binds here).
	if float64(congested.STBusDeep) > 1.1*float64(congested.STBus) {
		t.Errorf("deeper target buffering hurt STBus: %d vs %d",
			congested.STBusDeep, congested.STBus)
	}
	var sb strings.Builder
	if err := r.Write(&sb); err != nil {
		t.Fatal(err)
	}
}

func TestSec411RejectsNegativeGaps(t *testing.T) {
	if _, err := Sec411(small, []float64{2, -0.5}); err == nil {
		t.Fatal("negative gap means must be rejected")
	}
}

func TestSec412Equality(t *testing.T) {
	s, err := Sec412(small)
	if err != nil {
		t.Fatal(err)
	}
	base := s.Entries[0].Cycles
	for _, e := range s.Entries {
		d := float64(e.Cycles-base) / float64(base)
		if d < 0 {
			d = -d
		}
		if d > 0.12 {
			t.Errorf("%s deviates %.1f%% in the many-to-one scenario", e.Name, 100*d)
		}
	}
	var sb strings.Builder
	if err := s.Write(&sb); err != nil {
		t.Fatal(err)
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	o.normalize()
	if o.Scale != 1 || o.Seed != 1 {
		t.Fatalf("defaults: %+v", o)
	}
	if p := o.pool("x"); p.Workers != 0 || p.Label != "x" {
		t.Fatalf("pool: %+v", p)
	}
}
