package experiments

import (
	"fmt"
	"io"

	"mpsocsim/internal/platform"
	"mpsocsim/internal/stats"
	"mpsocsim/internal/stbus"
)

// AblationMessagingResult crosses STBus message arbitration with the LMI
// optimization engine on the full platform — the paper's §3 claim that
// messaging generates memory-controller-friendly traffic, and its
// interaction with the controller's own lookahead.
type AblationMessagingResult struct {
	// Cells[msg][opt]: execution cycles with message arbitration
	// (off/on) and the LMI optimization engine (off/on).
	Cells [2][2]int64
}

// AblationMessaging runs the 2x2 messaging/optimizer cross.
func AblationMessaging(o Options) AblationMessagingResult {
	o.normalize()
	var out AblationMessagingResult
	for mi, msg := range []bool{false, true} {
		for oi, opt := range []bool{false, true} {
			s := baseSpec(o)
			s.Protocol, s.Topology, s.Memory = platform.STBus, platform.Distributed, platform.LMIDDR
			s.NoMessageArbitration = !msg
			if !opt {
				s.LMI.LookaheadDepth = 0
				s.LMI.OpcodeMerging = false
			}
			out.Cells[mi][oi] = runPlatform(s).CentralCycles
		}
	}
	return out
}

// Write renders the cross table.
func (r AblationMessagingResult) Write(w io.Writer) error {
	fmt.Fprintln(w, "== Ablation — message arbitration x LMI optimization engine ==")
	fmt.Fprintln(w, "Paper §3: messaging keeps sequences the controller can optimize together")
	fmt.Fprintln(w, "all the way to the controller. Expected: the no-messaging/no-optimizer")
	fmt.Fprintln(w, "corner is worst; either mechanism recovers most of the loss.")
	fmt.Fprintln(w)
	tbl := stats.NewTable("configuration", "cycles", "vs best")
	best := r.Cells[0][0]
	for _, c := range []int64{r.Cells[0][1], r.Cells[1][0], r.Cells[1][1]} {
		if c < best {
			best = c
		}
	}
	row := func(name string, c int64) {
		tbl.AddRow(name, fmt.Sprint(c), fmt.Sprintf("%.3f", float64(c)/float64(best)))
	}
	row("no messaging, FCFS controller", r.Cells[0][0])
	row("no messaging, optimizing controller", r.Cells[0][1])
	row("messaging, FCFS controller", r.Cells[1][0])
	row("messaging, optimizing controller", r.Cells[1][1])
	if err := tbl.Write(w); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w)
	return err
}

// AblationSTBusTypes compares the three STBus protocol generations on the
// full distributed platform with the LMI (paper §3.1's Type 1/2/3 ladder).
func AblationSTBusTypes(o Options) Series {
	o.normalize()
	mk := func(t stbus.Type) int64 {
		s := baseSpec(o)
		s.Protocol, s.Topology, s.Memory = platform.STBus, platform.Distributed, platform.LMIDDR
		s.STBusType = t
		return runPlatform(s).CentralCycles
	}
	entries := []Entry{
		{Name: "Type 3", Cycles: mk(stbus.Type3), Note: "out-of-order, shaped packets"},
		{Name: "Type 2", Cycles: mk(stbus.Type2), Note: "in-order, posted writes"},
		{Name: "Type 1", Cycles: mk(stbus.Type1), Note: "one outstanding, blocking"},
	}
	normalizeEntries(entries)
	return Series{
		Title: "Ablation — STBus protocol type ladder (full platform, LMI)",
		Caption: "Expected shape: Type 2 close to Type 3 (one memory target bounds\n" +
			"reordering benefit); Type 1 far behind (every transaction blocks its\n" +
			"initiator, so the LMI input FIFO starves).",
		Entries: entries,
	}
}

// AblationSDRvsDDR contrasts the LMI driving an SDR device against the DDR
// configuration (the controller "can drive both SDR and DDR SDRAM memory
// devices", paper §3.1) on the full platform.
func AblationSDRvsDDR(o Options) Series {
	o.normalize()
	mk := func(ddr bool) int64 {
		s := baseSpec(o)
		s.Protocol, s.Topology, s.Memory = platform.STBus, platform.Distributed, platform.LMIDDR
		s.LMI.SDRAM.DDR = ddr
		return runPlatform(s).CentralCycles
	}
	entries := []Entry{
		{Name: "DDR", Cycles: mk(true), Note: "2 columns per controller cycle"},
		{Name: "SDR", Cycles: mk(false), Note: "1 column per controller cycle"},
	}
	normalizeEntries(entries)
	return Series{
		Title: "Ablation — SDR vs DDR SDRAM behind the LMI (full platform)",
		Caption: "Expected shape: the DDR device sustains roughly twice the data-bus\n" +
			"bandwidth, so the memory-bound platform completes sooner on DDR.",
		Entries: entries,
	}
}

// AblationBridgeLatency sweeps the cluster-bridge pipeline latency on the
// distributed STBus platform — how sensitive is a well-buffered multi-layer
// system to bridge depth?
type AblationBridgeLatency struct {
	Latencies []int
	Cycles    []int64
}

// BridgeLatencySweep runs the sweep.
func BridgeLatencySweep(o Options, latencies []int) AblationBridgeLatency {
	o.normalize()
	if len(latencies) == 0 {
		latencies = []int{1, 2, 4, 8, 16}
	}
	var out AblationBridgeLatency
	for _, lat := range latencies {
		s := baseSpec(o)
		s.Protocol, s.Topology, s.Memory = platform.STBus, platform.Distributed, platform.LMIDDR
		s.BridgeLatency = lat
		out.Latencies = append(out.Latencies, lat)
		out.Cycles = append(out.Cycles, runPlatform(s).CentralCycles)
	}
	return out
}

// Write renders the sweep.
func (r AblationBridgeLatency) Write(w io.Writer) error {
	fmt.Fprintln(w, "== Ablation — cluster bridge latency sweep (distributed STBus, LMI) ==")
	fmt.Fprintln(w, "Expected shape: with split bridges and multiple outstanding transactions,")
	fmt.Fprintln(w, "moderate extra bridge latency is largely hidden; only large depths bite.")
	fmt.Fprintln(w)
	tbl := stats.NewTable("latency", "cycles", "normalized")
	for i, lat := range r.Latencies {
		tbl.AddRow(fmt.Sprint(lat), fmt.Sprint(r.Cycles[i]),
			fmt.Sprintf("%.3f", float64(r.Cycles[i])/float64(r.Cycles[0])))
	}
	if err := tbl.Write(w); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w)
	return err
}
