package experiments

import (
	"fmt"
	"io"

	"mpsocsim/internal/platform"
	"mpsocsim/internal/runner"
	"mpsocsim/internal/stats"
	"mpsocsim/internal/stbus"
)

// AblationMessagingResult crosses STBus message arbitration with the LMI
// optimization engine on the full platform — the paper's §3 claim that
// messaging generates memory-controller-friendly traffic, and its
// interaction with the controller's own lookahead.
type AblationMessagingResult struct {
	// Cells[msg][opt]: execution cycles with message arbitration
	// (off/on) and the LMI optimization engine (off/on).
	Cells [2][2]int64
}

// AblationMessaging runs the 2x2 messaging/optimizer cross; the four cells
// are independent and execute concurrently.
func AblationMessaging(o Options) (AblationMessagingResult, error) {
	o.normalize()
	var jobs []runner.Job[int64]
	for _, msg := range []bool{false, true} {
		for _, opt := range []bool{false, true} {
			s := baseSpec(o)
			s.Protocol, s.Topology, s.Memory = platform.STBus, platform.Distributed, platform.LMIDDR
			s.NoMessageArbitration = !msg
			if !opt {
				s.LMI.LookaheadDepth = 0
				s.LMI.OpcodeMerging = false
			}
			jobs = append(jobs, cycleJob(fmt.Sprintf("msg=%v/opt=%v", msg, opt), s, o))
		}
	}
	cycles, err := runner.Values(runner.Map(jobs, o.pool("ablation-messaging")))
	if err != nil {
		return AblationMessagingResult{}, err
	}
	var out AblationMessagingResult
	for mi := 0; mi < 2; mi++ {
		for oi := 0; oi < 2; oi++ {
			out.Cells[mi][oi] = cycles[2*mi+oi]
		}
	}
	return out, nil
}

// Write renders the cross table.
func (r AblationMessagingResult) Write(w io.Writer) error {
	fmt.Fprintln(w, "== Ablation — message arbitration x LMI optimization engine ==")
	fmt.Fprintln(w, "Paper §3: messaging keeps sequences the controller can optimize together")
	fmt.Fprintln(w, "all the way to the controller. Expected: the no-messaging/no-optimizer")
	fmt.Fprintln(w, "corner is worst; either mechanism recovers most of the loss.")
	fmt.Fprintln(w)
	tbl := stats.NewTable("configuration", "cycles", "vs best")
	best := r.Cells[0][0]
	for _, c := range []int64{r.Cells[0][1], r.Cells[1][0], r.Cells[1][1]} {
		if c < best {
			best = c
		}
	}
	row := func(name string, c int64) {
		tbl.AddRow(name, fmt.Sprint(c), fmt.Sprintf("%.3f", float64(c)/float64(best)))
	}
	row("no messaging, FCFS controller", r.Cells[0][0])
	row("no messaging, optimizing controller", r.Cells[0][1])
	row("messaging, FCFS controller", r.Cells[1][0])
	row("messaging, optimizing controller", r.Cells[1][1])
	if err := tbl.Write(w); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w)
	return err
}

// AblationSTBusTypes compares the three STBus protocol generations on the
// full distributed platform with the LMI (paper §3.1's Type 1/2/3 ladder).
func AblationSTBusTypes(o Options) (Series, error) {
	o.normalize()
	mk := func(name string, t stbus.Type) runner.Job[int64] {
		s := baseSpec(o)
		s.Protocol, s.Topology, s.Memory = platform.STBus, platform.Distributed, platform.LMIDDR
		s.STBusType = t
		return cycleJob(name, s, o)
	}
	cycles, err := runner.Values(runner.Map([]runner.Job[int64]{
		mk("Type 3", stbus.Type3),
		mk("Type 2", stbus.Type2),
		mk("Type 1", stbus.Type1),
	}, o.pool("ablation-stbus-types")))
	if err != nil {
		return Series{}, err
	}
	entries := []Entry{
		{Name: "Type 3", Cycles: cycles[0], Note: "out-of-order, shaped packets"},
		{Name: "Type 2", Cycles: cycles[1], Note: "in-order, posted writes"},
		{Name: "Type 1", Cycles: cycles[2], Note: "one outstanding, blocking"},
	}
	normalizeEntries(entries)
	return Series{
		Title: "Ablation — STBus protocol type ladder (full platform, LMI)",
		Caption: "Expected shape: Type 2 close to Type 3 (one memory target bounds\n" +
			"reordering benefit); Type 1 far behind (every transaction blocks its\n" +
			"initiator, so the LMI input FIFO starves).",
		Entries: entries,
	}, nil
}

// AblationSDRvsDDR contrasts the LMI driving an SDR device against the DDR
// configuration (the controller "can drive both SDR and DDR SDRAM memory
// devices", paper §3.1) on the full platform.
func AblationSDRvsDDR(o Options) (Series, error) {
	o.normalize()
	mk := func(name string, ddr bool) runner.Job[int64] {
		s := baseSpec(o)
		s.Protocol, s.Topology, s.Memory = platform.STBus, platform.Distributed, platform.LMIDDR
		s.LMI.SDRAM.DDR = ddr
		return cycleJob(name, s, o)
	}
	cycles, err := runner.Values(runner.Map([]runner.Job[int64]{
		mk("DDR", true),
		mk("SDR", false),
	}, o.pool("ablation-sdr-ddr")))
	if err != nil {
		return Series{}, err
	}
	entries := []Entry{
		{Name: "DDR", Cycles: cycles[0], Note: "2 columns per controller cycle"},
		{Name: "SDR", Cycles: cycles[1], Note: "1 column per controller cycle"},
	}
	normalizeEntries(entries)
	return Series{
		Title: "Ablation — SDR vs DDR SDRAM behind the LMI (full platform)",
		Caption: "Expected shape: the DDR device sustains roughly twice the data-bus\n" +
			"bandwidth, so the memory-bound platform completes sooner on DDR.",
		Entries: entries,
	}, nil
}

// AblationBridgeLatency sweeps the cluster-bridge pipeline latency on the
// distributed STBus platform — how sensitive is a well-buffered multi-layer
// system to bridge depth?
type AblationBridgeLatency struct {
	Latencies []int
	Cycles    []int64
}

// BridgeLatencySweep runs the sweep. A nil/empty latencies slice selects
// the default ladder; latencies below one destination cycle are rejected.
func BridgeLatencySweep(o Options, latencies []int) (AblationBridgeLatency, error) {
	o.normalize()
	if len(latencies) == 0 {
		latencies = []int{1, 2, 4, 8, 16}
	}
	var jobs []runner.Job[int64]
	for _, lat := range latencies {
		if lat < 1 {
			return AblationBridgeLatency{}, fmt.Errorf("bridge latency sweep: latency %d below 1 cycle", lat)
		}
		s := baseSpec(o)
		s.Protocol, s.Topology, s.Memory = platform.STBus, platform.Distributed, platform.LMIDDR
		s.BridgeLatency = lat
		jobs = append(jobs, cycleJob(fmt.Sprintf("latency %d", lat), s, o))
	}
	cycles, err := runner.Values(runner.Map(jobs, o.pool("ablation-bridge-latency")))
	if err != nil {
		return AblationBridgeLatency{}, err
	}
	return AblationBridgeLatency{Latencies: latencies, Cycles: cycles}, nil
}

// Write renders the sweep.
func (r AblationBridgeLatency) Write(w io.Writer) error {
	fmt.Fprintln(w, "== Ablation — cluster bridge latency sweep (distributed STBus, LMI) ==")
	fmt.Fprintln(w, "Expected shape: with split bridges and multiple outstanding transactions,")
	fmt.Fprintln(w, "moderate extra bridge latency is largely hidden; only large depths bite.")
	fmt.Fprintln(w)
	tbl := stats.NewTable("latency", "cycles", "normalized")
	for i, lat := range r.Latencies {
		tbl.AddRow(fmt.Sprint(lat), fmt.Sprint(r.Cycles[i]),
			fmt.Sprintf("%.3f", float64(r.Cycles[i])/float64(r.Cycles[0])))
	}
	if err := tbl.Write(w); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w)
	return err
}

// ablationVariants maps CLI variant names to their run-and-render entry
// points. Each variant writes its own report.
var ablationVariants = map[string]func(Options, io.Writer) error{
	"messaging": func(o Options, w io.Writer) error {
		r, err := AblationMessaging(o)
		if err != nil {
			return err
		}
		return r.Write(w)
	},
	"stbus-types": func(o Options, w io.Writer) error {
		r, err := AblationSTBusTypes(o)
		if err != nil {
			return err
		}
		return r.Write(w)
	},
	"sdr-ddr": func(o Options, w io.Writer) error {
		r, err := AblationSDRvsDDR(o)
		if err != nil {
			return err
		}
		return r.Write(w)
	},
	"bridge-latency": func(o Options, w io.Writer) error {
		r, err := BridgeLatencySweep(o, nil)
		if err != nil {
			return err
		}
		return r.Write(w)
	},
}

// ablationOrder is the canonical reporting order (the order the ablations
// were introduced in, kept stable so regenerated reports diff cleanly).
var ablationOrder = []string{"messaging", "stbus-types", "sdr-ddr", "bridge-latency"}

// AblationNames lists the valid ablation variant names in reporting order.
func AblationNames() []string {
	return append([]string(nil), ablationOrder...)
}

// RunAblation runs one named ablation variant and writes its report. An
// unknown name is an error listing the valid variants.
func RunAblation(w io.Writer, name string, o Options) error {
	f, ok := ablationVariants[name]
	if !ok {
		return fmt.Errorf("unknown ablation variant %q (valid: %v)", name, AblationNames())
	}
	return f(o, w)
}

// RunAllAblations runs every ablation variant in name order.
func RunAllAblations(w io.Writer, o Options) error {
	for _, name := range AblationNames() {
		if err := RunAblation(w, name, o); err != nil {
			return fmt.Errorf("ablation %s: %w", name, err)
		}
	}
	return nil
}
