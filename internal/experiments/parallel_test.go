package experiments

import (
	"bytes"
	"runtime"
	"strings"
	"testing"
	"time"

	"mpsocsim/internal/platform"
	"mpsocsim/internal/runner"
)

// renderEverything regenerates every figure, ablation and the latency
// report into one buffer — the full output surface of `experiments all` +
// `experiments ablations` + `experiments latency`.
func renderEverything(t *testing.T, o Options) string {
	t.Helper()
	var buf bytes.Buffer
	sec411, err := Sec411(o, []float64{4, 0})
	if err != nil {
		t.Fatal(err)
	}
	if err := sec411.Write(&buf); err != nil {
		t.Fatal(err)
	}
	sec412, err := Sec412(o)
	if err != nil {
		t.Fatal(err)
	}
	if err := sec412.Write(&buf); err != nil {
		t.Fatal(err)
	}
	fig3, err := Fig3(o)
	if err != nil {
		t.Fatal(err)
	}
	if err := fig3.Write(&buf); err != nil {
		t.Fatal(err)
	}
	fig4, err := Fig4(o, []int{0, 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := fig4.Write(&buf); err != nil {
		t.Fatal(err)
	}
	fig5, err := Fig5(o)
	if err != nil {
		t.Fatal(err)
	}
	if err := fig5.Write(&buf); err != nil {
		t.Fatal(err)
	}
	fig6, err := Fig6(o)
	if err != nil {
		t.Fatal(err)
	}
	if err := fig6.Write(&buf); err != nil {
		t.Fatal(err)
	}
	lat, err := Latency(o)
	if err != nil {
		t.Fatal(err)
	}
	if err := lat.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if err := RunAllAblations(&buf, o); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestParallelOutputIsByteIdentical pins the runner's submission-order
// contract end to end: regenerating every figure with -j 4 must produce
// byte-identical reports to -j 1 (DESIGN §10).
func TestParallelOutputIsByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates every figure twice")
	}
	o := Options{Scale: 0.2, Seed: 1}
	o.Workers = 1
	serial := renderEverything(t, o)
	o.Workers = 4
	parallel := renderEverything(t, o)
	if serial != parallel {
		t.Fatalf("-j 4 output differs from -j 1 output:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial, parallel)
	}
	if !strings.Contains(serial, "Fig.3") || !strings.Contains(serial, "bridge latency sweep") {
		t.Fatal("render surface incomplete")
	}
}

// TestPlatformJobReportsBuildErrors pins the error plumbing: an invalid
// spec surfaces as a named job error, not a panic or an os.Exit.
func TestPlatformJobReportsBuildErrors(t *testing.T) {
	s := platform.DefaultSpec()
	s.Memory = platform.MemoryKind(99)
	_, err := runner.First(runner.Map([]runner.Job[platform.Result]{
		platformJob("bad-spec", s, Options{}),
	}, runner.Options{Workers: 2}))
	if err == nil || !strings.Contains(err.Error(), "bad-spec") {
		t.Fatalf("want named job error, got %v", err)
	}
}

// TestParallelSpeedupFig4 demonstrates the wall-clock win the runner
// exists for: the Fig.4 memory-latency sweep at -j 4 must run at least
// twice as fast as -j 1 on a machine with >= 4 CPUs. On smaller machines
// the test skips (the byte-identity and determinism tests still pin
// correctness there).
func TestParallelSpeedupFig4(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock measurement")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("needs >= 4 CPUs, have %d", runtime.NumCPU())
	}
	o := Options{Scale: 0.5, Seed: 1}
	sweep := []int{0, 1, 2, 4, 8, 16, 32}

	o.Workers = 1
	start := time.Now()
	if _, err := Fig4(o, sweep); err != nil {
		t.Fatal(err)
	}
	serial := time.Since(start)

	o.Workers = 4
	start = time.Now()
	if _, err := Fig4(o, sweep); err != nil {
		t.Fatal(err)
	}
	parallel := time.Since(start)

	speedup := float64(serial) / float64(parallel)
	t.Logf("fig4 sweep: serial %v, -j 4 %v, speedup %.2fx", serial, parallel, speedup)
	if speedup < 2.0 {
		t.Errorf("-j 4 speedup %.2fx, want >= 2x", speedup)
	}
}
