package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestAttrComparisonShapeAndRendering(t *testing.T) {
	r, err := AttrComparison(small)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(r.Protocols), 3; got != want {
		t.Fatalf("protocols = %d, want %d", got, want)
	}
	if len(r.Rows) == 0 {
		t.Fatal("no phase rows")
	}
	// Conservation survives the aggregation: per protocol, the phase means
	// sum back to the end-to-end mean (float fold of exact integer totals,
	// so allow rounding noise only).
	for i, proto := range r.Protocols {
		if r.E2E[i] <= 0 {
			t.Fatalf("%s: non-positive end-to-end mean", proto)
		}
		var sum float64
		for _, row := range r.Rows {
			sum += row.MeanNS[i]
		}
		if math.Abs(sum-r.E2E[i]) > 1e-6*r.E2E[i] {
			t.Errorf("%s: phase means sum to %.3f ns, end-to-end mean is %.3f ns",
				proto, sum, r.E2E[i])
		}
	}
	// Shape: the AHB instance replaces the STBus nodes with shared layers
	// behind blocking bridges, so its mean transaction must be slower than
	// the reference's.
	if r.E2E[1] <= r.E2E[0] {
		t.Errorf("AHB mean %.1f ns should exceed STBus mean %.1f ns", r.E2E[1], r.E2E[0])
	}
	var sb strings.Builder
	if err := r.Write(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"phase", "STBus_ns", "d_AHB", "d_AXI", "end_to_end"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q", want)
		}
	}
}
