// Package experiments regenerates every table and figure of the paper's
// evaluation: the single-layer studies of §4.1 (many-to-many and many-to-one
// traffic), the platform-instance comparisons of Fig.3 and Fig.5, the
// memory-speed sweep of Fig.4 and the fine-grain LMI interface analysis of
// Fig.6. The same entry points back the experiment CLI, the examples and
// the benchmark harness.
//
// Every figure is a set of independent, hermetic, seed-deterministic
// platform runs, so each entry point fans its runs out through
// internal/runner. Results are consumed in submission order, which keeps
// every table byte-identical to a serial regeneration regardless of
// Options.Workers.
package experiments

import (
	"fmt"
	"io"

	"mpsocsim/internal/lmi"
	"mpsocsim/internal/platform"
	"mpsocsim/internal/runner"
	"mpsocsim/internal/stats"
	"mpsocsim/internal/telemetry"
)

// Budget is the simulated-time budget per run (5 ms is ample for every
// configuration at the default scale).
const Budget = 5e12

// Options tune experiment size; the zero value selects paper-scale runs
// executed across runtime.NumCPU() workers.
type Options struct {
	// Scale multiplies the workload (default 1.0; tests use less).
	Scale float64
	// Seed drives the traffic generators.
	Seed uint64
	// Workers bounds how many simulation runs execute concurrently:
	// <= 0 selects runtime.NumCPU(), 1 restores strictly serial
	// execution (the CLI's -j flag maps here).
	Workers int
	// Shards runs each simulation's clock domains on N parallel shards
	// (platform.EnableSharding; bit-identical results by contract). It
	// composes with Workers: Workers parallelizes across runs, Shards
	// within one run. <= 1 keeps runs serial (the CLI's -shards flag
	// maps here).
	Shards int
	// Progress, when non-nil, receives the runner's live progress/ETA
	// line (the CLI passes os.Stderr; tests leave it nil).
	Progress io.Writer
	// Cache, when non-nil, warm-starts every full-platform run from an
	// on-disk checkpoint of its warm-up prefix (priming the cache on the
	// first encounter of each configuration). Results are bit-identical
	// with or without it; only wall-clock changes. Single-layer §4.1 runs
	// are too short to checkpoint and always run cold.
	Cache *SnapCache
	// Live, when non-nil, aggregates every full-platform run's in-run
	// telemetry (cycle position, simulated time against the budget) onto
	// one surface: the runner's progress line gains an aggregate cycles/s
	// and slowest-job ETA suffix, and the CLI can serve the hub's JSON
	// progress document over HTTP (-live). Purely observational: results
	// are byte-identical with or without it.
	Live *telemetry.Hub
}

func (o *Options) normalize() {
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// pool translates the options into runner options for one labelled fan-out.
func (o Options) pool(label string) runner.Options {
	ro := runner.Options{Workers: o.Workers, Progress: o.Progress, Label: label}
	if o.Live != nil {
		ro.Extra = o.Live.Line
	}
	return ro
}

// Entry is one bar/point of a figure.
type Entry struct {
	Name       string
	Cycles     int64
	Normalized float64
	Note       string
}

// Series is a named list of entries with a caption.
type Series struct {
	Title   string
	Caption string
	Entries []Entry
}

// Write renders the series as an aligned table.
func (s Series) Write(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s ==\n%s\n\n", s.Title, s.Caption); err != nil {
		return err
	}
	tbl := stats.NewTable("instance", "cycles", "normalized", "note")
	for _, e := range s.Entries {
		tbl.AddRow(e.Name, fmt.Sprint(e.Cycles), fmt.Sprintf("%.3f", e.Normalized), e.Note)
	}
	if err := tbl.Write(w); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w)
	return err
}

// normalizeEntries fills Normalized relative to the first entry.
func normalizeEntries(entries []Entry) {
	if len(entries) == 0 || entries[0].Cycles == 0 {
		return
	}
	base := float64(entries[0].Cycles)
	for i := range entries {
		entries[i].Normalized = float64(entries[i].Cycles) / base
	}
}

// buildPlatform builds the spec and applies the sharded execution mode when
// Options.Shards asks for one.
func buildPlatform(spec platform.Spec, shards int) (*platform.Platform, error) {
	p, err := platform.Build(spec)
	if err != nil {
		return nil, err
	}
	if shards > 1 {
		if err := p.EnableSharding(shards); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// platformJob wraps one full-platform run as a runner job. A run that
// fails to drain within the budget is an error, not a panic: under the
// runner one crashed configuration must not kill its siblings. With a
// warm-start cache the job restores (or primes) the configuration's
// warm-up checkpoint instead of building fresh.
func platformJob(name string, spec platform.Spec, o Options) runner.Job[platform.Result] {
	return runner.Job[platform.Result]{Name: name, Run: func() (platform.Result, error) {
		// With a live hub the run publishes its position from the telemetry
		// collector's hook: a coarse cadence (16k central cycles) keeps the
		// per-snapshot cost invisible, and the tiny ring is never drained —
		// only the latest position matters for aggregation.
		var attach func(*platform.Platform)
		if o.Live != nil {
			jp := o.Live.Job(name, Budget)
			defer jp.Finish()
			attach = func(p *platform.Platform) {
				col := p.EnableTelemetry(16384, 16)
				col.SetPublish(jp.Publish)
				col.SetBudgetPS(Budget)
			}
		}
		var r platform.Result
		var err error
		if o.Cache != nil {
			r, err = o.Cache.run(spec, o.Shards, attach)
		} else {
			var p *platform.Platform
			if p, err = buildPlatform(spec, o.Shards); err == nil {
				if attach != nil {
					attach(p)
				}
				r = p.Run(Budget)
			}
		}
		if err != nil {
			return platform.Result{}, err
		}
		if !r.Done {
			return r, fmt.Errorf("%s did not drain within budget", spec.Name())
		}
		return r, nil
	}}
}

// cycleJob is platformJob reduced to the run's central-cycle count.
func cycleJob(name string, spec platform.Spec, o Options) runner.Job[int64] {
	inner := platformJob(name, spec, o)
	return runner.Job[int64]{Name: name, Run: func() (int64, error) {
		r, err := inner.Run()
		return r.CentralCycles, err
	}}
}

// singleLayerJob wraps one §4.1 single-layer bench run.
func singleLayerJob(name string, spec platform.SingleLayerSpec) runner.Job[int64] {
	return runner.Job[int64]{Name: name, Run: func() (int64, error) {
		sl, err := platform.BuildSingleLayer(spec)
		if err != nil {
			return 0, err
		}
		r := sl.Run(Budget)
		if !r.Done {
			return r.Cycles, fmt.Errorf("%s single-layer run did not drain", name)
		}
		return r.Cycles, nil
	}}
}

func baseSpec(o Options) platform.Spec {
	s := platform.DefaultSpec()
	s.WorkloadScale = o.Scale
	s.Seed = o.Seed
	return s
}

// Fig3 reproduces the paper's Fig.3: normalized execution time of platform
// instances with the on-chip shared memory (1 wait state).
func Fig3(o Options) (Series, error) {
	o.normalize()
	mk := func(name string, proto platform.Protocol, topo platform.Topology) runner.Job[int64] {
		s := baseSpec(o)
		s.Protocol, s.Topology, s.Memory = proto, topo, platform.OnChip
		return cycleJob(name, s, o)
	}
	jobs := []runner.Job[int64]{
		mk("collapsed AXI", platform.AXI, platform.Collapsed),
		mk("collapsed STBus", platform.STBus, platform.Collapsed),
		mk("full STBus", platform.STBus, platform.Distributed),
		mk("full AHB", platform.AHB, platform.Distributed),
		mk("full AXI", platform.AXI, platform.Distributed),
	}
	cycles, err := runner.Values(runner.Map(jobs, o.pool("fig3")))
	if err != nil {
		return Series{}, err
	}
	entries := []Entry{
		{Name: "collapsed AXI", Cycles: cycles[0]},
		{Name: "collapsed STBus", Cycles: cycles[1]},
		{Name: "full STBus", Cycles: cycles[2]},
		{Name: "full AHB", Cycles: cycles[3], Note: "blocking AHB-AHB bridges"},
		{Name: "full AXI", Cycles: cycles[4], Note: "lightweight AXI-AXI bridges"},
	}
	normalizeEntries(entries)
	return Series{
		Title: "Fig.3 — platform instances, on-chip shared memory (1 ws)",
		Caption: "Expected shape: collapsed AXI ~ collapsed STBus ~ full STBus;\n" +
			"full AHB clearly slower; full AXI ~ full AHB (lightweight bridges).",
		Entries: entries,
	}, nil
}

// Fig4Point is one memory-speed sample of the Fig.4 sweep.
type Fig4Point struct {
	WaitStates  int
	Distributed int64
	Collapsed   int64
	Ratio       float64
}

// Fig4Result is the distributed-vs-collapsed sweep.
type Fig4Result struct {
	Points []Fig4Point
}

// Fig4 reproduces the paper's Fig.4: distributed vs centralized performance
// as a function of memory speed, in the latency-sensitive regime (simple
// initiator interfaces, non-posted writes). A nil/empty waitStates selects
// the paper's 0..32 ladder; negative wait states are rejected.
func Fig4(o Options, waitStates []int) (Fig4Result, error) {
	o.normalize()
	if len(waitStates) == 0 {
		waitStates = []int{0, 1, 2, 4, 8, 16, 32}
	}
	var jobs []runner.Job[int64]
	for _, w := range waitStates {
		if w < 0 {
			return Fig4Result{}, fmt.Errorf("fig4: negative wait states %d", w)
		}
		for _, topo := range []platform.Topology{platform.Distributed, platform.Collapsed} {
			s := baseSpec(o)
			s.Protocol, s.Topology, s.Memory = platform.STBus, topo, platform.OnChip
			s.OnChipWaitStates = w
			s.OutstandingOverride = 1
			s.ForceNonPostedWrites = true
			jobs = append(jobs, cycleJob(fmt.Sprintf("%dws/%s", w, topo), s, o))
		}
	}
	cycles, err := runner.Values(runner.Map(jobs, o.pool("fig4")))
	if err != nil {
		return Fig4Result{}, err
	}
	var out Fig4Result
	for i, w := range waitStates {
		d, c := cycles[2*i], cycles[2*i+1]
		out.Points = append(out.Points, Fig4Point{
			WaitStates:  w,
			Distributed: d,
			Collapsed:   c,
			Ratio:       float64(d) / float64(c),
		})
	}
	return out, nil
}

// Write renders the sweep.
func (r Fig4Result) Write(w io.Writer) error {
	fmt.Fprintln(w, "== Fig.4 — distributed vs centralized vs memory speed ==")
	fmt.Fprintln(w, "Expected shape: the distributed/collapsed ratio starts above 1 (crossing")
	fmt.Fprintln(w, "latency exposed by a fast memory) and falls toward parity as the memory")
	fmt.Fprintln(w, "slows and outstanding transactions fill the multi-hop path.")
	fmt.Fprintln(w)
	tbl := stats.NewTable("wait_states", "distributed", "collapsed", "ratio")
	for _, p := range r.Points {
		tbl.AddRow(fmt.Sprint(p.WaitStates), fmt.Sprint(p.Distributed),
			fmt.Sprint(p.Collapsed), fmt.Sprintf("%.3f", p.Ratio))
	}
	if err := tbl.Write(w); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w)
	return err
}

// Fig5 reproduces the paper's Fig.5: platform instances with the LMI memory
// controller and off-chip DDR SDRAM.
func Fig5(o Options) (Series, error) {
	o.normalize()
	mk := func(name string, proto platform.Protocol, topo platform.Topology, split bool) runner.Job[int64] {
		s := baseSpec(o)
		s.Protocol, s.Topology, s.Memory = proto, topo, platform.LMIDDR
		s.SplitLMIBridge = split
		return cycleJob(name, s, o)
	}
	jobs := []runner.Job[int64]{
		mk("distributed STBus", platform.STBus, platform.Distributed, false),
		mk("collapsed STBus", platform.STBus, platform.Collapsed, false),
		mk("collapsed AXI", platform.AXI, platform.Collapsed, false),
		mk("distributed AXI", platform.AXI, platform.Distributed, false),
		mk("full AHB", platform.AHB, platform.Distributed, false),
	}
	cycles, err := runner.Values(runner.Map(jobs, o.pool("fig5")))
	if err != nil {
		return Series{}, err
	}
	entries := []Entry{
		{Name: "distributed STBus", Cycles: cycles[0], Note: "LMI native, GenConv bridges"},
		{Name: "collapsed STBus", Cycles: cycles[1], Note: "no bridge at LMI"},
		{Name: "collapsed AXI", Cycles: cycles[2], Note: "non-split LMI converter"},
		{Name: "distributed AXI", Cycles: cycles[3], Note: "lightweight bridges"},
		{Name: "full AHB", Cycles: cycles[4], Note: "non-split blocking bridges"},
	}
	normalizeEntries(entries)
	return Series{
		Title: "Fig.5 — platform instances with LMI memory controller + DDR",
		Caption: "Expected shape: collapsed STBus approaches distributed STBus; collapsed AXI\n" +
			"much worse (no split at the LMI); the STBus-AHB gap grows vs Fig.3.",
		Entries: entries,
	}, nil
}

// Fig6Report is the fine-grain LMI interface analysis.
type Fig6Report struct {
	// PhaseA and PhaseB summarize the two working regimes of the full
	// STBus platform (intense, then bursty).
	PhaseA, PhaseB lmi.WindowReport
	// AHB summarizes the full-AHB rerun over the whole lifetime.
	AHBFull      float64
	AHBNoRequest float64
	// Windows carries the raw per-window series of the STBus run.
	Windows []lmi.WindowReport
}

// Fig6 reproduces the paper's Fig.6: statistics taken at the bus interface
// of the LMI controller for the full STBus platform under a two-phase
// workload, plus the full-AHB rerun. The STBus run and the AHB rerun are
// independent and execute concurrently.
func Fig6(o Options) (Fig6Report, error) {
	o.normalize()
	s := baseSpec(o)
	s.Protocol, s.Topology, s.Memory = platform.STBus, platform.Distributed, platform.LMIDDR
	s.TwoPhase = true
	s.LMI.PhaseWindow = 2000

	sa := s
	sa.Protocol = platform.AHB

	results, err := runner.Values(runner.Map([]runner.Job[platform.Result]{
		platformJob("stbus two-phase", s, o),
		platformJob("ahb rerun", sa, o),
	}, o.pool("fig6")))
	if err != nil {
		return Fig6Report{}, err
	}
	m := results[0].Monitor
	total := m.Cycles()
	report := Fig6Report{
		PhaseA:  m.Phase(0, total/3),
		PhaseB:  m.Phase(2*total/3, total),
		Windows: m.Windows(),
	}
	report.AHBFull = results[1].Monitor.TotalFrac(lmi.StateFull)
	report.AHBNoRequest = results[1].Monitor.TotalFrac(lmi.StateNoRequest)
	return report, nil
}

// Write renders the Fig.6 report.
func (r Fig6Report) Write(w io.Writer) error {
	fmt.Fprintln(w, "== Fig.6 — LMI bus-interface statistics, full STBus platform ==")
	fmt.Fprintln(w, "Expected shape: phase A intense (FIFO often full, rarely empty); phase B")
	fmt.Fprintln(w, "similar full fraction but empty far more often (bursty, lower intensity).")
	fmt.Fprintln(w, "Paper's reference: full 47%, no-request 29%, storing 24% in phase A.")
	fmt.Fprintln(w)
	tbl := stats.NewTable("phase", "full", "storing", "norequest", "empty")
	row := func(name string, p lmi.WindowReport) {
		tbl.AddRow(name,
			fmt.Sprintf("%.1f%%", 100*p.FullFrac),
			fmt.Sprintf("%.1f%%", 100*p.StoringFrac),
			fmt.Sprintf("%.1f%%", 100*p.NoRequestFrac),
			fmt.Sprintf("%.1f%%", 100*p.EmptyFrac))
	}
	row("A (intense)", r.PhaseA)
	row("B (bursty)", r.PhaseB)
	if err := tbl.Write(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nfull AHB rerun: FIFO full %.1f%% of cycles, no incoming request %.1f%%\n",
		100*r.AHBFull, 100*r.AHBNoRequest)
	fmt.Fprintln(w, "(paper: never full, no-request 98% -> interconnect, not memory, is the bottleneck)")
	_, err := fmt.Fprintln(w)
	return err
}

// Sec411Point is one offered-load sample of the many-to-many study.
type Sec411Point struct {
	GapMean   float64
	STBus     int64
	AHB       int64
	AXI       int64
	STBusDeep int64 // STBus with deeper target buffering
}

// Sec411Result is the §4.1.1 study.
type Sec411Result struct {
	Points []Sec411Point
}

// sec411Spec builds the single-layer spec for one §4.1.1 run.
func sec411Spec(o Options, proto platform.Protocol, gap float64, respDepth int) platform.SingleLayerSpec {
	spec := platform.DefaultSingleLayerSpec(proto, 6)
	spec.GapMean = gap
	spec.Txns = int64(300 * o.Scale)
	if spec.Txns < 20 {
		spec.Txns = 20
	}
	spec.Seed = o.Seed
	if respDepth > 0 {
		spec.TargetRespDepth = respDepth
	}
	return spec
}

// Sec411 reproduces §4.1.1: single-layer, many slaves, execution time of the
// three protocols as the offered load rises (gap shrinks), plus STBus with
// deeper target buffering closing the AXI gap. A nil/empty gaps slice
// selects the default ladder; negative gaps are rejected.
func Sec411(o Options, gaps []float64) (Sec411Result, error) {
	o.normalize()
	if len(gaps) == 0 {
		gaps = []float64{8, 4, 2, 1, 0}
	}
	// Four runs per gap, flattened into one fan-out: [gap0 STBus, gap0
	// AHB, gap0 AXI, gap0 STBus-deep, gap1 STBus, ...].
	var jobs []runner.Job[int64]
	for _, gap := range gaps {
		if gap < 0 {
			return Sec411Result{}, fmt.Errorf("sec411: negative gap mean %.1f", gap)
		}
		jobs = append(jobs,
			singleLayerJob(fmt.Sprintf("gap%.0f/STBus", gap), sec411Spec(o, platform.STBus, gap, 0)),
			singleLayerJob(fmt.Sprintf("gap%.0f/AHB", gap), sec411Spec(o, platform.AHB, gap, 0)),
			singleLayerJob(fmt.Sprintf("gap%.0f/AXI", gap), sec411Spec(o, platform.AXI, gap, 0)),
			singleLayerJob(fmt.Sprintf("gap%.0f/STBus-deep", gap), sec411Spec(o, platform.STBus, gap, 8)),
		)
	}
	cycles, err := runner.Values(runner.Map(jobs, o.pool("sec411")))
	if err != nil {
		return Sec411Result{}, err
	}
	var out Sec411Result
	for i, gap := range gaps {
		out.Points = append(out.Points, Sec411Point{
			GapMean:   gap,
			STBus:     cycles[4*i],
			AHB:       cycles[4*i+1],
			AXI:       cycles[4*i+2],
			STBusDeep: cycles[4*i+3],
		})
	}
	return out, nil
}

// Write renders the study.
func (r Sec411Result) Write(w io.Writer) error {
	fmt.Fprintln(w, "== §4.1.1 — single layer, many-to-many traffic (6 masters x 6 slaves) ==")
	fmt.Fprintln(w, "Expected shape: STBus and AXI track each other and exploit slave")
	fmt.Fprintln(w, "parallelism; AHB serializes and falls behind as load rises; deeper STBus")
	fmt.Fprintln(w, "target buffering closes any residual gap to AXI.")
	fmt.Fprintln(w)
	tbl := stats.NewTable("gap", "STBus", "AHB", "AXI", "STBus(deep buf)")
	for _, p := range r.Points {
		tbl.AddRow(fmt.Sprintf("%.0f", p.GapMean), fmt.Sprint(p.STBus),
			fmt.Sprint(p.AHB), fmt.Sprint(p.AXI), fmt.Sprint(p.STBusDeep))
	}
	if err := tbl.Write(w); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w)
	return err
}

// Sec412 reproduces §4.1.2: single-layer, single slave (many-to-one): all
// protocols reach the 50%-efficiency bound set by the 1-wait-state memory.
func Sec412(o Options) (Series, error) {
	o.normalize()
	mk := func(name string, proto platform.Protocol) runner.Job[int64] {
		spec := platform.DefaultSingleLayerSpec(proto, 1)
		spec.Txns = int64(300 * o.Scale)
		if spec.Txns < 20 {
			spec.Txns = 20
		}
		spec.Seed = o.Seed
		return singleLayerJob(name, spec)
	}
	cycles, err := runner.Values(runner.Map([]runner.Job[int64]{
		mk("STBus", platform.STBus),
		mk("AHB", platform.AHB),
		mk("AXI", platform.AXI),
	}, o.pool("sec412")))
	if err != nil {
		return Series{}, err
	}
	entries := []Entry{
		{Name: "STBus", Cycles: cycles[0]},
		{Name: "AHB", Cycles: cycles[1], Note: "best operating condition for AHB"},
		{Name: "AXI", Cycles: cycles[2]},
	}
	normalizeEntries(entries)
	return Series{
		Title: "§4.1.2 — single layer, many-to-one traffic (6 masters x 1 slave)",
		Caption: "Expected shape: no significant differences — the 1-ws memory bounds the\n" +
			"response channel to 50% efficiency and every protocol hides the handover.",
		Entries: entries,
	}, nil
}
