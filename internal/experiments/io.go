package experiments

import (
	"fmt"
	"io"

	"mpsocsim/internal/attr"
	mpio "mpsocsim/internal/io"
	"mpsocsim/internal/platform"
	"mpsocsim/internal/runner"
	"mpsocsim/internal/stats"
)

// IORow is one IRQ device on one protocol in the deadline comparison:
// deadline accounting with the DMA burst storm off vs on. Service figures are
// in I/O-clock cycles (125 MHz, 8 ns each).
type IORow struct {
	Protocol   string
	Device     string
	Deadline   int64
	Events     int64
	MissedOff  int64
	MissedOn   int64
	MeanSvcOff float64
	MeanSvcOn  float64
	P90SvcOff  int64
	P90SvcOn   int64
}

// IOPhaseRow is one phase of the interrupt-service attribution breakdown:
// mean ns per IRQ transaction spent in the phase, storm off vs on, indexed
// like IOResult.Protocols.
type IOPhaseRow struct {
	Phase string
	OffNS []float64
	OnNS  []float64
}

// IOResult is the I/O deadline experiment: per-device deadline misses and
// per-phase attribution of the interrupt-service path, with and without a
// concurrent DMA burst storm, across all three protocols.
type IOResult struct {
	Protocols []string
	Rows      []IORow
	PhaseRows []IOPhaseRow
	// E2EOff/E2EOn are the end-to-end mean ns per IRQ transaction per
	// protocol; the phase rows sum to them (conservation).
	E2EOff []float64
	E2EOn  []float64
}

// ioRun is one platform run's reduction: the deadline table and the
// attribution snapshot.
type ioRun struct {
	deadlines []mpio.DeadlineStats
	attrib    *attr.Snapshot
}

// ioJob runs one I/O-enabled platform with attribution and reduces the result
// to its deadline table and attribution snapshot. Deadline-miss conservation
// (met + missed == serviced == raised) is asserted here so a bookkeeping bug
// fails the experiment instead of skewing the table.
func ioJob(name string, spec platform.Spec, shards int) runner.Job[ioRun] {
	return runner.Job[ioRun]{Name: name, Run: func() (ioRun, error) {
		p, err := platform.Build(spec)
		if err != nil {
			return ioRun{}, err
		}
		p.EnableAttribution(0)
		if shards > 1 {
			if err := p.EnableSharding(shards); err != nil {
				return ioRun{}, err
			}
		}
		r := p.Run(Budget)
		if !r.Done {
			return ioRun{}, fmt.Errorf("%s did not drain within budget", spec.Name())
		}
		for _, ds := range r.Deadlines {
			if ds.Met+ds.Missed != ds.Serviced || ds.Serviced != ds.Raised {
				return ioRun{}, fmt.Errorf("%s %s: deadline accounting broken (raised=%d serviced=%d met=%d missed=%d)",
					spec.Name(), ds.Device, ds.Raised, ds.Serviced, ds.Met, ds.Missed)
			}
		}
		return ioRun{deadlines: r.Deadlines, attrib: r.Attribution}, nil
	}}
}

// irqPhaseMeans reduces a snapshot to the mean per-transaction time per phase
// (ns) over the interrupt-service initiators only — the path whose deadlines
// the experiment tracks.
func irqPhaseMeans(s *attr.Snapshot, devices map[string]bool) (map[string]float64, float64) {
	var txns, e2e int64
	totals := map[string]int64{}
	for _, is := range s.Initiators {
		if !devices[is.Initiator] {
			continue
		}
		txns += is.Transactions
		e2e += is.TotalPS
		for _, ph := range is.Phases {
			totals[ph.Phase] += ph.TotalPS
		}
	}
	means := make(map[string]float64, len(totals))
	if txns == 0 {
		return means, 0
	}
	for ph, total := range totals {
		means[ph] = float64(total) / float64(txns) / 1e3
	}
	return means, float64(e2e) / float64(txns) / 1e3
}

// IODeadlines runs the I/O deadline experiment: on each protocol's
// distributed LMI platform, interrupt-driven device agents service periodic
// events against a deadline, first with the DMA engine disabled (storm off)
// and then with its descriptor-chain burst storm competing for the same
// SDRAM (storm on). The deadline table shows how many events each device
// misses under the storm per fabric; the attribution table localizes the
// damage — which phase of the interrupt-service path (arbitration, bridge,
// LMI queue, SDRAM) absorbed the stolen bandwidth.
func IODeadlines(o Options) (IOResult, error) {
	o.normalize()
	protos := []struct {
		name  string
		proto platform.Protocol
	}{
		{"STBus", platform.STBus},
		{"AHB", platform.AHB},
		{"AXI", platform.AXI},
	}
	mk := func(proto platform.Protocol, storm bool) runner.Job[ioRun] {
		s := baseSpec(o)
		s.Protocol, s.Topology, s.Memory = proto, platform.Distributed, platform.LMIDDR
		s.IO.Enable = true
		if !storm {
			s.IO.DMADescriptors = -1 // storm off: devices + allocator only
		}
		label := "off"
		if storm {
			label = "storm"
		}
		return ioJob(fmt.Sprintf("%s/%s", proto, label), s, o.Shards)
	}
	var jobs []runner.Job[ioRun]
	for _, pr := range protos {
		jobs = append(jobs, mk(pr.proto, false), mk(pr.proto, true))
	}
	runs, err := runner.Values(runner.Map(jobs, o.pool("io")))
	if err != nil {
		return IOResult{}, err
	}

	out := IOResult{}
	devices := map[string]bool{}
	offMeans := make([]map[string]float64, len(protos))
	onMeans := make([]map[string]float64, len(protos))
	for i, pr := range protos {
		off, on := runs[2*i], runs[2*i+1]
		out.Protocols = append(out.Protocols, pr.name)
		if len(off.deadlines) != len(on.deadlines) {
			return IOResult{}, fmt.Errorf("%s: device count differs between storm-off (%d) and storm-on (%d)",
				pr.name, len(off.deadlines), len(on.deadlines))
		}
		for j, ds := range on.deadlines {
			base := off.deadlines[j]
			devices[ds.Device] = true
			out.Rows = append(out.Rows, IORow{
				Protocol:   pr.name,
				Device:     ds.Device,
				Deadline:   ds.DeadlineCycles,
				Events:     ds.Raised,
				MissedOff:  base.Missed,
				MissedOn:   ds.Missed,
				MeanSvcOff: base.MeanSvcCycles,
				MeanSvcOn:  ds.MeanSvcCycles,
				P90SvcOff:  base.P90SvcCycles,
				P90SvcOn:   ds.P90SvcCycles,
			})
		}
		var offE2E, onE2E float64
		offMeans[i], offE2E = irqPhaseMeans(off.attrib, devices)
		onMeans[i], onE2E = irqPhaseMeans(on.attrib, devices)
		out.E2EOff = append(out.E2EOff, offE2E)
		out.E2EOn = append(out.E2EOn, onE2E)
	}
	for _, ph := range attr.PhaseNames() {
		row := IOPhaseRow{Phase: ph}
		any := false
		for i := range protos {
			off, on := offMeans[i][ph], onMeans[i][ph]
			row.OffNS = append(row.OffNS, off)
			row.OnNS = append(row.OnNS, on)
			any = any || off > 0 || on > 0
		}
		if any {
			out.PhaseRows = append(out.PhaseRows, row)
		}
	}
	return out, nil
}

// Write renders the deadline and attribution tables.
func (r IOResult) Write(w io.Writer) error {
	fmt.Fprintln(w, "== I/O deadlines under a DMA burst storm ==")
	fmt.Fprintln(w, "Interrupt-driven devices service periodic events against a deadline (I/O")
	fmt.Fprintln(w, "cycles, 125 MHz) while a descriptor-chain DMA engine floods the same LMI/SDRAM")
	fmt.Fprintln(w, "with bursts. Expected shape: the storm widens the service tail everywhere,")
	fmt.Fprintln(w, "but how many deadlines die depends on the fabric — message-granularity")
	fmt.Fprintln(w, "arbitration keeps the interrupt path's short bursts from being starved by")
	fmt.Fprintln(w, "the storm's long ones.")
	fmt.Fprintln(w)
	dtbl := stats.NewTable("protocol", "device", "deadline", "events",
		"miss_off", "miss_storm", "d_miss", "svc_off", "svc_storm", "p90_off", "p90_storm")
	for _, row := range r.Rows {
		dtbl.AddRow(row.Protocol, row.Device,
			fmt.Sprint(row.Deadline), fmt.Sprint(row.Events),
			fmt.Sprint(row.MissedOff), fmt.Sprint(row.MissedOn),
			fmt.Sprintf("%+d", row.MissedOn-row.MissedOff),
			fmt.Sprintf("%.1f", row.MeanSvcOff), fmt.Sprintf("%.1f", row.MeanSvcOn),
			fmt.Sprint(row.P90SvcOff), fmt.Sprint(row.P90SvcOn))
	}
	if err := dtbl.Write(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Interrupt-service attribution: mean ns per IRQ transaction per phase,")
	fmt.Fprintln(w, "storm off vs on. The d_ columns localize each fabric's missed deadlines to")
	fmt.Fprintln(w, "the phase that absorbed the storm.")
	fmt.Fprintln(w)
	cols := []string{"phase"}
	for _, p := range r.Protocols {
		cols = append(cols, p+"_off", "d_"+p)
	}
	ptbl := stats.NewTable(cols...)
	addRow := func(name string, off, on []float64) {
		row := []string{name}
		for i := range off {
			row = append(row, fmt.Sprintf("%.1f", off[i]), fmt.Sprintf("%+.1f", on[i]-off[i]))
		}
		ptbl.AddRow(row...)
	}
	for _, pr := range r.PhaseRows {
		addRow(pr.Phase, pr.OffNS, pr.OnNS)
	}
	addRow("end_to_end", r.E2EOff, r.E2EOn)
	if err := ptbl.Write(w); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w)
	return err
}
