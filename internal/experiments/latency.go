package experiments

import (
	"fmt"
	"io"

	"mpsocsim/internal/platform"
	"mpsocsim/internal/runner"
	"mpsocsim/internal/stats"
)

// LatencyReport decomposes end-to-end transaction latency on the reference
// platform: per-IP end-to-end figures, per-bridge residency (the time each
// transaction spends between bridge acceptance and its last upstream
// response) and the memory-subsystem utilization — the bottleneck-location
// analysis the paper's §5 performs by monitoring the LMI interface.
type LatencyReport struct {
	Result platform.Result
}

// Latency runs the reference platform and collects the decomposition. The
// single run still goes through the runner for its panic capture.
func Latency(o Options) (LatencyReport, error) {
	o.normalize()
	s := baseSpec(o)
	s.Protocol, s.Topology, s.Memory = platform.STBus, platform.Distributed, platform.LMIDDR
	r, err := runner.First(runner.Map([]runner.Job[platform.Result]{
		platformJob("reference platform", s, o),
	}, o.pool("latency")))
	if err != nil {
		return LatencyReport{}, err
	}
	return LatencyReport{Result: r}, nil
}

// Write renders the report.
func (r LatencyReport) Write(w io.Writer) error {
	fmt.Fprintln(w, "== Latency decomposition — full STBus platform, LMI + DDR ==")
	fmt.Fprintln(w, "End-to-end latency per IP agent (initiator-clock cycles), then each")
	fmt.Fprintln(w, "bridge's residency share (acceptance to last upstream response).")
	fmt.Fprintln(w)
	tbl := stats.NewTable("ip/agent", "completed", "mean_lat", "p90_lat", "max_lat")
	for _, name := range stats.SortedKeys(r.Result.IPs) {
		for _, a := range r.Result.IPs[name] {
			if a.Completed == 0 || a.MeanLatency == 0 {
				continue // posted-write-only agents have no response latency
			}
			tbl.AddRow(name+"/"+a.Name, fmt.Sprint(a.Completed),
				fmt.Sprintf("%.1f", a.MeanLatency), fmt.Sprint(a.P90Latency), fmt.Sprint(a.MaxLatency))
		}
	}
	if err := tbl.Write(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	btbl := stats.NewTable("bridge", "accepted", "mean_res", "p90_res", "blocked_cycles")
	for _, name := range stats.SortedKeys(r.Result.Bridges) {
		b := r.Result.Bridges[name]
		btbl.AddRow(name, fmt.Sprint(b.Accepted), fmt.Sprintf("%.1f", b.MeanResidency),
			fmt.Sprint(b.P90Residency), fmt.Sprint(b.BlockedCycles))
	}
	if err := btbl.Write(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nmemory subsystem utilization: %.1f%%  (LMI served=%d, row-hit=%.1f%%)\n\n",
		100*r.Result.MemUtilization, r.Result.LMI.Served, 100*r.Result.LMI.SDRAM.HitRate())
	return nil
}
