package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestIODeadlinesShapeAndRendering(t *testing.T) {
	r, err := IODeadlines(small)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(r.Protocols), 3; got != want {
		t.Fatalf("protocols = %d, want %d", got, want)
	}
	// Two IRQ devices per protocol.
	if got, want := len(r.Rows), 6; got != want {
		t.Fatalf("deadline rows = %d, want %d", got, want)
	}
	for _, row := range r.Rows {
		if row.Events <= 0 {
			t.Errorf("%s/%s: no events", row.Protocol, row.Device)
		}
		if row.MissedOff < 0 || row.MissedOff > row.Events || row.MissedOn < 0 || row.MissedOn > row.Events {
			t.Errorf("%s/%s: miss counts out of range (off=%d on=%d events=%d)",
				row.Protocol, row.Device, row.MissedOff, row.MissedOn, row.Events)
		}
		if row.MeanSvcOff <= 0 || row.MeanSvcOn <= 0 {
			t.Errorf("%s/%s: non-positive mean service latency", row.Protocol, row.Device)
		}
	}
	if len(r.PhaseRows) == 0 {
		t.Fatal("no phase rows")
	}
	// Conservation: per protocol and regime, phase means sum to the
	// end-to-end mean.
	for i, proto := range r.Protocols {
		var offSum, onSum float64
		for _, pr := range r.PhaseRows {
			offSum += pr.OffNS[i]
			onSum += pr.OnNS[i]
		}
		if math.Abs(offSum-r.E2EOff[i]) > 1e-6*r.E2EOff[i] {
			t.Errorf("%s off: phases sum to %.3f, e2e %.3f", proto, offSum, r.E2EOff[i])
		}
		if math.Abs(onSum-r.E2EOn[i]) > 1e-6*r.E2EOn[i] {
			t.Errorf("%s storm: phases sum to %.3f, e2e %.3f", proto, onSum, r.E2EOn[i])
		}
		// Shape: stealing LMI bandwidth cannot speed the interrupt path up.
		if r.E2EOn[i] < r.E2EOff[i] {
			t.Errorf("%s: storm-on e2e %.1f ns beats storm-off %.1f ns", proto, r.E2EOn[i], r.E2EOff[i])
		}
	}
	var sb strings.Builder
	if err := r.Write(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"protocol", "miss_storm", "d_miss", "p90_storm", "STBus_off", "d_AXI", "end_to_end"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered tables missing %q", want)
		}
	}
}

// TestIODeadlinesDeterministic pins that the experiment's rendered output is
// byte-identical across regenerations (the property the paper-table
// comparisons rely on), including under the parallel runner.
func TestIODeadlinesDeterministic(t *testing.T) {
	render := func(workers int) []byte {
		o := small
		o.Workers = workers
		r, err := IODeadlines(o)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := r.Write(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := render(1)
	if !bytes.Equal(serial, render(1)) {
		t.Fatal("two serial regenerations differ")
	}
	if !bytes.Equal(serial, render(4)) {
		t.Fatal("parallel regeneration differs from serial")
	}
}
