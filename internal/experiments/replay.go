package experiments

import (
	"fmt"
	"io"

	"mpsocsim/internal/platform"
	"mpsocsim/internal/runner"
	"mpsocsim/internal/stats"
	"mpsocsim/internal/tracecap"
)

// ReplayVariant is one fabric measured under the captured stimulus.
type ReplayVariant struct {
	Name   string
	Cycles int64
	// Normalized is Cycles relative to the capturing run.
	Normalized float64
	// MeanLat maps initiator name to the mean end-to-end latency the
	// replayed transactions saw on this fabric.
	MeanLat map[string]float64
	P90Lat  map[string]int64
}

// ReplayResult is the cross-fabric replay comparison: one capture baseline
// and its replays.
type ReplayResult struct {
	// BaseCycles is the capturing STBus run's cycle count; BaseEvents the
	// captured transaction count.
	BaseCycles int64
	BaseEvents int64
	// Initiators lists the captured initiator names in platform order.
	Initiators []string
	// BaseMean/BaseP90 are the per-initiator latency baselines recorded
	// in the trace itself.
	BaseMean map[string]float64
	BaseP90  map[string]int64
	Variants []ReplayVariant
}

// CrossFabricReplay captures the reference STBus platform's stimulus once,
// then replays it bit-identically (timed mode) against the same platform and
// the AHB and AXI variants — the paper's cross-fabric comparison under truly
// identical traffic rather than statistically regenerated traffic. The STBus
// replay doubles as a self-check: it must reproduce the capturing run's
// cycle count exactly.
func CrossFabricReplay(o Options) (ReplayResult, error) {
	o.normalize()
	base := baseSpec(o)

	// Capture run: one serial run with probes attached; the replays fan
	// out afterwards (they all consume the same trace).
	p, err := platform.Build(base)
	if err != nil {
		return ReplayResult{}, err
	}
	capture := tracecap.NewCapture(base.Name(), 0)
	p.AttachCapture(capture)
	if o.Shards > 1 {
		if err := p.EnableSharding(o.Shards); err != nil {
			return ReplayResult{}, err
		}
	}
	r := p.Run(Budget)
	if !r.Done {
		return ReplayResult{}, fmt.Errorf("capture run on %s did not drain within budget", base.Name())
	}
	tr := capture.Trace()

	out := ReplayResult{
		BaseCycles: r.CentralCycles,
		BaseEvents: tr.Events(),
		BaseMean:   map[string]float64{},
		BaseP90:    map[string]int64{},
	}
	for _, s := range tr.Streams {
		out.Initiators = append(out.Initiators, s.Name)
		h := s.LatencyHistogram()
		out.BaseMean[s.Name] = h.Mean()
		out.BaseP90[s.Name] = h.Quantile(0.9)
	}

	variants := []struct {
		name  string
		proto platform.Protocol
	}{
		{"replay STBus (control)", platform.STBus},
		{"replay AHB", platform.AHB},
		{"replay AXI", platform.AXI},
	}
	var jobs []runner.Job[platform.Result]
	for _, v := range variants {
		s := base
		s.Protocol = v.proto
		s.Replay = tr
		jobs = append(jobs, platformJob(v.name, s, o))
	}
	results, err := runner.Values(runner.Map(jobs, o.pool("replay")))
	if err != nil {
		return ReplayResult{}, err
	}
	for i, v := range variants {
		rv := ReplayVariant{
			Name:       v.name,
			Cycles:     results[i].CentralCycles,
			Normalized: float64(results[i].CentralCycles) / float64(out.BaseCycles),
			MeanLat:    map[string]float64{},
			P90Lat:     map[string]int64{},
		}
		for name, agents := range results[i].IPs {
			for _, a := range agents {
				rv.MeanLat[name] = a.MeanLatency
				rv.P90Lat[name] = a.P90Latency
			}
		}
		out.Variants = append(out.Variants, rv)
	}
	return out, nil
}

// Write renders the comparison: the per-variant cycle counts and the
// per-initiator latency deltas under identical stimulus.
func (r ReplayResult) Write(w io.Writer) error {
	fmt.Fprintln(w, "== Cross-fabric replay — recorded STBus stimulus on every fabric ==")
	fmt.Fprintf(w, "Captured %d transactions from the reference STBus platform (%d central\n", r.BaseEvents, r.BaseCycles)
	fmt.Fprintln(w, "cycles), then re-drove them in timed mode. The STBus replay is the control:")
	fmt.Fprintln(w, "normalized 1.000 proves the replay loop reproduces the capture exactly; the")
	fmt.Fprintln(w, "AHB/AXI columns show what the same transactions cost on the other fabrics.")
	fmt.Fprintln(w)
	ctbl := stats.NewTable("variant", "cycles", "normalized")
	for _, v := range r.Variants {
		ctbl.AddRow(v.Name, fmt.Sprint(v.Cycles), fmt.Sprintf("%.3f", v.Normalized))
	}
	if err := ctbl.Write(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	tbl := stats.NewTable("initiator", "base_mean", "base_p90", "stbus_mean", "ahb_mean", "axi_mean", "ahb_delta", "axi_delta")
	for _, name := range r.Initiators {
		base := r.BaseMean[name]
		delta := func(v float64) string {
			if base == 0 {
				return "-"
			}
			return fmt.Sprintf("%+.1f%%", 100*(v-base)/base)
		}
		tbl.AddRow(name,
			fmt.Sprintf("%.1f", base),
			fmt.Sprint(r.BaseP90[name]),
			fmt.Sprintf("%.1f", r.Variants[0].MeanLat[name]),
			fmt.Sprintf("%.1f", r.Variants[1].MeanLat[name]),
			fmt.Sprintf("%.1f", r.Variants[2].MeanLat[name]),
			delta(r.Variants[1].MeanLat[name]),
			delta(r.Variants[2].MeanLat[name]))
	}
	if err := tbl.Write(w); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w)
	return err
}
