package experiments

import (
	"strings"
	"testing"
)

func TestCrossFabricReplayShapeAndRendering(t *testing.T) {
	r, err := CrossFabricReplay(small)
	if err != nil {
		t.Fatal(err)
	}
	if r.BaseCycles <= 0 || r.BaseEvents <= 0 {
		t.Fatalf("degenerate baseline: %+v", r)
	}
	if len(r.Variants) != 3 {
		t.Fatalf("variants = %d", len(r.Variants))
	}
	if len(r.Initiators) == 0 {
		t.Fatal("no captured initiators")
	}
	// The STBus replay is the experiment's self-check: identical stimulus on
	// the capturing platform must reproduce the capturing run exactly.
	control := r.Variants[0]
	if control.Cycles != r.BaseCycles || control.Normalized != 1.0 {
		t.Fatalf("STBus control replay diverged from capture: %d vs %d cycles",
			control.Cycles, r.BaseCycles)
	}
	// AHB under identical traffic should still clearly trail STBus.
	if r.Variants[1].Normalized < 1.05 {
		t.Errorf("AHB replay normalized %.3f; expected a clear slowdown", r.Variants[1].Normalized)
	}
	for _, v := range r.Variants {
		for _, name := range r.Initiators {
			if _, ok := v.MeanLat[name]; !ok {
				t.Errorf("%s missing latency for initiator %q", v.Name, name)
			}
		}
	}
	var sb strings.Builder
	if err := r.Write(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Cross-fabric replay", "replay STBus (control)", "replay AHB", "ahb_delta"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}
