package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// warmOpts is a small but non-trivial configuration: big enough that every
// fig5 run crosses the warm-up prefix, small enough to regenerate the figure
// three times in a test.
func warmOpts(t *testing.T, prefix int64) Options {
	t.Helper()
	cache, err := NewSnapCache(t.TempDir(), prefix)
	if err != nil {
		t.Fatal(err)
	}
	return Options{Scale: 0.2, Seed: 1, Workers: 2, Cache: cache}
}

func renderFig5(t *testing.T, o Options) string {
	t.Helper()
	r, err := Fig5(o)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestWarmStartFig5ByteIdentical pins the warm-start contract end to end:
// the fig5 table regenerated cold (priming the cache), warm (restoring it)
// and with no cache at all must be byte-identical, and the hit/miss
// counters must show the cache actually carried the warm run.
func TestWarmStartFig5ByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates fig5 three times")
	}
	o := warmOpts(t, 2000)
	plain := renderFig5(t, Options{Scale: o.Scale, Seed: o.Seed, Workers: o.Workers})
	cold := renderFig5(t, o)
	if h, m := o.Cache.Hits(), o.Cache.Misses(); h != 0 || m != 5 {
		t.Fatalf("cold pass: hits=%d misses=%d, want 0/5", h, m)
	}
	warm := renderFig5(t, o)
	if h, m := o.Cache.Hits(), o.Cache.Misses(); h != 5 || m != 5 {
		t.Fatalf("after warm pass: hits=%d misses=%d, want 5/5", h, m)
	}
	if cold != plain {
		t.Errorf("cold cached output differs from uncached output:\n--- uncached ---\n%s\n--- cold ---\n%s", plain, cold)
	}
	if warm != cold {
		t.Errorf("warm output differs from cold output:\n--- cold ---\n%s\n--- warm ---\n%s", cold, warm)
	}
}

// TestWarmStartShardedByteIdentical checks the cache composes with the
// sharded execution mode: a warm restore followed by EnableSharding must
// still reproduce the serial table.
func TestWarmStartShardedByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates fig5 twice")
	}
	o := warmOpts(t, 2000)
	cold := renderFig5(t, o)
	o.Shards = 2
	warm := renderFig5(t, o)
	if h := o.Cache.Hits(); h != 5 {
		t.Fatalf("warm sharded pass: hits=%d, want 5", h)
	}
	if warm != cold {
		t.Errorf("sharded warm output differs from serial cold output:\n--- cold ---\n%s\n--- warm ---\n%s", cold, warm)
	}
}

// TestWarmStartCorruptEntryFallsBack pins the resilience path: a truncated
// or garbage cache entry is dropped and the run completes cold, re-priming
// the entry.
func TestWarmStartCorruptEntryFallsBack(t *testing.T) {
	if testing.Short() {
		t.Skip("full-platform runs")
	}
	o := warmOpts(t, 2000)
	cold := renderFig5(t, o)
	ents, err := os.ReadDir(o.Cache.dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 5 {
		t.Fatalf("cache holds %d entries, want 5", len(ents))
	}
	for _, ent := range ents {
		if err := os.WriteFile(filepath.Join(o.Cache.dir, ent.Name()), []byte("not a snapshot"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	warm := renderFig5(t, o)
	if h, m := o.Cache.Hits(), o.Cache.Misses(); h != 0 || m != 10 {
		t.Fatalf("corrupt entries must all miss: hits=%d misses=%d, want 0/10", h, m)
	}
	if warm != cold {
		t.Errorf("post-corruption output differs:\n--- cold ---\n%s\n--- rerun ---\n%s", cold, warm)
	}
	// The rerun must have re-primed valid entries: a third pass hits.
	renderFig5(t, o)
	if h := o.Cache.Hits(); h != 5 {
		t.Fatalf("re-primed pass: hits=%d, want 5", h)
	}
}

// TestWarmStartPrefixPastDrain checks a prefix longer than the whole run:
// the job completes during the warm-up, never caches, and still returns the
// correct result.
func TestWarmStartPrefixPastDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("full-platform runs")
	}
	o := warmOpts(t, 1<<40)
	plain := renderFig5(t, Options{Scale: o.Scale, Seed: o.Seed, Workers: o.Workers})
	cold := renderFig5(t, o)
	if cold != plain {
		t.Errorf("over-long prefix changed the output:\n--- plain ---\n%s\n--- cached ---\n%s", plain, cold)
	}
	ents, err := os.ReadDir(o.Cache.dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("drained-before-prefix runs must not cache, found %d entries", len(ents))
	}
}
