package experiments

import (
	"fmt"
	"io"

	"mpsocsim/internal/diff"
	mpio "mpsocsim/internal/io"
	"mpsocsim/internal/platform"
	"mpsocsim/internal/runner"
	"mpsocsim/internal/stats"
)

// BisectRow compares one IRQ device's deadline accounting between the two
// bisected variants over their full runs.
type BisectRow struct {
	Device   string
	Deadline int64
	MissedA  int64
	MissedB  int64
	P90A     int64
	P90B     int64
}

// BisectReport is the divergence-localization scenario: the STBus and AHB
// distributed-LMI platforms under the §17 DMA burst storm end the run with
// different deadline-miss totals, and the snapshot bisection pins the exact
// first central-clock cycle where the two executions stopped being
// indistinguishable — turning "AHB misses more deadlines" into "they part
// ways at cycle N, and here is the state that differs there".
type BisectReport struct {
	A, B      string
	Deadlines []BisectRow
	Result    *diff.BisectResult
}

// Bisect runs the divergence-localization experiment. The full variant runs
// honor o.Shards (reports are bit-identical to serial by the §15 contract);
// the localization probes themselves are serial per variant — the
// Snapshot/RunToCycle contract — with the two variants advancing in
// parallel.
func Bisect(o Options) (BisectReport, error) {
	o.normalize()
	sa := baseSpec(o)
	sa.Protocol, sa.Topology, sa.Memory = platform.STBus, platform.Distributed, platform.LMIDDR
	sa.IO.Enable = true
	sb := sa
	sb.Protocol = platform.AHB

	job := func(name string, spec platform.Spec) runner.Job[[]mpio.DeadlineStats] {
		return runner.Job[[]mpio.DeadlineStats]{Name: name, Run: func() ([]mpio.DeadlineStats, error) {
			p, err := platform.Build(spec)
			if err != nil {
				return nil, err
			}
			if o.Shards > 1 {
				if err := p.EnableSharding(o.Shards); err != nil {
					return nil, err
				}
			}
			r := p.Run(Budget)
			if !r.Done {
				return nil, fmt.Errorf("%s did not drain within budget", spec.Name())
			}
			return r.Deadlines, nil
		}}
	}
	runs, err := runner.Values(runner.Map([]runner.Job[[]mpio.DeadlineStats]{
		job("stbus/storm", sa), job("ahb/storm", sb),
	}, o.pool("bisect")))
	if err != nil {
		return BisectReport{}, err
	}

	out := BisectReport{A: sa.Name(), B: sb.Name()}
	db := map[string]mpio.DeadlineStats{}
	for _, ds := range runs[1] {
		db[ds.Device] = ds
	}
	for _, ds := range runs[0] {
		bds, ok := db[ds.Device]
		if !ok {
			return BisectReport{}, fmt.Errorf("device %s missing from variant B", ds.Device)
		}
		out.Deadlines = append(out.Deadlines, BisectRow{
			Device: ds.Device, Deadline: ds.DeadlineCycles,
			MissedA: ds.Missed, MissedB: bds.Missed,
			P90A: ds.P90SvcCycles, P90B: bds.P90SvcCycles,
		})
	}

	res, err := diff.Bisect(sa, sb, diff.BisectOptions{
		BudgetPS: Budget, GridEvery: 1024, Workers: o.Workers,
	})
	if err != nil {
		return BisectReport{}, err
	}
	out.Result = res
	return out, nil
}

// Write renders the bisection experiment: the end-of-run deadline
// comparison, the localized divergence cycle, and the forensics deltas at
// that instant.
func (r BisectReport) Write(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== Divergence bisection: %s vs %s ==\n", r.A, r.B); err != nil {
		return err
	}
	fmt.Fprintln(w, "Per-device deadline accounting over the full runs (service figures in I/O cycles):")
	tbl := stats.NewTable("device", "deadline", "miss_a", "miss_b", "p90_a", "p90_b")
	for _, row := range r.Deadlines {
		tbl.AddRow(row.Device, fmt.Sprint(row.Deadline),
			fmt.Sprint(row.MissedA), fmt.Sprint(row.MissedB),
			fmt.Sprint(row.P90A), fmt.Sprint(row.P90B))
	}
	if err := tbl.Write(w); err != nil {
		return err
	}

	res := r.Result
	if res.DivergedAt < 0 {
		_, err := fmt.Fprintf(w, "\nno divergence found (states agreed through cycle %d)\n", res.AgreeCycle)
		return err
	}
	fmt.Fprintf(w, "\nfirst divergent central-clock cycle: %d (agree at %d; %d shared counters, %d shared gauges; %d grid points + %d bisect steps)\n",
		res.DivergedAt, res.AgreeCycle, res.SharedCounters, res.SharedGauges, res.GridPoints, res.Steps)

	if len(res.FirstCounters) > 0 {
		fmt.Fprintln(w, "\ncounters that first disagree (top 10 by relative delta):")
		ctbl := stats.NewTable("counter", "a", "b", "delta")
		for i, d := range res.FirstCounters {
			if i == 10 {
				break
			}
			ctbl.AddRow(d.Name, fmt.Sprint(d.A), fmt.Sprint(d.B), fmt.Sprintf("%+d", d.Delta))
		}
		if err := ctbl.Write(w); err != nil {
			return err
		}
	}
	if len(res.Fifos) > 0 {
		fmt.Fprintln(w, "\nFIFO occupancy deltas at the divergence instant:")
		ftbl := stats.NewTable("fifo", "len_a", "len_b", "depth")
		for _, f := range res.Fifos {
			ftbl.AddRow(f.Name, fmt.Sprint(f.LenA), fmt.Sprint(f.LenB), fmt.Sprint(f.Depth))
		}
		if err := ftbl.Write(w); err != nil {
			return err
		}
	}
	if len(res.Initiators) > 0 {
		fmt.Fprintln(w, "\nper-initiator deltas at the divergence instant:")
		itbl := stats.NewTable("initiator", "inflight_a", "inflight_b", "issued_a", "issued_b", "oldest_a_ns", "oldest_b_ns")
		for _, h := range res.Initiators {
			itbl.AddRow(h.Name,
				fmt.Sprint(h.InFlightA), fmt.Sprint(h.InFlightB),
				fmt.Sprint(h.IssuedA), fmt.Sprint(h.IssuedB),
				fmt.Sprintf("%.1f", float64(h.OldestAgeAPS)/1e3),
				fmt.Sprintf("%.1f", float64(h.OldestAgeBPS)/1e3))
		}
		if err := itbl.Write(w); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}
