package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestBisectLocalizesStormDivergence(t *testing.T) {
	r, err := Bisect(small)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Deadlines) == 0 {
		t.Fatal("no deadline rows")
	}
	res := r.Result
	if res == nil || res.DivergedAt <= 0 {
		t.Fatalf("divergence not localized: %+v", res)
	}
	if res.AgreeCycle != res.DivergedAt-1 {
		t.Fatalf("agree_cycle = %d, diverged_at = %d", res.AgreeCycle, res.DivergedAt)
	}
	if res.SharedCounters == 0 || res.SharedGauges == 0 {
		t.Fatalf("cross-fabric comparison found no shared instruments")
	}
	if len(res.FirstCounters) == 0 && len(res.FirstGauges) == 0 {
		t.Fatalf("no diverging instruments at cycle %d", res.DivergedAt)
	}

	var buf bytes.Buffer
	if err := r.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Divergence bisection", "miss_a", "miss_b", "first divergent central-clock cycle"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered report missing %q", want)
		}
	}
}

// TestBisectDeterministicAcrossShards pins the acceptance criterion: the
// experiment's rendered output — deadline tables from the full runs AND the
// localized divergence cycle — must be byte-identical between serial
// execution and -shards 2, across repeated regenerations.
func TestBisectDeterministicAcrossShards(t *testing.T) {
	render := func(shards int) []byte {
		o := small
		o.Shards = shards
		r, err := Bisect(o)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := r.Write(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := render(1)
	if !bytes.Equal(serial, render(1)) {
		t.Fatal("two serial regenerations differ")
	}
	if !bytes.Equal(serial, render(2)) {
		t.Fatal("sharded regeneration differs from serial")
	}
}
