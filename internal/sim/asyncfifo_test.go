package sim

import "testing"

// buildCDC creates writer/reader clocks and an async FIFO between them.
func buildCDC(t *testing.T, wMHz, rMHz float64, sync int) (*Kernel, *Clock, *Clock, *AsyncFifo[int]) {
	t.Helper()
	k := NewKernel()
	w := k.NewClock("w", wMHz)
	r := k.NewClock("r", rMHz)
	f := NewAsyncFifo[int]("cdc", 8, sync, r)
	return k, w, r, f
}

func TestAsyncFifoSyncLatency(t *testing.T) {
	k, w, r, f := buildCDC(t, 100, 100, 2)
	var popped []int
	var pushCycle, popCycle int64 = -1, -1

	w.Register(&ClockedFunc{
		OnEval: func() {
			if w.Cycles() == 0 && f.CanPush() {
				f.Push(42)
				pushCycle = w.Cycles()
			}
		},
		OnUpdate: f.WriterUpdate,
	})
	r.Register(&ClockedFunc{
		OnEval: func() {
			if f.CanPop() && popCycle < 0 {
				popped = append(popped, f.Pop())
				popCycle = r.Cycles()
			}
		},
		OnUpdate: f.ReaderUpdate,
	})
	k.RunCycles(r, 10)
	if len(popped) != 1 || popped[0] != 42 {
		t.Fatalf("popped %v, want [42]", popped)
	}
	if popCycle-pushCycle < 2 {
		t.Fatalf("pop at reader cycle %d, push at writer cycle %d: sync latency < 2", popCycle, pushCycle)
	}
}

func TestAsyncFifoZeroSyncStillOneCycle(t *testing.T) {
	// Even with syncCycles=0, two-phase commit means the entry is visible
	// no earlier than the reader edge after the writer commit.
	k, w, r, f := buildCDC(t, 100, 100, 0)
	seen := int64(-1)
	w.Register(&ClockedFunc{
		OnEval: func() {
			if w.Cycles() == 0 {
				f.Push(7)
			}
		},
		OnUpdate: f.WriterUpdate,
	})
	r.Register(&ClockedFunc{
		OnEval: func() {
			if f.CanPop() && seen < 0 {
				f.Pop()
				seen = r.Cycles()
			}
		},
		OnUpdate: f.ReaderUpdate,
	})
	k.RunCycles(r, 5)
	if seen < 1 {
		t.Fatalf("entry visible at reader cycle %d, want >= 1", seen)
	}
}

func TestAsyncFifoCrossFrequency(t *testing.T) {
	// Fast writer (400 MHz) into slow reader (100 MHz): all entries must
	// arrive, in order, and never overflow given backpressure.
	k := NewKernel()
	w := k.NewClock("w", 400)
	r := k.NewClock("r", 100)
	f := NewAsyncFifo[int]("cdc", 4, 2, r)
	sent, recv := 0, 0
	var got []int
	const total = 50
	w.Register(&ClockedFunc{
		OnEval: func() {
			if sent < total && f.CanPush() {
				f.Push(sent)
				sent++
			}
		},
		OnUpdate: f.WriterUpdate,
	})
	r.Register(&ClockedFunc{
		OnEval: func() {
			if f.CanPop() {
				got = append(got, f.Pop())
				recv++
			}
		},
		OnUpdate: f.ReaderUpdate,
	})
	k.RunWhile(func() bool { return recv < total }, 1e9)
	if recv != total {
		t.Fatalf("received %d, want %d", recv, total)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got[%d] = %d, want %d (order violated)", i, v, i)
		}
	}
}

func TestAsyncFifoBackpressure(t *testing.T) {
	k := NewKernel()
	w := k.NewClock("w", 400)
	r := k.NewClock("r", 100)
	f := NewAsyncFifo[int]("cdc", 2, 2, r)
	rejected := false
	w.Register(&ClockedFunc{
		OnEval: func() {
			if f.CanPush() {
				f.Push(1)
			} else {
				rejected = true
			}
		},
		OnUpdate: f.WriterUpdate,
	})
	// reader never pops
	r.Register(&ClockedFunc{OnUpdate: f.ReaderUpdate})
	k.RunCycles(w, 20)
	if !rejected {
		t.Fatal("writer should see backpressure from full CDC fifo")
	}
	if f.Len() != 2 {
		t.Fatalf("len = %d, want 2 (never exceed depth)", f.Len())
	}
}
