package sim

import (
	"fmt"

	"mpsocsim/internal/snapshot"
)

// Checkpoint support for the kernel primitives (DESIGN.md §16). Snapshots
// are taken only at an edge boundary — between kernel Steps — where every
// two-phase FIFO is quiescent: no pushes or pops are staged, and
// clock-domain-crossing FIFOs hold no pending writer-side entries. The
// encode helpers assert that quiescence; hitting one of the panics means a
// snapshot was attempted mid-step, which is a programming error, not a data
// error.

// State returns the PRNG's internal state for checkpointing.
func (r *Rand) State() uint64 { return r.state }

// SetState overwrites the PRNG's internal state (checkpoint restore).
func (r *Rand) SetState(s uint64) { r.state = s }

// EncodeState serializes the kernel's time axis: absolute now plus every
// clock's completed-cycle count, in clock creation order. The edge schedule
// is not serialized — it is a pure cache, lazily rebuilt from the clock
// state after restore.
func (k *Kernel) EncodeState(e *snapshot.Encoder) {
	e.Tag('K')
	e.I(k.nowPS)
	e.U(uint64(len(k.clocks)))
	for _, c := range k.clocks {
		e.I(c.cycle)
	}
}

// DecodeState restores the kernel's time axis onto the same clock set (the
// platform rebuilds topology from the spec before decoding, so clock count
// and creation order match by construction).
func (k *Kernel) DecodeState(d *snapshot.Decoder) {
	d.Tag('K')
	now := d.I()
	n := d.N(1 << 10)
	if d.Err() != nil {
		return
	}
	if n != len(k.clocks) {
		d.Corrupt("kernel clock count %d does not match platform's %d", n, len(k.clocks))
		return
	}
	for _, c := range k.clocks {
		c.cycle = d.I()
		if c.cycle < 0 {
			d.Corrupt("negative cycle count for clock %q", c.name)
			return
		}
		// All clocks tick continuously from phase 0, so the next edge is
		// always the one after the last completed cycle.
		c.nextEdge = (c.cycle + 1) * c.periodPS
	}
	k.nowPS = now
	k.invalidateSchedule()
}

// EncodeFifoState serializes a quiescent FIFO: committed entries oldest
// first (via elem) plus the lifetime occupancy statistics. The ring origin
// is not preserved — slot indices are unobservable.
func EncodeFifoState[T any](e *snapshot.Encoder, f *Fifo[T], elem func(*snapshot.Encoder, T)) {
	if f.npush != 0 || f.npop != 0 {
		panic(fmt.Sprintf("sim: snapshot of fifo %q with staged operations (npush=%d npop=%d)", f.name, f.npush, f.npop))
	}
	e.Tag('F')
	e.U(uint64(f.n))
	for i := 0; i < f.n; i++ {
		elem(e, f.buf[f.slot(i)])
	}
	e.I(f.cycles)
	e.I(f.fullCycles)
	e.I(f.emptyCycles)
	e.U(uint64(f.maxOcc))
	e.I(f.pushedTotal)
}

// DecodeFifoState restores a FIFO serialized by EncodeFifoState into f,
// which must have the same depth (guaranteed when the platform was rebuilt
// from the same spec). Entries land at ring origin zero.
func DecodeFifoState[T any](d *snapshot.Decoder, f *Fifo[T], elem func(*snapshot.Decoder) T) {
	d.Tag('F')
	n := d.N(f.depth)
	if d.Err() != nil {
		return
	}
	var zero T
	for i := range f.buf {
		f.buf[i] = zero
	}
	f.head, f.npush, f.npop = 0, 0, 0
	f.n = n
	for i := 0; i < n; i++ {
		f.buf[i] = elem(d)
	}
	f.cycles = d.I()
	f.fullCycles = d.I()
	f.emptyCycles = d.I()
	f.maxOcc = d.N(f.depth)
	f.pushedTotal = d.I()
}

// EncodeAsyncFifoState serializes a quiescent CDC FIFO: committed entries
// with their maturity stamps. Writer-side pending entries and staged pops
// must be absent (edge boundary).
func EncodeAsyncFifoState[T any](e *snapshot.Encoder, f *AsyncFifo[T], elem func(*snapshot.Encoder, T)) {
	if len(f.pending) != 0 || f.npop != 0 {
		panic(fmt.Sprintf("sim: snapshot of async fifo %q with staged operations (pending=%d npop=%d)", f.name, len(f.pending), f.npop))
	}
	e.Tag('A')
	e.U(uint64(len(f.cur)))
	for i := range f.cur {
		elem(e, f.cur[i].v)
		e.I(f.cur[i].visible)
	}
}

// DecodeAsyncFifoState restores a CDC FIFO serialized by
// EncodeAsyncFifoState.
func DecodeAsyncFifoState[T any](d *snapshot.Decoder, f *AsyncFifo[T], elem func(*snapshot.Decoder) T) {
	d.Tag('A')
	n := d.N(f.depth)
	if d.Err() != nil {
		return
	}
	f.cur = f.cur[:0]
	f.pending = f.pending[:0]
	f.npop = 0
	for i := 0; i < n; i++ {
		v := elem(d)
		vis := d.I()
		f.cur = append(f.cur, asyncEntry[T]{v: v, visible: vis})
	}
}
