package sim

import "testing"

func BenchmarkKernelStep(b *testing.B) {
	k := NewKernel()
	clk := k.NewClock("c", 250)
	for i := 0; i < 16; i++ {
		clk.Register(&ClockedFunc{OnEval: func() {}, OnUpdate: func() {}})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Step()
	}
}

func BenchmarkKernelStepTwoDomains(b *testing.B) {
	k := NewKernel()
	fast := k.NewClock("fast", 400)
	slow := k.NewClock("slow", 100)
	for i := 0; i < 8; i++ {
		fast.Register(&ClockedFunc{OnEval: func() {}})
		slow.Register(&ClockedFunc{OnEval: func() {}})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Step()
	}
}

func BenchmarkFifoPushPop(b *testing.B) {
	f := NewFifo[int]("f", 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if f.CanPush() {
			f.Push(i)
		}
		if f.CanPop() {
			f.Pop()
		}
		f.Update()
	}
}

func BenchmarkRandUint64(b *testing.B) {
	r := NewRand(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkRandGeometric(b *testing.B) {
	r := NewRand(1)
	for i := 0; i < b.N; i++ {
		_ = r.Geometric(4)
	}
}
