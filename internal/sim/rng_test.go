package sim

import (
	"testing"
	"testing/quick"
)

func TestRandDeterminism(t *testing.T) {
	a := NewRand(12345)
	b := NewRand(12345)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must produce identical streams")
		}
	}
}

func TestRandDifferentSeedsDiffer(t *testing.T) {
	a := NewRand(1)
	b := NewRand(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams from different seeds collide %d/100 times", same)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRand(7)
	for n := 1; n < 20; n++ {
		for i := 0; i < 100; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRand(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := NewRand(9)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
	}
}

func TestRangeInclusive(t *testing.T) {
	r := NewRand(3)
	seenLo, seenHi := false, false
	for i := 0; i < 10000; i++ {
		v := r.Range(4, 8)
		if v < 4 || v > 8 {
			t.Fatalf("Range(4,8) = %d out of bounds", v)
		}
		if v == 4 {
			seenLo = true
		}
		if v == 8 {
			seenHi = true
		}
	}
	if !seenLo || !seenHi {
		t.Fatal("Range must be able to produce both endpoints")
	}
}

func TestGeometricMean(t *testing.T) {
	r := NewRand(11)
	const n = 20000
	sum := 0
	for i := 0; i < n; i++ {
		sum += r.Geometric(5)
	}
	mean := float64(sum) / n
	if mean < 4.0 || mean > 6.0 {
		t.Fatalf("geometric mean = %v, want ~5", mean)
	}
	if g := r.Geometric(0); g != 0 {
		t.Fatalf("Geometric(0) = %d, want 0", g)
	}
}

func TestPickWeights(t *testing.T) {
	r := NewRand(13)
	counts := [3]int{}
	for i := 0; i < 30000; i++ {
		counts[r.Pick([]float64{1, 2, 1})]++
	}
	// expect roughly 25% / 50% / 25%
	if counts[1] < counts[0] || counts[1] < counts[2] {
		t.Fatalf("weighted pick skew wrong: %v", counts)
	}
	if r.Pick([]float64{0, 0}) != 0 {
		t.Fatal("zero-weight pick should return 0")
	}
}

// Property: Pick always returns a valid index.
func TestPickPropertyInRange(t *testing.T) {
	r := NewRand(17)
	prop := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		w := make([]float64, len(raw))
		for i, b := range raw {
			w[i] = float64(b)
		}
		i := r.Pick(w)
		return i >= 0 && i < len(w)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
