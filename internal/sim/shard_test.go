package sim

import (
	"testing"
)

// --- deferred-commit Fifo contract -----------------------------------------

// TestFifoDeferredUpdateIsNoOp pins the core of the deferred-commit
// discipline: after MarkDeferred the owner's per-cycle Update commits
// nothing, and CommitDeferred performs exactly the commit Update would have.
// A twin FIFO driven serially through the same operation sequence must stay
// bit-identical in visibility and statistics.
func TestFifoDeferredUpdateIsNoOp(t *testing.T) {
	d := NewFifo[int]("deferred", 4)
	s := NewFifo[int]("serial", 4)
	d.MarkDeferred()
	if !d.Deferred() {
		t.Fatal("Deferred() false after MarkDeferred")
	}

	d.Push(1)
	s.Push(1)
	d.Update() // must be a no-op
	if d.Len() != 0 {
		t.Fatalf("owner Update committed on a deferred fifo: len=%d", d.Len())
	}
	s.Update()
	d.CommitDeferred()
	if d.Len() != 1 || s.Len() != 1 {
		t.Fatalf("commit mismatch: deferred len=%d serial len=%d", d.Len(), s.Len())
	}

	// A few mixed cycles: the coordinator commit must reproduce the serial
	// occupancy statistics cycle for cycle.
	for cyc := 0; cyc < 20; cyc++ {
		if cyc%3 != 0 && d.CanPush() {
			d.Push(cyc)
			s.Push(cyc)
		}
		if cyc%2 == 0 && d.CanPop() {
			if dv, sv := d.Pop(), s.Pop(); dv != sv {
				t.Fatalf("cycle %d: popped %d (deferred) vs %d (serial)", cyc, dv, sv)
			}
		}
		d.CommitDeferred()
		s.Update()
		if d.Len() != s.Len() {
			t.Fatalf("cycle %d: occupancy diverged: %d vs %d", cyc, d.Len(), s.Len())
		}
	}
	if d.Stats() != s.Stats() {
		t.Fatalf("statistics diverged:\ndeferred: %+v\nserial:   %+v", d.Stats(), s.Stats())
	}
}

func TestFifoMarkDeferredPanicsStagedOps(t *testing.T) {
	cases := []struct {
		name string
		prep func(f *Fifo[int])
	}{
		{"staged-push", func(f *Fifo[int]) { f.Push(1) }},
		{"staged-pop", func(f *Fifo[int]) { f.Push(1); f.Update(); f.Pop() }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := NewFifo[int]("f", 4)
			tc.prep(f)
			defer func() {
				if recover() == nil {
					t.Fatal("MarkDeferred with staged operations must panic")
				}
			}()
			f.MarkDeferred()
		})
	}
}

// TestFifoMarkDeferredAllowsCommittedEntries pins the checkpoint/restore
// relaxation: a FIFO holding committed traffic (no staged operations) may
// switch to deferred-commit mode — n and head are frozen per window either
// way — and the entries survive the switch.
func TestFifoMarkDeferredAllowsCommittedEntries(t *testing.T) {
	f := NewFifo[int]("f", 4)
	f.Push(7)
	f.Push(9)
	f.Update()
	f.MarkDeferred()
	if f.Len() != 2 {
		t.Fatalf("committed entries lost across MarkDeferred: len=%d", f.Len())
	}
	if got := f.Pop(); got != 7 {
		t.Fatalf("popped %d, want 7", got)
	}
	f.CommitDeferred()
	if f.Len() != 1 {
		t.Fatalf("after commit: len=%d, want 1", f.Len())
	}
}

func TestFifoDeferredRemoveAtPanics(t *testing.T) {
	f := NewFifo[int]("f", 4)
	f.MarkDeferred()
	f.Push(1)
	f.Push(2)
	f.CommitDeferred()
	defer func() {
		if recover() == nil {
			t.Fatal("RemoveAt on a deferred fifo must panic (breaks the SPSC field partition)")
		}
	}()
	f.RemoveAt(1)
}

func TestFifoCommitDeferredPanicsWhenNotDeferred(t *testing.T) {
	f := NewFifo[int]("f", 4)
	defer func() {
		if recover() == nil {
			t.Fatal("CommitDeferred on a non-deferred fifo must panic")
		}
	}()
	f.CommitDeferred()
}

// TestFifoDeferredSPSCStress is the race-detector proof of the field
// partition documented on Fifo: with the FIFO in deferred-commit mode, a
// pusher and a popper on two different shards (goroutines) may run
// concurrently inside a synchronization window without atomics, because the
// pusher touches only npush and ring slots >= n, the popper only npop and
// slots < n, and n/head stay frozen until the coordinator commits at the
// barrier. Run under -race (the CI race job does).
func TestFifoDeferredSPSCStress(t *testing.T) {
	windows := 20000
	if testing.Short() {
		windows = 2000
	}

	f := NewFifo[int]("boundary", 4)
	f.MarkDeferred()

	kPush := NewKernel()
	cPush := kPush.NewClock("push", 100)
	kPop := NewKernel()
	cPop := kPop.NewClock("pop", 100)

	next := 0
	cPush.Register(&ClockedFunc{OnEval: func() {
		// Bursty: some cycles push nothing, some fill the window.
		if cPush.Cycles()%7 == 3 {
			return
		}
		for f.CanPush() {
			f.Push(next)
			next++
		}
	}})

	var got []int
	cPop.Register(&ClockedFunc{OnEval: func() {
		if cPop.Cycles()%5 == 1 {
			return
		}
		for f.CanPop() {
			got = append(got, f.Pop())
		}
	}})

	r := NewShardRunner([]*Kernel{kPush, kPop})
	period := cPush.PeriodPS()
	for w := int64(1); w <= int64(windows); w++ {
		r.RunWindow(w * period)
		f.CommitDeferred()
	}
	r.Close()

	if len(got) == 0 {
		t.Fatal("nothing crossed the boundary")
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("value %d arrived out of order (got %d)", i, v)
		}
	}
	st := f.Stats()
	if st.Cycles != int64(windows) {
		t.Fatalf("commit count %d, want one per window (%d)", st.Cycles, windows)
	}
	if st.Pushed != int64(next) {
		t.Fatalf("pushed stat %d, want %d", st.Pushed, next)
	}
}

// --- AsyncFifo SPSC contract -----------------------------------------------

// TestAsyncFifoSPSCStress enforces the single-producer/single-consumer
// contract documented on AsyncFifo: the writer side and the reader side may
// live on different goroutines only under strict alternation with
// happens-before handoffs (in the sharded platform, both sides of a crossing
// live inside one shard). This test runs each side on its own goroutine with
// a channel token ping-pong — the legal pattern — and must stay clean under
// the race detector; note that WriterUpdate reads the reader clock's cycle
// counter, so dropping the handoff (running the sides concurrently) is a
// data race by construction.
func TestAsyncFifoSPSCStress(t *testing.T) {
	iters := 50000
	if testing.Short() {
		iters = 5000
	}

	k := NewKernel()
	r := k.NewClock("r", 100)
	f := NewAsyncFifo[int]("cdc", 8, 2, r)

	var got []int
	r.Register(&ClockedFunc{
		OnEval: func() {
			for f.CanPop() {
				got = append(got, f.Pop())
			}
		},
		OnUpdate: f.ReaderUpdate,
	})

	toWriter := make(chan struct{})
	toReader := make(chan struct{})
	done := make(chan int)

	go func() { // writer side: Push / CanPush / WriterUpdate only
		next := 0
		for range toWriter {
			if next%3 != 2 && f.CanPush() {
				f.Push(next)
				next++
			}
			f.WriterUpdate()
			toReader <- struct{}{}
		}
		done <- next
	}()
	go func() { // reader side: steps the reader clock (Pop / ReaderUpdate)
		for range toReader {
			k.RunCycles(r, 1)
			toWriter <- struct{}{}
		}
		close(done)
	}()

	toWriter <- struct{}{}
	var pushed int
	for i := 0; i < iters; i++ {
		<-toWriter
		if i == iters-1 {
			close(toWriter)
			pushed = <-done
			close(toReader)
			<-done
		} else {
			toWriter <- struct{}{}
		}
	}

	if pushed == 0 {
		t.Fatal("writer pushed nothing")
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("entry %d crossed the CDC out of order (got %d)", i, v)
		}
	}
	if len(got) < pushed-f.Depth() {
		t.Fatalf("only %d of %d pushed entries crossed", len(got), pushed)
	}
}

func TestAsyncFifoSetReaderClockPanics(t *testing.T) {
	t.Run("non-idle", func(t *testing.T) {
		k := NewKernel()
		r := k.NewClock("r", 100)
		r2 := k.NewClock("r2", 100)
		f := NewAsyncFifo[int]("cdc", 4, 2, r)
		f.Push(1)
		defer func() {
			if recover() == nil {
				t.Fatal("SetReaderClock on a non-idle async fifo must panic")
			}
		}()
		f.SetReaderClock(r2)
	})
	t.Run("period-mismatch", func(t *testing.T) {
		k := NewKernel()
		r := k.NewClock("r", 100)
		r2 := k.NewClock("r2", 200)
		f := NewAsyncFifo[int]("cdc", 4, 2, r)
		defer func() {
			if recover() == nil {
				t.Fatal("SetReaderClock with a different period must panic")
			}
		}()
		f.SetReaderClock(r2)
	})
}

// TestAsyncFifoSetReaderClockRehome checks the legal rehoming: an idle FIFO
// re-pointed at a same-period replica clock matures entries against the new
// counter exactly as it would have against the old one.
func TestAsyncFifoSetReaderClockRehome(t *testing.T) {
	k1 := NewKernel()
	r1 := k1.NewClock("central", 100)
	f := NewAsyncFifo[int]("cdc", 4, 2, r1)

	k2 := NewKernel()
	r2 := k2.NewClockPeriodPS("central", r1.PeriodPS())
	f.SetReaderClock(r2)

	var popped []int
	r2.Register(&ClockedFunc{
		OnEval: func() {
			for f.CanPop() {
				popped = append(popped, f.Pop())
			}
		},
		OnUpdate: f.ReaderUpdate,
	})
	f.Push(7)
	f.WriterUpdate()
	k2.RunCycles(r2, 5)
	if len(popped) != 1 || popped[0] != 7 {
		t.Fatalf("rehomed fifo delivered %v, want [7]", popped)
	}
}

// --- ShardRunner -----------------------------------------------------------

// countClocked counts Eval and Update invocations.
type countClocked struct{ evals, updates int64 }

func (c *countClocked) Eval()   { c.evals++ }
func (c *countClocked) Update() { c.updates++ }

// TestShardRunnerWindowExecution checks that RunWindow drives every kernel
// exactly through its edges <= t, across goroutines, and that repeated
// windows accumulate with no edge lost or duplicated.
func TestShardRunnerWindowExecution(t *testing.T) {
	mk := func(mhz float64) (*Kernel, *Clock, *countClocked) {
		k := NewKernel()
		c := k.NewClock("c", mhz)
		cc := &countClocked{}
		c.Register(cc)
		return k, c, cc
	}
	kA, clkA, ccA := mk(100) // 10000 ps
	kB, clkB, ccB := mk(250) // 4000 ps
	kC, _, ccC := mk(100)

	r := NewShardRunner([]*Kernel{kA, kB, kC})
	defer r.Close()

	for w := int64(1); w <= 50; w++ {
		r.RunWindow(w * 10000)
	}
	if ccA.evals != 50 || ccA.updates != 50 {
		t.Fatalf("kernel A: %d evals %d updates, want 50/50", ccA.evals, ccA.updates)
	}
	if ccB.evals != 125 || ccB.updates != 125 {
		t.Fatalf("kernel B: %d evals %d updates, want 125/125 (250 MHz over 500 ns)", ccB.evals, ccB.updates)
	}
	if ccC.evals != 50 {
		t.Fatalf("kernel C: %d evals, want 50", ccC.evals)
	}
	if clkA.Cycles() != 50 || clkB.Cycles() != 125 {
		t.Fatalf("clock cycles A=%d B=%d, want 50/125", clkA.Cycles(), clkB.Cycles())
	}
}

func TestShardRunnerPeekAndStepAll(t *testing.T) {
	kA := NewKernel()
	kA.NewClockPeriodPS("a", 7000)
	kB := NewKernel()
	kB.NewClockPeriodPS("b", 3000)

	r := NewShardRunner([]*Kernel{kA, kB})
	defer r.Close()

	if e := r.PeekNextEdge(); e != 3000 {
		t.Fatalf("first edge %d, want 3000", e)
	}
	r.StepAll(3000)
	if e := r.PeekNextEdge(); e != 6000 {
		t.Fatalf("after step: next edge %d, want 6000", e)
	}
	r.StepAll(7000)
	if e := r.PeekNextEdge(); e != 9000 {
		t.Fatalf("next edge %d, want 9000", e)
	}

	empty := NewShardRunner([]*Kernel{NewKernel()})
	defer empty.Close()
	if e := empty.PeekNextEdge(); e != -1 {
		t.Fatalf("clockless runner peek %d, want -1", e)
	}
}

func TestShardRunnerSingleKernelDegenerate(t *testing.T) {
	k := NewKernel()
	c := k.NewClock("c", 100)
	cc := &countClocked{}
	c.Register(cc)
	r := NewShardRunner([]*Kernel{k})
	r.RunWindow(100000) // runs on the caller's goroutine; no workers exist
	if cc.evals != 10 {
		t.Fatalf("%d evals, want 10", cc.evals)
	}
	r.Close()
	r.Close() // idempotent
}
