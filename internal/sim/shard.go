package sim

// Sharded execution support: a ShardRunner steps several kernels through
// shared time windows on parallel goroutines. The synchronization protocol
// is conservative (no rollback) and window-based:
//
//   - every kernel owns a disjoint set of clock domains whose components
//     communicate across kernels only through deferred-commit FIFOs
//     (Fifo.MarkDeferred), whose committed region is frozen between
//     barriers;
//   - the coordinator picks a window-end instant T such that no cross-kernel
//     state committed inside (T0, T] can be observed by another kernel
//     before the next window (the lookahead bound: one owning-clock period
//     of the boundary FIFOs);
//   - RunWindow(T) releases every kernel to execute all of its edges <= T,
//     then blocks until all are done. The channel handoffs publish each
//     shard's writes to the coordinator and vice versa (happens-before), so
//     the coordinator can commit the boundary FIFOs and read any component
//     state single-threaded between windows.
//
// A RunWindow call performs no heap allocation, preserving the platform's
// 0 allocs/cycle steady-state invariant in sharded mode.

// DeferredCommitter is the commit surface of a deferred-commit boundary FIFO
// (see Fifo.MarkDeferred); the window coordinator commits all of them
// between windows.
type DeferredCommitter interface {
	CommitDeferred()
}

// ShardRunner drives one goroutine per additional kernel; the caller's
// goroutine doubles as the executor of kernels[0], so a single-shard runner
// spawns nothing and degenerates to plain serial stepping.
type ShardRunner struct {
	kernels []*Kernel
	cmd     []chan int64  // one buffered slot per worker: window-end instant
	ack     chan struct{} // workers signal window completion
	closed  bool
}

// NewShardRunner starts the worker goroutines. Close must be called to stop
// them (idempotent).
func NewShardRunner(kernels []*Kernel) *ShardRunner {
	r := &ShardRunner{
		kernels: kernels,
		ack:     make(chan struct{}, len(kernels)),
	}
	for i := 1; i < len(kernels); i++ {
		c := make(chan int64, 1)
		r.cmd = append(r.cmd, c)
		go worker(kernels[i], c, r.ack)
	}
	return r
}

// worker executes windows for one kernel until its command channel closes.
func worker(k *Kernel, cmd <-chan int64, ack chan<- struct{}) {
	for t := range cmd {
		k.RunUntil(t)
		ack <- struct{}{}
	}
}

// RunWindow executes all edges at or before t on every kernel, in parallel,
// and returns once all kernels have reached the barrier. On return the
// coordinator has a happens-before edge from every shard's writes (and its
// own writes are published to the shards at the next RunWindow).
func (r *ShardRunner) RunWindow(t int64) {
	for _, c := range r.cmd {
		c <- t
	}
	r.kernels[0].RunUntil(t)
	for range r.cmd {
		<-r.ack
	}
}

// StepAll executes, single-threaded on the caller's goroutine, all edges at
// or before t on every kernel in shard order. The serial tail of a sharded
// run uses it to finish with exact per-instant granularity (stop conditions
// are re-evaluated between global instants, as in a serial run).
func (r *ShardRunner) StepAll(t int64) {
	for _, k := range r.kernels {
		k.RunUntil(t)
	}
}

// PeekNextEdge returns the earliest next edge across all kernels (-1 when no
// kernel has clocks).
func (r *ShardRunner) PeekNextEdge() int64 {
	next := int64(-1)
	for _, k := range r.kernels {
		if e := k.PeekNextEdge(); e >= 0 && (next < 0 || e < next) {
			next = e
		}
	}
	return next
}

// Close stops the worker goroutines. Memory visibility of the shards' final
// state is already established by the last window's acknowledgements, so the
// caller may read cross-shard state after its last RunWindow regardless of
// worker teardown timing. Idempotent.
func (r *ShardRunner) Close() {
	if r.closed {
		return
	}
	r.closed = true
	for _, c := range r.cmd {
		close(c)
	}
}
