package sim

import (
	"fmt"
	"reflect"
	"testing"
)

// recorder appends "<name>@<cycles-after-update>" markers so tests can compare
// the exact firing order across kernel dispatch tiers.
type recorder struct {
	clk  *Clock
	name string
	log  *[]string
}

func (r *recorder) Eval() {}
func (r *recorder) Update() {
	*r.log = append(*r.log, fmt.Sprintf("%s@%d", r.name, r.clk.Cycles()))
}

// expectedEdges brute-forces the firing sequence for the given periods: at
// each instant, the due clocks in name order (names here sort like the
// construction order).
func expectedEdges(t *testing.T, names []string, periods []int64, steps int) []string {
	t.Helper()
	next := append([]int64(nil), periods...)
	cyc := make([]int64, len(periods))
	var out []string
	for s := 0; s < steps; s++ {
		min := next[0]
		for _, n := range next[1:] {
			if n < min {
				min = n
			}
		}
		for i := range next {
			if next[i] == min {
				out = append(out, fmt.Sprintf("%s@%d", names[i], cyc[i]))
				cyc[i]++
				next[i] += periods[i]
			}
		}
	}
	return out
}

func runRecorded(periods []int64, names []string, steps int) []string {
	k := NewKernel()
	var log []string
	for i, p := range periods {
		c := k.NewClockPeriodPS(names[i], p)
		c.Register(&recorder{clk: c, name: names[i], log: &log})
	}
	for len(log) < steps {
		if !k.Step() {
			break
		}
	}
	return log
}

// TestScheduleTiersFireIdenticalEdges pins the tentpole invariant: the
// tabulated hyperperiod schedule (small LCM) and the generic min-scan path
// (huge LCM from the 7519 ps quantized-133 MHz period) both reproduce the
// brute-force edge sequence exactly.
func TestScheduleTiersFireIdenticalEdges(t *testing.T) {
	cases := []struct {
		label   string
		names   []string
		periods []int64
	}{
		// LCM 20000 ps, 14 edges/hyperperiod: tier-2 schedule.
		{"schedule", []string{"a", "b"}, []int64{2500, 4000}},
		// Simultaneous edges every 5000 ps plus an offset domain.
		{"schedule-simultaneous", []string{"a", "b", "c"}, []int64{2500, 5000, 4000}},
		// 7519 is co-prime enough that the hyperperiod exceeds maxHyperEdges:
		// tier-3 generic.
		{"generic", []string{"a", "b", "c"}, []int64{2500, 4000, 7519}},
	}
	for _, tc := range cases {
		t.Run(tc.label, func(t *testing.T) {
			const steps = 500
			want := expectedEdges(t, tc.names, tc.periods, steps)[:steps]
			got := runRecorded(tc.periods, tc.names, steps+len(tc.periods))[:steps]
			if !reflect.DeepEqual(got, want) {
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("edge %d: got %s, want %s", i, got[i], want[i])
					}
				}
			}
		})
	}
}

// TestClockPeriodPinsPlatformFrequencies pins the quantized periods of every
// frequency the reference platforms use, including the rounding cases the
// NewClock doc comment calls out (333 MHz -> 3003 ps, 133 MHz -> 7519 ps).
func TestClockPeriodPinsPlatformFrequencies(t *testing.T) {
	k := NewKernel()
	cases := []struct {
		mhz    float64
		period int64
	}{
		{400, 2500},
		{333, 3003},
		{250, 4000},
		{200, 5000},
		{166, 6024},
		{133, 7519},
		{100, 10000},
	}
	for _, tc := range cases {
		c := k.NewClock(fmt.Sprintf("f%v", tc.mhz), tc.mhz)
		if c.PeriodPS() != tc.period {
			t.Errorf("freq %v MHz: period = %d ps, want %d", tc.mhz, c.PeriodPS(), tc.period)
		}
	}
}

// TestResetStopAllowsReuse verifies a stopped kernel can be restarted: Stop
// latches, ResetStop clears, and the run loops pick up exactly where the
// previous run halted.
func TestResetStopAllowsReuse(t *testing.T) {
	k := NewKernel()
	clk := k.NewClock("c", 100)
	ticks := 0
	clk.Register(&ClockedFunc{OnEval: func() {
		ticks++
		if ticks == 5 {
			k.Stop()
		}
	}})
	k.RunUntil(1_000_000)
	if ticks != 5 {
		t.Fatalf("first run ticked %d, want 5 (Stop latched)", ticks)
	}
	if !k.Stopped() {
		t.Fatal("kernel should report stopped")
	}
	k.RunUntil(1_000_000)
	if ticks != 5 {
		t.Fatalf("stopped kernel must not advance, ticked %d", ticks)
	}

	k.ResetStop()
	if k.Stopped() {
		t.Fatal("ResetStop must clear the latch")
	}
	k.RunCycles(clk, 5)
	if ticks != 10 {
		t.Fatalf("after ResetStop ticked %d, want 10", ticks)
	}
	if clk.Cycles() != 10 {
		t.Fatalf("clock cycles = %d, want 10", clk.Cycles())
	}
}

// TestMidRunTopologyChangeInvalidatesSchedule adds a clock and a component
// after the kernel has already built (and used) its edge schedule; both must
// be picked up without disturbing the existing domains.
func TestMidRunTopologyChangeInvalidatesSchedule(t *testing.T) {
	k := NewKernel()
	a := k.NewClockPeriodPS("a", 2500)
	aTicks := 0
	a.Register(&ClockedFunc{OnEval: func() { aTicks++ }})
	k.RunCycles(a, 8) // schedule built on the single-clock tier

	// New domain mid-run: its first edge is one period after *time zero*,
	// i.e. already in the simulated past, so it catches up deterministically
	// through the generic path (the tabulated tiers refuse the state).
	b := k.NewClockPeriodPS("b", 4000)
	bTicks := 0
	b.Register(&ClockedFunc{OnEval: func() { bTicks++ }})
	// New component on the existing clock mid-run.
	a2Ticks := 0
	a.Register(&ClockedFunc{OnEval: func() { a2Ticks++ }})

	k.RunUntil(40_000)
	if aTicks != 16 {
		t.Fatalf("a ticked %d, want 16", aTicks)
	}
	if a2Ticks != 8 {
		t.Fatalf("late component ticked %d, want 8", a2Ticks)
	}
	if bTicks != 10 {
		t.Fatalf("b ticked %d, want 10 (catch-up from t=4000)", bTicks)
	}
	if a.Cycles() != 16 || b.Cycles() != 10 {
		t.Fatalf("cycles = %d/%d, want 16/10", a.Cycles(), b.Cycles())
	}
}

// TestKernelStepZeroAlloc guards the zero-allocation invariant at the kernel
// level for all three dispatch tiers.
func TestKernelStepZeroAlloc(t *testing.T) {
	tiers := []struct {
		label   string
		periods []int64
	}{
		{"single", []int64{4000}},
		{"schedule", []int64{2500, 4000}},
		{"generic", []int64{2500, 4000, 7519}},
	}
	for _, tc := range tiers {
		t.Run(tc.label, func(t *testing.T) {
			k := NewKernel()
			for i, p := range tc.periods {
				c := k.NewClockPeriodPS(fmt.Sprintf("c%d", i), p)
				c.Register(&ClockedFunc{OnEval: func() {}})
			}
			// Warm past the lazy schedule build and the firing-buffer
			// high-water mark (first simultaneous multi-clock edge).
			for i := 0; i < 100; i++ {
				k.Step()
			}
			allocs := testing.AllocsPerRun(1000, func() { k.Step() })
			if allocs != 0 {
				t.Fatalf("Step allocates on the %s tier: %.2f allocs/step", tc.label, allocs)
			}
		})
	}
}
