package sim

import "testing"

// The ring storage must stay correct once head has wrapped past the end of
// the backing array — every slot is reused many times over.
func TestFifoRingWrapAround(t *testing.T) {
	f := NewFifo[int]("w", 3)
	next, want := 0, 0
	for cycle := 0; cycle < 50; cycle++ {
		if f.CanPush() {
			f.Push(next)
			next++
		}
		if f.CanPop() {
			if got := f.Pop(); got != want {
				t.Fatalf("cycle %d: pop = %d, want %d", cycle, got, want)
			}
			want++
		}
		f.Update()
	}
	if want == 0 {
		t.Fatal("test never popped")
	}
}

// RemoveAt with i > 0 in the same cycle as a Pop and a Push — the LMI
// lookahead pattern: the optimizer pops or removes one matured command per
// cycle while the bus interface stages a newly arrived one.
func TestFifoRemoveAtInterleavedSameCycle(t *testing.T) {
	f := NewFifo[int]("lmi", 4)
	for _, v := range []int{10, 11, 12} {
		f.Push(v)
	}
	f.Update()

	// Cycle: pop the head, remove what is now the second remaining entry
	// (logical index 1 past the staged pop), and push a newcomer.
	if got := f.Pop(); got != 10 {
		t.Fatalf("pop = %d, want 10", got)
	}
	if got := f.RemoveAt(1); got != 12 {
		t.Fatalf("RemoveAt(1) = %d, want 12", got)
	}
	if !f.CanPush() {
		t.Fatal("slot freed by RemoveAt must be reusable this cycle")
	}
	f.Push(13)
	f.Update()

	for i, w := range []int{11, 13} {
		if got := f.Pop(); got != w {
			t.Fatalf("pop #%d = %d, want %d", i, got, w)
		}
	}
	f.Update()
	if f.CanPop() {
		t.Fatal("fifo should be empty")
	}
}

// RemoveAt must also shift entries staged (pushed) this same cycle so the
// staged region stays contiguous with the committed one.
func TestFifoRemoveAtWithStagedPush(t *testing.T) {
	f := NewFifo[int]("s", 4)
	f.Push(1)
	f.Push(2)
	f.Push(3)
	f.Update()

	f.Push(4) // staged
	if got := f.RemoveAt(1); got != 2 {
		t.Fatalf("RemoveAt(1) = %d, want 2", got)
	}
	f.Update()

	for i, w := range []int{1, 3, 4} {
		if got := f.Pop(); got != w {
			t.Fatalf("pop #%d = %d, want %d", i, got, w)
		}
	}
}

// Entries that leave the FIFO must drop their references so the GC can
// collect them: popped slots are zeroed at Update, removed slots immediately.
func TestFifoReleasesReferences(t *testing.T) {
	f := NewFifo[*int]("gc", 4)
	vals := make([]*int, 3)
	for i := range vals {
		vals[i] = new(int)
		f.Push(vals[i])
	}
	f.Update()

	f.RemoveAt(1)
	f.Pop()
	f.Update()

	live := map[*int]bool{vals[2]: true} // the only entry still queued
	held := 0
	for _, p := range f.buf {
		if p != nil {
			if !live[p] {
				t.Fatalf("fifo retains reference to departed entry %p", p)
			}
			held++
		}
	}
	if held != 1 {
		t.Fatalf("fifo holds %d references, want 1", held)
	}
}

// Reset must return the FIFO to its freshly constructed state while keeping
// the preallocated ring, so a reset FIFO is immediately reusable.
func TestFifoReuseAfterReset(t *testing.T) {
	f := NewFifo[int]("r", 3)
	// Dirty every slot and wrap the head.
	for cycle := 0; cycle < 7; cycle++ {
		if f.CanPush() {
			f.Push(cycle)
		}
		if f.CanPop() {
			f.Pop()
		}
		f.Update()
	}
	f.Push(99) // leave a staged push dangling across the reset

	f.Reset()
	if f.Len() != 0 || f.Staged() != 0 || f.CanPop() {
		t.Fatal("reset fifo must be empty with nothing staged")
	}
	if s := f.Stats(); s.Cycles != 0 || s.Pushed != 0 || s.MaxOccupancy != 0 {
		t.Fatalf("reset must clear stats, got %+v", s)
	}

	// Full reuse: same capacity, correct order, no leftovers from before.
	for _, v := range []int{7, 8, 9} {
		f.Push(v)
	}
	if f.CanPush() {
		t.Fatal("depth must be unchanged after reset")
	}
	f.Update()
	for i, w := range []int{7, 8, 9} {
		if got := f.Pop(); got != w {
			t.Fatalf("pop #%d after reset = %d, want %d", i, got, w)
		}
	}
}

// The steady-state FIFO operations must not allocate: the ring is fixed at
// construction and commits are counter bumps.
func TestFifoOpsZeroAlloc(t *testing.T) {
	f := NewFifo[int]("z", 8)
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		if f.CanPush() {
			f.Push(i)
			i++
		}
		if f.CanPush() {
			f.Push(i)
			i++
		}
		if f.CanPop() {
			f.Pop()
		}
		if f.n-f.npop >= 2 { // a second un-popped entry remains: remove it
			f.RemoveAt(1)
		}
		f.Update()
	})
	if allocs != 0 {
		t.Fatalf("fifo ops allocate: %.2f allocs/cycle (want 0)", allocs)
	}
}
