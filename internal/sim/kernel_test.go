package sim

import (
	"testing"
)

type counter struct {
	evals   int
	updates int
	// order check: updates must never run ahead of evals
	bad bool
}

func (c *counter) Eval() {
	if c.updates != c.evals {
		c.bad = true
	}
	c.evals++
}

func (c *counter) Update() {
	if c.updates+1 != c.evals {
		c.bad = true
	}
	c.updates++
}

func TestClockBasicTicking(t *testing.T) {
	k := NewKernel()
	clk := k.NewClock("c", 100) // 100 MHz -> 10ns period
	c := &counter{}
	clk.Register(c)

	k.RunCycles(clk, 10)
	if c.evals != 10 || c.updates != 10 {
		t.Fatalf("got %d evals %d updates, want 10/10", c.evals, c.updates)
	}
	if c.bad {
		t.Fatal("eval/update ordering violated")
	}
	if clk.Cycles() != 10 {
		t.Fatalf("clock cycles = %d, want 10", clk.Cycles())
	}
	if k.Now() != 10*clk.PeriodPS() {
		t.Fatalf("now = %d, want %d", k.Now(), 10*clk.PeriodPS())
	}
}

func TestClockPeriodFromFrequency(t *testing.T) {
	k := NewKernel()
	cases := []struct {
		mhz    float64
		period int64
	}{
		{400, 2500},
		{250, 4000},
		{200, 5000},
		{100, 10000},
		{133, 7519},
	}
	for _, tc := range cases {
		c := k.NewClock("x", tc.mhz)
		if c.PeriodPS() != tc.period {
			t.Errorf("freq %v MHz: period = %d ps, want %d", tc.mhz, c.PeriodPS(), tc.period)
		}
	}
}

func TestMultiClockRatio(t *testing.T) {
	k := NewKernel()
	fast := k.NewClock("fast", 400)
	slow := k.NewClock("slow", 100)
	cf := &counter{}
	cs := &counter{}
	fast.Register(cf)
	slow.Register(cs)

	k.RunUntil(1_000_000) // 1 us
	// 400 MHz -> 400 edges/us, 100 MHz -> 100 edges/us
	if cf.evals != 400 {
		t.Errorf("fast evals = %d, want 400", cf.evals)
	}
	if cs.evals != 100 {
		t.Errorf("slow evals = %d, want 100", cs.evals)
	}
}

func TestSimultaneousEdgesTickAsGroup(t *testing.T) {
	k := NewKernel()
	a := k.NewClock("a", 100)
	b := k.NewClock("b", 100)
	var order []string
	a.Register(&ClockedFunc{
		OnEval:   func() { order = append(order, "aE") },
		OnUpdate: func() { order = append(order, "aU") },
	})
	b.Register(&ClockedFunc{
		OnEval:   func() { order = append(order, "bE") },
		OnUpdate: func() { order = append(order, "bU") },
	})
	k.Step()
	want := []string{"aE", "bE", "aU", "bU"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestStopEndsRun(t *testing.T) {
	k := NewKernel()
	clk := k.NewClock("c", 100)
	n := 0
	clk.Register(&ClockedFunc{OnEval: func() {
		n++
		if n == 5 {
			k.Stop()
		}
	}})
	k.RunCycles(clk, 1000)
	if n != 5 {
		t.Fatalf("ran %d cycles, want 5", n)
	}
	if !k.Stopped() {
		t.Fatal("kernel should report stopped")
	}
}

func TestRunWhile(t *testing.T) {
	k := NewKernel()
	clk := k.NewClock("c", 100)
	n := 0
	clk.Register(&ClockedFunc{OnEval: func() { n++ }})
	ok := k.RunWhile(func() bool { return n < 7 }, 1<<40)
	if !ok {
		t.Fatal("RunWhile should report condition satisfied")
	}
	if n != 7 {
		t.Fatalf("n = %d, want 7", n)
	}
	// timeout path
	ok = k.RunWhile(func() bool { return true }, k.Now()+100_000)
	if ok {
		t.Fatal("RunWhile should time out")
	}
}

func TestKernelNoClocks(t *testing.T) {
	k := NewKernel()
	if k.Step() {
		t.Fatal("Step with no clocks should return false")
	}
	k.RunUntil(1000) // must not hang
}

func TestNewClockPanicsOnBadFreq(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive frequency")
		}
	}()
	NewKernel().NewClock("bad", 0)
}

func TestClockedFuncNilSafe(t *testing.T) {
	c := &ClockedFunc{}
	c.Eval()
	c.Update() // must not panic
}
