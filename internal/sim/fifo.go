package sim

import "fmt"

// Fifo is a synchronous two-phase FIFO. Pushes staged during Eval become
// visible to readers only after Update (i.e. the next cycle); pops staged
// during Eval are likewise committed at Update. CanPush accounts for pushes
// already staged this cycle, so several producers evaluated in the same
// cycle cannot overflow the FIFO. CanPop and Peek see only committed
// entries, so an entry pushed in cycle N is poppable in cycle N+1 at the
// earliest — one cycle of latency per hop, as in registered hardware.
//
// The owning component (or a shared Commit group) must call Update once per
// cycle; the kernel does this when the Fifo is registered on a clock, but
// the usual pattern is for the component owning the FIFO to call
// fifo.Update() from its own Update method.
type Fifo[T any] struct {
	name    string
	depth   int
	cur     []T
	pending []T
	npop    int

	// occupancy statistics (committed state, sampled at Update)
	cycles      int64
	fullCycles  int64
	emptyCycles int64
	maxOcc      int
	pushedTotal int64
}

// NewFifo returns a FIFO with the given capacity. Depth must be positive.
func NewFifo[T any](name string, depth int) *Fifo[T] {
	if depth <= 0 {
		panic(fmt.Sprintf("sim: fifo %q depth must be positive, got %d", name, depth))
	}
	return &Fifo[T]{name: name, depth: depth}
}

// Name returns the FIFO's name.
func (f *Fifo[T]) Name() string { return f.name }

// Depth returns the FIFO capacity.
func (f *Fifo[T]) Depth() int { return f.depth }

// Len returns the committed occupancy (entries visible to the reader).
func (f *Fifo[T]) Len() int { return len(f.cur) }

// Staged returns the number of pushes staged this cycle but not yet
// committed. Interface monitors use it to observe "a request is being
// stored this cycle" (e.g. the LMI bus-interface statistics of the paper's
// Fig.6) during the Update phase.
func (f *Fifo[T]) Staged() int { return len(f.pending) }

// SpaceStaged returns the number of free slots accounting for pushes staged
// this cycle but not for staged pops (conservative, hardware-accurate: a
// full FIFO does not accept a push in the same cycle an entry leaves).
func (f *Fifo[T]) SpaceStaged() int { return f.depth - len(f.cur) - len(f.pending) }

// CanPush reports whether a push staged now would fit.
func (f *Fifo[T]) CanPush() bool { return f.SpaceStaged() > 0 }

// Push stages an entry for commit at Update. It panics on overflow — callers
// must check CanPush; overflow is a modelling bug, not a runtime condition.
func (f *Fifo[T]) Push(v T) {
	if !f.CanPush() {
		panic(fmt.Sprintf("sim: push to full fifo %q (depth %d)", f.name, f.depth))
	}
	f.pending = append(f.pending, v)
}

// CanPop reports whether a committed entry is available beyond those already
// popped this cycle.
func (f *Fifo[T]) CanPop() bool { return f.npop < len(f.cur) }

// Peek returns the oldest not-yet-popped committed entry without consuming
// it. It panics if none is available.
func (f *Fifo[T]) Peek() T {
	if !f.CanPop() {
		panic(fmt.Sprintf("sim: peek on empty fifo %q", f.name))
	}
	return f.cur[f.npop]
}

// PeekAt returns the i-th not-yet-popped committed entry (0 = oldest). Used
// by lookahead optimizers that inspect the queue without consuming it.
func (f *Fifo[T]) PeekAt(i int) T {
	if i < 0 || f.npop+i >= len(f.cur) {
		panic(fmt.Sprintf("sim: peekAt(%d) out of range on fifo %q (len %d, npop %d)", i, f.name, len(f.cur), f.npop))
	}
	return f.cur[f.npop+i]
}

// RemoveAt stages removal of the i-th not-yet-popped committed entry
// (0 = oldest) and returns it. RemoveAt(0) is equivalent to Pop. Removal of
// an inner entry models an out-of-order scheduler picking from a queue; the
// slot frees at Update. Only one RemoveAt with i>0 per cycle is supported
// (sufficient for the LMI optimizer, which issues one command per cycle).
func (f *Fifo[T]) RemoveAt(i int) T {
	if i == 0 {
		return f.Pop()
	}
	idx := f.npop + i
	if idx >= len(f.cur) {
		panic(fmt.Sprintf("sim: removeAt(%d) out of range on fifo %q", i, f.name))
	}
	v := f.cur[idx]
	f.cur = append(f.cur[:idx:idx], f.cur[idx+1:]...)
	return v
}

// Pop stages consumption of the oldest committed entry and returns it.
func (f *Fifo[T]) Pop() T {
	if !f.CanPop() {
		panic(fmt.Sprintf("sim: pop from empty fifo %q", f.name))
	}
	v := f.cur[f.npop]
	f.npop++
	return v
}

// Update commits staged pushes and pops and samples occupancy statistics.
// Call exactly once per cycle of the owning clock domain.
func (f *Fifo[T]) Update() {
	if f.npop > 0 {
		var zero T
		for i := 0; i < f.npop; i++ {
			f.cur[i] = zero // release references for GC
		}
		f.cur = f.cur[f.npop:]
		f.npop = 0
	}
	if len(f.pending) > 0 {
		f.cur = append(f.cur, f.pending...)
		f.pushedTotal += int64(len(f.pending))
		f.pending = f.pending[:0]
	}
	f.cycles++
	switch n := len(f.cur); {
	case n >= f.depth:
		f.fullCycles++
	case n == 0:
		f.emptyCycles++
	}
	if len(f.cur) > f.maxOcc {
		f.maxOcc = len(f.cur)
	}
}

// Reset discards all committed and staged state and statistics.
func (f *Fifo[T]) Reset() {
	f.cur = nil
	f.pending = nil
	f.npop = 0
	f.cycles, f.fullCycles, f.emptyCycles, f.pushedTotal = 0, 0, 0, 0
	f.maxOcc = 0
}

// Stats returns occupancy statistics sampled at each Update.
func (f *Fifo[T]) Stats() FifoStats {
	return FifoStats{
		Cycles:       f.cycles,
		FullCycles:   f.fullCycles,
		EmptyCycles:  f.emptyCycles,
		MaxOccupancy: f.maxOcc,
		Pushed:       f.pushedTotal,
	}
}

// FifoStats summarizes a FIFO's lifetime occupancy.
type FifoStats struct {
	Cycles       int64
	FullCycles   int64
	EmptyCycles  int64
	MaxOccupancy int
	Pushed       int64
}

// FullFrac returns the fraction of cycles the FIFO was full.
func (s FifoStats) FullFrac() float64 { return frac(s.FullCycles, s.Cycles) }

// EmptyFrac returns the fraction of cycles the FIFO was empty.
func (s FifoStats) EmptyFrac() float64 { return frac(s.EmptyCycles, s.Cycles) }

func frac(n, d int64) float64 {
	if d == 0 {
		return 0
	}
	return float64(n) / float64(d)
}
